// Tests for the coloring entry points beyond pseudoColor: per-vertex
// priors and the baselines' first-fit coloring.
#include <gtest/gtest.h>

#include "patterning/flipping.hpp"
#include "ocg/graph.hpp"

namespace sadp {
namespace {

Classification nonhard(int cc, int cs, int sc, int ss) {
  Classification c;
  c.type = ScenarioType::T3a;
  c.overlay = {cc, cs, sc, ss};
  return c;
}

Classification hardDiff() {
  Classification c;
  c.type = ScenarioType::T1a;
  c.overlay = {kHardCost, 0, 0, kHardCost};
  return c;
}

TEST(Priors, BiasPseudoColoring) {
  OverlayConstraintGraph g;
  g.vertexFor(1);
  g.setPrior(1, /*core=*/5, /*second=*/0);
  EXPECT_EQ(g.pseudoColor(1), Color::Second);
  g.setPrior(1, 0, 5);
  EXPECT_EQ(g.pseudoColor(1), Color::Core);
}

TEST(Priors, TradeOffAgainstEdgeCosts) {
  OverlayConstraintGraph g;
  // Edge strongly prefers same colors; prior mildly prefers Second for 2.
  g.addScenario(1, 2, nonhard(0, 10, 10, 0));
  g.setColor(1, Color::Core);
  g.setPrior(2, 0, 3);
  // Edge cost dominates: CC (0 + prior core 0) beats CS (10... from 1's
  // view 2=Second costs 10 + 0).
  EXPECT_EQ(g.pseudoColor(2), Color::Core);
  // Make the prior dominate.
  g.setPrior(2, 20, 0);
  EXPECT_EQ(g.pseudoColor(2), Color::Second);
}

TEST(Priors, FlowIntoFlippingSelfCost) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardDiff());  // one class, opposite parities
  g.setPrior(1, 4, 0);              // net 1 wants Second
  g.setColor(1, Color::Core);
  colorFlip(g);
  EXPECT_EQ(g.colorOf(1), Color::Second);
  EXPECT_EQ(g.colorOf(2), Color::Core);
}

TEST(Priors, ClearingResetsBehavior) {
  OverlayConstraintGraph g;
  g.vertexFor(1);
  g.setPrior(1, 0, 5);
  g.setPrior(1, 0, 0);  // cleared
  const std::int64_t vertex = g.findVertex(1);
  ASSERT_GE(vertex, 0);
  EXPECT_EQ(g.priorOf(std::uint32_t(vertex), Color::Second), 0);
}

TEST(FirstFit, PrefersCoreWhenLegal) {
  OverlayConstraintGraph g;
  g.vertexFor(7);
  EXPECT_EQ(g.firstFitColor(7), Color::Core);
}

TEST(FirstFit, FallsToSecondOnHardNeighbor) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardDiff());
  g.setColor(1, Color::Core);
  // The hard-diff edge welds 1 and 2 into one parity class: 2's color is
  // already determined by 1's, and first-fit must not revisit it.
  EXPECT_EQ(g.firstFitColor(2), Color::Second);
  EXPECT_EQ(g.colorOf(1), Color::Core);
}

TEST(FirstFit, IgnoresNonhardCosts) {
  OverlayConstraintGraph g;
  // Expensive-but-legal CC: first-fit does not care, pseudo-color does.
  g.addScenario(1, 2, nonhard(50, 0, 0, 50));
  g.setColor(1, Color::Core);
  EXPECT_EQ(g.firstFitColor(2), Color::Core);
  EXPECT_EQ(g.pseudoColor(2), Color::Second);
}

TEST(FirstFit, FallbackWhenNothingLegal) {
  OverlayConstraintGraph g;
  // Two single-assignment bans (not parity-expressible, so the vertices
  // stay in separate classes): with net 1 = Core, net 2 is banned both as
  // Core (CC) and Second (CS). First-fit falls back to Core.
  Classification banCC = nonhard(kHardCost, 0, 0, 0);
  banCC.type = ScenarioType::T1a;
  Classification banCS = nonhard(0, kHardCost, 0, 0);
  banCS.type = ScenarioType::T3c;
  g.addScenario(1, 2, banCC);
  g.addScenario(1, 2, banCS);
  g.setColor(1, Color::Core);
  EXPECT_EQ(g.firstFitColor(2), Color::Core);
}

}  // namespace
}  // namespace sadp
