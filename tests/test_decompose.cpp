// Physical validation of the cut-process mask synthesizer: for each
// potential overlay scenario, the measured mask geometry must match the
// behavior Table II / Figs. 24-34 describe.
#include "sadp/decompose.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/parallel_for.hpp"

namespace sadp {
namespace {

const DesignRules kRules;  // paper's 10 nm-node instance

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}
Fragment vw(NetId net, Track x, Track y0, Track y1) {
  return Fragment{x, y0, x + 1, y1, net};
}

OverlayReport measure(std::vector<ColoredFragment> frags,
                      const DecomposeOptions& opts = {}) {
  return decomposeLayer(frags, kRules, opts).report;
}

TEST(Decompose, FragmentMetalNm) {
  const Rect m = fragmentMetalNm(hw(0, 0, 5, 0), kRules);
  EXPECT_EQ(m, (Rect{10, 10, 190, 30}));
  const Rect v = fragmentMetalNm(vw(0, 2, 1, 4), kRules);
  EXPECT_EQ(v, (Rect{90, 50, 110, 150}));
}

TEST(Decompose, IsolatedCoreWireIsClean) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core}});
  EXPECT_EQ(r.sideOverlayNm, 0);
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
  EXPECT_EQ(r.spacerOverTargetPx, 0);
  // A core wire is fully ringed by its own spacer: even tips protected.
  EXPECT_EQ(r.tipOverlays, 0);
}

TEST(Decompose, IsolatedSecondWireHasAssistProtection) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second}});
  EXPECT_EQ(r.sideOverlayNm, 0) << "assist cores must protect both sides";
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
  // The two line ends are defined by the cut mask: tip overlays only.
  EXPECT_EQ(r.tipOverlays, 2);
}

TEST(Decompose, IsolatedSecondWireWithoutAssistsIsExposed) {
  DecomposeOptions opts;
  opts.insertAssists = false;
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second}}, opts);
  EXPECT_GT(r.sideOverlayNm, 0);
  EXPECT_GT(r.hardOverlays, 0);
}

// --- Type 1-a: side-to-side @1 -------------------------------------------

TEST(Decompose, T1a_DifferentColorsClean) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core},
                                   {hw(2, 0, 10, 3), Color::Second}});
  EXPECT_EQ(r.sideOverlayNm, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
}

TEST(Decompose, T1a_SameColorCoreIsHard) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core},
                                   {hw(2, 0, 10, 3), Color::Core}});
  // Cores merge; the separating cut defines both facing sides entirely.
  EXPECT_GE(r.hardOverlays, 2);
  EXPECT_GE(r.sideOverlayNm, 2 * 10 * 40 - 100);  // ~both spans exposed
}

TEST(Decompose, T1a_SameColorSecondIsHard) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second},
                                   {hw(2, 0, 10, 3), Color::Second}});
  EXPECT_GE(r.hardOverlays, 2);
}

// --- Type 2-a: side-to-side @2 -------------------------------------------

TEST(Decompose, T2a_SameColorsClean) {
  for (Color c : {Color::Core, Color::Second}) {
    const OverlayReport r =
        measure({{hw(1, 0, 10, 2), c}, {hw(2, 0, 10, 4), c}});
    EXPECT_EQ(r.sideOverlayNm, 0) << toString(c);
    EXPECT_EQ(r.cutConflicts(), 0) << toString(c);
  }
}

TEST(Decompose, T2a_MixedColorsInduceOverlay) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core},
                                   {hw(2, 0, 10, 4), Color::Second}});
  // The second pattern's assist strip merges with the core wire; the
  // separating cut exposes the core's facing side.
  EXPECT_GT(r.sideOverlayNm, 0);
}

// --- Type 2-b: tip-to-side @2 ---------------------------------------------

// Documented divergence (DESIGN.md §3, EXPERIMENTS.md): the paper's Table II
// charges >=1 side-overlay unit to every type 2-b assignment; our mask
// synthesizer stops assistant cores exactly at line ends, which fully
// protects this tip-to-side@2 geometry. The scenario table (the router's
// cost model) remains paper-faithful; the physical model is simply tighter.
// What must hold physically: no hard overlay and no cut conflict.
TEST(Decompose, T2b_NeverHardNeverConflicting) {
  for (Color ca : {Color::Core, Color::Second}) {
    for (Color cb : {Color::Core, Color::Second}) {
      const OverlayReport r = measure(
          {{hw(1, 0, 10, 6), ca}, {vw(2, 4, 0, 5), cb}});
      EXPECT_EQ(r.hardOverlays, 0) << toString(ca) << toString(cb);
      EXPECT_EQ(r.cutConflicts(), 0) << toString(ca) << toString(cb);
    }
  }
}

// --- Type 2-c: tip-to-tip @1 ------------------------------------------------

TEST(Decompose, T2c_TipToTipNoSideOverlay) {
  for (Color ca : {Color::Core, Color::Second}) {
    for (Color cb : {Color::Core, Color::Second}) {
      const OverlayReport r =
          measure({{hw(1, 0, 5, 2), ca}, {hw(2, 5, 10, 2), cb}});
      EXPECT_EQ(r.sideOverlayNm, 0) << toString(ca) << toString(cb);
      EXPECT_EQ(r.hardOverlays, 0);
      EXPECT_EQ(r.cutConflicts(), 0) << toString(ca) << toString(cb);
    }
  }
}

// --- Type 3-a: diagonal parallel -------------------------------------------

TEST(Decompose, T3a_DifferentColorsClean) {
  const OverlayReport r = measure({{hw(1, 0, 5, 2), Color::Core},
                                   {hw(2, 5, 10, 3), Color::Second}});
  EXPECT_EQ(r.hardOverlays, 0);
}

TEST(Decompose, T3a_SameColorSmallOverlay) {
  const OverlayReport r = measure({{hw(1, 0, 5, 2), Color::Core},
                                   {hw(2, 5, 10, 3), Color::Core}});
  // Diagonal merge exposes at most a unit per pattern; never hard.
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_LE(r.sideOverlayNm, 2 * kRules.wLine);
}

// --- Cut conflicts -----------------------------------------------------------

TEST(Decompose, CutConflictWhenBothSidesCutDefined) {
  // A second wire without assists between two foreign merges: emulate by
  // disabling assist insertion so both sides are cut-defined.
  DecomposeOptions opts;
  opts.insertAssists = false;
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second}}, opts);
  // Both long sides cut-defined 20 nm apart < d_cut: Fig. 15(b) conflict.
  EXPECT_GT(r.cutSpaceConflicts, 0);
}

TEST(Decompose, NoMergeOptionExposesCoreNeighbors) {
  // With merging disabled, sub-d_core core shapes stay separate; the raw
  // masks then violate core MRC, which manifests as spacer overlapping the
  // neighbor (this configuration is what the merge technique exists for).
  DecomposeOptions merged;
  const OverlayReport rm = measure({{hw(1, 0, 5, 2), Color::Core},
                                    {hw(2, 5, 10, 2), Color::Core}},
                                   merged);
  EXPECT_EQ(rm.cutConflicts(), 0);
}

// --- Spacer integrity --------------------------------------------------------

TEST(Decompose, SpacerNeverEatsMetalOnGridLayouts) {
  const OverlayReport r = measure({
      {hw(1, 0, 10, 2), Color::Core},
      {hw(2, 0, 10, 3), Color::Second},
      {hw(3, 0, 10, 4), Color::Core},
      {vw(4, 12, 0, 8), Color::Second},
  });
  EXPECT_EQ(r.spacerOverTargetPx, 0);
}

// --- Merge technique / odd cycle (Fig. 2, Fig. 21) --------------------------

TEST(Decompose, OddCycleDecomposedByMergeAndCut) {
  // Three mutually-adjacent parallel wires cannot be 2-colored under trim
  // rules; the cut process solves it by giving two of them the same color
  // and cutting the merged pair. Build wires on rows 2,3,4 (each pair @1)
  // with single-track facing spans so nothing is hard.
  const OverlayReport r = measure({
      {hw(1, 0, 5, 2), Color::Core},
      {hw(2, 4, 9, 3), Color::Second},
      {hw(3, 0, 5, 4), Color::Core},
  });
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
}

TEST(Decompose, EmptyInput) {
  const OverlayReport r = measure({});
  EXPECT_EQ(r.sideOverlayNm, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
}

// --- Tiled decomposition: byte-identical to the whole-window path -----------

void expectSameDecomposition(const LayerDecomposition& got,
                             const LayerDecomposition& ref,
                             const std::string& what) {
  EXPECT_EQ(got.target, ref.target) << what;
  EXPECT_EQ(got.coreMask, ref.coreMask) << what;
  EXPECT_EQ(got.spacer, ref.spacer) << what;
  EXPECT_EQ(got.cut, ref.cut) << what;
  EXPECT_EQ(got.assists, ref.assists) << what;
  EXPECT_EQ(got.bridges, ref.bridges) << what;
  EXPECT_EQ(got.conflictBoxesNm, ref.conflictBoxesNm) << what;
  EXPECT_EQ(got.hardOverlayBoxesNm, ref.hardOverlayBoxesNm) << what;
  EXPECT_TRUE(got.report == ref.report) << what;
  EXPECT_EQ(got.windowNm, ref.windowNm) << what;
}

/// Seeded random layer: a handful of horizontal/vertical wires of both
/// colors. The window width class varies from a couple of raster words up
/// to ~15 words so band counts of 1..15+ all occur.
std::vector<ColoredFragment> randomFragments(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const int kMaxX[] = {12, 48, 130, 230};
  std::uniform_int_distribution<int> widthPick(0, 3);
  const int maxX = kMaxX[widthPick(rng)];
  std::uniform_int_distribution<int> nF(1, 10), dx(0, maxX - 2), dy(0, 14),
      len(1, 12);
  std::bernoulli_distribution horiz(0.7), second(0.5);
  std::vector<ColoredFragment> frags;
  const int n = nF(rng);
  for (int i = 0; i < n; ++i) {
    const Color c = second(rng) ? Color::Second : Color::Core;
    if (horiz(rng)) {
      const int x0 = dx(rng);
      const int x1 = std::min(maxX, x0 + 1 + len(rng));
      frags.push_back(
          {hw(NetId(i + 1), Track(x0), Track(x1), Track(dy(rng))), c});
    } else {
      const int y0 = dy(rng);
      frags.push_back({vw(NetId(i + 1), Track(dx(rng)), Track(y0),
                          Track(y0 + 1 + len(rng) / 3)),
                       c});
    }
  }
  return frags;
}

TEST(DecomposeTiling, TiledMatchesWholeWindowReference) {
  // Band widths covering the degenerate single-word tile, typical widths,
  // and a tile wider than any window here (one band == whole window).
  const int kTileChoices[] = {1, 2, 3, 5, 8, 64};
  for (std::uint32_t seed = 1; seed <= 200; ++seed) {
    const std::vector<ColoredFragment> frags = randomFragments(seed);
    DecomposeOptions ref;
    ref.tileWords = -1;
    const LayerDecomposition want = decomposeLayer(frags, kRules, ref);
    // The automatic policy plus two rotating explicit band widths, so every
    // kTileChoices entry recurs throughout the seed sweep.
    DecomposeOptions autoOpts;
    expectSameDecomposition(decomposeLayer(frags, kRules, autoOpts), want,
                            "seed=" + std::to_string(seed) + " auto");
    for (int t = 0; t < 2; ++t) {
      DecomposeOptions opts;
      opts.tileWords = kTileChoices[(seed + 2 * t) % 6];
      expectSameDecomposition(
          decomposeLayer(frags, kRules, opts), want,
          "seed=" + std::to_string(seed) +
              " tileWords=" + std::to_string(opts.tileWords));
    }
  }
}

TEST(DecomposeTiling, ThreadCountIndependent) {
  // The nested per-tile fan-out must only change WHO computes a band.
  for (std::uint32_t seed : {7u, 1234u, 424242u}) {
    const std::vector<ColoredFragment> frags = randomFragments(seed);
    DecomposeOptions opts;
    opts.tileWords = 2;
    setParallelThreads(1);
    const LayerDecomposition one = decomposeLayer(frags, kRules, opts);
    setParallelThreads(4);
    const LayerDecomposition four = decomposeLayer(frags, kRules, opts);
    setParallelThreads(0);
    expectSameDecomposition(four, one,
                            "threads 4 vs 1, seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace sadp
