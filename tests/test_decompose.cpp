// Physical validation of the cut-process mask synthesizer: for each
// potential overlay scenario, the measured mask geometry must match the
// behavior Table II / Figs. 24-34 describe.
#include "sadp/decompose.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

const DesignRules kRules;  // paper's 10 nm-node instance

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}
Fragment vw(NetId net, Track x, Track y0, Track y1) {
  return Fragment{x, y0, x + 1, y1, net};
}

OverlayReport measure(std::vector<ColoredFragment> frags,
                      const DecomposeOptions& opts = {}) {
  return decomposeLayer(frags, kRules, opts).report;
}

TEST(Decompose, FragmentMetalNm) {
  const Rect m = fragmentMetalNm(hw(0, 0, 5, 0), kRules);
  EXPECT_EQ(m, (Rect{10, 10, 190, 30}));
  const Rect v = fragmentMetalNm(vw(0, 2, 1, 4), kRules);
  EXPECT_EQ(v, (Rect{90, 50, 110, 150}));
}

TEST(Decompose, IsolatedCoreWireIsClean) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core}});
  EXPECT_EQ(r.sideOverlayNm, 0);
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
  EXPECT_EQ(r.spacerOverTargetPx, 0);
  // A core wire is fully ringed by its own spacer: even tips protected.
  EXPECT_EQ(r.tipOverlays, 0);
}

TEST(Decompose, IsolatedSecondWireHasAssistProtection) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second}});
  EXPECT_EQ(r.sideOverlayNm, 0) << "assist cores must protect both sides";
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
  // The two line ends are defined by the cut mask: tip overlays only.
  EXPECT_EQ(r.tipOverlays, 2);
}

TEST(Decompose, IsolatedSecondWireWithoutAssistsIsExposed) {
  DecomposeOptions opts;
  opts.insertAssists = false;
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second}}, opts);
  EXPECT_GT(r.sideOverlayNm, 0);
  EXPECT_GT(r.hardOverlays, 0);
}

// --- Type 1-a: side-to-side @1 -------------------------------------------

TEST(Decompose, T1a_DifferentColorsClean) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core},
                                   {hw(2, 0, 10, 3), Color::Second}});
  EXPECT_EQ(r.sideOverlayNm, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
}

TEST(Decompose, T1a_SameColorCoreIsHard) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core},
                                   {hw(2, 0, 10, 3), Color::Core}});
  // Cores merge; the separating cut defines both facing sides entirely.
  EXPECT_GE(r.hardOverlays, 2);
  EXPECT_GE(r.sideOverlayNm, 2 * 10 * 40 - 100);  // ~both spans exposed
}

TEST(Decompose, T1a_SameColorSecondIsHard) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second},
                                   {hw(2, 0, 10, 3), Color::Second}});
  EXPECT_GE(r.hardOverlays, 2);
}

// --- Type 2-a: side-to-side @2 -------------------------------------------

TEST(Decompose, T2a_SameColorsClean) {
  for (Color c : {Color::Core, Color::Second}) {
    const OverlayReport r =
        measure({{hw(1, 0, 10, 2), c}, {hw(2, 0, 10, 4), c}});
    EXPECT_EQ(r.sideOverlayNm, 0) << toString(c);
    EXPECT_EQ(r.cutConflicts(), 0) << toString(c);
  }
}

TEST(Decompose, T2a_MixedColorsInduceOverlay) {
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Core},
                                   {hw(2, 0, 10, 4), Color::Second}});
  // The second pattern's assist strip merges with the core wire; the
  // separating cut exposes the core's facing side.
  EXPECT_GT(r.sideOverlayNm, 0);
}

// --- Type 2-b: tip-to-side @2 ---------------------------------------------

// Documented divergence (DESIGN.md §3, EXPERIMENTS.md): the paper's Table II
// charges >=1 side-overlay unit to every type 2-b assignment; our mask
// synthesizer stops assistant cores exactly at line ends, which fully
// protects this tip-to-side@2 geometry. The scenario table (the router's
// cost model) remains paper-faithful; the physical model is simply tighter.
// What must hold physically: no hard overlay and no cut conflict.
TEST(Decompose, T2b_NeverHardNeverConflicting) {
  for (Color ca : {Color::Core, Color::Second}) {
    for (Color cb : {Color::Core, Color::Second}) {
      const OverlayReport r = measure(
          {{hw(1, 0, 10, 6), ca}, {vw(2, 4, 0, 5), cb}});
      EXPECT_EQ(r.hardOverlays, 0) << toString(ca) << toString(cb);
      EXPECT_EQ(r.cutConflicts(), 0) << toString(ca) << toString(cb);
    }
  }
}

// --- Type 2-c: tip-to-tip @1 ------------------------------------------------

TEST(Decompose, T2c_TipToTipNoSideOverlay) {
  for (Color ca : {Color::Core, Color::Second}) {
    for (Color cb : {Color::Core, Color::Second}) {
      const OverlayReport r =
          measure({{hw(1, 0, 5, 2), ca}, {hw(2, 5, 10, 2), cb}});
      EXPECT_EQ(r.sideOverlayNm, 0) << toString(ca) << toString(cb);
      EXPECT_EQ(r.hardOverlays, 0);
      EXPECT_EQ(r.cutConflicts(), 0) << toString(ca) << toString(cb);
    }
  }
}

// --- Type 3-a: diagonal parallel -------------------------------------------

TEST(Decompose, T3a_DifferentColorsClean) {
  const OverlayReport r = measure({{hw(1, 0, 5, 2), Color::Core},
                                   {hw(2, 5, 10, 3), Color::Second}});
  EXPECT_EQ(r.hardOverlays, 0);
}

TEST(Decompose, T3a_SameColorSmallOverlay) {
  const OverlayReport r = measure({{hw(1, 0, 5, 2), Color::Core},
                                   {hw(2, 5, 10, 3), Color::Core}});
  // Diagonal merge exposes at most a unit per pattern; never hard.
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_LE(r.sideOverlayNm, 2 * kRules.wLine);
}

// --- Cut conflicts -----------------------------------------------------------

TEST(Decompose, CutConflictWhenBothSidesCutDefined) {
  // A second wire without assists between two foreign merges: emulate by
  // disabling assist insertion so both sides are cut-defined.
  DecomposeOptions opts;
  opts.insertAssists = false;
  const OverlayReport r = measure({{hw(1, 0, 10, 2), Color::Second}}, opts);
  // Both long sides cut-defined 20 nm apart < d_cut: Fig. 15(b) conflict.
  EXPECT_GT(r.cutSpaceConflicts, 0);
}

TEST(Decompose, NoMergeOptionExposesCoreNeighbors) {
  // With merging disabled, sub-d_core core shapes stay separate; the raw
  // masks then violate core MRC, which manifests as spacer overlapping the
  // neighbor (this configuration is what the merge technique exists for).
  DecomposeOptions merged;
  const OverlayReport rm = measure({{hw(1, 0, 5, 2), Color::Core},
                                    {hw(2, 5, 10, 2), Color::Core}},
                                   merged);
  EXPECT_EQ(rm.cutConflicts(), 0);
}

// --- Spacer integrity --------------------------------------------------------

TEST(Decompose, SpacerNeverEatsMetalOnGridLayouts) {
  const OverlayReport r = measure({
      {hw(1, 0, 10, 2), Color::Core},
      {hw(2, 0, 10, 3), Color::Second},
      {hw(3, 0, 10, 4), Color::Core},
      {vw(4, 12, 0, 8), Color::Second},
  });
  EXPECT_EQ(r.spacerOverTargetPx, 0);
}

// --- Merge technique / odd cycle (Fig. 2, Fig. 21) --------------------------

TEST(Decompose, OddCycleDecomposedByMergeAndCut) {
  // Three mutually-adjacent parallel wires cannot be 2-colored under trim
  // rules; the cut process solves it by giving two of them the same color
  // and cutting the merged pair. Build wires on rows 2,3,4 (each pair @1)
  // with single-track facing spans so nothing is hard.
  const OverlayReport r = measure({
      {hw(1, 0, 5, 2), Color::Core},
      {hw(2, 4, 9, 3), Color::Second},
      {hw(3, 0, 5, 4), Color::Core},
  });
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
}

TEST(Decompose, EmptyInput) {
  const OverlayReport r = measure({});
  EXPECT_EQ(r.sideOverlayNm, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
}

}  // namespace
}  // namespace sadp
