// Tests for the baseline reconstructions: each must run end-to-end and
// exhibit the qualitative relationship to the proposed router that the
// paper reports.
#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "netlist/benchmark.hpp"

namespace sadp {
namespace {

BenchmarkInstance smallInstance(const char* name = "Test1",
                                double scale = 0.06) {
  return makeBenchmark(paperBenchmark(name).scaled(scale));
}

TEST(Baselines, ToStringNames) {
  EXPECT_STREQ(toString(BaselineKind::GaoPanTrim11), "GaoPan[11]");
  EXPECT_STREQ(toString(BaselineKind::KodamaCut16), "Kodama[16]");
  EXPECT_STREQ(toString(BaselineKind::DuGraphModel10), "Du[10]");
}

TEST(Baselines, TrimRouterRunsAndLeaksOverlay) {
  BenchmarkInstance inst = smallInstance();
  const BaselineResult r =
      runBaseline(BaselineKind::GaoPanTrim11, inst.grid, inst.netlist);
  EXPECT_GT(r.stats.routedNets, 0);
  // No assist cores in the trim process: second patterns are exposed.
  EXPECT_GT(r.physical.sideOverlayNm, 0);
  EXPECT_FALSE(r.timedOut);
}

TEST(Baselines, CutRouterWithoutMergeLosesRoutability) {
  BenchmarkInstance a = smallInstance();
  const BaselineResult kodama =
      runBaseline(BaselineKind::KodamaCut16, a.grid, a.netlist);

  BenchmarkInstance b = smallInstance();
  OverlayAwareRouter ours(b.grid, b.netlist);
  const RoutingStats ourStats = ours.run();

  EXPECT_LE(kodama.stats.routability(), ourStats.routability());
}

TEST(Baselines, ProposedBeatsTrimOnOverlay) {
  BenchmarkInstance a = smallInstance();
  const BaselineResult trim =
      runBaseline(BaselineKind::GaoPanTrim11, a.grid, a.netlist);

  BenchmarkInstance b = smallInstance();
  OverlayAwareRouter ours(b.grid, b.netlist);
  ours.run();
  const OverlayReport ourPhys = ours.physicalReport();

  EXPECT_LT(ourPhys.sideOverlayNm, trim.physical.sideOverlayNm);
  EXPECT_LT(ourPhys.cutConflicts(), trim.conflicts);
}

TEST(Baselines, DuEnumeratesCandidatesAndRuns) {
  BenchmarkInstance inst = smallInstance("Test6", 0.06);
  const BaselineResult r =
      runBaseline(BaselineKind::DuGraphModel10, inst.grid, inst.netlist);
  EXPECT_GT(r.stats.routedNets, 0);
  EXPECT_FALSE(r.timedOut);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Baselines, DuTimesOutAndReportsNa) {
  BenchmarkInstance inst = smallInstance("Test8", 0.2);
  const BaselineResult r = runBaseline(BaselineKind::DuGraphModel10,
                                       inst.grid, inst.netlist, 0.05);
  EXPECT_TRUE(r.timedOut);
}

TEST(Baselines, DeterministicRepeatRuns) {
  BenchmarkInstance a = smallInstance();
  const BaselineResult r1 =
      runBaseline(BaselineKind::KodamaCut16, a.grid, a.netlist);
  BenchmarkInstance b = smallInstance();
  const BaselineResult r2 =
      runBaseline(BaselineKind::KodamaCut16, b.grid, b.netlist);
  EXPECT_EQ(r1.stats.routedNets, r2.stats.routedNets);
  EXPECT_EQ(r1.overlayUnits, r2.overlayUnits);
  EXPECT_EQ(r1.conflicts, r2.conflicts);
}

}  // namespace
}  // namespace sadp
