// End-to-end tests for the overlay-aware detailed router (Algorithm 1).
#include "route/router.hpp"

#include <gtest/gtest.h>

#include "netlist/benchmark.hpp"

namespace sadp {
namespace {

TEST(Router, RoutesTwoDisjointNets) {
  RoutingGrid grid(30, 30, 3, DesignRules{});
  Netlist nl;
  nl.add("a", Pin{{{2, 5, 0}}}, Pin{{{20, 5, 0}}});
  nl.add("b", Pin{{{2, 20, 0}}}, Pin{{{20, 20, 0}}});
  OverlayAwareRouter router(grid, nl);
  const RoutingStats s = router.run();
  EXPECT_EQ(s.routedNets, 2);
  EXPECT_DOUBLE_EQ(s.routability(), 100.0);
  EXPECT_EQ(s.vias, 0);
  EXPECT_EQ(s.wirelength, 18 * 2);
}

TEST(Router, AdjacentNetsGetOppositeColors) {
  RoutingGrid grid(30, 30, 3, DesignRules{});
  Netlist nl;
  nl.add("a", Pin{{{2, 5, 0}}}, Pin{{{20, 5, 0}}});
  nl.add("b", Pin{{{2, 6, 0}}}, Pin{{{20, 6, 0}}});
  OverlayAwareRouter router(grid, nl);
  router.run();
  EXPECT_NE(router.model().colorOf(0, 0), router.model().colorOf(1, 0));
  EXPECT_EQ(router.model().totalOverlayUnits(), 0);
}

TEST(Router, PhysicalReportCleanOnSimpleLayout) {
  RoutingGrid grid(30, 30, 3, DesignRules{});
  Netlist nl;
  nl.add("a", Pin{{{2, 5, 0}}}, Pin{{{20, 5, 0}}});
  nl.add("b", Pin{{{2, 6, 0}}}, Pin{{{20, 6, 0}}});
  nl.add("c", Pin{{{2, 8, 0}}}, Pin{{{20, 8, 0}}});
  OverlayAwareRouter router(grid, nl);
  router.run();
  const OverlayReport r = router.physicalReport();
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
  EXPECT_EQ(r.spacerOverTargetPx, 0);
}

TEST(Router, UnroutableNetReported) {
  RoutingGrid grid(20, 20, 1, DesignRules{});
  // Wall with no door.
  for (Track y = 0; y < 20; ++y) grid.block({10, y, 0});
  Netlist nl;
  nl.add("a", Pin{{{2, 5, 0}}}, Pin{{{18, 5, 0}}});
  OverlayAwareRouter router(grid, nl);
  const RoutingStats s = router.run();
  EXPECT_EQ(s.routedNets, 0);
  EXPECT_EQ(s.totalNets, 1);
}

TEST(Router, MultiCandidatePinsCommitOne) {
  RoutingGrid grid(30, 30, 3, DesignRules{});
  Netlist nl;
  nl.add("a", Pin{{{2, 5, 0}, {2, 9, 0}}}, Pin{{{20, 9, 0}, {20, 5, 0}}});
  OverlayAwareRouter router(grid, nl);
  const RoutingStats s = router.run();
  EXPECT_EQ(s.routedNets, 1);
  const auto& path = router.netStates()[0].path;
  // Unchosen candidates must be free again.
  int reserved = 0;
  for (const GridNode& c :
       {GridNode{2, 5, 0}, GridNode{2, 9, 0}, GridNode{20, 9, 0},
        GridNode{20, 5, 0}}) {
    if (grid.owner(c) == 0) ++reserved;
  }
  EXPECT_EQ(reserved, int(path.size() == 0 ? 0 : 2))
      << "exactly the two chosen candidates stay owned";
}

TEST(Router, PathsNeverOverlap) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.05));
  RoutingGrid grid = inst.grid;
  OverlayAwareRouter router(grid, inst.netlist);
  router.run();
  // Grid occupancy is the invariant: every path node owned by its net.
  for (const Net& n : inst.netlist.nets) {
    for (const GridNode& node : router.netStates()[n.id].path) {
      EXPECT_EQ(grid.owner(node), n.id);
    }
  }
}

// Thresholds calibrated on the deterministic seed: the stress-density
// instance leaves a handful of residual nonzero metrics (documented in
// EXPERIMENTS.md); the test guards against regressions beyond them.
TEST(Router, SmallBenchmarkEndToEnd) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.05));
  RoutingGrid grid = inst.grid;
  OverlayAwareRouter router(grid, inst.netlist);
  const RoutingStats s = router.run();
  EXPECT_GT(s.routability(), 90.0);
  EXPECT_FALSE(router.model().hasHardViolation());
  const OverlayReport r = router.physicalReport();
  EXPECT_LE(r.hardOverlays, 3);
  EXPECT_LE(r.cutConflicts(), 12);
  EXPECT_LE(r.spacerOverTargetPx, 300);
  EXPECT_EQ(r.cutWidthConflicts, 0);
}

TEST(Router, ColorFlipDisabledStillRoutes) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.04));
  RoutingGrid grid = inst.grid;
  RouterOptions opts;
  opts.enableColorFlip = false;
  OverlayAwareRouter router(grid, inst.netlist, opts);
  const RoutingStats s = router.run();
  EXPECT_GT(s.routability(), 80.0);
}

TEST(Router, FlippingReducesOverlayOrEqual) {
  // Isolate the flipping effect: cut checks and repair flips disabled in
  // both runs (they may trade overlay for conflict removal).
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.06));
  RoutingGrid gridA = inst.grid;
  RouterOptions noFlip;
  noFlip.enableColorFlip = false;
  noFlip.enableCutCheck = false;
  noFlip.enableRepair = false;
  OverlayAwareRouter a(gridA, inst.netlist, noFlip);
  a.run();

  RoutingGrid gridB = inst.grid;
  RouterOptions flip;
  flip.enableCutCheck = false;
  flip.enableRepair = false;
  OverlayAwareRouter b(gridB, inst.netlist, flip);
  b.run();
  EXPECT_LE(b.model().totalOverlayUnits(), a.model().totalOverlayUnits());
}

}  // namespace
}  // namespace sadp
