// Exact brute-force k-coloring oracle for the patterning backends
// (DESIGN.md §5.13).
//
// Small random conflict graphs (<= 12 vertices) are solved exhaustively --
// every k^n coloring -- and the production stack is held to that ground
// truth: the 2-color parity structure must agree with brute force on
// FEASIBILITY (a hard odd cycle exists iff no assignment stays below
// kHardCost), the SADP flipping DP must reach the brute-force optimum on
// soft trees (the regime Theorem 4 claims exactness for), and the TPL
// backend's recolor pass must reach the brute-force 3-coloring minimum on
// every component small enough for its exhaustive branch-and-bound.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "ocg/graph.hpp"
#include "ocg/group_dsu.hpp"
#include "patterning/backend.hpp"
#include "patterning/flipping.hpp"

namespace sadp {
namespace {

// ---- GroupDsu<3> unit coverage ---------------------------------------------

TEST(GroupDsu3, ModularRelationsCompose) {
  GroupDsu<3> d;
  EXPECT_TRUE(d.unite(0, 1, 1));  // c1 = c0 + 1
  EXPECT_TRUE(d.unite(1, 2, 1));  // c2 = c1 + 1
  EXPECT_TRUE(d.unite(0, 2, 2));  // consistent: c2 = c0 + 2
  EXPECT_FALSE(d.unite(0, 2, 1));  // contradiction
  EXPECT_TRUE(d.contradicts(0, 2, 0));
  EXPECT_FALSE(d.contradicts(0, 2, 2));
  // The failed unite must not have corrupted the class.
  auto [r0, d0] = d.find(0);
  auto [r2, d2] = d.find(2);
  EXPECT_EQ(r0, r2);
  EXPECT_EQ((d2 + 3 - d0) % 3, 2u);
}

TEST(GroupDsu3, RandomRelationsMatchGroundTruthLabeling) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng() % 11;
    std::vector<std::uint8_t> label(n);
    for (auto& l : label) l = std::uint8_t(rng() % 3);
    GroupDsu<3> d;
    for (int e = 0; e < 24; ++e) {
      const std::size_t u = rng() % n;
      const std::size_t v = rng() % n;
      if (u == v) continue;
      const std::uint8_t rel = std::uint8_t((label[v] + 3 - label[u]) % 3);
      // Relations drawn from one global labeling can never contradict.
      ASSERT_TRUE(d.unite(u, v, rel)) << "trial " << trial;
      auto [ru, du] = d.find(u);
      auto [rv, dv] = d.find(v);
      ASSERT_EQ(ru, rv);
      ASSERT_EQ((dv + 3 - du) % 3, rel % 3);
    }
    // A deliberately wrong relation inside one class must be rejected.
    const std::size_t u = rng() % n;
    const std::size_t v = rng() % n;
    if (u != v) {
      auto [ru, du] = d.find(u);
      auto [rv, dv] = d.find(v);
      if (ru == rv) {
        const std::uint8_t good = std::uint8_t((dv + 3 - du) % 3);
        EXPECT_FALSE(d.unite(u, v, std::uint8_t((good + 1) % 3)));
      }
    }
  }
}

// ---- Shared helpers --------------------------------------------------------

Classification ofType(ScenarioType t) {
  Classification c;
  c.type = t;
  c.overlay = scenarioRule(t).overlay;
  c.cutRisk = scenarioRule(t).cutRisk;
  return c;
}

/// Brute-force minimum over every k^n coloring, costs read through the
/// graph's active spec (the same table the production code charges).
std::int64_t bruteForceMin(const OverlayConstraintGraph& g) {
  const int k = g.colorCount();
  const std::size_t n = g.vertexCount();
  const PatterningSpec* spec = g.patterningSpec();
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::vector<int> c(n, 0);
  for (;;) {
    std::int64_t total = 0;
    for (const OcgEdge& e : g.edges()) {
      if (!e.alive) continue;
      if (spec != nullptr && spec->pairOverlay != nullptr) {
        total += spec->pairOverlay(e.cls, c[e.u], c[e.v]);
      } else {
        const Color cu = colorFromIndex(c[e.u]);
        const Color cv = colorFromIndex(c[e.v]);
        const int i = assignmentIndex(cu, cv);
        total += e.cls.overlay[i];
        if (e.cls.cutRisk[i]) total += OverlayConstraintGraph::kCutRiskPenalty;
      }
    }
    best = std::min(best, total);
    std::size_t i = 0;
    while (i < n && ++c[i] == k) c[i++] = 0;
    if (i == n) break;
  }
  return best;
}

/// True cost of the graph's current (fully assigned) coloring under its
/// own spec tables.
std::int64_t achievedCost(const OverlayConstraintGraph& g) {
  const PatterningSpec* spec = g.patterningSpec();
  std::int64_t total = 0;
  for (const OcgEdge& e : g.edges()) {
    if (!e.alive) continue;
    const Color cu = g.colorOf(g.netOf(e.u));
    const Color cv = g.colorOf(g.netOf(e.v));
    if (spec != nullptr && spec->pairOverlay != nullptr) {
      total += spec->pairOverlay(e.cls, colorIndex(cu), colorIndex(cv));
    } else {
      const int i = assignmentIndex(cu, cv);
      total += e.cls.overlay[i];
      if (e.cls.cutRisk[i]) total += OverlayConstraintGraph::kCutRiskPenalty;
    }
  }
  return total;
}

// ---- SADP (k = 2) vs. brute force ------------------------------------------

// Feasibility: the parity DSU flags a hard odd cycle exactly when no
// 2-coloring stays below kHardCost. Hard types here are the full-span
// parity-expressible ones (T1a must-differ, T1b must-same) -- the ones
// addScenario folds into the DSU.
TEST(Sadp2Oracle, HardFeasibilityMatchesBruteForce) {
  std::mt19937 rng(11);
  int infeasibleSeen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n = 3 + rng() % 8;  // 3 .. 10 vertices
    OverlayConstraintGraph g;
    for (int e = 0; e < int(n) + 4; ++e) {
      const NetId a = NetId(rng() % n);
      const NetId b = NetId(rng() % n);
      if (a == b) continue;
      const int pick = int(rng() % 3);
      const ScenarioType t = pick == 0   ? ScenarioType::T1a
                             : pick == 1 ? ScenarioType::T1b
                                         : ScenarioType::T2a;
      g.addScenario(a, b, ofType(t));
    }
    const bool feasible = bruteForceMin(g) < kHardCost;
    EXPECT_EQ(g.hasHardViolation(), !feasible) << "trial " << trial;
    if (!feasible) ++infeasibleSeen;
  }
  // The generator must actually exercise both outcomes.
  EXPECT_GT(infeasibleSeen, 5);
  EXPECT_LT(infeasibleSeen, 115);
}

// Optimality: on soft trees the flipping DP (reduce + max spanning tree +
// tree DP, Theorem 4) is exact, so it must land on the brute-force optimum.
TEST(Sadp2Oracle, FlipReachesBruteForceOptimumOnSoftTrees) {
  std::mt19937 rng(13);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t n = 2 + rng() % 9;  // 2 .. 10 vertices
    OverlayConstraintGraph g;
    for (std::size_t v = 1; v < n; ++v) {
      const NetId parent = NetId(rng() % v);
      Classification c;
      c.type = ScenarioType::T3a;  // soft, material
      for (int& o : c.overlay) o = int(rng() % 6);
      if (c.overlay == std::array<int, 4>{0, 0, 0, 0}) c.overlay[0] = 1;
      g.addScenario(NetId(v), parent, c);
    }
    colorFlip(g);
    EXPECT_EQ(achievedCost(g), bruteForceMin(g)) << "trial " << trial;
  }
}

// Monotonicity on general graphs: whatever coloring the flip starts from,
// it never makes the true cost worse.
TEST(Sadp2Oracle, FlipIsMonotoneOnGeneralGraphs) {
  std::mt19937 rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + rng() % 8;
    OverlayConstraintGraph g;
    for (int e = 0; e < int(n) + 5; ++e) {
      const NetId a = NetId(rng() % n);
      const NetId b = NetId(rng() % n);
      if (a == b) continue;
      Classification c;
      c.type = ScenarioType::T2a;
      for (int& o : c.overlay) o = int(rng() % 4);
      if (c.overlay == std::array<int, 4>{0, 0, 0, 0}) c.overlay[1] = 1;
      g.addScenario(a, b, c);
    }
    for (std::size_t v = 0; v < g.vertexCount(); ++v) {
      g.setColor(g.netOf(std::uint32_t(v)),
                 rng() % 2 ? Color::Second : Color::Core);
    }
    const std::int64_t before = achievedCost(g);
    colorFlip(g);
    EXPECT_LE(achievedCost(g), before) << "trial " << trial;
  }
}

// ---- TPL (k = 3) vs. brute force -------------------------------------------

/// TPL-material scenario types (the spec's material() set).
ScenarioType tplType(std::uint32_t r) {
  static const ScenarioType kTypes[] = {ScenarioType::T1a, ScenarioType::T1b,
                                        ScenarioType::T2a, ScenarioType::T2b,
                                        ScenarioType::T2c, ScenarioType::T3a,
                                        ScenarioType::T3b};
  return kTypes[r % 7];
}

OverlayConstraintGraph makeTplGraph(std::mt19937& rng, std::size_t n,
                                    int edges) {
  OverlayConstraintGraph g(std::pmr::get_default_resource(),
                           &tpl3Backend().spec());
  for (int e = 0; e < edges; ++e) {
    const NetId a = NetId(rng() % n);
    const NetId b = NetId(rng() % n);
    if (a == b) continue;
    g.addScenario(a, b, ofType(tplType(rng())));
  }
  return g;
}

// Exact optimality: every component of these graphs is within the
// exhaustive branch-and-bound bound (<= 12 classes), so recolor must hit
// the brute-force 3-coloring minimum -- including the infeasible cases,
// where the minimum itself is >= kHardCost.
TEST(Tpl3Oracle, RecolorReachesBruteForceMinimum) {
  std::mt19937 rng(19);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + rng() % 7;  // 3 .. 9 vertices
    OverlayConstraintGraph g = makeTplGraph(rng, n, int(n) + 6);
    if (g.vertexCount() == 0) continue;
    tpl3Backend().recolor(g);
    EXPECT_EQ(achievedCost(g), bruteForceMin(g)) << "trial " << trial;
  }
}

// K4 of must-differ edges is not 3-colorable: the exhaustive pass must
// still find the true minimum (exactly one unavoidable hard pair).
TEST(Tpl3Oracle, InfeasibleCliqueReachesTrueMinimum) {
  OverlayConstraintGraph g(std::pmr::get_default_resource(),
                           &tpl3Backend().spec());
  for (NetId a = 0; a < 4; ++a) {
    for (NetId b = a + 1; b < 4; ++b) {
      g.addScenario(a, b, ofType(ScenarioType::T1a));
    }
  }
  tpl3Backend().recolor(g);
  const std::int64_t best = bruteForceMin(g);
  EXPECT_GE(best, std::int64_t(kHardCost));
  EXPECT_EQ(achievedCost(g), best);
}

// The E5/E6 seed case: an odd must-differ cycle is fatal at k = 2 and
// free at k = 3.
TEST(Tpl3Oracle, OddMustDifferCycleIsThreeColorable) {
  OverlayConstraintGraph g2;
  g2.addScenario(0, 1, ofType(ScenarioType::T1a));
  g2.addScenario(1, 2, ofType(ScenarioType::T1a));
  g2.addScenario(2, 0, ofType(ScenarioType::T1a));
  EXPECT_TRUE(g2.hasHardViolation());

  OverlayConstraintGraph g3(std::pmr::get_default_resource(),
                            &tpl3Backend().spec());
  g3.addScenario(0, 1, ofType(ScenarioType::T1a));
  g3.addScenario(1, 2, ofType(ScenarioType::T1a));
  g3.addScenario(2, 0, ofType(ScenarioType::T1a));
  EXPECT_FALSE(g3.hasHardViolation());
  tpl3Backend().recolor(g3);
  EXPECT_EQ(achievedCost(g3), 0);
  EXPECT_NE(g3.colorOf(0), g3.colorOf(1));
  EXPECT_NE(g3.colorOf(1), g3.colorOf(2));
  EXPECT_NE(g3.colorOf(2), g3.colorOf(0));
}

// Large single component (> 12 classes): the greedy + local-search path.
// The square of a path (edges i..i+1 and i..i+2, all must-differ) is
// 3-chromatic, and the deterministic local search must fully resolve it.
TEST(Tpl3Oracle, GreedyPathResolvesTriangleChain) {
  OverlayConstraintGraph g(std::pmr::get_default_resource(),
                           &tpl3Backend().spec());
  const int n = 30;
  for (int i = 0; i + 1 < n; ++i) {
    g.addScenario(NetId(i), NetId(i + 1), ofType(ScenarioType::T1a));
  }
  for (int i = 0; i + 2 < n; ++i) {
    g.addScenario(NetId(i), NetId(i + 2), ofType(ScenarioType::T1a));
  }
  const FlipStats s = tpl3Backend().recolor(g);
  EXPECT_EQ(s.components, 1);
  EXPECT_EQ(achievedCost(g), 0);
}

// Monotone acceptance: from any full random coloring, recolor never makes
// the true cost worse.
TEST(Tpl3Oracle, RecolorIsMonotone) {
  std::mt19937 rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 4 + rng() % 9;
    OverlayConstraintGraph g = makeTplGraph(rng, n, int(n) + 8);
    for (std::size_t v = 0; v < g.vertexCount(); ++v) {
      g.setColor(g.netOf(std::uint32_t(v)), colorFromIndex(int(rng() % 3)));
    }
    const std::int64_t before = achievedCost(g);
    tpl3Backend().recolor(g);
    EXPECT_LE(achievedCost(g), before) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sadp
