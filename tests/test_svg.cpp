// Tests for the SVG layer renderer.
#include "sadp/svg.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace sadp {
namespace {

TEST(Svg, EmitsWellFormedDocument) {
  const DesignRules rules;
  std::vector<ColoredFragment> frags{
      {Fragment{0, 0, 6, 1, 1}, Color::Core},
      {Fragment{0, 2, 6, 3, 2}, Color::Second},
  };
  const LayerDecomposition d = decomposeLayer(frags, rules);
  std::ostringstream os;
  writeLayerSvg(os, d, frags, rules);
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("<svg", 0), 0u);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  // Both metal colors present.
  EXPECT_NE(s.find("#2b5fad"), std::string::npos);  // core blue
  EXPECT_NE(s.find("#3d9943"), std::string::npos);  // second green
  // Deterministic output.
  std::ostringstream os2;
  writeLayerSvg(os2, d, frags, rules);
  EXPECT_EQ(s, os2.str());
}

TEST(Svg, OptionsToggleLayers) {
  const DesignRules rules;
  std::vector<ColoredFragment> frags{{Fragment{0, 0, 6, 1, 1}, Color::Core}};
  const LayerDecomposition d = decomposeLayer(frags, rules);
  SvgOptions noSpacer;
  noSpacer.drawSpacer = false;
  std::ostringstream a, b;
  writeLayerSvg(a, d, frags, rules);
  writeLayerSvg(b, d, frags, rules, noSpacer);
  EXPECT_GT(a.str().size(), b.str().size());
  EXPECT_NE(a.str().find("#c8c8c8"), std::string::npos);
  EXPECT_EQ(b.str().find("#c8c8c8"), std::string::npos);
}

TEST(Svg, FileWriterCreatesFile) {
  const DesignRules rules;
  std::vector<ColoredFragment> frags{{Fragment{0, 0, 4, 1, 1}, Color::Core}};
  const LayerDecomposition d = decomposeLayer(frags, rules);
  const std::string path = testing::TempDir() + "/sadp_svg_test.svg";
  writeLayerSvgFile(path, d, frags, rules);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  EXPECT_THROW(
      writeLayerSvgFile("/nonexistent-dir/x.svg", d, frags, rules),
      std::runtime_error);
}

TEST(Svg, EmptyLayoutStillValid) {
  const DesignRules rules;
  std::vector<ColoredFragment> frags;
  const LayerDecomposition d = decomposeLayer(frags, rules);
  std::ostringstream os;
  writeLayerSvg(os, d, frags, rules);
  EXPECT_NE(os.str().find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace sadp
