// Determinism contract of the per-layer parallel paths (DESIGN.md §5.6):
// parallelFor assigns iteration i to slot i and all reductions run
// sequentially in layer order, so every thread count must produce results
// identical to the serial run.
#include "util/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"

namespace sadp {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce) {
  for (int threads : {1, 2, 4, 7}) {
    setParallelThreads(threads);
    std::vector<std::atomic<int>> hits(97);
    parallelFor(97, [&](int i) { hits[std::size_t(i)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  setParallelThreads(0);
}

TEST(ParallelFor, EmptyAndSingle) {
  setParallelThreads(4);
  int calls = 0;
  parallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(1, [&](int i) { EXPECT_EQ(i, 0); ++calls; });
  EXPECT_EQ(calls, 1);
  setParallelThreads(0);
}

TEST(ParallelFor, PropagatesFirstException) {
  setParallelThreads(4);
  EXPECT_THROW(
      parallelFor(8,
                  [&](int i) {
                    if (i == 3) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  setParallelThreads(0);
}

TEST(ParallelFor, OverrideBeatsEnvironment) {
  setParallelThreads(3);
  EXPECT_EQ(parallelThreadCount(), 3);
  setParallelThreads(0);  // back to SADP_THREADS / hardware default
  EXPECT_GE(parallelThreadCount(), 1);
}

TEST(ParallelFor, ContextOverloadCoversIndices) {
  RunContext ctx;
  ctx.setThreadCount(3);
  std::vector<std::atomic<int>> hits(61);
  parallelFor(ctx, 61, [&](int i) {
    hits[std::size_t(i)].fetch_add(1);
    // Workers run with the loop's context bound.
    EXPECT_EQ(&RunContext::current(), &ctx);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The loop's counters land in the context's own registry, not the
  // process default.
  EXPECT_EQ(ctx.metrics().counter("parallel.calls").value(), 1);
  EXPECT_EQ(ctx.metrics().counter("parallel.jobs").value(), 61);
}

TEST(ParallelFor, TwoContextsNeverOversubscribeGlobalBudget) {
  // Two concurrent contexts, each entitled to threadCount()-1 extra
  // workers on their own, must together stay within the process-wide pool
  // of parallelThreadCount()-1 -- including across nested loops.
  setParallelThreads(4);  // global pool: at most 3 extra workers
  const int globalCap = parallelThreadCount() - 1;
  std::atomic<int> maxSeen{0};
  auto observe = [&]() {
    const int now = globalExtraWorkersInFlight();
    int prev = maxSeen.load();
    while (now > prev && !maxSeen.compare_exchange_weak(prev, now)) {
    }
  };
  auto driver = [&]() {
    RunContext ctx;
    ctx.setThreadCount(4);
    for (int round = 0; round < 8; ++round) {
      parallelFor(ctx, 16, [&](int) {
        observe();
        parallelFor(ctx, 4, [&](int) { observe(); });  // nested
      });
    }
  };
  std::thread a(driver), b(driver);
  a.join();
  b.join();
  EXPECT_LE(maxSeen.load(), globalCap);
  EXPECT_EQ(globalExtraWorkersInFlight(), 0);  // all budget returned
  setParallelThreads(0);
}

TEST(ParallelForWeighted, CoversEveryIndexOnceUnderRandomWeights) {
  std::mt19937 rng(42);
  for (int threads : {1, 2, 4, 7}) {
    setParallelThreads(threads);
    std::vector<std::int64_t> weights(97);
    for (auto& w : weights) w = std::int64_t(rng() % 1000);
    std::vector<std::atomic<int>> hits(97);
    parallelForWeighted(97, weights,
                        [&](int i) { hits[std::size_t(i)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "threads=" << threads;
  }
  setParallelThreads(0);
}

TEST(ParallelForWeighted, ZeroAndNegativeWeightsStillRunEverything) {
  setParallelThreads(4);
  const std::vector<std::int64_t> weights{0, -5, 1, 0, 1000000, -1, 3, 0};
  std::vector<std::atomic<int>> hits(8);
  parallelForWeighted(8, weights,
                      [&](int i) { hits[std::size_t(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  setParallelThreads(0);
}

TEST(ParallelForWeighted, EmptyIsANoOp) {
  setParallelThreads(4);
  int calls = 0;
  parallelForWeighted(0, {}, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  setParallelThreads(0);
}

TEST(ParallelForWeighted, PropagatesFirstException) {
  setParallelThreads(4);
  const std::vector<std::int64_t> weights(8, 1);
  EXPECT_THROW(
      parallelForWeighted(8, weights,
                          [&](int i) {
                            if (i == 3) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  setParallelThreads(0);
}

TEST(ParallelForWeighted, CountersMatchUnweightedLoop) {
  // The two loop flavors must be indistinguishable in the metrics registry
  // -- the fuzz suite diffs whole counter snapshots across schedule modes.
  RunContext a, b;
  a.setThreadCount(3);
  b.setThreadCount(3);
  const std::vector<std::int64_t> weights{5, 1, 9, 2, 2, 7, 1, 1, 4, 3, 8};
  parallelFor(a, 11, [](int) {});
  parallelForWeighted(b, 11, weights, [](int) {});
  EXPECT_EQ(a.metrics().counterSnapshot(), b.metrics().counterSnapshot());
}

bool sameReport(const OverlayReport& a, const OverlayReport& b) {
  return a.sideOverlayNm == b.sideOverlayNm &&
         a.sideOverlaySections == b.sideOverlaySections &&
         a.hardOverlays == b.hardOverlays && a.tipOverlays == b.tipOverlays &&
         a.cutWidthConflicts == b.cutWidthConflicts &&
         a.cutSpaceConflicts == b.cutSpaceConflicts &&
         a.spacerOverTargetPx == b.spacerOverTargetPx;
}

TEST(ParallelDeterminism, PhysicalReportIdenticalAcrossThreadCounts) {
  BenchmarkInstance inst = makeBenchmark(paperBenchmark("Test1").scaled(0.1));
  OverlayAwareRouter router(inst.grid, inst.netlist);
  router.run();

  setParallelThreads(1);
  const OverlayReport serial = router.physicalReport();
  for (int threads : {2, 4, 8}) {
    setParallelThreads(threads);
    const OverlayReport parallel = router.physicalReport();
    EXPECT_TRUE(sameReport(serial, parallel)) << "threads=" << threads;
  }
  setParallelThreads(0);
}

TEST(ParallelDeterminism, FullRouteIdenticalAcrossThreadCounts) {
  // The repair pass consumes parallel pass-start snapshots; the whole
  // route (including repair) must still be byte-identical per thread count.
  const BenchmarkSpec spec = paperBenchmark("Test1").scaled(0.06);

  setParallelThreads(1);
  BenchmarkInstance a = makeBenchmark(spec);
  OverlayAwareRouter ra(a.grid, a.netlist);
  const RoutingStats sa = ra.run();
  const OverlayReport pa = ra.physicalReport();

  setParallelThreads(4);
  BenchmarkInstance b = makeBenchmark(spec);
  OverlayAwareRouter rb(b.grid, b.netlist);
  const RoutingStats sb = rb.run();
  const OverlayReport pb = rb.physicalReport();
  setParallelThreads(0);

  EXPECT_EQ(sa.routedNets, sb.routedNets);
  EXPECT_EQ(sa.wirelength, sb.wirelength);
  EXPECT_EQ(sa.vias, sb.vias);
  EXPECT_TRUE(sameReport(pa, pb));
}

}  // namespace
}  // namespace sadp
