// Backend equivalence and capability gate (ctest label `fuzz`,
// DESIGN.md §5.13).
//
// Two bars, one per backend:
//
//   sadp2 -- selecting the SADP backend EXPLICITLY (RouterOptions::backend,
//   or the RunContext backend name the CLI/service route through) must be
//   byte-identical to not selecting any backend at all, across the serial
//   loop, wave-parallel routing (--route-jobs), and the service's ECO
//   replay path: per-layer mask fingerprints, committed routes, overlay
//   report, CSV row, and the full metric counter snapshot. Combined with
//   test_golden_e2e (which pins the default path against committed
//   pre-refactor fixtures), this proves `--backend sadp2` output equals
//   the pre-backend goldens.
//
//   tpl3 -- the E5/E6-style odd-cycle fixture below is UNROUTABLE under
//   two-mask SADP (the hard constraints close an odd cycle and no detour
//   exists), and the triple-patterning backend must route it completely
//   with zero hard overlay violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/benchmark.hpp"
#include "patterning/backend.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"
#include "sadp/bitmap.hpp"
#include "service/session.hpp"

namespace sadp {
namespace {

BenchmarkSpec fuzzSpec(std::uint32_t seed) {
  std::mt19937 rng(seed * 2654435761u + 113u);
  BenchmarkSpec s;
  s.name = "bf" + std::to_string(seed);
  s.netCount = 10 + int(rng() % 25);
  s.width = Track(32 + int(rng() % 21));
  s.height = Track(32 + int(rng() % 21));
  s.seed = std::uint64_t(seed) * 37 + 5;
  return s;
}

/// Everything one routed run must reproduce byte-for-byte.
struct RouteDigest {
  std::vector<std::uint64_t> maskFps;  ///< maskFingerprint per layer
  std::vector<std::vector<GridNode>> paths;
  std::vector<char> routed;
  OverlayReport report;
  std::string csvRow;
  std::vector<CounterSample> counters;
};

enum class Select { Default, ExplicitOption, ContextName };

RouteDigest routeOnce(const BenchmarkSpec& spec, Select how, int routeJobs) {
  RunContext ctx;
  ctx.setThreadCount(2);
  if (how == Select::ContextName) ctx.setPatterningBackendName("sadp2");
  BenchmarkInstance inst = makeBenchmark(spec);
  RouterOptions ro;
  ro.routeJobs = routeJobs;
  if (how == Select::ExplicitOption) ro.backend = &sadp2Backend();
  OverlayAwareRouter router(inst.grid, inst.netlist, ro, &ctx);
  const RoutingStats stats = router.run();
  const OverlayReport report = router.physicalReport();

  RouteDigest out;
  for (int layer = 0; layer < inst.grid.layers(); ++layer) {
    out.maskFps.push_back(maskFingerprint(router.decompose(layer)));
  }
  for (const NetRouteState& st : router.netStates()) {
    out.paths.push_back(st.path);
    out.routed.push_back(st.routed ? 1 : 0);
  }
  out.report = report;
  std::ostringstream csv;
  csv << stats.totalNets << ',' << stats.routedNets << ','
      << stats.routability() << ',' << stats.wirelength << ',' << stats.vias
      << ',' << stats.ripUps << ',' << report.sideOverlayNm << ','
      << report.cutConflicts() << ',' << report.hardOverlays;
  out.csvRow = csv.str();
  out.counters = ctx.metrics().counterSnapshot();
  return out;
}

void expectSameDigest(const RouteDigest& got, const RouteDigest& ref,
                      const std::string& what) {
  EXPECT_EQ(got.maskFps, ref.maskFps) << what;
  EXPECT_EQ(got.routed, ref.routed) << what;
  EXPECT_EQ(got.paths, ref.paths) << what;
  EXPECT_TRUE(got.report == ref.report) << what;
  EXPECT_EQ(got.csvRow, ref.csvRow) << what;
  ASSERT_EQ(got.counters.size(), ref.counters.size()) << what;
  for (std::size_t i = 0; i < ref.counters.size(); ++i) {
    EXPECT_EQ(got.counters[i].first, ref.counters[i].first) << what;
    EXPECT_EQ(got.counters[i].second, ref.counters[i].second)
        << what << " counter " << ref.counters[i].first;
  }
}

TEST(BackendFuzz, ExplicitSadp2ByteIdenticalToDefault) {
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    const BenchmarkSpec spec = fuzzSpec(seed);
    for (int jobs : {1, 4}) {
      const RouteDigest ref = routeOnce(spec, Select::Default, jobs);
      const std::string tag =
          "seed " + std::to_string(seed) + " jobs " + std::to_string(jobs);
      expectSameDigest(routeOnce(spec, Select::ExplicitOption, jobs), ref,
                       tag + " explicit-option");
      expectSameDigest(routeOnce(spec, Select::ContextName, jobs), ref,
                       tag + " context-name");
    }
  }
}

// ---- ECO replay path -------------------------------------------------------

void sessionRun(bool explicitBackend, std::vector<std::uint64_t>* fpsOut,
                std::vector<std::string>* rows) {
  const BenchmarkSpec spec = fuzzSpec(42);
  RouterOptions ro;
  if (explicitBackend) ro.backend = &sadp2Backend();
  Session session("s", spec, /*cache=*/nullptr, ro);
  std::vector<std::uint64_t>& fps = *fpsOut;
  const RouteOutcome cold = session.routeFull();
  fps.push_back(cold.designFp);
  rows->push_back(cold.csvRow);
  // A pin move, a net add, and a net remove: the three edit kinds, each
  // replayed through the verified-memo ECO path.
  const std::vector<NetSpec> nets = session.netSpecs();
  std::string err;
  EditRequest move;
  move.kind = EditRequest::Kind::MovePin;
  move.net = nets.front().name;
  move.pinIndex = 0;
  Pin p = nets.front().pins.front();
  for (GridNode& c : p.candidates) c.x = Track(std::max<Track>(1, c.x - 1));
  move.pins = {p};
  auto out = session.applyEdit(move, &err);
  ASSERT_TRUE(out.has_value()) << err;
  fps.push_back(out->designFp);
  rows->push_back(out->csvRow);

  EditRequest add;
  add.kind = EditRequest::Kind::AddNet;
  add.net = "fuzz_added";
  add.pins = {Pin{{{2, 2, 0}}}, Pin{{{9, 7, 0}}}};
  out = session.applyEdit(add, &err);
  ASSERT_TRUE(out.has_value()) << err;
  fps.push_back(out->designFp);
  rows->push_back(out->csvRow);

  EditRequest rm;
  rm.kind = EditRequest::Kind::RemoveNet;
  rm.net = nets.back().name;
  out = session.applyEdit(rm, &err);
  ASSERT_TRUE(out.has_value()) << err;
  fps.push_back(out->designFp);
  rows->push_back(out->csvRow);
}

TEST(BackendFuzz, EcoReplayByteIdenticalUnderExplicitSadp2) {
  std::vector<std::uint64_t> ref, got;
  std::vector<std::string> refRows, gotRows;
  sessionRun(false, &ref, &refRows);
  sessionRun(true, &got, &gotRows);
  ASSERT_EQ(ref.size(), 4u);  // cold + three edits all succeeded
  EXPECT_EQ(got, ref);
  EXPECT_EQ(gotRows, refRows);
}

// ---- TPL capability fixture ------------------------------------------------

/// The odd-cycle fixture: two abutting vertical wires (a T1a must-differ
/// pair) capped by one horizontal wire whose side faces both their tips at
/// one track (two T1b must-same pairs) -- A=C, B=C, A!=B, an odd cycle of
/// hard constraints. Every cell outside the three target corridors is
/// blocked, so no detour can dissolve the cycle. One layer: no via escape.
struct OddCycleFixture {
  RoutingGrid grid;
  Netlist netlist;

  OddCycleFixture() : grid(16, 16, 1, DesignRules{}) {
    netlist.add("a", Pin{{{5, 5, 0}}}, Pin{{{5, 11, 0}}});
    netlist.add("b", Pin{{{6, 5, 0}}}, Pin{{{6, 11, 0}}});
    netlist.add("c", Pin{{{3, 12, 0}}}, Pin{{{8, 12, 0}}});
    const NetId blocker = NetId(netlist.size() + 10);
    auto inCorridor = [](Track x, Track y) {
      if (x == 5 && y >= 5 && y <= 11) return true;  // net a
      if (x == 6 && y >= 5 && y <= 11) return true;  // net b
      if (y == 12 && x >= 3 && x <= 8) return true;  // net c
      return false;
    };
    for (Track x = 0; x < grid.width(); ++x) {
      for (Track y = 0; y < grid.height(); ++y) {
        if (!inCorridor(x, y)) grid.occupy({x, y, 0}, blocker);
      }
    }
  }
};

TEST(BackendFuzz, OddCycleFixtureUnroutableUnderSadp2) {
  OddCycleFixture f;
  OverlayAwareRouter router(f.grid, f.netlist, RouterOptions{});
  const RoutingStats stats = router.run();
  // The third net of the cycle cannot be placed without the hard odd
  // cycle, and no alternative path exists.
  EXPECT_LT(stats.routedNets, stats.totalNets);
}

TEST(BackendFuzz, OddCycleFixtureRoutesCleanUnderTpl3) {
  OddCycleFixture f;
  RouterOptions ro;
  ro.backend = &tpl3Backend();
  RunContext ctx;
  OverlayAwareRouter router(f.grid, f.netlist, ro, &ctx);
  const RoutingStats stats = router.run();
  EXPECT_EQ(stats.routedNets, stats.totalNets);
  const OverlayReport report = router.physicalReport();
  EXPECT_EQ(report.hardOverlays, 0);
  EXPECT_EQ(report.cutConflicts(), 0);
  // Three exposure planes, all three colors in use (the triangle needs
  // all of them), and the planes union back to the target.
  const LayerDecomposition d = router.decompose(0);
  ASSERT_EQ(d.masks.size(), 3u);
  Bitmap unioned = d.masks[0];
  int populated = 0;
  for (const Bitmap& m : d.masks) {
    if (m.count() > 0) ++populated;
    unioned |= m;
  }
  EXPECT_EQ(populated, 3);
  EXPECT_EQ(fingerprint(unioned), fingerprint(d.target));
}

}  // namespace
}  // namespace sadp
