// Tests for mask extraction and the mask text format.
#include "sadp/mask_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sadp {
namespace {

LayerDecomposition sampleDecomposition() {
  const DesignRules rules;
  std::vector<ColoredFragment> frags{
      {Fragment{0, 0, 6, 1, 1}, Color::Core},
      {Fragment{0, 2, 6, 3, 2}, Color::Second},
  };
  return decomposeLayer(frags, rules);
}

TEST(MaskIo, ExtractionCoversBitmapExactly) {
  const LayerDecomposition d = sampleDecomposition();
  for (MaskLevel level : {MaskLevel::Target, MaskLevel::CoreMask,
                          MaskLevel::Spacer, MaskLevel::CutMask}) {
    const std::vector<Rect> rects = extractMaskRects(d, level);
    // Area of the extracted region equals the bitmap population (each
    // pixel is 10x10 nm).
    const Bitmap& b = level == MaskLevel::Target   ? d.target
                      : level == MaskLevel::CoreMask ? d.coreMask
                      : level == MaskLevel::Spacer   ? d.spacer
                                                     : d.cut;
    EXPECT_EQ(regionArea(rects), std::int64_t(b.count()) * 100)
        << toString(level);
    // Rects must be disjoint: area equals sum of areas.
    std::int64_t sum = 0;
    for (const Rect& r : rects) sum += r.area();
    EXPECT_EQ(sum, regionArea(rects)) << toString(level);
  }
}

TEST(MaskIo, WriteReadRoundTrip) {
  const LayerDecomposition d = sampleDecomposition();
  std::stringstream ss;
  writeMasks(ss, d, 2);
  const MaskFile f = readMasks(ss);
  EXPECT_EQ(f.layer, 2);
  EXPECT_EQ(regionArea(f.level(MaskLevel::Target)),
            std::int64_t(d.target.count()) * 100);
  EXPECT_EQ(regionArea(f.level(MaskLevel::CutMask)),
            std::int64_t(d.cut.count()) * 100);
}

TEST(MaskIo, RejectsGarbage) {
  std::stringstream bad("nope v1 0 0");
  EXPECT_THROW(readMasks(bad), std::runtime_error);
  std::stringstream trunc("sadp-masks v1 0 2\ntarget 0 0 10 10\n");
  EXPECT_THROW(readMasks(trunc), std::runtime_error);
  std::stringstream badLevel("sadp-masks v1 0 1\nbogus 0 0 10 10\n");
  EXPECT_THROW(readMasks(badLevel), std::runtime_error);
}

TEST(MaskIo, LevelsAreDisjointTargetSpacerCut) {
  const LayerDecomposition d = sampleDecomposition();
  const auto target = extractMaskRects(d, MaskLevel::Target);
  const auto spacer = extractMaskRects(d, MaskLevel::Spacer);
  const auto cut = extractMaskRects(d, MaskLevel::CutMask);
  for (const Rect& t : target) {
    for (const Rect& s : spacer) EXPECT_FALSE(t.overlaps(s));
    for (const Rect& c : cut) EXPECT_FALSE(t.overlaps(c));
  }
  for (const Rect& s : spacer) {
    for (const Rect& c : cut) EXPECT_FALSE(s.overlaps(c));
  }
}

}  // namespace
}  // namespace sadp
