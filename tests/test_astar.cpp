// Tests for the overlay-aware A* engine.
#include "route/astar.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

RoutingGrid makeGrid(Track w = 20, Track h = 20, int layers = 3) {
  return RoutingGrid(w, h, layers, DesignRules{});
}

TEST(AStar, StraightLinePreferredDirection) {
  RoutingGrid g = makeGrid();
  AStarEngine eng(g);
  const GridNode s{2, 5, 0}, t{12, 5, 0};
  auto res = eng.route(1, {{s}}, {{t}}, AStarParams{});
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->path.front(), s);
  EXPECT_EQ(res->path.back(), t);
  EXPECT_EQ(res->path.size(), 11u);
  EXPECT_EQ(res->vias, 0);
  EXPECT_DOUBLE_EQ(res->cost, 10.0);
}

TEST(AStar, BendUsesLayersOrJog) {
  RoutingGrid g = makeGrid();
  AStarEngine eng(g);
  auto res = eng.route(1, {{GridNode{2, 2, 0}}}, {{GridNode{10, 10, 0}}},
                       AStarParams{});
  ASSERT_TRUE(res.has_value());
  // Path must be connected: consecutive nodes differ by one step.
  for (std::size_t i = 1; i < res->path.size(); ++i) {
    const GridNode& a = res->path[i - 1];
    const GridNode& b = res->path[i];
    const int d = std::abs(a.x - b.x) + std::abs(a.y - b.y) +
                  std::abs(a.layer - b.layer);
    EXPECT_EQ(d, 1);
  }
}

TEST(AStar, AvoidsOccupiedNodes) {
  RoutingGrid g = makeGrid();
  // Wall across the middle on all layers except a door at (10, 18).
  for (int l = 0; l < 3; ++l) {
    for (Track y = 0; y < 20; ++y) {
      if (y == 18) continue;
      g.occupy({10, y, std::int16_t(l)}, 99);
    }
  }
  AStarEngine eng(g);
  auto res = eng.route(1, {{GridNode{2, 2, 0}}}, {{GridNode{18, 2, 0}}},
                       AStarParams{});
  ASSERT_TRUE(res.has_value());
  bool throughDoor = false;
  for (const GridNode& n : res->path) {
    EXPECT_NE(g.owner(n), 99);
    if (n.x == 10 && n.y == 18) throughDoor = true;
  }
  EXPECT_TRUE(throughDoor);
}

TEST(AStar, OwnNodesArePassable) {
  RoutingGrid g = makeGrid();
  g.occupy({5, 5, 0}, 1);  // the net's own pin reservation
  AStarEngine eng(g);
  auto res =
      eng.route(1, {{GridNode{5, 5, 0}}}, {{GridNode{8, 5, 0}}}, AStarParams{});
  ASSERT_TRUE(res.has_value());
}

TEST(AStar, UnreachableReturnsNullopt) {
  RoutingGrid g = makeGrid(10, 10, 1);
  for (Track y = 0; y < 10; ++y) g.block({5, y, 0});
  AStarEngine eng(g);
  auto res =
      eng.route(1, {{GridNode{2, 2, 0}}}, {{GridNode{8, 8, 0}}}, AStarParams{});
  EXPECT_FALSE(res.has_value());
}

TEST(AStar, MultiCandidatePinsPickClosest) {
  RoutingGrid g = makeGrid();
  AStarEngine eng(g);
  std::vector<GridNode> sources{{2, 2, 0}, {2, 10, 0}};
  std::vector<GridNode> targets{{18, 10, 0}, {18, 18, 0}};
  auto res = eng.route(1, sources, targets, AStarParams{});
  ASSERT_TRUE(res.has_value());
  // (2,10) -> (18,10) is the straight preferred-direction option.
  EXPECT_EQ(res->path.front(), (GridNode{2, 10, 0}));
  EXPECT_EQ(res->path.back(), (GridNode{18, 10, 0}));
}

TEST(AStar, PenaltyFieldDiverts) {
  RoutingGrid g = makeGrid();
  AStarEngine eng(g);
  PenaltyField fld(g);
  // Make the straight row expensive.
  for (Track x = 5; x < 15; ++x) fld.add({x, 5, 0}, 100.0f);
  auto res = eng.route(1, {{GridNode{2, 5, 0}}}, {{GridNode{18, 5, 0}}},
                       AStarParams{}, &fld);
  ASSERT_TRUE(res.has_value());
  for (const GridNode& n : res->path) {
    EXPECT_FALSE(n.layer == 0 && n.y == 5 && n.x >= 5 && n.x < 15)
        << "path should avoid the penalized row";
  }
}

TEST(AStar, T2bFieldIsDirectional) {
  RoutingGrid g = makeGrid();
  AStarEngine eng(g);
  T2bField t2b(g);
  // Penalize vertical entry into row 5; horizontal entry stays free.
  for (Track x = 0; x < 20; ++x) t2b.verticalEntry.add({x, 5, 0}, 100.0f);
  AStarParams p;
  // Horizontal route across row 5 is unaffected.
  auto horiz = eng.route(1, {{GridNode{2, 5, 0}}}, {{GridNode{18, 5, 0}}}, p,
                         nullptr, &t2b);
  ASSERT_TRUE(horiz.has_value());
  EXPECT_DOUBLE_EQ(horiz->cost, 16.0);
  // A vertical route on layer 0 crossing row 5 must pay or dodge via layers.
  auto vert = eng.route(2, {{GridNode{10, 2, 0}}}, {{GridNode{10, 8, 0}}}, p,
                        nullptr, &t2b);
  ASSERT_TRUE(vert.has_value());
  bool enteredRow5OnL0Vertically = false;
  for (std::size_t i = 1; i < vert->path.size(); ++i) {
    if (vert->path[i].layer == 0 && vert->path[i].y == 5 &&
        vert->path[i - 1].y != 5) {
      enteredRow5OnL0Vertically = true;
    }
  }
  EXPECT_FALSE(enteredRow5OnL0Vertically);
}

TEST(AStar, ExpansionCapAborts) {
  RoutingGrid g = makeGrid(30, 30, 1);
  AStarEngine eng(g);
  AStarParams p;
  p.maxExpansions = 5;
  auto res = eng.route(1, {{GridNode{0, 0, 0}}}, {{GridNode{29, 29, 0}}}, p);
  EXPECT_FALSE(res.has_value());
}

TEST(AStar, ReusableEngineManyQueries) {
  RoutingGrid g = makeGrid();
  AStarEngine eng(g);
  for (int i = 0; i < 200; ++i) {
    auto res = eng.route(1, {{GridNode{Track(i % 18), 2, 0}}},
                         {{GridNode{Track((i * 7) % 18), 15, 0}}},
                         AStarParams{});
    ASSERT_TRUE(res.has_value()) << i;
  }
}

TEST(AStar, ViaCostCounted) {
  RoutingGrid g = makeGrid();
  // Block the whole of layer 0 row except endpoints to force a layer hop.
  for (Track x = 5; x < 15; ++x) {
    for (Track y = 0; y < 20; ++y) g.block({x, y, 0});
  }
  AStarEngine eng(g);
  auto res = eng.route(1, {{GridNode{2, 5, 0}}}, {{GridNode{18, 5, 0}}},
                       AStarParams{});
  ASSERT_TRUE(res.has_value());
  EXPECT_GE(res->vias, 2);
}

}  // namespace
}  // namespace sadp
