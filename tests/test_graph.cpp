// Tests for the overlay constraint graph and its parity union-find
// (odd-cycle detection, super-vertex reduction, pseudo-coloring).
#include "ocg/graph.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

Classification hardDiff() {
  Classification c;
  c.type = ScenarioType::T1a;
  c.overlay = {kHardCost, 0, 0, kHardCost};
  return c;
}

Classification hardSame() {
  Classification c;
  c.type = ScenarioType::T1b;
  c.overlay = {0, kHardCost, kHardCost, 0};
  return c;
}

Classification nonhard(int cc, int cs, int sc, int ss,
                       ScenarioType t = ScenarioType::T3a) {
  Classification c;
  c.type = t;
  c.overlay = {cc, cs, sc, ss};
  return c;
}

TEST(ParityDsu, UniteAndContradiction) {
  ParityDsu d;
  EXPECT_TRUE(d.unite(0, 1, 1));  // different
  EXPECT_TRUE(d.unite(1, 2, 1));  // different -> 0 and 2 same
  EXPECT_FALSE(d.contradicts(0, 2, 0));
  EXPECT_TRUE(d.contradicts(0, 2, 1));
  // Odd cycle: 0-2 must now be same; requiring different fails.
  EXPECT_FALSE(d.unite(0, 2, 1));
  EXPECT_TRUE(d.unite(0, 2, 0));
}

TEST(ParityDsu, LongChainParity) {
  ParityDsu d;
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(d.unite(i, i + 1, 1));
  }
  auto [r0, p0] = d.find(0);
  auto [r100, p100] = d.find(100);
  EXPECT_EQ(r0, r100);
  EXPECT_EQ(p0, p100);  // 100 flips = even -> same color
  auto [r99, p99] = d.find(99);
  EXPECT_EQ(r99, r0);
  EXPECT_NE(p99, p0);
}

TEST(Ocg, HardOddCycleDetected) {
  OverlayConstraintGraph g;
  EXPECT_TRUE(g.addScenario(1, 2, hardDiff()));
  EXPECT_TRUE(g.addScenario(2, 3, hardDiff()));
  // Triangle of "different" constraints is not 2-colorable.
  EXPECT_FALSE(g.addScenario(3, 1, hardDiff()));
  EXPECT_TRUE(g.hasHardViolation());
}

TEST(Ocg, MixedHardCycleParity) {
  OverlayConstraintGraph g;
  // A-B different, B-C same, C-A different: A!=B, B==C, C!=A -> consistent
  // (A != B == C != A holds: A different from both).
  EXPECT_TRUE(g.addScenario(1, 2, hardDiff()));
  EXPECT_TRUE(g.addScenario(2, 3, hardSame()));
  EXPECT_TRUE(g.addScenario(3, 1, hardDiff()));
  EXPECT_FALSE(g.hasHardViolation());
  // Now force A==B too: contradiction.
  EXPECT_FALSE(g.addScenario(1, 2, hardSame()));
  EXPECT_TRUE(g.hasHardViolation());
}

TEST(Ocg, RemoveNetClearsViolation) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardDiff());
  g.addScenario(2, 3, hardDiff());
  g.addScenario(3, 1, hardDiff());
  EXPECT_TRUE(g.hasHardViolation());
  g.removeNet(3);
  EXPECT_FALSE(g.hasHardViolation());
  // 1 and 2 still constrained.
  g.setColor(1, Color::Core);
  EXPECT_EQ(g.colorOf(2), Color::Second);
}

TEST(Ocg, HardClassColoringPropagates) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardDiff());
  g.addScenario(2, 3, hardSame());
  g.setColor(1, Color::Core);
  EXPECT_EQ(g.colorOf(1), Color::Core);
  EXPECT_EQ(g.colorOf(2), Color::Second);
  EXPECT_EQ(g.colorOf(3), Color::Second);
  g.setColor(3, Color::Core);  // flips the whole class
  EXPECT_EQ(g.colorOf(1), Color::Second);
  EXPECT_EQ(g.colorOf(2), Color::Core);
}

TEST(Ocg, PseudoColorPicksCheaperSide) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, nonhard(5, 0, 0, 5));  // prefers different colors
  g.setColor(1, Color::Core);
  const Color c = g.pseudoColor(2);
  EXPECT_EQ(c, Color::Second);
  EXPECT_EQ(g.totalOverlayUnits(), 0);
}

TEST(Ocg, PseudoColorRespectsHardClass) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardSame());
  // Net 3 prefers to differ from 2; net 1 is colored Core.
  g.addScenario(2, 3, nonhard(4, 0, 0, 4));
  g.setColor(1, Color::Core);
  g.pseudoColor(3);
  // 2 is Core (same class as 1); 3 should become Second.
  EXPECT_EQ(g.colorOf(2), Color::Core);
  EXPECT_EQ(g.colorOf(3), Color::Second);
}

TEST(Ocg, EdgeCostUnassignedOptimistic) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, nonhard(3, 1, 2, 4));
  // Nothing colored: best case = 1.
  EXPECT_EQ(g.totalOverlayUnits(), 1);
  g.setColor(1, Color::Core);
  // Core row: CC=3, CS=1 -> best 1.
  EXPECT_EQ(g.totalOverlayUnits(), 1);
  g.setColor(2, Color::Core);
  EXPECT_EQ(g.totalOverlayUnits(), 3);
}

TEST(Ocg, MultiEdgesAccumulate) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, nonhard(1, 0, 0, 1));
  g.addScenario(1, 2, nonhard(1, 0, 0, 1));
  g.setColor(1, Color::Core);
  g.setColor(2, Color::Core);
  EXPECT_EQ(g.totalOverlayUnits(), 2);
  EXPECT_EQ(g.overlayUnitsOfNet(1), 2);
}

TEST(Ocg, TrivialScenarioIgnored) {
  OverlayConstraintGraph g;
  Classification c;
  c.type = ScenarioType::T2c;
  g.addScenario(1, 2, c);
  EXPECT_EQ(g.vertexCount(), 0u);
}

TEST(Ocg, CutRiskCountsUnderAssignment) {
  OverlayConstraintGraph g;
  Classification c = nonhard(0, 2, 2, 0, ScenarioType::T2a);
  c.cutRisk = {false, true, true, false};
  g.addScenario(1, 2, c);
  g.setColor(1, Color::Core);
  g.setColor(2, Color::Second);
  EXPECT_EQ(g.cutRiskCount(), 1);
  g.setColor(2, Color::Core);
  EXPECT_EQ(g.cutRiskCount(), 0);
}

TEST(Ocg, RemoveNetKeepsOtherColors) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardDiff());
  g.addScenario(3, 4, hardDiff());
  g.setColor(1, Color::Core);
  g.setColor(3, Color::Second);
  g.removeNet(2);
  EXPECT_EQ(g.colorOf(1), Color::Core);
  EXPECT_EQ(g.colorOf(3), Color::Second);
  EXPECT_EQ(g.colorOf(4), Color::Core);
}

}  // namespace
}  // namespace sadp
