// Property tests for the wave planner (route/waves.hpp, ctest label
// `fuzz`). planWaves is a scheduling hint -- committed routing never
// depends on it for correctness -- but the speculation hit rate and the
// serial/parallel equivalence fuzz gates do depend on its contract:
//
//   1. every box is assigned to exactly one wave, ids dense in
//      [0, waveCount);
//   2. no two non-empty boxes in the same wave come within minGapTracks
//      of each other on BOTH axes (the Theorem 1 independence shape);
//   3. the plan is the canonical-order greedy coloring: a pure function
//      of (boxes, gap), independent of thread budget, hash-map iteration
//      order (it uses none), and repeated invocation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "route/waves.hpp"
#include "util/parallel_for.hpp"

namespace sadp {
namespace {

std::vector<Rect> randomBoxes(std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> nPick(0, 40), xy(0, 90), wh(1, 12);
  std::bernoulli_distribution makeEmpty(0.1);
  std::vector<Rect> boxes;
  const int n = nPick(rng);
  for (int i = 0; i < n; ++i) {
    if (makeEmpty(rng)) {
      boxes.push_back(Rect{});  // net with no placed candidates
      continue;
    }
    const Track x = Track(xy(rng)), y = Track(xy(rng));
    boxes.push_back(Rect{x, y, x + Track(wh(rng)), y + Track(wh(rng))});
  }
  return boxes;
}

/// Independence test straight from the definition, bypassing Rect
/// inflation entirely: two boxes conflict iff both axis gaps are < gap.
/// (A negative gap is overlap.)
bool tooClose(const Rect& a, const Rect& b, Track gap) {
  if (a.empty() || b.empty()) return false;
  const Track dx = std::max(a.xlo - b.xhi, b.xlo - a.xhi);
  const Track dy = std::max(a.ylo - b.yhi, b.ylo - a.yhi);
  return dx < gap && dy < gap;
}

TEST(WavePlanner, EveryBoxAssignedExactlyOnceToADenseWaveId) {
  for (std::uint32_t seed = 1; seed <= 200; ++seed) {
    const std::vector<Rect> boxes = randomBoxes(seed);
    const WavePlan plan = planWaves(boxes, 3);
    ASSERT_EQ(plan.waveOf.size(), boxes.size()) << "seed=" << seed;
    std::vector<int> perWave(std::size_t(std::max(plan.waveCount, 1)), 0);
    for (const int w : plan.waveOf) {
      ASSERT_GE(w, 0) << "seed=" << seed;
      ASSERT_LT(w, plan.waveCount) << "seed=" << seed;
      ++perWave[std::size_t(w)];
    }
    // Dense ids: no empty wave (greedy only opens a wave to place a box).
    if (!boxes.empty()) {
      for (int w = 0; w < plan.waveCount; ++w) {
        EXPECT_GT(perWave[std::size_t(w)], 0)
            << "seed=" << seed << " empty wave " << w;
      }
    } else {
      EXPECT_EQ(plan.waveCount, 0) << "seed=" << seed;
    }
  }
}

TEST(WavePlanner, SameWaveBoxesAreIndependentAtTheGap) {
  for (std::uint32_t seed = 1; seed <= 200; ++seed) {
    const std::vector<Rect> boxes = randomBoxes(seed);
    for (const Track gap : {Track(1), Track(3), Track(7)}) {
      const WavePlan plan = planWaves(boxes, gap);
      for (std::size_t i = 0; i < boxes.size(); ++i) {
        for (std::size_t j = i + 1; j < boxes.size(); ++j) {
          if (plan.waveOf[i] != plan.waveOf[j]) continue;
          EXPECT_FALSE(tooClose(boxes[i], boxes[j], gap))
              << "seed=" << seed << " gap=" << gap << " boxes " << i
              << " and " << j << " share wave " << plan.waveOf[i];
        }
      }
    }
  }
}

TEST(WavePlanner, MatchesTheCanonicalOrderGreedyOracle) {
  // Independent re-statement of the contract: scan boxes in input order,
  // join the lowest-numbered wave with no member too close, else open a
  // new wave. Any change to planWaves that keeps "waves are independent"
  // but breaks THIS tie-breaking would silently change which searches
  // get speculated -- legal for outputs, but a determinism-contract break
  // the fuzz gates want to catch loudly.
  for (std::uint32_t seed = 1; seed <= 200; ++seed) {
    const std::vector<Rect> boxes = randomBoxes(seed);
    const Track gap = Track(1 + int(seed % 5));
    std::vector<int> oracle(boxes.size(), -1);
    int waves = 0;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      for (int w = 0; w < waves && oracle[i] < 0; ++w) {
        bool ok = true;
        for (std::size_t j = 0; j < i && ok; ++j) {
          ok = oracle[j] != w || !tooClose(boxes[i], boxes[j], gap);
        }
        if (ok) oracle[i] = w;
      }
      if (oracle[i] < 0) oracle[i] = waves++;
    }
    const WavePlan plan = planWaves(boxes, gap);
    EXPECT_EQ(plan.waveOf, oracle) << "seed=" << seed << " gap=" << gap;
    EXPECT_EQ(plan.waveCount, waves) << "seed=" << seed << " gap=" << gap;
  }
}

TEST(WavePlanner, DeterministicAcrossCallsAndThreadBudgets) {
  const std::vector<Rect> boxes = randomBoxes(42);
  const WavePlan ref = planWaves(boxes, 3);
  // planWaves is serial by contract; the worker-pool setting must be
  // invisible to it (the plan feeds cross-thread-count equivalence gates).
  for (const int threads : {0, 1, 8}) {
    setParallelThreads(threads);
    for (int rep = 0; rep < 3; ++rep) {
      const WavePlan got = planWaves(boxes, 3);
      EXPECT_EQ(got.waveOf, ref.waveOf) << "threads=" << threads;
      EXPECT_EQ(got.waveCount, ref.waveCount) << "threads=" << threads;
    }
  }
  setParallelThreads(0);
}

TEST(WavePlanner, EmptyBoxesConflictWithNothing) {
  // A net with no placed candidates has an empty pin bbox. Inflating an
  // empty Rect produces a concrete box near the origin, so a naive
  // "inflate then overlap" would glue such nets to origin-adjacent nets.
  // They must instead always join wave 0.
  const Rect origin{0, 0, 4, 4};
  const std::vector<Rect> boxes = {origin, Rect{}, Rect{}, origin};
  const WavePlan plan = planWaves(boxes, 3);
  EXPECT_EQ(plan.waveOf[1], 0);
  EXPECT_EQ(plan.waveOf[2], 0);
  // The two identical concrete boxes DO conflict.
  EXPECT_NE(plan.waveOf[0], plan.waveOf[3]);
  EXPECT_EQ(plan.waveOf[0], 0);
}

TEST(WavePlanner, NoBoxesYieldsNoWaves) {
  const WavePlan plan = planWaves({}, 3);
  EXPECT_TRUE(plan.waveOf.empty());
  EXPECT_EQ(plan.waveCount, 0);
}

}  // namespace
}  // namespace sadp
