// Serial-vs-parallel routing equivalence fuzz gate (ctest label `fuzz`,
// DESIGN.md §5.12): wave-parallel routing may change WHO executes each
// attempt-0 A* search -- the sequential loop, or speculative workers
// running ahead of the commit frontier -- but never WHAT is committed.
// Every seeded design routes at routeJobs 1 (the untouched serial loop),
// 2 and 8, and the runs must agree byte-for-byte on per-layer mask
// fingerprints, rasterToNmRects output, every net's committed route, the
// overlay report, the CSV report row, and the FULL metric counter
// snapshot (histograms included). Span aggregates are exempt by design:
// like `parallel.steal`, the wave spans and the astar.route span count
// depend on who ran a search, not on what was routed. Run under
// -DSADP_SANITIZE=thread the same trials race-check the speculation
// fan-out against the frozen router state.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"
#include "sadp/bitmap.hpp"
#include "util/parallel_for.hpp"

namespace sadp {
namespace {

/// Seeded random design. Sizes span tiny (every net in one wave's reach)
/// to moderate (many independent waves), with occasional multi-candidate
/// pins and heavier blockage -- the regimes where speculation hit rate
/// actually varies.
BenchmarkSpec fuzzSpec(std::uint32_t seed) {
  std::mt19937 rng(seed * 2654435761u + 97u);
  BenchmarkSpec s;
  s.name = "rpf" + std::to_string(seed);
  s.netCount = 8 + int(rng() % 29);       // 8 .. 36
  s.width = Track(32 + int(rng() % 25));  // 32 .. 56
  s.height = Track(32 + int(rng() % 25));
  s.seed = std::uint64_t(seed) * 31 + 7;
  if (rng() % 3 == 0) s.pinCandidates = 2;
  return s;
}

/// Everything one routed run must reproduce byte-for-byte.
struct RouteDigest {
  std::vector<std::uint64_t> planes;       ///< 4 mask planes per layer
  std::vector<std::vector<Rect>> cutRects; ///< rasterToNmRects per layer
  std::vector<std::vector<GridNode>> paths;  ///< committed route per net
  std::vector<char> routed;
  OverlayReport report;
  std::string csvRow;
  std::vector<CounterSample> counters;
  std::vector<std::pair<std::string, std::int64_t>> histTotals;
  std::int64_t specHits = 0;
  std::int64_t specMisses = 0;
};

RouteDigest routeOnce(const BenchmarkSpec& spec, int routeJobs, int threads) {
  RunContext ctx;
  ctx.setThreadCount(threads);
  BenchmarkInstance inst = makeBenchmark(spec);
  RouterOptions ro;
  ro.routeJobs = routeJobs;
  OverlayAwareRouter router(inst.grid, inst.netlist, ro, &ctx);
  const RoutingStats stats = router.run();
  const OverlayReport report = router.physicalReport();

  RouteDigest out;
  for (int layer = 0; layer < inst.grid.layers(); ++layer) {
    const LayerDecomposition d = router.decompose(layer);
    out.planes.push_back(fingerprint(d.target));
    out.planes.push_back(fingerprint(d.coreMask));
    out.planes.push_back(fingerprint(d.spacer));
    out.planes.push_back(fingerprint(d.cut));
    out.cutRects.push_back(rasterToNmRects(d.cut, d.windowNm));
  }
  for (const NetRouteState& st : router.netStates()) {
    out.paths.push_back(st.path);
    out.routed.push_back(st.routed ? 1 : 0);
  }
  out.report = report;
  // The sadp_route_cli CSV row shape (cpuSeconds-free fields only).
  std::ostringstream csv;
  csv << stats.totalNets << ',' << stats.routedNets << ','
      << stats.routability() << ',' << stats.wirelength << ',' << stats.vias
      << ',' << stats.ripUps << ',' << report.sideOverlayNm << ','
      << report.cutConflicts() << ',' << report.hardOverlays;
  out.csvRow = csv.str();
  out.counters = ctx.metrics().counterSnapshot();
  for (const std::string& name : ctx.metrics().histogramNames()) {
    const Histogram* h = ctx.metrics().findHistogram(name);
    out.histTotals.emplace_back(name, h->count());
    out.histTotals.emplace_back(name + ".sum", h->sum());
  }
  out.specHits = router.waveSpecHits();
  out.specMisses = router.waveSpecMisses();
  return out;
}

void expectSameDigest(const RouteDigest& got, const RouteDigest& ref,
                      const std::string& what) {
  EXPECT_EQ(got.planes, ref.planes) << what;
  EXPECT_EQ(got.cutRects, ref.cutRects) << what;
  EXPECT_EQ(got.routed, ref.routed) << what;
  EXPECT_EQ(got.paths, ref.paths) << what;
  EXPECT_TRUE(got.report == ref.report) << what;
  EXPECT_EQ(got.csvRow, ref.csvRow) << what;
  EXPECT_EQ(got.histTotals, ref.histTotals) << what;
  ASSERT_EQ(got.counters.size(), ref.counters.size()) << what;
  for (std::size_t i = 0; i < ref.counters.size(); ++i) {
    EXPECT_EQ(got.counters[i].first, ref.counters[i].first) << what;
    EXPECT_EQ(got.counters[i].second, ref.counters[i].second)
        << what << " counter " << ref.counters[i].first;
  }
}

TEST(RouteParallelFuzz, SerialAndWaveRoutingByteIdentical) {
  // Open the process-wide worker pool: on a 1-CPU CI host the default
  // budget would run every speculation batch inline (still correct --
  // that IS the 1-CPU behavior); an explicit 8 makes workers real so the
  // TSan build exercises the concurrent searches.
  setParallelThreads(8);
  std::int64_t totalSpecHits = 0;
  for (std::uint32_t seed = 1; seed <= 100; ++seed) {
    const BenchmarkSpec spec = fuzzSpec(seed);
    const std::string what = "seed=" + std::to_string(seed) + " nets=" +
                             std::to_string(spec.netCount);
    const RouteDigest serial = routeOnce(spec, 1, 2);
    EXPECT_EQ(serial.specHits + serial.specMisses, 0) << what;  // no waves
    const RouteDigest jobs2 = routeOnce(spec, 2, 2);
    expectSameDigest(jobs2, serial, what + " jobs=2");
    const RouteDigest jobs8 = routeOnce(spec, 8, 8);
    expectSameDigest(jobs8, serial, what + " jobs=8");
    totalSpecHits += jobs2.specHits + jobs8.specHits;
    if (HasFatalFailure()) break;
  }
  // Equivalence must come from verified speculation, not from the wave
  // path silently never engaging.
  EXPECT_GT(totalSpecHits, 0);
  setParallelThreads(0);
}

TEST(RouteParallelFuzz, WaveRoutingUnderOneThreadBudgetMatchesSerial) {
  // The 1-CPU CI shape: routeJobs asks for speculation but the context
  // budget is 1, so every batch runs inline on the caller. Output must
  // still be byte-identical -- including counters.
  const BenchmarkSpec spec = fuzzSpec(7);
  const RouteDigest serial = routeOnce(spec, 1, 1);
  expectSameDigest(routeOnce(spec, 8, 1), serial, "jobs=8 threads=1");
}

}  // namespace
}  // namespace sadp
