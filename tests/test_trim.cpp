// Tests for the trim-process decomposer.
#include "sadp/trim.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

const DesignRules kRules;

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}

TEST(Trim, CorePatternIsClean) {
  const std::vector<ColoredFragment> frags{{hw(1, 0, 8, 2), Color::Core}};
  const TrimReport r = decomposeTrimLayer(frags, kRules).report;
  EXPECT_EQ(r.sideOverlayNm, 0);
  EXPECT_EQ(r.conflicts(), 0);
}

TEST(Trim, IsolatedSecondPatternFullyTrimDefined) {
  // Without assist cores every boundary of a trim pattern is mask-defined.
  const std::vector<ColoredFragment> frags{{hw(1, 0, 8, 2), Color::Second}};
  const auto d = decomposeTrimLayer(frags, kRules);
  // Both long sides exposed over the full 8-track span: 2 * (8*40 - 20).
  EXPECT_EQ(d.report.sideOverlayNm, 2 * (8 * 40 - 20));
  EXPECT_EQ(d.report.hardOverlays, 2);
  EXPECT_EQ(d.report.tipOverlays, 2);
}

TEST(Trim, SpacerProtectsFacingSide) {
  // Second pattern one track from a core: the facing side is self-aligned.
  const std::vector<ColoredFragment> frags{{hw(1, 0, 8, 2), Color::Core},
                                           {hw(2, 0, 8, 3), Color::Second}};
  const auto d = decomposeTrimLayer(frags, kRules);
  // Only the far side (and tips) of the second pattern is exposed.
  EXPECT_EQ(d.report.sideOverlayNm, 8 * 40 - 20);
  EXPECT_EQ(d.report.hardOverlays, 1);
}

TEST(Trim, LineEndConflictDetected) {
  // Two collinear trim openings tip-to-tip at one track: the gap between
  // the openings is 20 nm < d_cut -- the classic parallel line-end trim
  // conflict.
  const std::vector<ColoredFragment> frags{{hw(1, 0, 4, 2), Color::Second},
                                           {hw(2, 4, 8, 2), Color::Second}};
  const auto d = decomposeTrimLayer(frags, kRules);
  EXPECT_EQ(d.report.trimSpaceConflicts, 1);
}

TEST(Trim, UnmergeableCoresConflict) {
  // Adjacent-track same-color cores: the cut process would merge them;
  // the trim process cannot -> core-mask spacing conflict.
  const std::vector<ColoredFragment> frags{{hw(1, 0, 6, 2), Color::Core},
                                           {hw(2, 0, 6, 3), Color::Core}};
  const auto d = decomposeTrimLayer(frags, kRules);
  EXPECT_EQ(d.report.coreSpaceConflicts, 1);
}

TEST(Trim, OppositeMasksNeverConflict) {
  const std::vector<ColoredFragment> frags{{hw(1, 0, 6, 2), Color::Core},
                                           {hw(2, 0, 6, 3), Color::Second}};
  const auto d = decomposeTrimLayer(frags, kRules);
  EXPECT_EQ(d.report.conflicts(), 0);
}

TEST(Trim, SameNetShapesExempt) {
  const std::vector<ColoredFragment> frags{
      {hw(1, 0, 4, 2), Color::Core}, {Fragment{3, 3, 4, 6, 1}, Color::Core}};
  const auto d = decomposeTrimLayer(frags, kRules);
  EXPECT_EQ(d.report.coreSpaceConflicts, 0);
}

TEST(Trim, MaskPartitionHolds) {
  const std::vector<ColoredFragment> frags{{hw(1, 0, 6, 2), Color::Core},
                                           {hw(2, 0, 6, 4), Color::Second}};
  const auto d = decomposeTrimLayer(frags, kRules);
  // Spacer and metal are disjoint; trim openings equal second metal.
  for (int y = 0; y < d.target.height(); ++y) {
    for (int x = 0; x < d.target.width(); ++x) {
      ASSERT_FALSE(d.spacer.get(x, y) && d.target.get(x, y));
      if (d.trimMask.get(x, y)) ASSERT_TRUE(d.target.get(x, y));
    }
  }
}

}  // namespace
}  // namespace sadp
