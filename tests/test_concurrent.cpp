// Concurrent-isolation stress test (DESIGN.md §5.8): two full routing
// runs executing at the same time in separate RunContexts must produce
// metrics, trace totals, eval CSV rows and mask-plane fingerprints
// byte-identical to running each alone. Runs under TSan via the
// `concurrent` ctest label.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "eval/eval.hpp"
#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"
#include "sadp/bitmap.hpp"

namespace sadp {
namespace {

/// Everything a run produces that the isolation contract covers. Span
/// wall times and cpuSeconds are wall clock and excluded by design;
/// "parallel.worker" span COUNTS are excluded too because the number of
/// spawned workers depends on what the shared global pool grants, which
/// legitimately differs between a lone run and two concurrent ones.
struct RunArtifacts {
  std::vector<CounterSample> counters;
  std::vector<std::pair<std::string, std::int64_t>> spanCounts;
  std::vector<std::uint64_t> maskFingerprints;
  std::string csvRow;

  friend bool operator==(const RunArtifacts&, const RunArtifacts&) = default;
};

RunArtifacts runPipeline(const BenchmarkSpec& spec, int threads = 2) {
  RunContext ctx;
  ctx.setThreadCount(threads);
  ctx.setTraceLevel(TraceLevel::Aggregate);
  RunContext::Scope bind(ctx);

  BenchmarkInstance inst = makeBenchmark(spec);
  OverlayAwareRouter router(inst.grid, inst.netlist, {}, &ctx);
  router.run();

  RunArtifacts a;
  for (int layer = 0; layer < inst.grid.layers(); ++layer) {
    const LayerDecomposition d = router.decompose(layer);
    a.maskFingerprints.push_back(fingerprint(d.target));
    a.maskFingerprints.push_back(fingerprint(d.coreMask));
    a.maskFingerprints.push_back(fingerprint(d.spacer));
    a.maskFingerprints.push_back(fingerprint(d.cut));
  }

  // The eval layer runs the whole pipeline again through its own API.
  ExperimentRow row = runProposed(spec, &ctx);
  row.cpuSeconds = 0.0;  // the one nondeterministic CSV field
  std::ostringstream os;
  writeCsv(os, {row});
  a.csvRow = os.str();

  a.counters = ctx.metrics().counterSnapshot();
  for (const SpanAggregate& agg : ctx.trace().aggregates()) {
    if (agg.name == "parallel.worker") continue;
    a.spanCounts.emplace_back(agg.name, agg.count);
  }
  return a;
}

TEST(ConcurrentIsolation, TwoConcurrentFullRunsMatchSerialExecution) {
  const BenchmarkSpec specA = paperBenchmark("Test1").scaled(0.05);
  const BenchmarkSpec specB = paperBenchmark("Test2").scaled(0.04);

  const RunArtifacts serialA = runPipeline(specA);
  const RunArtifacts serialB = runPipeline(specB);
  ASSERT_FALSE(serialA.counters.empty());
  ASSERT_FALSE(serialA.spanCounts.empty());
  ASSERT_FALSE(serialA.maskFingerprints.empty());
  ASSERT_NE(serialA.counters, serialB.counters);  // distinct designs

  RunArtifacts concurrentA, concurrentB;
  std::thread ta([&] { concurrentA = runPipeline(specA); });
  std::thread tb([&] { concurrentB = runPipeline(specB); });
  ta.join();
  tb.join();

  EXPECT_EQ(serialA.counters, concurrentA.counters);
  EXPECT_EQ(serialA.spanCounts, concurrentA.spanCounts);
  EXPECT_EQ(serialA.maskFingerprints, concurrentA.maskFingerprints);
  EXPECT_EQ(serialA.csvRow, concurrentA.csvRow);
  EXPECT_EQ(serialB.counters, concurrentB.counters);
  EXPECT_EQ(serialB.spanCounts, concurrentB.spanCounts);
  EXPECT_EQ(serialB.maskFingerprints, concurrentB.maskFingerprints);
  EXPECT_EQ(serialB.csvRow, concurrentB.csvRow);
}

TEST(ConcurrentIsolation, ThreadBudgetOfOneInsideMultiContextPool) {
  // Degenerate budget: one context pinned to a single thread while a
  // sibling context fans out in the same process. The 1-thread run must
  // neither borrow workers from the global pool (its parallel loops are
  // inline by contract) nor be perturbed by the sibling's traffic -- its
  // artifacts match the same 1-thread run executed alone.
  const BenchmarkSpec specA = paperBenchmark("Test1").scaled(0.05);
  const BenchmarkSpec specB = paperBenchmark("Test2").scaled(0.04);

  const RunArtifacts serialNarrow = runPipeline(specA, /*threads=*/1);
  const RunArtifacts serialWide = runPipeline(specB, /*threads=*/3);

  RunArtifacts narrow, wide;
  std::thread tn([&] { narrow = runPipeline(specA, /*threads=*/1); });
  std::thread tw([&] { wide = runPipeline(specB, /*threads=*/3); });
  tn.join();
  tw.join();

  EXPECT_EQ(serialNarrow, narrow);
  EXPECT_EQ(serialWide, wide);
}

TEST(ConcurrentIsolation, SameDesignConcurrentlyTwiceIsDeterministic) {
  // Two contexts racing over the SAME design exercise identical code
  // paths at identical times -- the harshest interleaving for registry
  // cross-talk.
  const BenchmarkSpec spec = paperBenchmark("Test1").scaled(0.04);
  RunArtifacts x, y;
  std::thread tx([&] { x = runPipeline(spec); });
  std::thread ty([&] { y = runPipeline(spec); });
  tx.join();
  ty.join();
  EXPECT_EQ(x, y);
}

}  // namespace
}  // namespace sadp
