// Unit tests for the rectilinear geometry kernel.
#include "geom/geom.hpp"

#include <gtest/gtest.h>

#include <random>

namespace sadp {
namespace {

TEST(Rect, BasicProperties) {
  const Rect r{0, 0, 10, 20};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 20);
  EXPECT_EQ(r.area(), 200);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.orient(), Orient::Vertical);
  EXPECT_EQ((Rect{0, 0, 20, 10}.orient()), Orient::Horizontal);
  EXPECT_EQ((Rect{0, 0, 10, 10}.orient()), Orient::Horizontal);  // square
}

TEST(Rect, EmptyRects) {
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_TRUE((Rect{5, 5, 5, 10}.empty()));
  EXPECT_TRUE((Rect{5, 5, 4, 10}.empty()));
  EXPECT_EQ(Rect{}.area(), 0);
}

TEST(Rect, ContainsPointHalfOpen) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Pt{0, 0}));
  EXPECT_TRUE(r.contains(Pt{9, 9}));
  EXPECT_FALSE(r.contains(Pt{10, 0}));
  EXPECT_FALSE(r.contains(Pt{0, 10}));
  EXPECT_FALSE(r.contains(Pt{-1, 5}));
}

TEST(Rect, ContainsRect) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Rect{2, 2, 8, 8}));
  EXPECT_TRUE(r.contains(r));
  EXPECT_FALSE(r.contains(Rect{2, 2, 11, 8}));
  EXPECT_FALSE(r.contains(Rect{}));
}

TEST(Rect, OverlapsIsInteriorOnly) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.overlaps(Rect{5, 5, 15, 15}));
  EXPECT_FALSE(a.overlaps(Rect{10, 0, 20, 10}));  // shared edge
  EXPECT_FALSE(a.overlaps(Rect{10, 10, 20, 20})); // shared corner
  EXPECT_FALSE(a.overlaps(Rect{}));
}

TEST(Rect, IntersectAndUnion) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 20, 20};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 10, 10}));
  EXPECT_EQ(a.unionWith(b), (Rect{0, 0, 20, 20}));
  EXPECT_TRUE(a.intersect(Rect{12, 12, 15, 15}).empty());
  EXPECT_EQ(Rect{}.unionWith(a), a);
}

TEST(Rect, InflateDeflate) {
  const Rect a{10, 10, 20, 20};
  EXPECT_EQ(a.inflated(5), (Rect{5, 5, 25, 25}));
  EXPECT_EQ(a.inflated(-4), (Rect{14, 14, 16, 16}));
  EXPECT_TRUE(a.inflated(-5).empty());
}

TEST(Rect, Gaps) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(xGap(a, Rect{15, 0, 20, 10}), 5);
  EXPECT_EQ(xGap(a, Rect{5, 20, 20, 30}), 0);   // overlapping in x
  EXPECT_EQ(xGap(a, Rect{10, 0, 20, 10}), 0);   // abutting
  EXPECT_EQ(yGap(a, Rect{0, 13, 10, 20}), 3);
  EXPECT_EQ(distSq(a, Rect{13, 14, 20, 20}), 3 * 3 + 4 * 4);
  EXPECT_EQ(distSq(a, Rect{5, 5, 20, 20}), 0);
}

TEST(Rect, OverlapLengths) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(xOverlap(a, Rect{5, 20, 25, 30}), 5);
  EXPECT_EQ(xOverlap(a, Rect{10, 0, 20, 10}), 0);
  EXPECT_EQ(yOverlap(a, Rect{20, 2, 30, 6}), 4);
}

TEST(Interval, MergeIntervals) {
  auto merged = mergeIntervals({{0, 3}, {5, 9}, {4, 4}, {20, 25}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (Interval{0, 9}));  // 0-3,4,5-9 chain into one
  EXPECT_EQ(merged[1], (Interval{20, 25}));
}

TEST(Interval, GapAndContains) {
  const Interval a{0, 5};
  EXPECT_EQ(a.gap(Interval{8, 10}), 2);
  EXPECT_EQ(a.gap(Interval{6, 10}), 0);
  EXPECT_EQ(a.gap(Interval{3, 10}), 0);
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(5));
  EXPECT_FALSE(a.contains(6));
  EXPECT_TRUE(Interval{}.empty());
  EXPECT_EQ(Interval{}.length(), 0);
  EXPECT_EQ(a.length(), 6);
}

TEST(Canonicalize, DisjointRectsPassThrough) {
  std::vector<Rect> in{{0, 0, 10, 10}, {20, 20, 30, 30}};
  auto out = canonicalize(in);
  EXPECT_EQ(regionArea(out), 200);
  EXPECT_EQ(regionArea(in), 200);
}

TEST(Canonicalize, OverlapCountedOnce) {
  std::vector<Rect> in{{0, 0, 10, 10}, {5, 0, 15, 10}};
  auto out = canonicalize(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Rect{0, 0, 15, 10}));
}

TEST(Canonicalize, LShapeSplitsIntoTwoRects) {
  // Vertical bar with a horizontal foot.
  std::vector<Rect> in{{0, 0, 1, 5}, {0, 0, 5, 1}};
  auto out = canonicalize(in);
  EXPECT_EQ(regionArea(out), 5 + 5 - 1);
  // Slab decomposition: foot row and the column above it.
  ASSERT_EQ(out.size(), 2u);
}

TEST(Canonicalize, VerticalLineStaysOneRect) {
  std::vector<Rect> in;
  for (int y = 0; y < 20; ++y) in.push_back({3, y, 4, y + 1});
  auto out = canonicalize(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Rect{3, 0, 4, 20}));
}

TEST(Canonicalize, PlusShape) {
  std::vector<Rect> in{{2, 0, 3, 7}, {0, 3, 7, 4}};
  auto out = canonicalize(in);
  EXPECT_EQ(regionArea(out), 7 + 7 - 1);
  ASSERT_EQ(out.size(), 3u);  // top column, middle row, bottom column
}

TEST(RegionArea, RandomizedAgainstBruteForce) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> d(0, 30);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<Rect> rects;
    for (int i = 0; i < 8; ++i) {
      const int x0 = d(rng), y0 = d(rng);
      rects.push_back({x0, y0, x0 + 1 + d(rng) % 6, y0 + 1 + d(rng) % 6});
    }
    // Brute force pixel count.
    std::int64_t brute = 0;
    for (int x = 0; x < 40; ++x) {
      for (int y = 0; y < 40; ++y) {
        if (regionContains(rects, Pt{x, y})) ++brute;
      }
    }
    EXPECT_EQ(regionArea(rects), brute) << "iter " << iter;
    // Canonicalized region must preserve area and membership.
    auto canon = canonicalize(rects);
    EXPECT_EQ(regionArea(canon), brute);
    for (int probe = 0; probe < 20; ++probe) {
      Pt p{d(rng), d(rng)};
      EXPECT_EQ(regionContains(canon, p), regionContains(rects, p));
    }
  }
}

TEST(SpatialHash, InsertQueryErase) {
  SpatialHash h(16);
  h.insert(Rect{0, 0, 10, 10}, 1);
  h.insert(Rect{100, 100, 120, 120}, 2);
  EXPECT_EQ(h.size(), 2u);

  int found = 0;
  h.query(Rect{-5, -5, 50, 50}, [&](const Rect&, std::uint32_t id) {
    EXPECT_EQ(id, 1u);
    ++found;
  });
  EXPECT_EQ(found, 1);

  EXPECT_TRUE(h.erase(Rect{0, 0, 10, 10}, 1));
  EXPECT_FALSE(h.erase(Rect{0, 0, 10, 10}, 1));
  EXPECT_EQ(h.size(), 1u);
  found = 0;
  h.query(Rect{-5, -5, 200, 200}, [&](const Rect&, std::uint32_t) { ++found; });
  EXPECT_EQ(found, 1);
}

TEST(SpatialHash, LargeRectSpanningManyBucketsReportedOnce) {
  SpatialHash h(16);
  h.insert(Rect{0, 0, 100, 100}, 7);
  int found = 0;
  h.query(Rect{0, 0, 100, 100}, [&](const Rect&, std::uint32_t) { ++found; });
  EXPECT_EQ(found, 1);
}

TEST(SpatialHash, NegativeCoordinates) {
  SpatialHash h(16);
  h.insert(Rect{-50, -50, -30, -30}, 3);
  int found = 0;
  h.query(Rect{-60, -60, -20, -20},
          [&](const Rect&, std::uint32_t id) {
            EXPECT_EQ(id, 3u);
            ++found;
          });
  EXPECT_EQ(found, 1);
  found = 0;
  h.query(Rect{0, 0, 10, 10}, [&](const Rect&, std::uint32_t) { ++found; });
  EXPECT_EQ(found, 0);
}

TEST(SpatialHash, QueryRespectsWindow) {
  SpatialHash h(8);
  for (int i = 0; i < 10; ++i) {
    h.insert(Rect{i * 20, 0, i * 20 + 10, 10}, std::uint32_t(i));
  }
  std::vector<std::uint32_t> ids;
  h.query(Rect{35, 0, 75, 10},
          [&](const Rect&, std::uint32_t id) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::uint32_t>{2, 3}));
}

TEST(Manhattan, Distances) {
  EXPECT_EQ(manhattan(Pt{0, 0}, Pt{3, 4}), 7);
  EXPECT_EQ(manhattan(Pt{-3, -4}, Pt{0, 0}), 7);
  EXPECT_EQ(manhattan(Pt{5, 5}, Pt{5, 5}), 0);
}

}  // namespace
}  // namespace sadp
