// Tests for the post-routing violation-repair machinery.
#include <gtest/gtest.h>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"

namespace sadp {
namespace {

TEST(Repair, ReducesOrHoldsViolations) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.08));
  // Route without repair, measure, then repair explicitly.
  RoutingGrid grid = inst.grid;
  RouterOptions o;
  o.enableRepair = false;
  OverlayAwareRouter router(grid, inst.netlist, o);
  router.run();
  int before = 0;
  for (int l = 0; l < grid.layers(); ++l) {
    const LayerDecomposition d = router.decompose(l);
    before += d.report.cutConflicts() + d.report.hardOverlays;
  }
  const int after = router.repairViolations();
  EXPECT_LE(after, before);
}

TEST(Repair, KeepsRoutedPathsConsistent) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.08));
  RoutingGrid grid = inst.grid;
  OverlayAwareRouter router(grid, inst.netlist);
  const RoutingStats s = router.run();  // includes repair passes
  // Occupancy/bookkeeping invariants must survive reroutes and rollbacks.
  std::int64_t wl = 0;
  int vias = 0, routed = 0;
  for (const Net& n : inst.netlist.nets) {
    const NetRouteState& st = router.netStates()[n.id];
    if (!st.routed) continue;
    ++routed;
    for (const GridNode& node : st.path) {
      ASSERT_EQ(grid.owner(node), n.id) << n.name;
    }
    for (std::size_t i = 1; i < st.path.size(); ++i) {
      if (st.path[i].layer != st.path[i - 1].layer) {
        ++vias;
      } else {
        ++wl;
      }
    }
  }
  EXPECT_EQ(routed, s.routedNets);
  EXPECT_EQ(wl, s.wirelength);
  EXPECT_EQ(vias, s.vias);
}

TEST(Repair, SacrificeModeNeverIncreasesViolations) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test2").scaled(0.06));
  RoutingGrid gridA = inst.grid;
  OverlayAwareRouter base(gridA, inst.netlist);
  base.run();
  int baseViol = 0;
  for (int l = 0; l < gridA.layers(); ++l) {
    const LayerDecomposition d = base.decompose(l);
    baseViol += d.report.cutConflicts() + d.report.hardOverlays;
  }

  RoutingGrid gridB = inst.grid;
  RouterOptions o;
  o.sacrificeForZeroConflicts = true;
  OverlayAwareRouter sac(gridB, inst.netlist, o);
  sac.run();
  int sacViol = 0;
  for (int l = 0; l < gridB.layers(); ++l) {
    const LayerDecomposition d = sac.decompose(l);
    sacViol += d.report.cutConflicts() + d.report.hardOverlays;
  }
  EXPECT_LE(sacViol, baseViol);
}

TEST(Repair, NoViolationsMeansNoChanges) {
  // A sparse layout routes clean; repair must be a no-op.
  RoutingGrid grid(40, 40, 3, DesignRules{});
  Netlist nl;
  nl.add("a", Pin{{{2, 10, 0}}}, Pin{{{30, 10, 0}}});
  nl.add("b", Pin{{{2, 20, 0}}}, Pin{{{30, 20, 0}}});
  OverlayAwareRouter router(grid, nl);
  router.run();
  const auto pathsBefore = router.netStates();
  EXPECT_EQ(router.repairViolations(), 0);
  for (std::size_t i = 0; i < pathsBefore.size(); ++i) {
    EXPECT_EQ(pathsBefore[i].path, router.netStates()[i].path);
  }
}

}  // namespace
}  // namespace sadp
