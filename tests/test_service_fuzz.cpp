// ECO byte-identity fuzz gate (DESIGN.md §5.11): over seeded random edit
// sequences, every incremental re-route must be byte-identical to a cold
// full route of the edited design -- per-layer mask fingerprints, overlay
// report, routing stats, and the CSV row. Runs under the `fuzz` and
// `sanitize` labels (the TSan build exercises the shared MaskCache).
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "sadp/mask_cache.hpp"
#include "service/session.hpp"
#include "util/parallel_for.hpp"

namespace sadp {
namespace {

BenchmarkSpec fuzzSpec(std::uint64_t seed) {
  BenchmarkSpec s;
  s.name = "fz";
  s.netCount = 30;
  s.width = 48;
  s.height = 48;
  s.seed = seed;
  return s;
}

/// One random valid edit against the session's current design.
EditRequest randomEdit(std::mt19937_64& rng, const Session& s, int caseId,
                       int step) {
  const std::vector<NetSpec> nets = s.netSpecs();
  EditRequest e;
  const int kind = int(rng() % 4);  // bias toward move_pin
  auto node = [&] {
    return GridNode{Track(rng() % std::uint64_t(s.spec().width)),
                    Track(rng() % std::uint64_t(s.spec().height)), 0};
  };
  if (kind == 3 && nets.size() > 5) {
    e.kind = EditRequest::Kind::RemoveNet;
    e.net = nets[rng() % nets.size()].name;
  } else if (kind == 2) {
    e.kind = EditRequest::Kind::AddNet;
    e.net = "fz" + std::to_string(caseId) + "_" + std::to_string(step);
    const GridNode a = node();
    GridNode b = node();
    while (b == a) b = node();
    e.pins = {Pin{{a}}, Pin{{b}}};
  } else {
    e.kind = EditRequest::Kind::MovePin;
    const NetSpec& n = nets[rng() % nets.size()];
    e.net = n.name;
    e.pinIndex = int(rng() % n.pins.size());
    e.pins = {Pin{{node()}}};
  }
  return e;
}

void expectSameOutcome(const RouteOutcome& eco, const RouteOutcome& cold,
                       int caseId, int step) {
  ASSERT_EQ(eco.designFp, cold.designFp)
      << "case " << caseId << " step " << step;
  EXPECT_EQ(eco.layerMaskFp, cold.layerMaskFp);
  EXPECT_EQ(eco.report, cold.report);
  EXPECT_EQ(eco.csvRow, cold.csvRow);
  EXPECT_EQ(eco.stats.totalNets, cold.stats.totalNets);
  EXPECT_EQ(eco.stats.routedNets, cold.stats.routedNets);
  EXPECT_EQ(eco.stats.wirelength, cold.stats.wirelength);
  EXPECT_EQ(eco.stats.vias, cold.stats.vias);
}

/// 100 seeded sequences of random edits; every ECO replay is compared
/// against a cold route of the same edited design.
TEST(ServiceFuzz, EcoReplaysMatchColdRoutes) {
  constexpr int kCases = 100;
  constexpr int kEditsPerCase = 2;
  std::int64_t totalMemoHits = 0;
  for (int caseId = 0; caseId < kCases; ++caseId) {
    std::mt19937_64 rng(0x5adb0000u + std::uint64_t(caseId));
    MaskCache cache;
    Session eco("eco", fuzzSpec(1 + std::uint64_t(caseId % 7)), &cache);
    eco.routeFull();
    for (int step = 0; step < kEditsPerCase; ++step) {
      const EditRequest e = randomEdit(rng, eco, caseId, step);
      std::string err;
      const std::optional<RouteOutcome> out = eco.applyEdit(e, &err);
      if (!out) continue;  // duplicate-name add etc.: rejected, no run
      totalMemoHits += out->memoHits;

      MaskCache coldCache;
      Session cold("cold", fuzzSpec(1 + std::uint64_t(caseId % 7)),
                   &coldCache);
      cold.setNets(eco.netSpecs());
      const RouteOutcome ref = cold.routeFull();
      expectSameOutcome(*out, ref, caseId, step);
      if (HasFatalFailure()) return;
    }
  }
  // The replays must actually memoize, not silently re-search everything.
  EXPECT_GT(totalMemoHits, 0);
}

/// Wave-parallel ECO replays (route_jobs 4) against the cold SERIAL
/// oracle: the two dimensions of replay equivalence -- memoized vs fresh
/// searches, speculative vs sequential execution -- must compose. An ECO
/// replay that both consults the memo and speculates ahead of the commit
/// frontier still has to land byte-identical to a cold single-threaded
/// route of the edited design.
TEST(ServiceFuzz, EcoEditsAtRouteJobs4MatchColdSerialOracle) {
  constexpr int kCases = 30;
  constexpr int kEditsPerCase = 2;
  setParallelThreads(8);
  std::int64_t totalSpecHits = 0;
  for (int caseId = 0; caseId < kCases; ++caseId) {
    std::mt19937_64 rng(0x5adb1000u + std::uint64_t(caseId));
    MaskCache cache;
    RouterOptions wave;
    wave.routeJobs = 4;
    Session eco("eco", fuzzSpec(1 + std::uint64_t(caseId % 7)), &cache,
                wave);
    eco.setThreads(4);
    totalSpecHits += eco.routeFull().waveSpecHits;
    for (int step = 0; step < kEditsPerCase; ++step) {
      const EditRequest e = randomEdit(rng, eco, caseId, step);
      std::string err;
      const std::optional<RouteOutcome> out = eco.applyEdit(e, &err);
      if (!out) continue;
      totalSpecHits += out->waveSpecHits;

      MaskCache coldCache;
      Session cold("cold", fuzzSpec(1 + std::uint64_t(caseId % 7)),
                   &coldCache);  // default RouterOptions: serial routing
      // Same thread budget: the CSV row's trailing column reports it.
      // "Serial" here means routeJobs=1 (sequential net commits), not a
      // 1-thread decompose -- scheduler equivalence is test_schedule_fuzz.
      cold.setThreads(4);
      cold.setNets(eco.netSpecs());
      const RouteOutcome ref = cold.routeFull();
      EXPECT_EQ(ref.waveSpecHits + ref.waveSpecMisses, 0);
      expectSameOutcome(*out, ref, caseId, step);
      if (HasFatalFailure()) {
        setParallelThreads(0);
        return;
      }
    }
  }
  // The wave path must actually engage across the corpus.
  EXPECT_GT(totalSpecHits, 0);
  setParallelThreads(0);
}

/// Two sessions editing concurrently against ONE shared MaskCache must
/// each stay byte-identical to their serial references (the TSan target).
TEST(ServiceFuzz, ConcurrentSessionsShareCacheSafely) {
  constexpr int kEdits = 4;
  // Serial references, one private cache each.
  std::vector<std::vector<std::uint64_t>> ref(2);
  for (int w = 0; w < 2; ++w) {
    std::mt19937_64 rng(0xfeed + std::uint64_t(w));
    MaskCache cache;
    Session s("ref", fuzzSpec(3 + std::uint64_t(w)), &cache);
    ref[w].push_back(s.routeFull().designFp);
    for (int step = 0; step < kEdits; ++step) {
      const EditRequest e = randomEdit(rng, s, w, step);
      std::string err;
      if (const auto out = s.applyEdit(e, &err)) {
        ref[w].push_back(out->designFp);
      }
    }
  }

  MaskCache shared;
  std::vector<std::vector<std::uint64_t>> got(2);
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(0xfeed + std::uint64_t(w));
      Session s("t" + std::to_string(w), fuzzSpec(3 + std::uint64_t(w)),
                &shared);
      got[w].push_back(s.routeFull().designFp);
      for (int step = 0; step < kEdits; ++step) {
        const EditRequest e = randomEdit(rng, s, w, step);
        std::string err;
        if (const auto out = s.applyEdit(e, &err)) {
          got[w].push_back(out->designFp);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(got[0], ref[0]);
  EXPECT_EQ(got[1], ref[1]);
}

}  // namespace
}  // namespace sadp
