// Property suite for the bitmap kernel dispatch (DESIGN.md §5.9): the
// scalar and AVX2 kernels must be byte-identical on every operation that
// routes through them (dilate, erode, open/close, anchored open,
// transpose), across randomized rasters covering word-boundary widths,
// tiny and tail-heavy shapes, and every radius the pipeline uses. Also
// exercises both dispatch paths: the setBitmapSimdLevel() runtime override
// and the SADP_FORCE_SCALAR environment resolution.
#include <cstdlib>
#include <random>

#include <gtest/gtest.h>

#include "sadp/bitmap.hpp"
#include "sadp/bitmap_kernels.hpp"

namespace sadp {
namespace {

Bitmap randomBitmap(std::mt19937& rng, int w, int h, double density) {
  Bitmap b(w, h);
  std::bernoulli_distribution bit(density);
  // Mix of random pixels and random rectangles so runs of set/unset words
  // (the fast paths of the scalar kernels) appear too.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (bit(rng)) b.set(x, y);
    }
  }
  std::uniform_int_distribution<int> xs(0, w), ys(0, h);
  for (int i = 0; i < 4; ++i) {
    const int x0 = xs(rng), x1 = xs(rng), y0 = ys(rng), y1 = ys(rng);
    b.fillRect(std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
               std::max(y0, y1), i % 2 == 0);
  }
  return b;
}

/// Restores the Auto dispatch level after each test so order and failures
/// never leak a forced level into other suites.
class BitmapSimdTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("SADP_FORCE_SCALAR");
    setBitmapSimdLevel(SimdLevel::Auto);
  }
};

TEST_F(BitmapSimdTest, DispatchOverrideAndEnvResolution) {
  setBitmapSimdLevel(SimdLevel::Scalar);
  EXPECT_EQ(activeBitmapSimdLevel(), SimdLevel::Scalar);

  setBitmapSimdLevel(SimdLevel::Avx2);
  if (cpuSupportsAvx2()) {
    EXPECT_EQ(activeBitmapSimdLevel(), SimdLevel::Avx2);
  } else {
    EXPECT_EQ(activeBitmapSimdLevel(), SimdLevel::Scalar);
  }

  // Env escape hatch: SADP_FORCE_SCALAR wins over CPUID under Auto.
  setenv("SADP_FORCE_SCALAR", "1", 1);
  setBitmapSimdLevel(SimdLevel::Auto);
  EXPECT_EQ(activeBitmapSimdLevel(), SimdLevel::Scalar);

  // "0" and unset mean no forcing.
  setenv("SADP_FORCE_SCALAR", "0", 1);
  setBitmapSimdLevel(SimdLevel::Auto);
  EXPECT_EQ(activeBitmapSimdLevel(),
            cpuSupportsAvx2() ? SimdLevel::Avx2 : SimdLevel::Scalar);
  unsetenv("SADP_FORCE_SCALAR");
  setBitmapSimdLevel(SimdLevel::Auto);
  EXPECT_EQ(activeBitmapSimdLevel(),
            cpuSupportsAvx2() ? SimdLevel::Avx2 : SimdLevel::Scalar);
}

TEST_F(BitmapSimdTest, MorphologyByteIdentityAcrossLevels) {
  if (!cpuSupportsAvx2()) {
    GTEST_SKIP() << "CPU lacks AVX2; dispatch identity is vacuous here";
  }
  std::mt19937 rng(0xb17a5);
  // Widths straddle word boundaries (63/64/65) and the 4-word vector
  // block size (255/256/257); heights cover the 64-row transpose tiles.
  const int widths[] = {1, 7, 63, 64, 65, 127, 130, 255, 256, 257, 400};
  const int heights[] = {1, 3, 63, 64, 65, 130, 200};
  const double densities[] = {0.02, 0.5, 0.97};
  for (const int w : widths) {
    for (const int h : heights) {
      for (const double dens : densities) {
        const Bitmap b = randomBitmap(rng, w, h, dens);
        for (const int r : {1, 2, 3, 7}) {
          setBitmapSimdLevel(SimdLevel::Scalar);
          const Bitmap dilS = b.dilated(r);
          const Bitmap eroS = b.eroded(r);
          const Bitmap opnS = b.openedAnchored(r + 1);
          const Bitmap trS = b.transposed();
          setBitmapSimdLevel(SimdLevel::Avx2);
          EXPECT_EQ(dilS, b.dilated(r)) << w << "x" << h << " r=" << r;
          EXPECT_EQ(eroS, b.eroded(r)) << w << "x" << h << " r=" << r;
          EXPECT_EQ(opnS, b.openedAnchored(r + 1))
              << w << "x" << h << " k=" << r + 1;
          EXPECT_EQ(trS, b.transposed()) << w << "x" << h;
        }
      }
    }
  }
}

TEST_F(BitmapSimdTest, KernelTableByteIdentityDirect) {
  // Drive the raw kernel tables (both dispatch targets) directly so the
  // identity holds even for parameter shapes no Bitmap method uses yet
  // (asymmetric windows, AND filters at the border).
  if (!cpuSupportsAvx2()) {
    GTEST_SKIP() << "CPU lacks AVX2; cannot execute the AVX2 table directly";
  }
  std::mt19937 rng(42);
  const detail::BitmapKernels& sc = detail::kScalarKernels;
  const detail::BitmapKernels& vx = detail::kAvx2Kernels;
  for (int iter = 0; iter < 60; ++iter) {
    std::uniform_int_distribution<int> dim(1, 300);
    const int w = dim(rng), h = dim(rng);
    const int wpr = Bitmap::wordsPerRow(w);
    const Bitmap b = randomBitmap(rng, w, h, 0.4);
    const std::uint64_t tail =
        (w & 63) ? (std::uint64_t(1) << (w & 63)) - 1 : ~std::uint64_t(0);
    std::uniform_int_distribution<int> win(-9, 9);
    int lo = win(rng), hi = win(rng);
    if (lo > hi) std::swap(lo, hi);
    for (const bool isAnd : {false, true}) {
      std::vector<std::uint64_t> a(b.words().size()), c(b.words().size());
      sc.filterRows(b.words().data(), a.data(), h, wpr, tail, lo, hi, isAnd);
      vx.filterRows(b.words().data(), c.data(), h, wpr, tail, lo, hi, isAnd);
      EXPECT_EQ(a, c) << "rows " << w << "x" << h << " [" << lo << "," << hi
                      << "] and=" << isAnd;
      sc.filterCols(b.words().data(), a.data(), h, wpr, lo, hi, isAnd);
      vx.filterCols(b.words().data(), c.data(), h, wpr, lo, hi, isAnd);
      EXPECT_EQ(a, c) << "cols " << w << "x" << h << " [" << lo << "," << hi
                      << "] and=" << isAnd;
    }
  }
  std::uniform_int_distribution<std::uint64_t> word;
  for (int iter = 0; iter < 200; ++iter) {
    std::uint64_t a[64], c[64];
    for (int i = 0; i < 64; ++i) a[i] = c[i] = word(rng);
    sc.transpose64(a);
    vx.transpose64(c);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(a[i], c[i]) << "transpose row " << i;
    }
  }
}

}  // namespace
}  // namespace sadp
