// Tests for multi-pin (Steiner) net support.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "route/router.hpp"

namespace sadp {
namespace {

TEST(MultiPin, NetlistApi) {
  Netlist nl;
  Net& n = nl.addMultiPin("m", {Pin{{{0, 0, 0}}}, Pin{{{5, 5, 0}}},
                                Pin{{{9, 0, 0}}}, Pin{{{0, 9, 0}}}});
  EXPECT_EQ(n.pinCount(), 4u);
  EXPECT_EQ(n.taps.size(), 2u);
  EXPECT_THROW(nl.addMultiPin("bad", {Pin{{{0, 0, 0}}}}),
               std::invalid_argument);
}

TEST(MultiPin, IoRoundTripV2) {
  Netlist nl;
  nl.addMultiPin("m", {Pin{{{0, 0, 0}}}, Pin{{{5, 5, 0}}}, Pin{{{9, 0, 1}}}});
  nl.add("two", Pin{{{1, 1, 0}}}, Pin{{{2, 2, 0}}});
  std::stringstream ss;
  writeNetlist(ss, nl);
  EXPECT_NE(ss.str().find("sadp-netlist v2"), std::string::npos);
  const Netlist back = readNetlist(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.nets[0].taps.size(), 1u);
  EXPECT_EQ(back.nets[0].taps[0].candidates[0], (GridNode{9, 0, 1}));
  EXPECT_TRUE(back.nets[1].taps.empty());
}

TEST(MultiPin, LegacyV1StillParses) {
  std::stringstream ss("sadp-netlist v1 1\nn0 1,2,0 3,4,0\n");
  const Netlist nl = readNetlist(ss);
  ASSERT_EQ(nl.size(), 1u);
  EXPECT_EQ(nl.nets[0].source.candidates[0], (GridNode{1, 2, 0}));
}

TEST(MultiPin, RoutesTreeConnectingAllPins) {
  RoutingGrid grid(30, 30, 3, DesignRules{});
  Netlist nl;
  nl.addMultiPin("tree", {Pin{{{2, 15, 0}}}, Pin{{{25, 15, 0}}},
                          Pin{{{14, 3, 0}}}, Pin{{{14, 27, 0}}}});
  OverlayAwareRouter router(grid, nl);
  const RoutingStats s = router.run();
  ASSERT_EQ(s.routedNets, 1);

  // The path must contain every pin and be a connected set of nodes.
  const auto& path = router.netStates()[0].path;
  std::set<std::tuple<Track, Track, int>> nodes;
  for (const GridNode& n : path) nodes.insert({n.x, n.y, n.layer});
  for (const GridNode& pin :
       {GridNode{2, 15, 0}, GridNode{25, 15, 0}, GridNode{14, 3, 0},
        GridNode{14, 27, 0}}) {
    EXPECT_TRUE(nodes.count({pin.x, pin.y, pin.layer}))
        << "pin not on tree";
  }
  // Connectivity: BFS over the node set from the first pin reaches all.
  std::set<std::tuple<Track, Track, int>> seen;
  std::vector<std::tuple<Track, Track, int>> stack{{2, 15, 0}};
  seen.insert(stack[0]);
  while (!stack.empty()) {
    auto [x, y, l] = stack.back();
    stack.pop_back();
    const std::tuple<Track, Track, int> nbrs[6] = {
        {x + 1, y, l}, {x - 1, y, l}, {x, y + 1, l},
        {x, y - 1, l}, {x, y, l + 1}, {x, y, l - 1}};
    for (const auto& nb : nbrs) {
      if (nodes.count(nb) && seen.insert(nb).second) stack.push_back(nb);
    }
  }
  EXPECT_EQ(seen.size(), nodes.size()) << "tree is disconnected";

  // Wirelength bookkeeping holds for trees: edges = nodes - 1.
  EXPECT_EQ(s.wirelength + s.vias, std::int64_t(nodes.size()) - 1);
}

TEST(MultiPin, TreeStillColorsAndDecomposes) {
  RoutingGrid grid(30, 30, 3, DesignRules{});
  Netlist nl;
  nl.addMultiPin("tree", {Pin{{{2, 10, 0}}}, Pin{{{25, 10, 0}}},
                          Pin{{{14, 2, 0}}}});
  nl.add("nbr", Pin{{{2, 11, 0}}}, Pin{{{25, 11, 0}}});
  OverlayAwareRouter router(grid, nl);
  const RoutingStats s = router.run();
  EXPECT_EQ(s.routedNets, 2);
  const OverlayReport r = router.physicalReport();
  EXPECT_EQ(r.hardOverlays, 0);
  EXPECT_EQ(r.cutConflicts(), 0);
}

TEST(MultiPin, UnreachableTapFailsNet) {
  RoutingGrid grid(20, 20, 1, DesignRules{});
  for (Track y = 0; y < 20; ++y) grid.block({10, y, 0});
  Netlist nl;
  nl.addMultiPin("t", {Pin{{{2, 5, 0}}}, Pin{{{5, 5, 0}}},
                       Pin{{{18, 5, 0}}}});  // tap behind the wall
  OverlayAwareRouter router(grid, nl);
  const RoutingStats s = router.run();
  EXPECT_EQ(s.routedNets, 0);
}

}  // namespace
}  // namespace sadp
