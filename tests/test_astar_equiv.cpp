// Fuzz equivalence suite for the fixed-point A* core (DESIGN.md §5.9).
//
// The bucket (Dial) open list and the integer binary heap share one cost
// model and, by construction, one pop order -- LIFO within equal f equals
// ordering by (f, push sequence descending). These tests enforce that
// byte-for-byte over randomized grids, obstacle fields, penalty fields and
// T2b marks: identical paths (node by node), costs, via counts, expansion
// counts, and metric counter values, route after route on a warm engine.
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "route/astar.hpp"
#include "run/run_context.hpp"

namespace sadp {
namespace {

struct RouteOutcome {
  bool routed = false;
  std::vector<GridNode> path;
  double cost = 0.0;
  int vias = 0;
  std::int64_t expansions = 0;
  std::int64_t ctrRoutes = 0;
  std::int64_t ctrExpansions = 0;
  std::int64_t ctrPushes = 0;
};

bool operator==(const RouteOutcome& a, const RouteOutcome& b) {
  return a.routed == b.routed && a.path == b.path && a.cost == b.cost &&
         a.vias == b.vias && a.expansions == b.expansions &&
         a.ctrRoutes == b.ctrRoutes &&
         a.ctrExpansions == b.ctrExpansions && a.ctrPushes == b.ctrPushes;
}

struct Scenario {
  RoutingGrid grid;
  std::vector<GridNode> sources;
  std::vector<GridNode> targets;
  AStarParams params;
  PenaltyField extra;
  T2bField t2b;
  bool useExtra = false;
  bool useT2b = false;
};

/// Randomized routing scenario: obstacles, multi-source/multi-target pin
/// sets, quantizable cost weights, and optional (nonnegative) penalty and
/// T2b fields so both bucket and heap modes stay eligible.
Scenario makeScenario(std::mt19937& rng) {
  std::uniform_int_distribution<int> dim(8, 24);
  std::uniform_int_distribution<int> layerCount(1, 3);
  const Track w = Track(dim(rng));
  const Track h = Track(dim(rng));
  const int layers = layerCount(rng);
  Scenario s{RoutingGrid(w, h, layers, DesignRules{}),
             {},
             {},
             AStarParams{},
             PenaltyField{RoutingGrid(w, h, layers, DesignRules{})},
             T2bField{RoutingGrid(w, h, layers, DesignRules{})}};
  s.extra = PenaltyField(s.grid);
  s.t2b = T2bField(s.grid);

  std::uniform_int_distribution<int> x(0, w - 1);
  std::uniform_int_distribution<int> y(0, h - 1);
  std::uniform_int_distribution<int> l(0, layers - 1);
  auto node = [&] {
    return GridNode{Track(x(rng)), Track(y(rng)), std::int16_t(l(rng))};
  };

  // Obstacles owned by another net (the routed net is net 1).
  std::uniform_int_distribution<int> obstacleCount(0, int(w) * int(h) / 4);
  const int obstacles = obstacleCount(rng);
  for (int i = 0; i < obstacles; ++i) s.grid.occupy(node(), 99);

  std::uniform_int_distribution<int> pins(1, 4);
  const int nSrc = pins(rng);
  const int nTgt = pins(rng);
  for (int i = 0; i < nSrc; ++i) s.sources.push_back(node());
  for (int i = 0; i < nTgt; ++i) s.targets.push_back(node());

  // Dyadic weights: exactly representable at scale <= 2^3, and
  // wrongWay >= 1 so the bucket mode's consistency precondition holds.
  std::uniform_int_distribution<int> eighths(1, 24);
  std::uniform_int_distribution<int> wrongEighths(8, 24);
  s.params.alpha = eighths(rng) / 8.0;
  s.params.beta = eighths(rng) / 8.0;
  s.params.gamma = eighths(rng) / 8.0;
  s.params.wrongWay = wrongEighths(rng) / 8.0;

  std::bernoulli_distribution coin(0.5);
  std::uniform_real_distribution<float> pen(0.0f, 12.0f);
  std::uniform_int_distribution<int> penCount(0, 40);
  s.useExtra = coin(rng);
  if (s.useExtra) {
    const int n = penCount(rng);
    for (int i = 0; i < n; ++i) s.extra.add(node(), pen(rng));
  }
  s.useT2b = coin(rng);
  if (s.useT2b) {
    const int n = penCount(rng);
    for (int i = 0; i < n; ++i) {
      s.t2b.horizontalEntry.add(node(), pen(rng));
      s.t2b.verticalEntry.add(node(), pen(rng));
    }
  }
  return s;
}

/// Runs the scenario's route sequence under one open-list mode with a
/// fresh RunContext, snapshotting results and metric counters.
std::vector<RouteOutcome> runMode(const Scenario& s, OpenList mode) {
  RunContext ctx;
  RunContext::Scope scope(ctx);
  AStarEngine engine(s.grid, &ctx);
  AStarParams params = s.params;
  params.openList = mode;
  const PenaltyField* extra = s.useExtra ? &s.extra : nullptr;
  const T2bField* t2b = s.useT2b ? &s.t2b : nullptr;

  std::vector<RouteOutcome> out;
  // Route twice (warm engine, reused epoch-stamped arrays), then once
  // with sources/targets swapped for a different search shape.
  for (int pass = 0; pass < 3; ++pass) {
    const auto& src = pass == 2 ? s.targets : s.sources;
    const auto& tgt = pass == 2 ? s.sources : s.targets;
    auto res = engine.route(1, src, tgt, params, extra, t2b);
    RouteOutcome o;
    o.routed = res.has_value();
    if (res) {
      o.path = res->path;
      o.cost = res->cost;
      o.vias = res->vias;
      o.expansions = res->expansions;
    }
    o.ctrRoutes = ctx.metrics().counter("astar.routes").value();
    o.ctrExpansions = ctx.metrics().counter("astar.expansions").value();
    o.ctrPushes = ctx.metrics().counter("astar.heap_pushes").value();
    out.push_back(std::move(o));
  }
  return out;
}

TEST(AStarEquiv, BucketMatchesHeapByteForByte) {
  std::mt19937 rng(20140601);  // DAC'14 seed; deterministic suite
  for (int iter = 0; iter < 150; ++iter) {
    Scenario s = makeScenario(rng);
    const auto bucket = runMode(s, OpenList::Bucket);
    const auto heap = runMode(s, OpenList::Heap);
    ASSERT_EQ(bucket.size(), heap.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      EXPECT_TRUE(bucket[i] == heap[i])
          << "iter " << iter << " pass " << i << ": bucket(cost="
          << bucket[i].cost << ", exp=" << bucket[i].expansions
          << ", pushes=" << bucket[i].ctrPushes << ", len="
          << bucket[i].path.size() << ") vs heap(cost=" << heap[i].cost
          << ", exp=" << heap[i].expansions << ", pushes="
          << heap[i].ctrPushes << ", len=" << heap[i].path.size() << ")";
    }
  }
}

TEST(AStarEquiv, AutoSelectsBucketResultsOnCleanFields) {
  // With nonnegative fields and wrongWay >= 1, Auto must behave exactly
  // like the forced-bucket mode (it selects it).
  std::mt19937 rng(7);
  for (int iter = 0; iter < 40; ++iter) {
    Scenario s = makeScenario(rng);
    const auto autoMode = runMode(s, OpenList::Auto);
    const auto bucket = runMode(s, OpenList::Bucket);
    for (std::size_t i = 0; i < autoMode.size(); ++i) {
      EXPECT_TRUE(autoMode[i] == bucket[i]) << "iter " << iter;
    }
  }
}

TEST(AStarEquiv, NegativePenaltiesFallBackAndStillAgree) {
  // A field holding negative values disables the bucket mode; Auto must
  // fall back to the integer heap, and a forced Bucket request must also
  // decay to the heap rather than corrupt the monotone invariant. The
  // negative deltas are capped at the minimum step weight (1/8), keeping
  // every edge cost nonnegative -- a genuinely negative cycle would hang
  // any reopening-based search, legacy engine included.
  std::mt19937 rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    Scenario s = makeScenario(rng);
    s.useExtra = true;
    std::uniform_int_distribution<int> x(0, s.grid.width() - 1);
    std::uniform_int_distribution<int> y(0, s.grid.height() - 1);
    for (int i = 0; i < 10; ++i) {
      const GridNode n{Track(x(rng)), Track(y(rng)), 0};
      if (s.extra.at(n) == 0.0f) s.extra.add(n, -0.125f);
    }
    for (Track xx = 0; !s.extra.hasNegative() && xx < s.grid.width(); ++xx) {
      const GridNode n{xx, 0, 0};
      if (s.extra.at(n) == 0.0f) s.extra.add(n, -0.125f);
    }
    ASSERT_TRUE(s.extra.hasNegative());
    const auto autoMode = runMode(s, OpenList::Auto);
    const auto heap = runMode(s, OpenList::Heap);
    const auto bucket = runMode(s, OpenList::Bucket);
    for (std::size_t i = 0; i < autoMode.size(); ++i) {
      EXPECT_TRUE(autoMode[i] == heap[i]) << "iter " << iter;
      EXPECT_TRUE(bucket[i] == heap[i]) << "iter " << iter;
    }
  }
}

TEST(AStarEquiv, UnrepresentableWeightsUseLegacyPath) {
  // alpha = 1/3 has no finite power-of-two fixed-point representation:
  // every mode must agree because they all route through the legacy
  // double-cost engine (the documented fallback).
  RoutingGrid g(16, 16, 2, DesignRules{});
  AStarParams p;
  p.alpha = 1.0 / 3.0;
  EXPECT_FALSE(deriveFixedCostScale(p).ok);
  for (OpenList mode :
       {OpenList::Auto, OpenList::Bucket, OpenList::Heap}) {
    AStarParams q = p;
    q.openList = mode;
    AStarEngine eng(g);
    auto res = eng.route(1, {{GridNode{1, 1, 0}}}, {{GridNode{12, 9, 1}}}, q);
    ASSERT_TRUE(res.has_value());
    // 11 horizontal + 8 vertical steps (one direction wrong-way) + 1 via;
    // exact value depends on preferred directions, so just require all
    // modes to produce the identical legacy result.
    AStarParams ref = p;
    ref.openList = OpenList::LegacyFloat;
    AStarEngine refEng(g);
    auto refRes =
        refEng.route(1, {{GridNode{1, 1, 0}}}, {{GridNode{12, 9, 1}}}, ref);
    ASSERT_TRUE(refRes.has_value());
    EXPECT_EQ(res->path, refRes->path);
    EXPECT_DOUBLE_EQ(res->cost, refRes->cost);
    EXPECT_EQ(res->expansions, refRes->expansions);
  }
}

TEST(AStarEquiv, FixedScaleDerivation) {
  AStarParams def;  // alpha=1, beta=1, wrongWay=1.5 -> scale 2
  const FixedCostScale fs = deriveFixedCostScale(def);
  ASSERT_TRUE(fs.ok);
  EXPECT_EQ(fs.shift, 1);
  EXPECT_EQ(fs.alphaQ, 2);
  EXPECT_EQ(fs.betaQ, 2);
  EXPECT_EQ(fs.wrongQ, 3);

  AStarParams ints;
  ints.alpha = 2.0;
  ints.beta = 3.0;
  ints.wrongWay = 2.0;
  const FixedCostScale fi = deriveFixedCostScale(ints);
  ASSERT_TRUE(fi.ok);
  EXPECT_EQ(fi.shift, 0);

  AStarParams neg;
  neg.alpha = -1.0;
  EXPECT_FALSE(deriveFixedCostScale(neg).ok);
}

}  // namespace
}  // namespace sadp
