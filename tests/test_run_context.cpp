// RunContext semantics (DESIGN.md §5.8): fresh per-context registries,
// reset(), thread-count precedence, and thread-scoped binding.
#include "run/run_context.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {
namespace {

std::vector<CounterSample> routeOnce(RunContext& ctx) {
  BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.05));
  OverlayAwareRouter router(inst.grid, inst.netlist, {}, &ctx);
  router.run();
  router.physicalReport();
  return ctx.metrics().counterSnapshot();
}

TEST(RunContext, FreshContextsReportIdenticalTotalsAcrossSequentialRuns) {
  // The registry-aliasing regression: two sequential runs in one process
  // must report the run's own totals, not the accumulated sum.
  RunContext first;
  const auto a = routeOnce(first);
  RunContext second;
  const auto b = routeOnce(second);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // And the totals are real (a routed design expands A* nodes).
  bool sawExpansions = false;
  for (const auto& [name, value] : a) {
    if (name == "astar.expansions") sawExpansions = value > 0;
  }
  EXPECT_TRUE(sawExpansions);
}

TEST(RunContext, ResetZeroesOneRegistryForReuse) {
  RunContext ctx;
  const auto a = routeOnce(ctx);
  ctx.metrics().reset();
  const auto b = routeOnce(ctx);
  EXPECT_EQ(a, b);  // identical, not doubled
}

TEST(RunContext, ContextCountersDoNotLeakIntoProcessDefault) {
  const std::int64_t before =
      MetricsRegistry::instance().counter("astar.expansions").value();
  RunContext ctx;
  routeOnce(ctx);
  EXPECT_EQ(
      MetricsRegistry::instance().counter("astar.expansions").value(),
      before);
}

TEST(RunContext, ThreadCountPrecedenceExplicitOverEnvOverHardware) {
  // SADP_THREADS is parsed once at construction and cached.
  ASSERT_EQ(setenv("SADP_THREADS", "5", /*overwrite=*/1), 0);
  RunContext envCtx;
  EXPECT_EQ(envCtx.threadCount(), 5);
  envCtx.setThreadCount(2);  // explicit beats env
  EXPECT_EQ(envCtx.threadCount(), 2);
  envCtx.setThreadCount(0);  // back to the cached env value
  EXPECT_EQ(envCtx.threadCount(), 5);
  // The cache is per-context: a context built after the env changes sees
  // the new value, the old context keeps its snapshot.
  ASSERT_EQ(setenv("SADP_THREADS", "3", 1), 0);
  RunContext envCtx2;
  EXPECT_EQ(envCtx2.threadCount(), 3);
  EXPECT_EQ(envCtx.threadCount(), 5);
  ASSERT_EQ(unsetenv("SADP_THREADS"), 0);
  RunContext hwCtx;
  EXPECT_GE(hwCtx.threadCount(), 1);  // hardware fallback
}

TEST(RunContext, ScopeBindsAndRestores) {
  RunContext ctx;
  EXPECT_NE(&RunContext::current(), &ctx);
  {
    RunContext::Scope bind(ctx);
    EXPECT_EQ(&RunContext::current(), &ctx);
    EXPECT_EQ(&currentMetrics(), &ctx.metrics());
    metricsCounter("run_context.test_scope").add(7);
    RunContext inner;
    {
      RunContext::Scope nested(inner);
      EXPECT_EQ(&RunContext::current(), &inner);
    }
    EXPECT_EQ(&RunContext::current(), &ctx);  // nesting restores
  }
  EXPECT_NE(&RunContext::current(), &ctx);
  EXPECT_EQ(ctx.metrics().counter("run_context.test_scope").value(), 7);
  EXPECT_EQ(MetricsRegistry::instance()
                .counter("run_context.test_scope")
                .value(),
            0);
}

TEST(RunContext, ScopeRoutesSpansIntoTheContextSink) {
  RunContext ctx;
  ctx.setTraceLevel(TraceLevel::Aggregate);
  {
    RunContext::Scope bind(ctx);
    SADP_SPAN("run_context.test_span");
  }
  bool found = false;
  for (const SpanAggregate& a : ctx.trace().aggregates()) {
    if (a.name == "run_context.test_span") {
      found = true;
      EXPECT_EQ(a.count, 1);
    }
  }
  EXPECT_TRUE(found);
  for (const SpanAggregate& a : TraceSink::defaultSink().aggregates()) {
    EXPECT_NE(a.name, "run_context.test_span");
  }
}

TEST(RunContext, DefaultContextWrapsProcessSingletons) {
  RunContext& def = RunContext::defaultContext();
  EXPECT_EQ(&def.metrics(), &MetricsRegistry::instance());
  EXPECT_EQ(&def.trace(), &TraceSink::defaultSink());
  EXPECT_EQ(&RunContext::current(), &def);  // unbound thread
}

}  // namespace
}  // namespace sadp
