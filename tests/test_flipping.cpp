// Tests for the color-flipping engine: super-vertex reduction, maximum
// spanning tree + tree DP (Theorem 4), and brute-force optimality checks.
#include "patterning/flipping.hpp"

#include <gtest/gtest.h>

#include <random>

namespace sadp {
namespace {

Classification edgeCosts(int cc, int cs, int sc, int ss,
                         ScenarioType t = ScenarioType::T3a) {
  Classification c;
  c.type = t;
  c.overlay = {cc, cs, sc, ss};
  return c;
}

Classification hardDiff() {
  return edgeCosts(kHardCost, 0, 0, kHardCost, ScenarioType::T1a);
}
Classification hardSame() {
  return edgeCosts(0, kHardCost, kHardCost, 0, ScenarioType::T1b);
}

/// Exhaustive minimum total cost over all 2^n vertex colorings.
std::int64_t bruteForceOptimum(const OverlayConstraintGraph& g) {
  const std::size_t n = g.vertexCount();
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::int64_t total = 0;
    for (const OcgEdge& e : g.edges()) {
      if (!e.alive) continue;
      const Color cu = (mask >> e.u) & 1 ? Color::Second : Color::Core;
      const Color cv = (mask >> e.v) & 1 ? Color::Second : Color::Core;
      const int i = assignmentIndex(cu, cv);
      std::int64_t c = e.cls.overlay[i];
      if (e.cls.cutRisk[i]) c += OverlayConstraintGraph::kCutRiskPenalty;
      total += c;
    }
    best = std::min(best, total);
  }
  return best;
}

/// Total true cost of the current coloring of g (all vertices colored).
std::int64_t currentCost(const OverlayConstraintGraph& g) {
  std::int64_t total = 0;
  for (const OcgEdge& e : g.edges()) {
    if (!e.alive) continue;
    const Color cu = g.colorOf(g.netOf(e.u));
    const Color cv = g.colorOf(g.netOf(e.v));
    const int i = assignmentIndex(cu, cv);
    std::int64_t c = e.cls.overlay[i];
    if (e.cls.cutRisk[i]) c += OverlayConstraintGraph::kCutRiskPenalty;
    total += c;
  }
  return total;
}

TEST(Reduce, HardClassesCollapse) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardSame());
  g.addScenario(2, 3, hardDiff());
  g.addScenario(3, 4, edgeCosts(1, 0, 0, 1));
  const ReducedGraph rg = reduceGraph(g);
  // {1,2,3} form one hard class; 4 is alone.
  EXPECT_EQ(rg.classCount(), 2u);
  ASSERT_EQ(rg.edges.size(), 1u);
  EXPECT_FALSE(rg.edges[0].hard);
}

TEST(Reduce, ParityFoldsCostVector) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, hardDiff());  // 2 = flipped(1)
  // Edge 2-3 prefers same colors: cost (CC=0, CS=5, SC=5, SS=0).
  g.addScenario(2, 3, edgeCosts(0, 5, 5, 0, ScenarioType::T2a));
  const ReducedGraph rg = reduceGraph(g);
  ASSERT_EQ(rg.edges.size(), 1u);
  // In class space (class of {1,2} keyed by 1's parity): vertex-2 color is
  // the flip of the class color, so the folded cost must prefer the class
  // color DIFFERENT from 3's color.
  const auto& cost = rg.edges[0].cost;
  // Whichever orientation, one diagonal must be {5,5} and the other {0,0}.
  EXPECT_EQ(cost[0], 5);  // class colors equal -> vertex colors differ
  EXPECT_EQ(cost[3], 5);
  EXPECT_EQ(cost[1], 0);
  EXPECT_EQ(cost[2], 0);
}

TEST(Flip, SimpleChainReachesOptimum) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, edgeCosts(3, 0, 0, 3));
  g.addScenario(2, 3, edgeCosts(3, 0, 0, 3));
  g.setColor(1, Color::Core);
  g.setColor(2, Color::Core);
  g.setColor(3, Color::Core);
  EXPECT_EQ(currentCost(g), 6);
  const FlipStats s = colorFlip(g);
  EXPECT_EQ(s.costAfter, bruteForceOptimum(g));
  EXPECT_EQ(currentCost(g), 0);  // alternate coloring
}

TEST(Flip, TreeOptimalityRandomized) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> cost(0, 6);
  for (int iter = 0; iter < 60; ++iter) {
    OverlayConstraintGraph g;
    const int n = 8;
    // Random tree over vertices 0..n-1 (net ids offset by 10).
    for (int v = 1; v < n; ++v) {
      std::uniform_int_distribution<int> parent(0, v - 1);
      g.addScenario(10 + parent(rng), 10 + v,
                    edgeCosts(cost(rng), cost(rng), cost(rng), cost(rng)));
    }
    for (int v = 0; v < n; ++v) {
      g.setColor(10 + v, (iter & 1) ? Color::Core : Color::Second);
    }
    colorFlip(g);
    EXPECT_EQ(currentCost(g), bruteForceOptimum(g)) << "iter " << iter;
  }
}

TEST(Flip, NeverWorsensOnCyclicGraphs) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> cost(0, 6);
  std::uniform_int_distribution<int> vtx(0, 9);
  for (int iter = 0; iter < 60; ++iter) {
    OverlayConstraintGraph g;
    for (int e = 0; e < 14; ++e) {
      int a = vtx(rng), b = vtx(rng);
      if (a == b) continue;
      g.addScenario(100 + a, 100 + b,
                    edgeCosts(cost(rng), cost(rng), cost(rng), cost(rng)));
    }
    for (int v = 0; v < 10; ++v) {
      if (g.findVertex(100 + v) >= 0) {
        g.setColor(100 + v, vtx(rng) % 2 ? Color::Core : Color::Second);
      }
    }
    const std::int64_t before = currentCost(g);
    colorFlip(g);
    const std::int64_t after = currentCost(g);
    EXPECT_LE(after, before) << "iter " << iter;
    // Cyclic graphs: DP is a heuristic; must still never violate hard
    // constraints (none here) and never worsen.
  }
}

TEST(Flip, HardConstraintsAlwaysRespected) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> cost(0, 6);
  for (int iter = 0; iter < 40; ++iter) {
    OverlayConstraintGraph g;
    // Chain of hard edges plus random nonhard chords.
    const int n = 7;
    for (int v = 1; v < n; ++v) {
      g.addScenario(v - 1, v, (v % 2) ? hardDiff() : hardSame());
    }
    std::uniform_int_distribution<int> vtx(0, n - 1);
    for (int e = 0; e < 6; ++e) {
      int a = vtx(rng), b = vtx(rng);
      if (a == b) continue;
      g.addScenario(a, b,
                    edgeCosts(cost(rng), cost(rng), cost(rng), cost(rng)));
    }
    g.setColor(0, Color::Core);
    colorFlip(g);
    // Verify every hard edge satisfied.
    for (const OcgEdge& e : g.edges()) {
      if (!e.alive || !e.cls.hard()) continue;
      const Color cu = g.colorOf(g.netOf(e.u));
      const Color cv = g.colorOf(g.netOf(e.v));
      EXPECT_LT(e.cls.overlay[assignmentIndex(cu, cv)], kHardCost)
          << "iter " << iter;
    }
  }
}

TEST(Flip, ColorsUncoloredVertices) {
  OverlayConstraintGraph g;
  g.addScenario(1, 2, edgeCosts(3, 0, 0, 3));
  colorFlip(g);
  EXPECT_NE(g.colorOf(1), Color::Unassigned);
  EXPECT_NE(g.colorOf(2), Color::Unassigned);
  EXPECT_EQ(currentCost(g), 0);
}

TEST(Flip, EmptyGraph) {
  OverlayConstraintGraph g;
  const FlipStats s = colorFlip(g);
  EXPECT_EQ(s.components, 0);
  EXPECT_EQ(s.costBefore, 0);
}

TEST(Flip, MstPrefersSignificantEdges) {
  // Triangle where one edge is far more significant; the DP must satisfy
  // the two heavy edges even at the cost of the light one.
  OverlayConstraintGraph g;
  g.addScenario(1, 2, edgeCosts(9, 0, 0, 9));
  g.addScenario(2, 3, edgeCosts(9, 0, 0, 9));
  g.addScenario(3, 1, edgeCosts(1, 0, 0, 1));  // conflicts with the others
  colorFlip(g);
  EXPECT_EQ(currentCost(g), 1);  // brute-force optimum is 1
  EXPECT_EQ(currentCost(g), bruteForceOptimum(g));
}

}  // namespace
}  // namespace sadp
