// Tests for design rules and the routing grid.
#include "grid/routing_grid.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

TEST(DesignRules, PaperDefaultsValid) {
  DesignRules r;
  EXPECT_NO_THROW(r.validate());
  EXPECT_EQ(r.pitch(), 40);
  // d_indep^2 = 2 * 60^2 = 7200.
  EXPECT_EQ(r.dIndepSq(), 7200);
}

TEST(DesignRules, Equation1Violation) {
  DesignRules r;
  r.wSpacer = 25;
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(DesignRules, Equation2Violations) {
  DesignRules r;
  r.wCut = 25;  // != wCore
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = DesignRules{};
  r.dCut = 40;  // != dCore
  EXPECT_THROW(r.validate(), std::invalid_argument);
  r = DesignRules{};
  r.wCut = r.wCore = 30;  // !(wCut < dCut)
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(DesignRules, Equation3Violation) {
  DesignRules r;
  r.dOverlap = 20;  // d_core >= w_line + 2*w_spacer - 2*d_overlap = 20
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(DesignRules, NonPositiveValues) {
  DesignRules r;
  r.wLine = 0;
  EXPECT_THROW(r.validate(), std::invalid_argument);
}

TEST(RoutingGrid, ConstructionAndBounds) {
  RoutingGrid g(10, 8, 3, DesignRules{});
  EXPECT_EQ(g.width(), 10);
  EXPECT_EQ(g.height(), 8);
  EXPECT_EQ(g.layers(), 3);
  EXPECT_EQ(g.nodeCount(), 240u);
  EXPECT_TRUE(g.inBounds({0, 0, 0}));
  EXPECT_TRUE(g.inBounds({9, 7, 2}));
  EXPECT_FALSE(g.inBounds({10, 0, 0}));
  EXPECT_FALSE(g.inBounds({0, -1, 0}));
  EXPECT_FALSE(g.inBounds({0, 0, 3}));
  EXPECT_THROW(RoutingGrid(0, 8, 3, DesignRules{}), std::invalid_argument);
}

TEST(RoutingGrid, PreferredDirectionsAlternate) {
  RoutingGrid g(4, 4, 3, DesignRules{});
  EXPECT_EQ(g.preferredDir(0), Orient::Horizontal);
  EXPECT_EQ(g.preferredDir(1), Orient::Vertical);
  EXPECT_EQ(g.preferredDir(2), Orient::Horizontal);
}

TEST(RoutingGrid, OccupancyLifecycle) {
  RoutingGrid g(4, 4, 2, DesignRules{});
  const GridNode n{1, 2, 0};
  EXPECT_TRUE(g.isFree(n));
  g.occupy(n, 5);
  EXPECT_EQ(g.owner(n), 5);
  EXPECT_FALSE(g.isFree(n));
  g.occupy(n, 5);  // re-claim is a no-op
  EXPECT_THROW(g.occupy(n, 6), std::logic_error);
  g.release(n, 6);  // wrong owner: no-op
  EXPECT_EQ(g.owner(n), 5);
  g.release(n, 5);
  EXPECT_TRUE(g.isFree(n));
}

TEST(RoutingGrid, Blockages) {
  RoutingGrid g(10, 10, 2, DesignRules{});
  g.blockBox(0, 2, 2, 5, 5);
  EXPECT_TRUE(g.isBlocked({2, 2, 0}));
  EXPECT_TRUE(g.isBlocked({4, 4, 0}));
  EXPECT_FALSE(g.isBlocked({5, 5, 0}));
  EXPECT_FALSE(g.isBlocked({2, 2, 1}));  // other layer untouched
  // Clipping out-of-range boxes must not throw.
  EXPECT_NO_THROW(g.blockBox(1, -5, -5, 100, 100));
  EXPECT_TRUE(g.isBlocked({0, 0, 1}));
}

TEST(RoutingGrid, NmTransforms) {
  RoutingGrid g(10, 10, 2, DesignRules{});
  EXPECT_EQ(g.nodeCenterNm({0, 0, 0}), (Pt{20, 20}));
  EXPECT_EQ(g.nodeCenterNm({2, 3, 0}), (Pt{100, 140}));
  EXPECT_EQ(g.nodeMetalNm({0, 0, 0}), (Rect{10, 10, 30, 30}));
  EXPECT_EQ(g.dieNm(), (Rect{0, 0, 400, 400}));
}

TEST(RoutingGrid, SegmentMetal) {
  RoutingGrid g(10, 10, 2, DesignRules{});
  const Rect seg = g.segmentMetalNm({1, 1, 0}, {2, 1, 0});
  EXPECT_EQ(seg, (Rect{50, 50, 110, 70}));
  EXPECT_THROW(g.segmentMetalNm({1, 1, 0}, {3, 1, 0}), std::invalid_argument);
  EXPECT_THROW(g.segmentMetalNm({1, 1, 0}, {1, 1, 1}), std::invalid_argument);
}

TEST(RoutingGrid, OccupiedCount) {
  RoutingGrid g(4, 4, 1, DesignRules{});
  EXPECT_EQ(g.occupiedCount(), 0u);
  g.occupy({0, 0, 0}, 1);
  g.occupy({1, 0, 0}, 2);
  g.block({2, 0, 0});
  EXPECT_EQ(g.occupiedCount(), 2u);  // blockages don't count
}

}  // namespace
}  // namespace sadp
