// Tests for the 10 nm raster and its morphological operations.
#include "sadp/bitmap.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

TEST(Bitmap, FillAndGet) {
  Bitmap b(10, 10);
  b.fillRect(2, 3, 5, 6);
  EXPECT_TRUE(b.get(2, 3));
  EXPECT_TRUE(b.get(4, 5));
  EXPECT_FALSE(b.get(5, 5));  // half-open
  EXPECT_FALSE(b.get(4, 6));
  EXPECT_EQ(b.count(), 9u);
  // Out-of-range reads are false; writes are clipped.
  EXPECT_FALSE(b.get(-1, 0));
  EXPECT_FALSE(b.get(10, 10));
  b.fillRect(-5, -5, 2, 2);
  EXPECT_TRUE(b.get(0, 0));
}

TEST(Bitmap, BooleanOps) {
  Bitmap a(8, 8), b(8, 8);
  a.fillRect(0, 0, 4, 4);
  b.fillRect(2, 2, 6, 6);
  Bitmap u = a | b;
  EXPECT_EQ(u.count(), 16u + 16u - 4u);
  Bitmap i = a & b;
  EXPECT_EQ(i.count(), 4u);
  Bitmap d = a;
  d.andNot(b);
  EXPECT_EQ(d.count(), 12u);
  EXPECT_TRUE(d.get(0, 0));
  EXPECT_FALSE(d.get(3, 3));
  Bitmap inv = a;
  inv.invert();
  EXPECT_EQ(inv.count(), 64u - 16u);
  Bitmap other(4, 4);
  EXPECT_THROW(a |= other, std::invalid_argument);
}

TEST(Bitmap, AnyInRect) {
  Bitmap b(10, 10);
  b.set(5, 5);
  EXPECT_TRUE(b.anyInRect(0, 0, 10, 10));
  EXPECT_TRUE(b.anyInRect(5, 5, 6, 6));
  EXPECT_FALSE(b.anyInRect(0, 0, 5, 5));
  EXPECT_FALSE(b.anyInRect(6, 6, 10, 10));
}

TEST(Bitmap, Dilation) {
  Bitmap b(9, 9);
  b.set(4, 4);
  Bitmap d = b.dilated(1);
  EXPECT_EQ(d.count(), 9u);  // 3x3 square
  EXPECT_TRUE(d.get(3, 3));
  EXPECT_TRUE(d.get(5, 5));
  EXPECT_FALSE(d.get(2, 4));
  Bitmap d2 = b.dilated(2);
  EXPECT_EQ(d2.count(), 25u);
}

TEST(Bitmap, ErosionShrinksFromEdges) {
  Bitmap b(9, 9);
  b.fillRect(2, 2, 7, 7);  // 5x5
  Bitmap e = b.eroded(1);
  EXPECT_EQ(e.count(), 9u);  // 3x3
  EXPECT_TRUE(e.get(4, 4));
  EXPECT_FALSE(e.get(2, 2));
  // Erosion is the complement of dilating the complement, so the raster
  // border behaves as "set": a full bitmap stays full.
  Bitmap full(5, 5);
  full.fillRect(0, 0, 5, 5);
  EXPECT_EQ(full.eroded(1).count(), 25u);
}

TEST(Bitmap, ClosingFillsSmallGaps) {
  Bitmap b(20, 7);
  b.fillRect(0, 2, 8, 5);
  b.fillRect(10, 2, 18, 5);  // 2 px gap
  Bitmap c = b.closed(1);
  EXPECT_TRUE(c.get(8, 3));
  EXPECT_TRUE(c.get(9, 3));
  // A 3 px gap survives closing with radius 1.
  Bitmap wide(20, 7);
  wide.fillRect(0, 2, 8, 5);
  wide.fillRect(11, 2, 18, 5);
  Bitmap cw = wide.closed(1);
  EXPECT_FALSE(cw.get(9, 3));
}

TEST(Bitmap, ClosingDoesNotBridgeDiagonalGaps) {
  // Chebyshev closing cannot merge a (2,2) px diagonal gap -- this is why
  // the mask synthesizer performs shape-level merging instead of closing.
  Bitmap b(16, 16);
  b.fillRect(0, 0, 6, 6);
  b.fillRect(8, 8, 14, 14);
  Bitmap c = b.closed(1);
  EXPECT_FALSE(c.get(6, 6));
  EXPECT_FALSE(c.get(7, 7));
}

TEST(Bitmap, OpeningRemovesSlivers) {
  Bitmap b(20, 20);
  b.fillRect(0, 0, 20, 1);   // 1 px tall sliver
  b.fillRect(5, 5, 15, 15);  // solid block
  Bitmap o = b.opened(1);
  EXPECT_FALSE(o.get(10, 0));
  EXPECT_TRUE(o.get(10, 10));
}

TEST(Bitmap, AnyNear) {
  Bitmap b(10, 10);
  b.set(5, 5);
  EXPECT_TRUE(anyNear(b, 5, 5, 0));
  EXPECT_TRUE(anyNear(b, 4, 4, 1));
  EXPECT_TRUE(anyNear(b, 6, 4, 1));
  EXPECT_FALSE(anyNear(b, 3, 3, 1));
  EXPECT_TRUE(anyNear(b, 3, 3, 2));
}

TEST(Bitmap, ComponentCount) {
  Bitmap b(20, 20);
  EXPECT_EQ(componentCount(b), 0);
  b.fillRect(0, 0, 3, 3);
  EXPECT_EQ(componentCount(b), 1);
  b.fillRect(10, 10, 12, 12);
  EXPECT_EQ(componentCount(b), 2);
  // Diagonal touch is NOT 4-connected.
  b.set(3, 3);
  EXPECT_EQ(componentCount(b), 3);
  // A row through y=1 absorbs the first block and the (3,3) spur stays
  // separate, as does the block at (10,10).
  b.fillRect(0, 1, 11, 2);
  EXPECT_EQ(componentCount(b), 3);
  // Extend the bridge into the second block.
  b.fillRect(10, 1, 11, 11);
  EXPECT_EQ(componentCount(b), 2);
}

}  // namespace
}  // namespace sadp
