// Tests for the 10 nm raster and its morphological operations.
#include "sadp/bitmap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sadp/decompose.hpp"

namespace sadp {
namespace {

constexpr int kPxNm = 10;  ///< raster resolution, keep in sync with decompose

TEST(Bitmap, FillAndGet) {
  Bitmap b(10, 10);
  b.fillRect(2, 3, 5, 6);
  EXPECT_TRUE(b.get(2, 3));
  EXPECT_TRUE(b.get(4, 5));
  EXPECT_FALSE(b.get(5, 5));  // half-open
  EXPECT_FALSE(b.get(4, 6));
  EXPECT_EQ(b.count(), 9u);
  // Out-of-range reads are false; writes are clipped.
  EXPECT_FALSE(b.get(-1, 0));
  EXPECT_FALSE(b.get(10, 10));
  b.fillRect(-5, -5, 2, 2);
  EXPECT_TRUE(b.get(0, 0));
}

TEST(Bitmap, BooleanOps) {
  Bitmap a(8, 8), b(8, 8);
  a.fillRect(0, 0, 4, 4);
  b.fillRect(2, 2, 6, 6);
  Bitmap u = a | b;
  EXPECT_EQ(u.count(), 16u + 16u - 4u);
  Bitmap i = a & b;
  EXPECT_EQ(i.count(), 4u);
  Bitmap d = a;
  d.andNot(b);
  EXPECT_EQ(d.count(), 12u);
  EXPECT_TRUE(d.get(0, 0));
  EXPECT_FALSE(d.get(3, 3));
  Bitmap inv = a;
  inv.invert();
  EXPECT_EQ(inv.count(), 64u - 16u);
  Bitmap other(4, 4);
  EXPECT_THROW(a |= other, std::invalid_argument);
}

TEST(Bitmap, AnyInRect) {
  Bitmap b(10, 10);
  b.set(5, 5);
  EXPECT_TRUE(b.anyInRect(0, 0, 10, 10));
  EXPECT_TRUE(b.anyInRect(5, 5, 6, 6));
  EXPECT_FALSE(b.anyInRect(0, 0, 5, 5));
  EXPECT_FALSE(b.anyInRect(6, 6, 10, 10));
}

TEST(Bitmap, Dilation) {
  Bitmap b(9, 9);
  b.set(4, 4);
  Bitmap d = b.dilated(1);
  EXPECT_EQ(d.count(), 9u);  // 3x3 square
  EXPECT_TRUE(d.get(3, 3));
  EXPECT_TRUE(d.get(5, 5));
  EXPECT_FALSE(d.get(2, 4));
  Bitmap d2 = b.dilated(2);
  EXPECT_EQ(d2.count(), 25u);
}

TEST(Bitmap, ErosionShrinksFromEdges) {
  Bitmap b(9, 9);
  b.fillRect(2, 2, 7, 7);  // 5x5
  Bitmap e = b.eroded(1);
  EXPECT_EQ(e.count(), 9u);  // 3x3
  EXPECT_TRUE(e.get(4, 4));
  EXPECT_FALSE(e.get(2, 2));
  // Erosion is the complement of dilating the complement, so the raster
  // border behaves as "set": a full bitmap stays full.
  Bitmap full(5, 5);
  full.fillRect(0, 0, 5, 5);
  EXPECT_EQ(full.eroded(1).count(), 25u);
}

TEST(Bitmap, ClosingFillsSmallGaps) {
  Bitmap b(20, 7);
  b.fillRect(0, 2, 8, 5);
  b.fillRect(10, 2, 18, 5);  // 2 px gap
  Bitmap c = b.closed(1);
  EXPECT_TRUE(c.get(8, 3));
  EXPECT_TRUE(c.get(9, 3));
  // A 3 px gap survives closing with radius 1.
  Bitmap wide(20, 7);
  wide.fillRect(0, 2, 8, 5);
  wide.fillRect(11, 2, 18, 5);
  Bitmap cw = wide.closed(1);
  EXPECT_FALSE(cw.get(9, 3));
}

TEST(Bitmap, ClosingDoesNotBridgeDiagonalGaps) {
  // Chebyshev closing cannot merge a (2,2) px diagonal gap -- this is why
  // the mask synthesizer performs shape-level merging instead of closing.
  Bitmap b(16, 16);
  b.fillRect(0, 0, 6, 6);
  b.fillRect(8, 8, 14, 14);
  Bitmap c = b.closed(1);
  EXPECT_FALSE(c.get(6, 6));
  EXPECT_FALSE(c.get(7, 7));
}

TEST(Bitmap, OpeningRemovesSlivers) {
  Bitmap b(20, 20);
  b.fillRect(0, 0, 20, 1);   // 1 px tall sliver
  b.fillRect(5, 5, 15, 15);  // solid block
  Bitmap o = b.opened(1);
  EXPECT_FALSE(o.get(10, 0));
  EXPECT_TRUE(o.get(10, 10));
}

TEST(Bitmap, AnyNear) {
  Bitmap b(10, 10);
  b.set(5, 5);
  EXPECT_TRUE(anyNear(b, 5, 5, 0));
  EXPECT_TRUE(anyNear(b, 4, 4, 1));
  EXPECT_TRUE(anyNear(b, 6, 4, 1));
  EXPECT_FALSE(anyNear(b, 3, 3, 1));
  EXPECT_TRUE(anyNear(b, 3, 3, 2));
}

TEST(Bitmap, ComponentCount) {
  Bitmap b(20, 20);
  EXPECT_EQ(componentCount(b), 0);
  b.fillRect(0, 0, 3, 3);
  EXPECT_EQ(componentCount(b), 1);
  b.fillRect(10, 10, 12, 12);
  EXPECT_EQ(componentCount(b), 2);
  // Diagonal touch is NOT 4-connected.
  b.set(3, 3);
  EXPECT_EQ(componentCount(b), 3);
  // A row through y=1 absorbs the first block and the (3,3) spur stays
  // separate, as does the block at (10,10).
  b.fillRect(0, 1, 11, 2);
  EXPECT_EQ(componentCount(b), 3);
  // Extend the bridge into the second block.
  b.fillRect(10, 1, 11, 11);
  EXPECT_EQ(componentCount(b), 2);
}

// ---- Randomized property tests against a byte-per-pixel reference ----------
//
// The bit-packed kernels are validated against straightforward byte-raster
// implementations of the same operations (the pre-bit-packed semantics),
// across widths that exercise every word-boundary case: sub-word, exactly
// one word, word+1, and multi-word with a ragged tail.

struct ByteRaster {
  int w = 0, h = 0;
  std::vector<std::uint8_t> px;

  ByteRaster(int w_, int h_) : w(w_), h(h_), px(std::size_t(w_) * h_, 0) {}
  explicit ByteRaster(const Bitmap& b) : ByteRaster(b.width(), b.height()) {
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) px[idx(x, y)] = b.get(x, y) ? 1 : 0;
  }
  std::size_t idx(int x, int y) const { return std::size_t(y) * w + x; }
  bool get(int x, int y) const {
    return x >= 0 && y >= 0 && x < w && y < h && px[idx(x, y)] != 0;
  }

  ByteRaster dilated(int r) const {
    ByteRaster out(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        for (int dy = -r; dy <= r && !out.px[idx(x, y)]; ++dy)
          for (int dx = -r; dx <= r; ++dx)
            if (get(x + dx, y + dy)) {
              out.px[idx(x, y)] = 1;
              break;
            }
    return out;
  }

  // Out-of-raster pixels read as SET (matches Bitmap::eroded's
  // invert/dilate/invert border convention).
  ByteRaster eroded(int r) const {
    ByteRaster out(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) {
        bool all = true;
        for (int dy = -r; dy <= r && all; ++dy)
          for (int dx = -r; dx <= r; ++dx) {
            const int xx = x + dx, yy = y + dy;
            const bool inside =
                xx >= 0 && yy >= 0 && xx < w && yy < h;
            if (inside && !px[idx(xx, yy)]) {
              all = false;
              break;
            }
          }
        out.px[idx(x, y)] = all ? 1 : 0;
      }
    return out;
  }

  // The seed's anchored k x k erosion: AND over [x, x+k) x [y, y+k),
  // out-of-raster reads as UNSET.
  ByteRaster erodeK(int k) const {
    ByteRaster out(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x) {
        bool all = true;
        for (int dy = 0; dy < k && all; ++dy)
          for (int dx = 0; dx < k; ++dx)
            if (!get(x + dx, y + dy)) {
              all = false;
              break;
            }
        out.px[idx(x, y)] = all ? 1 : 0;
      }
    return out;
  }

  // The seed's reflected k x k dilation: OR over [x-k+1, x] x [y-k+1, y].
  ByteRaster dilateKReflected(int k) const {
    ByteRaster out(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        for (int dy = 1 - k; dy <= 0 && !out.px[idx(x, y)]; ++dy)
          for (int dx = 1 - k; dx <= 0; ++dx)
            if (get(x + dx, y + dy)) {
              out.px[idx(x, y)] = 1;
              break;
            }
    return out;
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint8_t v : px) n += v;
    return n;
  }
};

Bitmap randomBitmap(int w, int h, double density, std::mt19937& rng) {
  Bitmap b(w, h);
  std::bernoulli_distribution bit(density);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      if (bit(rng)) b.set(x, y);
  return b;
}

void expectEqual(const Bitmap& got, const ByteRaster& want,
                 const std::string& what) {
  ASSERT_EQ(got.width(), want.w) << what;
  ASSERT_EQ(got.height(), want.h) << what;
  for (int y = 0; y < want.h; ++y)
    for (int x = 0; x < want.w; ++x)
      ASSERT_EQ(got.get(x, y), want.px[want.idx(x, y)] != 0)
          << what << " at (" << x << "," << y << ")";
  EXPECT_EQ(got.count(), want.count()) << what;
}

// Widths crossing every 64-bit word-boundary case; heights vary too.
const int kWidths[] = {1, 63, 64, 65, 127, 130};
const int kHeights[] = {1, 7, 64};

TEST(BitmapProperty, MorphologyMatchesByteReference) {
  std::mt19937 rng(12345);
  for (int w : kWidths)
    for (int h : kHeights) {
      const Bitmap b = randomBitmap(w, h, 0.35, rng);
      const ByteRaster ref(b);
      for (int r = 0; r <= 5; ++r) {
        expectEqual(b.dilated(r), ref.dilated(r),
                    "dilated r=" + std::to_string(r) + " w=" +
                        std::to_string(w) + " h=" + std::to_string(h));
        expectEqual(b.eroded(r), ref.eroded(r),
                    "eroded r=" + std::to_string(r) + " w=" +
                        std::to_string(w) + " h=" + std::to_string(h));
      }
    }
}

TEST(BitmapProperty, OpenedAnchoredMatchesLegacyErodeDilate) {
  std::mt19937 rng(777);
  for (int w : kWidths)
    for (int h : kHeights) {
      // Denser fill so k x k windows survive the erosion occasionally.
      const Bitmap b = randomBitmap(w, h, 0.8, rng);
      const ByteRaster ref(b);
      for (int k = 1; k <= 5; ++k) {
        expectEqual(b.openedAnchored(k),
                    ref.erodeK(k).dilateKReflected(k),
                    "openedAnchored k=" + std::to_string(k) + " w=" +
                        std::to_string(w) + " h=" + std::to_string(h));
      }
    }
}

TEST(BitmapProperty, BooleanOpsMatchByteReference) {
  std::mt19937 rng(999);
  for (int w : kWidths)
    for (int h : kHeights) {
      const Bitmap a = randomBitmap(w, h, 0.4, rng);
      const Bitmap b = randomBitmap(w, h, 0.4, rng);
      const ByteRaster ra(a), rb(b);
      ByteRaster rOr(w, h), rAnd(w, h), rAndNot(w, h), rInv(w, h);
      for (std::size_t i = 0; i < ra.px.size(); ++i) {
        rOr.px[i] = ra.px[i] | rb.px[i];
        rAnd.px[i] = ra.px[i] & rb.px[i];
        rAndNot.px[i] = ra.px[i] & ~rb.px[i] & 1;
        rInv.px[i] = ra.px[i] ^ 1;
      }
      expectEqual(a | b, rOr, "or");
      expectEqual(a & b, rAnd, "and");
      Bitmap d = a;
      d.andNot(b);
      expectEqual(d, rAndNot, "andNot");
      Bitmap inv = a;
      inv.invert();
      expectEqual(inv, rInv, "invert");
    }
}

TEST(BitmapProperty, AnyInRectMatchesByteReference) {
  std::mt19937 rng(4242);
  for (int w : kWidths) {
    const int h = 40;
    const Bitmap b = randomBitmap(w, h, 0.02, rng);
    const ByteRaster ref(b);
    std::uniform_int_distribution<int> dx(-3, w + 3), dy(-3, h + 3);
    for (int q = 0; q < 200; ++q) {
      int x0 = dx(rng), x1 = dx(rng), y0 = dy(rng), y1 = dy(rng);
      if (x0 > x1) std::swap(x0, x1);
      if (y0 > y1) std::swap(y0, y1);
      bool want = false;
      for (int y = y0; y < y1 && !want; ++y)
        for (int x = x0; x < x1; ++x)
          if (ref.get(x, y)) {
            want = true;
            break;
          }
      EXPECT_EQ(b.anyInRect(x0, y0, x1, y1), want)
          << "w=" << w << " rect=(" << x0 << "," << y0 << "," << x1 << ","
          << y1 << ")";
    }
  }
}

// Flood-fill reference: components discovered in row-major first-pixel
// order, which is the documented ordering contract of componentBoxes().
std::vector<Rect> floodFillBoxes(const ByteRaster& ref) {
  std::vector<Rect> boxes;
  std::vector<std::uint8_t> seen(ref.px.size(), 0);
  for (int y = 0; y < ref.h; ++y)
    for (int x = 0; x < ref.w; ++x) {
      if (!ref.px[ref.idx(x, y)] || seen[ref.idx(x, y)]) continue;
      Rect box{Nm(x), Nm(y), Nm(x + 1), Nm(y + 1)};
      std::queue<std::pair<int, int>> q;
      q.emplace(x, y);
      seen[ref.idx(x, y)] = 1;
      while (!q.empty()) {
        auto [cx, cy] = q.front();
        q.pop();
        box.xlo = std::min(box.xlo, Nm(cx));
        box.ylo = std::min(box.ylo, Nm(cy));
        box.xhi = std::max(box.xhi, Nm(cx + 1));
        box.yhi = std::max(box.yhi, Nm(cy + 1));
        const int nx[4] = {cx - 1, cx + 1, cx, cx};
        const int ny[4] = {cy, cy, cy - 1, cy + 1};
        for (int d = 0; d < 4; ++d)
          if (ref.get(nx[d], ny[d]) && !seen[ref.idx(nx[d], ny[d])]) {
            seen[ref.idx(nx[d], ny[d])] = 1;
            q.emplace(nx[d], ny[d]);
          }
      }
      boxes.push_back(box);
    }
  return boxes;
}

TEST(BitmapProperty, ComponentBoxesMatchFloodFill) {
  std::mt19937 rng(31415);
  for (int w : kWidths)
    for (double density : {0.25, 0.55}) {
      const int h = 48;
      const Bitmap b = randomBitmap(w, h, density, rng);
      const ByteRaster ref(b);
      const std::vector<Rect> want = floodFillBoxes(ref);
      const std::vector<Rect> got = componentBoxes(b);
      ASSERT_EQ(got.size(), want.size()) << "w=" << w << " d=" << density;
      for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "w=" << w << " component " << i;
      EXPECT_EQ(componentCount(b), int(want.size()));
    }
}

// Quadratic reference for the row-run rectangle sweep (the seed
// implementation): open rects matched by linear scan over (x0,x1) spans.
std::vector<Rect> naiveRasterToNmRects(const ByteRaster& ref,
                                       const Rect& windowNm) {
  struct Run {
    int x0, x1, y0, y1;
  };
  std::vector<Rect> px;
  std::vector<Run> open;
  for (int y = 0; y <= ref.h; ++y) {
    std::vector<std::pair<int, int>> runs;
    for (int x = 0; x < ref.w && y < ref.h;) {
      if (!ref.px[ref.idx(x, y)]) {
        ++x;
        continue;
      }
      int x1 = x;
      while (x1 < ref.w && ref.px[ref.idx(x1, y)]) ++x1;
      runs.emplace_back(x, x1);
      x = x1;
    }
    std::vector<Run> next;
    for (auto& [x0, x1] : runs) {
      bool matched = false;
      for (Run& r : open) {
        if (r.y1 >= 0 && r.x0 == x0 && r.x1 == x1) {
          r.y1 = y + 1;
          next.push_back(r);
          r.y1 = -1;
          matched = true;
          break;
        }
      }
      if (!matched) next.push_back({x0, x1, y, y + 1});
    }
    for (const Run& r : open)
      if (r.y1 >= 0) px.push_back(Rect{r.x0, r.y0, r.x1, r.y1});
    open = std::move(next);
  }
  std::vector<Rect> out;
  for (const Rect& p : px)
    out.push_back(Rect{Nm(windowNm.xlo + p.xlo * kPxNm),
                       Nm(windowNm.ylo + p.ylo * kPxNm),
                       Nm(windowNm.xlo + p.xhi * kPxNm),
                       Nm(windowNm.ylo + p.yhi * kPxNm)});
  return out;
}

TEST(BitmapProperty, RasterToNmRectsMatchesNaiveSweep) {
  std::mt19937 rng(2718);
  const Rect window{100, -200, 100 + 130 * kPxNm, -200 + 48 * kPxNm};
  for (int w : kWidths)
    for (double density : {0.3, 0.7}) {
      const int h = 48;
      const Bitmap b = randomBitmap(w, h, density, rng);
      const ByteRaster ref(b);
      const Rect win{window.xlo, window.ylo, Nm(window.xlo + w * kPxNm),
                     Nm(window.ylo + h * kPxNm)};
      const std::vector<Rect> want = naiveRasterToNmRects(ref, win);
      const std::vector<Rect> got = rasterToNmRects(b, win);
      ASSERT_EQ(got.size(), want.size()) << "w=" << w << " d=" << density;
      for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << "w=" << w << " rect " << i;
    }
}

TEST(BitmapProperty, TransposedMatchesByteReference) {
  std::mt19937 rng(86420);
  for (int w : kWidths)
    for (int h : {1, 7, 63, 64, 65, 127}) {
      const Bitmap b = randomBitmap(w, h, 0.4, rng);
      const Bitmap t = b.transposed();
      ASSERT_EQ(t.width(), h) << "w=" << w << " h=" << h;
      ASSERT_EQ(t.height(), w) << "w=" << w << " h=" << h;
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
          ASSERT_EQ(t.get(y, x), b.get(x, y))
              << "w=" << w << " h=" << h << " at (" << x << "," << y << ")";
      // Word-wise equality (operator==) also checks that the transpose
      // preserved the zero-tail invariant of the packed rows.
      EXPECT_EQ(t.transposed(), b) << "w=" << w << " h=" << h;
    }
}

// Pixel-walk reference of the cut-spacing kernel: for each axis, gaps
// between consecutive runs shorter than minGap, kept where target is set
// (the seed's scalar column walk, applied to both axes).
ByteRaster naiveNarrowGaps(const ByteRaster& cut, const ByteRaster& target,
                           int minGap) {
  ByteRaster out(cut.w, cut.h);
  for (int y = 0; y < cut.h; ++y) {
    int lastEnd = -1;
    int x = 0;
    while (x < cut.w) {
      if (!cut.get(x, y)) {
        ++x;
        continue;
      }
      if (lastEnd >= 0 && x - lastEnd < minGap) {
        for (int g = lastEnd; g < x; ++g)
          if (target.get(g, y)) out.px[out.idx(g, y)] = 1;
      }
      while (x < cut.w && cut.get(x, y)) ++x;
      lastEnd = x;
    }
  }
  for (int x = 0; x < cut.w; ++x) {
    int lastEnd = -1;
    int y = 0;
    while (y < cut.h) {
      if (!cut.get(x, y)) {
        ++y;
        continue;
      }
      if (lastEnd >= 0 && y - lastEnd < minGap) {
        for (int g = lastEnd; g < y; ++g)
          if (target.get(x, g)) out.px[out.idx(x, g)] = 1;
      }
      while (y < cut.h && cut.get(x, y)) ++y;
      lastEnd = y;
    }
  }
  return out;
}

TEST(BitmapProperty, NarrowGapFlagsMatchPixelWalk) {
  std::mt19937 rng(5050);
  for (int w : kWidths)
    for (double density : {0.2, 0.5}) {
      const int h = 48;
      const Bitmap cut = randomBitmap(w, h, density, rng);
      const Bitmap target = randomBitmap(w, h, 0.6, rng);
      const ByteRaster rc(cut), rt(target);
      for (int minGap : {1, 2, 3, 5}) {
        expectEqual(narrowGapFlags(cut, target, minGap),
                    naiveNarrowGaps(rc, rt, minGap),
                    "narrowGapFlags minGap=" + std::to_string(minGap) +
                        " w=" + std::to_string(w) +
                        " d=" + std::to_string(density));
      }
    }
}

// ---- Word-column crop/stitch (the tiled-decomposition primitives) ----------

/// Pixel-level reference of extractWordColumns: the band clipped to the
/// source width, bits read through get().
Bitmap naiveExtract(const Bitmap& b, int word0, int nWords) {
  const int x0 = word0 * 64;
  const int w = std::min(b.width() - x0, nWords * 64);
  Bitmap out(w, b.height());
  for (int y = 0; y < b.height(); ++y)
    for (int x = 0; x < w; ++x)
      if (b.get(x0 + x, y)) out.set(x, y);
  return out;
}

TEST(BitmapWordColumns, ExtractEdgeWidths) {
  // Widths straddling the word boundary: the padded last word of a row
  // must carry its zero tail into the extracted band.
  std::mt19937 rng(60401);
  for (int w : {63, 64, 65}) {
    const Bitmap b = randomBitmap(w, 9, 0.5, rng);
    const int wpr = Bitmap::wordsPerRow(w);
    for (int word0 = 0; word0 < wpr; ++word0)
      for (int nWords = 1; nWords <= wpr - word0 + 1; ++nWords) {
        const Bitmap got = b.extractWordColumns(word0, nWords);
        const Bitmap want = naiveExtract(b, word0, nWords);
        EXPECT_EQ(got, want) << "w=" << w << " word0=" << word0
                             << " nWords=" << nWords;
        EXPECT_EQ(got.width(),
                  std::min(w - word0 * 64, nWords * 64));
        EXPECT_EQ(got.count(), want.count());
      }
  }
  Bitmap b(65, 4);
  EXPECT_THROW(b.extractWordColumns(2, 1), std::out_of_range);
  EXPECT_THROW(b.extractWordColumns(-1, 1), std::out_of_range);
  EXPECT_THROW(b.extractWordColumns(0, 0), std::out_of_range);
}

TEST(BitmapWordColumns, ExtractMatchesPixelReference) {
  std::mt19937 rng(70707);
  for (int w : kWidths) {
    const int wpr = Bitmap::wordsPerRow(w);
    const Bitmap b = randomBitmap(w, 17, 0.4, rng);
    std::uniform_int_distribution<int> dw0(0, wpr - 1);
    for (int q = 0; q < 40; ++q) {
      const int word0 = dw0(rng);
      std::uniform_int_distribution<int> dn(1, wpr - word0 + 2);
      const int nWords = dn(rng);
      EXPECT_EQ(b.extractWordColumns(word0, nWords),
                naiveExtract(b, word0, nWords))
          << "w=" << w << " word0=" << word0 << " nWords=" << nWords;
    }
  }
}

TEST(BitmapWordColumns, BlitMatchesPixelReference) {
  std::mt19937 rng(80808);
  for (int w : kWidths) {
    const int wpr = Bitmap::wordsPerRow(w);
    for (int q = 0; q < 40; ++q) {
      Bitmap dst = randomBitmap(w, 11, 0.4, rng);
      // A source band at least as wide as the copy range; its own width
      // may be ragged so its padded tail word exercises the dst masking.
      std::uniform_int_distribution<int> dd0(0, wpr - 1);
      const int dstWord0 = dd0(rng);
      std::uniform_int_distribution<int> dn(1, wpr - dstWord0);
      const int nWords = dn(rng);
      std::uniform_int_distribution<int> ds0(0, 2);
      const int srcWord0 = ds0(rng);
      std::uniform_int_distribution<int> dsw(
          (srcWord0 + nWords) * 64 - 63, (srcWord0 + nWords + 1) * 64);
      const Bitmap src = randomBitmap(dsw(rng), 11, 0.4, rng);
      // Pixel-level expected image: band pixels come from src (reads past
      // src.width() are unset), everything else keeps dst's bits.
      Bitmap want(w, 11);
      for (int y = 0; y < 11; ++y)
        for (int x = 0; x < w; ++x) {
          const int word = x >> 6;
          const bool inBand = word >= dstWord0 && word < dstWord0 + nWords;
          const bool bit =
              inBand ? src.get((srcWord0 - dstWord0) * 64 + x, y)
                     : dst.get(x, y);
          if (bit) want.set(x, y);
        }
      dst.blitWordColumns(src, srcWord0, dstWord0, nWords);
      // operator== is word-wise, so this also proves the padded tail word
      // of every dst row stayed zero after the blit.
      EXPECT_EQ(dst, want) << "w=" << w << " dstWord0=" << dstWord0
                           << " srcWord0=" << srcWord0
                           << " nWords=" << nWords;
      EXPECT_EQ(dst.count(), want.count());
    }
  }
}

TEST(BitmapWordColumns, BlitMasksPaddedTailWord) {
  // Source band wider than the destination's ragged width: the extra
  // columns land in dst's padded tail bits and must be discarded.
  for (int w : {63, 65}) {
    Bitmap src(128, 3);
    src.fillRect(0, 0, 128, 3);  // all ones, including bits >= w
    Bitmap dst(w, 3);
    dst.blitWordColumns(src, 0, 0, Bitmap::wordsPerRow(w));
    EXPECT_EQ(dst.count(), std::size_t(w) * 3) << "w=" << w;
    Bitmap full(w, 3);
    full.fillRect(0, 0, w, 3);
    EXPECT_EQ(dst, full) << "w=" << w;
  }
  Bitmap a(64, 2), b(64, 3);
  EXPECT_THROW(a.blitWordColumns(b, 0, 0, 1), std::invalid_argument);
  Bitmap c(64, 2);
  EXPECT_THROW(a.blitWordColumns(c, 0, 1, 1), std::out_of_range);
  EXPECT_THROW(a.blitWordColumns(c, 1, 0, 1), std::out_of_range);
}

TEST(BitmapWordColumns, ExtractBlitRoundTrips) {
  std::mt19937 rng(91919);
  for (int w : kWidths) {
    const int wpr = Bitmap::wordsPerRow(w);
    const Bitmap b = randomBitmap(w, 13, 0.5, rng);
    Bitmap rebuilt(w, 13);
    for (int word0 = 0; word0 < wpr; word0 += 2) {
      const int n = std::min(2, wpr - word0);
      rebuilt.blitWordColumns(b.extractWordColumns(word0, n), 0, word0, n);
    }
    EXPECT_EQ(rebuilt, b) << "w=" << w;
  }
}

TEST(BitmapFingerprint, TracksEquality) {
  std::mt19937 rng(13579);
  const Bitmap a = randomBitmap(65, 9, 0.5, rng);
  Bitmap b = a;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  b.set(64, 8, !a.get(64, 8));  // flip one bit
  EXPECT_NE(fingerprint(a), fingerprint(b));
  // Dimensions are hashed too: same words, different shape.
  EXPECT_NE(fingerprint(Bitmap(64, 2)), fingerprint(Bitmap(128, 1)));
  EXPECT_NE(fingerprint(Bitmap(1, 1)), fingerprint(Bitmap(1, 2)));
}

// Naive per-pixel reference for the popcount prefix scan: count set
// pixels with x < 64*i by walking every pixel.
std::vector<std::int64_t> naivePopcountPrefix(const Bitmap& b) {
  std::vector<std::int64_t> out(std::size_t(Bitmap::wordsPerRow(b.width())) + 1,
                                0);
  for (int y = 0; y < b.height(); ++y)
    for (int x = 0; x < b.width(); ++x)
      if (b.get(x, y)) ++out[std::size_t(x >> 6) + 1];
  for (std::size_t i = 1; i < out.size(); ++i) out[i] += out[i - 1];
  return out;
}

TEST(BitmapPopcountPrefix, DegenerateRasters) {
  // Zero-area raster: one word column of nothing.
  EXPECT_EQ(Bitmap(0, 0).wordColumnPopcountPrefix(),
            (std::vector<std::int64_t>{0}));
  // Single pixel in each word-boundary column of a 3-word raster.
  for (int x : {0, 63, 64, 127, 128, 129}) {
    Bitmap b(130, 5);
    b.set(x, 3);
    const auto p = b.wordColumnPopcountPrefix();
    ASSERT_EQ(p.size(), 4u) << "x=" << x;
    EXPECT_EQ(p, naivePopcountPrefix(b)) << "x=" << x;
    EXPECT_EQ(p.back(), 1);
  }
}

TEST(BitmapPopcountPrefix, FullWindow) {
  for (int w : kWidths) {
    Bitmap b(w, 9);
    b.fillRect(0, 0, w, 9);
    const auto p = b.wordColumnPopcountPrefix();
    EXPECT_EQ(p, naivePopcountPrefix(b)) << "w=" << w;
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), std::int64_t(w) * 9);
    // The ragged tail column must count only real pixels, never padding.
    for (std::size_t i = 1; i < p.size(); ++i)
      EXPECT_LE(p[i] - p[i - 1], std::int64_t(64) * 9) << "w=" << w;
  }
}

TEST(BitmapPopcountPrefix, RandomPlanesMatchNaiveReference) {
  std::mt19937 rng(2718);
  for (int trial = 0; trial < 50; ++trial) {
    const int w = kWidths[std::size_t(trial) % std::size(kWidths)];
    const int h = kHeights[std::size_t(trial) % std::size(kHeights)];
    const double density = (trial % 5) * 0.25;  // 0, sparse ... full
    const Bitmap b = randomBitmap(w, h, density, rng);
    const auto p = b.wordColumnPopcountPrefix();
    EXPECT_EQ(p, naivePopcountPrefix(b))
        << "trial=" << trial << " w=" << w << " h=" << h;
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.back(), std::int64_t(b.count()));
    // Prefix sums are monotone.
    for (std::size_t i = 1; i < p.size(); ++i) EXPECT_GE(p[i], p[i - 1]);
  }
}

TEST(BitmapProperty, RowRunsMatchByteScan) {
  std::mt19937 rng(1618);
  for (int w : kWidths) {
    const Bitmap b = randomBitmap(w, 16, 0.5, rng);
    const ByteRaster ref(b);
    std::vector<std::pair<int, int>> runs;
    for (int y = 0; y < 16; ++y) {
      rowRuns(b, y, runs);
      std::vector<std::pair<int, int>> want;
      for (int x = 0; x < w;) {
        if (!ref.get(x, y)) {
          ++x;
          continue;
        }
        int x1 = x;
        while (x1 < w && ref.get(x1, y)) ++x1;
        want.emplace_back(x, x1);
        x = x1;
      }
      EXPECT_EQ(runs, want) << "w=" << w << " y=" << y;
    }
  }
}

}  // namespace
}  // namespace sadp
