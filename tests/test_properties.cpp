// Property-based suites: invariants that must hold across randomized and
// parameterized inputs (TEST_P sweeps).
#include <gtest/gtest.h>

#include <random>

#include "patterning/flipping.hpp"
#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "sadp/decompose.hpp"

namespace sadp {
namespace {

// ---------------------------------------------------------------------------
// Property 1: the classifier is symmetric up to the CS/SC permutation.
namespace {
/// Random thin wire fragment inside a 16x16 track window.
Fragment randomWire(std::mt19937& rng, NetId net) {
  std::uniform_int_distribution<Track> pos(0, 12);
  std::uniform_int_distribution<Track> len(1, 6);
  std::uniform_int_distribution<int> horiz(0, 1);
  const Track x = pos(rng), y = pos(rng), l = len(rng);
  if (horiz(rng)) return Fragment{x, y, Track(x + l), Track(y + 1), net};
  return Fragment{x, y, Track(x + 1), Track(y + l), net};
}
}  // namespace

TEST(Property, ClassifySymmetry) {
  std::mt19937 rng(101);
  int dependentSeen = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    const Fragment a = randomWire(rng, 1);
    const Fragment b = randomWire(rng, 2);
    const Classification ab = classify(a, b);
    const Classification ba = classify(b, a);
    ASSERT_EQ(ab.type, ba.type);
    ASSERT_EQ(ab.overlay[0], ba.overlay[0]);
    ASSERT_EQ(ab.overlay[3], ba.overlay[3]);
    ASSERT_EQ(ab.overlay[1], ba.overlay[2]);
    ASSERT_EQ(ab.overlay[2], ba.overlay[1]);
    ASSERT_EQ(ab.cutRisk[1], ba.cutRisk[2]);
    if (!ab.independent()) ++dependentSeen;
  }
  EXPECT_GT(dependentSeen, 50);  // the sweep actually exercises scenarios
}

// Property 2: classification is translation-invariant.
TEST(Property, ClassifyTranslationInvariance) {
  std::mt19937 rng(102);
  std::uniform_int_distribution<Track> shift(-40, 40);
  for (int iter = 0; iter < 2000; ++iter) {
    Fragment a = randomWire(rng, 1);
    Fragment b = randomWire(rng, 2);
    const Classification base = classify(a, b);
    const Track dx = shift(rng), dy = shift(rng);
    for (Fragment* f : {&a, &b}) {
      f->xlo += dx;
      f->xhi += dx;
      f->ylo += dy;
      f->yhi += dy;
    }
    const Classification moved = classify(a, b);
    ASSERT_EQ(base.type, moved.type);
    ASSERT_EQ(base.overlay, moved.overlay);
  }
}

// Property 3: decomposition of any colored pair never eats metal and the
// masks partition the window (metal, spacer, cut are disjoint and cover).
TEST(Property, MaskPartition) {
  std::mt19937 rng(103);
  std::uniform_int_distribution<Track> d(0, 6);
  std::uniform_int_distribution<int> colorD(0, 1);
  const DesignRules rules;
  for (int iter = 0; iter < 120; ++iter) {
    std::vector<ColoredFragment> frags;
    for (int i = 0; i < 3; ++i) {
      const Track x = d(rng), y = Track(d(rng) * 2);
      frags.push_back({Fragment{x, y, Track(x + 2 + d(rng)), y + 1,
                                NetId(i + 1)},
                       colorD(rng) ? Color::Second : Color::Core});
    }
    const LayerDecomposition dec = decomposeLayer(frags, rules);
    for (int y = 0; y < dec.target.height(); ++y) {
      for (int x = 0; x < dec.target.width(); ++x) {
        const int t = dec.target.get(x, y);
        const int s = dec.spacer.get(x, y);
        const int c = dec.cut.get(x, y);
        ASSERT_EQ(t + s + c, 1)
            << "pixel (" << x << "," << y << ") iter " << iter;
      }
    }
  }
}

// Property 4: the flipping DP never violates parity-hard constraints and
// never increases total cost, for random graphs with hard chains.
TEST(Property, FlipSafetyRandomGraphs) {
  std::mt19937 rng(104);
  std::uniform_int_distribution<int> vtx(0, 11);
  std::uniform_int_distribution<int> cost(0, 5);
  std::uniform_int_distribution<int> kind(0, 5);
  for (int iter = 0; iter < 80; ++iter) {
    OverlayConstraintGraph g;
    for (int e = 0; e < 18; ++e) {
      const int a = vtx(rng), b = vtx(rng);
      if (a == b) continue;
      Classification c;
      switch (kind(rng)) {
        case 0:
          c.type = ScenarioType::T1a;
          c.overlay = {kHardCost, 0, 0, kHardCost};
          break;
        case 1:
          c.type = ScenarioType::T1b;
          c.overlay = {0, kHardCost, kHardCost, 0};
          break;
        default:
          c.type = ScenarioType::T3a;
          c.overlay = {cost(rng), cost(rng), cost(rng), cost(rng)};
          break;
      }
      g.addScenario(a, b, c);  // contradictions allowed; flagged internally
    }
    for (int v = 0; v < 12; ++v) {
      if (g.findVertex(v) >= 0) g.pseudoColor(v);
    }
    const std::int64_t before = g.totalOverlayUnits();
    colorFlip(g);
    const std::int64_t after = g.totalOverlayUnits();
    EXPECT_LE(after, before) << "iter " << iter;
    if (!g.hasHardViolation()) {
      for (const OcgEdge& e : g.edges()) {
        if (!e.alive || !e.cls.hard()) continue;
        const Color cu = g.colorOf(g.netOf(e.u));
        const Color cv = g.colorOf(g.netOf(e.v));
        // Parity-expressible hard edges must be satisfied.
        const bool parityEdge =
            (e.cls.overlay[0] >= kHardCost &&
             e.cls.overlay[3] >= kHardCost) ||
            (e.cls.overlay[1] >= kHardCost && e.cls.overlay[2] >= kHardCost);
        if (parityEdge && cu != Color::Unassigned &&
            cv != Color::Unassigned) {
          EXPECT_LT(e.cls.overlay[assignmentIndex(cu, cv)], kHardCost)
              << "iter " << iter;
        }
      }
    }
  }
}

// Property 5 (parameterized): the router's grid occupancy matches its path
// bookkeeping at several benchmark scales.
class RouterScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(RouterScaleSweep, OccupancyConsistency) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(GetParam()));
  RoutingGrid grid = inst.grid;
  OverlayAwareRouter router(grid, inst.netlist);
  const RoutingStats s = router.run();
  EXPECT_EQ(s.totalNets, int(inst.netlist.size()));

  // Every routed path node is owned by its net; wirelength bookkeeping
  // matches the stored paths.
  std::int64_t wl = 0;
  int vias = 0;
  int routed = 0;
  for (const Net& n : inst.netlist.nets) {
    const NetRouteState& st = router.netStates()[n.id];
    if (!st.routed) continue;
    ++routed;
    for (const GridNode& node : st.path) {
      EXPECT_EQ(grid.owner(node), n.id);
    }
    for (std::size_t i = 1; i < st.path.size(); ++i) {
      if (st.path[i].layer != st.path[i - 1].layer) {
        ++vias;
      } else {
        ++wl;
      }
    }
  }
  EXPECT_EQ(routed, s.routedNets);
  EXPECT_EQ(wl, s.wirelength);
  EXPECT_EQ(vias, s.vias);
}

INSTANTIATE_TEST_SUITE_P(Scales, RouterScaleSweep,
                         ::testing::Values(0.02, 0.04, 0.08));

// Property 6 (parameterized): every paper benchmark spec generates a valid
// instance whose pins are routable endpoints.
class BenchmarkSweep : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkSweep, SpecGeneratesValidInstance) {
  const auto specs = paperBenchmarks();
  const BenchmarkSpec spec = specs[GetParam()].scaled(0.03);
  const BenchmarkInstance inst = makeBenchmark(spec);
  EXPECT_GT(inst.netlist.size(), 0u);
  EXPECT_LE(int(inst.netlist.size()), spec.netCount);
  for (const Net& n : inst.netlist.nets) {
    EXPECT_GE(int(n.source.candidates.size()), 1);
    if (spec.pinCandidates > 1) {
      EXPECT_LE(int(n.source.candidates.size()), spec.pinCandidates);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaperCircuits, BenchmarkSweep,
                         ::testing::Range(0, 10));

// Property 7: decomposing the same fragments twice is bit-identical.
TEST(Property, DecompositionDeterminism) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.04));
  RoutingGrid grid = inst.grid;
  OverlayAwareRouter router(grid, inst.netlist);
  router.run();
  const LayerDecomposition a = router.decompose(0);
  const LayerDecomposition b = router.decompose(0);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.coreMask, b.coreMask);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(a.report.sideOverlayNm, b.report.sideOverlayNm);
}

}  // namespace
}  // namespace sadp
