// Tests for the netlist model, text I/O, and the benchmark generator.
#include "netlist/benchmark.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sadp {
namespace {

TEST(Netlist, AddAssignsIds) {
  Netlist nl;
  nl.add("a", Pin{{{0, 0, 0}}}, Pin{{{5, 5, 0}}});
  nl.add("b", Pin{{{1, 1, 0}}}, Pin{{{6, 6, 0}}});
  EXPECT_EQ(nl.nets[0].id, 0);
  EXPECT_EQ(nl.nets[1].id, 1);
  EXPECT_TRUE(nl.nets[0].source.fixed());
}

TEST(Netlist, AddRejectsEmptyPins) {
  Netlist nl;
  EXPECT_THROW(nl.add("x", Pin{}, Pin{{{0, 0, 0}}}), std::invalid_argument);
}

TEST(Netlist, RoundTripIo) {
  Netlist nl;
  nl.add("n0", Pin{{{0, 0, 0}, {1, 0, 0}}}, Pin{{{5, 5, 2}}});
  nl.add("n1", Pin{{{3, 4, 1}}}, Pin{{{7, 8, 0}, {7, 9, 0}, {8, 8, 0}}});
  std::stringstream ss;
  writeNetlist(ss, nl);
  const Netlist back = readNetlist(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.nets[0].name, "n0");
  EXPECT_EQ(back.nets[0].source.candidates.size(), 2u);
  EXPECT_EQ(back.nets[0].source.candidates[1], (GridNode{1, 0, 0}));
  EXPECT_EQ(back.nets[1].target.candidates.size(), 3u);
  EXPECT_EQ(back.nets[1].source.candidates[0], (GridNode{3, 4, 1}));
}

TEST(Netlist, ReadRejectsGarbage) {
  std::stringstream ss("not-a-netlist v9 1");
  EXPECT_THROW(readNetlist(ss), std::runtime_error);
  std::stringstream ss2("sadp-netlist v1 2\nn0 0,0,0 1,1,0\n");
  EXPECT_THROW(readNetlist(ss2), std::runtime_error);  // truncated
}

TEST(Benchmark, PaperSuiteShape) {
  const auto specs = paperBenchmarks();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs[0].name, "Test1");
  EXPECT_EQ(specs[0].netCount, 1500);
  EXPECT_EQ(specs[0].width, 170);   // 6.8 um at 40 nm pitch
  EXPECT_EQ(specs[0].pinCandidates, 1);
  EXPECT_EQ(specs[4].netCount, 28000);
  EXPECT_EQ(specs[4].width, 900);   // 36 um
  EXPECT_EQ(specs[5].pinCandidates, 3);  // Test6: multi-candidate
  EXPECT_EQ(specs[9].name, "Test10");
  EXPECT_NO_THROW(paperBenchmark("Test3"));
  EXPECT_THROW(paperBenchmark("Test11"), std::invalid_argument);
}

TEST(Benchmark, GenerationIsDeterministic) {
  const BenchmarkSpec spec = paperBenchmark("Test1").scaled(0.1);
  const BenchmarkInstance a = makeBenchmark(spec);
  const BenchmarkInstance b = makeBenchmark(spec);
  ASSERT_EQ(a.netlist.size(), b.netlist.size());
  for (std::size_t i = 0; i < a.netlist.size(); ++i) {
    EXPECT_EQ(a.netlist.nets[i].source.candidates,
              b.netlist.nets[i].source.candidates);
    EXPECT_EQ(a.netlist.nets[i].target.candidates,
              b.netlist.nets[i].target.candidates);
  }
}

TEST(Benchmark, PinsAreDistinctAndFree) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.2));
  std::set<std::tuple<Track, Track, int>> seen;
  for (const Net& n : inst.netlist.nets) {
    for (const Pin* p : {&n.source, &n.target}) {
      for (const GridNode& c : p->candidates) {
        EXPECT_TRUE(inst.grid.inBounds(c));
        EXPECT_FALSE(inst.grid.isBlocked(c));
        EXPECT_TRUE(seen.insert({c.x, c.y, c.layer}).second)
            << "duplicate pin node";
      }
    }
  }
}

TEST(Benchmark, MultiCandidateSpecsProduceCandidates) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test6").scaled(0.15));
  std::size_t multi = 0;
  for (const Net& n : inst.netlist.nets) {
    if (n.source.candidates.size() > 1) ++multi;
  }
  // The generator tries for 3 candidates; most pins should get extras.
  EXPECT_GT(multi, inst.netlist.size() / 2);
}

TEST(Benchmark, ScalingKeepsDensity) {
  const BenchmarkSpec base = paperBenchmark("Test2");
  const BenchmarkSpec s = base.scaled(0.25);
  const double baseDensity =
      double(base.netCount) / (double(base.width) * base.height);
  const double sDensity = double(s.netCount) / (double(s.width) * s.height);
  EXPECT_NEAR(sDensity / baseDensity, 1.0, 0.15);
  EXPECT_THROW(base.scaled(0.0), std::invalid_argument);
  EXPECT_THROW(base.scaled(1.5), std::invalid_argument);
}

TEST(Benchmark, BlockagesPainted) {
  const BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.2));
  std::size_t blocked = 0;
  for (Track y = 0; y < inst.grid.height(); ++y) {
    for (Track x = 0; x < inst.grid.width(); ++x) {
      if (inst.grid.isBlocked({x, y, 0})) ++blocked;
    }
  }
  EXPECT_GT(blocked, 0u);
}

}  // namespace
}  // namespace sadp
