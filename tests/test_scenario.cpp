// Tests for the potential-overlay-scenario taxonomy (Theorems 1-3).
#include "ocg/scenario.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

// Convenience builders: horizontal wire on row `y` spanning [x0, x1);
// vertical wire on column `x` spanning [y0, y1).
Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}
Fragment vw(NetId net, Track x, Track y0, Track y1) {
  return Fragment{x, y0, x + 1, y1, net};
}

TEST(TrackGap, Basics) {
  EXPECT_EQ(trackGap(0, 5, 5, 8), 1);   // adjacent tracks
  EXPECT_EQ(trackGap(0, 5, 6, 8), 2);
  EXPECT_EQ(trackGap(6, 8, 0, 5), 2);   // symmetric
  EXPECT_EQ(trackGap(0, 5, 3, 8), 0);   // overlapping
  EXPECT_EQ(trackGap(0, 5, 4, 8), 0);
}

TEST(Independence, Theorem1Boundaries) {
  // One axis zero: dependent up to gap 2, independent from 3.
  EXPECT_FALSE(independentGaps(0, 1));
  EXPECT_FALSE(independentGaps(0, 2));
  EXPECT_TRUE(independentGaps(0, 3));
  EXPECT_FALSE(independentGaps(2, 0));
  EXPECT_TRUE(independentGaps(3, 0));
  // Both positive: dependent exactly for (1,1), (1,2), (2,1).
  EXPECT_FALSE(independentGaps(1, 1));
  EXPECT_FALSE(independentGaps(1, 2));
  EXPECT_FALSE(independentGaps(2, 1));
  EXPECT_TRUE(independentGaps(2, 2));
  // (1,3): Euclidean distance sqrt(20^2 + 100^2) = 102 nm > d_indep.
  EXPECT_TRUE(independentGaps(1, 3));
  EXPECT_TRUE(independentGaps(3, 1));
}

TEST(Independence, OneByThreeDiagonalIsIndependent) {
  const Fragment a = hw(1, 0, 10, 0);
  const Fragment c = hw(2, 10, 20, 3);  // gaps (1, 3)
  EXPECT_TRUE(classify(a, c).independent());
}

TEST(Classify, SameNetIsIndependent) {
  const Fragment a = hw(1, 0, 10, 0);
  const Fragment b = hw(1, 0, 10, 1);
  EXPECT_TRUE(classify(a, b).independent());
}

TEST(Classify, Type1a_SideToSideAdjacent) {
  const Fragment a = hw(1, 0, 10, 0);
  const Fragment b = hw(2, 0, 10, 1);
  const Classification c = classify(a, b);
  EXPECT_EQ(c.type, ScenarioType::T1a);
  EXPECT_TRUE(c.hard());
  // CC and SS forbidden; CS and SC free.
  EXPECT_GE(c.overlay[assignmentIndex(Color::Core, Color::Core)], kHardCost);
  EXPECT_GE(c.overlay[assignmentIndex(Color::Second, Color::Second)],
            kHardCost);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Second)], 0);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Second, Color::Core)], 0);
}

TEST(Classify, Type1a_SingleTrackFacingSpan) {
  // Facing span of one track: CC merges at the corner (two w_line-long
  // nonhard sections); SS stays forbidden (no room for assists), but that
  // single-assignment ban is not a parity constraint.
  const Fragment a = hw(1, 0, 5, 0);
  const Fragment b = hw(2, 4, 10, 1);  // x overlap = 1 track
  const Classification c = classify(a, b);
  EXPECT_EQ(c.type, ScenarioType::T1a);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Core)], 2);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Second)], 0);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Second, Color::Core)], 0);
  EXPECT_GE(c.overlay[assignmentIndex(Color::Second, Color::Second)],
            kHardCost);
}

TEST(Classify, Type1a_VerticalPair) {
  const Fragment a = vw(1, 0, 0, 10);
  const Fragment b = vw(2, 1, 0, 10);
  EXPECT_EQ(classify(a, b).type, ScenarioType::T1a);
}

TEST(Classify, Type1b_TipToSideAdjacent) {
  // Vertical wire B whose top tip stops one track below horizontal wire A.
  const Fragment a = hw(1, 0, 10, 5);
  const Fragment b = vw(2, 4, 0, 4);  // rows [0,4), tip at row 3; gap=2?
  // trackGap y: [5,6) vs [0,4): 5-4+1 = 2 -> that is T2b. Use rows [0,5).
  const Fragment b1 = vw(2, 4, 0, 4);
  (void)b1;
  const Fragment bAdj = vw(2, 4, 0, 4 + 0);  // keep clarity below
  (void)bAdj;
  const Fragment tip1 = vw(2, 4, 0, 4);      // gap 2
  EXPECT_EQ(classify(a, tip1).type, ScenarioType::T2b);
  const Fragment tip2 = vw(2, 4, 0, 5);      // gap 1: [5,6) vs [0,5) -> 1
  const Classification c = classify(a, tip2);
  EXPECT_EQ(c.type, ScenarioType::T1b);
  EXPECT_TRUE(c.hard());
  // Same colors fine, different forbidden.
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Core)], 0);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Second, Color::Second)], 0);
  EXPECT_GE(c.overlay[assignmentIndex(Color::Core, Color::Second)], kHardCost);
  EXPECT_GE(c.overlay[assignmentIndex(Color::Second, Color::Core)], kHardCost);
}

TEST(Classify, Type2a_SideToSideAtTwo) {
  const Fragment a = hw(1, 0, 10, 0);
  const Fragment b = hw(2, 0, 10, 2);
  const Classification c = classify(a, b);
  EXPECT_EQ(c.type, ScenarioType::T2a);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Core)], 0);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Second, Color::Second)], 0);
  // Mixed colors at span >= 2 produce a contiguous merge-cut section
  // longer than w_line: escalated to a hard same-color constraint.
  EXPECT_TRUE(c.hard());
  EXPECT_GE(c.overlay[assignmentIndex(Color::Core, Color::Second)],
            kHardCost);
  EXPECT_GE(c.overlay[assignmentIndex(Color::Second, Color::Core)],
            kHardCost);
}

TEST(Classify, Type2a_SingleTrackSpanStaysNonhard) {
  const Fragment a = hw(1, 0, 5, 0);
  const Fragment b = hw(2, 4, 10, 2);  // x overlap = 1 track
  const Classification c = classify(a, b);
  EXPECT_EQ(c.type, ScenarioType::T2a);
  EXPECT_FALSE(c.hard());
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Second)], 2);
  EXPECT_TRUE(c.cutRisk[assignmentIndex(Color::Core, Color::Second)]);
}

TEST(Classify, Type2b_TipToSideAtTwo_RolePermutation) {
  // A's side faces B's tip: canonical order.
  const Fragment a = hw(1, 0, 10, 5);
  const Fragment b = vw(2, 4, 0, 4);
  const Classification c = classify(a, b);
  EXPECT_EQ(c.type, ScenarioType::T2b);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Core)], 1);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Second, Color::Second)], 1);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Second)], 2);
  // CS (side pattern core, tip pattern second) carries the cut risk.
  EXPECT_TRUE(c.cutRisk[assignmentIndex(Color::Core, Color::Second)]);
  EXPECT_FALSE(c.cutRisk[assignmentIndex(Color::Second, Color::Core)]);

  // Swapped argument order must permute CS/SC consistently.
  const Classification cSwap = classify(b, a);
  EXPECT_EQ(cSwap.type, ScenarioType::T2b);
  EXPECT_EQ(cSwap.overlay[assignmentIndex(Color::Second, Color::Core)], 2);
  EXPECT_TRUE(cSwap.cutRisk[assignmentIndex(Color::Second, Color::Core)]);
  EXPECT_FALSE(cSwap.cutRisk[assignmentIndex(Color::Core, Color::Second)]);
}

TEST(Classify, Type2c2d_TipToTipTrivial) {
  const Fragment a = hw(1, 0, 5, 0);
  // Tracks ..4 and 5..: nearest-track delta 1 => metal gap = 20 nm (T2c).
  const Classification c1 = classify(a, hw(2, 5, 10, 0));
  EXPECT_EQ(c1.type, ScenarioType::T2c);
  EXPECT_FALSE(c1.material());
  // Tracks ..4 and 6..: delta 2 => 60 nm gap (T2d).
  const Classification c2 = classify(a, hw(2, 6, 10, 0));
  EXPECT_EQ(c2.type, ScenarioType::T2d);
  EXPECT_FALSE(c2.material());
  // Delta 3 is independent.
  EXPECT_TRUE(classify(a, hw(2, 7, 10, 0)).independent());
}

TEST(Classify, Type3a_DiagonalParallel) {
  const Fragment a = hw(1, 0, 5, 0);
  const Fragment b = hw(2, 6, 10, 1);  // x gap 2? [0,5),[6,10) -> 2. Use 5.
  const Classification cWrong = classify(a, b);
  EXPECT_EQ(cWrong.type, ScenarioType::T3d);  // along 2, across 1
  const Classification c = classify(a, Fragment{5, 1, 10, 2, 2});
  EXPECT_EQ(c.type, ScenarioType::T3a);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Core)], 1);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Second)], 0);
}

TEST(Classify, Type3b_DiagonalOrthogonal) {
  const Fragment a = hw(1, 0, 5, 0);
  const Fragment b = vw(2, 5, 1, 6);  // x gap 1, y gap 1
  const Classification c = classify(a, b);
  EXPECT_EQ(c.type, ScenarioType::T3b);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Second, Color::Second)], 0);
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Core)], 1);
}

TEST(Classify, Type3c3e) {
  const Fragment a = hw(1, 0, 5, 0);
  // Parallel, along gap 1, across gap 2 -> T3c.
  const Classification c3c = classify(a, Fragment{5, 2, 10, 3, 2});
  EXPECT_EQ(c3c.type, ScenarioType::T3c);
  // Orthogonal, gaps (1,2) -> T3e (never material).
  const Classification c3e = classify(a, vw(2, 5, 2, 8));
  EXPECT_EQ(c3e.type, ScenarioType::T3e);
  EXPECT_FALSE(c3e.material());
}

TEST(Classify, Type3cRolePermutation) {
  const Fragment a = hw(1, 0, 5, 0);
  const Fragment b{5, 2, 10, 3, 2};
  const Classification ab = classify(a, b);
  const Classification ba = classify(b, a);
  EXPECT_EQ(ab.type, ba.type);
  EXPECT_EQ(ab.overlay[assignmentIndex(Color::Core, Color::Second)],
            ba.overlay[assignmentIndex(Color::Second, Color::Core)]);
  EXPECT_EQ(ab.overlay[assignmentIndex(Color::Second, Color::Core)],
            ba.overlay[assignmentIndex(Color::Core, Color::Second)]);
}

TEST(Classify, StubPairsTipToTip) {
  const Fragment a{0, 0, 1, 1, 1};
  const Fragment b{0, 2, 1, 3, 2};  // stacked, gap 2
  const Classification c = classify(a, b);
  EXPECT_EQ(c.type, ScenarioType::T2d);
  EXPECT_FALSE(c.material());
}

TEST(Classify, StubAdoptsWireOrientation) {
  const Fragment wire = hw(1, 0, 10, 0);
  const Fragment stub{4, 1, 5, 2, 2};  // directly above: side-by-side @1
  const Classification c = classify(wire, stub);
  EXPECT_EQ(c.type, ScenarioType::T1a);
  // Span-1 rule: only SS is forbidden.
  EXPECT_EQ(c.overlay[assignmentIndex(Color::Core, Color::Core)], 2);
  EXPECT_GE(c.overlay[assignmentIndex(Color::Second, Color::Second)],
            kHardCost);
}

// Completeness sweep (Theorem 2): every dependent gap tuple and direction
// combination must classify to a scenario; every independent one must not.
TEST(Classify, CompletenessSweep) {
  for (Track gx = 0; gx <= 4; ++gx) {
    for (Track gy = 0; gy <= 4; ++gy) {
      if (gx == 0 && gy == 0) continue;
      for (int dir = 0; dir < 2; ++dir) {
        // Build a pair of 4-track wires with exactly the target gaps.
        const Fragment a = hw(1, 0, 4, 0);
        Fragment b;
        if (dir == 0) {
          b = hw(2, 0, 4, 0);
        } else {
          b = vw(2, 0, 0, 4);
        }
        // Shift b to obtain the desired gaps.
        const Track dx = (gx == 0) ? 0 : Track(4 + gx - 1);
        const Track dy = (gy == 0) ? 0 : Track(1 + gy - 1);
        b.xlo += dx;
        b.xhi += dx;
        b.ylo += dy;
        b.yhi += dy;
        const Track realGx = trackGap(a.xlo, a.xhi, b.xlo, b.xhi);
        const Track realGy = trackGap(a.ylo, a.yhi, b.ylo, b.yhi);
        if (realGx != gx || realGy != gy) continue;  // shape couldn't fit
        const Classification c = classify(a, b);
        if (independentGaps(gx, gy)) {
          EXPECT_TRUE(c.independent())
              << "(" << gx << "," << gy << "," << dir << ")";
        } else {
          EXPECT_FALSE(c.independent())
              << "(" << gx << "," << gy << "," << dir << ")";
        }
      }
    }
  }
}

// Table II regeneration sanity: the trivial scenarios and hard scenarios
// are exactly the ones the paper states.
TEST(ScenarioRule, TableIIStructure) {
  using S = ScenarioType;
  EXPECT_TRUE(scenarioRule(S::T2c).trivial());
  EXPECT_TRUE(scenarioRule(S::T2d).trivial());
  EXPECT_TRUE(scenarioRule(S::T3e).trivial());
  EXPECT_TRUE(scenarioRule(S::T1a).isHard());
  EXPECT_TRUE(scenarioRule(S::T1b).isHard());
  for (S s : {S::T2a, S::T2b, S::T3a, S::T3b, S::T3c, S::T3d}) {
    EXPECT_FALSE(scenarioRule(s).isHard()) << toString(s);
  }
  // 2-b is the only scenario with unavoidable side overlay.
  EXPECT_EQ(scenarioRule(S::T2b).minOverlay(), 1);
  for (S s : {S::T1a, S::T1b, S::T2a, S::T3a, S::T3b, S::T3c, S::T3d}) {
    EXPECT_EQ(scenarioRule(s).minOverlay(), 0) << toString(s);
  }
}

}  // namespace
}  // namespace sadp
