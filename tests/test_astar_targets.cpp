// Tests for the A* engine's many-target (tree) mode used by the Steiner
// extension, plus target-stamp epoch isolation.
#include <gtest/gtest.h>

#include "route/astar.hpp"

namespace sadp {
namespace {

TEST(AStarTargets, RoutesToNearestTreeNode) {
  RoutingGrid grid(30, 30, 1, DesignRules{});
  AStarEngine eng(grid);
  // A long "tree": the whole row 20.
  std::vector<GridNode> tree;
  for (Track x = 0; x < 30; ++x) tree.push_back({x, 20, 0});
  const GridNode s{7, 2, 0};
  auto res = eng.route(1, {&s, 1}, tree, AStarParams{});
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->path.back().y, 20);
  // Dijkstra fallback still finds the shortest connection: straight up.
  EXPECT_EQ(res->path.back().x, 7);
  EXPECT_EQ(res->path.size(), 19u);
}

TEST(AStarTargets, TargetStampsDoNotLeakAcrossQueries) {
  RoutingGrid grid(20, 20, 1, DesignRules{});
  AStarEngine eng(grid);
  // First query targets the whole row 10.
  std::vector<GridNode> row;
  for (Track x = 0; x < 20; ++x) row.push_back({x, 10, 0});
  const GridNode s1{0, 0, 0};
  ASSERT_TRUE(eng.route(1, {&s1, 1}, row, AStarParams{}).has_value());
  // Second query targets a single far node; stale row-10 stamps must not
  // terminate the search early.
  const GridNode s2{0, 0, 0}, t2{19, 19, 0};
  auto res = eng.route(1, {&s2, 1}, {&t2, 1}, AStarParams{});
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->path.back(), t2);
}

TEST(AStarTargets, SourceOnTreeIsImmediateHit) {
  RoutingGrid grid(10, 10, 1, DesignRules{});
  AStarEngine eng(grid);
  const GridNode n{4, 4, 0};
  auto res = eng.route(1, {&n, 1}, {&n, 1}, AStarParams{});
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->path.size(), 1u);
  EXPECT_DOUBLE_EQ(res->cost, 0.0);
}

TEST(AStarTargets, ManyTargetsStillRespectOccupancy) {
  RoutingGrid grid(20, 20, 1, DesignRules{});
  // Fence off the bottom half except one door.
  for (Track x = 0; x < 20; ++x) {
    if (x != 15) grid.block({x, 10, 0});
  }
  std::vector<GridNode> tree;
  for (Track x = 0; x < 20; ++x) tree.push_back({x, 18, 0});
  AStarEngine eng(grid);
  const GridNode s{2, 2, 0};
  auto res = eng.route(1, {&s, 1}, tree, AStarParams{});
  ASSERT_TRUE(res.has_value());
  bool throughDoor = false;
  for (const GridNode& n : res->path) {
    if (n.y == 10) {
      EXPECT_EQ(n.x, 15);
      throughDoor = true;
    }
  }
  EXPECT_TRUE(throughDoor);
}

}  // namespace
}  // namespace sadp
