// Golden end-to-end regression: route one small fixed benchmark, then
// compare the full eval CSV row (wall time pinned to 0) and the per-layer
// mask-plane fingerprints against the committed fixture in tests/golden/.
// The same document must come out at every thread count and tile width --
// this is the whole-pipeline version of the determinism contract
// (DESIGN.md §5.6/§5.7). Regenerate fixtures with SADP_UPDATE_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "eval/eval.hpp"
#include "netlist/benchmark.hpp"
#include "ocg/scenario.hpp"
#include "route/router.hpp"
#include "sadp/bitmap.hpp"
#include "sadp/decompose.hpp"
#include "util/parallel_for.hpp"

#ifndef SADP_GOLDEN_DIR
#error "SADP_GOLDEN_DIR must point at the tests/golden fixture directory"
#endif

namespace sadp {
namespace {

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

/// Routes the fixture instance and renders its golden document: the eval
/// CSV (cpuSeconds is the only nondeterministic column, so it is pinned to
/// 0) followed by one fingerprint line per layer covering all six mask
/// planes of the decomposition.
std::string runPipeline(int threads, int tileWords,
                        BandSchedule schedule = BandSchedule::Static,
                        OpenList openList = OpenList::Auto) {
  setParallelThreads(threads);
  const BenchmarkSpec spec = paperBenchmark("Test1").scaled(0.06);
  BenchmarkInstance inst = makeBenchmark(spec);
  RouterOptions ropts;
  ropts.astar.openList = openList;
  OverlayAwareRouter router(inst.grid, inst.netlist, ropts);
  const RoutingStats stats = router.run();
  DecomposeOptions opts;
  opts.tileWords = tileWords;
  opts.schedule = schedule;
  const OverlayReport phys = router.physicalReport(opts);

  ExperimentRow row;
  row.circuit = spec.name;
  row.router = "ours";
  row.nets = int(inst.netlist.size());
  row.routability = stats.routability();
  row.overlayUnits = router.model().totalOverlayUnits() % kHardCost;
  row.overlayNm = phys.sideOverlayNm;
  row.conflicts = phys.cutConflicts();
  row.hardOverlays = phys.hardOverlays;
  row.cpuSeconds = 0;

  std::ostringstream doc;
  writeCsv(doc, {row});
  for (int layer = 0; layer < inst.grid.layers(); ++layer) {
    const LayerDecomposition d = router.decompose(layer, opts);
    doc << "layer " << layer << " target=" << hex16(fingerprint(d.target))
        << " core=" << hex16(fingerprint(d.coreMask))
        << " spacer=" << hex16(fingerprint(d.spacer))
        << " cut=" << hex16(fingerprint(d.cut))
        << " assists=" << hex16(fingerprint(d.assists))
        << " bridges=" << hex16(fingerprint(d.bridges)) << "\n";
  }
  setParallelThreads(0);
  return doc.str();
}

TEST(GoldenE2E, MatchesCommittedFixtureAcrossThreadsAndTiling) {
  const std::string path =
      std::string(SADP_GOLDEN_DIR) + "/test1_s006.golden";
  const std::string fresh = runPipeline(1, -1);
  if (std::getenv("SADP_UPDATE_GOLDEN")) {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f) << "cannot write " << path;
    f << fresh;
    ASSERT_TRUE(bool(f)) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f) << "missing fixture " << path
                 << " -- regenerate with SADP_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string golden = buf.str();
  EXPECT_EQ(fresh, golden)
      << "untiled single-thread pipeline diverged from the fixture";
  // The document must be invariant to the worker count and the band width:
  // tiling and threading change how the work is split, never the result.
  // ... nor to the band schedule: dynamic work stealing must emit the
  // exact document the fixture froze before the scheduler existed.
  const struct {
    int threads, tileWords;
    BandSchedule schedule;
  } configs[] = {{1, 2, BandSchedule::Static},
                 {4, -1, BandSchedule::Static},
                 {4, 2, BandSchedule::Static},
                 {1, 2, BandSchedule::Dynamic},
                 {4, -1, BandSchedule::Dynamic},
                 {4, 2, BandSchedule::Dynamic},
                 {4, 0, BandSchedule::Dynamic}};
  for (const auto& c : configs) {
    EXPECT_EQ(runPipeline(c.threads, c.tileWords, c.schedule), golden)
        << "threads=" << c.threads << " tileWords=" << c.tileWords
        << " schedule=" << (c.schedule == BandSchedule::Dynamic ? "dynamic"
                                                                : "static");
  }
}

// The open-list × SIMD dispatch matrix must all land on the committed
// document: the heap is the reference implementation the Dial buckets are
// byte-equivalent to (DESIGN.md §5.9.1), and the scalar bitmap kernels are
// byte-equivalent to the AVX2 ones, so no combination may perturb routes,
// masks or the report.
TEST(GoldenE2E, OpenListAndSimdDispatchMatrixByteIdentical) {
  const std::string path =
      std::string(SADP_GOLDEN_DIR) + "/test1_s006.golden";
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f) << "missing fixture " << path
                 << " -- regenerate with SADP_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string golden = buf.str();
  const struct {
    OpenList openList;
    SimdLevel simd;
    const char* name;
  } configs[] = {{OpenList::Bucket, SimdLevel::Auto, "bucket/auto"},
                 {OpenList::Heap, SimdLevel::Auto, "heap/auto"},
                 {OpenList::Bucket, SimdLevel::Scalar, "bucket/scalar"},
                 {OpenList::Heap, SimdLevel::Scalar, "heap/scalar"}};
  for (const auto& c : configs) {
    setBitmapSimdLevel(c.simd);
    EXPECT_EQ(runPipeline(1, -1, BandSchedule::Static, c.openList), golden)
        << c.name << " diverged from the fixture";
  }
  setBitmapSimdLevel(SimdLevel::Auto);
}

/// The imbalanced fixture the dynamic scheduler exists for: layer-0-style
/// skewed density -- a dense block of short wires crammed into the low-x
/// words plus a few sparse wires stretching the window to ~15 words, so
/// with 2-word bands the leftmost band holds most of the set pixels.
std::vector<ColoredFragment> skewedLayer() {
  std::vector<ColoredFragment> frags;
  NetId net = 1;
  // Dense block: 12 rows of staggered short wires within x < 20.
  for (int y = 0; y < 12; ++y) {
    const Track x0 = Track((y * 3) % 7);
    frags.push_back({Fragment{x0, Track(y), Track(x0 + 5 + y % 4),
                              Track(y + 1), net},
                     (y % 2) ? Color::Second : Color::Core});
    ++net;
    frags.push_back({Fragment{Track(x0 + 8), Track(y), Track(x0 + 13),
                              Track(y + 1), net},
                     (y % 3) ? Color::Core : Color::Second});
    ++net;
  }
  // Sparse tail: three long wires reaching x = 230 (~15 raster words).
  for (int k = 0; k < 3; ++k) {
    frags.push_back({Fragment{Track(30 + 60 * k), Track(2 + 4 * k),
                              Track(230), Track(3 + 4 * k), net},
                     k == 1 ? Color::Second : Color::Core});
    ++net;
  }
  return frags;
}

/// Golden document of one decomposition: the overlay report's fields, the
/// six plane fingerprints, and the cut mask's nm rectangles.
std::string decomposeDoc(int threads, int tileWords, BandSchedule schedule) {
  setParallelThreads(threads);
  const DesignRules rules;
  DecomposeOptions opts;
  opts.tileWords = tileWords;
  opts.schedule = schedule;
  const std::vector<ColoredFragment> frags = skewedLayer();
  const LayerDecomposition d = decomposeLayer(frags, rules, opts);
  std::ostringstream doc;
  doc << "sideOverlayNm=" << d.report.sideOverlayNm
      << " sections=" << d.report.sideOverlaySections
      << " hard=" << d.report.hardOverlays << " tip=" << d.report.tipOverlays
      << " cutW=" << d.report.cutWidthConflicts
      << " cutS=" << d.report.cutSpaceConflicts
      << " spacerOverTarget=" << d.report.spacerOverTargetPx << "\n";
  doc << "target=" << hex16(fingerprint(d.target))
      << " core=" << hex16(fingerprint(d.coreMask))
      << " spacer=" << hex16(fingerprint(d.spacer))
      << " cut=" << hex16(fingerprint(d.cut))
      << " assists=" << hex16(fingerprint(d.assists))
      << " bridges=" << hex16(fingerprint(d.bridges)) << "\n";
  for (const Rect& r : rasterToNmRects(d.cut, d.windowNm))
    doc << "cut " << r.xlo << " " << r.ylo << " " << r.xhi << " " << r.yhi
        << "\n";
  setParallelThreads(0);
  return doc.str();
}

// ---------------------------------------------------------------------
// Congested-design timing fixture: one dense instance routed in three
// modes -- baseline one-shot rip-up, --timing (criticality ordering and
// weights), and --negotiate (PathFinder pre-phase) -- frozen as a single
// golden document. Beyond byte-stability the test holds the two live
// claims of the negotiation mode: it converges to zero overflow, and its
// worst slack is no worse than the one-shot baseline's (measured under
// the SAME estimate-derived period).
BenchmarkSpec congestedSpec() {
  BenchmarkSpec s;
  s.name = "congested";
  s.netCount = 120;
  s.width = 48;
  s.height = 48;
  return s;
}

/// Post-route worst slack of an already-routed design under the given
/// options' estimate-derived period (the external measurement used for
/// modes that do not compute slack themselves).
std::int64_t measuredWorstSlack(const OverlayAwareRouter& router,
                                const Netlist& nl, const TimingOptions& t) {
  std::vector<std::int64_t> delays = estimateNetDelays(nl, t);
  const std::vector<TimingEdge> edges =
      pruneTimingCycles(nl.size(), deriveTimingEdges(nl, t));
  const TimingResult pre = analyzeTiming(nl.size(), edges, delays, t);
  TimingOptions fixed = t;
  fixed.period = pre.analysis.period;
  for (const Net& net : nl.nets) {
    const NetRouteState& st = router.netStates()[std::size_t(net.id)];
    if (st.routed) {
      delays[std::size_t(net.id)] =
          pathDelay(st.wirelength, int(st.vias), fixed);
    }
  }
  return analyzeTiming(nl.size(), edges, delays, fixed).analysis.worstSlack;
}

TEST(GoldenE2E, CongestedTimingFixtureAndSlackClaims) {
  const std::string path =
      std::string(SADP_GOLDEN_DIR) + "/congested_timing.golden";
  struct Mode {
    const char* name;
    bool timing;
    bool negotiate;
  };
  const Mode modes[] = {{"baseline", false, false},
                        {"timing", true, false},
                        {"negotiate", true, true}};
  std::ostringstream doc;
  std::int64_t baselineSlack = 0;
  std::int64_t negotiateSlack = 0;
  for (const Mode& m : modes) {
    BenchmarkInstance inst = makeBenchmark(congestedSpec());
    RouterOptions ro;
    ro.timingDriven = m.timing;
    ro.negotiate = m.negotiate;
    OverlayAwareRouter router(inst.grid, inst.netlist, ro);
    const RoutingStats stats = router.run();
    const OverlayReport phys = router.physicalReport();
    const std::int64_t slack =
        measuredWorstSlack(router, inst.netlist, ro.timing);
    if (!m.timing) baselineSlack = slack;
    if (m.negotiate) {
      negotiateSlack = slack;
      EXPECT_EQ(stats.negotiateOverflow, 0)
          << "negotiation failed to converge on the congested fixture";
      EXPECT_EQ(slack, stats.worstSlack)
          << "router's own post-route slack disagrees with the external "
             "measurement";
    }
    doc << "mode=" << m.name << " routed=" << stats.routedNets
        << " wirelength=" << stats.wirelength << " vias=" << stats.vias
        << " ripups=" << stats.ripUps << " overlayNm=" << phys.sideOverlayNm
        << " conflicts=" << phys.cutConflicts()
        << " hard=" << phys.hardOverlays << " worst_slack=" << slack
        << " negotiate_iters=" << stats.negotiateIters
        << " negotiate_overflow=" << stats.negotiateOverflow << "\n";
    for (int layer = 0; layer < inst.grid.layers(); ++layer) {
      const LayerDecomposition d = router.decompose(layer);
      doc << "mode=" << m.name << " layer=" << layer
          << " target=" << hex16(fingerprint(d.target))
          << " cut=" << hex16(fingerprint(d.cut)) << "\n";
    }
  }
  // The headline trade-off claim (EXPERIMENTS.md): negotiation must not
  // end up timing-worse than the one-shot baseline on this fixture.
  EXPECT_GE(negotiateSlack, baselineSlack);

  const std::string fresh = doc.str();
  if (std::getenv("SADP_UPDATE_GOLDEN")) {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f) << "cannot write " << path;
    f << fresh;
    ASSERT_TRUE(bool(f)) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f) << "missing fixture " << path
                 << " -- regenerate with SADP_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(fresh, buf.str())
      << "congested timing document diverged from the fixture";
}

TEST(GoldenE2E, SkewedDensityFixtureInvariantToSchedule) {
  const std::string path =
      std::string(SADP_GOLDEN_DIR) + "/skewed_layer.golden";
  const std::string fresh = decomposeDoc(1, 2, BandSchedule::Static);
  if (std::getenv("SADP_UPDATE_GOLDEN")) {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f) << "cannot write " << path;
    f << fresh;
    ASSERT_TRUE(bool(f)) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f) << "missing fixture " << path
                 << " -- regenerate with SADP_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string golden = buf.str();
  EXPECT_EQ(fresh, golden)
      << "serial skewed-layer decomposition diverged from the fixture";
  const struct {
    int threads, tileWords;
    BandSchedule schedule;
  } configs[] = {{1, -1, BandSchedule::Static},
                 {4, 2, BandSchedule::Static},
                 {4, 2, BandSchedule::Dynamic},
                 {8, 1, BandSchedule::Dynamic},
                 {4, 0, BandSchedule::Dynamic}};
  for (const auto& c : configs) {
    EXPECT_EQ(decomposeDoc(c.threads, c.tileWords, c.schedule), golden)
        << "threads=" << c.threads << " tileWords=" << c.tileWords
        << " schedule=" << (c.schedule == BandSchedule::Dynamic ? "dynamic"
                                                                : "static");
  }
}

}  // namespace
}  // namespace sadp
