// Golden end-to-end regression: route one small fixed benchmark, then
// compare the full eval CSV row (wall time pinned to 0) and the per-layer
// mask-plane fingerprints against the committed fixture in tests/golden/.
// The same document must come out at every thread count and tile width --
// this is the whole-pipeline version of the determinism contract
// (DESIGN.md §5.6/§5.7). Regenerate fixtures with SADP_UPDATE_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "eval/eval.hpp"
#include "netlist/benchmark.hpp"
#include "ocg/scenario.hpp"
#include "route/router.hpp"
#include "sadp/decompose.hpp"
#include "util/parallel_for.hpp"

#ifndef SADP_GOLDEN_DIR
#error "SADP_GOLDEN_DIR must point at the tests/golden fixture directory"
#endif

namespace sadp {
namespace {

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

/// Routes the fixture instance and renders its golden document: the eval
/// CSV (cpuSeconds is the only nondeterministic column, so it is pinned to
/// 0) followed by one fingerprint line per layer covering all six mask
/// planes of the decomposition.
std::string runPipeline(int threads, int tileWords) {
  setParallelThreads(threads);
  const BenchmarkSpec spec = paperBenchmark("Test1").scaled(0.06);
  BenchmarkInstance inst = makeBenchmark(spec);
  OverlayAwareRouter router(inst.grid, inst.netlist);
  const RoutingStats stats = router.run();
  DecomposeOptions opts;
  opts.tileWords = tileWords;
  const OverlayReport phys = router.physicalReport(opts);

  ExperimentRow row;
  row.circuit = spec.name;
  row.router = "ours";
  row.nets = int(inst.netlist.size());
  row.routability = stats.routability();
  row.overlayUnits = router.model().totalOverlayUnits() % kHardCost;
  row.overlayNm = phys.sideOverlayNm;
  row.conflicts = phys.cutConflicts();
  row.hardOverlays = phys.hardOverlays;
  row.cpuSeconds = 0;

  std::ostringstream doc;
  writeCsv(doc, {row});
  for (int layer = 0; layer < inst.grid.layers(); ++layer) {
    const LayerDecomposition d = router.decompose(layer, opts);
    doc << "layer " << layer << " target=" << hex16(fingerprint(d.target))
        << " core=" << hex16(fingerprint(d.coreMask))
        << " spacer=" << hex16(fingerprint(d.spacer))
        << " cut=" << hex16(fingerprint(d.cut))
        << " assists=" << hex16(fingerprint(d.assists))
        << " bridges=" << hex16(fingerprint(d.bridges)) << "\n";
  }
  setParallelThreads(0);
  return doc.str();
}

TEST(GoldenE2E, MatchesCommittedFixtureAcrossThreadsAndTiling) {
  const std::string path =
      std::string(SADP_GOLDEN_DIR) + "/test1_s006.golden";
  const std::string fresh = runPipeline(1, -1);
  if (std::getenv("SADP_UPDATE_GOLDEN")) {
    std::ofstream f(path, std::ios::binary);
    ASSERT_TRUE(f) << "cannot write " << path;
    f << fresh;
    ASSERT_TRUE(bool(f)) << "short write to " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f) << "missing fixture " << path
                 << " -- regenerate with SADP_UPDATE_GOLDEN=1";
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string golden = buf.str();
  EXPECT_EQ(fresh, golden)
      << "untiled single-thread pipeline diverged from the fixture";
  // The document must be invariant to the worker count and the band width:
  // tiling and threading change how the work is split, never the result.
  const struct {
    int threads, tileWords;
  } configs[] = {{1, 2}, {4, -1}, {4, 2}};
  for (const auto& c : configs) {
    EXPECT_EQ(runPipeline(c.threads, c.tileWords), golden)
        << "threads=" << c.threads << " tileWords=" << c.tileWords;
  }
}

}  // namespace
}  // namespace sadp
