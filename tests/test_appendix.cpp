// Appendix regeneration (Figs. 24-34): for every potential overlay
// scenario and every color assignment, decompose a canonical witness
// layout and check the physical outcome against the scenario rule table.
//
// Two directions are asserted:
//   1. the table's optimal assignment is physically clean (no hard
//      overlay, no cut conflict, no spacer damage);
//   2. assignments the table marks as hard print a hard overlay.
// (The table may be conservative in between -- e.g. type 2-b charges one
// unit where our synthesizer fully protects; DESIGN.md §3 documents it.)
#include <gtest/gtest.h>

#include "sadp/decompose.hpp"

namespace sadp {
namespace {

struct Case {
  ScenarioType type;
  Fragment a, b;
};

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}
Fragment vw(NetId net, Track x, Track y0, Track y1) {
  return Fragment{x, y0, x + 1, y1, net};
}

std::vector<Case> witnesses() {
  return {
      {ScenarioType::T1a, hw(1, 0, 4, 0), hw(2, 0, 4, 1)},
      {ScenarioType::T1b, hw(1, 0, 4, 5), vw(2, 2, 0, 5)},
      {ScenarioType::T2a, hw(1, 0, 4, 0), hw(2, 0, 4, 2)},
      {ScenarioType::T2b, hw(1, 0, 4, 5), vw(2, 2, 0, 4)},
      {ScenarioType::T2c, hw(1, 0, 4, 0), hw(2, 4, 8, 0)},
      {ScenarioType::T2d, hw(1, 0, 4, 0), hw(2, 5, 9, 0)},
      {ScenarioType::T3a, hw(1, 0, 4, 0), hw(2, 4, 8, 1)},
      {ScenarioType::T3b, hw(1, 0, 4, 0), vw(2, 4, 1, 5)},
      {ScenarioType::T3c, hw(1, 0, 4, 0), hw(2, 4, 8, 2)},
      {ScenarioType::T3d, hw(1, 0, 4, 0), hw(2, 5, 9, 1)},
      {ScenarioType::T3e, hw(1, 0, 4, 0), vw(2, 4, 2, 6)},
  };
}

using ScenarioAssignment = std::tuple<int, int>;

class AppendixSweep : public ::testing::TestWithParam<ScenarioAssignment> {};

TEST_P(AppendixSweep, PhysicsMatchesRuleTable) {
  const auto cases = witnesses();
  const Case& c = cases[std::get<0>(GetParam())];
  const int assignment = std::get<1>(GetParam());
  const Color ca = (assignment & 2) ? Color::Second : Color::Core;
  const Color cb = (assignment & 1) ? Color::Second : Color::Core;

  const Classification cls = classify(c.a, c.b);
  ASSERT_EQ(cls.type, c.type) << "witness classification drifted";

  const DesignRules rules;
  std::vector<ColoredFragment> frags{{c.a, ca}, {c.b, cb}};
  const OverlayReport r = decomposeLayer(frags, rules).report;

  const int tableCost = cls.overlay[assignmentIndex(ca, cb)];
  int minCost = kHardCost;
  for (int v : cls.overlay) minCost = std::min(minCost, v);

  if (tableCost == minCost) {
    // Direction 1: optimal assignments print clean.
    EXPECT_EQ(r.hardOverlays, 0)
        << toString(c.type) << " " << toString(ca) << toString(cb);
    EXPECT_EQ(r.cutConflicts(), 0)
        << toString(c.type) << " " << toString(ca) << toString(cb);
    EXPECT_EQ(r.spacerOverTargetPx, 0)
        << toString(c.type) << " " << toString(ca) << toString(cb);
  }
  if (tableCost >= kHardCost) {
    // Direction 2: hard-marked assignments leave physical damage. Mostly a
    // hard overlay or a conflict; in the T1b mixed case our assist
    // trimming softens the damage to a residual side overlay (the table
    // stays paper-faithful and forbids it regardless).
    EXPECT_GT(r.hardOverlays + r.cutConflicts() +
                  int(r.spacerOverTargetPx > 0) + int(r.sideOverlayNm > 0),
              0)
        << toString(c.type) << " " << toString(ca) << toString(cb);
  }
}

std::string sweepName(
    const ::testing::TestParamInfo<ScenarioAssignment>& info) {
  static const char* kTypes[] = {"T1a", "T1b", "T2a", "T2b", "T2c", "T2d",
                                 "T3a", "T3b", "T3c", "T3d", "T3e"};
  static const char* kAssign[] = {"CC", "CS", "SC", "SS"};
  return std::string(kTypes[std::get<0>(info.param)]) +
         kAssign[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAllAssignments, AppendixSweep,
    ::testing::Combine(::testing::Range(0, 11), ::testing::Range(0, 4)),
    sweepName);

}  // namespace
}  // namespace sadp
