// Tests for DecomposeOptions behaviors and decomposer edge cases.
#include <gtest/gtest.h>

#include "sadp/decompose.hpp"

namespace sadp {
namespace {

const DesignRules kRules;

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}

TEST(DecomposeOptions, NoMergeLeavesCoreGapAsCut) {
  // Two same-color cores at an illegal sub-d_core gap: with merging the
  // gap is bridged core material; without, it stays a (2 px) cut slot.
  std::vector<ColoredFragment> frags{{hw(1, 0, 5, 2), Color::Core},
                                     {hw(2, 0, 5, 3), Color::Core}};
  DecomposeOptions merged;
  const LayerDecomposition a = decomposeLayer(frags, kRules, merged);
  DecomposeOptions noMerge;
  noMerge.mergeCores = false;
  const LayerDecomposition b = decomposeLayer(frags, kRules, noMerge);
  EXPECT_GT(a.coreMask.count(), b.coreMask.count());
}

TEST(DecomposeOptions, TrimAssistsAffectsDamage) {
  // A stub wedged between two second wires' strip ends: with trimming the
  // assists back off; without, they merge and the spacer nibbles metal.
  std::vector<ColoredFragment> frags{
      {hw(1, 0, 6, 2), Color::Second},
      {Fragment{7, 3, 8, 4, 2}, Color::Second},  // stub diagonal to strip
      {hw(3, 8, 14, 4), Color::Second},
  };
  DecomposeOptions trim;      // default: trimming on
  DecomposeOptions noTrim;
  noTrim.trimAssists = false;
  const OverlayReport a = decomposeLayer(frags, kRules, trim).report;
  const OverlayReport b = decomposeLayer(frags, kRules, noTrim).report;
  EXPECT_LE(a.spacerOverTargetPx, b.spacerOverTargetPx);
}

TEST(DecomposeOptions, MarginRespectsMinimum) {
  std::vector<ColoredFragment> frags{{hw(1, 0, 4, 0), Color::Core}};
  DecomposeOptions tiny;
  tiny.margin = 1;  // below one pitch: clamped up
  const LayerDecomposition d = decomposeLayer(frags, kRules, tiny);
  // The window must still fit the core's spacer ring.
  EXPECT_EQ(d.report.spacerOverTargetPx, 0);
  EXPECT_GE(d.windowNm.xhi - d.windowNm.xlo,
            fragmentMetalNm(frags[0].frag, kRules).width());
}

TEST(DecomposeOptions, NegativeCoordinatesHandled) {
  std::vector<ColoredFragment> frags{
      {Fragment{-5, -4, 2, -3, 1}, Color::Core},
      {Fragment{-5, -1, 2, 0, 2}, Color::Second},  // 3 tracks: independent
  };
  const LayerDecomposition d = decomposeLayer(frags, kRules);
  EXPECT_EQ(d.report.hardOverlays, 0);
  EXPECT_EQ(d.report.cutConflicts(), 0);
  EXPECT_EQ(std::int64_t(d.target.count()) * 100,
            fragmentMetalNm(frags[0].frag, kRules).area() +
                fragmentMetalNm(frags[1].frag, kRules).area());
}

TEST(DecomposeOptions, ConflictBoxesLocateDamage) {
  // A second wire with assists disabled: both sides cut-defined; the
  // conflict boxes must cover the wire's area.
  DecomposeOptions opts;
  opts.insertAssists = false;
  std::vector<ColoredFragment> frags{{hw(1, 0, 6, 2), Color::Second}};
  const LayerDecomposition d = decomposeLayer(frags, kRules, opts);
  ASSERT_GT(d.report.cutSpaceConflicts, 0);
  ASSERT_FALSE(d.conflictBoxesNm.empty());
  const Rect metal = fragmentMetalNm(frags[0].frag, kRules);
  bool touches = false;
  for (const Rect& b : d.conflictBoxesNm) {
    if (b.overlaps(metal)) touches = true;
  }
  EXPECT_TRUE(touches);
}

TEST(DecomposeOptions, HardOverlayBoxesLocateDamage) {
  // 1-a CC over a long span: hard overlay boxes along the facing sides.
  std::vector<ColoredFragment> frags{{hw(1, 0, 8, 2), Color::Core},
                                     {hw(2, 0, 8, 3), Color::Core}};
  const LayerDecomposition d = decomposeLayer(frags, kRules);
  ASSERT_GT(d.report.hardOverlays, 0);
  ASSERT_FALSE(d.hardOverlayBoxesNm.empty());
  // Every hard box lies between the two wires' metal bands.
  for (const Rect& b : d.hardOverlayBoxesNm) {
    EXPECT_GE(b.ylo, fragmentMetalNm(frags[0].frag, kRules).ylo);
    EXPECT_LE(b.yhi, fragmentMetalNm(frags[1].frag, kRules).yhi);
  }
}

TEST(DecomposeOptions, UnassignedColorTreatedAsCore) {
  std::vector<ColoredFragment> frags{{hw(1, 0, 5, 2), Color::Unassigned}};
  const LayerDecomposition d = decomposeLayer(frags, kRules);
  // Unassigned renders like core: fully spacer-protected.
  EXPECT_EQ(d.report.sideOverlayNm, 0);
  EXPECT_EQ(d.report.tipOverlays, 0);
}

}  // namespace
}  // namespace sadp
