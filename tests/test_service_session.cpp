// Service foundation tests: the strict NDJSON value layer and the
// resident-session ECO semantics (DESIGN.md §5.11). The heavier
// byte-identity sweep lives in test_service_fuzz.cpp.
#include <gtest/gtest.h>

#include "sadp/mask_cache.hpp"
#include "service/json.hpp"
#include "service/session.hpp"

namespace sadp {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesScalarsExactly) {
  EXPECT_TRUE(parseJson("null")->isNull());
  EXPECT_EQ(parseJson("true")->asBool(), true);
  EXPECT_EQ(parseJson("-42")->asInt(), -42);
  EXPECT_TRUE(parseJson("1.5")->isDouble());
  EXPECT_DOUBLE_EQ(parseJson("1.5")->asDouble(), 1.5);
  // int64-exact: no double round-trip for fingerprints.
  EXPECT_EQ(parseJson("9223372036854775807")->asInt(),
            std::int64_t(9223372036854775807LL));
  // Integer overflow degrades to double instead of failing.
  EXPECT_TRUE(parseJson("92233720368547758080")->isDouble());
  EXPECT_EQ(parseJson("\"a\\nb\\u0041\"")->asString(), "a\nbA");
}

TEST(Json, ObjectsKeepInsertionOrderAndRoundTrip) {
  const std::string text =
      R"({"op":"edit","id":7,"pins":[[1,2,0],[3,4,0]],"f":1.25})";
  const std::optional<JsonValue> v = parseJson(text);
  ASSERT_TRUE(v);
  EXPECT_EQ(v->find("op")->asString(), "edit");
  EXPECT_EQ(v->find("id")->asInt(), 7);
  EXPECT_EQ(v->find("pins")->asArray()[1].asArray()[0].asInt(), 3);
  EXPECT_EQ(writeJson(*v), text);
}

TEST(Json, RejectsMalformedInputWithOffsets) {
  std::string err;
  EXPECT_FALSE(parseJson("", &err));
  EXPECT_FALSE(parseJson("{\"a\":1,}", &err));
  EXPECT_FALSE(parseJson("[1,2", &err));
  EXPECT_FALSE(parseJson("\"unterminated", &err));
  EXPECT_FALSE(parseJson("01", &err));  // trailing garbage after 0
  EXPECT_FALSE(parseJson("{} extra", &err));
  EXPECT_NE(err.find("at byte"), std::string::npos);
  EXPECT_FALSE(parseJson("nul", &err));
  EXPECT_FALSE(parseJson("{\"a\" 1}", &err));
  // Depth bomb is rejected, not stack-overflowed.
  EXPECT_FALSE(parseJson(std::string(200, '[') + std::string(200, ']')));
}

TEST(Json, EscapesControlCharactersOnOutput) {
  JsonValue v{JsonValue::Object{}};
  v.set("s", std::string("a\x01"
                         "b\"\\\n"));
  EXPECT_EQ(writeJson(v), "{\"s\":\"a\\u0001b\\\"\\\\\\n\"}");
}

// ------------------------------------------------------------- Session --

BenchmarkSpec tinySpec(std::uint64_t seed = 11) {
  BenchmarkSpec s;
  s.name = "svc-tiny";
  s.netCount = 35;
  s.width = 56;
  s.height = 56;
  s.seed = seed;
  return s;
}

TEST(Session, FullRouteIsDeterministic) {
  MaskCache cache;
  Session a("a", tinySpec(), &cache);
  Session b("b", tinySpec(), &cache);
  const RouteOutcome ra = a.routeFull();
  const RouteOutcome rb = b.routeFull();
  EXPECT_EQ(ra.designFp, rb.designFp);
  EXPECT_EQ(ra.layerMaskFp, rb.layerMaskFp);
  EXPECT_EQ(ra.csvRow, rb.csvRow);
  EXPECT_EQ(ra.report, rb.report);
  // Second session's sign-off decompositions come from the shared cache.
  EXPECT_GT(rb.cacheHits, 0);
}

TEST(Session, MalformedEditsAreRejectedWithoutStateChange) {
  Session s("s", tinySpec(), nullptr);
  s.routeFull();
  const std::uint64_t fp = s.lastOutcome().designFp;
  const int nets = s.netCount();

  std::string err;
  EditRequest e;
  e.kind = EditRequest::Kind::MovePin;
  e.net = "no-such-net";
  e.pinIndex = 0;
  e.pins.push_back(Pin{{GridNode{1, 1, 0}}});
  EXPECT_FALSE(s.applyEdit(e, &err));
  EXPECT_NE(err.find("unknown net"), std::string::npos);

  e.net = "n0";
  e.pinIndex = 99;
  EXPECT_FALSE(s.applyEdit(e, &err));

  EditRequest dup;
  dup.kind = EditRequest::Kind::AddNet;
  dup.net = "n0";  // exists
  dup.pins = {Pin{{GridNode{1, 1, 0}}}, Pin{{GridNode{5, 5, 0}}}};
  EXPECT_FALSE(s.applyEdit(dup, &err));

  EXPECT_EQ(s.netCount(), nets);
  EXPECT_EQ(s.lastOutcome().designFp, fp);  // nothing re-ran
}

/// One move_pin ECO must equal a cold route of the edited design, and
/// must actually replay (memo hits > 0, fewer real searches than cold).
TEST(Session, EcoMovePinMatchesColdRoute) {
  MaskCache cache;
  Session eco("eco", tinySpec(), &cache);
  eco.routeFull();

  EditRequest e;
  e.kind = EditRequest::Kind::MovePin;
  e.net = "n3";
  e.pinIndex = 1;
  e.pins.push_back(Pin{{GridNode{40, 12, 0}}});
  std::string err;
  const std::optional<RouteOutcome> after = eco.applyEdit(e, &err);
  ASSERT_TRUE(after) << err;
  EXPECT_GT(after->memoHits, 0);
  EXPECT_GT(after->netsDirty, 0);

  MaskCache coldCache;
  Session cold("cold", tinySpec(), &coldCache);
  cold.setNets(eco.netSpecs());
  const RouteOutcome ref = cold.routeFull();
  EXPECT_EQ(after->designFp, ref.designFp);
  EXPECT_EQ(after->layerMaskFp, ref.layerMaskFp);
  EXPECT_EQ(after->report, ref.report);
  EXPECT_EQ(after->csvRow, ref.csvRow);
  EXPECT_LT(after->searches, ref.searches);
}

TEST(Session, AddAndRemoveNetRoundTrip) {
  MaskCache cache;
  Session s("s", tinySpec(), &cache);
  const RouteOutcome before = s.routeFull();

  EditRequest add;
  add.kind = EditRequest::Kind::AddNet;
  add.net = "extra";
  add.pins = {Pin{{GridNode{3, 50, 0}}}, Pin{{GridNode{20, 50, 0}}}};
  std::string err;
  const std::optional<RouteOutcome> withNet = s.applyEdit(add, &err);
  ASSERT_TRUE(withNet) << err;
  EXPECT_EQ(withNet->stats.totalNets, before.stats.totalNets + 1);

  EditRequest rm;
  rm.kind = EditRequest::Kind::RemoveNet;
  rm.net = "extra";
  const std::optional<RouteOutcome> restored = s.applyEdit(rm, &err);
  ASSERT_TRUE(restored) << err;
  // Removing the added net restores the original design byte for byte.
  EXPECT_EQ(restored->designFp, before.designFp);
  EXPECT_EQ(restored->csvRow, before.csvRow);
}

}  // namespace
}  // namespace sadp
