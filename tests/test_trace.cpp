// Tests of the run-trace & metrics subsystem (DESIGN.md §5.7): span
// nesting/ordering, the null-sink fast path, counter determinism across
// thread counts, histogram bucketing, and the Chrome trace JSON export.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "sadp/decompose.hpp"
#include "trace/metrics.hpp"
#include "util/parallel_for.hpp"

namespace sadp {
namespace {

/// Scoped level change; always restores Off so tests compose.
struct LevelGuard {
  explicit LevelGuard(TraceLevel lvl) {
    clearTrace();
    setTraceLevel(lvl);
  }
  ~LevelGuard() { setTraceLevel(TraceLevel::Off); }
};

void spinNs(std::int64_t ns) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
  }
}

const TraceEvent* findEvent(const std::vector<TraceEvent>& evs,
                            const std::string& name) {
  for (const TraceEvent& e : evs) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(Trace, SpanNestingAndOrdering) {
  LevelGuard guard(TraceLevel::Full);
  {
    SADP_SPAN("test.outer");
    spinNs(20000);
    {
      SADP_SPAN_ARG("test.inner", 42);
      spinNs(20000);
    }
    spinNs(20000);
  }
  const std::vector<TraceEvent> evs = collectTraceEvents();
  const TraceEvent* outer = findEvent(evs, "test.outer");
  const TraceEvent* inner = findEvent(evs, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Sorted (tid, startNs, -durNs): the parent precedes its child, and the
  // child's interval nests strictly inside the parent's.
  EXPECT_LT(outer - evs.data(), inner - evs.data());
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_LE(outer->startNs, inner->startNs);
  EXPECT_GE(outer->startNs + outer->durNs, inner->startNs + inner->durNs);
  EXPECT_FALSE(outer->hasArg);
  EXPECT_TRUE(inner->hasArg);
  EXPECT_EQ(inner->arg, 42);
}

TEST(Trace, NullSinkRecordsNothing) {
  clearTrace();
  ASSERT_EQ(traceLevel(), TraceLevel::Off);
  {
    SADP_SPAN("test.off_span");
    SADP_SPAN_ARG("test.off_arg", 7);
  }
  EXPECT_TRUE(collectTraceEvents().empty());
  for (const SpanAggregate& a : spanAggregates()) {
    EXPECT_NE(a.name, "test.off_span");
    EXPECT_NE(a.name, "test.off_arg");
  }
  // The macro interns its name even when disabled (one-time, per site).
  const auto names = registeredSpanNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.off_span"),
            names.end());
}

TEST(Trace, AggregateLevelCountsWithoutBufferingEvents) {
  LevelGuard guard(TraceLevel::Aggregate);
  for (int i = 0; i < 3; ++i) {
    SADP_SPAN("test.agg");
    spinNs(10000);
  }
  EXPECT_TRUE(collectTraceEvents().empty());
  const auto aggs = spanAggregates();
  const auto it = std::find_if(
      aggs.begin(), aggs.end(),
      [](const SpanAggregate& a) { return a.name == "test.agg"; });
  ASSERT_NE(it, aggs.end());
  EXPECT_EQ(it->count, 3);
  EXPECT_GT(it->wallNs, 0);
}

TEST(Trace, WorkerThreadBuffersOutliveThreads) {
  LevelGuard guard(TraceLevel::Full);
  setParallelThreads(4);
  parallelFor(8, [&](int) {
    SADP_SPAN("test.worker_body");
    spinNs(5000);
  });
  setParallelThreads(0);
  const std::vector<TraceEvent> evs = collectTraceEvents();
  int bodies = 0;
  for (const TraceEvent& e : evs) {
    if (e.name == "test.worker_body") ++bodies;
  }
  EXPECT_EQ(bodies, 8);  // all 8 jobs traced even though workers exited
}

TEST(Metrics, HistogramLogBuckets) {
  Histogram h;
  EXPECT_EQ(Histogram::bucketLo(0), 0);
  EXPECT_EQ(Histogram::bucketLo(1), 1);
  EXPECT_EQ(Histogram::bucketLo(4), 8);
  h.add(0);    // bucket 0
  h.add(1);    // bucket 1: [1,2)
  h.add(9);    // bucket 4: [8,16)
  h.add(15);   // bucket 4
  h.add(-3);   // bucket 0
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 0 + 1 + 9 + 15 - 3);
  EXPECT_EQ(h.bucketCount(0), 2);
  EXPECT_EQ(h.bucketCount(1), 1);
  EXPECT_EQ(h.bucketCount(4), 2);
  h.reset();
  EXPECT_EQ(h.count(), 0);
}

// ---- Counter determinism across thread counts ------------------------------

std::vector<CounterSample> routeAndSnapshot(int threads) {
  MetricsRegistry::instance().resetAll();
  clearTrace();
  setParallelThreads(threads);
  BenchmarkInstance inst =
      makeBenchmark(paperBenchmark("Test1").scaled(0.06));
  OverlayAwareRouter router(inst.grid, inst.netlist);
  router.run();
  router.physicalReport();
  setParallelThreads(0);
  return MetricsRegistry::instance().counterSnapshot();
}

TEST(Metrics, CountersByteIdenticalAcrossThreadCounts) {
  // The determinism contract (DESIGN.md §5.7): counters measure properties
  // of the work itself, so SADP_THREADS must not change any total.
  const std::vector<CounterSample> one = routeAndSnapshot(1);
  ASSERT_FALSE(one.empty());
  bool sawAstar = false;
  for (const auto& [name, value] : one) {
    if (name == "astar.routes") sawAstar = value > 0;
  }
  EXPECT_TRUE(sawAstar);
  for (int threads : {2, 4}) {
    const std::vector<CounterSample> other = routeAndSnapshot(threads);
    ASSERT_EQ(one.size(), other.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(one[i].first, other[i].first) << "threads=" << threads;
      EXPECT_EQ(one[i].second, other[i].second)
          << "counter " << one[i].first << " threads=" << threads;
    }
  }
}

// ---- Tiled-decomposition spans & counters ----------------------------------

std::int64_t counterValue(const std::vector<CounterSample>& snap,
                          const std::string& name) {
  for (const auto& [n, v] : snap) {
    if (n == name) return v;
  }
  return -1;
}

/// 40-track-wide six-wire layer: a 3-word decomposition window, so fixed
/// band widths of 1..3 words give distinct band counts.
std::vector<ColoredFragment> tileTestFragments() {
  std::vector<ColoredFragment> frags;
  for (int y = 0; y < 6; ++y) {
    frags.push_back({Fragment{0, Track(2 * y), 40, Track(2 * y + 1),
                              NetId(y + 1)},
                     (y % 2) ? Color::Second : Color::Core});
  }
  return frags;
}

/// Counter snapshot plus window word count after one decomposeLayer run.
std::pair<std::vector<CounterSample>, int> decomposeSnapshot(int threads,
                                                             int tileWords) {
  MetricsRegistry::instance().resetAll();
  setParallelThreads(threads);
  DecomposeOptions opts;
  opts.tileWords = tileWords;
  const std::vector<ColoredFragment> frags = tileTestFragments();
  const LayerDecomposition d = decomposeLayer(frags, DesignRules{}, opts);
  setParallelThreads(0);
  return {MetricsRegistry::instance().counterSnapshot(),
          Bitmap::wordsPerRow(d.target.width())};
}

TEST(Metrics, TileSpanAndCountersMatchBandMath) {
  LevelGuard guard(TraceLevel::Aggregate);
  const auto [snap, wpr] = decomposeSnapshot(1, 1);
  ASSERT_GT(wpr, 1);
  // Three tiled stages per layer (assist clip, spacer synthesis, cut MRC),
  // each over ceil(wpr / tileWords) = wpr single-word bands.
  EXPECT_EQ(counterValue(snap, "decompose.tiles"), 3 * wpr);
  EXPECT_EQ(counterValue(snap, "decompose.tiled_calls"), 1);
  // Each band reads at least its own words (plus halo context words).
  EXPECT_GE(counterValue(snap, "decompose.tile_words"), 3 * wpr);
  const auto aggs = spanAggregates();
  const auto it = std::find_if(
      aggs.begin(), aggs.end(),
      [](const SpanAggregate& a) { return a.name == "decompose.tile"; });
  ASSERT_NE(it, aggs.end());
  EXPECT_EQ(it->count, 3 * wpr);  // one span per band, same total as tiles
}

TEST(Metrics, TileCountersByteIdenticalAcrossThreadCounts) {
  // The nested per-tile fan-out measures the work, not the workers: every
  // counter total (tile counters included) must survive SADP_THREADS.
  const auto [one, wprOne] = decomposeSnapshot(1, 2);
  ASSERT_FALSE(one.empty());
  EXPECT_GT(counterValue(one, "decompose.tiles"), 0);
  for (int threads : {2, 4}) {
    const auto [other, wprN] = decomposeSnapshot(threads, 2);
    EXPECT_EQ(wprN, wprOne);
    ASSERT_EQ(one.size(), other.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(one[i].first, other[i].first) << "threads=" << threads;
      EXPECT_EQ(one[i].second, other[i].second)
          << "counter " << one[i].first << " threads=" << threads;
    }
  }
}

TEST(Metrics, WorkCountersIndependentOfTileSize) {
  // Band width changes how the morphology work is split, never how much
  // there is: outside the tiling bookkeeping itself (decompose.tile*) and
  // the parallelFor call/job counts, totals match the untiled reference.
  const auto filtered = [](const std::vector<CounterSample>& snap) {
    std::vector<CounterSample> out;
    for (const CounterSample& s : snap) {
      if (s.first.rfind("decompose.tile", 0) != 0 &&
          s.first.rfind("parallel.", 0) != 0) {
        out.push_back(s);
      }
    }
    return out;
  };
  const auto ref = filtered(decomposeSnapshot(1, -1).first);
  ASSERT_FALSE(ref.empty());
  for (int tileWords : {1, 2, 8}) {
    EXPECT_EQ(filtered(decomposeSnapshot(1, tileWords).first), ref)
        << "tileWords=" << tileWords;
  }
}

// ---- Chrome trace JSON -----------------------------------------------------

/// Minimal recursive-descent JSON parser (objects/arrays/strings/numbers/
/// literals); only validates structure and extracts string values by key.
struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  explicit JsonParser(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool parseString(std::string* out) {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    std::string v;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return false;
      }
      v.push_back(s[i++]);
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    if (out) *out = std::move(v);
    return true;
  }
  bool parseNumber() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool parseValue() {
    ws();
    if (i >= s.size()) return false;
    const char c = s[i];
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return parseString(nullptr);
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      return true;
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      return true;
    }
    return parseNumber();
  }
  bool parseObject() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!parseString(nullptr)) return false;
      if (!eat(':')) return false;
      if (!parseValue()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool parseArray() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!parseValue()) return false;
    } while (eat(','));
    return eat(']');
  }
};

TEST(Trace, ChromeTraceJsonParsesAndReferencesRegisteredNames) {
  LevelGuard guard(TraceLevel::Full);
  {
    SADP_SPAN("test.export_outer");
    SADP_SPAN_ARG("test.export_inner", -5);
    spinNs(5000);
  }
  std::ostringstream os;
  writeChromeTrace(os);
  const std::string text = os.str();

  // The whole document is one valid JSON value with no trailing garbage.
  JsonParser p(text);
  ASSERT_TRUE(p.parseValue()) << text.substr(0, 200);
  p.ws();
  EXPECT_EQ(p.i, text.size());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);

  // Every event's "name" is a registered span name.
  const auto registered = registeredSpanNames();
  std::size_t events = 0;
  const std::string needle = "\"name\":\"";
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos)) {
    pos += needle.size();
    const std::size_t end = text.find('"', pos);
    ASSERT_NE(end, std::string::npos);
    const std::string name = text.substr(pos, end - pos);
    EXPECT_NE(std::find(registered.begin(), registered.end(), name),
              registered.end())
        << "unregistered name in trace: " << name;
    ++events;
    pos = end;
  }
  EXPECT_GE(events, 2u);
}

}  // namespace
}  // namespace sadp
