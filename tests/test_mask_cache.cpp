// MaskCache contract tests (DESIGN.md §5.11): a key hit returns a
// byte-identical plane, hit/miss/eviction accounting is deterministic,
// and the key covers exactly the output-affecting inputs (tiling and
// scheduling knobs are byte-identity-neutral and deliberately excluded).
#include <gtest/gtest.h>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "sadp/decompose.hpp"
#include "sadp/mask_cache.hpp"

namespace sadp {
namespace {

BenchmarkSpec tinySpec(std::uint64_t seed = 7) {
  BenchmarkSpec s;
  s.name = "cache-tiny";
  s.netCount = 30;
  s.width = 48;
  s.height = 48;
  s.seed = seed;
  return s;
}

/// Routed fragments of layer `layer` of a tiny deterministic instance.
std::vector<ColoredFragment> routedFragments(int layer,
                                             std::uint64_t seed = 7) {
  BenchmarkInstance inst = makeBenchmark(tinySpec(seed));
  OverlayAwareRouter router(inst.grid, inst.netlist);
  router.run();
  return router.coloredFragments(layer);
}

void expectSamePlanes(const LayerDecomposition& a,
                      const LayerDecomposition& b) {
  EXPECT_EQ(maskFingerprint(a), maskFingerprint(b));
  EXPECT_EQ(a.target.words(), b.target.words());
  EXPECT_EQ(a.coreMask.words(), b.coreMask.words());
  EXPECT_EQ(a.spacer.words(), b.spacer.words());
  EXPECT_EQ(a.cut.words(), b.cut.words());
  EXPECT_EQ(a.assists.words(), b.assists.words());
  EXPECT_EQ(a.bridges.words(), b.bridges.words());
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.conflictBoxesNm, b.conflictBoxesNm);
  EXPECT_EQ(a.hardOverlayBoxesNm, b.hardOverlayBoxesNm);
  EXPECT_EQ(a.windowNm, b.windowNm);
}

TEST(MaskCache, HitReturnsByteIdenticalPlane) {
  const std::vector<ColoredFragment> frags = routedFragments(0);
  const DesignRules rules{};
  const LayerDecomposition ref = decomposeLayer(frags, rules);  // uncached

  MaskCache cache;
  DecomposeOptions opts;
  opts.cache = &cache;
  const LayerDecomposition miss = decomposeLayer(frags, rules, opts);
  const LayerDecomposition hit = decomposeLayer(frags, rules, opts);

  const MaskCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.entries, 1);
  expectSamePlanes(ref, miss);
  expectSamePlanes(ref, hit);
}

TEST(MaskCache, KeyIgnoresTilingAndScheduling) {
  const std::vector<ColoredFragment> frags = routedFragments(0);
  const DesignRules rules{};

  MaskCache cache;
  DecomposeOptions a;
  a.cache = &cache;
  a.tileWords = 4;
  a.schedule = BandSchedule::Static;
  DecomposeOptions b;
  b.cache = &cache;
  b.tileWords = -1;  // whole-window reference path
  b.schedule = BandSchedule::Dynamic;

  EXPECT_EQ(maskCacheKey(frags, rules, a), maskCacheKey(frags, rules, b));
  const LayerDecomposition first = decomposeLayer(frags, rules, a);
  const LayerDecomposition second = decomposeLayer(frags, rules, b);
  EXPECT_EQ(cache.stats().hits, 1);  // differently-tiled request still hits
  expectSamePlanes(first, second);
}

TEST(MaskCache, KeyCoversOutputAffectingInputs) {
  const std::vector<ColoredFragment> frags = routedFragments(0);
  const DesignRules rules{};
  const DecomposeOptions base;
  const MaskCacheKey k0 = maskCacheKey(frags, rules, base);

  DecomposeOptions noAssists = base;
  noAssists.insertAssists = false;
  EXPECT_NE(k0, maskCacheKey(frags, rules, noAssists));

  DecomposeOptions noMerge = base;
  noMerge.mergeCores = false;
  EXPECT_NE(k0, maskCacheKey(frags, rules, noMerge));

  DecomposeOptions wideMargin = base;
  wideMargin.margin = base.margin + 10;
  EXPECT_NE(k0, maskCacheKey(frags, rules, wideMargin));

  DesignRules otherRules{};
  otherRules.wCut += 10;
  EXPECT_NE(k0, maskCacheKey(frags, otherRules, base));

  // Fragment order and content participate.
  std::vector<ColoredFragment> reversed(frags.rbegin(), frags.rend());
  const bool sameSequence =
      std::equal(reversed.begin(), reversed.end(), frags.begin(),
                 [](const ColoredFragment& a, const ColoredFragment& b) {
                   return a.frag == b.frag && a.color == b.color;
                 });
  if (reversed.size() > 1 && !sameSequence) {
    EXPECT_NE(k0, maskCacheKey(reversed, rules, base));
  }
  std::vector<ColoredFragment> flipped = frags;
  flipped.front().color =
      flipped.front().color == Color::Core ? Color::Second : Color::Core;
  EXPECT_NE(k0, maskCacheKey(flipped, rules, base));
}

TEST(MaskCache, EvictsLeastRecentlyUsedDeterministically) {
  const DesignRules rules{};
  const DecomposeOptions base;
  // Three distinct inputs: the three layers of the routed instance.
  std::vector<std::vector<ColoredFragment>> inputs;
  for (int layer = 0; layer < 3; ++layer) {
    inputs.push_back(routedFragments(layer));
  }

  auto runSequence = [&](MaskCache& cache) {
    DecomposeOptions opts = base;
    opts.cache = &cache;
    for (const auto& frags : inputs) decomposeLayer(frags, rules, opts);
    // Re-request the LAST input: with a 1-byte budget only the most
    // recent entry survives, so exactly this one hits.
    decomposeLayer(inputs.back(), rules, opts);
    decomposeLayer(inputs.front(), rules, opts);  // evicted -> miss
    return cache.stats();
  };

  MaskCache tiny(1);  // keeps exactly one (the newest) entry
  const MaskCacheStats s = runSequence(tiny);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 4);
  EXPECT_GE(s.evictions, 3);
  EXPECT_EQ(s.entries, 1);

  // Identical sequence, fresh cache: identical accounting.
  MaskCache again(1);
  const MaskCacheStats s2 = runSequence(again);
  EXPECT_EQ(s.hits, s2.hits);
  EXPECT_EQ(s.misses, s2.misses);
  EXPECT_EQ(s.evictions, s2.evictions);
  EXPECT_EQ(s.entries, s2.entries);
  EXPECT_EQ(s.bytes, s2.bytes);
}

TEST(MaskCache, LookupKeepsEntryAliveAcrossEviction) {
  const std::vector<ColoredFragment> a = routedFragments(0);
  const std::vector<ColoredFragment> b = routedFragments(1);
  const DesignRules rules{};
  const DecomposeOptions base;

  MaskCache cache(1);
  cache.insert(maskCacheKey(a, rules, base), decomposeLayer(a, rules));
  const std::shared_ptr<const LayerDecomposition> held =
      cache.lookup(maskCacheKey(a, rules, base));
  ASSERT_TRUE(held);
  cache.insert(maskCacheKey(b, rules, base), decomposeLayer(b, rules));
  // `a` was evicted but the shared_ptr keeps the plane readable.
  EXPECT_FALSE(cache.lookup(maskCacheKey(a, rules, base)));
  EXPECT_EQ(maskFingerprint(*held),
            maskFingerprint(decomposeLayer(a, rules)));
}

TEST(MaskCache, ClearResetsEntriesButKeepsTotals) {
  const std::vector<ColoredFragment> frags = routedFragments(0);
  const DesignRules rules{};
  MaskCache cache;
  DecomposeOptions opts;
  opts.cache = &cache;
  decomposeLayer(frags, rules, opts);
  decomposeLayer(frags, rules, opts);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
  decomposeLayer(frags, rules, opts);
  EXPECT_EQ(cache.stats().misses, 2);  // cleared -> recompute once more
  EXPECT_EQ(cache.stats().hits, 1);
}

}  // namespace
}  // namespace sadp
