// Timing/negotiation determinism fuzz gate (ctest label `fuzz`): with
// --negotiate on (PathFinder pre-phase + criticality-driven ordering and
// weights), routed output must stay a pure function of the design:
//
//  * serial vs wave-parallel (--route-jobs 2 and 8): byte-identical mask
//    fingerprints, per-net committed paths, CSV fields, and the FULL
//    counter + histogram snapshot (negotiation counters included);
//  * session ECO replay vs a cold route of the edited design:
//    byte-identical outcome (the negotiation pre-phase re-executes
//    deterministically on every replay).
//
// Run under -DSADP_SANITIZE=thread the same trials race-check the wave
// speculation fan-out against the frozen negotiation base field.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"
#include "sadp/bitmap.hpp"
#include "sadp/mask_cache.hpp"
#include "service/session.hpp"
#include "util/parallel_for.hpp"

namespace sadp {
namespace {

/// Seeded random design, deliberately denser than the plain parallel fuzz
/// so negotiation has real contention to resolve.
BenchmarkSpec fuzzSpec(std::uint32_t seed) {
  std::mt19937 rng(seed * 2654435761u + 1013u);
  BenchmarkSpec s;
  s.name = "tf" + std::to_string(seed);
  s.netCount = 12 + int(rng() % 37);      // 12 .. 48
  s.width = Track(28 + int(rng() % 21));  // 28 .. 48
  s.height = Track(28 + int(rng() % 21));
  s.seed = std::uint64_t(seed) * 131 + 5;
  if (rng() % 4 == 0) s.pinCandidates = 2;
  return s;
}

RouterOptions negotiateOpts(int routeJobs) {
  RouterOptions ro;
  ro.routeJobs = routeJobs;
  ro.negotiate = true;
  ro.timingDriven = true;
  return ro;
}

struct RouteDigest {
  std::vector<std::uint64_t> planes;        ///< 4 mask planes per layer
  std::vector<std::vector<GridNode>> paths; ///< committed route per net
  std::vector<char> routed;
  OverlayReport report;
  std::string csvRow;
  std::vector<CounterSample> counters;
  std::vector<std::pair<std::string, std::int64_t>> histTotals;
  std::int64_t specHits = 0;
  std::int64_t specMisses = 0;
};

RouteDigest routeOnce(const BenchmarkSpec& spec, int routeJobs, int threads) {
  RunContext ctx;
  ctx.setThreadCount(threads);
  BenchmarkInstance inst = makeBenchmark(spec);
  OverlayAwareRouter router(inst.grid, inst.netlist, negotiateOpts(routeJobs),
                            &ctx);
  const RoutingStats stats = router.run();
  const OverlayReport report = router.physicalReport();

  RouteDigest out;
  for (int layer = 0; layer < inst.grid.layers(); ++layer) {
    const LayerDecomposition d = router.decompose(layer);
    out.planes.push_back(fingerprint(d.target));
    out.planes.push_back(fingerprint(d.coreMask));
    out.planes.push_back(fingerprint(d.spacer));
    out.planes.push_back(fingerprint(d.cut));
  }
  for (const NetRouteState& st : router.netStates()) {
    out.paths.push_back(st.path);
    out.routed.push_back(st.routed ? 1 : 0);
  }
  out.report = report;
  // The sadp_route_cli --csv row shape with the timing columns appended.
  std::ostringstream csv;
  csv << stats.totalNets << ',' << stats.routedNets << ','
      << stats.routability() << ',' << stats.wirelength << ',' << stats.vias
      << ',' << stats.ripUps << ',' << report.sideOverlayNm << ','
      << report.cutConflicts() << ',' << report.hardOverlays << ','
      << stats.worstSlack << ',' << stats.negotiateIters << ','
      << stats.negotiateOverflow << ',' << (stats.timingValid ? 1 : 0);
  out.csvRow = csv.str();
  out.counters = ctx.metrics().counterSnapshot();
  for (const std::string& name : ctx.metrics().histogramNames()) {
    const Histogram* h = ctx.metrics().findHistogram(name);
    out.histTotals.emplace_back(name, h->count());
    out.histTotals.emplace_back(name + ".sum", h->sum());
  }
  out.specHits = router.waveSpecHits();
  out.specMisses = router.waveSpecMisses();
  return out;
}

void expectSameDigest(const RouteDigest& got, const RouteDigest& ref,
                      const std::string& what) {
  EXPECT_EQ(got.planes, ref.planes) << what;
  EXPECT_EQ(got.routed, ref.routed) << what;
  EXPECT_EQ(got.paths, ref.paths) << what;
  EXPECT_TRUE(got.report == ref.report) << what;
  EXPECT_EQ(got.csvRow, ref.csvRow) << what;
  EXPECT_EQ(got.histTotals, ref.histTotals) << what;
  ASSERT_EQ(got.counters.size(), ref.counters.size()) << what;
  for (std::size_t i = 0; i < ref.counters.size(); ++i) {
    EXPECT_EQ(got.counters[i].first, ref.counters[i].first) << what;
    EXPECT_EQ(got.counters[i].second, ref.counters[i].second)
        << what << " counter " << ref.counters[i].first;
  }
}

TEST(TimingFuzz, NegotiatedRoutingByteIdenticalAcrossRouteJobs) {
  setParallelThreads(8);
  std::int64_t totalSpecHits = 0;
  std::int64_t totalNegotiateRounds = 0;
  for (std::uint32_t seed = 1; seed <= 100; ++seed) {
    const BenchmarkSpec spec = fuzzSpec(seed);
    const std::string what = "seed=" + std::to_string(seed) + " nets=" +
                             std::to_string(spec.netCount);
    const RouteDigest serial = routeOnce(spec, 1, 2);
    EXPECT_EQ(serial.specHits + serial.specMisses, 0) << what;
    const RouteDigest jobs2 = routeOnce(spec, 2, 2);
    expectSameDigest(jobs2, serial, what + " jobs=2");
    const RouteDigest jobs8 = routeOnce(spec, 8, 8);
    expectSameDigest(jobs8, serial, what + " jobs=8");
    totalSpecHits += jobs2.specHits + jobs8.specHits;
    for (const auto& [name, v] : serial.histTotals) {
      if (name == "router.negotiate_overflow") totalNegotiateRounds += v;
    }
    if (HasFatalFailure()) break;
  }
  // The gate must exercise both machineries for real: speculation verified
  // against the negotiation base field, and negotiation itself.
  EXPECT_GT(totalSpecHits, 0);
  EXPECT_GT(totalNegotiateRounds, 0);
  setParallelThreads(0);
}

// ---------------------------------------------------------------------
// Session ECO replay with negotiation on: every incremental re-route must
// equal a cold route of the edited design, byte for byte.

BenchmarkSpec ecoSpec(std::uint64_t seed) {
  BenchmarkSpec s;
  s.name = "tfe";
  s.netCount = 30;
  s.width = 44;
  s.height = 44;
  s.seed = seed;
  return s;
}

EditRequest randomEdit(std::mt19937_64& rng, const Session& s, int caseId,
                       int step) {
  const std::vector<NetSpec> nets = s.netSpecs();
  EditRequest e;
  const int kind = int(rng() % 4);
  auto node = [&] {
    return GridNode{Track(rng() % std::uint64_t(s.spec().width)),
                    Track(rng() % std::uint64_t(s.spec().height)), 0};
  };
  if (kind == 3 && nets.size() > 5) {
    e.kind = EditRequest::Kind::RemoveNet;
    e.net = nets[rng() % nets.size()].name;
  } else if (kind == 2) {
    e.kind = EditRequest::Kind::AddNet;
    e.net = "tf" + std::to_string(caseId) + "_" + std::to_string(step);
    const GridNode a = node();
    GridNode b = node();
    while (b == a) b = node();
    e.pins = {Pin{{a}}, Pin{{b}}};
  } else {
    e.kind = EditRequest::Kind::MovePin;
    const NetSpec& n = nets[rng() % nets.size()];
    e.net = n.name;
    e.pinIndex = int(rng() % n.pins.size());
    e.pins = {Pin{{node()}}};
  }
  return e;
}

void expectSameOutcome(const RouteOutcome& eco, const RouteOutcome& cold,
                       int caseId, int step) {
  ASSERT_EQ(eco.designFp, cold.designFp)
      << "case " << caseId << " step " << step;
  EXPECT_EQ(eco.layerMaskFp, cold.layerMaskFp);
  EXPECT_EQ(eco.report, cold.report);
  EXPECT_EQ(eco.csvRow, cold.csvRow);
  EXPECT_EQ(eco.stats.totalNets, cold.stats.totalNets);
  EXPECT_EQ(eco.stats.routedNets, cold.stats.routedNets);
  EXPECT_EQ(eco.stats.wirelength, cold.stats.wirelength);
  EXPECT_EQ(eco.stats.vias, cold.stats.vias);
  EXPECT_EQ(eco.stats.worstSlack, cold.stats.worstSlack);
  EXPECT_EQ(eco.stats.negotiateIters, cold.stats.negotiateIters);
  EXPECT_EQ(eco.stats.negotiateOverflow, cold.stats.negotiateOverflow);
}

TEST(TimingFuzz, EcoReplaysWithNegotiationMatchColdRoutes) {
  constexpr int kCases = 25;
  constexpr int kEditsPerCase = 2;
  std::int64_t totalMemoHits = 0;
  for (int caseId = 0; caseId < kCases; ++caseId) {
    std::mt19937_64 rng(0x71b10000u + std::uint64_t(caseId));
    MaskCache cache;
    Session eco("eco", ecoSpec(1 + std::uint64_t(caseId % 7)), &cache,
                negotiateOpts(1));
    eco.routeFull();
    for (int step = 0; step < kEditsPerCase; ++step) {
      const EditRequest e = randomEdit(rng, eco, caseId, step);
      std::string err;
      const std::optional<RouteOutcome> out = eco.applyEdit(e, &err);
      if (!out) continue;  // rejected edit: no run happened
      totalMemoHits += out->memoHits;

      MaskCache coldCache;
      Session cold("cold", ecoSpec(1 + std::uint64_t(caseId % 7)),
                   &coldCache, negotiateOpts(1));
      cold.setNets(eco.netSpecs());
      const RouteOutcome ref = cold.routeFull();
      expectSameOutcome(*out, ref, caseId, step);
      if (HasFatalFailure()) return;
    }
  }
  // Negotiation must not defeat memoization: replayed searches that re-see
  // the same history base must verify and hit.
  EXPECT_GT(totalMemoHits, 0);
}

TEST(TimingFuzz, EcoWaveReplaysWithNegotiationMatchColdSerial) {
  constexpr int kCases = 10;
  setParallelThreads(8);
  for (int caseId = 0; caseId < kCases; ++caseId) {
    std::mt19937_64 rng(0x71b20000u + std::uint64_t(caseId));
    MaskCache cache;
    Session eco("eco", ecoSpec(2 + std::uint64_t(caseId % 5)), &cache,
                negotiateOpts(4));
    eco.setThreads(4);
    eco.routeFull();
    const EditRequest e = randomEdit(rng, eco, caseId, 0);
    std::string err;
    const std::optional<RouteOutcome> out = eco.applyEdit(e, &err);
    if (!out) continue;

    MaskCache coldCache;
    Session cold("cold", ecoSpec(2 + std::uint64_t(caseId % 5)), &coldCache,
                 negotiateOpts(1));
    // Same thread budget: the CSV row's thread column reports it. Serial
    // here means routeJobs=1 (sequential commits), not a 1-thread run.
    cold.setThreads(4);
    cold.setNets(eco.netSpecs());
    const RouteOutcome ref = cold.routeFull();
    expectSameOutcome(*out, ref, caseId, 0);
    if (HasFatalFailure()) break;
  }
  setParallelThreads(0);
}

}  // namespace
}  // namespace sadp
