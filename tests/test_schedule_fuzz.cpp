// Randomized scheduler-determinism fuzz suite (ctest label `fuzz`): the
// band scheduler may change WHO computes each tiled-morphology band --
// serial, static shared-cursor, or dynamic work stealing with arbitrary
// cost hints -- but never WHAT comes out. Every trial draws a random
// layout, thread count, tile width, trace level, and cost model, then
// asserts mask fingerprints, rasterToNmRects output, the overlay report,
// and the full metric counter snapshot are byte-identical across the
// serial / static / dynamic runs (and that the mask planes also match the
// untiled whole-window reference). Run under -DSADP_SANITIZE=thread, the
// same trials race-check the work-stealing queues.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "run/run_context.hpp"
#include "sadp/decompose.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"

namespace sadp {
namespace {

const DesignRules kRules;  // paper's 10 nm-node instance

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}
Fragment vw(NetId net, Track x, Track y0, Track y1) {
  return Fragment{x, y0, x + 1, y1, net};
}

/// Seeded random layer. Window width classes span one raster word up to
/// ~15 words so every band count occurs; a skew knob occasionally packs
/// most fragments into the leftmost fifth of the window, the regime where
/// static and dynamic schedules actually assign bands differently.
std::vector<ColoredFragment> randomFragments(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const int kMaxX[] = {12, 48, 130, 230};
  std::uniform_int_distribution<int> widthPick(0, 3);
  const int maxX = kMaxX[widthPick(rng)];
  std::bernoulli_distribution skewed(0.4), horiz(0.7), second(0.5);
  const bool skew = skewed(rng);
  std::uniform_int_distribution<int> nF(1, 14), dxAll(0, maxX - 2),
      dxSkew(0, std::max(1, maxX / 5)), dy(0, 14), len(1, 12);
  std::vector<ColoredFragment> frags;
  const int n = nF(rng);
  for (int i = 0; i < n; ++i) {
    const Color c = second(rng) ? Color::Second : Color::Core;
    // Skewed trials keep ~7/8 of the fragments in the left fifth.
    const bool left = skew && (i % 8 != 0);
    const int x0 = left ? dxSkew(rng) : dxAll(rng);
    if (horiz(rng)) {
      const int x1 = std::min(maxX, x0 + 1 + len(rng));
      frags.push_back(
          {hw(NetId(i + 1), Track(x0), Track(x1), Track(dy(rng))), c});
    } else {
      const int y0 = dy(rng);
      frags.push_back({vw(NetId(i + 1), Track(x0), Track(y0),
                          Track(y0 + 1 + len(rng) / 3)),
                       c});
    }
  }
  return frags;
}

/// Everything one decomposition run must reproduce byte-for-byte.
struct RunDigest {
  std::array<std::uint64_t, 6> planes;
  OverlayReport report;
  std::vector<Rect> cutRects;
  std::vector<Rect> conflictBoxes;
  std::vector<CounterSample> counters;
};

RunDigest runOnce(const std::vector<ColoredFragment>& frags, int threads,
                  int tileWords, BandSchedule schedule, TraceLevel lvl,
                  const CostHints* hints) {
  RunContext ctx;
  ctx.setThreadCount(threads);
  ctx.setTraceLevel(lvl);
  DecomposeOptions opts;
  opts.tileWords = tileWords;
  opts.schedule = schedule;
  opts.costHints = hints;
  opts.ctx = &ctx;
  const LayerDecomposition d = decomposeLayer(frags, kRules, opts);
  RunDigest out;
  out.planes = {fingerprint(d.target),  fingerprint(d.coreMask),
                fingerprint(d.spacer),  fingerprint(d.cut),
                fingerprint(d.assists), fingerprint(d.bridges)};
  out.report = d.report;
  out.cutRects = rasterToNmRects(d.cut, d.windowNm);
  out.conflictBoxes = d.conflictBoxesNm;
  out.counters = ctx.metrics().counterSnapshot();
  return out;
}

void expectSameDigest(const RunDigest& got, const RunDigest& ref,
                      const std::string& what) {
  EXPECT_EQ(got.planes, ref.planes) << what;
  EXPECT_TRUE(got.report == ref.report) << what;
  EXPECT_EQ(got.cutRects, ref.cutRects) << what;
  EXPECT_EQ(got.conflictBoxes, ref.conflictBoxes) << what;
  ASSERT_EQ(got.counters.size(), ref.counters.size()) << what;
  for (std::size_t i = 0; i < ref.counters.size(); ++i) {
    EXPECT_EQ(got.counters[i].first, ref.counters[i].first) << what;
    EXPECT_EQ(got.counters[i].second, ref.counters[i].second)
        << what << " counter " << ref.counters[i].first;
  }
}

TEST(ScheduleFuzz, SerialStaticDynamicByteIdentical) {
  // Open the process-wide worker pool: on a 1-CPU host the default
  // context's budget would otherwise force every loop inline and the
  // multi-threaded runs would never exercise the stealing path.
  setParallelThreads(8);
  for (std::uint32_t seed = 1; seed <= 100; ++seed) {
    std::mt19937 rng(seed * 7919u + 17u);
    const std::vector<ColoredFragment> frags = randomFragments(seed);
    const int threads = 2 + int(rng() % 6);
    const int kTileChoices[] = {1, 2, 3, 5, 8, 0};
    const int tileWords = kTileChoices[rng() % 6];
    const TraceLevel lvl =
        std::array{TraceLevel::Off, TraceLevel::Aggregate,
                   TraceLevel::Full}[rng() % 3];
    // Random cost model for the dynamic run, including degenerate
    // all-equal and population-only weightings: a mispredicted weight may
    // cost balance, never a single output bit.
    std::uniform_real_distribution<double> wWord(0.0, 4.0), wPx(0.0, 1.0);
    const CostHints hints{wWord(rng), wPx(rng)};
    const std::string what =
        "seed=" + std::to_string(seed) +
        " threads=" + std::to_string(threads) +
        " tileWords=" + std::to_string(tileWords);

    const RunDigest serial = runOnce(frags, 1, tileWords,
                                     BandSchedule::Static, lvl, nullptr);
    expectSameDigest(runOnce(frags, threads, tileWords, BandSchedule::Static,
                             lvl, nullptr),
                     serial, what + " static");
    expectSameDigest(runOnce(frags, threads, tileWords, BandSchedule::Dynamic,
                             lvl, &hints),
                     serial, what + " dynamic");
    // The whole-window reference path shares the planes/report, not the
    // tiling counters.
    const RunDigest untiled = runOnce(frags, 1, -1, BandSchedule::Static,
                                      TraceLevel::Off, nullptr);
    EXPECT_EQ(untiled.planes, serial.planes) << what << " untiled";
    EXPECT_TRUE(untiled.report == serial.report) << what << " untiled";
    EXPECT_EQ(untiled.cutRects, serial.cutRects) << what << " untiled";
  }
  setParallelThreads(0);
}

TEST(ScheduleFuzz, FittedCostHintsRefineScheduleWithoutChangingOutput) {
  // The trace -> cost-model loop: run once traced at Full, fit hints from
  // the per-band spans, install them on a fresh context, and re-run. The
  // refined schedule must reproduce the unhinted output exactly.
  setParallelThreads(4);
  const std::vector<ColoredFragment> frags = randomFragments(11);
  RunContext traced;
  traced.setThreadCount(4);
  traced.setTraceLevel(TraceLevel::Full);
  DecomposeOptions opts;
  opts.tileWords = 1;
  opts.ctx = &traced;
  const LayerDecomposition ref = decomposeLayer(frags, kRules, opts);
  const CostHints fitted = fitCostHints(traced);
  // A traced tiled run always yields a fit (>= 2 band spans); wall clocks
  // are positive, so at least one model term is.
  EXPECT_FALSE(fitted.empty());

  RunContext hinted;
  hinted.setThreadCount(4);
  hinted.setCostHints(fitted);
  EXPECT_FALSE(hinted.costHints().empty());
  DecomposeOptions opts2;
  opts2.tileWords = 1;
  opts2.ctx = &hinted;
  const LayerDecomposition got = decomposeLayer(frags, kRules, opts2);
  EXPECT_EQ(fingerprint(got.target), fingerprint(ref.target));
  EXPECT_EQ(fingerprint(got.coreMask), fingerprint(ref.coreMask));
  EXPECT_EQ(fingerprint(got.spacer), fingerprint(ref.spacer));
  EXPECT_EQ(fingerprint(got.cut), fingerprint(ref.cut));
  EXPECT_TRUE(got.report == ref.report);
  setParallelThreads(0);
}

TEST(ScheduleFuzz, FitWithoutTracedRunIsEmpty) {
  RunContext ctx;  // nothing ran under it
  EXPECT_TRUE(fitCostHints(ctx).empty());
}

}  // namespace
}  // namespace sadp
