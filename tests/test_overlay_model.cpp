// Tests for OverlayModel: fragment extraction, scenario registration,
// per-layer graphs, and rip-up bookkeeping.
#include "ocg/overlay_model.hpp"

#include <gtest/gtest.h>

namespace sadp {
namespace {

std::vector<GridNode> hPath(Track x0, Track x1, Track y, int layer = 0) {
  std::vector<GridNode> p;
  for (Track x = x0; x < x1; ++x) p.push_back({x, y, std::int16_t(layer)});
  return p;
}

TEST(OverlayModel, FragmentExtractionStraight) {
  const auto frags = OverlayModel::fragmentsOf(1, hPath(2, 8, 3), 0);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], (Fragment{2, 3, 8, 4, 1}));
}

TEST(OverlayModel, FragmentExtractionLShape) {
  std::vector<GridNode> p = hPath(0, 5, 0);
  for (Track y = 1; y < 4; ++y) p.push_back({4, y, 0});
  const auto frags = OverlayModel::fragmentsOf(1, p, 0);
  ASSERT_EQ(frags.size(), 2u);
  // One row rect and one column rect.
  std::int64_t cells = 0;
  for (const Fragment& f : frags) {
    cells += std::int64_t(f.width()) * f.height();
  }
  EXPECT_EQ(cells, 5 + 3);
}

TEST(OverlayModel, FragmentsFilterByLayer) {
  std::vector<GridNode> p = hPath(0, 3, 0, 0);
  p.push_back({2, 0, 1});
  EXPECT_EQ(OverlayModel::fragmentsOf(1, p, 0).size(), 1u);
  EXPECT_EQ(OverlayModel::fragmentsOf(1, p, 1).size(), 1u);
  EXPECT_EQ(OverlayModel::fragmentsOf(1, p, 2).size(), 0u);
}

TEST(OverlayModel, AdjacentWiresCreateT1aEdge) {
  OverlayModel m(3, 50, 50);
  m.addNet(1, hPath(0, 10, 5));
  const AddNetResult r = m.addNet(2, hPath(0, 10, 6));
  EXPECT_FALSE(r.hardViolation);  // two nets: 2-colorable
  const auto& g = m.graph(0);
  EXPECT_EQ(g.vertexCount(), 2u);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].cls.type, ScenarioType::T1a);
}

TEST(OverlayModel, OddCycleOfHardEdgesFlagsViolation) {
  OverlayModel m(3, 50, 50);
  // Three mutually 1-track-adjacent long wires: rows 5, 6, 7. Net1-net2 and
  // net2-net3 are adjacent pairs; net1-net3 is at distance 2 (type 2-a,
  // nonhard). For a TRUE hard odd cycle use hard-same (1-b) to close it.
  m.addNet(1, hPath(0, 10, 5));
  m.addNet(2, hPath(0, 10, 6));
  const AddNetResult r3 = m.addNet(3, hPath(0, 10, 7));
  EXPECT_FALSE(r3.hardViolation);  // 1-3 at @2 is nonhard
  EXPECT_FALSE(m.hasHardViolation());
}

TEST(OverlayModel, PerLayerGraphsIndependent) {
  OverlayModel m(3, 50, 50);
  m.addNet(1, hPath(0, 10, 5, 0));
  m.addNet(2, hPath(0, 10, 6, 1));
  EXPECT_EQ(m.graph(0).vertexCount(), 1u);
  EXPECT_EQ(m.graph(1).vertexCount(), 1u);
  EXPECT_EQ(m.graph(0).edges().size(), 0u);
  EXPECT_EQ(m.graph(1).edges().size(), 0u);
}

TEST(OverlayModel, RemoveNetRetractsEverything) {
  OverlayModel m(3, 50, 50);
  m.addNet(1, hPath(0, 10, 5));
  m.addNet(2, hPath(0, 10, 6));
  EXPECT_EQ(m.graph(0).edges().size(), 1u);
  m.removeNet(2);
  EXPECT_TRUE(m.netFragments(2, 0).empty());
  // Re-adding elsewhere must not see stale fragments.
  const AddNetResult r = m.addNet(2, hPath(20, 30, 20));
  EXPECT_FALSE(r.hardViolation);
  int alive = 0;
  for (const OcgEdge& e : m.graph(0).edges()) {
    if (e.alive) ++alive;
  }
  EXPECT_EQ(alive, 0);
}

TEST(OverlayModel, Type2bCountReported) {
  OverlayModel m(3, 50, 50);
  m.addNet(1, hPath(0, 10, 8));  // horizontal wire on row 8
  // Vertical wire whose tip stops 2 tracks below the horizontal one
  // (occupies rows 0..6, so the track gap to row 8 is 2).
  std::vector<GridNode> v;
  for (Track y = 0; y < 7; ++y) v.push_back({5, y, 0});
  const AddNetResult r = m.addNet(2, v);
  EXPECT_EQ(r.type2bCount, 1);
}

TEST(OverlayModel, PseudoColorAvoidsOverlay) {
  OverlayModel m(3, 50, 50);
  m.addNet(1, hPath(0, 10, 5));
  m.pseudoColor(1);
  m.addNet(2, hPath(0, 10, 6));
  m.pseudoColor(2);
  // T1a edge: colors must differ.
  EXPECT_NE(m.colorOf(1, 0), m.colorOf(2, 0));
  EXPECT_EQ(m.totalOverlayUnits(), 0);
}

TEST(OverlayModel, OverlayUnitsOfNet) {
  OverlayModel m(3, 50, 50);
  // Diagonal 3-a pair: same colors induce one unit on each side.
  m.addNet(1, hPath(0, 5, 5));
  m.addNet(2, hPath(5, 10, 6));
  m.graph(0).setColor(1, Color::Core);
  m.graph(0).setColor(2, Color::Core);
  EXPECT_GT(m.overlayUnitsOfNet(1), 0);
  EXPECT_EQ(m.overlayUnitsOfNet(1), m.overlayUnitsOfNet(2));
  m.graph(0).setColor(2, Color::Second);
  EXPECT_EQ(m.overlayUnitsOfNet(1), 0);
}

TEST(OverlayModel, FragmentsInWindow) {
  OverlayModel m(3, 50, 50);
  m.addNet(1, hPath(0, 10, 5));
  m.addNet(2, hPath(20, 30, 20));
  const auto near = m.fragmentsInWindow(0, Rect{0, 0, 15, 15});
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].net, 1);
  const auto all = m.fragmentsInWindow(0, Rect{0, 0, 50, 50});
  EXPECT_EQ(all.size(), 2u);
}

TEST(OverlayModel, MultiLayerNetColorsIndependently) {
  OverlayModel m(3, 50, 50);
  std::vector<GridNode> p = hPath(0, 10, 5, 0);
  auto l1 = hPath(0, 10, 5, 1);
  p.insert(p.end(), l1.begin(), l1.end());
  m.addNet(1, p);
  m.graph(0).setColor(1, Color::Core);
  m.graph(1).setColor(1, Color::Second);
  EXPECT_EQ(m.colorOf(1, 0), Color::Core);
  EXPECT_EQ(m.colorOf(1, 1), Color::Second);
}

}  // namespace
}  // namespace sadp
