// Tests for the evaluation harness: table formatting, CSV emission, and
// the least-squares runtime-exponent fit of Fig. 20.
#include "eval/eval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace sadp {
namespace {

ExperimentRow row(const char* circuit, const char* router, int nets,
                  double cpu, std::int64_t ovlNm = 100, int conflicts = 0) {
  ExperimentRow r;
  r.circuit = circuit;
  r.router = router;
  r.nets = nets;
  r.routability = 95.0;
  r.overlayUnits = 10;
  r.overlayNm = ovlNm;
  r.conflicts = conflicts;
  r.cpuSeconds = cpu;
  return r;
}

TEST(Eval, RuntimeExponentRecoversSlope) {
  // t = c * n^1.5 exactly.
  std::vector<ExperimentRow> rows;
  for (int n : {100, 200, 400, 800, 1600}) {
    rows.push_back(row("x", "ours", n, 1e-6 * std::pow(double(n), 1.5)));
  }
  auto e = runtimeExponent(rows);
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(*e, 1.5, 1e-6);
}

TEST(Eval, RuntimeExponentIgnoresNaAndDegenerate) {
  std::vector<ExperimentRow> rows;
  EXPECT_FALSE(runtimeExponent(rows).has_value());
  rows.push_back(row("x", "ours", 100, 1.0));
  EXPECT_FALSE(runtimeExponent(rows).has_value());
  ExperimentRow na = row("x", "ours", 200, 2.0);
  na.na = true;
  rows.push_back(na);
  EXPECT_FALSE(runtimeExponent(rows).has_value());  // only 1 usable point
  rows.push_back(row("x", "ours", 400, 4.0));
  EXPECT_TRUE(runtimeExponent(rows).has_value());
}

TEST(Eval, TablePrintsAllRowsAndCompLine) {
  std::vector<ExperimentRow> rows{
      row("T1", "ours", 100, 1.0, 100, 0),
      row("T1", "base", 100, 2.0, 1000, 10),
  };
  std::ostringstream os;
  printComparisonTable(os, rows, "ours");
  const std::string s = os.str();
  EXPECT_NE(s.find("T1"), std::string::npos);
  EXPECT_NE(s.find("ours"), std::string::npos);
  EXPECT_NE(s.find("base"), std::string::npos);
  EXPECT_NE(s.find("Comp."), std::string::npos);
  // base has 10x the overlay -> its comp ratio begins with "10."
  EXPECT_NE(s.find("10.0"), std::string::npos);
}

TEST(Eval, TableRendersNa) {
  ExperimentRow na = row("T9", "Du[10]", 12000, 100000.0);
  na.na = true;
  std::ostringstream os;
  printComparisonTable(os, {na}, "ours");
  EXPECT_NE(os.str().find("NA"), std::string::npos);
}

TEST(Eval, CsvRoundTripStructure) {
  std::ostringstream os;
  writeCsv(os, {row("T1", "ours", 100, 1.0)});
  const std::string s = os.str();
  EXPECT_NE(s.find("circuit,router"), std::string::npos);
  EXPECT_NE(s.find("T1,ours,100"), std::string::npos);
  // Exactly one header + one data line.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(Eval, RunProposedProducesSaneRow) {
  const BenchmarkSpec spec = paperBenchmark("Test1").scaled(0.04);
  const ExperimentRow r = runProposed(spec);
  EXPECT_EQ(r.circuit, "Test1");
  EXPECT_EQ(r.router, "ours");
  EXPECT_GT(r.nets, 0);
  EXPECT_GT(r.routability, 50.0);
  EXPECT_GE(r.overlayUnits, 0);
  EXPECT_LT(r.overlayUnits, kHardCost);  // forbidden assignments excluded
  EXPECT_GT(r.cpuSeconds, 0.0);
  EXPECT_FALSE(r.na);
}

}  // namespace
}  // namespace sadp
