// Oracle tests for the net-level timing analysis (route/timing.hpp) and
// the PathFinder negotiation pre-phase (route/router.cpp):
//
//  * topo order and slack checked against a brute-force longest-path
//    oracle on randomized DAGs of up to 12 nets;
//  * cyclic inputs rejected with a structured TimingCycleError naming a
//    real cycle of the input graph;
//  * negotiated congestion checked against an exhaustive-ordering oracle
//    on small two-net contention fixtures;
//  * strict decimal parsing for the new CLI/service knobs.
#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "route/timing.hpp"
#include "util/parse.hpp"

namespace sadp {
namespace {

// ---------------------------------------------------------------------
// Brute-force reference: longest path ending at / starting from each net
// by plain DFS over every path (fine at <= 12 nets).

struct Oracle {
  std::vector<std::vector<NetId>> preds, succs;
  std::vector<std::int64_t> delays;

  Oracle(std::size_t n, std::span<const TimingEdge> edges,
         std::span<const std::int64_t> d)
      : preds(n), succs(n), delays(d.begin(), d.end()) {
    for (const TimingEdge& e : edges) {
      preds[std::size_t(e.to)].push_back(e.from);
      succs[std::size_t(e.from)].push_back(e.to);
    }
  }

  std::int64_t arrival(NetId v) const {
    std::int64_t best = 0;
    for (NetId p : preds[std::size_t(v)]) {
      best = std::max(best, arrival(p));
    }
    return best + delays[std::size_t(v)];
  }

  /// Longest delay of any path starting at v (inclusive of v).
  std::int64_t tail(NetId v) const {
    std::int64_t best = 0;
    for (NetId s : succs[std::size_t(v)]) {
      best = std::max(best, tail(s));
    }
    return best + delays[std::size_t(v)];
  }
};

std::vector<TimingEdge> randomDag(std::mt19937_64& rng, int n,
                                  double density) {
  // Edges only from lower to higher id: acyclic by construction.
  std::vector<TimingEdge> edges;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (NetId a = 0; a < n; ++a) {
    for (NetId b = a + 1; b < n; ++b) {
      if (coin(rng) < density) edges.push_back({a, b});
    }
  }
  return edges;
}

TEST(TimingOracle, SlackMatchesBruteForceOnRandomDags) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int> sizeDist(1, 12);
  std::uniform_int_distribution<std::int64_t> delayDist(1, 40);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = sizeDist(rng);
    const std::vector<TimingEdge> edges = randomDag(rng, n, 0.3);
    std::vector<std::int64_t> delays(std::size_t(n), 0);
    for (auto& d : delays) d = delayDist(rng);
    TimingOptions opts;
    opts.period = 0;  // auto-derive
    const TimingResult res = analyzeTiming(std::size_t(n), edges, delays,
                                           opts);
    ASSERT_TRUE(res.ok()) << "trial " << trial;
    const TimingAnalysis& ta = res.analysis;
    const Oracle oracle(std::size_t(n), edges, delays);

    // Critical path = max over all nets of the brute-force arrival.
    std::int64_t cp = 0;
    for (NetId v = 0; v < n; ++v) cp = std::max(cp, oracle.arrival(v));
    EXPECT_EQ(ta.criticalPath, cp) << "trial " << trial;
    EXPECT_EQ(ta.period, cp + cp * opts.periodMarginPct / 100)
        << "trial " << trial;

    // Topological order: every edge goes forward, every net appears once.
    std::vector<int> posOf(std::size_t(n), -1);
    ASSERT_EQ(ta.topoOrder.size(), std::size_t(n));
    for (std::size_t i = 0; i < ta.topoOrder.size(); ++i) {
      const NetId v = ta.topoOrder[i];
      ASSERT_GE(v, 0);
      ASSERT_LT(v, n);
      EXPECT_EQ(posOf[std::size_t(v)], -1) << "duplicate in topo order";
      posOf[std::size_t(v)] = int(i);
    }
    for (const TimingEdge& e : edges) {
      EXPECT_LT(posOf[std::size_t(e.from)], posOf[std::size_t(e.to)])
          << "edge " << e.from << "->" << e.to << " not forward";
    }

    std::int64_t worst = std::numeric_limits<std::int64_t>::max();
    for (NetId v = 0; v < n; ++v) {
      const NetTiming& nt = ta.nets[std::size_t(v)];
      const std::int64_t arr = oracle.arrival(v);
      EXPECT_EQ(nt.arrival, arr) << "net " << v << " trial " << trial;
      // slack(v) = period - (longest path through v): the slack identity
      // arrival + tail - delay = longest-through is the oracle form.
      const std::int64_t through = arr + oracle.tail(v) - delays[std::size_t(v)];
      EXPECT_EQ(nt.slack, ta.period - through)
          << "net " << v << " trial " << trial;
      EXPECT_EQ(nt.required - nt.arrival, nt.slack);
      EXPECT_GE(nt.crit64, 0);
      EXPECT_LE(nt.crit64, 64);
      worst = std::min(worst, nt.slack);
    }
    EXPECT_EQ(ta.worstSlack, worst);

    // Criticality: a worst-slack net maps to 64 (or all slacks equal -> 0).
    std::int64_t maxSlack = std::numeric_limits<std::int64_t>::min();
    for (NetId v = 0; v < n; ++v) {
      maxSlack = std::max(maxSlack, ta.nets[std::size_t(v)].slack);
    }
    for (NetId v = 0; v < n; ++v) {
      const NetTiming& nt = ta.nets[std::size_t(v)];
      if (maxSlack == worst) {
        EXPECT_EQ(nt.crit64, 0);
      } else if (nt.slack == worst) {
        EXPECT_EQ(nt.crit64, 64);
      }
    }
  }
}

TEST(TimingOracle, DeterministicAcrossRepeatedRuns) {
  std::mt19937_64 rng(7);
  const std::vector<TimingEdge> edges = randomDag(rng, 12, 0.4);
  std::vector<std::int64_t> delays(12);
  for (auto& d : delays) d = std::int64_t(rng() % 50 + 1);
  const TimingResult a = analyzeTiming(12, edges, delays, {});
  const TimingResult b = analyzeTiming(12, edges, delays, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.analysis.topoOrder, b.analysis.topoOrder);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(a.analysis.nets[i].slack, b.analysis.nets[i].slack);
    EXPECT_EQ(a.analysis.nets[i].crit64, b.analysis.nets[i].crit64);
  }
}

TEST(TimingOracle, FixedPeriodOverridesAutoDerivation) {
  // Chain 0 -> 1 -> 2 with delays 10 each: critical path 30.
  const std::vector<TimingEdge> edges{{0, 1}, {1, 2}};
  const std::vector<std::int64_t> delays{10, 10, 10};
  TimingOptions opts;
  opts.period = 25;  // tighter than the path: negative slack
  const TimingResult res = analyzeTiming(3, edges, delays, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.analysis.period, 25);
  EXPECT_EQ(res.analysis.worstSlack, -5);
  EXPECT_EQ(res.analysis.nets[2].arrival, 30);
}

// ---------------------------------------------------------------------
// Cycle handling.

TEST(TimingOracle, CycleRejectedWithStructuredError) {
  // 0 -> 1 -> 2 -> 0 plus an off-cycle net 3.
  const std::vector<TimingEdge> edges{{0, 1}, {1, 2}, {2, 0}, {1, 3}};
  const std::vector<std::int64_t> delays{1, 1, 1, 1};
  const TimingResult res = analyzeTiming(4, edges, delays, {});
  ASSERT_FALSE(res.ok());
  const TimingCycleError& err = *res.error;
  EXPECT_FALSE(err.message.empty());
  ASSERT_EQ(err.cycle.size(), 3u);
  EXPECT_EQ(err.cycle.front(), 0) << "smallest NetId must lead the cycle";
  // The reported walk must follow real edges of the input, closing back
  // to the first element.
  std::set<std::pair<NetId, NetId>> edgeSet;
  for (const TimingEdge& e : edges) edgeSet.insert({e.from, e.to});
  for (std::size_t i = 0; i < err.cycle.size(); ++i) {
    const NetId a = err.cycle[i];
    const NetId b = err.cycle[(i + 1) % err.cycle.size()];
    EXPECT_TRUE(edgeSet.count({a, b})) << a << "->" << b << " not an edge";
  }
}

TEST(TimingOracle, SelfAndOutOfRangeEdgesAreIgnored) {
  // deriveTimingEdges never emits these; analyzeTiming drops them rather
  // than tripping over malformed service input.
  const std::vector<TimingEdge> edges{{1, 1}, {-1, 0}, {0, 9}};
  const std::vector<std::int64_t> delays{3, 5};
  const TimingResult res = analyzeTiming(2, edges, delays, {});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.analysis.criticalPath, 5);
}

TEST(TimingOracle, CycleFoundBehindDeadEndStuckNets) {
  // Cycle 1 -> 2 -> 3 -> 1; net 0 hangs off the cycle (1 -> 0) so it is
  // "stuck" in Kahn terms but on no cycle, and it has the smallest id --
  // the walk must not dead-end in it.
  const std::vector<TimingEdge> edges{{1, 2}, {2, 3}, {3, 1}, {1, 0}};
  const std::vector<std::int64_t> delays{1, 1, 1, 1};
  const TimingResult res = analyzeTiming(4, edges, delays, {});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error->cycle, (std::vector<NetId>{1, 2, 3}));
}

TEST(TimingOracle, PruneYieldsAcyclicDeterministicSubgraph) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + int(rng() % 10);
    // Random directed graph WITH cycles: any pair, any direction.
    std::vector<TimingEdge> edges;
    const int m = int(rng() % (std::size_t(n) * 2 + 1));
    for (int k = 0; k < m; ++k) {
      const NetId a = NetId(rng() % std::size_t(n));
      const NetId b = NetId(rng() % std::size_t(n));
      if (a != b) edges.push_back({a, b});
    }
    std::sort(edges.begin(), edges.end(), [](const TimingEdge& x,
                                             const TimingEdge& y) {
      return std::pair(x.from, x.to) < std::pair(y.from, y.to);
    });
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    const std::vector<TimingEdge> kept =
        pruneTimingCycles(std::size_t(n), edges);
    EXPECT_LE(kept.size(), edges.size());
    // Determinism: same input, same output.
    EXPECT_EQ(kept, pruneTimingCycles(std::size_t(n), edges));
    // Acyclic: analysis must succeed.
    std::vector<std::int64_t> delays(std::size_t(n), 1);
    EXPECT_TRUE(analyzeTiming(std::size_t(n), kept, delays, {}).ok())
        << "trial " << trial;
    // Maximality: every dropped edge closes a cycle with the kept set.
    std::set<std::pair<NetId, NetId>> keptSet;
    for (const TimingEdge& e : kept) keptSet.insert({e.from, e.to});
    for (const TimingEdge& e : edges) {
      if (keptSet.count({e.from, e.to})) continue;
      std::vector<TimingEdge> with = kept;
      with.push_back(e);
      EXPECT_FALSE(analyzeTiming(std::size_t(n), with, delays, {}).ok())
          << "edge " << e.from << "->" << e.to
          << " was dropped but closes no cycle, trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------
// Delay estimation plumbing.

TEST(TimingOracle, EstimateAndPathDelayAgreeOnUnits) {
  TimingOptions opts;
  opts.delayPerTrack = 3;
  opts.delayPerVia = 7;
  Netlist nl;
  nl.add("n0", Pin{{{0, 0, 0}}}, Pin{{{4, 2, 0}}});
  // HPWL of the pin bbox is (4) + (2) = 6 tracks; 2 pins -> 1 via charge.
  EXPECT_EQ(estimateNetDelay(nl.nets[0], opts), 6 * 3 + 7);
  EXPECT_EQ(pathDelay(6, 1, opts), 6 * 3 + 7);
  const std::vector<std::int64_t> all = estimateNetDelays(nl, opts);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], 25);
}

TEST(TimingOracle, ProximityEdgesLinkSinkToNearbySource) {
  TimingOptions opts;
  opts.cellRadius = 2;
  Netlist nl;
  nl.add("a", Pin{{{0, 0, 0}}}, Pin{{{5, 5, 0}}});   // sink at (5,5)
  nl.add("b", Pin{{{6, 5, 0}}}, Pin{{{9, 9, 0}}});   // source 1 track away
  nl.add("c", Pin{{{9, 0, 0}}}, Pin{{{0, 9, 0}}});   // source far from both
  const std::vector<TimingEdge> edges = deriveTimingEdges(nl, opts);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, 0);
  EXPECT_EQ(edges[0].to, 1);
}

// ---------------------------------------------------------------------
// Negotiated congestion vs an exhaustive-ordering oracle. Two nets whose
// straight routes fight over the same corridor: whatever one-shot order
// the oracle tries, negotiation must end no worse (overflow-free) and
// route both nets.

RoutingStats routeOnce(const Netlist& nl, Track w, Track h,
                       const RouterOptions& opts) {
  RoutingGrid grid(w, h, 3, DesignRules{});
  Netlist copy = nl;
  OverlayAwareRouter router(grid, copy, opts);
  return router.run();
}

TEST(TimingOracle, NegotiationMatchesExhaustiveOrderOnContentionFixture) {
  // Two nets crossing the same middle column of a narrow grid. With both
  // net orders, one-shot routing succeeds here (the fixture is small), so
  // the oracle's best routability is 100%; negotiation must reach the
  // same, with zero final overflow, and report its iteration stats.
  Netlist nl;
  nl.add("a", Pin{{{2, 4, 0}}}, Pin{{{13, 4, 0}}});
  nl.add("b", Pin{{{2, 6, 0}}}, Pin{{{13, 6, 0}}});

  int bestRouted = 0;
  for (int order = 0; order < 2; ++order) {
    Netlist perm;
    if (order == 0) {
      perm = nl;
    } else {
      perm.add("b", nl.nets[1].source, nl.nets[1].target);
      perm.add("a", nl.nets[0].source, nl.nets[0].target);
    }
    const RoutingStats s = routeOnce(perm, 16, 12, RouterOptions{});
    bestRouted = std::max(bestRouted, s.routedNets);
  }

  RouterOptions neg;
  neg.negotiate = true;
  neg.timingDriven = true;
  const RoutingStats s = routeOnce(nl, 16, 12, neg);
  EXPECT_EQ(s.routedNets, bestRouted);
  EXPECT_EQ(s.negotiateOverflow, 0);
  EXPECT_GE(s.negotiateIters, 1);
  EXPECT_TRUE(s.timingValid);
}

TEST(TimingOracle, NegotiationConvergesOnCongestedDemo) {
  const BenchmarkSpec spec = [] {
    BenchmarkSpec s;
    s.name = "congested";
    s.netCount = 120;
    s.width = 48;
    s.height = 48;
    return s;
  }();
  BenchmarkInstance inst = makeBenchmark(spec);
  RouterOptions neg;
  neg.negotiate = true;
  neg.timingDriven = true;
  OverlayAwareRouter router(inst.grid, inst.netlist, neg);
  const RoutingStats s = router.run();
  EXPECT_EQ(s.negotiateOverflow, 0) << "negotiation failed to converge";
  EXPECT_GE(s.negotiateIters, 1);
  EXPECT_LE(s.negotiateIters, neg.maxNegotiateIters);
}

// ---------------------------------------------------------------------
// Strict decimal parsing for the new knobs.

TEST(ParseStrictDouble, AcceptsPlainDecimals) {
  EXPECT_EQ(parseStrictDouble("0"), 0.0);
  EXPECT_EQ(parseStrictDouble("2"), 2.0);
  EXPECT_EQ(parseStrictDouble("1.5"), 1.5);
  EXPECT_EQ(parseStrictDouble("-0.25"), -0.25);
  EXPECT_EQ(parseStrictDouble("10.0"), 10.0);
}

TEST(ParseStrictDouble, RejectsEverythingElse) {
  for (const char* bad :
       {"", "-", ".", "1.", ".5", "1e3", "1E3", "0x10", "inf", "nan", "1.5x",
        " 1", "1 ", "+1", "1.2.3", "--1"}) {
    EXPECT_FALSE(parseStrictDouble(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(ParseStrictDouble, RangeForm) {
  EXPECT_TRUE(parseStrictDoubleIn("0.5", 0.0, 1.0).has_value());
  EXPECT_FALSE(parseStrictDoubleIn("1.5", 0.0, 1.0).has_value());
  EXPECT_FALSE(parseStrictDoubleIn("-0.1", 0.0, 1.0).has_value());
}

}  // namespace
}  // namespace sadp
