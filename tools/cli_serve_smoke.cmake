# ctest smoke check of the routing service daemon: starts sadp_route_serve
# on a Unix socket, drives load/route/edit/query/stats through the
# reference client, asserts the structured-error paths (malformed request,
# unknown session, queue-deadline timeout), exercises the strict numeric
# option parsing, and verifies a graceful shutdown with a metrics dump.
# Invoked as:
#   cmake -DSERVE=<path-to-sadp_route_serve> -DCLIENT=<service_client.py>
#         -DOUT_DIR=<scratch dir> -P cli_serve_smoke.cmake
if(NOT SERVE OR NOT CLIENT OR NOT OUT_DIR)
  message(FATAL_ERROR "pass -DSERVE=<binary> -DCLIENT=<client.py> -DOUT_DIR=<dir>")
endif()

find_program(PYTHON3 python3)
if(NOT PYTHON3)
  message(STATUS "python3 not found; serve smoke skipped")
  return()
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(METRICS_FILE "${OUT_DIR}/serve_metrics.json")

# Strict numeric option parsing (shared parseStrict* helpers): trailing
# garbage and out-of-range values must be usage errors, not guesses.
foreach(badopt "--port;1x" "--port;70000" "--queue-depth;-1"
        "--session-cap;0x10")
  list(GET badopt 0 flag)
  list(GET badopt 1 value)
  execute_process(COMMAND "${SERVE}" ${flag} "${value}"
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "'${flag} ${value}' exited ${rc}, want usage error 2")
  endif()
endforeach()

# The protocol drive runs in one bash script so the daemon can live in the
# background; every step asserts its own expectation and the script is
# set -e, so the first broken invariant fails the test.
execute_process(
  COMMAND bash -e -c "
    sock='${OUT_DIR}/serve.sock'
    rm -f \"\$sock\"
    '${SERVE}' --socket \"\$sock\" --workers 2 --queue-depth 8 \
               --session-cap 2 --metrics '${METRICS_FILE}' &
    pid=\$!
    # A failed assertion must not orphan the daemon: it inherits this
    # test's output pipes and ctest would wait for them until timeout.
    trap 'kill \$pid 2>/dev/null || true' EXIT
    for i in \$(seq 100); do [ -S \"\$sock\" ] && break; sleep 0.1; done
    [ -S \"\$sock\" ] || { echo 'socket never appeared'; exit 1; }
    client() { '${PYTHON3}' '${CLIENT}' --socket \"\$sock\" \"\$@\"; }

    client req --json '{\"op\":\"load\",\"id\":1,\"session\":\"s\",\"nets\":40,\"width\":64,\"height\":64,\"seed\":3}' \
      | grep -q '\"ok\":true'
    client req --json '{\"op\":\"route\",\"id\":2,\"session\":\"s\"}' > '${OUT_DIR}/route.json'
    grep -q '\"design_fp\":' '${OUT_DIR}/route.json'
    client req --json '{\"op\":\"edit\",\"id\":3,\"session\":\"s\",\"kind\":\"move_pin\",\"net\":\"n5\",\"pin_index\":1,\"pin\":[33,20,0]}' \
      > '${OUT_DIR}/edit.json'
    grep -q '\"memo_hits\":' '${OUT_DIR}/edit.json'
    client req --json '{\"op\":\"query\",\"id\":4,\"session\":\"s\"}' | grep -q '\"routed\":true'
    client req --json '{\"op\":\"stats\",\"id\":5}' | grep -q '\"service.requests\"'

    # Structured error paths: each client call exits 0 only when the
    # server answers exactly the expected error code.
    client req --raw --json 'this is not json' --expect-error parse_error
    client req --raw --json '[1,2,3]' --expect-error bad_request
    client req --json '{\"op\":\"route\",\"session\":\"nope\"}' --expect-error unknown_session
    client req --json '{\"op\":\"frobnicate\"}' --expect-error unknown_op
    client req --json '{\"op\":\"edit\",\"session\":\"s\",\"kind\":\"move_pin\",\"net\":\"n5\",\"pin_index\":1,\"pin\":[999,0,0]}' \
      --expect-error bad_request
    # Timing/negotiation load options parse strictly: wrong JSON type or
    # out-of-range values answer bad_request without creating a session.
    client req --json '{\"op\":\"load\",\"session\":\"tb\",\"nets\":5,\"width\":16,\"height\":16,\"timing\":\"yes\"}' \
      --expect-error bad_request
    client req --json '{\"op\":\"load\",\"session\":\"tb\",\"nets\":5,\"width\":16,\"height\":16,\"negotiate\":1}' \
      --expect-error bad_request
    client req --json '{\"op\":\"load\",\"session\":\"tb\",\"nets\":5,\"width\":16,\"height\":16,\"negotiate\":true,\"negotiate_iters\":0}' \
      --expect-error bad_request
    client req --json '{\"op\":\"load\",\"session\":\"tb\",\"nets\":5,\"width\":16,\"height\":16,\"negotiate\":true,\"history_cost\":-0.5}' \
      --expect-error bad_request
    # timeout_ms:0 expires while queued -> deterministic timeout error.
    client req --json '{\"op\":\"route\",\"session\":\"s\",\"timeout_ms\":0}' --expect-error timeout
    # Session cap 2: third load is rejected.
    client req --json '{\"op\":\"load\",\"session\":\"s2\",\"nets\":5,\"width\":16,\"height\":16}' | grep -q '\"ok\":true'
    client req --json '{\"op\":\"load\",\"session\":\"s3\",\"nets\":5,\"width\":16,\"height\":16}' --expect-error session_cap

    client req --json '{\"op\":\"shutdown\"}' | grep -q '\"ok\":true'
    wait \$pid
    echo \"server_exit=\$?\"
  "
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve smoke failed (${rc})\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "server_exit=0")
  message(FATAL_ERROR "daemon did not exit cleanly:\n${out}\n${err}")
endif()

if(NOT EXISTS "${METRICS_FILE}")
  message(FATAL_ERROR "--metrics file was not written")
endif()
file(READ "${METRICS_FILE}" metrics)
foreach(counter service.requests service.routes service.edits
        service.cache_hit service.timeouts)
  if(NOT metrics MATCHES "\"${counter}\"")
    message(FATAL_ERROR "metrics report lacks counter ${counter}")
  endif()
endforeach()
message(STATUS "cli serve smoke OK")
