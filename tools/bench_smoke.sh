#!/usr/bin/env sh
# Runs the kernel micro-benchmarks at default scale and refreshes
# BENCH_kernels.json at the repo root. Compare against the committed
# baseline before/after perf-sensitive changes:
#
#   ./tools/bench_smoke.sh [build-dir]
#
# Pass a configured build dir (default: ./build). Numbers are ns/op
# (adjusted real time, same as the console output).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_kernels"

if [ ! -x "$bench" ]; then
  echo "bench_smoke: $bench not built (cmake --build $build_dir)" >&2
  exit 1
fi

# Golden end-to-end gate first: refuse to refresh the perf baseline from a
# build whose pipeline output diverges from the committed fixtures.
(cd "$build_dir" && ctest -L golden --output-on-failure)

# Batch-mode gate: two designs routed concurrently (--jobs 2) must emit
# mask planes byte-identical to routing each alone; a mismatch means run
# state leaked between contexts and any benchmark numbers are suspect.
cli="$build_dir/tools/sadp_route_cli"
if [ ! -x "$cli" ]; then
  echo "bench_smoke: $cli not built (cmake --build $build_dir)" >&2
  exit 1
fi
scratch=$(mktemp -d "${TMPDIR:-/tmp}/bench_smoke.XXXXXX")
trap 'rm -rf "$scratch"' EXIT
job_a="--seed-demo 36 --width 110 --height 110 --threads 2"
job_b="--seed-demo 28 --width 95 --height 95 --threads 2"
# shellcheck disable=SC2086  # word-splitting the option strings is intended
"$cli" $job_a --masks "$scratch/serialA_" >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $job_b --masks "$scratch/serialB_" >/dev/null || [ $? -eq 3 ]
printf '%s\n%s\n' \
  "$job_a --masks $scratch/batchA_" \
  "$job_b --masks $scratch/batchB_" > "$scratch/jobs.list"
"$cli" --batch "$scratch/jobs.list" --jobs 2 >/dev/null || [ $? -eq 3 ]
for f in "$scratch"/serial*.masks; do
  twin=$(printf '%s' "$f" | sed 's/serial\([AB]_\)/batch\1/')
  cmp -s "$f" "$twin" || {
    echo "bench_smoke: batch output $twin differs from serial $f" >&2
    exit 1
  }
done
echo "bench_smoke: batch --jobs 2 mask planes byte-identical to serial"

# Scheduler gate: the dynamic work-stealing band schedule must emit mask
# planes byte-identical to the static schedule and to the serial run --
# if WHO computes a band ever changes WHAT it computes, perf numbers from
# this build are meaningless.
sched_job="--seed-demo 32 --width 120 --height 100 --tile-words 2"
# shellcheck disable=SC2086
"$cli" $sched_job --threads 1 --schedule static --masks "$scratch/sched1_" \
  >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $sched_job --threads 4 --schedule static --masks "$scratch/schedS_" \
  >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $sched_job --threads 4 --schedule dynamic --masks "$scratch/schedD_" \
  >/dev/null || [ $? -eq 3 ]
for f in "$scratch"/sched1*.masks; do
  for mode in S D; do
    twin=$(printf '%s' "$f" | sed "s/sched1_/sched${mode}_/")
    cmp -s "$f" "$twin" || {
      echo "bench_smoke: --schedule output $twin differs from serial $f" >&2
      exit 1
    }
  done
done
echo "bench_smoke: --schedule dynamic mask planes byte-identical to static/serial"

"$bench" --json "$repo_root/BENCH_kernels.json"
echo "bench_smoke: updated $repo_root/BENCH_kernels.json"
