#!/usr/bin/env sh
# Runs the kernel micro-benchmarks at default scale and refreshes
# BENCH_kernels.json at the repo root. Compare against the committed
# baseline before/after perf-sensitive changes:
#
#   ./tools/bench_smoke.sh [build-dir]
#
# Pass a configured build dir (default: ./build). Numbers are ns/op
# (adjusted real time, same as the console output).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_kernels"

if [ ! -x "$bench" ]; then
  echo "bench_smoke: $bench not built (cmake --build $build_dir)" >&2
  exit 1
fi

# Golden end-to-end gate first: refuse to refresh the perf baseline from a
# build whose pipeline output diverges from the committed fixtures.
(cd "$build_dir" && ctest -L golden --output-on-failure)

# Batch-mode gate: two designs routed concurrently (--jobs 2) must emit
# mask planes byte-identical to routing each alone; a mismatch means run
# state leaked between contexts and any benchmark numbers are suspect.
cli="$build_dir/tools/sadp_route_cli"
if [ ! -x "$cli" ]; then
  echo "bench_smoke: $cli not built (cmake --build $build_dir)" >&2
  exit 1
fi
scratch=$(mktemp -d "${TMPDIR:-/tmp}/bench_smoke.XXXXXX")
serve_pid=
trap 'if [ -n "$serve_pid" ]; then kill "$serve_pid" 2>/dev/null || true; fi
      rm -rf "$scratch"' EXIT
job_a="--seed-demo 36 --width 110 --height 110 --threads 2"
job_b="--seed-demo 28 --width 95 --height 95 --threads 2"
# shellcheck disable=SC2086  # word-splitting the option strings is intended
"$cli" $job_a --masks "$scratch/serialA_" >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $job_b --masks "$scratch/serialB_" >/dev/null || [ $? -eq 3 ]
printf '%s\n%s\n' \
  "$job_a --masks $scratch/batchA_" \
  "$job_b --masks $scratch/batchB_" > "$scratch/jobs.list"
"$cli" --batch "$scratch/jobs.list" --jobs 2 >/dev/null || [ $? -eq 3 ]
for f in "$scratch"/serial*.masks; do
  twin=$(printf '%s' "$f" | sed 's/serial\([AB]_\)/batch\1/')
  cmp -s "$f" "$twin" || {
    echo "bench_smoke: batch output $twin differs from serial $f" >&2
    exit 1
  }
done
echo "bench_smoke: batch --jobs 2 mask planes byte-identical to serial"

# Scheduler gate: the dynamic work-stealing band schedule must emit mask
# planes byte-identical to the static schedule and to the serial run --
# if WHO computes a band ever changes WHAT it computes, perf numbers from
# this build are meaningless.
sched_job="--seed-demo 32 --width 120 --height 100 --tile-words 2"
# shellcheck disable=SC2086
"$cli" $sched_job --threads 1 --schedule static --masks "$scratch/sched1_" \
  >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $sched_job --threads 4 --schedule static --masks "$scratch/schedS_" \
  >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $sched_job --threads 4 --schedule dynamic --masks "$scratch/schedD_" \
  >/dev/null || [ $? -eq 3 ]
for f in "$scratch"/sched1*.masks; do
  for mode in S D; do
    twin=$(printf '%s' "$f" | sed "s/sched1_/sched${mode}_/")
    cmp -s "$f" "$twin" || {
      echo "bench_smoke: --schedule output $twin differs from serial $f" >&2
      exit 1
    }
  done
done
echo "bench_smoke: --schedule dynamic mask planes byte-identical to static/serial"

# Wave-routing gate: speculative wave-parallel routing (--route-jobs) must
# emit mask planes byte-identical to the serial net-by-net loop -- WHO runs
# an attempt-0 search must never change WHAT gets committed.
wave_job="--seed-demo 120 --width 100 --height 100 --threads 4"
# shellcheck disable=SC2086
"$cli" $wave_job --route-jobs 1 --masks "$scratch/wave1_" \
  >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $wave_job --route-jobs 4 --masks "$scratch/wave4_" \
  >/dev/null || [ $? -eq 3 ]
for f in "$scratch"/wave1*.masks; do
  twin=$(printf '%s' "$f" | sed 's/wave1_/wave4_/')
  cmp -s "$f" "$twin" || {
    echo "bench_smoke: --route-jobs output $twin differs from serial $f" >&2
    exit 1
  }
done
echo "bench_smoke: --route-jobs 4 mask planes byte-identical to serial"

# Backend matrix gate (DESIGN.md §5.13): selecting the SADP backend
# explicitly must be a no-op byte-for-byte -- `--backend sadp2` mask
# planes must equal the default run's. The triple-patterning backend gets
# a determinism smoke: two `--backend tpl3` runs of the same design must
# agree byte-for-byte and route with zero hard overlays (exit 0).
bk_job="--seed-demo 30 --width 60 --height 60 --threads 2"
# shellcheck disable=SC2086
"$cli" $bk_job --masks "$scratch/bkdef_" >/dev/null || [ $? -eq 3 ]
# shellcheck disable=SC2086
"$cli" $bk_job --backend sadp2 --masks "$scratch/bk2_" >/dev/null || [ $? -eq 3 ]
for f in "$scratch"/bkdef*.masks; do
  twin=$(printf '%s' "$f" | sed 's/bkdef_/bk2_/')
  cmp -s "$f" "$twin" || {
    echo "bench_smoke: --backend sadp2 output $twin differs from default $f" >&2
    exit 1
  }
done
# shellcheck disable=SC2086
"$cli" $bk_job --backend tpl3 --masks "$scratch/bk3a_" >/dev/null
# shellcheck disable=SC2086
"$cli" $bk_job --backend tpl3 --masks "$scratch/bk3b_" >/dev/null
for f in "$scratch"/bk3a*.masks; do
  twin=$(printf '%s' "$f" | sed 's/bk3a_/bk3b_/')
  cmp -s "$f" "$twin" || {
    echo "bench_smoke: --backend tpl3 rerun $twin differs from $f" >&2
    exit 1
  }
done
echo "bench_smoke: --backend sadp2 byte-identical to default; tpl3 deterministic"

# Service gate: the routing daemon's warm ECO path must earn its keep.
# A scripted client loads a design, measures cold full-route latency,
# then drives random move_pin edits; the memoized replay must push warm
# edit throughput to at least 3x the cold baseline or the gate fails.
# Refreshes BENCH_service.json (edits/sec, p50/p99, cache counters).
serve="$build_dir/tools/sadp_route_serve"
if [ ! -x "$serve" ]; then
  echo "bench_smoke: $serve not built (cmake --build $build_dir)" >&2
  exit 1
fi
serve_sock="$scratch/bench_serve.sock"
"$serve" --socket "$serve_sock" --workers 1 >/dev/null &
serve_pid=$!
i=0
while [ ! -S "$serve_sock" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "bench_smoke: service socket never appeared" >&2
                        exit 1; }
  sleep 0.1
done
python3 "$repo_root/tools/service_client.py" --socket "$serve_sock" bench \
  --nets 240 --width 160 --height 160 --seed 4 --cold-iters 5 --edits 40 \
  --min-speedup 3 --out "$repo_root/BENCH_service.json" >/dev/null
wait "$serve_pid" || {
  echo "bench_smoke: service daemon exited uncleanly" >&2
  exit 1
}
serve_pid=
echo "bench_smoke: warm ECO edits >= 3x cold route throughput;" \
     "updated $repo_root/BENCH_service.json"

# Sanitizer gate: rebuild the fuzz-labelled equivalence suites (bucket vs
# heap A*, scalar vs AVX2 bitmap kernels) under AddressSanitizer in a
# throwaway build dir. Arena/bump-pointer bugs show up as ASan reports
# here long before they corrupt a benchmark run. Set
# BENCH_SMOKE_SKIP_ASAN=1 to opt out (e.g. on machines without the
# asan runtime).
if [ "${BENCH_SMOKE_SKIP_ASAN:-0}" != "1" ]; then
  asan_dir="$scratch/asan-build"
  cmake -S "$repo_root" -B "$asan_dir" -DSADP_SANITIZE=address \
    -DCMAKE_BUILD_TYPE= >/dev/null
  cmake --build "$asan_dir" -j "$(nproc 2>/dev/null || echo 4)" \
    --target test_astar_equiv test_bitmap_simd test_schedule_fuzz \
    test_service_fuzz test_wave_planner test_route_parallel_fuzz \
    test_timing_oracle test_timing_fuzz \
    test_backend_fuzz >/dev/null
  (cd "$asan_dir" && ctest -L fuzz --output-on-failure)
  echo "bench_smoke: fuzz label clean under -DSADP_SANITIZE=address"
else
  echo "bench_smoke: ASan fuzz gate skipped (BENCH_SMOKE_SKIP_ASAN=1)"
fi

# Perf gate: measure into a scratch JSON first and diff the search-core
# benchmarks against the committed baseline. A >25% slowdown in any
# BM_AStarRoute*, BM_AStarRouteBucket* or BM_ParityDsuUnite* entry aborts
# before the baseline file is touched, so a regression can't silently
# grandfather itself into BENCH_kernels.json.
#
# Noise control: on a shared 1-CPU container single shots of these
# µs-scale kernels swing well past 25% run to run. Container noise only
# ever ADDS time, so the gated benchmarks are re-run twice more (cheap,
# --filter'ed) and each gated entry -- for both the comparison and the
# values that get committed -- is the per-name minimum across the three
# runs, which is a stable estimator of the true kernel cost.
gate_re='^BM_(AStarRoute|AStarRouteBucket|ParityDsuUnite|NegotiatedRoute)'
fresh="$scratch/bench_fresh.json"
"$bench" --json "$fresh"
"$bench" --filter "$gate_re" --json "$scratch/gate2.json"
"$bench" --filter "$gate_re" --json "$scratch/gate3.json"
python3 - "$fresh" "$scratch/gate2.json" "$scratch/gate3.json" <<'EOF'
import json, sys
runs = [json.load(open(p)) for p in sys.argv[1:]]
best = {}
for run in runs[1:]:
    for r in run["results"]:
        b = best.setdefault(r["name"], dict(r))
        for k in ("real_ns", "cpu_ns"):
            b[k] = min(b[k], r[k])
for r in runs[0]["results"]:
    if r["name"] in best:
        for k in ("real_ns", "cpu_ns"):
            r[k] = min(r[k], best[r["name"]][k])
json.dump(runs[0], open(sys.argv[1], "w"), indent=1)
EOF
extract_ns() {
  # name cpu_ns pairs, one per line, from our bench JSON schema
  python3 - "$1" <<'EOF'
import json, sys
for r in json.load(open(sys.argv[1]))["results"]:
    print(r["name"], r["cpu_ns"])
EOF
}
extract_ns "$repo_root/BENCH_kernels.json" > "$scratch/base.txt"
extract_ns "$fresh" > "$scratch/fresh.txt"
awk 'NR == FNR { base[$1] = $2; next }
     $1 ~ /^BM_(AStarRoute|AStarRouteBucket|ParityDsuUnite|NegotiatedRoute)/ &&
     ($1 in base) && base[$1] > 0 && $2 > 1.25 * base[$1] {
       printf "bench_smoke: %s regressed: %.0f ns vs baseline %.0f ns (>25%%)\n",
              $1, $2, base[$1] > "/dev/stderr"
       bad = 1
     }
     END { exit bad }' "$scratch/base.txt" "$scratch/fresh.txt" || {
  echo "bench_smoke: search-core perf gate failed; baseline left untouched" >&2
  exit 1
}
echo "bench_smoke: search-core benchmarks within 25% of committed baseline"

cp "$fresh" "$repo_root/BENCH_kernels.json"
echo "bench_smoke: updated $repo_root/BENCH_kernels.json"
