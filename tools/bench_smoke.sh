#!/usr/bin/env sh
# Runs the kernel micro-benchmarks at default scale and refreshes
# BENCH_kernels.json at the repo root. Compare against the committed
# baseline before/after perf-sensitive changes:
#
#   ./tools/bench_smoke.sh [build-dir]
#
# Pass a configured build dir (default: ./build). Numbers are ns/op
# (adjusted real time, same as the console output).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_kernels"

if [ ! -x "$bench" ]; then
  echo "bench_smoke: $bench not built (cmake --build $build_dir)" >&2
  exit 1
fi

# Golden end-to-end gate first: refuse to refresh the perf baseline from a
# build whose pipeline output diverges from the committed fixtures.
(cd "$build_dir" && ctest -L golden --output-on-failure)

"$bench" --json "$repo_root/BENCH_kernels.json"
echo "bench_smoke: updated $repo_root/BENCH_kernels.json"
