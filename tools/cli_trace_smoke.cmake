# ctest smoke check: sadp_route_cli --trace/--metrics/--threads produces a
# Chrome trace and a metrics report that contain the expected sections.
# Invoked as:
#   cmake -DCLI=<path-to-sadp_route_cli> -DOUT_DIR=<scratch dir>
#         -P cli_trace_smoke.cmake
if(NOT CLI OR NOT OUT_DIR)
  message(FATAL_ERROR "pass -DCLI=<binary> and -DOUT_DIR=<dir>")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(TRACE_FILE "${OUT_DIR}/smoke_trace.json")
set(METRICS_FILE "${OUT_DIR}/smoke_metrics.json")

execute_process(
  COMMAND "${CLI}" --seed-demo 40 --width 120 --height 120 --threads 2
          --trace "${TRACE_FILE}" --metrics "${METRICS_FILE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
# Exit 3 means residual physical conflicts, which is a legal routing
# outcome for the demo instance; anything else is a harness failure.
if(NOT rc EQUAL 0 AND NOT rc EQUAL 3)
  message(FATAL_ERROR "cli exited ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "threads     2")
  message(FATAL_ERROR "effective thread count missing from stdout:\n${out}")
endif()

foreach(pair "${TRACE_FILE};traceEvents" "${METRICS_FILE};counters")
  list(GET pair 0 file)
  list(GET pair 1 want)
  if(NOT EXISTS "${file}")
    message(FATAL_ERROR "${file} was not written")
  endif()
  file(READ "${file}" contents)
  if(NOT contents MATCHES "\"${want}\"")
    message(FATAL_ERROR "${file} lacks \"${want}\" section")
  endif()
endforeach()

file(READ "${METRICS_FILE}" metrics)
foreach(counter astar.expansions router.ripups router.cut_rejects
        router.flips)
  if(NOT metrics MATCHES "\"${counter}\"")
    message(FATAL_ERROR "metrics report lacks counter ${counter}")
  endif()
endforeach()
message(STATUS "cli trace smoke OK")
