#!/usr/bin/env python3
"""Reference client for the sadp_route_serve NDJSON protocol.

Modes:
  req    send one request (--json or stdin), print the response line;
         exit 0 on ok:true, 1 otherwise. --expect-error CODE inverts the
         check: exit 0 iff the response is the structured error CODE.
  drive  forward every stdin line as a request, print every response.
  bench  load a session, measure cold full-route throughput and warm ECO
         edit latency (p50/p99), emit a BENCH_service.json-shaped report.

Connection: --socket PATH (Unix) or --port N (loopback TCP).
"""

import argparse
import json
import random
import socket
import sys
import time


def connect(args):
    if args.socket:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(args.socket)
    elif args.port is not None:
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.connect(("127.0.0.1", args.port))
    else:
        sys.exit("service_client: pick --socket PATH or --port N")
    return s.makefile("rw", encoding="utf-8")


def roundtrip(f, obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()
    line = f.readline()
    if not line:
        sys.exit("service_client: connection closed by server")
    return json.loads(line)


def send_raw(f, text):
    f.write(text + "\n")
    f.flush()
    line = f.readline()
    if not line:
        sys.exit("service_client: connection closed by server")
    return json.loads(line)


def cmd_req(args):
    payload = args.json if args.json is not None else sys.stdin.read()
    f = connect(args)
    if args.raw:
        resp = send_raw(f, payload.rstrip("\n"))
    else:
        resp = roundtrip(f, json.loads(payload))
    print(json.dumps(resp, separators=(",", ":")))
    if args.expect_error:
        code = (resp.get("error") or {}).get("code")
        return 0 if not resp.get("ok") and code == args.expect_error else 1
    return 0 if resp.get("ok") else 1


def cmd_drive(args):
    f = connect(args)
    status = 0
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        resp = send_raw(f, line)
        print(json.dumps(resp, separators=(",", ":")))
        if not resp.get("ok"):
            status = 1
    return status


def percentile(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    i = min(len(sorted_vals) - 1, int(round(p / 100.0 * (len(sorted_vals) - 1))))
    return sorted_vals[i]


def cmd_bench(args):
    f = connect(args)
    load = {
        "op": "load",
        "session": "bench",
        "nets": args.nets,
        "width": args.width,
        "height": args.height,
        "seed": args.seed,
        "layers": args.layers,
    }
    if args.benchmark:
        load = {"op": "load", "session": "bench", "benchmark": args.benchmark}
        if args.scale:
            load["scale"] = args.scale
    r = roundtrip(f, load)
    if not r.get("ok"):
        sys.exit("service_client: load failed: %s" % r)
    nets = r["nets"]

    # Cold baseline: a second session of the same design, opted out of the
    # shared mask cache ({"cache":false}) -- each `route` also clears the
    # session's memo store, so every iteration is exactly what a
    # standalone tool does: full search plus full decomposition.
    cold_load = dict(load)
    cold_load["session"] = "bench_cold"
    cold_load["cache"] = False
    r = roundtrip(f, cold_load)
    if not r.get("ok"):
        sys.exit("service_client: cold load failed: %s" % r)
    cold_ms = []
    first = None
    for _ in range(args.cold_iters):
        t0 = time.monotonic()
        r = roundtrip(f, {"op": "route", "session": "bench_cold"})
        cold_ms.append((time.monotonic() - t0) * 1e3)
        if not r.get("ok"):
            sys.exit("service_client: route failed: %s" % r)
        first = r

    # Prime the warm session once so the first edit replays, not routes.
    # Cached and uncached sessions must agree byte for byte.
    r = roundtrip(f, {"op": "route", "session": "bench"})
    if not r.get("ok"):
        sys.exit("service_client: warm route failed: %s" % r)
    if first and r["design_fp"] != first["design_fp"]:
        sys.exit("service_client: cached/uncached design_fp diverge: %s vs %s"
                 % (r["design_fp"], first["design_fp"]))

    # Warm ECO loop: scripted local move_pin edits. Real ECOs nudge a pin
    # a few tracks, they don't teleport it across the die -- so fetch the
    # current pin positions once and move each chosen pin by a small
    # random delta, tracking positions locally as edits land.
    q = roundtrip(f, {"op": "query", "session": "bench", "pins": True})
    if not q.get("ok"):
        sys.exit("service_client: query failed: %s" % q)
    pin_map = {e["name"]: e["pins"] for e in q["net_pins"]}
    names = sorted(pin_map)

    rng = random.Random(args.seed)
    edit_ms = []
    memo_hits = searches = dirty = 0
    for i in range(args.edits):
        name = names[rng.randrange(len(names))]
        idx = rng.randrange(len(pin_map[name]))
        x, y, layer = pin_map[name][idx]
        nx = min(args.width - 1, max(0, x + rng.randint(-1, 1)))
        ny = min(args.height - 1, max(0, y + rng.randint(-1, 1)))
        pin_map[name][idx] = [nx, ny, layer]
        req = {
            "op": "edit",
            "session": "bench",
            "kind": "move_pin",
            "net": name,
            "pin_index": idx,
            "pin": [nx, ny, layer],
        }
        t0 = time.monotonic()
        r = roundtrip(f, req)
        edit_ms.append((time.monotonic() - t0) * 1e3)
        if not r.get("ok"):
            sys.exit("service_client: edit %d failed: %s" % (i, r))
        memo_hits += r["memo_hits"]
        searches += r["searches"]
        dirty += r["nets_dirty"]

    stats = roundtrip(f, {"op": "stats", "session": "bench"})
    roundtrip(f, {"op": "shutdown"})

    cold_ms.sort()
    edit_ms.sort()
    cold_mean = sum(cold_ms) / len(cold_ms)
    edit_mean = sum(edit_ms) / len(edit_ms)
    # Gate on p50: on shared machines scheduler noise only ever ADDS time,
    # and it lands in the tails -- medians are the stable estimator of the
    # true warm/cold ratio. The mean-based figure stays in the report.
    cold_p50 = percentile(cold_ms, 50)
    edit_p50 = percentile(edit_ms, 50)
    report = {
        "bench": "service_eco",
        "design": {"nets": nets, "width": args.width, "height": args.height,
                   "layers": args.layers, "seed": args.seed},
        "cold_route": {
            "iters": len(cold_ms),
            "mean_ms": round(cold_mean, 3),
            "p50_ms": round(percentile(cold_ms, 50), 3),
            "p99_ms": round(percentile(cold_ms, 99), 3),
            "routes_per_sec": round(1e3 / cold_mean, 2),
        },
        "warm_edit": {
            "iters": len(edit_ms),
            "mean_ms": round(edit_mean, 3),
            "p50_ms": round(percentile(edit_ms, 50), 3),
            "p99_ms": round(percentile(edit_ms, 99), 3),
            "edits_per_sec": round(1e3 / edit_mean, 2),
            "memo_hits": memo_hits,
            "real_searches": searches,
            "avg_nets_dirty": round(dirty / max(1, len(edit_ms)), 2),
        },
        "speedup_warm_over_cold": round(cold_p50 / edit_p50, 2),
        "speedup_warm_over_cold_mean": round(cold_mean / edit_mean, 2),
        "cache": stats.get("cache", {}),
        "counters": stats.get("counters", {}),
        "cold_csv": first.get("csv") if first else None,
    }
    out = json.dumps(report, indent=2) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(out)
    sys.stdout.write(out)
    if args.min_speedup and report["speedup_warm_over_cold"] < args.min_speedup:
        sys.exit(
            "service_client: warm/cold speedup %.2f below required %.2f"
            % (report["speedup_warm_over_cold"], args.min_speedup)
        )
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--socket", help="Unix socket path")
    ap.add_argument("--port", type=int, help="loopback TCP port")
    sub = ap.add_subparsers(dest="mode", required=True)

    p = sub.add_parser("req")
    p.add_argument("--json", help="request object (default: stdin)")
    p.add_argument("--raw", action="store_true",
                   help="send --json verbatim without validating it locally")
    p.add_argument("--expect-error",
                   help="succeed iff the response is this error code")
    p.set_defaults(fn=cmd_req)

    p = sub.add_parser("drive")
    p.set_defaults(fn=cmd_drive)

    p = sub.add_parser("bench")
    p.add_argument("--benchmark", help="paper benchmark name (Test1..)")
    p.add_argument("--scale", type=float, default=0.0)
    p.add_argument("--nets", type=int, default=240)
    p.add_argument("--width", type=int, default=160)
    p.add_argument("--height", type=int, default=160)
    p.add_argument("--layers", type=int, default=3)
    p.add_argument("--seed", type=int, default=4)
    p.add_argument("--cold-iters", type=int, default=5)
    p.add_argument("--edits", type=int, default=40)
    p.add_argument("--out", help="also write the JSON report here")
    p.add_argument("--min-speedup", type=float, default=0.0,
                   help="fail unless warm/cold speedup reaches this")
    p.set_defaults(fn=cmd_bench)

    args = ap.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
