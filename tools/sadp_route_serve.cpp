// sadp_route_serve: the routing-as-a-service daemon (DESIGN.md §5.11).
//
//   sadp_route_serve --socket /tmp/sadp.sock
//   sadp_route_serve --port 0            # loopback TCP, ephemeral port
//
// Speaks line-delimited JSON (one request object per line, one response
// per line): ops load / route / edit / query / stats / shutdown. See
// README.md "Routing service" for the protocol and tools/service_client.py
// for a reference client.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "service/server.hpp"
#include "util/parse.hpp"

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "sadp_route_serve: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: sadp_route_serve [--socket PATH] [--port N] [--workers N]\n"
      "                        [--queue-depth N] [--session-cap N]\n"
      "                        [--request-timeout-ms N] [--cache-mb N]\n"
      "                        [--metrics FILE]\n"
      "  --socket PATH          listen on a Unix socket at PATH\n"
      "  --port N               listen on loopback TCP port N (0 = pick an\n"
      "                         ephemeral port; the port is printed)\n"
      "  --workers N            worker threads (default 2)\n"
      "  --queue-depth N        bounded request queue capacity (default 64)\n"
      "  --session-cap N        max resident sessions (default 8)\n"
      "  --request-timeout-ms N default queue-wait deadline (default 30000)\n"
      "  --cache-mb N           mask-cache byte budget in MiB (default 256)\n"
      "  --metrics FILE         write the run-metrics JSON to FILE on exit\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sadp::ServerOptions opts;
  auto needValue = [&](int i) -> std::string {
    if (i + 1 >= argc) usage("missing option value");
    return argv[i + 1];
  };
  auto intOpt = [&](int i, int lo, int hi) -> int {
    const std::optional<int> v = sadp::parseStrictIntIn(needValue(i), lo, hi);
    if (!v) usage((std::string(argv[i]) + ": bad integer value").c_str());
    return *v;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket") {
      opts.socketPath = needValue(i++);
    } else if (a == "--port") {
      opts.port = intOpt(i++, 0, 65535);
    } else if (a == "--workers") {
      opts.workers = intOpt(i++, 1, 256);
    } else if (a == "--queue-depth") {
      opts.queueDepth = intOpt(i++, 1, 1 << 20);
    } else if (a == "--session-cap") {
      opts.sessionCap = intOpt(i++, 1, 1 << 20);
    } else if (a == "--request-timeout-ms") {
      opts.requestTimeoutMs = intOpt(i++, 0, 1 << 30);
    } else if (a == "--cache-mb") {
      opts.cacheBytes = std::size_t(intOpt(i++, 1, 1 << 20)) << 20;
    } else if (a == "--metrics") {
      opts.metricsPath = needValue(i++);
    } else if (a == "--help" || a == "-h") {
      usage("help");
    } else {
      usage(("unknown option: " + a).c_str());
    }
  }
  if (opts.socketPath.empty() && opts.port < 0) {
    usage("pick a listener: --socket PATH and/or --port N");
  }
  sadp::RouteServer server(std::move(opts));
  return server.serve();
}
