// Command-line front end: route a netlist file and emit reports/artwork.
//
//   sadp_route_cli --nets design.nets --width 170 --height 170 [options]
//
// Options:
//   --nets FILE         netlist in the sadp-netlist text format (required)
//   --width N           grid width in tracks  (required)
//   --height N          grid height in tracks (required)
//   --layers N          routing layers (default 3)
//   --svg PREFIX        write PREFIX<layer>.svg artwork per layer
//   --masks PREFIX      write PREFIX<layer>.masks rectangle files
//   --csv FILE          append a result row as CSV
//   --no-flip           disable color flipping
//   --no-cut-check      disable the windowed cut-conflict check
//   --no-repair         disable the post-pass violation repair
//   --seed-demo N       ignore --nets and generate a demo instance with N
//                       nets on the given grid instead
//   --threads N         worker threads for parallel passes (overrides the
//                       SADP_THREADS environment variable)
//   --tile-words N      column-band width (64-px words) of the tiled
//                       decomposition morphology; 0 = automatic (default),
//                       negative = whole-window reference path. Any value
//                       yields byte-identical reports and masks.
//   --trace FILE        write a Chrome trace-event JSON (full span events)
//   --metrics FILE      write a flat run-metrics JSON (counters, histograms,
//                       per-phase wall times)
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "sadp/mask_io.hpp"
#include "sadp/svg.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"

using namespace sadp;

namespace {

struct CliArgs {
  std::string netsFile;
  Track width = 0;
  Track height = 0;
  int layers = 3;
  std::string svgPrefix;
  std::string maskPrefix;
  std::string csvFile;
  std::string traceFile;
  std::string metricsFile;
  int seedDemo = 0;
  int threads = 0;
  DecomposeOptions decompose;
  RouterOptions router;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: sadp_route_cli --nets FILE --width N --height N\n"
               "       [--layers N] [--svg PREFIX] [--masks PREFIX]\n"
               "       [--csv FILE] [--no-flip] [--no-cut-check]\n"
               "       [--no-repair] [--seed-demo N] [--threads N]\n"
               "       [--tile-words N] [--trace FILE] [--metrics FILE]\n";
  std::exit(2);
}

CliArgs parse(int argc, char** argv) {
  CliArgs a;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string opt = argv[i];
    if (opt == "--nets") {
      a.netsFile = value(i);
    } else if (opt == "--width") {
      a.width = Track(std::atoi(value(i)));
    } else if (opt == "--height") {
      a.height = Track(std::atoi(value(i)));
    } else if (opt == "--layers") {
      a.layers = std::atoi(value(i));
    } else if (opt == "--svg") {
      a.svgPrefix = value(i);
    } else if (opt == "--masks") {
      a.maskPrefix = value(i);
    } else if (opt == "--csv") {
      a.csvFile = value(i);
    } else if (opt == "--no-flip") {
      a.router.enableColorFlip = false;
      a.router.finalGlobalFlip = false;
    } else if (opt == "--no-cut-check") {
      a.router.enableCutCheck = false;
    } else if (opt == "--no-repair") {
      a.router.enableRepair = false;
    } else if (opt == "--seed-demo") {
      a.seedDemo = std::atoi(value(i));
    } else if (opt == "--threads") {
      a.threads = std::atoi(value(i));
      if (a.threads <= 0) usage("--threads wants a positive count");
    } else if (opt == "--tile-words") {
      a.decompose.tileWords = std::atoi(value(i));
    } else if (opt == "--trace") {
      a.traceFile = value(i);
    } else if (opt == "--metrics") {
      a.metricsFile = value(i);
    } else if (opt == "--help" || opt == "-h") {
      usage();
    } else {
      usage(("unknown option " + opt).c_str());
    }
  }
  if (a.width <= 0 || a.height <= 0) usage("--width/--height required");
  if (a.netsFile.empty() && a.seedDemo <= 0) usage("--nets required");
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse(argc, argv);

  if (args.threads > 0) setParallelThreads(args.threads);
  // Full event capture only when someone will read the trace; the metrics
  // report only needs per-name aggregates.
  if (!args.traceFile.empty()) {
    setTraceLevel(TraceLevel::Full);
  } else if (!args.metricsFile.empty()) {
    setTraceLevel(TraceLevel::Aggregate);
  }

  Netlist netlist;
  if (args.seedDemo > 0) {
    BenchmarkSpec spec;
    spec.name = "demo";
    spec.netCount = args.seedDemo;
    spec.width = args.width;
    spec.height = args.height;
    spec.layers = args.layers;
    netlist = makeBenchmark(spec).netlist;
  } else {
    std::ifstream f(args.netsFile);
    if (!f) {
      std::cerr << "cannot open " << args.netsFile << "\n";
      return 1;
    }
    netlist = readNetlist(f);
  }

  RoutingGrid grid(args.width, args.height, args.layers, DesignRules{});
  OverlayAwareRouter router(grid, netlist, args.router);
  const RoutingStats stats = router.run();
  const OverlayReport report = router.physicalReport(args.decompose);

  std::cout << "nets        " << stats.totalNets << "\n"
            << "threads     " << parallelThreadCount() << "\n"
            << "routed      " << stats.routedNets << " ("
            << stats.routability() << "%)\n"
            << "wirelength  " << stats.wirelength << " tracks, "
            << stats.vias << " vias, " << stats.ripUps << " rip-ups\n"
            << "overlay     " << report.sideOverlayNm << " nm in "
            << report.sideOverlaySections << " sections ("
            << report.hardOverlays << " hard)\n"
            << "tip overlays " << report.tipOverlays << "\n"
            << "cut conflicts " << report.cutConflicts() << "\n";

  for (int layer = 0; layer < grid.layers(); ++layer) {
    if (!args.svgPrefix.empty() || !args.maskPrefix.empty()) {
      const LayerDecomposition d = router.decompose(layer, args.decompose);
      if (!args.svgPrefix.empty()) {
        const auto frags = router.coloredFragments(layer);
        writeLayerSvgFile(args.svgPrefix + std::to_string(layer) + ".svg", d,
                          frags, grid.rules());
      }
      if (!args.maskPrefix.empty()) {
        std::ofstream mf(args.maskPrefix + std::to_string(layer) + ".masks");
        writeMasks(mf, d, layer);
      }
    }
  }
  if (!args.csvFile.empty()) {
    std::ofstream cf(args.csvFile, std::ios::app);
    cf << stats.totalNets << ',' << stats.routability() << ','
       << report.sideOverlayNm << ',' << report.cutConflicts() << ','
       << report.hardOverlays << ',' << parallelThreadCount() << "\n";
  }
  if (!args.metricsFile.empty()) {
    std::ofstream mf(args.metricsFile);
    writeMetricsJson(
        mf, {{"nets", std::to_string(stats.totalNets)},
             {"routed", std::to_string(stats.routedNets)},
             {"routability", std::to_string(stats.routability())},
             {"wirelength", std::to_string(stats.wirelength)},
             {"vias", std::to_string(stats.vias)},
             {"ripups", std::to_string(stats.ripUps)},
             {"side_overlay_nm", std::to_string(report.sideOverlayNm)},
             {"cut_conflicts", std::to_string(report.cutConflicts())},
             {"hard_overlays", std::to_string(report.hardOverlays)},
             {"threads", std::to_string(parallelThreadCount())}});
    if (!mf) std::cerr << "cannot write " << args.metricsFile << "\n";
  }
  if (!args.traceFile.empty()) {
    std::ofstream tf(args.traceFile);
    writeChromeTrace(tf);
    if (!tf) std::cerr << "cannot write " << args.traceFile << "\n";
  }
  return report.cutConflicts() == 0 && report.hardOverlays == 0 ? 0 : 3;
}
