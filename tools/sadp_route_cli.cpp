// Command-line front end: route a netlist file and emit reports/artwork.
//
//   sadp_route_cli --nets design.nets --width 170 --height 170 [options]
//   sadp_route_cli --batch jobs.list --jobs 4
//
// Options:
//   --nets FILE         netlist in the sadp-netlist text format (required)
//   --width N           grid width in tracks  (required)
//   --height N          grid height in tracks (required)
//   --layers N          routing layers (default 3)
//   --svg PREFIX        write PREFIX<layer>.svg artwork per layer
//   --masks PREFIX      write PREFIX<layer>.masks rectangle files
//   --csv FILE          append a result row as CSV
//   --no-flip           disable color flipping
//   --no-cut-check      disable the windowed cut-conflict check
//   --no-repair         disable the post-pass violation repair
//   --seed-demo N       ignore --nets and generate a demo instance with N
//                       nets on the given grid instead
//   --threads N         worker threads for parallel passes (overrides the
//                       SADP_THREADS environment variable)
//   --route-jobs N      speculative wave-parallel net routing width
//                       (default 1 = sequential). Any value yields
//                       byte-identical masks, CSV and counters.
//   --tile-words N      column-band width (64-px words) of the tiled
//                       decomposition morphology; 0 = automatic (default),
//                       negative = whole-window reference path. Any value
//                       yields byte-identical reports and masks.
//   --backend NAME      patterning backend: sadp2 (the default 2-color SADP
//                       cut process) or tpl3 (triple patterning; emits 3
//                       exposure planes per layer)
//   --schedule MODE     band-to-worker assignment of the tiled passes:
//                       "dynamic" (default) = cost-weighted work stealing,
//                       "static" = shared-cursor assignment. Either mode
//                       yields byte-identical reports, masks, and counters.
//   --timing            timing-driven mode: net-level static timing
//                       (estimated delays, proximity edges) orders nets by
//                       criticality and scales per-net search weights; the
//                       summary and CSV gain worst-slack fields
//   --negotiate         PathFinder negotiated-congestion pre-phase (implies
//                       --timing): nets share cells under present + history
//                       costs until overflow-free, and the history carries
//                       into the main loop as a base penalty field
//   --negotiate-iters N maximum negotiation iterations (default 16)
//   --history-cost X    history cost added to each overflowed cell per
//                       negotiation iteration (default 1.0)
//   --trace FILE        write a Chrome trace-event JSON (full span events)
//   --metrics FILE      write a flat run-metrics JSON (counters, histograms,
//                       per-phase wall times)
//
// Batch mode:
//   --batch FILE        route many designs concurrently. Each non-blank,
//                       non-# line of FILE is one job's whitespace-separated
//                       option list (same options as above; --batch/--jobs
//                       forbidden). Every job runs in its own RunContext, so
//                       metrics/trace/CSV outputs are fully isolated and
//                       byte-identical to running the jobs one at a time;
//                       point jobs at distinct output files. Summaries print
//                       in job order; the exit code is the worst job's.
//   --jobs N            concurrent batch jobs (default 1)
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "netlist/benchmark.hpp"
#include "patterning/backend.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"
#include "sadp/mask_io.hpp"
#include "sadp/svg.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"
#include "util/parse.hpp"

using namespace sadp;

namespace {

struct CliArgs {
  std::string netsFile;
  Track width = 0;
  Track height = 0;
  int layers = 3;
  std::string svgPrefix;
  std::string maskPrefix;
  std::string csvFile;
  std::string traceFile;
  std::string metricsFile;
  int seedDemo = 0;
  int threads = 0;
  DecomposeOptions decompose;
  RouterOptions router;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n";
  std::cerr << "usage: sadp_route_cli --nets FILE --width N --height N\n"
               "       [--layers N] [--svg PREFIX] [--masks PREFIX]\n"
               "       [--csv FILE] [--no-flip] [--no-cut-check]\n"
               "       [--no-repair] [--seed-demo N] [--threads N]\n"
               "       [--route-jobs N] [--tile-words N]\n"
               "       [--backend sadp2|tpl3] [--schedule static|dynamic]\n"
               "       [--timing] [--negotiate] [--negotiate-iters N]\n"
               "       [--history-cost X] [--trace FILE] [--metrics FILE]\n"
               "   or: sadp_route_cli --batch LIST-FILE [--jobs N]\n";
  std::exit(2);
}

/// Strict integer option parse via util/parse.hpp (shared with the service
/// daemon): the whole token must be a base-10 integer that fits an int.
/// atoi's silent truncation ("--jobs 2x" -> 2, "--width 1e9" -> 1) is
/// exactly how a typo'd batch line would corrupt a run, so any trailing
/// garbage is a usage error instead.
int parseIntOpt(const char* opt, const std::string& s) {
  const std::optional<int> v = parseStrictInt(s);
  if (!v) {
    usage((std::string(opt) + " wants an integer, got '" + s + "'").c_str());
  }
  return *v;
}

/// Strict decimal option parse: plain digits with at most one '.', no
/// exponents/hex/inf ("--history-cost 1e9" is a typo, not a billion).
double parseDoubleOpt(const char* opt, const std::string& s) {
  const std::optional<double> v = parseStrictDouble(s);
  if (!v) {
    usage((std::string(opt) + " wants a decimal number, got '" + s + "'")
              .c_str());
  }
  return *v;
}

/// Parses one job's options. `batchFile`/`jobs` are only accepted at the
/// top level (non-null pointers); batch-file lines pass null and get a
/// hard error on nested batch options.
CliArgs parseTokens(const std::vector<std::string>& tokens,
                    std::string* batchFile, int* jobs) {
  CliArgs a;
  const std::size_t n = tokens.size();
  auto value = [&](std::size_t& i) -> const std::string& {
    if (i + 1 >= n) usage("missing option value");
    return tokens[++i];
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& opt = tokens[i];
    if (opt == "--nets") {
      a.netsFile = value(i);
    } else if (opt == "--width") {
      a.width = Track(parseIntOpt("--width", value(i)));
    } else if (opt == "--height") {
      a.height = Track(parseIntOpt("--height", value(i)));
    } else if (opt == "--layers") {
      a.layers = parseIntOpt("--layers", value(i));
    } else if (opt == "--svg") {
      a.svgPrefix = value(i);
    } else if (opt == "--masks") {
      a.maskPrefix = value(i);
    } else if (opt == "--csv") {
      a.csvFile = value(i);
    } else if (opt == "--no-flip") {
      a.router.enableColorFlip = false;
      a.router.finalGlobalFlip = false;
    } else if (opt == "--no-cut-check") {
      a.router.enableCutCheck = false;
    } else if (opt == "--no-repair") {
      a.router.enableRepair = false;
    } else if (opt == "--seed-demo") {
      a.seedDemo = parseIntOpt("--seed-demo", value(i));
    } else if (opt == "--threads") {
      a.threads = parseIntOpt("--threads", value(i));
      if (a.threads <= 0) usage("--threads wants a positive count");
    } else if (opt == "--route-jobs") {
      a.router.routeJobs = parseIntOpt("--route-jobs", value(i));
      if (a.router.routeJobs <= 0) {
        usage("--route-jobs wants a positive count");
      }
    } else if (opt == "--tile-words") {
      a.decompose.tileWords = parseIntOpt("--tile-words", value(i));
    } else if (opt == "--backend") {
      const std::string& name = value(i);
      a.router.backend = findPatterningBackend(name);
      if (a.router.backend == nullptr) {
        usage(("unknown --backend '" + name + "' (expected one of: " +
               patterningBackendNames() + ")")
                  .c_str());
      }
    } else if (opt == "--schedule") {
      const std::string& mode = value(i);
      if (mode == "static") {
        a.decompose.schedule = BandSchedule::Static;
      } else if (mode == "dynamic") {
        a.decompose.schedule = BandSchedule::Dynamic;
      } else {
        usage("--schedule wants 'static' or 'dynamic'");
      }
    } else if (opt == "--timing") {
      a.router.timingDriven = true;
    } else if (opt == "--negotiate") {
      a.router.negotiate = true;
      a.router.timingDriven = true;  // negotiation measures against slack
    } else if (opt == "--negotiate-iters") {
      a.router.maxNegotiateIters =
          parseIntOpt("--negotiate-iters", value(i));
      if (a.router.maxNegotiateIters <= 0) {
        usage("--negotiate-iters wants a positive count");
      }
    } else if (opt == "--history-cost") {
      const double v = parseDoubleOpt("--history-cost", value(i));
      if (v < 0.0) usage("--history-cost wants a nonnegative value");
      a.router.historyIncrement = float(v);
    } else if (opt == "--trace") {
      a.traceFile = value(i);
    } else if (opt == "--metrics") {
      a.metricsFile = value(i);
    } else if (opt == "--batch") {
      if (batchFile == nullptr) usage("--batch not allowed inside a batch");
      *batchFile = value(i);
    } else if (opt == "--jobs") {
      if (jobs == nullptr) usage("--jobs not allowed inside a batch");
      *jobs = parseIntOpt("--jobs", value(i));
      if (*jobs <= 0) usage("--jobs wants a positive count");
    } else if (opt == "--help" || opt == "-h") {
      usage();
    } else {
      usage(("unknown option " + opt).c_str());
    }
  }
  if (batchFile != nullptr && !batchFile->empty()) return a;  // batch driver
  if (a.width <= 0 || a.height <= 0) usage("--width/--height required");
  if (a.netsFile.empty() && a.seedDemo <= 0) usage("--nets required");
  return a;
}

/// One job's buffered results: nothing touches shared streams/files except
/// the per-job output paths, so concurrent jobs stay deterministic.
struct RunOutput {
  std::string summary;  ///< the stdout block
  std::string csvRow;   ///< one CSV line (empty when --csv absent)
  int exitCode = 0;
};

/// Routes one design inside its own RunContext. Everything the run
/// measures (metrics, trace, CSV fields except nothing here is timed) is
/// isolated in that context, so concurrent invocations with distinct
/// output paths produce byte-identical files to serial execution.
RunOutput runOne(const CliArgs& args) {
  RunOutput out;
  std::ostringstream os;

  RunContext ctx;
  if (args.threads > 0) ctx.setThreadCount(args.threads);
  // Full event capture only when someone will read the trace; the metrics
  // report only needs per-name aggregates.
  if (!args.traceFile.empty()) {
    ctx.setTraceLevel(TraceLevel::Full);
  } else if (!args.metricsFile.empty()) {
    ctx.setTraceLevel(TraceLevel::Aggregate);
  }
  RunContext::Scope bind(ctx);

  Netlist netlist;
  if (args.seedDemo > 0) {
    BenchmarkSpec spec;
    spec.name = "demo";
    spec.netCount = args.seedDemo;
    spec.width = args.width;
    spec.height = args.height;
    spec.layers = args.layers;
    netlist = makeBenchmark(spec).netlist;
  } else {
    std::ifstream f(args.netsFile);
    if (!f) {
      os << "cannot open " << args.netsFile << "\n";
      out.summary = os.str();
      out.exitCode = 1;
      return out;
    }
    netlist = readNetlist(f);
  }

  RoutingGrid grid(args.width, args.height, args.layers, DesignRules{});
  OverlayAwareRouter router(grid, netlist, args.router, &ctx);
  const RoutingStats stats = router.run();
  const OverlayReport report = router.physicalReport(args.decompose);

  os << "nets        " << stats.totalNets << "\n"
     << "threads     " << ctx.threadCount() << "\n"
     << "routed      " << stats.routedNets << " ("
     << stats.routability() << "%)\n"
     << "wirelength  " << stats.wirelength << " tracks, "
     << stats.vias << " vias, " << stats.ripUps << " rip-ups\n"
     << "overlay     " << report.sideOverlayNm << " nm in "
     << report.sideOverlaySections << " sections ("
     << report.hardOverlays << " hard)\n"
     << "tip overlays " << report.tipOverlays << "\n"
     << "cut conflicts " << report.cutConflicts() << "\n";
  if (stats.timingValid) {
    os << "worst slack " << stats.worstSlack << "\n";
  }
  if (args.router.negotiate) {
    os << "negotiate   " << stats.negotiateIters << " iters, "
       << stats.negotiateOverflow << " overflow\n";
  }

  for (int layer = 0; layer < grid.layers(); ++layer) {
    if (!args.svgPrefix.empty() || !args.maskPrefix.empty()) {
      const LayerDecomposition d = router.decompose(layer, args.decompose);
      if (!args.svgPrefix.empty()) {
        const auto frags = router.coloredFragments(layer);
        writeLayerSvgFile(args.svgPrefix + std::to_string(layer) + ".svg", d,
                          frags, grid.rules());
      }
      if (!args.maskPrefix.empty()) {
        std::ofstream mf(args.maskPrefix + std::to_string(layer) + ".masks");
        writeMasks(mf, d, layer);
      }
    }
  }
  if (!args.csvFile.empty()) {
    std::ostringstream row;
    row << stats.totalNets << ',' << stats.routability() << ','
        << report.sideOverlayNm << ',' << report.cutConflicts() << ','
        << report.hardOverlays << ',' << ctx.threadCount();
    // Timing columns only when the mode is on: default-mode rows (and
    // every consumer parsing them) stay byte-identical to older builds.
    if (stats.timingValid) {
      row << ',' << stats.worstSlack << ',' << stats.negotiateIters << ','
          << stats.negotiateOverflow;
    }
    row << "\n";
    out.csvRow = row.str();
  }
  if (!args.metricsFile.empty()) {
    std::ofstream mf(args.metricsFile);
    writeMetricsJson(
        mf, ctx.metrics(), ctx.trace().aggregates(),
        {{"nets", std::to_string(stats.totalNets)},
         {"routed", std::to_string(stats.routedNets)},
         {"routability", std::to_string(stats.routability())},
         {"wirelength", std::to_string(stats.wirelength)},
         {"vias", std::to_string(stats.vias)},
         {"ripups", std::to_string(stats.ripUps)},
         {"side_overlay_nm", std::to_string(report.sideOverlayNm)},
         {"cut_conflicts", std::to_string(report.cutConflicts())},
         {"hard_overlays", std::to_string(report.hardOverlays)},
         {"threads", std::to_string(ctx.threadCount())}});
    if (!mf) os << "cannot write " << args.metricsFile << "\n";
  }
  if (!args.traceFile.empty()) {
    std::ofstream tf(args.traceFile);
    ctx.trace().writeChromeTrace(tf);
    if (!tf) os << "cannot write " << args.traceFile << "\n";
  }
  out.summary = os.str();
  out.exitCode =
      report.cutConflicts() == 0 && report.hardOverlays == 0 ? 0 : 3;
  return out;
}

/// Appends a job's CSV row to its --csv file. Called from the main thread
/// only, in job order, so rows land deterministically even when jobs
/// shared one CSV path.
void appendCsv(const CliArgs& args, const RunOutput& out) {
  if (args.csvFile.empty() || out.csvRow.empty()) return;
  std::ofstream cf(args.csvFile, std::ios::app);
  cf << out.csvRow;
}

int runBatch(const std::string& batchFile, int jobs) {
  std::ifstream f(batchFile);
  if (!f) {
    std::cerr << "cannot open " << batchFile << "\n";
    return 1;
  }
  // Parse every line up front (parse errors exit before any work starts).
  std::vector<std::string> lines;
  std::vector<CliArgs> jobArgs;
  std::string line;
  while (std::getline(f, line)) {
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ls >> tok) tokens.push_back(tok);
    if (tokens.empty() || tokens.front()[0] == '#') continue;
    lines.push_back(line);
    jobArgs.push_back(parseTokens(tokens, nullptr, nullptr));
  }
  if (jobArgs.empty()) {
    std::cerr << "no jobs in " << batchFile << "\n";
    return 1;
  }

  std::vector<RunOutput> results(jobArgs.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobArgs.size()) return;
      results[i] = runOne(jobArgs[i]);
    }
  };
  const int threads =
      std::min<std::size_t>(std::size_t(jobs), jobArgs.size());
  std::vector<std::thread> pool;
  pool.reserve(std::size_t(threads));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  int exitCode = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::cout << "=== job " << i << ": " << lines[i] << "\n"
              << results[i].summary;
    appendCsv(jobArgs[i], results[i]);
    exitCode = std::max(exitCode, results[i].exitCode);
  }
  return exitCode;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens(argv + 1, argv + argc);
  std::string batchFile;
  int jobs = 1;
  const CliArgs args = parseTokens(tokens, &batchFile, &jobs);

  if (!batchFile.empty()) return runBatch(batchFile, jobs);

  const RunOutput out = runOne(args);
  std::cout << out.summary;
  appendCsv(args, out);
  return out.exitCode;
}
