# ctest smoke check: sadp_route_cli --batch/--jobs routes two designs
# concurrently and every artifact (mask planes, CSV rows) comes out
# byte-identical to running the same jobs one at a time.
# Invoked as:
#   cmake -DCLI=<path-to-sadp_route_cli> -DOUT_DIR=<scratch dir>
#         -P cli_batch_smoke.cmake
if(NOT CLI OR NOT OUT_DIR)
  message(FATAL_ERROR "pass -DCLI=<binary> and -DOUT_DIR=<dir>")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

# Two demo designs, each with mask + CSV output. Exit 3 (residual physical
# conflicts) is a legal routing outcome for demo instances.
set(JOB_A "--seed-demo 30 --width 100 --height 100 --threads 2")
set(JOB_B "--seed-demo 24 --width 90 --height 90 --threads 2")

foreach(job A B)
  separate_arguments(argv UNIX_COMMAND
      "${JOB_${job}} --masks ${OUT_DIR}/serial${job}_ --csv ${OUT_DIR}/serial${job}.csv")
  execute_process(COMMAND "${CLI}" ${argv}
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0 AND NOT rc EQUAL 3)
    message(FATAL_ERROR "serial job ${job} exited ${rc}\n${out}\n${err}")
  endif()
endforeach()

file(WRITE "${OUT_DIR}/jobs.list"
  "# batch smoke: same designs as the serial reference runs\n"
  "${JOB_A} --masks ${OUT_DIR}/batchA_ --csv ${OUT_DIR}/batchA.csv\n"
  "\n"
  "${JOB_B} --masks ${OUT_DIR}/batchB_ --csv ${OUT_DIR}/batchB.csv\n")
execute_process(COMMAND "${CLI}" --batch "${OUT_DIR}/jobs.list" --jobs 2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0 AND NOT rc EQUAL 3)
  message(FATAL_ERROR "batch run exited ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "=== job 0" OR NOT out MATCHES "=== job 1")
  message(FATAL_ERROR "batch stdout lacks per-job summaries:\n${out}")
endif()

# Every serial artifact must exist and match its batch twin byte for byte.
file(GLOB serial_files RELATIVE "${OUT_DIR}" "${OUT_DIR}/serial*")
list(LENGTH serial_files nfiles)
if(nfiles LESS 4)  # >=1 mask plane file + 1 csv per job
  message(FATAL_ERROR "expected serial artifacts, found: ${serial_files}")
endif()
foreach(f ${serial_files})
  string(REPLACE "serial" "batch" twin "${f}")
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  "${OUT_DIR}/${f}" "${OUT_DIR}/${twin}"
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "batch artifact ${twin} differs from serial ${f}")
  endif()
endforeach()
message(STATUS "cli batch smoke OK (${nfiles} artifacts byte-identical)")

# Malformed --jobs values must be rejected up front with the usage text --
# zero, negative, and the atoi-style silent truncation ("2x" read as 2).
foreach(bad "0" "-2" "2x")
  execute_process(COMMAND "${CLI}" --batch "${OUT_DIR}/jobs.list" --jobs "${bad}"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "--jobs ${bad} exited ${rc}, want usage error 2\n${err}")
  endif()
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "--jobs ${bad} stderr lacks usage text:\n${err}")
  endif()
endforeach()
message(STATUS "cli batch smoke OK (bad --jobs values rejected)")

# The timing/negotiation knobs parse strictly too: --negotiate-iters wants a
# positive integer, --history-cost a nonnegative decimal with no trailing
# junk (strtod would silently read "1.5x" as 1.5).
foreach(pair "--negotiate-iters;0" "--negotiate-iters;3x"
             "--history-cost;-1" "--history-cost;1.5x"
             "--history-cost;nan")
  list(GET pair 0 flag)
  list(GET pair 1 bad)
  execute_process(COMMAND "${CLI}" --negotiate "${flag}" "${bad}"
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "${flag} ${bad} exited ${rc}, want usage error 2\n${err}")
  endif()
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "${flag} ${bad} stderr lacks usage text:\n${err}")
  endif()
endforeach()
message(STATUS "cli batch smoke OK (bad timing option values rejected)")
