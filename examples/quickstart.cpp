// Quickstart: route a handful of nets on a small grid, decompose the
// result into SADP cut-process masks, and print the sign-off report.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines.
#include <iostream>

#include "route/router.hpp"

using namespace sadp;

int main() {
  // 1. A routing plane: 40x40 tracks, 3 layers, the paper's 10 nm rules.
  DesignRules rules;  // w_line = w_spacer = 20 nm, d_core = d_cut = 30 nm
  RoutingGrid grid(40, 40, 3, rules);

  // 2. A few two-pin nets (pins are grid nodes on layer 0).
  Netlist netlist;
  netlist.add("alpha", Pin{{{2, 10, 0}}}, Pin{{{30, 10, 0}}});
  netlist.add("beta", Pin{{{2, 11, 0}}}, Pin{{{30, 11, 0}}});   // adjacent
  netlist.add("gamma", Pin{{{2, 13, 0}}}, Pin{{{30, 13, 0}}});
  netlist.add("delta", Pin{{{5, 2, 0}}}, Pin{{{5, 30, 0}}});    // vertical
  netlist.add("eps", Pin{{{20, 2, 0}}}, Pin{{{34, 25, 0}}});    // L-shaped

  // 3. Route with the overlay-aware router (Algorithm 1 of the paper).
  OverlayAwareRouter router(grid, netlist);
  const RoutingStats stats = router.run();
  std::cout << "routed " << stats.routedNets << "/" << stats.totalNets
            << " nets, wirelength " << stats.wirelength << " tracks, "
            << stats.vias << " vias\n";

  // 4. Inspect the mask assignment the router chose per net and layer.
  for (const Net& n : netlist.nets) {
    std::cout << "  " << n.name << ": layer0 color = "
              << toString(router.model().colorOf(n.id, 0)) << "\n";
  }
  std::cout << "model side-overlay units: "
            << router.model().totalOverlayUnits() << "\n";

  // 5. Physical sign-off: synthesize core/spacer/cut masks and measure.
  const OverlayReport report = router.physicalReport();
  std::cout << "physical: side overlay " << report.sideOverlayNm << " nm in "
            << report.sideOverlaySections << " sections, "
            << report.hardOverlays << " hard, " << report.tipOverlays
            << " tip overlays, " << report.cutConflicts()
            << " cut conflicts\n";
  return report.hardOverlays == 0 && report.cutConflicts() == 0 ? 0 : 1;
}
