// Color-flipping playground (paper §III-C, Fig. 13/14): builds the paper's
// motivating situation -- nets A and B already routed and colored so that a
// third net C cannot take its shortest path -- and shows how flipping B's
// color unlocks the resource.
#include <iostream>

#include "patterning/flipping.hpp"
#include "ocg/overlay_model.hpp"

using namespace sadp;

namespace {

std::vector<GridNode> hPath(Track x0, Track x1, Track y) {
  std::vector<GridNode> p;
  for (Track x = x0; x < x1; ++x) p.push_back({x, y, 0});
  return p;
}

void printColors(const OverlayModel& m, std::initializer_list<NetId> nets) {
  for (NetId n : nets) {
    std::cout << "  net " << n << " = " << toString(m.colorOf(n, 0)) << "\n";
  }
}

}  // namespace

int main() {
  OverlayModel model(1, 40, 40);

  // A and B routed first: B lands one track from A, forcing opposite
  // colors (type 1-a). Pseudo-coloring assigns A=Core, B=Second.
  model.addNet(1, hPath(0, 12, 10));  // A
  model.pseudoColor(1);
  model.addNet(2, hPath(0, 12, 11));  // B
  model.pseudoColor(2);
  std::cout << "after routing A and B:\n";
  printColors(model, {1, 2});

  // C's shortest path runs one track above B. With B fixed at Second,
  // C must be Core (1-a). Fine -- but now add D one track above C, and
  // so on: the chain's colors are forced all the way up. The flipping DP
  // re-optimizes the whole chain in linear time when costs change.
  model.addNet(3, hPath(0, 12, 12));  // C
  model.pseudoColor(3);
  model.addNet(4, hPath(0, 12, 13));  // D
  model.pseudoColor(4);
  std::cout << "after routing C and D (chain of 1-a constraints):\n";
  printColors(model, {1, 2, 3, 4});
  std::cout << "total side-overlay units: " << model.totalOverlayUnits()
            << "\n";

  // Bias the chain: pretend net 1 strongly prefers Second (e.g. a stub
  // segment prior) and let the flipping engine find the global optimum.
  model.graph(0).setPrior(1, 5, 0);
  const FlipStats s = colorFlip(model.graph(0));
  std::cout << "after color flipping (cost " << s.costBefore << " -> "
            << s.costAfter << "):\n";
  printColors(model, {1, 2, 3, 4});

  // Hard constraints (alternating colors along the chain) must still hold.
  const bool alternating = model.colorOf(1, 0) != model.colorOf(2, 0) &&
                           model.colorOf(2, 0) != model.colorOf(3, 0) &&
                           model.colorOf(3, 0) != model.colorOf(4, 0);
  std::cout << (alternating ? "chain parity preserved\n"
                            : "PARITY VIOLATION\n");
  return alternating ? 0 : 1;
}
