// Odd-cycle decomposition demo (paper Fig. 2 / Fig. 21).
//
// Three mutually-close patterns form an odd coloring cycle: under the trim
// process (plain two-coloring) the layout is NOT decomposable; the cut
// process resolves it by merging two same-colored patterns and separating
// them with a cut pattern. This demo builds such a layout, shows that the
// parity check detects the trim-process conflict, then lets the coloring
// engine solve it with the merge technique and verifies the masks.
#include <iostream>

#include "patterning/flipping.hpp"
#include "ocg/overlay_model.hpp"
#include "sadp/svg.hpp"

using namespace sadp;

namespace {

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}

std::vector<GridNode> cells(const Fragment& f) {
  std::vector<GridNode> out;
  for (Track y = f.ylo; y < f.yhi; ++y) {
    for (Track x = f.xlo; x < f.xhi; ++x) out.push_back({x, y, 0});
  }
  return out;
}

}  // namespace

int main() {
  // The motif: wires A and C sit on rows 2 and 4; wire B bridges rows 3
  // with single-track overlaps to both, forming the cycle A-B, B-C, A-C.
  const std::vector<Fragment> layout{
      hw(1, 0, 5, 2),   // A
      hw(2, 4, 9, 3),   // B (corner overlap with A and C)
      hw(3, 0, 5, 4),   // C
  };

  // --- Trim-process view: plain two-coloring over "too close" pairs -------
  // Under the trim mask-spacing rule every pair here needs different
  // colors; three mutual "different" constraints are an odd cycle.
  ParityDsu trim;
  bool trimOk = true;
  trimOk &= trim.unite(1, 2, 1);
  trimOk &= trim.unite(2, 3, 1);
  trimOk &= trim.unite(1, 3, 1);
  std::cout << "trim process two-coloring: "
            << (trimOk ? "decomposable" : "ODD CYCLE -> not decomposable")
            << "\n";

  // --- Cut-process view: the scenario classifier + color flipping ---------
  OverlayModel model(1, 16, 16);
  for (const Fragment& f : layout) {
    const AddNetResult r = model.addNet(f.net, cells(f));
    if (r.hardViolation) {
      std::cout << "unexpected hard violation\n";
      return 1;
    }
    model.pseudoColor(f.net);
  }
  const FlipStats flip = colorFlip(model.graph(0));
  std::cout << "cut process coloring (after flipping, cost " << flip.costAfter
            << "):\n";
  std::vector<ColoredFragment> colored;
  for (const Fragment& f : layout) {
    const Color c = model.colorOf(f.net, 0);
    std::cout << "  net " << f.net << " -> "
              << (c == Color::Second ? "second pattern" : "core pattern")
              << "\n";
    colored.push_back({f, c == Color::Unassigned ? Color::Core : c});
  }

  // --- Physical verification: masks print without hard overlay ------------
  const DesignRules rules;
  const LayerDecomposition d = decomposeLayer(colored, rules);
  std::cout << "mask synthesis: side overlay " << d.report.sideOverlayNm
            << " nm, hard overlays " << d.report.hardOverlays
            << ", cut conflicts " << d.report.cutConflicts() << "\n";
  SvgOptions svg;
  svg.drawCut = true;
  writeLayerSvgFile("odd_cycle.svg", d, colored, rules, svg);
  std::cout << "wrote odd_cycle.svg (blue = core, green = second, grey = "
               "spacer, gold = assist cores)\n";
  return d.report.hardOverlays == 0 && d.report.cutConflicts() == 0 ? 0 : 1;
}
