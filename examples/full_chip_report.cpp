// Full-chip flow on a generated benchmark: route, decompose every layer,
// print a per-layer report, export the netlist and the layer-0 artwork.
//
//   $ ./full_chip_report [scale]    (default scale 0.1 of Test3)
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "netlist/benchmark.hpp"
#include "route/router.hpp"
#include "sadp/svg.hpp"

using namespace sadp;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  BenchmarkSpec spec = paperBenchmark("Test3");
  if (scale < 1.0) spec = spec.scaled(scale);
  std::cout << "generating " << spec.name << " at scale " << scale << ": "
            << spec.netCount << " nets on " << spec.width << "x"
            << spec.height << " tracks\n";
  BenchmarkInstance inst = makeBenchmark(spec);

  // The generated problem is an ordinary netlist; it round-trips through
  // the text format (useful for persisting experiments).
  {
    std::ofstream f("full_chip.nets");
    writeNetlist(f, inst.netlist);
  }

  OverlayAwareRouter router(inst.grid, inst.netlist);
  const RoutingStats stats = router.run();
  std::cout << "routability " << stats.routability() << "%, wirelength "
            << stats.wirelength << ", vias " << stats.vias << ", rip-ups "
            << stats.ripUps << "\n";

  for (int layer = 0; layer < inst.grid.layers(); ++layer) {
    const LayerDecomposition d = router.decompose(layer);
    std::cout << "layer " << layer << ": "
              << router.coloredFragments(layer).size() << " fragments, side "
              << d.report.sideOverlayNm << " nm / "
              << d.report.sideOverlaySections << " sections, hard "
              << d.report.hardOverlays << ", tips " << d.report.tipOverlays
              << ", conflicts " << d.report.cutConflicts() << "\n";
    if (layer == 0) {
      const auto frags = router.coloredFragments(layer);
      writeLayerSvgFile("full_chip_layer0.svg", d, frags, inst.grid.rules());
      std::cout << "  wrote full_chip_layer0.svg\n";
    }
  }
  std::cout << "wrote full_chip.nets (text netlist)\n";
  return 0;
}
