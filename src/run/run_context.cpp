#include "run/run_context.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace sadp {

namespace {

thread_local RunContext* t_current = nullptr;

/// Process-wide extra-worker pool. Reservations are serialized by a mutex
/// (one lock per parallelFor call, far off any hot path); the in-flight
/// count itself is atomic so globalExtraWorkersInFlight() can sample it
/// from monitoring/test threads without taking the lock.
std::mutex& poolMutex() {
  static std::mutex m;
  return m;
}
std::atomic<int> g_globalExtra{0};

/// SADP_THREADS > 0 wins, else hardware concurrency, floored at 1.
int detectThreads() {
  if (const char* env = std::getenv("SADP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

RunContext::RunContext()
    : metrics_(new MetricsRegistry()),
      trace_(new TraceSink()),
      ownsRegistries_(true),
      envThreads_(detectThreads()) {}

RunContext::RunContext(DefaultTag)
    : metrics_(&MetricsRegistry::instance()),
      trace_(&TraceSink::defaultSink()),
      ownsRegistries_(false),
      envThreads_(detectThreads()) {}

RunContext::~RunContext() {
  if (ownsRegistries_) {
    delete trace_;
    delete metrics_;
  }
}

int RunContext::threadCount() const {
  const int n = explicitThreads_.load(std::memory_order_relaxed);
  return n > 0 ? n : envThreads_;
}

void RunContext::setThreadCount(int n) {
  explicitThreads_.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int RunContext::reserveExtraWorkers(int want) {
  if (want <= 0) return 0;
  const int ctxCap = threadCount() - 1;
  const int globalCap = defaultContext().threadCount() - 1;
  std::lock_guard<std::mutex> lock(poolMutex());
  const int mine = extraInFlight_.load(std::memory_order_relaxed);
  const int global = g_globalExtra.load(std::memory_order_relaxed);
  const int grant = std::min({want, ctxCap - mine, globalCap - global});
  if (grant <= 0) return 0;
  extraInFlight_.store(mine + grant, std::memory_order_relaxed);
  g_globalExtra.store(global + grant, std::memory_order_relaxed);
  return grant;
}

int RunContext::fanOutWidth(int want) const {
  return std::max(1, std::min(want, threadCount()));
}

void RunContext::releaseExtraWorkers(int n) {
  if (n <= 0) return;
  std::lock_guard<std::mutex> lock(poolMutex());
  extraInFlight_.fetch_sub(n, std::memory_order_relaxed);
  g_globalExtra.fetch_sub(n, std::memory_order_relaxed);
}

CostHints RunContext::costHints() const {
  return {hintNsPerWord_.load(std::memory_order_relaxed),
          hintNsPerSetPx_.load(std::memory_order_relaxed)};
}

void RunContext::setCostHints(const CostHints& h) {
  hintNsPerWord_.store(h.nsPerWord, std::memory_order_relaxed);
  hintNsPerSetPx_.store(h.nsPerSetPx, std::memory_order_relaxed);
}

void RunContext::resetForRun() {
  metrics_->reset();
  trace_->clear();
  scratchArena_.reset();
  graphArena_.reset();
}

RunContext& RunContext::defaultContext() {
  static RunContext* ctx = new RunContext(DefaultTag{});  // leaked
  return *ctx;
}

RunContext& RunContext::current() {
  RunContext* ctx = t_current;
  return ctx ? *ctx : defaultContext();
}

RunContext::Scope::Scope(RunContext& ctx) {
  prevCtx_ = t_current;
  t_current = &ctx;
  prevMetrics_ = bindThreadMetricsRegistry(ctx.metrics_);
  prevSink_ = bindThreadTraceSink(ctx.trace_);
}

RunContext::Scope::~Scope() {
  bindThreadTraceSink(prevSink_);
  bindThreadMetricsRegistry(prevMetrics_);
  t_current = prevCtx_;
}

int globalExtraWorkersInFlight() {
  return g_globalExtra.load(std::memory_order_relaxed);
}

}  // namespace sadp
