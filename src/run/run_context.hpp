// Per-run execution context: the ownership root that makes the pipeline
// re-entrant (DESIGN.md §5.8).
//
// A RunContext owns everything one routing run measures or schedules with:
//
//   - a MetricsRegistry   (counters/histograms; fresh per run, so two
//                          sequential runs never double-count and two
//                          concurrent runs never cross-talk),
//   - a TraceSink         (trace level, span aggregates, event buffers),
//   - a thread budget     (explicit thread count > cached SADP_THREADS >
//                          hardware concurrency, plus the nested-worker
//                          reservation state parallelFor draws from).
//
// Every pipeline layer takes the context explicitly (router, A*, mask
// decomposition, baselines, eval, parallelFor). Code that predates the
// context -- SADP_SPAN call sites, metricsCounter(), the parallelFor
// overload without a context -- resolves through the calling thread's
// bound context (RunContext::Scope) and falls back to defaultContext(),
// which wraps the legacy process-wide singletons. parallelFor workers
// bind their loop's context, so a whole run traced under one context
// stays in that context across any nesting of parallel loops.
//
// Thread-safety: a context may be shared by the threads of its own run
// (parallelFor does exactly that); distinct concurrent runs must use
// distinct contexts -- that is the isolation contract, stress-checked by
// tests/test_concurrent.cpp. A non-default context must outlive all work
// started under it.
#pragma once

#include <atomic>
#include <string>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/arena.hpp"

namespace sadp {

/// Linear cost model for weight-scheduled loops (parallelForWeighted):
/// estimated ns per raster word of band area plus ns per set pixel of
/// band population. All-zero means "no hint" and consumers fall back to
/// their built-in defaults. Typically produced by fitCostHints
/// (src/sadp/decompose.hpp) from one traced run and installed on the
/// context of the next (setCostHints) -- the hints only reorder work
/// assignment, never results, so a stale or wrong hint is a performance
/// bug at worst.
struct CostHints {
  double nsPerWord = 0.0;
  double nsPerSetPx = 0.0;
  bool empty() const { return !(nsPerWord > 0.0) && !(nsPerSetPx > 0.0); }
};

class RunContext {
 public:
  /// Fresh registries; thread count from SADP_THREADS (parsed once here)
  /// else hardware concurrency; trace level Off.
  RunContext();
  ~RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  MetricsRegistry& metrics() const { return *metrics_; }
  TraceSink& trace() const { return *trace_; }
  void setTraceLevel(TraceLevel lvl) { trace_->setLevel(lvl); }
  TraceLevel traceLevel() const { return trace_->level(); }

  /// Effective worker-thread count of this context. Precedence: explicit
  /// setThreadCount() > SADP_THREADS (cached once at construction) >
  /// std::thread::hardware_concurrency().
  int threadCount() const;
  /// Explicit override; n <= 0 restores the cached env/hardware default.
  void setThreadCount(int n);

  /// Nested-worker budget (parallelFor's reservation protocol): grants up
  /// to `want` extra (non-caller) workers, bounded by BOTH this context's
  /// budget of threadCount() - 1 and the process-wide pool of
  /// defaultContext().threadCount() - 1, so any number of concurrent
  /// contexts never oversubscribes the machine. Never blocks; a loop that
  /// gets 0 runs inline.
  int reserveExtraWorkers(int want);
  void releaseExtraWorkers(int n);

  /// Width for a nested fan-out of `want` concurrent items launched from
  /// work running under this context: 1 .. min(want, threadCount()).
  /// A caller hosting its own child context for an inner parallel stage
  /// (the router's speculative wave batches) sizes that context with this
  /// so the nested loop reuses the run's configured worker budget instead
  /// of a fresh env-derived default; the process-wide reservation pool
  /// still bounds how many extra workers actually materialize.
  int fanOutWidth(int want) const;

  /// Scheduler cost hints consumed by weight-scheduled passes (the
  /// dynamic band scheduler of decomposeLayer). Install between runs:
  /// the two fields are stored as independent relaxed atomics, so a
  /// setCostHints racing live work could be observed half-applied
  /// (harmless for results, but not a sensible thing to do).
  CostHints costHints() const;
  void setCostHints(const CostHints& h);

  /// Default patterning backend for work run under this context, by
  /// registry name ("sadp2", "tpl3"; empty = sadp2). Consumed by the
  /// router when RouterOptions::backend is null -- the service sets it per
  /// session from the load request, the CLI from --backend. Install
  /// between runs only: a plain string, deliberately unsynchronized, like
  /// every other between-runs knob here.
  const std::string& patterningBackendName() const {
    return patterningBackend_;
  }
  void setPatterningBackendName(std::string name) {
    patterningBackend_ = std::move(name);
  }

  /// Per-run bump arenas (DESIGN.md §5.9). Both are touched only by the
  /// run's driving thread -- the router / A* / coloring path; parallelFor
  /// workers never allocate from them. `scratchArena` is rewound by
  /// ArenaScope at the end of every route()/colorFlip() call, so a warm
  /// run allocates nothing from the global allocator; `graphArena` backs
  /// allocations whose lifetime is the run itself (OCG edge/adjacency
  /// storage) and is reclaimed when the context dies.
  Arena& scratchArena() { return scratchArena_; }
  Arena& graphArena() { return graphArena_; }

  /// Restores the context to a fresh-run state: zeroes every counter and
  /// histogram, drops trace aggregates/events, and reclaims both arenas.
  /// Only valid between runs -- no work may be in flight under this
  /// context, no ArenaScope open, and nothing allocated from graphArena
  /// may still be referenced (a long-lived service session calls this
  /// before each replay so per-request metrics start at zero and the
  /// previous replay's OCG storage is reclaimed instead of accreting).
  void resetForRun();

  /// The process-default context: wraps MetricsRegistry::instance() and
  /// TraceSink::defaultSink(), honors setParallelThreads(). What unbound
  /// threads and pre-context call sites resolve to.
  static RunContext& defaultContext();
  /// The calling thread's bound context (defaultContext() when unbound).
  static RunContext& current();

  /// Binds a context to the calling thread for a scope: SADP_SPAN,
  /// metricsCounter() and context-less parallelFor inside the scope
  /// resolve to it. Nests; restores the previous binding on destruction.
  class Scope {
   public:
    explicit Scope(RunContext& ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RunContext* prevCtx_;
    MetricsRegistry* prevMetrics_;
    TraceSink* prevSink_;
  };

 private:
  struct DefaultTag {};
  explicit RunContext(DefaultTag);

  MetricsRegistry* metrics_;  ///< owned unless this is the default context
  TraceSink* trace_;          ///< owned unless this is the default context
  bool ownsRegistries_;
  int envThreads_;  ///< SADP_THREADS > 0, else hardware; parsed at ctor
  std::atomic<int> explicitThreads_{0};
  std::atomic<int> extraInFlight_{0};
  std::atomic<double> hintNsPerWord_{0.0};
  std::atomic<double> hintNsPerSetPx_{0.0};
  Arena scratchArena_;  ///< rewound per search/flip; see scratchArena()
  Arena graphArena_;    ///< run-lifetime allocations; see graphArena()
  std::string patterningBackend_;  ///< empty = sadp2; see accessor above
};

/// Extra (non-caller) parallelFor workers currently alive across every
/// context (test/monitoring hook; bounded by
/// RunContext::defaultContext().threadCount() - 1).
int globalExtraWorkersInFlight();

}  // namespace sadp
