#include "patterning/flipping.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory_resource>

#include "ocg/overlay_model.hpp"
#include "run/run_context.hpp"
#include "util/arena.hpp"

namespace sadp {

namespace {

constexpr std::int64_t kHardWeight = std::int64_t(kHardCost) * 16;

std::int64_t entryCost(const Classification& cls, int idx) {
  std::int64_t c = cls.overlay[idx];
  if (cls.cutRisk[idx]) c += OverlayConstraintGraph::kCutRiskPenalty;
  return c;
}

}  // namespace

ReducedGraph reduceGraph(const OverlayConstraintGraph& g) {
  ReducedGraph rg;
  const std::size_t n = g.vertexCount();
  rg.classIndexOfVertex.resize(n);
  rg.parityOfVertex.resize(n);

  // Dense-index the class roots.
  std::unordered_map<std::uint32_t, std::uint32_t> rootToClass;
  for (std::uint32_t v = 0; v < n; ++v) {
    auto [root, par] = g.hardClassOf(v);
    auto [it, inserted] =
        rootToClass.try_emplace(root, std::uint32_t(rootToClass.size()));
    rg.classIndexOfVertex[v] = it->second;
    rg.parityOfVertex[v] = par;
    if (inserted) rg.classColor.push_back(Color::Unassigned);
  }
  // Class color = color of any member XOR its parity; read through roots.
  for (std::uint32_t v = 0; v < n; ++v) {
    const Color c = g.colorOf(g.netOf(v));
    if (c == Color::Unassigned) continue;
    const Color rootColor = rg.parityOfVertex[v] ? flippedColor(c) : c;
    rg.classColor[rg.classIndexOfVertex[v]] = rootColor;
  }

  // Aggregate cross-class edges per unordered class pair; intra-class
  // non-hard edges and per-vertex priors contribute per-class self-costs.
  rg.selfCost.assign(rg.classColor.size(), {0, 0});
  for (std::uint32_t v = 0; v < n; ++v) {
    for (int c = 0; c < 2; ++c) {
      const Color vc = rg.parityOfVertex[v]
                           ? flippedColor(Color(c))
                           : Color(c);
      rg.selfCost[rg.classIndexOfVertex[v]][c] += g.priorOf(v, vc);
    }
  }
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> pairIndex;
  for (const OcgEdge& e : g.edges()) {
    if (!e.alive) continue;
    const std::uint32_t cu = rg.classIndexOfVertex[e.u];
    const std::uint32_t cv = rg.classIndexOfVertex[e.v];
    if (cu == cv) {
      const std::uint8_t pu = rg.parityOfVertex[e.u];
      const std::uint8_t pv = rg.parityOfVertex[e.v];
      for (int c = 0; c < 2; ++c) {
        rg.selfCost[cu][c] += entryCost(e.cls, (c ^ pu) * 2 + (c ^ pv));
      }
      continue;
    }
    const std::uint8_t pu = rg.parityOfVertex[e.u];
    const std::uint8_t pv = rg.parityOfVertex[e.v];
    const bool ordered = cu < cv;
    const auto key = ordered ? std::make_pair(cu, cv) : std::make_pair(cv, cu);
    auto [it, inserted] = pairIndex.try_emplace(key, rg.edges.size());
    if (inserted) {
      ReducedEdge re;
      re.u = key.first;
      re.v = key.second;
      rg.edges.push_back(re);
    }
    ReducedEdge& re = rg.edges[it->second];
    re.hard |= e.hard();
    // Fold member parities: class assignment (a, b) on (re.u, re.v) means
    // vertex colors (a ^ p, b ^ p'); map to the edge's (u, v) order.
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        const int au = (ordered ? a : b) ^ pu;  // color index of e.u
        const int bv = (ordered ? b : a) ^ pv;  // color index of e.v
        re.cost[a * 2 + b] += entryCost(e.cls, au * 2 + bv);
      }
    }
  }
  // Edge significance: spread between worst and best finite outcome; hard
  // edges always dominate (paper: "a constant larger than any cost").
  for (ReducedEdge& re : rg.edges) {
    std::int64_t lo = re.cost[0], hi = re.cost[0];
    for (std::int64_t c : re.cost) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    re.weight = re.hard ? kHardWeight + (hi - lo) : hi - lo;
  }
  return rg;
}

namespace {

/// Plain union-find for component extraction / Kruskal: union by size with
/// path halving, storage bump-allocated from the run's scratch arena (the
/// caller's ArenaScope reclaims it).
class Dsu {
 public:
  Dsu(Arena& a, std::size_t n)
      : parent_(a.allocArray<std::uint32_t>(n)),
        size_(a.allocArray<std::uint32_t>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = std::uint32_t(i);
      size_[i] = 1;
    }
  }
  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = std::uint32_t(a);
    size_[a] += size_[b];
    return true;
  }

 private:
  std::uint32_t* parent_;
  std::uint32_t* size_;
};

std::int64_t edgeCostUnder(const ReducedEdge& e, Color cu, Color cv) {
  if (cu == Color::Unassigned || cv == Color::Unassigned) {
    std::int64_t best = e.cost[0];
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        if (cu != Color::Unassigned && int(cu) != a) continue;
        if (cv != Color::Unassigned && int(cv) != b) continue;
        best = std::min(best, e.cost[a * 2 + b]);
      }
    }
    return best;
  }
  return e.cost[int(cu) * 2 + int(cv)];
}

}  // namespace

std::vector<Color> treeDpAssign(const ReducedGraph& rg,
                                const std::vector<std::size_t>& treeEdges,
                                std::size_t rootClass) {
  std::vector<Color> out(rg.classCount(), Color::Unassigned);
  // Every DP table below is scratch bump-allocated from the run's arena;
  // the scope rewind reclaims it wholesale (DESIGN.md §5.9).
  Arena& arena = RunContext::current().scratchArena();
  ArenaScope scope(arena);
  // Adjacency over tree edges.
  std::pmr::unordered_map<std::uint32_t, std::pmr::vector<std::size_t>> adj(
      &arena);
  for (std::size_t ei : treeEdges) {
    adj[rg.edges[ei].u].push_back(ei);
    adj[rg.edges[ei].v].push_back(ei);
  }
  // Iterative DFS order from the root.
  struct Visit {
    std::uint32_t node;
    std::uint32_t parent;
    std::size_t parentEdge;
  };
  std::pmr::vector<Visit> order(&arena);
  std::pmr::vector<Visit> stack(&arena);
  stack.push_back({std::uint32_t(rootClass), std::uint32_t(-1), 0});
  std::pmr::vector<char> seen(rg.classCount(), 0, &arena);
  while (!stack.empty()) {
    Visit v = stack.back();
    stack.pop_back();
    if (seen[v.node]) continue;
    seen[v.node] = 1;
    order.push_back(v);
    for (std::size_t ei : adj[v.node]) {
      const ReducedEdge& e = rg.edges[ei];
      const std::uint32_t next = (e.u == v.node) ? e.v : e.u;
      if (!seen[next]) stack.push_back({next, v.node, ei});
    }
  }
  // Bottom-up DP, eq. (4): cost[node][c] = selfCost[node][c] + sum over
  // children of min_p (cost[child][p] + edgeCost(c, p)).
  std::pmr::vector<std::array<std::int64_t, 2>> cost(
      rg.selfCost.begin(), rg.selfCost.end(), &arena);
  cost.resize(rg.classCount(), {0, 0});
  // childBest[childNode][parentColor] = chosen child color
  std::pmr::vector<std::array<Color, 2>> childBest(
      rg.classCount(), {Color::Unassigned, Color::Unassigned}, &arena);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Visit& v = *it;
    if (v.parent == std::uint32_t(-1)) continue;
    const ReducedEdge& e = rg.edges[v.parentEdge];
    for (int pc = 0; pc < 2; ++pc) {
      std::int64_t best = -1;
      Color bestColor = Color::Core;
      for (int cc = 0; cc < 2; ++cc) {
        // Edge cost with the parent's color on the parent endpoint.
        const bool parentIsU = (e.u == v.parent);
        const int idx = parentIsU ? pc * 2 + cc : cc * 2 + pc;
        const std::int64_t total = cost[v.node][cc] + e.cost[idx];
        if (best < 0 || total < best) {
          best = total;
          bestColor = Color(cc);
        }
      }
      cost[v.parent][pc] += best;
      childBest[v.node][pc] = bestColor;
    }
  }
  // Backtrace from the root.
  const int rootColor = cost[rootClass][0] <= cost[rootClass][1] ? 0 : 1;
  out[rootClass] = Color(rootColor);
  for (const Visit& v : order) {
    if (v.parent == std::uint32_t(-1)) continue;
    const Color pc = out[v.parent];
    assert(pc != Color::Unassigned);
    out[v.node] = childBest[v.node][int(pc)];
  }
  return out;
}

FlipStats colorFlip(OverlayConstraintGraph& g) {
  FlipStats stats;
  ReducedGraph rg = reduceGraph(g);
  if (rg.classCount() == 0) return stats;

  Arena& arena = RunContext::current().scratchArena();
  ArenaScope scope(arena);

  // Components over all reduced edges.
  Dsu comp(arena, rg.classCount());
  for (const ReducedEdge& e : rg.edges) comp.unite(e.u, e.v);
  std::unordered_map<std::size_t, std::vector<std::size_t>> edgesOfComp;
  for (std::size_t ei = 0; ei < rg.edges.size(); ++ei) {
    edgesOfComp[comp.find(rg.edges[ei].u)].push_back(ei);
  }

  std::vector<Color> newColors = rg.classColor;  // start from current
  for (auto& [root, compEdges] : edgesOfComp) {
    ++stats.components;
    // Cost of the component under the current coloring. A component with
    // uncolored classes has no meaningful "before": always take the DP.
    std::int64_t before = 0;
    bool anyUncolored = false;
    std::vector<std::uint32_t> compClasses;
    for (std::size_t ei : compEdges) {
      const ReducedEdge& e = rg.edges[ei];
      anyUncolored |= rg.classColor[e.u] == Color::Unassigned ||
                      rg.classColor[e.v] == Color::Unassigned;
      before += edgeCostUnder(e, rg.classColor[e.u], rg.classColor[e.v]);
      compClasses.push_back(e.u);
      compClasses.push_back(e.v);
    }
    std::sort(compClasses.begin(), compClasses.end());
    compClasses.erase(std::unique(compClasses.begin(), compClasses.end()),
                      compClasses.end());
    auto selfCostUnder = [&](std::uint32_t c, Color col) {
      if (col == Color::Unassigned) {
        return std::min(rg.selfCost[c][0], rg.selfCost[c][1]);
      }
      return rg.selfCost[c][int(col)];
    };
    for (std::uint32_t c : compClasses) {
      before += selfCostUnder(c, rg.classColor[c]);
    }
    stats.costBefore += before;

    // Maximum spanning tree (Kruskal on descending weight). Per-component
    // scratch opens a nested scope so the arena does not grow with the
    // component count.
    ArenaScope mstScope(arena);
    std::vector<std::size_t> sorted = compEdges;
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return rg.edges[a].weight > rg.edges[b].weight;
    });
    Dsu mst(arena, rg.classCount());
    std::vector<std::size_t> treeEdges;
    for (std::size_t ei : sorted) {
      if (mst.unite(rg.edges[ei].u, rg.edges[ei].v)) treeEdges.push_back(ei);
    }

    std::vector<Color> dp = treeDpAssign(rg, treeEdges, root);
    // True component cost under the DP coloring (non-tree edges included).
    std::int64_t after = 0;
    for (std::size_t ei : compEdges) {
      const ReducedEdge& e = rg.edges[ei];
      after += edgeCostUnder(e, dp[e.u], dp[e.v]);
    }
    for (std::uint32_t c : compClasses) after += selfCostUnder(c, dp[c]);
    if (after <= before || anyUncolored) {
      bool changed = false;
      for (std::size_t c = 0; c < rg.classCount(); ++c) {
        if (dp[c] != Color::Unassigned && dp[c] != newColors[c]) {
          changed = true;
        }
        if (dp[c] != Color::Unassigned) newColors[c] = dp[c];
      }
      stats.costAfter += after;
      if (changed && after < before) ++stats.componentsImproved;
    } else {
      stats.costAfter += before;
    }
  }

  // Classes untouched by any reduced edge (isolated or intra-only) are
  // optimized directly by their self-cost (ties keep the current color).
  std::vector<char> inComponent(rg.classCount(), 0);
  for (const ReducedEdge& e : rg.edges) {
    inComponent[e.u] = 1;
    inComponent[e.v] = 1;
  }
  for (std::size_t c = 0; c < rg.classCount(); ++c) {
    if (inComponent[c]) continue;
    const std::int64_t coreCost = rg.selfCost[c][0];
    const std::int64_t secondCost = rg.selfCost[c][1];
    if (newColors[c] == Color::Unassigned || coreCost != secondCost) {
      newColors[c] = coreCost <= secondCost ? Color::Core : Color::Second;
    }
  }

  // Push class colors back to per-vertex colors.
  std::vector<Color> vertexColors(g.vertexCount(), Color::Unassigned);
  for (std::uint32_t v = 0; v < g.vertexCount(); ++v) {
    const Color cc = newColors[rg.classIndexOfVertex[v]];
    if (cc == Color::Unassigned) continue;
    vertexColors[v] = rg.parityOfVertex[v] ? flippedColor(cc) : cc;
  }
  g.applyColors(vertexColors);
  return stats;
}

FlipStats colorFlipAll(OverlayModel& model) {
  FlipStats total;
  for (int layer = 0; layer < model.layers(); ++layer) {
    const FlipStats s = colorFlip(model.graph(layer));
    total.costBefore += s.costBefore;
    total.costAfter += s.costAfter;
    total.components += s.components;
    total.componentsImproved += s.componentsImproved;
  }
  return total;
}

}  // namespace sadp
