// Triple-patterning backend (DESIGN.md §5.13).
//
// Reinterprets the scenario taxonomy over three exposure masks, LPT-style
// (TRIAD; Yu et al.): every hard scenario becomes "must use different
// masks", so the hard structure is equality-free -- the group DSU holds
// only singleton classes and an odd cycle of must-differ edges, fatal
// under two colors, is 3-colorable. That is exactly the E5/E6 unroutable
// residue of the SADP cut process this backend exists to absorb.
//
// Recoloring: per connected component of the class graph, an exact
// branch-and-bound enumeration when the component is small (<= 12 classes,
// the oracle-checked regime) and deterministic greedy + local search
// beyond that. Acceptance is monotone like the SADP flipping pass: a
// component keeps its old colors unless the new ones are no worse.
//
// Mask synthesis: one metal plane per color (LayerDecomposition::masks),
// target = their union; overlays are measured from the scenario model
// under the assigned colors (there is no spacer/cut geometry to raster).
#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "patterning/backend.hpp"
#include "run/run_context.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

namespace {

constexpr int kPxNm = 10;  ///< raster resolution, matches decompose.cpp

/// Largest component solved by exact enumeration (3^12 with pruning).
constexpr std::size_t kExhaustiveClasses = 12;
constexpr int kLocalSearchPasses = 8;

/// TPL interpretation of each scenario type: cost of printing the pair on
/// the SAME mask (different masks always cost 0 -- separate exposures do
/// not interact). The geometry names are backend-neutral (scenario.hpp);
/// only this table is TPL-specific. @1-track neighbors of any orientation
/// are same-mask-forbidden (sub-resolution pitch on one exposure);
/// @2-track and diagonal neighbors pay a proximity unit on a shared mask.
struct TplRule {
  std::int64_t sameCost = 0;
  bool material = false;
};

TplRule tplRule(ScenarioType t) {
  switch (t) {
    case ScenarioType::T1a:
    case ScenarioType::T1b:
    case ScenarioType::T2c:
      return {kHardCost, true};
    case ScenarioType::T2a:
    case ScenarioType::T2b:
    case ScenarioType::T3a:
    case ScenarioType::T3b:
      return {1, true};
    default:
      return {0, false};
  }
}

std::int64_t tplPairOverlay(const Classification& cls, int ia, int ib) {
  return ia == ib ? tplRule(cls.type).sameCost : 0;
}

bool tplPairCutRisk(const Classification&, int, int) {
  return false;  // no cut mask in the TPL process
}

bool tplMaterial(const Classification& cls) {
  return tplRule(cls.type).material;
}

int tplHardRelation(const Classification& cls) {
  // Hard scenarios all mean "different masks"; TPL has no must-same
  // relation (the cut-process merge technique does not exist here).
  return tplRule(cls.type).sameCost >= kHardCost ? 1 : -1;
}

// ---- Recoloring ------------------------------------------------------------

/// Aggregated inter-class edge: total cost when the classes share a color
/// vs. use different colors (TPL costs depend only on same/differ).
struct PairCost {
  std::uint32_t u = 0;  // dense class ids, u < v
  std::uint32_t v = 0;
  std::int64_t same = 0;
  std::int64_t diff = 0;
};

struct ClassGraph {
  std::vector<std::uint32_t> classOfVertex;  // vertex -> dense class id
  std::vector<std::uint32_t> firstVertex;    // class -> lowest member vertex
  std::vector<PairCost> pairs;
  std::vector<std::vector<std::uint32_t>> adj;  // class -> pair indices
  /// Per-class prior under each color (summed over members).
  std::vector<std::array<std::int64_t, 3>> prior;
  std::int64_t intraConst = 0;  ///< same-class edges: constant cost
};

ClassGraph buildClassGraph(const OverlayConstraintGraph& g) {
  ClassGraph cg;
  const std::size_t n = g.vertexCount();
  cg.classOfVertex.resize(n);
  std::unordered_map<std::uint32_t, std::uint32_t> idOfRoot;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t root = g.hardClassOf(v).first;
    auto [it, inserted] =
        idOfRoot.emplace(root, std::uint32_t(cg.firstVertex.size()));
    if (inserted) cg.firstVertex.push_back(v);
    cg.classOfVertex[v] = it->second;
  }
  const std::size_t C = cg.firstVertex.size();
  cg.adj.resize(C);
  cg.prior.assign(C, {0, 0, 0});
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t c = cg.classOfVertex[v];
    for (int ci = 0; ci < 3; ++ci) {
      cg.prior[c][ci] += g.priorOf(v, colorFromIndex(ci));
    }
  }
  std::unordered_map<std::uint64_t, std::uint32_t> pairIndex;
  for (const OcgEdge& e : g.edges()) {
    if (!e.alive) continue;
    const std::uint32_t cu = cg.classOfVertex[e.u];
    const std::uint32_t cv = cg.classOfVertex[e.v];
    const std::int64_t same = tplPairOverlay(e.cls, 0, 0);
    const std::int64_t diff = tplPairOverlay(e.cls, 0, 1);
    if (cu == cv) {
      // Same equality class: both endpoints always share a color.
      cg.intraConst += same;
      continue;
    }
    const std::uint32_t lo = std::min(cu, cv), hi = std::max(cu, cv);
    const std::uint64_t key = (std::uint64_t(lo) << 32) | hi;
    auto [it, inserted] =
        pairIndex.emplace(key, std::uint32_t(cg.pairs.size()));
    if (inserted) {
      cg.pairs.push_back(PairCost{lo, hi, 0, 0});
      cg.adj[lo].push_back(it->second);
      cg.adj[hi].push_back(it->second);
    }
    cg.pairs[it->second].same += same;
    cg.pairs[it->second].diff += diff;
  }
  return cg;
}

/// Cost of one component under per-class color indices (-1 = unassigned,
/// charged optimistically).
std::int64_t componentCost(const ClassGraph& cg,
                           const std::vector<std::uint32_t>& members,
                           const std::vector<std::uint32_t>& pairIds,
                           const std::vector<int>& color) {
  std::int64_t total = 0;
  for (std::uint32_t pi : pairIds) {
    const PairCost& p = cg.pairs[pi];
    const int a = color[p.u], b = color[p.v];
    if (a < 0 || b < 0) {
      total += std::min(p.same, p.diff);
    } else {
      total += (a == b) ? p.same : p.diff;
    }
  }
  for (std::uint32_t c : members) {
    if (color[c] >= 0) total += cg.prior[c][color[c]];
  }
  return total;
}

/// Exact branch-and-bound over 3^|order| assignments. `order` is the
/// deterministic decision order; `best` holds the incumbent on return.
void exhaustiveAssign(const ClassGraph& cg,
                      const std::vector<std::uint32_t>& order,
                      std::vector<int>& color, std::int64_t partial,
                      std::size_t depth, std::vector<int>& best,
                      std::int64_t& bestCost) {
  if (partial >= bestCost) return;  // bound (costs are non-negative)
  if (depth == order.size()) {
    bestCost = partial;
    best = color;
    return;
  }
  const std::uint32_t c = order[depth];
  for (int ci = 0; ci < 3; ++ci) {
    std::int64_t delta = cg.prior[c][ci];
    for (std::uint32_t pi : cg.adj[c]) {
      const PairCost& p = cg.pairs[pi];
      const std::uint32_t other = (p.u == c) ? p.v : p.u;
      const int oc = color[other];
      if (oc < 0) continue;  // not yet decided: charged at its own turn
      delta += (oc == ci) ? p.same : p.diff;
    }
    color[c] = ci;
    exhaustiveAssign(cg, order, color, partial + delta, depth + 1, best,
                     bestCost);
    color[c] = -1;
  }
}

/// Deterministic greedy + local search for large components.
void greedyAssign(const ClassGraph& cg, const std::vector<std::uint32_t>& order,
                  std::vector<int>& color) {
  auto costAt = [&](std::uint32_t c, int ci) {
    std::int64_t d = cg.prior[c][ci];
    for (std::uint32_t pi : cg.adj[c]) {
      const PairCost& p = cg.pairs[pi];
      const std::uint32_t other = (p.u == c) ? p.v : p.u;
      const int oc = color[other];
      if (oc < 0) continue;
      d += (oc == ci) ? p.same : p.diff;
    }
    return d;
  };
  for (std::uint32_t c : order) {
    int bestCi = 0;
    std::int64_t bestD = costAt(c, 0);
    for (int ci = 1; ci < 3; ++ci) {
      const std::int64_t d = costAt(c, ci);
      if (d < bestD) {
        bestD = d;
        bestCi = ci;
      }
    }
    color[c] = bestCi;
  }
  // Local search to a fixpoint (bounded passes): one-class moves in
  // deterministic order, strict improvement only -- enough to resolve the
  // residual conflicts greedy leaves on odd structures.
  for (int pass = 0; pass < kLocalSearchPasses; ++pass) {
    bool changed = false;
    for (std::uint32_t c : order) {
      const int cur = color[c];
      const std::int64_t curD = costAt(c, cur);
      int bestCi = cur;
      std::int64_t bestD = curD;
      for (int ci = 0; ci < 3; ++ci) {
        if (ci == cur) continue;
        const std::int64_t d = costAt(c, ci);
        if (d < bestD) {
          bestD = d;
          bestCi = ci;
        }
      }
      if (bestCi != cur) {
        color[c] = bestCi;
        changed = true;
      }
    }
    if (!changed) break;
  }
}

// ---- Backend ---------------------------------------------------------------

constexpr std::uint64_t kTpl3SynthId = 0x791a'dc01'0003'0001ull;

class Tpl3Backend final : public PatterningBackend {
 public:
  const PatterningSpec& spec() const override {
    static const PatterningSpec kSpec{/*colorCount=*/3,
                                      /*id=*/kTpl3SynthId,
                                      /*name=*/"tpl3",
                                      /*pairOverlay=*/&tplPairOverlay,
                                      /*pairCutRisk=*/&tplPairCutRisk,
                                      /*material=*/&tplMaterial,
                                      /*hardRelation=*/&tplHardRelation};
    return kSpec;
  }

  FlipStats recolor(OverlayConstraintGraph& g) const override;

  std::uint64_t synthId() const override { return kTpl3SynthId; }
  int maskCount() const override { return 3; }

  LayerDecomposition synthesize(std::span<const ColoredFragment> frags,
                                const DesignRules& rules,
                                const DecomposeOptions& opts) const override;
};

FlipStats Tpl3Backend::recolor(OverlayConstraintGraph& g) const {
  FlipStats stats;
  const std::size_t n = g.vertexCount();
  if (n == 0) return stats;
  const ClassGraph cg = buildClassGraph(g);
  const std::size_t C = cg.firstVertex.size();

  // Current per-class colors (dense index form; -1 = unassigned).
  std::vector<int> current(C, -1);
  for (std::uint32_t c = 0; c < C; ++c) {
    current[c] = colorIndex(g.colorOf(g.netOf(cg.firstVertex[c])));
  }

  // Connected components over inter-class pairs, deterministic by lowest
  // class id.
  std::vector<std::uint32_t> comp(C);
  for (std::uint32_t c = 0; c < C; ++c) comp[c] = c;
  bool mergedAny = true;
  while (mergedAny) {  // label propagation; class graphs are tiny
    mergedAny = false;
    for (const PairCost& p : cg.pairs) {
      const std::uint32_t lo = std::min(comp[p.u], comp[p.v]);
      if (comp[p.u] != lo || comp[p.v] != lo) {
        comp[p.u] = comp[p.v] = lo;
        mergedAny = true;
      }
    }
  }
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> byComp;
  for (std::uint32_t c = 0; c < C; ++c) byComp[comp[c]].push_back(c);
  std::vector<std::uint32_t> compIds;
  for (const auto& [id, members] : byComp) compIds.push_back(id);
  std::sort(compIds.begin(), compIds.end());

  std::vector<int> result = current;
  for (std::uint32_t id : compIds) {
    const std::vector<std::uint32_t>& members = byComp[id];
    ++stats.components;
    // Pair ids local to this component (each pair counted once via u).
    std::vector<std::uint32_t> pairIds;
    for (std::uint32_t c : members) {
      for (std::uint32_t pi : cg.adj[c]) {
        if (cg.pairs[pi].u == c) pairIds.push_back(pi);
      }
    }
    bool anyUncolored = false;
    for (std::uint32_t c : members) anyUncolored |= current[c] < 0;
    const std::int64_t before =
        componentCost(cg, members, pairIds, current);

    // Decision order: degree desc, id asc (deterministic; high-degree
    // first tightens the branch-and-bound and seeds greedy sensibly).
    std::vector<std::uint32_t> order = members;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const std::size_t da = cg.adj[a].size();
                const std::size_t db = cg.adj[b].size();
                return da != db ? da > db : a < b;
              });

    std::vector<int> trial(C, -1);
    if (members.size() <= kExhaustiveClasses) {
      std::vector<int> scratch(C, -1);
      std::int64_t bestCost = std::numeric_limits<std::int64_t>::max();
      exhaustiveAssign(cg, order, scratch, 0, 0, trial, bestCost);
    } else {
      trial.assign(C, -1);
      greedyAssign(cg, order, trial);
    }
    const std::int64_t after = componentCost(cg, members, pairIds, trial);

    // Monotone acceptance, mirroring the SADP flipping pass.
    if (anyUncolored || after <= before) {
      bool changed = false;
      for (std::uint32_t c : members) {
        if (result[c] != trial[c]) changed = true;
        result[c] = trial[c];
      }
      stats.costBefore += before;
      stats.costAfter += after;
      if (changed) ++stats.componentsImproved;
    } else {
      stats.costBefore += before;
      stats.costAfter += before;
    }
  }
  stats.costBefore += cg.intraConst;
  stats.costAfter += cg.intraConst;

  std::vector<Color> vertexColors(n, Color::Unassigned);
  for (std::uint32_t v = 0; v < n; ++v) {
    const int ci = result[cg.classOfVertex[v]];
    if (ci >= 0) vertexColors[v] = colorFromIndex(ci);
  }
  g.applyColors(vertexColors);
  return stats;
}

LayerDecomposition Tpl3Backend::synthesize(
    std::span<const ColoredFragment> frags, const DesignRules& rules,
    const DecomposeOptions& opts) const {
  RunContext& ctx = opts.ctx ? *opts.ctx : RunContext::current();
  RunContext::Scope bindCtx(ctx);
  // Span/counter names are backend-neutral on purpose: dashboards and the
  // cost-hint fitter aggregate "decompose" regardless of process.
  SADP_SPAN_ARG("decompose", std::int64_t(frags.size()));
  ctx.metrics().counter("decompose.calls").add(1);

  LayerDecomposition out;
  // Window: bounding box of all metal plus margin, aligned to pixels --
  // the same policy as the SADP pipeline so windowed consumers behave
  // identically across backends.
  Rect bbox;
  for (const ColoredFragment& cf : frags) {
    bbox = bbox.unionWith(fragmentMetalNm(cf.frag, rules));
  }
  if (bbox.empty()) bbox = Rect{0, 0, kPxNm, kPxNm};
  const Nm margin = std::max<Nm>(opts.margin, rules.pitch());
  bbox = bbox.inflated(margin);
  bbox.xlo -= bbox.xlo % kPxNm;
  bbox.ylo -= bbox.ylo % kPxNm;
  out.windowNm = bbox;
  const int w = int((bbox.xhi - bbox.xlo + kPxNm - 1) / kPxNm);
  const int h = int((bbox.yhi - bbox.ylo + kPxNm - 1) / kPxNm);

  out.target = Bitmap(w, h);
  out.masks.reserve(3);
  for (int i = 0; i < 3; ++i) out.masks.emplace_back(w, h);
  auto toX = [&](Nm nm) { return int((nm - bbox.xlo) / kPxNm); };
  auto toY = [&](Nm nm) { return int((nm - bbox.ylo) / kPxNm); };
  for (const ColoredFragment& cf : frags) {
    const Rect m = fragmentMetalNm(cf.frag, rules);
    int ci = colorIndex(cf.color);
    if (ci < 0) ci = 0;  // Unassigned defaults to the first mask
    out.masks[ci].fillRect(toX(m.xlo), toY(m.ylo), toX(m.xhi), toY(m.yhi));
    out.target.fillRect(toX(m.xlo), toY(m.ylo), toX(m.xhi), toY(m.yhi));
  }

  // Measurement is model-based: classify every dependent pair and charge
  // the TPL table under the assigned colors. (No spacer/cut rasters exist
  // to measure; cut conflicts are identically zero.)
  for (std::size_t i = 0; i < frags.size(); ++i) {
    for (std::size_t j = i + 1; j < frags.size(); ++j) {
      const Classification cls = classify(frags[i].frag, frags[j].frag);
      if (!tplMaterial(cls)) continue;
      int ci = colorIndex(frags[i].color);
      int cj = colorIndex(frags[j].color);
      if (ci < 0) ci = 0;
      if (cj < 0) cj = 0;
      const std::int64_t units = tplPairOverlay(cls, ci, cj);
      if (units <= 0) continue;
      if (units >= kHardCost) {
        ++out.report.hardOverlays;
        out.hardOverlayBoxesNm.push_back(
            fragmentMetalNm(frags[i].frag, rules)
                .unionWith(fragmentMetalNm(frags[j].frag, rules)));
      } else {
        out.report.sideOverlayNm += units * rules.wLine;
        ++out.report.sideOverlaySections;
      }
    }
  }
  return out;
}

}  // namespace

const PatterningBackend& tpl3Backend() {
  static const Tpl3Backend kBackend;
  return kBackend;
}

}  // namespace sadp
