// Linear-time color flipping (paper §III-C, Theorem 4).
//
// Pipeline per the paper, on one per-layer overlay constraint graph:
//   1. super-vertex reduction: every hard-connected class (the parity DSU
//      classes, equivalent to the paper's dummy-vertex + even-cycle
//      reduction) becomes one reduced vertex whose members have fixed
//      relative colors;
//   2. maximum spanning tree over the reduced multigraph, edge weight =
//      worst-case side overlay the scenario can induce (hard edges get a
//      weight above any nonhard edge);
//   3. flipping-graph dynamic program, eq. (4): each reduced vertex splits
//      into a Core and a Second copy; a bottom-up pass computes optimal
//      subtree costs, and a backtrace fixes colors. O(V + E) per component.
//
// Engineering addition (documented in DESIGN.md): because the DP is only
// optimal when the component is a tree, the new coloring of a component is
// kept only if it does not increase that component's true cost including
// the non-tree edges the MST dropped; otherwise the old colors stay. This
// makes every flip monotone.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ocg/graph.hpp"

namespace sadp {

/// Aggregated edge between two hard-class super-vertices. `cost` is indexed
/// by assignmentIndex(classColorU, classColorV) and already folds in member
/// parities and the cut-risk penalty.
struct ReducedEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::array<std::int64_t, 4> cost{0, 0, 0, 0};
  std::int64_t weight = 0;  ///< MST significance (max finite cost spread)
  bool hard = false;
};

/// The reduced (super-vertex) view of an overlay constraint graph.
struct ReducedGraph {
  /// Reduced-vertex index for each original vertex.
  std::vector<std::uint32_t> classIndexOfVertex;
  /// Parity of each original vertex inside its class.
  std::vector<std::uint8_t> parityOfVertex;
  /// Current color of each reduced vertex (its class-root color).
  std::vector<Color> classColor;
  /// Cost of intra-class non-hard edges under each class color (asymmetric
  /// scenario rules make the two choices differ even at fixed parity).
  std::vector<std::array<std::int64_t, 2>> selfCost;
  std::vector<ReducedEdge> edges;

  std::size_t classCount() const { return classColor.size(); }
};

/// Builds the reduced graph: one vertex per hard class; all alive edges
/// whose endpoints fall in different classes are aggregated per class pair
/// (parallel scenario edges sum their cost vectors, mirroring the paper's
/// multi-edge OCG).
ReducedGraph reduceGraph(const OverlayConstraintGraph& g);

/// Statistics of one flipping pass.
struct FlipStats {
  std::int64_t costBefore = 0;  ///< total reduced-edge cost before
  std::int64_t costAfter = 0;   ///< total reduced-edge cost after
  int components = 0;           ///< components processed
  int componentsImproved = 0;   ///< components whose coloring changed
};

/// Runs the full flipping pipeline on one constraint graph and applies the
/// resulting colors. Uncolored classes are colored too (the DP treats both
/// options symmetrically).
FlipStats colorFlip(OverlayConstraintGraph& g);

/// Convenience: flips every layer of an overlay model; returns summed stats.
class OverlayModel;
FlipStats colorFlipAll(OverlayModel& model);

/// Exposed for tests: optimal DP assignment for one component given by
/// tree edges (indices into `rg.edges`). Returns per-class colors for the
/// classes present in the component (others Unassigned).
std::vector<Color> treeDpAssign(const ReducedGraph& rg,
                                const std::vector<std::size_t>& treeEdges,
                                std::size_t rootClass);

}  // namespace sadp
