#include "patterning/backend.hpp"

namespace sadp {

FlipStats PatterningBackend::recolorAll(OverlayModel& model) const {
  FlipStats total;
  for (int layer = 0; layer < model.layers(); ++layer) {
    const FlipStats s = recolor(model.graph(layer));
    total.costBefore += s.costBefore;
    total.costAfter += s.costAfter;
    total.components += s.components;
    total.componentsImproved += s.componentsImproved;
  }
  return total;
}

namespace {

class Sadp2Backend final : public PatterningBackend {
 public:
  const PatterningSpec& spec() const override {
    static const PatterningSpec kSpec{/*colorCount=*/2,
                                      /*id=*/kSadpCutSynthId,
                                      /*name=*/"sadp2",
                                      /*pairOverlay=*/nullptr,
                                      /*pairCutRisk=*/nullptr,
                                      /*material=*/nullptr,
                                      /*hardRelation=*/nullptr};
    return kSpec;
  }

  FlipStats recolor(OverlayConstraintGraph& g) const override {
    return colorFlip(g);
  }

  std::uint64_t synthId() const override { return kSadpCutSynthId; }
  int maskCount() const override { return 0; }  // the named SADP planes

  LayerDecomposition synthesize(std::span<const ColoredFragment> frags,
                                const DesignRules& rules,
                                const DecomposeOptions& opts) const override {
    // The dispatch in decomposeLayerShared never reaches here (synthId ==
    // kSadpCutSynthId routes to the built-in pipeline), but direct callers
    // get the same result; clear synth/cache to avoid re-dispatch.
    DecomposeOptions o = opts;
    o.synth = nullptr;
    o.cache = nullptr;
    return decomposeLayer(frags, rules, o);
  }
};

}  // namespace

const PatterningBackend& sadp2Backend() {
  static const Sadp2Backend kBackend;
  return kBackend;
}

const PatterningBackend* findPatterningBackend(std::string_view name) {
  if (name == "sadp2") return &sadp2Backend();
  if (name == "tpl3") return &tpl3Backend();
  return nullptr;
}

const char* patterningBackendNames() { return "sadp2, tpl3"; }

}  // namespace sadp
