// Pluggable k-patterning backends (DESIGN.md §5.13).
//
// A PatterningBackend bundles the three things that distinguish one
// patterning process from another:
//   1. a PatterningSpec -- how many colors exist and what each scenario
//      classification costs under a color assignment (the OCG consumes it);
//   2. a recoloring pass -- the backend-owned replacement for the paper's
//      §III-C color flipping (the SADP backend IS that flipping DP; the
//      TPL backend runs exhaustive/greedy+local-search 3-coloring);
//   3. mask synthesis -- via the PatterningSynthesizer base the
//      decomposition layer dispatches on (sadp/decompose.hpp), emitting k
//      exposure planes for k>2 processes.
//
// The router, CLI, and service select a backend by name ("sadp2", "tpl3");
// a null backend everywhere means sadp2 and leaves every code path -- and
// every output byte -- identical to the pre-backend pipeline.
#pragma once

#include <string_view>

#include "ocg/graph.hpp"
#include "ocg/overlay_model.hpp"
#include "ocg/patterning_spec.hpp"
#include "patterning/flipping.hpp"
#include "sadp/decompose.hpp"

namespace sadp {

class PatterningBackend : public PatterningSynthesizer {
 public:
  const char* name() const { return spec().name; }
  int colorCount() const { return spec().colorCount; }

  /// Cost interpretation handed to the constraint graphs.
  virtual const PatterningSpec& spec() const = 0;

  /// Spec pointer as OverlayModel/OverlayConstraintGraph constructors want
  /// it: null for the 2-color SADP backend (the graphs' built-in tables --
  /// the k=2 fast path), the spec itself otherwise.
  const PatterningSpec* graphSpec() const {
    return colorCount() == 2 ? nullptr : &spec();
  }

  /// Backend-owned recoloring of one layer graph: re-optimizes class
  /// colors, applies them, and reports cost movement. Must be monotone
  /// (never increase the graph's true cost) and deterministic.
  virtual FlipStats recolor(OverlayConstraintGraph& g) const = 0;

  /// Recolors every layer of a model; returns summed stats.
  FlipStats recolorAll(OverlayModel& model) const;
};

/// The 2-color SADP cut-process backend: OCG built-in tables, the paper's
/// flipping DP, the decomposeLayer mask pipeline. Byte-identical to the
/// pre-backend stack by construction.
const PatterningBackend& sadp2Backend();

/// The 3-color triple-patterning backend: equality-only hard classes (odd
/// must-differ cycles become colorable), exhaustive/greedy 3-coloring, one
/// metal exposure plane per color.
const PatterningBackend& tpl3Backend();

/// Backend registry lookup by CLI/service name; null if unknown.
const PatterningBackend* findPatterningBackend(std::string_view name);

/// Comma-separated registered names, for usage strings and error messages.
const char* patterningBackendNames();

}  // namespace sadp
