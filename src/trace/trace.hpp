// Run-trace subsystem: RAII span scopes with thread-local event buffers
// and a Chrome trace-event (chrome://tracing / Perfetto) JSON exporter.
//
// Three levels (TraceSink::setLevel):
//   Off       -- a Span is one relaxed atomic load and a branch; no clock
//                is read, nothing allocates (the null-sink fast path).
//   Aggregate -- per-name {count, total wall ns} only; feeds the "phases"
//                section of the metrics report.
//   Full      -- additionally appends one event per span to the owning
//                thread's buffer for the Chrome trace export.
//
// Span names are interned string literals (the SADP_SPAN macro interns
// once per call site via a function-local static), so a live span carries
// only a 32-bit id. The intern table is process-wide; everything measured
// (level, aggregates, event buffers) lives in a TraceSink so concurrent
// runs can trace into isolated sinks. Each thread reports to the sink it
// is bound to (bindThreadTraceSink, normally via RunContext::Scope) and
// falls back to the process-default sink when unbound -- which is exactly
// the pre-context behaviour, so unscoped code keeps working.
//
// Buffers are owned by their sink and outlive their threads, which is what
// makes short-lived parallelFor workers traceable. Collection/clearing
// must happen while no traced work is in flight in that sink, and a
// non-default sink must outlive every span that began under it (every
// caller in this repo joins its workers first).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sadp {

enum class TraceLevel : int { Off = 0, Aggregate = 1, Full = 2 };

class TraceSink;

/// Rebinds the calling thread's span destination; nullptr restores the
/// process-default sink. Returns the previous binding (nullptr = default).
/// RunContext::Scope is the intended caller.
TraceSink* bindThreadTraceSink(TraceSink* sink);

/// Level of the calling thread's bound sink (default sink when unbound).
void setTraceLevel(TraceLevel lvl);
TraceLevel traceLevel();

namespace trace_detail {
extern std::atomic<int> g_level;  ///< default sink's level, relaxed access
/// Bound sink's level storage for this thread; null = default sink.
extern thread_local const std::atomic<int>* t_level;
inline int levelRelaxed() {
  const std::atomic<int>* p = t_level;
  return (p ? *p : g_level).load(std::memory_order_relaxed);
}
}  // namespace trace_detail

/// Interns a span name, returning its dense process-wide id. Idempotent
/// per name; ids are shared by every sink.
std::uint32_t internSpanName(const char* name);

/// Every name ever interned (the "registered names" a trace may reference).
std::vector<std::string> registeredSpanNames();

/// One completed span, name resolved (test/report access to the buffers).
struct TraceEvent {
  std::string name;
  int tid = 0;    ///< dense thread id within its sink (0 = first thread)
  int depth = 0;  ///< nesting depth within its thread at begin time
  std::int64_t startNs = 0;
  std::int64_t durNs = 0;
  bool hasArg = false;
  std::int64_t arg = 0;
};

/// Per-name wall-time totals accumulated at Aggregate and Full levels,
/// sorted by name. Counts are properties of the work and thread-count
/// deterministic; wallNs is wall clock and is not.
struct SpanAggregate {
  std::string name;
  std::int64_t count = 0;
  std::int64_t wallNs = 0;
};

/// One run's trace state: level, per-name aggregates, and (at Full level)
/// per-thread event buffers. A RunContext owns one; the process-default
/// sink backs every thread that never bound a context.
class TraceSink {
 public:
  TraceSink();
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void setLevel(TraceLevel lvl);
  TraceLevel level() const;

  /// All buffered events, sorted by (tid, startNs, -durNs) so a parent
  /// precedes its children.
  std::vector<TraceEvent> collectEvents() const;
  /// Per-name aggregates accumulated in this sink, sorted by name.
  std::vector<SpanAggregate> aggregates() const;
  /// Drops this sink's buffered events and aggregates (interned names are
  /// process-wide and survive).
  void clear();
  /// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...},...]}, one
  /// complete event per span, timestamps in microseconds.
  void writeChromeTrace(std::ostream& os) const;

  /// The process-default sink (what every unbound thread reports to).
  static TraceSink& defaultSink();

  struct Impl;  ///< opaque; public so trace.cpp helpers can name it

 private:
  friend class Span;
  friend TraceSink* bindThreadTraceSink(TraceSink* sink);
  Impl* impl_;  ///< owned; the default sink itself is leaked, see .cpp
};

/// RAII span scope. Construct via SADP_SPAN / SADP_SPAN_ARG. Reports to
/// the sink the thread is bound to at construction time.
class Span {
 public:
  explicit Span(std::uint32_t nameId) {
    if (trace_detail::levelRelaxed() != 0) begin(nameId, 0, false);
  }
  Span(std::uint32_t nameId, std::int64_t arg) {
    if (trace_detail::levelRelaxed() != 0) begin(nameId, arg, true);
  }
  ~Span() {
    if (mode_ != 0) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(std::uint32_t nameId, std::int64_t arg, bool hasArg);
  void end();

  std::uint32_t nameId_ = 0;
  int mode_ = 0;  ///< TraceLevel captured at begin (0 = inactive)
  int depth_ = 0;
  bool hasArg_ = false;
  std::int64_t arg_ = 0;
  std::int64_t startNs_ = 0;
  void* sink_ = nullptr;  ///< TraceSink::Impl captured at begin
};

/// Thread-bound-sink conveniences (default sink when unbound); these are
/// what pre-context call sites and tests use.
std::vector<TraceEvent> collectTraceEvents();
std::vector<SpanAggregate> spanAggregates();
void clearTrace();
void writeChromeTrace(std::ostream& os);

#define SADP_TRACE_CAT2(a, b) a##b
#define SADP_TRACE_CAT(a, b) SADP_TRACE_CAT2(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define SADP_SPAN(name)                                                 \
  static const std::uint32_t SADP_TRACE_CAT(sadpSpanName_, __LINE__) =  \
      ::sadp::internSpanName(name);                                     \
  ::sadp::Span SADP_TRACE_CAT(sadpSpan_, __LINE__)(                     \
      SADP_TRACE_CAT(sadpSpanName_, __LINE__))

/// Span with one integer argument (net id, layer, worker slot, ...).
#define SADP_SPAN_ARG(name, argValue)                                   \
  static const std::uint32_t SADP_TRACE_CAT(sadpSpanName_, __LINE__) =  \
      ::sadp::internSpanName(name);                                     \
  ::sadp::Span SADP_TRACE_CAT(sadpSpan_, __LINE__)(                     \
      SADP_TRACE_CAT(sadpSpanName_, __LINE__),                          \
      static_cast<std::int64_t>(argValue))

}  // namespace sadp
