// Run-trace subsystem: RAII span scopes with thread-local event buffers
// and a Chrome trace-event (chrome://tracing / Perfetto) JSON exporter.
//
// Three levels (setTraceLevel):
//   Off       -- a Span is one relaxed atomic load and a branch; no clock
//                is read, nothing allocates (the null-sink fast path).
//   Aggregate -- per-name {count, total wall ns} only; feeds the "phases"
//                section of the metrics report.
//   Full      -- additionally appends one event per span to the owning
//                thread's buffer for the Chrome trace export.
//
// Span names are interned string literals (the SADP_SPAN macro interns
// once per call site via a function-local static), so a live span carries
// only a 32-bit id. Buffers are owned by a process-wide registry and
// outlive their threads, which is what makes short-lived parallelFor
// workers traceable. Collection/clearing must happen while no traced work
// is in flight (every caller in this repo joins its workers first).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sadp {

enum class TraceLevel : int { Off = 0, Aggregate = 1, Full = 2 };

void setTraceLevel(TraceLevel lvl);
TraceLevel traceLevel();

namespace trace_detail {
extern std::atomic<int> g_level;  ///< TraceLevel as int, relaxed access
inline int levelRelaxed() { return g_level.load(std::memory_order_relaxed); }
}  // namespace trace_detail

/// Interns a span name, returning its dense id. Idempotent per name.
std::uint32_t internSpanName(const char* name);

/// Every name ever interned (the "registered names" a trace may reference).
std::vector<std::string> registeredSpanNames();

/// RAII span scope. Construct via SADP_SPAN / SADP_SPAN_ARG.
class Span {
 public:
  explicit Span(std::uint32_t nameId) {
    if (trace_detail::levelRelaxed() != 0) begin(nameId, 0, false);
  }
  Span(std::uint32_t nameId, std::int64_t arg) {
    if (trace_detail::levelRelaxed() != 0) begin(nameId, arg, true);
  }
  ~Span() {
    if (mode_ != 0) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(std::uint32_t nameId, std::int64_t arg, bool hasArg);
  void end();

  std::uint32_t nameId_ = 0;
  int mode_ = 0;  ///< TraceLevel captured at begin (0 = inactive)
  int depth_ = 0;
  bool hasArg_ = false;
  std::int64_t arg_ = 0;
  std::int64_t startNs_ = 0;
};

/// One completed span, name resolved (test/report access to the buffers).
struct TraceEvent {
  std::string name;
  int tid = 0;    ///< dense thread id (0 = first traced thread)
  int depth = 0;  ///< nesting depth within its thread at begin time
  std::int64_t startNs = 0;
  std::int64_t durNs = 0;
  bool hasArg = false;
  std::int64_t arg = 0;
};

/// All buffered events, sorted by (tid, startNs, -durNs) so a parent
/// precedes its children.
std::vector<TraceEvent> collectTraceEvents();

/// Per-name wall-time totals accumulated at Aggregate and Full levels,
/// sorted by name.
struct SpanAggregate {
  std::string name;
  std::int64_t count = 0;
  std::int64_t wallNs = 0;
};
std::vector<SpanAggregate> spanAggregates();

/// Drops all buffered events and aggregates (interned names survive).
void clearTrace();

/// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...},...]}, one
/// complete event per span, timestamps in microseconds.
void writeChromeTrace(std::ostream& os);

#define SADP_TRACE_CAT2(a, b) a##b
#define SADP_TRACE_CAT(a, b) SADP_TRACE_CAT2(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define SADP_SPAN(name)                                                 \
  static const std::uint32_t SADP_TRACE_CAT(sadpSpanName_, __LINE__) =  \
      ::sadp::internSpanName(name);                                     \
  ::sadp::Span SADP_TRACE_CAT(sadpSpan_, __LINE__)(                     \
      SADP_TRACE_CAT(sadpSpanName_, __LINE__))

/// Span with one integer argument (net id, layer, worker slot, ...).
#define SADP_SPAN_ARG(name, argValue)                                   \
  static const std::uint32_t SADP_TRACE_CAT(sadpSpanName_, __LINE__) =  \
      ::sadp::internSpanName(name);                                     \
  ::sadp::Span SADP_TRACE_CAT(sadpSpan_, __LINE__)(                     \
      SADP_TRACE_CAT(sadpSpanName_, __LINE__),                          \
      static_cast<std::int64_t>(argValue))

}  // namespace sadp
