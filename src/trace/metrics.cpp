#include "trace/metrics.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>

#include "trace/trace.hpp"

namespace sadp {

namespace metrics_detail {
thread_local MetricsRegistry* t_registry = nullptr;
}  // namespace metrics_detail

void Histogram::add(std::int64_t v) {
  const int b =
      v <= 0 ? 0 : std::bit_width(static_cast<std::uint64_t>(v));
  buckets_[std::min(b, kBuckets - 1)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::int64_t Histogram::count() const {
  std::int64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

std::int64_t Histogram::bucketCount(int b) const {
  return buckets_[b].load(std::memory_order_relaxed);
}

std::int64_t Histogram::bucketLo(int b) {
  return b <= 0 ? 0 : std::int64_t(1) << (b - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // deques: growth never moves existing elements, so references handed to
  // call sites stay valid while new names register.
  std::deque<std::pair<std::string, Counter>> counters;
  std::deque<std::pair<std::string, Histogram>> histograms;
  std::map<std::string, Counter*> counterIdx;
  std::map<std::string, Histogram*> histogramIdx;
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: process-wide
  return *r;
}

MetricsRegistry* bindThreadMetricsRegistry(MetricsRegistry* r) {
  MetricsRegistry* prev = metrics_detail::t_registry;
  metrics_detail::t_registry = r;
  return prev;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.counterIdx.find(name);
  if (it != im.counterIdx.end()) return *it->second;
  im.counters.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  Counter* c = &im.counters.back().second;
  im.counterIdx.emplace(name, c);
  return *c;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.histogramIdx.find(name);
  if (it != im.histogramIdx.end()) return *it->second;
  im.histograms.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple());
  Histogram* h = &im.histograms.back().second;
  im.histogramIdx.emplace(name, h);
  return *h;
}

std::vector<CounterSample> MetricsRegistry::counterSnapshot() const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<CounterSample> out;
  out.reserve(im.counterIdx.size());
  for (const auto& [name, c] : im.counterIdx) {  // map: sorted by name
    out.emplace_back(name, c->value());
  }
  return out;
}

std::vector<std::string> MetricsRegistry::histogramNames() const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::string> out;
  for (const auto& [name, h] : im.histogramIdx) out.push_back(name);
  return out;
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.histogramIdx.find(name);
  return it == im.histogramIdx.end() ? nullptr : it->second;
}

void MetricsRegistry::reset() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c.reset();
  for (auto& [name, h] : im.histograms) h.reset();
}

namespace {

void escapeJson(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << (static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
}

}  // namespace

void writeMetricsJson(
    std::ostream& os, const MetricsRegistry& m,
    const std::vector<SpanAggregate>& phases,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  os << "{\n  \"schema\": 1,\n  \"counters\": {";
  const auto counters = m.counterSnapshot();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    \"" : "\n    \"");
    escapeJson(os, counters[i].first);
    os << "\": " << counters[i].second;
  }
  os << "\n  },\n  \"histograms\": {";
  const auto histNames = m.histogramNames();
  for (std::size_t i = 0; i < histNames.size(); ++i) {
    const Histogram* h = m.findHistogram(histNames[i]);
    os << (i ? ",\n    \"" : "\n    \"");
    escapeJson(os, histNames[i]);
    os << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucketCount(b);
      if (n == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "{\"lo\": " << Histogram::bucketLo(b) << ", \"count\": " << n
         << "}";
    }
    os << "]}";
  }
  // Span wall-time aggregates: the per-phase timing view. Only present
  // when tracing ran at Aggregate level or above; NOT thread-count
  // deterministic (wall clock).
  os << "\n  },\n  \"phases\": {";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    os << (i ? ",\n    \"" : "\n    \"");
    escapeJson(os, phases[i].name);
    os << "\": {\"count\": " << phases[i].count
       << ", \"wall_ns\": " << phases[i].wallNs << "}";
  }
  os << "\n  }";
  for (const auto& [key, value] : extra) {
    os << ",\n  \"";
    escapeJson(os, key);
    os << "\": " << value;
  }
  os << "\n}\n";
}

void writeMetricsJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  writeMetricsJson(os, currentMetrics(), spanAggregates(), extra);
}

}  // namespace sadp
