#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace sadp {

namespace trace_detail {
std::atomic<int> g_level{0};
thread_local const std::atomic<int>* t_level = nullptr;
}  // namespace trace_detail

namespace {

struct RawEvent {
  std::uint32_t nameId;
  int depth;
  std::int64_t startNs;
  std::int64_t durNs;
  std::int64_t arg;
  bool hasArg;
};

struct ThreadBuf {
  int tid = 0;
  int depth = 0;
  std::vector<RawEvent> events;
};

struct NameAgg {
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> wallNs{0};
};

/// Process-wide intern table. Names are interned once per call site; every
/// sink indexes its aggregates by these ids.
struct InternTable {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint32_t> ids;
};

InternTable& interns() {
  static InternTable* t = new InternTable();  // leaked: outlives TLS dtors
  return *t;
}

void escapeJson(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

/// Aggregate storage: chunked so Span::end can reach aggs[id] with two
/// relaxed/acquire loads and no lock while another thread interns a new
/// name (deque growth under a mutex would race with the lock-free read).
/// 64 chunks x 64 names bounds the interned-name universe at 4096 -- far
/// above the few dozen literal span names in the tree; ids beyond the cap
/// fall back to a mutex-guarded overflow map (correct, just slower).
struct TraceSink::Impl {
  static constexpr int kChunkSize = 64;
  static constexpr int kChunks = 64;

  std::atomic<int> ownLevel{0};
  /// Level storage: &trace_detail::g_level for the default sink (so the
  /// Span fast path needs no binding), &ownLevel for per-run sinks.
  std::atomic<int>* level = &ownLevel;

  mutable std::mutex mu;
  std::atomic<NameAgg*> chunks[kChunks] = {};
  std::unordered_map<std::uint32_t, std::unique_ptr<NameAgg>> overflow;
  std::vector<std::shared_ptr<ThreadBuf>> buffers;
  int nextTid = 0;
  std::uint64_t id = 0;  ///< unique per Impl, validates the TLS buf cache
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();

  ~Impl() {
    for (auto& c : chunks) delete[] c.load(std::memory_order_relaxed);
  }

  std::int64_t nowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin)
        .count();
  }

  NameAgg& aggFor(std::uint32_t nameId) {
    const std::uint32_t c = nameId / kChunkSize;
    if (c < kChunks) {
      NameAgg* chunk = chunks[c].load(std::memory_order_acquire);
      if (!chunk) {
        std::lock_guard<std::mutex> lock(mu);
        chunk = chunks[c].load(std::memory_order_relaxed);
        if (!chunk) {
          chunk = new NameAgg[kChunkSize];
          chunks[c].store(chunk, std::memory_order_release);
        }
      }
      return chunk[nameId % kChunkSize];
    }
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = overflow[nameId];
    if (!slot) slot = std::make_unique<NameAgg>();
    return *slot;
  }

  /// The agg for nameId if it has storage already, else nullptr (read-only
  /// accessors must not allocate).
  const NameAgg* findAgg(std::uint32_t nameId) const {
    const std::uint32_t c = nameId / kChunkSize;
    if (c < kChunks) {
      const NameAgg* chunk = chunks[c].load(std::memory_order_acquire);
      return chunk ? &chunk[nameId % kChunkSize] : nullptr;
    }
    std::lock_guard<std::mutex> lock(mu);
    const auto it = overflow.find(nameId);
    return it == overflow.end() ? nullptr : it->second.get();
  }
};

namespace {

std::uint64_t nextSinkId() {
  static std::atomic<std::uint64_t> n{0};
  return n.fetch_add(1, std::memory_order_relaxed);
}

thread_local TraceSink* t_sink = nullptr;  ///< null = default sink

/// The thread's buffer within `im`, registered on first use. One-entry
/// cache keyed by the Impl's unique id: a thread alternating between sinks
/// re-registers (gaining a fresh tid in the sink it returns to), which
/// costs a lock + allocation but never mixes two sinks' events.
ThreadBuf& tlsBuf(TraceSink::Impl& im) {
  struct Slot {
    std::uint64_t sinkId = ~std::uint64_t(0);
    std::shared_ptr<ThreadBuf> buf;
  };
  thread_local Slot slot;
  if (slot.sinkId != im.id || !slot.buf) {
    auto b = std::make_shared<ThreadBuf>();
    {
      std::lock_guard<std::mutex> lock(im.mu);
      b->tid = im.nextTid++;
      im.buffers.push_back(b);
    }
    slot.sinkId = im.id;
    slot.buf = std::move(b);
  }
  return *slot.buf;
}

}  // namespace

TraceSink::TraceSink() : impl_(new Impl()) {
  impl_->id = nextSinkId();
}

TraceSink::~TraceSink() { delete impl_; }

TraceSink& TraceSink::defaultSink() {
  // Leaked so spans in late TLS destructors stay safe; its level aliases
  // trace_detail::g_level so unbound threads never dereference a binding.
  static TraceSink* s = [] {
    TraceSink* sink = new TraceSink();
    sink->impl_->level = &trace_detail::g_level;
    return sink;
  }();
  return *s;
}

void TraceSink::setLevel(TraceLevel lvl) {
  impl_->level->store(static_cast<int>(lvl), std::memory_order_relaxed);
}

TraceLevel TraceSink::level() const {
  return static_cast<TraceLevel>(
      impl_->level->load(std::memory_order_relaxed));
}

TraceSink* bindThreadTraceSink(TraceSink* sink) {
  TraceSink* prev = t_sink;
  t_sink = sink;
  trace_detail::t_level =
      sink ? sink->impl_->level : nullptr;
  return prev;
}

void setTraceLevel(TraceLevel lvl) {
  (t_sink ? *t_sink : TraceSink::defaultSink()).setLevel(lvl);
}

TraceLevel traceLevel() {
  return (t_sink ? *t_sink : TraceSink::defaultSink()).level();
}

std::uint32_t internSpanName(const char* name) {
  InternTable& t = interns();
  std::lock_guard<std::mutex> lock(t.mu);
  const auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  const auto id = std::uint32_t(t.names.size());
  t.names.emplace_back(name);
  t.ids.emplace(name, id);
  return id;
}

std::vector<std::string> registeredSpanNames() {
  InternTable& t = interns();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names;
}

void Span::begin(std::uint32_t nameId, std::int64_t arg, bool hasArg) {
  TraceSink& sink = t_sink ? *t_sink : TraceSink::defaultSink();
  TraceSink::Impl* im = sink.impl_;
  sink_ = im;
  nameId_ = nameId;
  mode_ = trace_detail::levelRelaxed();
  arg_ = arg;
  hasArg_ = hasArg;
  if (mode_ >= static_cast<int>(TraceLevel::Full)) {
    depth_ = tlsBuf(*im).depth++;
  }
  startNs_ = im->nowNs();  // last: exclude our own bookkeeping from the span
}

void Span::end() {
  TraceSink::Impl& im = *static_cast<TraceSink::Impl*>(sink_);
  const std::int64_t endNs = im.nowNs();
  NameAgg& agg = im.aggFor(nameId_);
  agg.count.fetch_add(1, std::memory_order_relaxed);
  agg.wallNs.fetch_add(endNs - startNs_, std::memory_order_relaxed);
  if (mode_ >= static_cast<int>(TraceLevel::Full)) {
    ThreadBuf& buf = tlsBuf(im);
    buf.depth = depth_;  // unwind even if the level changed mid-span
    buf.events.push_back(
        {nameId_, depth_, startNs_, endNs - startNs_, arg_, hasArg_});
  }
}

std::vector<TraceEvent> TraceSink::collectEvents() const {
  const std::vector<std::string> names = registeredSpanNames();
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<TraceEvent> out;
  for (const auto& buf : im.buffers) {
    for (const RawEvent& e : buf->events) {
      out.push_back({names[e.nameId], buf->tid, e.depth, e.startNs, e.durNs,
                     e.hasArg, e.arg});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              return a.durNs > b.durNs;  // parent before child
            });
  return out;
}

std::vector<SpanAggregate> TraceSink::aggregates() const {
  const std::vector<std::string> names = registeredSpanNames();
  std::vector<SpanAggregate> out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const NameAgg* agg = impl_->findAgg(std::uint32_t(i));
    if (!agg) continue;
    const std::int64_t n = agg->count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.push_back({names[i], n, agg->wallNs.load(std::memory_order_relaxed)});
  }
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.name < b.name;
            });
  return out;
}

void TraceSink::clear() {
  const std::vector<std::string> names = registeredSpanNames();
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& buf : im.buffers) {
      buf->events.clear();
      buf->depth = 0;
    }
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    // aggFor allocates the chunk if missing; acceptable for a clear().
    NameAgg& a = im.aggFor(std::uint32_t(i));
    a.count.store(0, std::memory_order_relaxed);
    a.wallNs.store(0, std::memory_order_relaxed);
  }
}

void TraceSink::writeChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = collectEvents();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    escapeJson(os, e.name);
    // Chrome trace timestamps are microseconds; keep ns precision in the
    // fraction so adjacent fine-grain spans stay ordered.
    os << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":"
       << e.startNs / 1000 << "." << char('0' + (e.startNs / 100) % 10)
       << char('0' + (e.startNs / 10) % 10) << char('0' + e.startNs % 10)
       << ",\"dur\":" << e.durNs / 1000 << "."
       << char('0' + (e.durNs / 100) % 10) << char('0' + (e.durNs / 10) % 10)
       << char('0' + e.durNs % 10) << ",\"args\":{\"depth\":" << e.depth;
    if (e.hasArg) os << ",\"v\":" << e.arg;
    os << "}}";
  }
  os << "\n]}\n";
}

std::vector<TraceEvent> collectTraceEvents() {
  return (t_sink ? *t_sink : TraceSink::defaultSink()).collectEvents();
}

std::vector<SpanAggregate> spanAggregates() {
  return (t_sink ? *t_sink : TraceSink::defaultSink()).aggregates();
}

void clearTrace() {
  (t_sink ? *t_sink : TraceSink::defaultSink()).clear();
}

void writeChromeTrace(std::ostream& os) {
  (t_sink ? *t_sink : TraceSink::defaultSink()).writeChromeTrace(os);
}

}  // namespace sadp
