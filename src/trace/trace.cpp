#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>

namespace sadp {

namespace trace_detail {
std::atomic<int> g_level{0};
}  // namespace trace_detail

namespace {

struct RawEvent {
  std::uint32_t nameId;
  int depth;
  std::int64_t startNs;
  std::int64_t durNs;
  std::int64_t arg;
  bool hasArg;
};

struct ThreadBuf {
  int tid = 0;
  int depth = 0;
  std::vector<RawEvent> events;
};

struct NameAgg {
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> wallNs{0};
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint32_t> ids;
  // deque: growth never moves existing elements, so Span::end may read
  // aggs[id] without the lock while another thread interns a new name.
  std::deque<NameAgg> aggs;
  std::vector<std::shared_ptr<ThreadBuf>> buffers;
  int nextTid = 0;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

TraceRegistry& reg() {
  static TraceRegistry* r = new TraceRegistry();  // leaked: outlives TLS dtors
  return *r;
}

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - reg().origin)
      .count();
}

ThreadBuf& tlsBuf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    TraceRegistry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.nextTid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void escapeJson(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void setTraceLevel(TraceLevel lvl) {
  trace_detail::g_level.store(static_cast<int>(lvl),
                              std::memory_order_relaxed);
}

TraceLevel traceLevel() {
  return static_cast<TraceLevel>(trace_detail::levelRelaxed());
}

std::uint32_t internSpanName(const char* name) {
  TraceRegistry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.ids.find(name);
  if (it != r.ids.end()) return it->second;
  const auto id = std::uint32_t(r.names.size());
  r.names.emplace_back(name);
  r.aggs.emplace_back();
  r.ids.emplace(name, id);
  return id;
}

std::vector<std::string> registeredSpanNames() {
  TraceRegistry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.names;
}

void Span::begin(std::uint32_t nameId, std::int64_t arg, bool hasArg) {
  nameId_ = nameId;
  mode_ = trace_detail::levelRelaxed();
  arg_ = arg;
  hasArg_ = hasArg;
  if (mode_ >= static_cast<int>(TraceLevel::Full)) {
    depth_ = tlsBuf().depth++;
  }
  startNs_ = nowNs();  // last: exclude our own bookkeeping from the span
}

void Span::end() {
  const std::int64_t endNs = nowNs();
  NameAgg& agg = reg().aggs[nameId_];  // stable address, see deque comment
  agg.count.fetch_add(1, std::memory_order_relaxed);
  agg.wallNs.fetch_add(endNs - startNs_, std::memory_order_relaxed);
  if (mode_ >= static_cast<int>(TraceLevel::Full)) {
    ThreadBuf& buf = tlsBuf();
    buf.depth = depth_;  // unwind even if the level changed mid-span
    buf.events.push_back(
        {nameId_, depth_, startNs_, endNs - startNs_, arg_, hasArg_});
  }
}

std::vector<TraceEvent> collectTraceEvents() {
  TraceRegistry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<TraceEvent> out;
  for (const auto& buf : r.buffers) {
    for (const RawEvent& e : buf->events) {
      out.push_back({r.names[e.nameId], buf->tid, e.depth, e.startNs, e.durNs,
                     e.hasArg, e.arg});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.startNs != b.startNs) return a.startNs < b.startNs;
              return a.durNs > b.durNs;  // parent before child
            });
  return out;
}

std::vector<SpanAggregate> spanAggregates() {
  TraceRegistry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<SpanAggregate> out;
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    const std::int64_t n = r.aggs[i].count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.push_back(
        {r.names[i], n, r.aggs[i].wallNs.load(std::memory_order_relaxed)});
  }
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.name < b.name;
            });
  return out;
}

void clearTrace() {
  TraceRegistry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buf : r.buffers) {
    buf->events.clear();
    buf->depth = 0;
  }
  for (NameAgg& a : r.aggs) {
    a.count.store(0, std::memory_order_relaxed);
    a.wallNs.store(0, std::memory_order_relaxed);
  }
}

void writeChromeTrace(std::ostream& os) {
  const std::vector<TraceEvent> events = collectTraceEvents();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    escapeJson(os, e.name);
    // Chrome trace timestamps are microseconds; keep ns precision in the
    // fraction so adjacent fine-grain spans stay ordered.
    os << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":"
       << e.startNs / 1000 << "." << char('0' + (e.startNs / 100) % 10)
       << char('0' + (e.startNs / 10) % 10) << char('0' + e.startNs % 10)
       << ",\"dur\":" << e.durNs / 1000 << "."
       << char('0' + (e.durNs / 100) % 10) << char('0' + (e.durNs / 10) % 10)
       << char('0' + e.durNs % 10) << ",\"args\":{\"depth\":" << e.depth;
    if (e.hasArg) os << ",\"v\":" << e.arg;
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace sadp
