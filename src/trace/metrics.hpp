// Run metrics: named monotonic counters and log-bucketed histograms, plus
// the flat run-metrics JSON report.
//
// Counters are relaxed atomic adds and are ALWAYS live (no enable gate):
// an uncontended atomic increment is a few ns, far below every call site's
// own cost, and keeping them on means a metrics report never silently
// reads zero. Because every counted quantity is a property of the work
// itself (an iteration, a rip-up, a node expansion) and addition is
// order-independent, counter totals are byte-identical for every
// SADP_THREADS value -- the determinism contract of DESIGN.md §5.6/§5.7.
// Timings (span aggregates, exported alongside) carry no such guarantee.
//
// A MetricsRegistry is an ordinary object so every run can own a fresh
// one (RunContext); instance() is the process-default registry that
// pre-context call sites and unbound threads fall back to. Counter and
// histogram references are stable for their registry's lifetime -- cache
// them in an object scoped to one run (a router, an engine), NEVER in a
// function-local static: a static would pin the first run's registry and
// silently alias every later run (the bug per-run registries exist to
// kill).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace sadp {

/// Monotonic named counter; add() is safe from any thread.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram: bucket b >= 1 holds values v with
/// bit_width(v) == b, i.e. v in [2^(b-1), 2^b); bucket 0 holds v <= 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::int64_t v);
  std::int64_t count() const;
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucketCount(int b) const;
  /// Inclusive lower bound of bucket b's value range (0 for bucket 0).
  static std::int64_t bucketLo(int b);
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> sum_{0};
};

/// One registered counter's (name, value) pair.
using CounterSample = std::pair<std::string, std::int64_t>;

/// Registry of named counters and histograms. References returned by
/// counter()/histogram() are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-default registry (the default-context shim).
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// (name, value) of every registered counter, sorted by name.
  std::vector<CounterSample> counterSnapshot() const;
  /// Registered histogram names, sorted.
  std::vector<std::string> histogramNames() const;
  /// Looks up an existing histogram (nullptr when never registered).
  const Histogram* findHistogram(const std::string& name) const;

  /// Zeroes every counter and histogram (names stay registered), so one
  /// registry can be reused across sequential runs without totals
  /// accumulating for the process lifetime.
  void reset();
  /// Backwards-compatible alias of reset().
  void resetAll() { reset(); }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Rebinds the calling thread's default registry (what metricsCounter and
/// the legacy writeMetricsJson resolve to); nullptr restores instance().
/// Returns the previous binding. RunContext::Scope is the intended caller.
MetricsRegistry* bindThreadMetricsRegistry(MetricsRegistry* r);

namespace metrics_detail {
extern thread_local MetricsRegistry* t_registry;  ///< null = instance()
}  // namespace metrics_detail

/// The calling thread's bound registry (instance() when unbound).
inline MetricsRegistry& currentMetrics() {
  MetricsRegistry* r = metrics_detail::t_registry;
  return r ? *r : MetricsRegistry::instance();
}

/// Convenience: the thread-bound registry's counter with this name. Do
/// not cache the result in a function-local static (see class comment).
inline Counter& metricsCounter(const std::string& name) {
  return currentMetrics().counter(name);
}

/// Flat run-metrics JSON report: {"schema", "counters" (sorted by name),
/// "histograms", "phases" (the given span wall-time aggregates), then
/// `extra` top-level pairs verbatim. `extra` values must already be valid
/// JSON fragments (numbers, quoted strings, ...). Only the "counters"
/// section is thread-count deterministic; "phases" holds wall-clock
/// measurements.
void writeMetricsJson(
    std::ostream& os, const MetricsRegistry& m,
    const std::vector<SpanAggregate>& phases,
    const std::vector<std::pair<std::string, std::string>>& extra = {});

/// Legacy shim: the thread-bound registry and trace sink.
void writeMetricsJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& extra = {});

}  // namespace sadp
