// Process-wide run metrics: named monotonic counters and log-bucketed
// histograms, plus the flat run-metrics JSON report.
//
// Counters are relaxed atomic adds and are ALWAYS live (no enable gate):
// an uncontended atomic increment is a few ns, far below every call site's
// own cost, and keeping them on means a metrics report never silently
// reads zero. Because every counted quantity is a property of the work
// itself (an iteration, a rip-up, a node expansion) and addition is
// order-independent, counter totals are byte-identical for every
// SADP_THREADS value -- the determinism contract of DESIGN.md §5.6/§5.7.
// Timings (span aggregates, exported alongside) carry no such guarantee.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace sadp {

/// Monotonic named counter; add() is safe from any thread.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram: bucket b >= 1 holds values v with
/// bit_width(v) == b, i.e. v in [2^(b-1), 2^b); bucket 0 holds v <= 0.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::int64_t v);
  std::int64_t count() const;
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucketCount(int b) const;
  /// Inclusive lower bound of bucket b's value range (0 for bucket 0).
  static std::int64_t bucketLo(int b);
  void reset();

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> sum_{0};
};

/// One registered counter's (name, value) pair.
using CounterSample = std::pair<std::string, std::int64_t>;

/// Registry of named counters and histograms. References returned by
/// counter()/histogram() are stable for the process lifetime, so call
/// sites cache them in a function-local static and pay only the atomic
/// add afterwards.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// (name, value) of every registered counter, sorted by name.
  std::vector<CounterSample> counterSnapshot() const;
  /// Registered histogram names, sorted.
  std::vector<std::string> histogramNames() const;
  /// Looks up an existing histogram (nullptr when never registered).
  const Histogram* findHistogram(const std::string& name) const;

  /// Zeroes every counter and histogram (names stay registered).
  void resetAll();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience: the process-wide counter with this name.
inline Counter& metricsCounter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}

/// Flat run-metrics JSON report: {"schema", "counters" (sorted by name),
/// "histograms", "phases" (span wall-time aggregates from trace.hpp; empty
/// unless tracing was enabled), then `extra` top-level pairs verbatim.
/// `extra` values must already be valid JSON fragments (numbers, quoted
/// strings, ...). Only the "counters" section is thread-count
/// deterministic; "phases" holds wall-clock measurements.
void writeMetricsJson(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& extra = {});

}  // namespace sadp
