// Rectilinear geometry kernel for the SADP cut-process router.
//
// All coordinates are integer nanometres unless a function explicitly works
// in track units. Rectangles are half-open boxes [lo, hi) so that abutting
// rectangles do not overlap and areas/lengths compose additively.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace sadp {

/// Signed nanometre coordinate. 32 bits covers dies up to ~2 m.
using Nm = std::int32_t;
/// Signed track index.
using Track = std::int32_t;

/// Orientation of a wire fragment or routing layer.
enum class Orient : std::uint8_t { Horizontal, Vertical };

/// Returns the opposite orientation.
constexpr Orient flipped(Orient o) {
  return o == Orient::Horizontal ? Orient::Vertical : Orient::Horizontal;
}

const char* toString(Orient o);

/// 2-D integer point (nm or tracks depending on context).
struct Pt {
  Nm x = 0;
  Nm y = 0;

  friend constexpr bool operator==(const Pt&, const Pt&) = default;
  constexpr Pt operator+(const Pt& o) const { return {x + o.x, y + o.y}; }
  constexpr Pt operator-(const Pt& o) const { return {x - o.x, y - o.y}; }
};

std::ostream& operator<<(std::ostream& os, const Pt& p);

/// L1 (Manhattan) distance between two points.
constexpr std::int64_t manhattan(const Pt& a, const Pt& b) {
  const std::int64_t dx = std::int64_t(a.x) - b.x;
  const std::int64_t dy = std::int64_t(a.y) - b.y;
  return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

/// Closed-open axis-aligned box: contains points with
/// xlo <= x < xhi and ylo <= y < yhi. Empty iff xlo >= xhi or ylo >= yhi.
struct Rect {
  Nm xlo = 0;
  Nm ylo = 0;
  Nm xhi = 0;
  Nm yhi = 0;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  constexpr Nm width() const { return xhi - xlo; }
  constexpr Nm height() const { return yhi - ylo; }
  constexpr bool empty() const { return xlo >= xhi || ylo >= yhi; }
  constexpr std::int64_t area() const {
    return empty() ? 0 : std::int64_t(width()) * height();
  }

  constexpr bool contains(const Pt& p) const {
    return p.x >= xlo && p.x < xhi && p.y >= ylo && p.y < yhi;
  }
  constexpr bool contains(const Rect& r) const {
    return !r.empty() && r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo &&
           r.yhi <= yhi;
  }
  /// True if the interiors intersect (shared edges do not count).
  constexpr bool overlaps(const Rect& r) const {
    return !empty() && !r.empty() && xlo < r.xhi && r.xlo < xhi &&
           ylo < r.yhi && r.ylo < yhi;
  }

  /// Orientation of the longer extent; a square counts as horizontal.
  constexpr Orient orient() const {
    return height() > width() ? Orient::Vertical : Orient::Horizontal;
  }

  /// Expands every side outward by d (may be negative to shrink).
  constexpr Rect inflated(Nm d) const {
    return {xlo - d, ylo - d, xhi + d, yhi + d};
  }

  constexpr Rect intersect(const Rect& r) const {
    Rect out{std::max(xlo, r.xlo), std::max(ylo, r.ylo), std::min(xhi, r.xhi),
             std::min(yhi, r.yhi)};
    if (out.empty()) return Rect{};
    return out;
  }

  /// Smallest box containing both rects (empty rects are ignored).
  constexpr Rect unionWith(const Rect& r) const {
    if (empty()) return r;
    if (r.empty()) return *this;
    return {std::min(xlo, r.xlo), std::min(ylo, r.ylo), std::max(xhi, r.xhi),
            std::max(yhi, r.yhi)};
  }

  static constexpr Rect fromPoints(const Pt& a, const Pt& b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
            std::max(a.y, b.y)};
  }
};

std::ostream& operator<<(std::ostream& os, const Rect& r);
std::string toString(const Rect& r);

/// Gap between the projections of two rects on the x axis (0 if they
/// overlap or abut in x).
constexpr Nm xGap(const Rect& a, const Rect& b) {
  if (a.xhi >= b.xlo && b.xhi >= a.xlo) return 0;
  return a.xhi < b.xlo ? b.xlo - a.xhi : a.xlo - b.xhi;
}

/// Gap between the projections of two rects on the y axis.
constexpr Nm yGap(const Rect& a, const Rect& b) {
  if (a.yhi >= b.ylo && b.yhi >= a.ylo) return 0;
  return a.yhi < b.ylo ? b.ylo - a.yhi : a.ylo - b.yhi;
}

/// Euclidean distance (squared) between the closest points of two rects.
constexpr std::int64_t distSq(const Rect& a, const Rect& b) {
  const std::int64_t dx = xGap(a, b);
  const std::int64_t dy = yGap(a, b);
  return dx * dx + dy * dy;
}

/// Length of the overlap of the x projections (0 if disjoint).
constexpr Nm xOverlap(const Rect& a, const Rect& b) {
  return std::max<Nm>(0, std::min(a.xhi, b.xhi) - std::max(a.xlo, b.xlo));
}

/// Length of the overlap of the y projections (0 if disjoint).
constexpr Nm yOverlap(const Rect& a, const Rect& b) {
  return std::max<Nm>(0, std::min(a.yhi, b.yhi) - std::max(a.ylo, b.ylo));
}

/// Closed integer interval [lo, hi]; used for track ranges.
struct Interval {
  Track lo = 0;
  Track hi = -1;  // default-constructed interval is empty

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
  constexpr bool empty() const { return lo > hi; }
  constexpr Track length() const { return empty() ? 0 : hi - lo + 1; }
  constexpr bool contains(Track t) const { return t >= lo && t <= hi; }
  constexpr bool intersects(const Interval& o) const {
    return !empty() && !o.empty() && lo <= o.hi && o.lo <= hi;
  }
  /// Gap between two disjoint intervals; 0 if they touch or intersect.
  constexpr Track gap(const Interval& o) const {
    if (intersects(o)) return 0;
    return hi < o.lo ? o.lo - hi - 1 : lo - o.hi - 1;
  }
};

/// Merges touching/overlapping intervals in-place; returns sorted result.
std::vector<Interval> mergeIntervals(std::vector<Interval> v);

/// Decomposes a set of (possibly overlapping) rectangles into a canonical
/// set of disjoint maximal-horizontal slabs covering the same region.
std::vector<Rect> canonicalize(std::span<const Rect> rects);

/// Total area of a region given as arbitrary (possibly overlapping) rects.
std::int64_t regionArea(std::span<const Rect> rects);

/// True if point p lies in the union of rects.
bool regionContains(std::span<const Rect> rects, const Pt& p);

/// A spatial hash over rectangles, bucketed on a fixed pitch. Supports the
/// neighbor queries the scenario classifier needs (all rects within a
/// window). Rects are stored by value with a user payload id.
class SpatialHash {
 public:
  /// pitch: bucket edge in nm; must be > 0.
  explicit SpatialHash(Nm pitch) : pitch_(pitch) { assert(pitch > 0); }

  void insert(const Rect& r, std::uint32_t id);
  /// Removes one entry matching (r, id); returns false if absent.
  bool erase(const Rect& r, std::uint32_t id);
  /// Calls fn(rect, id) for each entry whose rect overlaps `window`,
  /// deduplicated.
  void query(const Rect& window,
             const std::function<void(const Rect&, std::uint32_t)>& fn) const;
  std::size_t size() const { return count_; }
  void clear();

 private:
  struct Entry {
    Rect r;
    std::uint32_t id;
  };
  using BucketKey = std::int64_t;
  BucketKey key(std::int64_t bx, std::int64_t by) const {
    return (bx << 32) ^ (by & 0xffffffffll);
  }
  void forEachBucket(const Rect& r,
                     const std::function<void(BucketKey)>& fn) const;

  Nm pitch_;
  std::size_t count_ = 0;
  std::unordered_map<BucketKey, std::vector<Entry>> buckets_;
};

}  // namespace sadp
