#include "geom/geom.hpp"

#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace sadp {

const char* toString(Orient o) {
  return o == Orient::Horizontal ? "H" : "V";
}

std::ostream& operator<<(std::ostream& os, const Pt& p) {
  return os << "(" << p.x << "," << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.xlo << "," << r.ylo << " .. " << r.xhi << "," << r.yhi
            << ")";
}

std::string toString(const Rect& r) {
  std::ostringstream os;
  os << r;
  return os.str();
}

std::vector<Interval> mergeIntervals(std::vector<Interval> v) {
  std::erase_if(v, [](const Interval& i) { return i.empty(); });
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
  });
  std::vector<Interval> out;
  for (const Interval& i : v) {
    if (!out.empty() && i.lo <= out.back().hi + 1) {
      out.back().hi = std::max(out.back().hi, i.hi);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

namespace {

// Sweep-line decomposition of a rect union into y-slabs of disjoint x-runs.
struct Slab {
  Nm ylo, yhi;
  std::vector<std::pair<Nm, Nm>> runs;  // disjoint sorted x runs
};

std::vector<Slab> sweep(std::span<const Rect> rects) {
  std::vector<Nm> ys;
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    ys.push_back(r.ylo);
    ys.push_back(r.yhi);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  std::vector<Slab> slabs;
  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    const Nm ylo = ys[i], yhi = ys[i + 1];
    std::vector<std::pair<Nm, Nm>> runs;
    for (const Rect& r : rects) {
      if (r.empty() || r.ylo > ylo || r.yhi < yhi) continue;
      runs.emplace_back(r.xlo, r.xhi);
    }
    if (runs.empty()) continue;
    std::sort(runs.begin(), runs.end());
    std::vector<std::pair<Nm, Nm>> merged;
    for (const auto& run : runs) {
      if (!merged.empty() && run.first <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, run.second);
      } else {
        merged.push_back(run);
      }
    }
    slabs.push_back({ylo, yhi, std::move(merged)});
  }
  return slabs;
}

}  // namespace

std::vector<Rect> canonicalize(std::span<const Rect> rects) {
  std::vector<Slab> slabs = sweep(rects);
  // Vertically merge slabs with identical runs to keep the output compact.
  std::vector<Rect> out;
  for (std::size_t i = 0; i < slabs.size(); ++i) {
    // Try to extend slab i downward through identical successors.
    std::size_t j = i;
    while (j + 1 < slabs.size() && slabs[j + 1].ylo == slabs[j].yhi &&
           slabs[j + 1].runs == slabs[i].runs) {
      ++j;
    }
    for (const auto& [xlo, xhi] : slabs[i].runs) {
      out.push_back({xlo, slabs[i].ylo, xhi, slabs[j].yhi});
    }
    i = j;
  }
  return out;
}

std::int64_t regionArea(std::span<const Rect> rects) {
  std::int64_t total = 0;
  for (const Slab& s : sweep(rects)) {
    std::int64_t w = 0;
    for (const auto& [xlo, xhi] : s.runs) w += xhi - xlo;
    total += w * (s.yhi - s.ylo);
  }
  return total;
}

bool regionContains(std::span<const Rect> rects, const Pt& p) {
  for (const Rect& r : rects) {
    if (r.contains(p)) return true;
  }
  return false;
}

void SpatialHash::forEachBucket(
    const Rect& r, const std::function<void(BucketKey)>& fn) const {
  const std::int64_t bx0 = std::int64_t(r.xlo) / pitch_ - (r.xlo < 0 ? 1 : 0);
  const std::int64_t by0 = std::int64_t(r.ylo) / pitch_ - (r.ylo < 0 ? 1 : 0);
  const std::int64_t bx1 = std::int64_t(r.xhi - 1) / pitch_ + (r.xhi <= 0 ? -1 : 0);
  const std::int64_t by1 = std::int64_t(r.yhi - 1) / pitch_ + (r.yhi <= 0 ? -1 : 0);
  for (std::int64_t bx = bx0; bx <= bx1; ++bx) {
    for (std::int64_t by = by0; by <= by1; ++by) {
      fn(key(bx, by));
    }
  }
}

void SpatialHash::insert(const Rect& r, std::uint32_t id) {
  if (r.empty()) return;
  forEachBucket(r, [&](BucketKey k) { buckets_[k].push_back({r, id}); });
  ++count_;
}

bool SpatialHash::erase(const Rect& r, std::uint32_t id) {
  if (r.empty()) return false;
  bool found = false;
  forEachBucket(r, [&](BucketKey k) {
    auto it = buckets_.find(k);
    if (it == buckets_.end()) return;
    auto& vec = it->second;
    for (auto e = vec.begin(); e != vec.end(); ++e) {
      if (e->id == id && e->r == r) {
        vec.erase(e);
        found = true;
        break;
      }
    }
    if (vec.empty()) buckets_.erase(it);
  });
  if (found) --count_;
  return found;
}

void SpatialHash::query(
    const Rect& window,
    const std::function<void(const Rect&, std::uint32_t)>& fn) const {
  if (window.empty()) return;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  forEachBucket(window, [&](BucketKey k) {
    auto it = buckets_.find(k);
    if (it == buckets_.end()) return;
    for (const Entry& e : it->second) {
      if (!e.r.overlaps(window)) continue;
      // Dedup on (id, rect origin) — an entry spans several buckets.
      auto tag = std::make_pair(
          std::uint64_t(e.id),
          (std::uint64_t(std::uint32_t(e.r.xlo)) << 32) |
              std::uint32_t(e.r.ylo));
      if (!seen.insert(tag).second) continue;
      fn(e.r, e.id);
    }
  });
}

void SpatialHash::clear() {
  buckets_.clear();
  count_ = 0;
}

}  // namespace sadp
