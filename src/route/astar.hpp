// Overlay-aware A*-search over the gridded routing plane (paper §III-E).
//
// Step cost follows eq. (5): C(j) = C(i) + alpha*wl + beta*via + gamma*T2b,
// where the T2b term discourages steps that would create a type 2-b
// potential overlay scenario (the only scenario whose side overlay is
// unavoidable). Two engineering knobs documented in DESIGN.md: a mild
// wrong-way multiplier keeps wires in the layer's preferred direction, and
// a per-net penalty field implements IncreaseCost() for rip-up & re-route.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "grid/routing_grid.hpp"

namespace sadp {

class Counter;
class Histogram;
class RunContext;

struct AStarParams {
  double alpha = 1.0;        ///< wirelength weight
  double beta = 1.0;         ///< via weight
  double gamma = 1.5;        ///< type 2-b scenario weight
  double wrongWay = 1.5;     ///< multiplier on alpha against preferred dir
  std::int64_t maxExpansions = 4'000'000;  ///< search effort cap
};

/// Sparse additive penalty field over grid nodes (rip-up cost increase and
/// the T2b risk field). Values accumulate; negative deltas allowed.
class PenaltyField {
 public:
  explicit PenaltyField(const RoutingGrid& grid)
      : grid_(&grid), values_(grid.nodeCount(), 0.0f) {}

  void add(const GridNode& n, float delta) {
    if (grid_->inBounds(n)) values_[grid_->index(n)] += delta;
  }
  float at(const GridNode& n) const { return values_[grid_->index(n)]; }
  void clear() { std::fill(values_.begin(), values_.end(), 0.0f); }

 private:
  const RoutingGrid* grid_;
  std::vector<float> values_;
};

/// Directional T2b risk: separate penalties for entering a cell moving
/// horizontally vs vertically (a vertical step beside a horizontal wire's
/// side can close a tip-to-side @2 relation; a horizontal one cannot).
struct T2bField {
  explicit T2bField(const RoutingGrid& grid)
      : horizontalEntry(grid), verticalEntry(grid) {}
  PenaltyField horizontalEntry;
  PenaltyField verticalEntry;
};

/// Search result: the grid nodes of the path (pin to pin, in order) plus
/// cost accounting.
struct AStarResult {
  std::vector<GridNode> path;
  double cost = 0.0;
  int vias = 0;
  std::int64_t expansions = 0;
};

/// Reusable multi-source / multi-target A* engine. Search state arrays are
/// epoch-stamped so repeated route() calls touch only the visited region.
/// The routed net may pass through nodes it already owns (its pins) but not
/// through other nets or blockages.
class AStarEngine {
 public:
  /// Metrics report into ctx (the calling thread's bound context when
  /// null). Counter handles are resolved once here and cached as members,
  /// scoping them to one run -- never function-local statics, which would
  /// pin the first run's registry across contexts.
  explicit AStarEngine(const RoutingGrid& grid, RunContext* ctx = nullptr);

  std::optional<AStarResult> route(NetId net,
                                   std::span<const GridNode> sources,
                                   std::span<const GridNode> targets,
                                   const AStarParams& params,
                                   const PenaltyField* extra = nullptr,
                                   const T2bField* t2b = nullptr);

 private:
  const RoutingGrid* grid_;
  std::vector<float> best_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> targetStamp_;
  std::uint32_t epoch_ = 0;
  // Per-engine (hence per-run) metric handles; see ctor comment.
  Counter* routesCounter_;
  Counter* expansionsCounter_;
  Counter* heapPushesCounter_;
  Histogram* expansionsPerRoute_;
};

/// One-shot convenience wrapper around AStarEngine (tests, examples).
std::optional<AStarResult> aStarRoute(const RoutingGrid& grid, NetId net,
                                      std::span<const GridNode> sources,
                                      std::span<const GridNode> targets,
                                      const AStarParams& params = {},
                                      const PenaltyField* extra = nullptr,
                                      const T2bField* t2b = nullptr);

}  // namespace sadp
