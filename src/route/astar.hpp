// Overlay-aware A*-search over the gridded routing plane (paper §III-E).
//
// Step cost follows eq. (5): C(j) = C(i) + alpha*wl + beta*via + gamma*T2b,
// where the T2b term discourages steps that would create a type 2-b
// potential overlay scenario (the only scenario whose side overlay is
// unavoidable). Two engineering knobs documented in DESIGN.md: a mild
// wrong-way multiplier keeps wires in the layer's preferred direction, and
// a per-net penalty field implements IncreaseCost() for rip-up & re-route.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "grid/routing_grid.hpp"
#include "util/arena.hpp"

namespace sadp {

class Counter;
class Histogram;
class RunContext;

/// Open-list implementation selector (DESIGN.md §5.9). The search cost
/// model is the same exact fixed-point integer model for Bucket and Heap,
/// and their pop order is identical by construction (LIFO within equal f
/// == ordering by (f, push sequence descending)), so the two produce
/// byte-identical paths, costs, expansions and counters -- enforced by
/// tests/test_astar_equiv.cpp. Auto picks Bucket whenever the Dial
/// monotonicity preconditions hold (nonnegative quantized step costs,
/// consistent heuristic, representable bucket span) and Heap otherwise.
/// LegacyFloat is the pre-fixed-point double-cost engine, kept as the
/// fallback for parameter sets with no exact fixed-point representation.
enum class OpenList : std::uint8_t { Auto, Bucket, Heap, LegacyFloat };

struct AStarParams {
  double alpha = 1.0;        ///< wirelength weight
  double beta = 1.0;         ///< via weight
  double gamma = 1.5;        ///< type 2-b scenario weight
  double wrongWay = 1.5;     ///< multiplier on alpha against preferred dir
  std::int64_t maxExpansions = 4'000'000;  ///< search effort cap
  OpenList openList = OpenList::Auto;      ///< open-list selector

  friend bool operator==(const AStarParams&, const AStarParams&) = default;
};

struct SearchFootprint;  // route/route_memo.hpp: recorded read set

/// Registry names of the engine's per-route() metrics. Shared with the
/// wave-parallel router, which replays a verified speculative search's
/// exact counter deltas into the committing context so counter snapshots
/// stay byte-identical to a live serial search (route/router.cpp).
namespace astar_metric {
inline constexpr const char* kRoutes = "astar.routes";
inline constexpr const char* kExpansions = "astar.expansions";
inline constexpr const char* kHeapPushes = "astar.heap_pushes";
inline constexpr const char* kExpansionsPerRoute = "astar.expansions_per_route";
}  // namespace astar_metric

/// Exact power-of-two fixed-point scale for an AStarParams cost model:
/// the smallest 2^shift under which alpha, beta and alpha*wrongWay are all
/// integers with zero precision loss (checked by exact double round-trip).
/// `ok == false` means no such scale exists (e.g. alpha = 1/3) and the
/// engine falls back to the legacy double-cost path.
struct FixedCostScale {
  bool ok = false;
  int shift = 0;  ///< scale = 1 << shift
  std::int64_t alphaQ = 0;  ///< alpha * scale
  std::int64_t betaQ = 0;   ///< beta * scale
  std::int64_t wrongQ = 0;  ///< alpha * wrongWay * scale
};
FixedCostScale deriveFixedCostScale(const AStarParams& p);

/// Sparse additive penalty field over grid nodes (rip-up cost increase and
/// the T2b risk field). Values accumulate; negative deltas allowed.
class PenaltyField {
 public:
  explicit PenaltyField(const RoutingGrid& grid)
      : grid_(&grid), values_(grid.nodeCount(), 0.0f) {}

  void add(const GridNode& n, float delta) {
    if (!grid_->inBounds(n)) return;
    float& v = values_[grid_->index(n)];
    const bool wasNeg = v < 0.0f;
    v += delta;
    negCount_ += static_cast<int>(v < 0.0f) - static_cast<int>(wasNeg);
    if (v > maxSeen_) maxSeen_ = v;
  }
  float at(const GridNode& n) const { return values_[grid_->index(n)]; }
  /// Index-based read for footprint verification (route/route_memo.hpp):
  /// recorded reads store RoutingGrid::index values, and verification is on
  /// the replay hot path.
  float atIndex(std::size_t idx) const { return values_[idx]; }
  void clear() {
    std::fill(values_.begin(), values_.end(), 0.0f);
    negCount_ = 0;
    maxSeen_ = 0.0f;
  }

  /// True while any cell is currently negative (exact count, maintained
  /// O(1) per add). Bucket-mode A* requires nonnegative step costs, so a
  /// field with negatives forces the integer-heap open list.
  bool hasNegative() const { return negCount_ > 0; }
  /// Monotone upper bound on any value the field has ever held (never
  /// decays on negative deltas) -- used to size the bucket span.
  float maxSeen() const { return maxSeen_; }

 private:
  const RoutingGrid* grid_;
  std::vector<float> values_;
  std::int64_t negCount_ = 0;
  float maxSeen_ = 0.0f;
};

/// Directional T2b risk: separate penalties for entering a cell moving
/// horizontally vs vertically (a vertical step beside a horizontal wire's
/// side can close a tip-to-side @2 relation; a horizontal one cannot).
struct T2bField {
  explicit T2bField(const RoutingGrid& grid)
      : horizontalEntry(grid), verticalEntry(grid) {}
  PenaltyField horizontalEntry;
  PenaltyField verticalEntry;
};

/// Search result: the grid nodes of the path (pin to pin, in order) plus
/// cost accounting.
struct AStarResult {
  std::vector<GridNode> path;
  double cost = 0.0;
  int vias = 0;
  std::int64_t expansions = 0;
};

/// Reusable multi-source / multi-target A* engine. Search state arrays are
/// epoch-stamped so repeated route() calls touch only the visited region.
/// The routed net may pass through nodes it already owns (its pins) but not
/// through other nets or blockages.
class AStarEngine {
 public:
  /// Metrics report into ctx (the calling thread's bound context when
  /// null). Counter handles are resolved once here and cached as members,
  /// scoping them to one run -- never function-local statics, which would
  /// pin the first run's registry across contexts.
  explicit AStarEngine(const RoutingGrid& grid, RunContext* ctx = nullptr);

  std::optional<AStarResult> route(NetId net,
                                   std::span<const GridNode> sources,
                                   std::span<const GridNode> targets,
                                   const AStarParams& params,
                                   const PenaltyField* extra = nullptr,
                                   const T2bField* t2b = nullptr);

  /// Attaches a footprint recorder for the NEXT route() call(s): every cell
  /// the search probes (in-bounds source seeds and neighbor candidates) is
  /// recorded once with its occupancy class and field values. Pass nullptr
  /// to stop recording. Recording is off by default and costs nothing then.
  void setFootprintRecorder(SearchFootprint* fp) { record_ = fp; }

 private:
  struct IntSearchSetup;  // resolved cost model + mode (astar.cpp)

  /// kRecord selects the footprint-recording instantiation; the common
  /// non-recording one keeps the expansion loop free of the recordProbe
  /// call site (its mere presence costs ~25% in register spills).
  template <bool kRecord, class Open>
  std::optional<AStarResult> searchFixed(Open& open, NetId net,
                                         std::span<const GridNode> targets,
                                         const IntSearchSetup& su,
                                         AStarResult& result);
  std::optional<AStarResult> routeLegacy(NetId net,
                                         std::span<const GridNode> sources,
                                         std::span<const GridNode> targets,
                                         const AStarParams& params,
                                         const PenaltyField* extra,
                                         const T2bField* t2b,
                                         AStarResult& result);

  /// Records one probed cell into *record_ (first touch per epoch only).
  void recordProbe(const GridNode& n, NetId net, const PenaltyField* extra,
                   const T2bField* t2b);

  const RoutingGrid* grid_;
  Arena* scratch_;  ///< owning context's per-run scratch arena
  std::vector<float> best_;          ///< legacy double-cost path only
  std::vector<std::int64_t> bestQ_;  ///< fixed-point g (bucket/heap modes)
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> targetStamp_;
  std::uint32_t epoch_ = 0;
  std::int64_t pushCount_ = 0;  ///< open-list pushes of the current route()
  SearchFootprint* record_ = nullptr;    ///< active footprint recorder
  std::vector<std::uint32_t> recStamp_;  ///< dedup stamps (lazy, record only)
  // Per-engine (hence per-run) metric handles; see ctor comment.
  Counter* routesCounter_;
  Counter* expansionsCounter_;
  Counter* heapPushesCounter_;
  Histogram* expansionsPerRoute_;
};

/// One-shot convenience wrapper around AStarEngine (tests, examples).
std::optional<AStarResult> aStarRoute(const RoutingGrid& grid, NetId net,
                                      std::span<const GridNode> sources,
                                      std::span<const GridNode> targets,
                                      const AStarParams& params = {},
                                      const PenaltyField* extra = nullptr,
                                      const T2bField* t2b = nullptr);

}  // namespace sadp
