#include "route/waves.hpp"

namespace sadp {

WavePlan planWaves(std::span<const Rect> boxes, Track minGapTracks) {
  WavePlan plan;
  plan.waveOf.assign(boxes.size(), 0);
  // Members per wave: the scan only ever compares a candidate against
  // earlier members of one wave, so vectors of positions are all the
  // graph representation needed.
  std::vector<std::vector<int>> members;
  // Inflating one side by the full gap is symmetric for axis-aligned
  // boxes: a.inflated(g) overlaps b iff the axis gaps are both < g. The
  // empty check must come first -- inflation makes an empty box concrete.
  const auto conflict = [&](const Rect& a, const Rect& b) {
    if (a.empty() || b.empty()) return false;
    return a.inflated(minGapTracks).overlaps(b);
  };
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    int wave = -1;
    for (std::size_t w = 0; w < members.size() && wave < 0; ++w) {
      bool ok = true;
      for (const int j : members[w]) {
        if (conflict(boxes[i], boxes[std::size_t(j)])) {
          ok = false;
          break;
        }
      }
      if (ok) wave = int(w);
    }
    if (wave < 0) {
      wave = int(members.size());
      members.emplace_back();
    }
    members[std::size_t(wave)].push_back(int(i));
    plan.waveOf[i] = wave;
  }
  plan.waveCount = int(members.size());
  return plan;
}

}  // namespace sadp
