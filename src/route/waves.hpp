// Wave planning for speculative parallel net routing (DESIGN.md §5.12).
//
// The paper's independence distance (Thm 1, d_indep = sqrt(2) * (w_line +
// 2*w_spacer) ~= 84.85 nm) bounds how far one fragment's scenario
// relations reach, so two nets whose extents stay farther apart than
// d_indep cannot contend for grid cells, overlay scenarios, or T2b marks.
// The planner partitions nets into such "waves": an overlap graph over
// d_indep-inflated net bounding boxes, colored greedily in canonical net
// order. The router uses a wave as a batch of searches it may run
// concurrently ahead of the commit frontier; the plan is a scheduling
// hint only -- commit-time footprint verification, not wave disjointness,
// is what guarantees byte-identical results (route/router.cpp).
#pragma once

#include <span>
#include <vector>

#include "geom/geom.hpp"

namespace sadp {

/// A wave assignment: one dense wave id per input position.
struct WavePlan {
  std::vector<int> waveOf;  ///< wave id of each input box, by position
  int waveCount = 0;        ///< ids are dense: 0 .. waveCount - 1
};

/// Greedy coloring of the overlap graph over `minGapTracks`-inflated
/// boxes, scanning positions in input order: each item joins the
/// lowest-numbered wave containing no conflicting member, opening a new
/// wave when every existing one conflicts. Two items conflict when their
/// boxes come within `minGapTracks` of each other in both axes (i.e. one
/// box inflated by the gap overlaps the other); empty boxes conflict with
/// nothing. Scanning in input order makes wave 0 the greedy maximal
/// independent set of all items, wave 1 the greedy MIS of the remainder,
/// and so on -- and makes the plan a pure function of (boxes,
/// minGapTracks): no hash containers, no threading, so the result is
/// identical across thread counts, allocation states and repeated calls.
/// O(n^2) pairwise box checks.
WavePlan planWaves(std::span<const Rect> boxes, Track minGapTracks);

}  // namespace sadp
