// Net-level static timing analysis for criticality-driven routing
// (ROADMAP: timing/criticality-aware routing mode).
//
// The model is deliberately net-granular: each net is a node whose delay
// is an integer fixed-point function of its (estimated or routed) length
// and via count; a directed edge A -> B means a sink pin of A drives the
// source pin of B (derived by pin proximity, the stand-in for cell
// connectivity our synthetic benchmarks do not carry). Arrival, required
// time and slack propagate over a topological order in pure int64
// arithmetic, so every consumer (net ordering, per-net A* weights, CSV
// fields) is bit-reproducible across platforms and thread counts.
//
// Criticality is quantized to 1/64 steps (crit64 in [0, 64]): the router
// folds it into AStarParams::wrongWay as crit64/64, which stays exactly
// representable under the PR-6 power-of-two fixed-point cost scale
// (deriveFixedCostScale) -- timing-driven searches keep the bucket-queue
// fast path and byte-identical memo/speculation keys.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sadp {

struct TimingOptions {
  /// Delay units per planar grid step of wirelength.
  std::int64_t delayPerTrack = 1;
  /// Delay units per via (layer change).
  std::int64_t delayPerVia = 4;
  /// Clock period in delay units. 0 = auto: the estimated critical path
  /// plus periodMarginPct percent headroom.
  std::int64_t period = 0;
  /// Headroom of the auto-derived period over the critical path.
  int periodMarginPct = 10;
  /// Sink-to-source proximity (Manhattan tracks, same layer not required)
  /// that creates a timing edge between two nets.
  Track cellRadius = 4;

  friend bool operator==(const TimingOptions&, const TimingOptions&) =
      default;
};

/// Directed timing dependency: `from`'s sink drives `to`'s source.
struct TimingEdge {
  NetId from = kInvalidNet;
  NetId to = kInvalidNet;

  friend bool operator==(const TimingEdge&, const TimingEdge&) = default;
};

/// Structured cycle report: the offending net cycle in walk order,
/// first-net-first (rotation-canonical: the smallest NetId leads).
struct TimingCycleError {
  std::vector<NetId> cycle;
  std::string message;
};

/// Per-net timing numbers, all in integer delay units.
struct NetTiming {
  std::int64_t delay = 0;
  std::int64_t arrival = 0;   ///< latest path delay ending at this net
  std::int64_t required = 0;  ///< latest allowed arrival
  std::int64_t slack = 0;     ///< required - arrival
  int crit64 = 0;             ///< criticality quantized to [0, 64]
};

struct TimingAnalysis {
  std::vector<NetTiming> nets;    ///< by NetId
  std::vector<NetId> topoOrder;   ///< a valid topological order
  std::int64_t criticalPath = 0;  ///< max arrival over all nets
  std::int64_t period = 0;        ///< resolved clock period
  std::int64_t worstSlack = 0;    ///< min slack over all nets
};

/// analyzeTiming outcome: exactly one of analysis/error is meaningful.
struct TimingResult {
  TimingAnalysis analysis;
  std::optional<TimingCycleError> error;

  bool ok() const { return !error.has_value(); }
};

/// Pre-route delay estimate of one net: pin-bbox half-perimeter times
/// delayPerTrack plus one via charge per pin beyond the first (the router
/// needs at least that many layer touches to tie the pins together).
std::int64_t estimateNetDelay(const Net& net, const TimingOptions& opts);

/// estimateNetDelay over a whole netlist, indexed by NetId.
std::vector<std::int64_t> estimateNetDelays(const Netlist& nl,
                                            const TimingOptions& opts);

/// Post-route delay of a committed path.
std::int64_t pathDelay(std::int64_t wirelength, int vias,
                       const TimingOptions& opts);

/// Derives net-to-net timing edges from pin proximity: an edge A -> B for
/// every sink pin (target or tap) of A within opts.cellRadius Manhattan
/// tracks of B's source pin (first candidate locations). Self-edges are
/// dropped, duplicates deduplicated; output is sorted by (from, to). The
/// result may contain cycles -- pass it through pruneTimingCycles before
/// analyzeTiming, or let analyzeTiming report the cycle.
std::vector<TimingEdge> deriveTimingEdges(const Netlist& nl,
                                          const TimingOptions& opts);

/// Deterministically drops a minimal-ish set of edges to make the graph
/// acyclic: edges are processed in sorted (from, to) order and kept only
/// when they do not close a cycle with the edges kept so far. Identical
/// input always yields the identical acyclic subgraph.
std::vector<TimingEdge> pruneTimingCycles(std::size_t netCount,
                                          std::span<const TimingEdge> edges);

/// Full static analysis over `netCount` nets with the given per-net
/// delays (indexed by NetId) and edges. On a cyclic graph the result
/// carries a TimingCycleError naming one cycle and no analysis. Kahn
/// topological sort with ascending-NetId tie-breaking keeps the order --
/// and hence every downstream consumer -- deterministic.
TimingResult analyzeTiming(std::size_t netCount,
                           std::span<const TimingEdge> edges,
                           std::span<const std::int64_t> delays,
                           const TimingOptions& opts);

}  // namespace sadp
