#include "route/router.hpp"

#include <algorithm>
#include <bit>
#include <mutex>

#include "ocg/scenario.hpp"
#include "patterning/backend.hpp"
#include "route/waves.hpp"
#include "run/run_context.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"

namespace sadp {

namespace {

/// All pins of a net (source, target, taps).
std::vector<const Pin*> netPins(const Net& n) {
  std::vector<const Pin*> pins{&n.source, &n.target};
  for (const Pin& p : n.taps) pins.push_back(&p);
  return pins;
}

/// Track-space extent of a net's pin candidates — the wave planner's
/// spatial proxy for where its route may land. Routes can wander beyond
/// it, which is fine: wave disjointness is a scheduling hint, commit-time
/// footprint verification is the correctness mechanism.
Rect netPinBox(const Net& n) {
  Rect box;
  for (const Pin* pin : netPins(n)) {
    for (const GridNode& c : pin->candidates) {
      box = box.unionWith(Rect{c.x, c.y, c.x + 1, c.y + 1});
    }
  }
  return box;
}

/// Backend resolution for a null RouterOptions::backend: the context's
/// configured name (unknown names fall through -- callers validate at the
/// CLI/service boundary), else the classic SADP backend.
const PatterningBackend* resolveBackend(const RouterOptions& opts,
                                        RunContext& ctx) {
  if (opts.backend != nullptr) return opts.backend;
  if (const PatterningBackend* b =
          findPatterningBackend(ctx.patterningBackendName())) {
    return b;
  }
  return &sadp2Backend();
}

}  // namespace

/// One speculative worker: a private RunContext (so speculative metrics,
/// spans and arena traffic never touch the router's context) plus an
/// engine bound to it. Slots are checked out per speculative search; the
/// engine's scratch arena is not thread-safe, so a slot serves one search
/// at a time.
struct SpecSlot {
  RunContext ctx;
  AStarEngine engine;
  Counter* routes;
  Counter* expansions;
  Counter* pushes;

  explicit SpecSlot(const RoutingGrid& grid) : engine(grid, &ctx) {
    MetricsRegistry& m = ctx.metrics();
    routes = &m.counter(astar_metric::kRoutes);
    expansions = &m.counter(astar_metric::kExpansions);
    pushes = &m.counter(astar_metric::kHeapPushes);
  }
};

/// One net's speculative attempt-0 search: the would-be memo entry (key
/// as of speculation time, recorded footprint, result) plus the exact
/// counter deltas the search flushed into its slot's private registry.
/// On a verified commit the deltas are replayed into ctx_, making the
/// counter snapshot indistinguishable from a live serial search.
struct OverlayAwareRouter::SpecEntry {
  SearchMemoEntry entry;
  std::int64_t routes = 0;
  std::int64_t expansions = 0;
  std::int64_t pushes = 0;
  bool pending = false;  ///< speculated and not yet consumed by a commit
};

struct OverlayAwareRouter::WaveState {
  RunContext fanOutCtx;  ///< hosts the speculation parallelForWeighted
  std::vector<std::unique_ptr<SpecSlot>> slots;
  std::vector<int> freeSlots;  ///< guarded by slotMutex
  std::mutex slotMutex;
  std::vector<int> waveOf;      ///< wave id by commit-order position
  std::vector<char> planned;    ///< by position: speculation batch issued
  std::vector<SpecEntry> specByNet;  ///< by NetId
  int jobs = 1;

  SpecSlot* acquireSlot(const RoutingGrid& grid) {
    std::lock_guard<std::mutex> lock(slotMutex);
    if (freeSlots.empty()) {
      // Concurrency is bounded by fanOutCtx's width <= jobs == slot
      // count, so this only triggers if the scheduler ever grows; a
      // fresh slot keeps it correct regardless.
      slots.push_back(std::make_unique<SpecSlot>(grid));
      return slots.back().get();
    }
    SpecSlot* s = slots[std::size_t(freeSlots.back())].get();
    freeSlots.pop_back();
    return s;
  }
  void releaseSlot(SpecSlot* s) {
    std::lock_guard<std::mutex> lock(slotMutex);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].get() == s) {
        freeSlots.push_back(int(i));
        return;
      }
    }
  }
};

OverlayAwareRouter::~OverlayAwareRouter() = default;

OverlayAwareRouter::OverlayAwareRouter(RoutingGrid& grid,
                                       const Netlist& netlist,
                                       RouterOptions options,
                                       RunContext* ctx)
    : grid_(&grid),
      netlist_(&netlist),
      opts_(options),
      ctx_(ctx ? ctx : &RunContext::current()),
      backend_(resolveBackend(opts_, *ctx_)),
      model_(grid.layers(), grid.width(), grid.height(),
             options.enableMergeOddCycles, &ctx_->graphArena(),
             backend_->graphSpec()),
      engine_(grid, ctx_),
      ripUpField_(grid),
      t2bField_(grid),
      states_(netlist.size()) {
  MetricsRegistry& m = ctx_->metrics();
  counters_.oddCycleRejects = &m.counter("router.oddcycle_rejects");
  counters_.banRejects = &m.counter("router.ban_rejects");
  counters_.cutRejects = &m.counter("router.cut_rejects");
  counters_.ripUps = &m.counter("router.ripups");
  counters_.flips = &m.counter("router.flips");
  counters_.netsRouted = &m.counter("router.nets_routed");
  counters_.netsFailed = &m.counter("router.nets_failed");
  counters_.repairFlips = &m.counter("repair.color_flips");
  counters_.repairReroutes = &m.counter("repair.reroutes");
  counters_.repairSacrifices = &m.counter("repair.sacrifices");
  counters_.verifySkips = &m.counter("router.verify_skips");
  counters_.negotiateIters = &m.counter("router.negotiate_iter");
  counters_.negotiateOverflow = &m.histogram("router.negotiate_overflow");
  counters_.astarRoutes = &m.counter(astar_metric::kRoutes);
  counters_.astarExpansions = &m.counter(astar_metric::kExpansions);
  counters_.astarHeapPushes = &m.counter(astar_metric::kHeapPushes);
  counters_.astarExpansionsPerRoute =
      &m.histogram(astar_metric::kExpansionsPerRoute);
  // Reserve every pin candidate so later nets cannot run over them.
  for (const Net& n : netlist.nets) {
    for (const Pin* pin : netPins(n)) {
      for (const GridNode& c : pin->candidates) {
        if (grid_->inBounds(c) && grid_->isFree(c)) grid_->occupy(c, n.id);
      }
    }
  }
}

void OverlayAwareRouter::occupyPath(const Net& net) {
  for (const GridNode& n : states_[net.id].path) {
    grid_->occupy(n, net.id);
  }
}

namespace {
/// T2b entry marks land up to two tracks outside the fragment cells that
/// spawn them (applyT2bMarks), so a route change influences field reads
/// that far beyond its own cells.
constexpr Nm kChangedHaloTracks = 2;

Rect pathBounds(std::span<const GridNode> path) {
  Rect b;
  for (const GridNode& n : path) {
    b = b.unionWith(Rect{n.x, n.y, n.x + 1, n.y + 1});
  }
  return b;
}
}  // namespace

void OverlayAwareRouter::noteChanged(const Rect& trBox) {
  if (!opts_.trustChangedRegions || trBox.empty()) return;
  changedBoxes_.push_back(trBox.inflated(kChangedHaloTracks));
}

void OverlayAwareRouter::noteDiverged(NetId net) {
  if (!opts_.trustChangedRegions) return;
  if (net < 0 || std::size_t(net) >= divergedNoted_.size() ||
      divergedNoted_[std::size_t(net)] != 0) {
    return;
  }
  divergedNoted_[std::size_t(net)] = 1;
  if (std::size_t(net) < opts_.prevNetBoxes.size()) {
    noteChanged(opts_.prevNetBoxes[std::size_t(net)]);
  }
}

namespace {
/// One penalty-field mutation folded into a history hash. Shared by the
/// live addRipUpPenalty path and the precomputation of negBaseHash_ (the
/// hash resetRipUpFieldToBase deterministically replays to).
void mixPenaltyEvent(std::uint64_t& h, const GridNode& n, float delta) {
  auto mix = [&](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix((std::uint64_t(std::uint32_t(n.x)) << 32) | std::uint32_t(n.y));
  mix((std::uint64_t(std::uint16_t(n.layer)) << 32) |
      std::bit_cast<std::uint32_t>(delta));
}
}  // namespace

void OverlayAwareRouter::addRipUpPenalty(const GridNode& n, float delta) {
  mixPenaltyEvent(ripUpHistoryHash_, n, delta);
  ripUpField_.add(n, delta);
}

void OverlayAwareRouter::resetRipUpFieldToBase() {
  clearRipUpField();
  for (const auto& [node, v] : negBaseCells_) addRipUpPenalty(node, v);
}

void OverlayAwareRouter::clearRipUpField() {
  // Clearing erases history: empty contents hash identically no matter
  // what came before, so divergence in one net's penalty events cannot
  // leak misses into every later net's searches.
  ripUpHistoryHash_ = 0;
  ripUpField_.clear();
}

bool OverlayAwareRouter::changedRegionsMiss(const SearchFootprint& fp) const {
  if (fp.bbox.empty()) return false;  // boxless entry: walk the reads
  for (const Rect& r : changedBoxes_) {
    if (r.overlaps(fp.bbox)) return false;
  }
  return true;
}

void OverlayAwareRouter::releasePath(const Net& net) {
  // Any released route is suspect state for later replayed footprints:
  // whether this mirrors a previous-run rejection or is a fresh
  // divergence, later nets recorded near it must verify.
  noteDiverged(net.id);
  noteChanged(pathBounds(states_[net.id].path));
  for (const GridNode& n : states_[net.id].path) {
    grid_->release(n, net.id);
  }
  // Keep pin candidates reserved.
  for (const Pin* pin : netPins(net)) {
    for (const GridNode& c : pin->candidates) {
      if (grid_->inBounds(c) && grid_->isFree(c)) grid_->occupy(c, net.id);
    }
  }
  states_[net.id].path.clear();
}

void OverlayAwareRouter::applyT2bMarks(NetId net, float delta) {
  for (int layer = 0; layer < grid_->layers(); ++layer) {
    for (const Fragment& f : model_.netFragments(net, layer)) {
      const auto L = std::int16_t(layer);
      if (f.orient() == Orient::Horizontal && f.width() > f.height()) {
        for (Track x = f.xlo; x < f.xhi; ++x) {
          t2bField_.verticalEntry.add({x, f.ylo - 2, L}, delta);
          t2bField_.verticalEntry.add({x, f.yhi + 1, L}, delta);
        }
      } else if (f.orient() == Orient::Vertical) {
        for (Track y = f.ylo; y < f.yhi; ++y) {
          t2bField_.horizontalEntry.add({f.xlo - 2, y, L}, delta);
          t2bField_.horizontalEntry.add({f.xhi + 1, y, L}, delta);
        }
      }
    }
  }
}

void OverlayAwareRouter::penalizeHardHits(
    const std::vector<ScenarioHit>& hits) {
  for (const ScenarioHit& h : hits) {
    // Penalize the region of the new net's own fragment (h.a) so the
    // re-route detours away from the scenario.
    const auto L = std::int16_t(h.layer);
    for (Track y = h.a.ylo - 1; y <= h.a.yhi; ++y) {
      for (Track x = h.a.xlo - 1; x <= h.a.xhi; ++x) {
        addRipUpPenalty({x, y, L}, opts_.ripUpPenalty);
      }
    }
  }
}

void OverlayAwareRouter::tearDownNet(const Net& net) {
  NetRouteState& st = states_[net.id];
  if (st.routed) {
    applyT2bMarks(net.id, -1.0f);
    stats_.vias -= st.vias;
    stats_.wirelength -= st.wirelength;
    --stats_.routedNets;
    st.routed = false;
  }
  st.vias = 0;
  st.wirelength = 0;
  model_.removeNet(net.id);
  releasePath(net);
}

DecomposeOptions OverlayAwareRouter::internalDecomposeOpts() const {
  DecomposeOptions o;
  o.ctx = ctx_;
  o.cache = opts_.maskCache;
  // The SADP backend's synthId routes to the built-in pipeline and keys
  // the cache identically to a null synth, so setting it unconditionally
  // is byte-neutral at k = 2.
  o.synth = backend_;
  return o;
}

bool OverlayAwareRouter::footprintMatches(const SearchFootprint& fp, NetId net,
                                          const PenaltyField* extra,
                                          const T2bField* t2b) const {
  for (const SearchCellRead& r : fp.reads) {
    const NetId owner = grid_->ownerAtIndex(r.index);
    const CellOwnerClass cls = owner == kInvalidNet ? CellOwnerClass::Free
                               : owner == net       ? CellOwnerClass::Self
                                                    : CellOwnerClass::Other;
    if (cls != r.owner) return false;
    if (t2b != nullptr &&
        (t2b->horizontalEntry.atIndex(r.index) != r.t2bH ||
         t2b->verticalEntry.atIndex(r.index) != r.t2bV)) {
      return false;
    }
    if (extra != nullptr && extra->atIndex(r.index) != r.penalty) return false;
  }
  return true;
}

AStarParams OverlayAwareRouter::netParams(NetId net) const {
  AStarParams p = opts_.astar;
  if (!opts_.timingDriven || net < 0 ||
      std::size_t(net) >= crit64_.size()) {
    return p;
  }
  // Criticality steers eq. (5)'s engineering knobs: critical nets pay
  // more for wrong-way jogs (straighter, shorter) AND more per via --
  // without the beta bump a higher wrongWay just trades jogs for layer
  // changes, and a via costs delayPerVia track-delays, so the search
  // would minimize cost while worsening delay. Slack-rich nets pay more
  // for T2b risk (they can afford the detour that avoids it). The 1/64
  // quantization keeps alpha*wrongWay and beta exactly representable
  // under deriveFixedCostScale for integer/half-integer bases, preserving
  // the bucket-queue fast path.
  const int c = crit64_[std::size_t(net)];
  const std::int64_t viaRatio =
      opts_.timing.delayPerTrack > 0
          ? std::max<std::int64_t>(
                0, opts_.timing.delayPerVia / opts_.timing.delayPerTrack - 1)
          : 0;
  p.wrongWay += double(c) / 64.0;
  p.beta += double(viaRatio * c) / 64.0;
  p.gamma *= 1.0 + double(64 - c) / 64.0;
  return p;
}

SearchMemoKey OverlayAwareRouter::makeSearchKey(
    std::span<const GridNode> sources, std::span<const GridNode> targets,
    const AStarParams& params, const PenaltyField* extra,
    const T2bField* t2b) const {
  SearchMemoKey key;
  key.sources.assign(sources.begin(), sources.end());
  key.targets.assign(targets.begin(), targets.end());
  key.params = params;
  key.usedPenalty = extra != nullptr;
  key.usedT2b = t2b != nullptr;
  if (extra != nullptr) {
    key.penaltyHistory = ripUpHistoryHash_;
    key.penaltyMaxSeen = extra->maxSeen();
    key.penaltyHasNegative = extra->hasNegative();
  }
  if (t2b != nullptr) {
    key.t2bHMaxSeen = t2b->horizontalEntry.maxSeen();
    key.t2bVMaxSeen = t2b->verticalEntry.maxSeen();
    key.t2bHasNegative = t2b->horizontalEntry.hasNegative() ||
                         t2b->verticalEntry.hasNegative();
  }
  return key;
}

std::optional<AStarResult> OverlayAwareRouter::searchOrSpec(
    NetId net, std::span<const GridNode> sources,
    std::span<const GridNode> targets, const AStarParams& params,
    const PenaltyField* extra, const T2bField* t2b,
    SearchFootprint* fpOut) {
  if (waves_ != nullptr && net >= 0 &&
      std::size_t(net) < waves_->specByNet.size() &&
      waves_->specByNet[std::size_t(net)].pending) {
    SpecEntry& spec = waves_->specByNet[std::size_t(net)];
    spec.pending = false;
    // A speculative result substitutes for the live search only if the
    // search would replay identically right now: same key (endpoints,
    // params, field summaries -- mode selection included) and every
    // recorded read unchanged. Same soundness argument as the ECO memo
    // (route/route_memo.hpp); commits between speculation and this point
    // invalidate through the footprint walk, never silently.
    if (!spec.entry.footprint.overflow &&
        spec.entry.key ==
            makeSearchKey(sources, targets, params, extra, t2b) &&
        footprintMatches(spec.entry.footprint, net, extra, t2b)) {
      ++waveSpecHits_;
      // Replay the exact counter deltas the speculative search flushed
      // into its private registry: a verified footprint means the live
      // search would have executed identically, so ctx_'s snapshot stays
      // byte-identical to serial routing. The histogram saw exactly one
      // sample (one route() flush) whose value is the expansions delta.
      counters_.astarRoutes->add(spec.routes);
      counters_.astarExpansions->add(spec.expansions);
      counters_.astarHeapPushes->add(spec.pushes);
      if (spec.routes > 0) {
        counters_.astarExpansionsPerRoute->add(spec.expansions);
      }
      if (fpOut != nullptr) *fpOut = std::move(spec.entry.footprint);
      return std::move(spec.entry.result);
    }
    ++waveSpecMisses_;
  }
  if (fpOut != nullptr) engine_.setFootprintRecorder(fpOut);
  std::optional<AStarResult> res =
      engine_.route(net, sources, targets, params, extra, t2b);
  if (fpOut != nullptr) engine_.setFootprintRecorder(nullptr);
  return res;
}

std::optional<AStarResult> OverlayAwareRouter::memoSearch(
    NetId net, std::span<const GridNode> sources,
    std::span<const GridNode> targets, const AStarParams& params,
    const PenaltyField* extra, const T2bField* t2b) {
  if (opts_.memo == nullptr) {
    return searchOrSpec(net, sources, targets, params, extra, t2b, nullptr);
  }
  SearchMemoKey key = makeSearchKey(sources, targets, params, extra, t2b);
  SearchMemoEntry* prev = opts_.memo->next(net);
  if (prev != nullptr && !prev->footprint.overflow && prev->key == key) {
    // Fast path: with trusted changed-region tracking, a footprint whose
    // probed bbox misses every changed region cannot have observed the
    // edit -- skip the per-cell walk. Penalty-reading searches are covered
    // too: key equality includes the rip-up field's full mutation history
    // (key.penaltyHistory), and equal history from an empty field means
    // equal contents everywhere.
    const bool skipWalk = opts_.trustChangedRegions &&
                          changedRegionsMiss(prev->footprint);
    if (skipWalk || footprintMatches(prev->footprint, net, extra, t2b)) {
      if (skipWalk) counters_.verifySkips->add(1);
      opts_.memo->countHit();
      // Move, don't copy: the host's slot is dead once the cursor passed
      // it, and a footprint is the size of the searched area.
      SearchMemoEntry entry = std::move(*prev);
      std::optional<AStarResult> result = entry.result;
      opts_.memo->commit(net, std::move(entry));
      return result;
    }
  }
  opts_.memo->countMiss();
  noteDiverged(net);
  SearchMemoEntry entry;
  entry.key = std::move(key);
  std::optional<AStarResult> res = searchOrSpec(net, sources, targets, params,
                                                extra, t2b, &entry.footprint);
  if (res) noteChanged(pathBounds(res->path));
  entry.result = res;
  opts_.memo->commit(net, std::move(entry));
  return res;
}

int OverlayAwareRouter::resolveCutConflicts(const Net& net) {
  SADP_SPAN_ARG("router.cut_check", net.id);
  const Track w = opts_.cutCheckWindowTracks;
  int bestConflicts = 0;
  for (int layer = 0; layer < grid_->layers(); ++layer) {
    const std::vector<Fragment> own = model_.netFragments(net.id, layer);
    if (own.empty()) continue;
    Rect window;
    for (const Fragment& f : own) {
      window = window.unionWith(Rect{f.xlo, f.ylo, f.xhi, f.yhi});
    }
    window = window.inflated(w);
    OverlayConstraintGraph& g = model_.graph(layer);
    const Color original = g.colorOf(net.id);

    auto windowFrags = [&](bool includeNet) {
      std::vector<ColoredFragment> frags;
      for (const Fragment& f : model_.fragmentsInWindow(layer, window)) {
        if (!includeNet && f.net == net.id) continue;
        Color fc = g.colorOf(f.net);
        if (fc == Color::Unassigned) fc = Color::Core;
        frags.push_back({f, fc});
      }
      return frags;
    };
    // Attribution: count only conflict boxes near the net's own metal, and
    // only the increase over the same count without the net (pre-existing
    // conflicts elsewhere must not block it).
    const Nm pitch = grid_->rules().pitch();
    std::vector<Rect> ownNm;
    for (const Fragment& f : own) {
      ownNm.push_back(Rect{f.xlo * pitch, f.ylo * pitch, f.xhi * pitch,
                           f.yhi * pitch}
                          .inflated(2 * pitch));
    }
    auto nearOwn = [&](const LayerDecomposition& d) {
      int n = 0;
      for (const Rect& box : d.conflictBoxesNm) {
        for (const Rect& o : ownNm) {
          if (o.overlaps(box)) {
            ++n;
            break;
          }
        }
      }
      return n;
    };
    const int baseline = nearOwn(
        *decomposeLayerShared(windowFrags(false), grid_->rules(),
                              internalDecomposeOpts()));
    auto conflictsUnder = [&](Color c) {
      g.setColor(net.id, c);
      const auto d = decomposeLayerShared(
          windowFrags(true), grid_->rules(), internalDecomposeOpts());
      return std::max(0, nearOwn(*d) - baseline);
    };

    const Color base = original == Color::Unassigned ? Color::Core : original;
    int conflicts = conflictsUnder(base);
    if (conflicts > 0) {
      // Try every alternative color in index order, keep the best. At
      // k = 2 this is exactly the old single flippedColor(base) probe --
      // same decompose call sequence, same cache hit/miss counters.
      Color best = base;
      for (int ci = 0; ci < g.colorCount() && conflicts > 0; ++ci) {
        const Color alt = colorFromIndex(ci);
        if (alt == base) continue;
        const int altConflicts = conflictsUnder(alt);
        if (altConflicts < conflicts) {
          conflicts = altConflicts;
          best = alt;
        }
      }
      g.setColor(net.id, best);
    }
    bestConflicts += conflicts;
  }
  return bestConflicts;
}

bool OverlayAwareRouter::routeNet(const Net& net, bool freshPenaltyField) {
  NetRouteState& st = states_[net.id];
  // Negotiation history persists as this net's base penalty field: the
  // replay lands ripUpHistoryHash_ exactly on negBaseHash_, so memo and
  // speculation keys are stable run over run.
  const bool hasNegBase = !negBaseCells_.empty();
  if (freshPenaltyField) {
    if (hasNegBase) {
      resetRipUpFieldToBase();
    } else {
      clearRipUpField();
    }
  }
  const AStarParams params = netParams(net.id);

  for (int attempt = 0; attempt <= opts_.maxRipUp; ++attempt) {
    const bool usePenalty = !freshPenaltyField || attempt > 0 || hasNegBase;
    auto res = memoSearch(
        net.id, net.source.candidates, net.target.candidates, params,
        usePenalty ? &ripUpField_ : nullptr,
        opts_.enableT2bAvoidance ? &t2bField_ : nullptr);
    if (!res) return false;

    // Release unchosen pin candidates, commit the path.
    for (const Pin* pin : netPins(net)) {
      for (const GridNode& c : pin->candidates) {
        grid_->release(c, net.id);
      }
    }
    st.path = std::move(res->path);
    occupyPath(net);

    // Multi-pin nets: connect every tap to the growing tree (sequential
    // Steiner). A tap that cannot reach the tree fails the whole attempt.
    bool tapsOk = true;
    for (const Pin& tap : net.taps) {
      auto tres = memoSearch(
          net.id, tap.candidates, st.path, params,
          usePenalty ? &ripUpField_ : nullptr,
          opts_.enableT2bAvoidance ? &t2bField_ : nullptr);
      if (!tres) {
        tapsOk = false;
        break;
      }
      res->vias += tres->vias;
      // The last node already belongs to the tree.
      for (std::size_t i = 0; i + 1 < tres->path.size(); ++i) {
        grid_->occupy(tres->path[i], net.id);
        st.path.push_back(tres->path[i]);
      }
    }
    if (!tapsOk) {
      releasePath(net);
      return false;
    }

    AddNetResult add = [&] {
      SADP_SPAN_ARG("router.add_net", net.id);
      return model_.addNet(net.id, st.path);
    }();
    bool reject = false;
    if (add.hardViolation) {
      if (opts_.acceptHardViolations) {
        ++stats_.hardViolationsAccepted;  // baseline mode: count, keep
      } else {
        reject = true;  // hard odd cycle: Algorithm 1 lines 6-9
        counters_.oddCycleRejects->add(1);
        penalizeHardHits(add.hardHits);
      }
    }
    if (!reject) {
      SADP_SPAN_ARG("router.color_net", net.id);
      if (opts_.naiveColoring) {
        model_.firstFitColor(net.id);
      } else {
        model_.pseudoColor(net.id);
      }
      // A net whose best coloring still hits a forbidden assignment (a
      // single-assignment ban forced by surrounding hard classes) would
      // print a hard overlay: rip it up like an odd cycle. The check is
      // class-wide because pseudo-coloring flips the whole hard class.
      if (!opts_.acceptHardViolations &&
          model_.classOverlayUnitsOfNet(net.id) >= kHardCost) {
        reject = true;
        counters_.banRejects->add(1);
        for (const GridNode& n : st.path) {
          addRipUpPenalty(n, opts_.ripUpPenalty * 0.5f);
        }
      }
    }
    if (!reject && opts_.enableCutCheck && resolveCutConflicts(net) > 0) {
      reject = true;
      counters_.cutRejects->add(1);
      // Penalize the whole path region lightly to push the next try away.
      for (const GridNode& n : st.path) {
        addRipUpPenalty(n, opts_.ripUpPenalty * 0.5f);
      }
    }
    if (reject) {
      model_.removeNet(net.id);
      releasePath(net);
      ++st.ripUps;
      ++stats_.ripUps;
      counters_.ripUps->add(1);
      continue;
    }

    // Accepted.
    applyT2bMarks(net.id, +1.0f);
    st.vias = res->vias;
    st.wirelength = std::int64_t(st.path.size()) - 1 - res->vias;
    stats_.vias += st.vias;
    stats_.wirelength += st.wirelength;
    ++stats_.routedNets;
    st.routed = true;

    if (opts_.enableColorFlip &&
        model_.overlayUnitsOfNet(net.id) > opts_.flipThreshold) {
      SADP_SPAN_ARG("router.net_flip", net.id);
      for (int layer = 0; layer < grid_->layers(); ++layer) {
        if (model_.graph(layer).findVertex(net.id) >= 0) {
          counters_.flips->add(
              backend_->recolor(model_.graph(layer)).componentsImproved);
        }
      }
    }
    return true;
  }
  return false;
}

void OverlayAwareRouter::prepareWaves(std::span<const Net* const> order) {
  SADP_SPAN("router.wave_plan");
  // Hard cap on private engines: each slot carries nodeCount-sized state
  // arrays, and speculation beyond the machine width is pure waste.
  const int jobs = std::min(opts_.routeJobs, 64);
  waves_ = std::make_unique<WaveState>();
  waves_->jobs = jobs;
  // The speculation fan-out draws from this run's configured worker
  // budget, not a fresh env default; the global pool still bounds actual
  // workers, so a 1-CPU host runs every batch inline -- same results.
  waves_->fanOutCtx.setThreadCount(ctx_->fanOutWidth(jobs));
  waves_->planned.assign(order.size(), 0);
  waves_->specByNet.resize(netlist_->size());
  std::vector<Rect> boxes;
  boxes.reserve(order.size());
  for (const Net* n : order) boxes.push_back(netPinBox(*n));
  waves_->waveOf =
      planWaves(boxes, independenceRadiusTracks(grid_->rules())).waveOf;
  waves_->slots.reserve(std::size_t(jobs));
  for (int i = 0; i < jobs; ++i) {
    waves_->slots.push_back(std::make_unique<SpecSlot>(*grid_));
    waves_->freeSlots.push_back(i);
  }
}

void OverlayAwareRouter::speculateFrontier(std::span<const Net* const> order,
                                           std::size_t pos) {
  WaveState& w = *waves_;
  if (w.planned[pos] != 0) return;
  // Batch: every unplanned member of this net's wave within a short
  // look-ahead horizon. Wave members beyond it get a fresh batch when the
  // frontier reaches them -- state drift between speculation and commit
  // is what verification pays for, so speculate close to the frontier.
  const int wave = w.waveOf[pos];
  const std::size_t horizon =
      pos + std::max<std::size_t>(4 * std::size_t(w.jobs), 16);
  std::vector<int> batch;
  for (std::size_t i = pos; i < order.size() && i < horizon; ++i) {
    if (w.waveOf[i] == wave && w.planned[i] == 0) batch.push_back(int(i));
  }
  for (const int i : batch) w.planned[std::size_t(i)] = 1;
  if (batch.size() < 2) return;  // nothing to overlap: route live
  SADP_SPAN_ARG("router.wave_speculate", std::int64_t(batch.size()));
  // Cost hints: bbox area plus an occupancy term, so the LPT seeding of
  // parallelForWeighted starts the big congested searches first.
  std::vector<std::int64_t> weights(batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const Rect box = netPinBox(*order[std::size_t(batch[k])]);
    weights[k] =
        std::max<std::int64_t>(box.area(), 1) + 2 * grid_->occupiedInBox(box);
  }
  const T2bField* t2b = opts_.enableT2bAvoidance ? &t2bField_ : nullptr;
  // Negotiation mode: attempt-0 searches read the frozen history base
  // (negBase_, content-equal to the ripUpField_ that routeNet replays at
  // commit time), so the speculative key/footprint verify against the
  // replayed field. negBase_ is immutable during the fan-out: read-only
  // sharing across slots is race-free.
  const PenaltyField* specExtra = negBase_.get();
  // Strict phase alternation: this fan-out only READS router state (grid
  // occupancy, T2b field, netlist) and writes disjoint SpecEntry slots;
  // it joins before any commit mutates state again, so the speculative
  // searches are race-free by construction (TSan-checked by
  // tests/test_route_parallel_fuzz.cpp).
  parallelForWeighted(w.fanOutCtx, int(batch.size()), weights, [&](int k) {
    const Net& net = *order[std::size_t(batch[std::size_t(k)])];
    SpecSlot* slot = w.acquireSlot(*grid_);
    SpecEntry& spec = w.specByNet[std::size_t(net.id)];
    const AStarParams params = netParams(net.id);
    // Attempt-0 key: no penalty field (routeNet passes it only after a
    // rip-up, which also invalidates by key) unless a negotiation base is
    // live, T2b as configured. Key fields snapshot speculation-time
    // state; commit-time key equality catches any interim drift of the
    // field summaries.
    spec.entry.key = makeSearchKey(net.source.candidates,
                                   net.target.candidates, params, specExtra,
                                   t2b);
    // makeSearchKey stamps the live ripUpHistoryHash_, which mid-loop
    // reflects whatever net committed last; attempt 0 always starts from
    // the replayed base, whose hash is precomputed.
    if (specExtra != nullptr) spec.entry.key.penaltyHistory = negBaseHash_;
    const std::int64_t r0 = slot->routes->value();
    const std::int64_t e0 = slot->expansions->value();
    const std::int64_t p0 = slot->pushes->value();
    slot->engine.setFootprintRecorder(&spec.entry.footprint);
    spec.entry.result =
        slot->engine.route(net.id, net.source.candidates,
                           net.target.candidates, params, specExtra, t2b);
    slot->engine.setFootprintRecorder(nullptr);
    spec.routes = slot->routes->value() - r0;
    spec.expansions = slot->expansions->value() - e0;
    spec.pushes = slot->pushes->value() - p0;
    spec.pending = true;
    w.releaseSlot(slot);
  });
}

void OverlayAwareRouter::computeCriticality() {
  crit64_.assign(netlist_->size(), 0);
  timingEdges_.clear();
  timingPeriod_ = 0;
  if (!opts_.timingDriven) return;
  SADP_SPAN("router.timing_analysis");
  const std::vector<std::int64_t> delays =
      estimateNetDelays(*netlist_, opts_.timing);
  const std::vector<TimingEdge> raw = deriveTimingEdges(*netlist_, opts_.timing);
  timingEdges_ = pruneTimingCycles(netlist_->size(), raw);
  const TimingResult res =
      analyzeTiming(netlist_->size(), timingEdges_, delays, opts_.timing);
  // pruneTimingCycles guarantees an acyclic graph, so analysis cannot
  // report a cycle here.
  const TimingAnalysis& ta = res.analysis;
  timingPeriod_ = ta.period;
  stats_.worstSlack = ta.worstSlack;
  stats_.timingValid = true;
  for (std::size_t i = 0; i < crit64_.size(); ++i) {
    crit64_[i] = ta.nets[i].crit64;
  }
}

void OverlayAwareRouter::computeRoutedSlack() {
  if (!opts_.timingDriven) return;
  SADP_SPAN("router.timing_update");
  // Same graph and period as the pre-route pass; only delays change, to
  // the committed wirelength/via numbers where a route exists.
  std::vector<std::int64_t> delays = estimateNetDelays(*netlist_, opts_.timing);
  for (const Net& net : netlist_->nets) {
    const NetRouteState& st = states_[net.id];
    if (st.routed) {
      delays[std::size_t(net.id)] =
          pathDelay(st.wirelength, int(st.vias), opts_.timing);
    }
  }
  TimingOptions fixed = opts_.timing;
  fixed.period = timingPeriod_;
  const TimingResult res =
      analyzeTiming(netlist_->size(), timingEdges_, delays, fixed);
  stats_.worstSlack = res.analysis.worstSlack;
  stats_.timingValid = true;
}

std::vector<GridNode> OverlayAwareRouter::negotiationSearch(
    const Net& net, PenaltyField& negField) {
  // Pure search against present + history costs: no memo, no
  // speculation, no footprint. The negotiation phase re-executes from
  // scratch on every run (including ECO replay), so determinism needs
  // only a fixed net order and a deterministic A* -- both held.
  std::vector<GridNode> cells;
  const AStarParams params = netParams(net.id);
  auto res = engine_.route(net.id, net.source.candidates,
                           net.target.candidates, params, &negField, nullptr);
  if (!res) return cells;
  cells = res->path;
  for (const Pin& tap : net.taps) {
    auto tres =
        engine_.route(net.id, tap.candidates, cells, params, &negField,
                      nullptr);
    if (!tres) continue;  // main loop will handle the unroutable tap
    for (std::size_t i = 0; i + 1 < tres->path.size(); ++i) {
      cells.push_back(tres->path[i]);
    }
  }
  // A net's usage contribution is per cell, not per visit: dedupe so a
  // self-touching tree never counts a cell twice.
  std::sort(cells.begin(), cells.end(), [&](const GridNode& a,
                                            const GridNode& b) {
    return grid_->index(a) < grid_->index(b);
  });
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

void OverlayAwareRouter::negotiationPhase(
    std::span<const Net* const> order) {
  SADP_SPAN("router.negotiate");
  grid_->resetCongestion();
  PenaltyField negField(*grid_);
  std::vector<std::vector<GridNode>> negPath(netlist_->size());

  auto addCells = [&](const std::vector<GridNode>& cells, int dir) {
    for (const GridNode& n : cells) {
      grid_->addUsage(n, dir);
      negField.add(n, float(dir) * opts_.presentFactor);
    }
  };

  const int iters = std::max(1, opts_.maxNegotiateIters);
  std::int64_t overflow = 0;
  int ran = 0;
  for (int iter = 0; iter < iters; ++iter) {
    bool any = false;
    for (const Net* netp : order) {
      const Net& net = *netp;
      std::vector<GridNode>& cur = negPath[std::size_t(net.id)];
      if (iter > 0) {
        // Reroute only "hot" nets: unrouted or crossing a shared cell.
        bool hot = cur.empty();
        for (const GridNode& n : cur) {
          if (grid_->usageAt(n) > 1) {
            hot = true;
            break;
          }
        }
        if (!hot) continue;
      }
      any = true;
      addCells(cur, -1);
      cur = negotiationSearch(net, negField);
      addCells(cur, +1);
    }
    overflow = grid_->overflowCount();
    ++ran;
    counters_.negotiateIters->add(1);
    counters_.negotiateOverflow->add(overflow);
    if (overflow == 0 || !any) break;
    if (iter + 1 < iters) {
      // PathFinder history bump: every currently overflowed cell gets
      // permanently more expensive. Ascending-index iteration keeps the
      // accumulation order (and float sums) deterministic.
      for (const std::size_t idx : grid_->overflowedCells()) {
        const std::size_t planeCells =
            std::size_t(grid_->width()) * std::size_t(grid_->height());
        const std::size_t rem = idx % planeCells;
        const GridNode n{Track(rem % std::size_t(grid_->width())),
                         Track(rem / std::size_t(grid_->width())),
                         std::int16_t(idx / planeCells)};
        grid_->addHistory(n, opts_.historyIncrement);
        negField.add(n, opts_.historyIncrement);
      }
    }
  }
  stats_.negotiateIters = ran;
  stats_.negotiateOverflow = overflow;

  // Carry the accumulated history (not the last iteration's present
  // costs) into the main loop as the base penalty field: history marks
  // durable contention, present cost was only ever a tie-breaker between
  // live alternatives that the real rip-up loop re-discovers itself.
  negBaseCells_.clear();
  negBase_.reset();
  negBaseHash_ = 0;
  for (std::size_t idx = 0; idx < grid_->nodeCount(); ++idx) {
    const float h = grid_->historyAtIndex(idx);
    if (h == 0.0f) continue;
    const std::size_t planeCells =
        std::size_t(grid_->width()) * std::size_t(grid_->height());
    const std::size_t rem = idx % planeCells;
    negBaseCells_.push_back(
        {GridNode{Track(rem % std::size_t(grid_->width())),
                  Track(rem / std::size_t(grid_->width())),
                  std::int16_t(idx / planeCells)},
         h});
  }
  grid_->clearCongestion();
  if (!negBaseCells_.empty()) {
    negBase_ = std::make_unique<PenaltyField>(*grid_);
    for (const auto& [node, v] : negBaseCells_) {
      negBase_->add(node, v);
      mixPenaltyEvent(negBaseHash_, node, v);
    }
  }
}

RoutingStats OverlayAwareRouter::run() {
  RunContext::Scope bind(*ctx_);
  SADP_SPAN("router.run");
  stats_ = RoutingStats{};
  stats_.totalNets = int(netlist_->size());
  changedBoxes_.clear();
  divergedNoted_.assign(netlist_->size(), 0);
  for (const Rect& r : opts_.changedSeed) noteChanged(r);
  computeCriticality();
  std::vector<const Net*> order;
  order.reserve(netlist_->size());
  for (const Net& net : netlist_->nets) order.push_back(&net);
  if (opts_.shortNetsFirst) {
    auto hpwl = [](const Net& n) {
      const GridNode& s = n.source.candidates.front();
      const GridNode& t = n.target.candidates.front();
      return std::abs(s.x - t.x) + std::abs(s.y - t.y);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](const Net* a, const Net* b) {
                       return hpwl(*a) < hpwl(*b);
                     });
  }
  if (opts_.timingDriven) {
    // Critical nets route first (stable over the length order above):
    // they claim the straight paths, slack-rich nets absorb the detours.
    std::stable_sort(order.begin(), order.end(),
                     [&](const Net* a, const Net* b) {
                       return crit64_[std::size_t(a->id)] >
                              crit64_[std::size_t(b->id)];
                     });
  }
  if (opts_.negotiate) negotiationPhase(order);
  // Wave-parallel mode: commit order below stays EXACTLY this serial
  // order; waves only drive speculative attempt-0 searches ahead of the
  // frontier, consumed (after verification) inside searchOrSpec.
  const bool useWaves = opts_.routeJobs > 1 && order.size() > 1;
  if (useWaves) prepareWaves(order);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const Net& net = *order[pos];
    if (useWaves) speculateFrontier(order, pos);
    SADP_SPAN_ARG("router.net", net.id);
    if (routeNet(net)) {
      counters_.netsRouted->add(1);
    } else {
      // Leave the net unrouted; keep its pins reserved.
      counters_.netsFailed->add(1);
      states_[net.id].routed = false;
      model_.removeNet(net.id);
      releasePath(net);
    }
  }
  // Speculation is main-loop-only; repair searches always run live.
  waves_.reset();
  if (opts_.enableColorFlip && opts_.finalGlobalFlip) {
    SADP_SPAN("router.final_flip");
    counters_.flips->add(backend_->recolorAll(model_).componentsImproved);
  }
  if (opts_.enableRepair) repairViolations(opts_.repairPasses);
  computeRoutedSlack();
  return stats_;
}

int OverlayAwareRouter::repairViolations(int maxPasses) {
  RunContext::Scope bind(*ctx_);
  SADP_SPAN("router.repair");
  const DesignRules& rules = grid_->rules();
  const Nm pitch = rules.pitch();
  for (int pass = 0; pass < maxPasses; ++pass) {
    SADP_SPAN_ARG("router.repair_pass", pass);
    bool changed = false;
    // Pass-start snapshots: all layers decompose in parallel. A snapshot is
    // only valid while no repair action has mutated colors or routes since
    // the pass started; `dirty` tracks that conservatively (set on every
    // attempted reroute/teardown, not only kept ones, because a failed
    // reroute still re-colors the restored net).
    bool dirty = false;
    std::vector<std::shared_ptr<const LayerDecomposition>> snapshots(
        std::size_t(grid_->layers()));
    parallelFor(*ctx_, grid_->layers(), [&](int l) {
      SADP_SPAN_ARG("repair.snapshot_layer", l);
      snapshots[std::size_t(l)] = decomposeShared(l);
    });
    for (int layer = 0; layer < grid_->layers(); ++layer) {
      const std::shared_ptr<const LayerDecomposition> full =
          dirty ? decomposeShared(layer) : snapshots[std::size_t(layer)];
      std::vector<Rect> boxes = full->conflictBoxesNm;
      boxes.insert(boxes.end(), full->hardOverlayBoxesNm.begin(),
                   full->hardOverlayBoxesNm.end());
      if (boxes.empty()) continue;
      OverlayConstraintGraph& g = model_.graph(layer);
      for (const Rect& boxNm : boxes) {
        const Rect windowTr{
            Track(boxNm.xlo / pitch - 8), Track(boxNm.ylo / pitch - 8),
            Track(boxNm.xhi / pitch + 9), Track(boxNm.yhi / pitch + 9)};
        auto localViolations = [&]() {
          std::vector<ColoredFragment> frags;
          for (const Fragment& f :
               model_.fragmentsInWindow(layer, windowTr)) {
            Color fc = g.colorOf(f.net);
            if (fc == Color::Unassigned) fc = Color::Core;
            frags.push_back({f, fc});
          }
          const OverlayReport r =
              decomposeLayerShared(frags, rules, internalDecomposeOpts())
                  ->report;
          return r.cutConflicts() + r.hardOverlays;
        };
        int current = localViolations();
        if (current == 0) continue;  // fixed by a previous repair

        // Stage 1: color flips of involved nets.
        std::vector<NetId> candidates;
        const Rect tightTr{
            Track(boxNm.xlo / pitch - 1), Track(boxNm.ylo / pitch - 1),
            Track(boxNm.xhi / pitch + 2), Track(boxNm.yhi / pitch + 2)};
        for (const Fragment& f : model_.fragmentsInWindow(layer, tightTr)) {
          if (std::find(candidates.begin(), candidates.end(), f.net) ==
              candidates.end()) {
            candidates.push_back(f.net);
          }
        }
        for (NetId n : candidates) {
          const Color before = g.colorOf(n);
          const Color base = before == Color::Unassigned ? Color::Core
                                                         : before;
          // Try every alternative class color in index order; keep the
          // first improvement. At k = 2 the only alternative is
          // flippedColor(base), the old single-flip behavior.
          bool improved = false;
          for (int ci = 0; ci < g.colorCount(); ++ci) {
            const Color alt = colorFromIndex(ci);
            if (alt == base) continue;
            g.setColor(n, alt);
            // Class-wide legality: the flip moves every hard-classmate.
            if (g.classOverlayUnits(n) >= kHardCost) {
              g.setColor(n, base);
              continue;
            }
            const int after = localViolations();
            if (after < current) {
              current = after;
              changed = true;
              dirty = true;
              counters_.repairFlips->add(1);
              improved = true;
              break;
            }
            g.setColor(n, base);
          }
          if (improved && current == 0) break;
        }
        if (current == 0) continue;

        // Stage 2: targeted rip-up & re-route of one involved net.
        std::sort(candidates.begin(), candidates.end(),
                  [&](NetId a, NetId b) {
                    return states_[a].path.size() < states_[b].path.size();
                  });
        bool fixed = false;
        for (NetId n : candidates) {
          if (!states_[n].routed) continue;
          dirty = true;  // a failed reroute still re-colors the restored net
          if (rerouteAway(netlist_->nets[n], tightTr, layer)) {
            changed = true;
            fixed = true;
            counters_.repairReroutes->add(1);
            break;
          }
        }
        if (fixed || pass + 1 < maxPasses) continue;

        // Stage 3 (last pass only): the paper strictly forbids cut
        // conflicts -- sacrifice the cheapest involved net rather than
        // ship a conflicting layout. A teardown can also expose neighbors
        // (their spacer provider disappears), so it must prove itself.
        if (opts_.sacrificeForZeroConflicts) {
          for (NetId n : candidates) {
            if (!states_[n].routed) continue;
            const int before = localViolations();
            const std::vector<GridNode> oldPath = states_[n].path;
            dirty = true;  // restoreNet re-colors through pseudo-coloring
            tearDownNet(netlist_->nets[n]);
            if (localViolations() < before) {
              changed = true;
              counters_.repairSacrifices->add(1);
              break;
            }
            restoreNet(netlist_->nets[n], oldPath);
          }
        }
      }
    }
    if (!changed) break;
  }
  std::vector<int> remainingPerLayer(std::size_t(grid_->layers()), 0);
  parallelFor(*ctx_, grid_->layers(), [&](int layer) {
    SADP_SPAN_ARG("repair.signoff_layer", layer);
    const auto d = decomposeShared(layer);
    remainingPerLayer[std::size_t(layer)] =
        d->report.cutConflicts() + d->report.hardOverlays;
  });
  int remaining = 0;
  for (const int r : remainingPerLayer) remaining += r;
  return remaining;
}

bool OverlayAwareRouter::rerouteAway(const Net& net, const Rect& avoidTr,
                                     int layer) {
  SADP_SPAN_ARG("router.reroute_away", net.id);
  NetRouteState& st = states_[net.id];
  if (!st.routed) return false;
  const std::vector<GridNode> oldPath = st.path;
  std::vector<Color> oldColors(grid_->layers(), Color::Unassigned);
  for (int l = 0; l < grid_->layers(); ++l) {
    oldColors[l] = model_.colorOf(net.id, l);
  }

  // Local sign-off metric: violations inside the conflict window must
  // strictly decrease, or the old route is restored.
  auto localViol = [&]() {
    const Rect windowTr = avoidTr.inflated(8);
    int total = 0;
    for (int l = 0; l < grid_->layers(); ++l) {
      std::vector<ColoredFragment> frags;
      for (const Fragment& f : model_.fragmentsInWindow(l, windowTr)) {
        Color fc = model_.graph(l).colorOf(f.net);
        if (fc == Color::Unassigned) fc = Color::Core;
        frags.push_back({f, fc});
      }
      const OverlayReport r =
          decomposeLayerShared(frags, grid_->rules(), internalDecomposeOpts())
              ->report;
      total += r.cutConflicts() + r.hardOverlays;
    }
    return total;
  };
  const int before = localViol();

  tearDownNet(net);
  clearRipUpField();
  for (Track y = avoidTr.ylo; y < avoidTr.yhi; ++y) {
    for (Track x = avoidTr.xlo; x < avoidTr.xhi; ++x) {
      addRipUpPenalty({x, y, std::int16_t(layer)}, 25.0f * opts_.ripUpPenalty);
    }
  }
  if (routeNet(net, /*freshPenaltyField=*/false)) {
    if (localViol() < before) return true;
    tearDownNet(net);  // new route is not an improvement: roll back
  }

  (void)oldColors;
  restoreNet(net, oldPath);
  return false;
}

void OverlayAwareRouter::restoreNet(const Net& net,
                                    const std::vector<GridNode>& oldPath) {
  // Re-color through pseudo-coloring (forcing previously captured colors
  // could violate hard classes that changed meanwhile).
  NetRouteState& st = states_[net.id];
  st.path = oldPath;
  occupyPath(net);
  model_.addNet(net.id, st.path);
  model_.pseudoColor(net.id);
  applyT2bMarks(net.id, +1.0f);
  st.vias = 0;
  st.wirelength = std::int64_t(st.path.size()) - 1;
  for (std::size_t i = 1; i < st.path.size(); ++i) {
    if (st.path[i].layer != st.path[i - 1].layer) {
      ++st.vias;
      --st.wirelength;
    }
  }
  stats_.vias += st.vias;
  stats_.wirelength += st.wirelength;
  ++stats_.routedNets;
  st.routed = true;
}

std::vector<ColoredFragment> OverlayAwareRouter::coloredFragments(
    int layer) const {
  std::vector<ColoredFragment> out;
  const OverlayConstraintGraph& g = model_.graph(layer);
  for (const Net& net : netlist_->nets) {
    if (!states_[net.id].routed) continue;
    for (const Fragment& f : model_.netFragments(net.id, layer)) {
      Color c = g.colorOf(net.id);
      if (c == Color::Unassigned) c = Color::Core;
      out.push_back({f, c});
    }
  }
  return out;
}

LayerDecomposition OverlayAwareRouter::decompose(
    int layer, const DecomposeOptions& opts) const {
  DecomposeOptions o = opts;
  if (o.ctx == nullptr) o.ctx = ctx_;
  if (o.cache == nullptr) o.cache = opts_.maskCache;
  if (o.synth == nullptr) o.synth = backend_;
  return decomposeLayer(coloredFragments(layer), grid_->rules(), o);
}

std::shared_ptr<const LayerDecomposition> OverlayAwareRouter::decomposeShared(
    int layer, const DecomposeOptions& opts) const {
  DecomposeOptions o = opts;
  if (o.ctx == nullptr) o.ctx = ctx_;
  if (o.cache == nullptr) o.cache = opts_.maskCache;
  if (o.synth == nullptr) o.synth = backend_;
  return decomposeLayerShared(coloredFragments(layer), grid_->rules(), o);
}

OverlayReport OverlayAwareRouter::physicalReport(
    const DecomposeOptions& opts) const {
  RunContext::Scope bind(*ctx_);
  SADP_SPAN("router.physical_report");
  // Layers decompose independently; reduce in layer order so the report is
  // identical for any thread count.
  std::vector<OverlayReport> perLayer(std::size_t(grid_->layers()));
  parallelFor(*ctx_, grid_->layers(), [&](int layer) {
    SADP_SPAN_ARG("report.layer", layer);
    perLayer[std::size_t(layer)] = decomposeShared(layer, opts)->report;
  });
  OverlayReport total;
  for (const OverlayReport& r : perLayer) total += r;
  return total;
}

}  // namespace sadp
