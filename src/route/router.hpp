// The overlay-aware detailed router: Algorithm 1 of the paper.
//
//   for each net:
//     repeat
//       OverlayAwareAStarSearch          (eq. (5) cost, T2b avoidance)
//       UpdateConstraintGraph            (OverlayModel::addNet)
//       if hard odd cycle or cut conflict:
//         RipUp + IncreaseCost, retry    (bounded by maxRipUp)
//     Pseudocoloring                     (greedy class coloring)
//     if SideOverlay(net) > f_threshold: ColorFlipping (net's layers)
//   final ColorFlipping on the full layout
//   violation repair: color flips, then targeted rip-up & re-route
//
// The cut-conflict check is a windowed run of the bitmap mask synthesizer
// around the new net (both color choices are tried); the full-chip
// decomposition after routing is the sign-off measurement.
#pragma once

#include <memory>
#include <vector>

#include "patterning/flipping.hpp"
#include "netlist/netlist.hpp"
#include "ocg/overlay_model.hpp"
#include "route/astar.hpp"
#include "route/route_memo.hpp"
#include "route/timing.hpp"
#include "sadp/decompose.hpp"

namespace sadp {

class MaskCache;
class PatterningBackend;  // patterning/backend.hpp
class RunContext;

struct RouterOptions {
  AStarParams astar;
  int maxRipUp = 3;            ///< max rip-up & re-route iterations per net
  int flipThreshold = 10;      ///< f_threshold (units of w_line)
  bool enableColorFlip = true; ///< per-net color flipping
  bool finalGlobalFlip = true; ///< full-layout flip after routing
  bool enableT2bAvoidance = true;  ///< gamma term of eq. (5)
  bool enableCutCheck = true;  ///< windowed cut-conflict rip-up trigger
  bool enableRepair = true;    ///< post-pass flip/reroute violation repair
  bool enableMergeOddCycles = true;  ///< allow hard-same classes (cut merges)
  /// Baseline mode: accept nets whose hard constraints cannot be satisfied
  /// instead of ripping them up, and count the violations (the published
  /// baselines report conflicts; our router strictly forbids them).
  bool acceptHardViolations = false;
  /// Baseline mode: first-fit colors instead of cost-aware pseudo-coloring.
  bool naiveColoring = false;
  /// Net ordering for the sequential route: shortest half-perimeter first
  /// (short nets lock in fewer resources, a standard detailed-routing
  /// heuristic). Disabled = netlist order.
  bool shortNetsFirst = true;
  float ripUpPenalty = 6.0f;   ///< IncreaseCost() delta per offending cell
  Nm cutCheckWindowTracks = 5; ///< half-window of the local cut check
  int repairPasses = 3;        ///< flip/reroute repair iterations
  /// Last-resort repair: unroute a conflict-involved net when neither a
  /// color flip nor a re-route clears the violation. Clears about a third
  /// of the residual conflicts at ~4% routability cost; off by default
  /// because routability is the paper's headline metric.
  bool sacrificeForZeroConflicts = false;
  /// Verified A*-search memoization host for incremental ECO replay
  /// (route/route_memo.hpp). Null = no memoization; results are
  /// byte-identical either way by construction.
  RouteMemo* memo = nullptr;
  /// Replay fast path: trust changedSeed/prevNetBoxes to cover every grid
  /// cell whose state differs from the run the memo recorded. A recorded
  /// search whose probed bbox misses every changed region (the router
  /// grows the set as the replay diverges) then skips per-cell
  /// verification; the key comparison still applies. Off = always walk
  /// the footprint; results are byte-identical either way.
  bool trustChangedRegions = false;
  /// A-priori changed regions in track space (the ECO edit's dirty box:
  /// old/new pin cells plus the edited net's previous extent).
  std::vector<Rect> changedSeed;
  /// Previous run's extent (pins + committed path) per current NetId,
  /// noted as changed the first time that net's replay diverges. Empty
  /// rects for nets without history (e.g. freshly added).
  std::vector<Rect> prevNetBoxes;
  /// Shared decomposition cache applied to every decomposeLayer the router
  /// issues (cut-conflict windows, repair probes, sign-off). Null = off.
  MaskCache* maskCache = nullptr;
  /// Wave-parallel routing (DESIGN.md §5.12): number of concurrent
  /// speculative A* searches run ahead of the commit frontier. Nets are
  /// planned into spatially independent waves (d_indep-inflated bbox
  /// overlap graph, route/waves.hpp) and a wave's pending searches execute
  /// on private engines while commits proceed strictly in the canonical
  /// serial order; a speculative result is only committed when its
  /// recorded read footprint verifies against commit-time state, so mask
  /// fingerprints, reports, CSV rows and counter snapshots are
  /// byte-identical to serial routing for every value. <= 1 keeps the
  /// plain sequential loop.
  int routeJobs = 1;
  /// Patterning backend (DESIGN.md §5.13): the coloring interpretation,
  /// recoloring pass, and mask synthesis the run uses. Null resolves the
  /// run context's patterningBackendName(), itself defaulting to the
  /// 2-color SADP cut-process backend -- which leaves every code path and
  /// output byte identical to the pre-backend router.
  const PatterningBackend* backend = nullptr;
  /// Timing-driven mode (DESIGN.md §5.14): run net-level static timing
  /// over the netlist (route/timing.hpp), order nets most-critical-first,
  /// and scale per-net A* weights by criticality -- critical nets route
  /// straighter (higher wrong-way cost), slack-rich nets absorb T2b
  /// detours (higher gamma). Off = byte-identical to the classic router.
  bool timingDriven = false;
  /// PathFinder negotiated congestion (DESIGN.md §5.14): a pre-routing
  /// phase where nets share grid cells and iteratively re-route against
  /// present + history congestion costs until no cell is shared (or
  /// maxNegotiateIters). The accumulated history survives into the main
  /// exclusive-occupancy loop as a base penalty field, steering it away
  /// from the contested cells up front. Deterministic and serial: results
  /// stay byte-identical across routeJobs values and ECO replay.
  bool negotiate = false;
  int maxNegotiateIters = 16;     ///< negotiation iteration cap
  float historyIncrement = 1.0f;  ///< history added per overflowed cell/iter
  float presentFactor = 2.0f;     ///< present cost per extra sharer of a cell
  TimingOptions timing;           ///< delay model / period for timingDriven
};

struct NetRouteState {
  bool routed = false;
  int ripUps = 0;
  int vias = 0;
  std::int64_t wirelength = 0;
  std::vector<GridNode> path;
};

struct RoutingStats {
  int totalNets = 0;
  int routedNets = 0;
  std::int64_t wirelength = 0;  ///< planar grid steps
  int vias = 0;
  int ripUps = 0;
  int hardViolationsAccepted = 0;  ///< only nonzero with acceptHardViolations
  /// Negotiated-congestion accounting (zero unless options.negotiate):
  /// iterations run and residual shared cells when the loop stopped.
  int negotiateIters = 0;
  std::int64_t negotiateOverflow = 0;
  /// Post-route worst slack in delay units (options.timingDriven only;
  /// timingValid distinguishes a computed 0 from "not computed").
  std::int64_t worstSlack = 0;
  bool timingValid = false;
  double routability() const {
    return totalNets == 0 ? 0.0 : 100.0 * routedNets / totalNets;
  }
};

class OverlayAwareRouter {
 public:
  /// All metrics, spans and parallel fan-out of this router report into /
  /// draw from `ctx` (the calling thread's bound context when null), so
  /// concurrent routers with distinct contexts are fully isolated.
  OverlayAwareRouter(RoutingGrid& grid, const Netlist& netlist,
                     RouterOptions options = {}, RunContext* ctx = nullptr);
  ~OverlayAwareRouter();  // out of line: WaveState is private to router.cpp

  /// Routes every net; returns aggregate statistics.
  RoutingStats run();

  const OverlayModel& model() const { return model_; }
  OverlayModel& model() { return model_; }
  const RoutingGrid& grid() const { return *grid_; }
  const std::vector<NetRouteState>& netStates() const { return states_; }
  const RoutingStats& stats() const { return stats_; }
  /// Memo hits accepted via the changed-region fast path this run.
  std::int64_t verifySkips() const { return counters_.verifySkips->value(); }
  /// Wave-speculation accounting: speculative searches whose footprint
  /// verified at commit (hits) vs. discarded ones (misses). Plain members,
  /// not metrics counters -- counter snapshots must stay byte-identical
  /// across routeJobs values, and these by definition cannot.
  std::int64_t waveSpecHits() const { return waveSpecHits_; }
  std::int64_t waveSpecMisses() const { return waveSpecMisses_; }

  /// Colored fragments of one layer for mask synthesis / reporting.
  std::vector<ColoredFragment> coloredFragments(int layer) const;

  /// Full-chip decomposition of one layer (sign-off measurement).
  LayerDecomposition decompose(int layer,
                               const DecomposeOptions& opts = {}) const;
  /// Copy-free variant: cache hits hand back the resident plane.
  std::shared_ptr<const LayerDecomposition> decomposeShared(
      int layer, const DecomposeOptions& opts = {}) const;
  /// Aggregate physical report over all layers.
  OverlayReport physicalReport(const DecomposeOptions& opts = {}) const;

  /// Post-routing violation repair (extends the Type-B removal of §III-D):
  /// locates residual cut conflicts and hard overlays on the full-chip
  /// masks, first flipping involved nets' colors, then escalating to a
  /// targeted rip-up & re-route of an involved net. Returns the number of
  /// remaining violations (conflicts + hard overlays).
  int repairViolations(int maxPasses = 3);

 private:
  bool routeNet(const Net& net, bool freshPenaltyField = true);
  /// The A* parameter set a net searches with: opts_.astar, with
  /// wrong-way and gamma scaled by the net's criticality when timing is
  /// on. crit64's 1/64 quantization keeps alpha*wrongWay exactly
  /// representable under the fixed-point scale for the default alpha.
  AStarParams netParams(NetId net) const;
  /// engine_.route() behind the optional RouteMemo: on a verified
  /// footprint match the recorded result is reused without searching.
  std::optional<AStarResult> memoSearch(NetId net,
                                        std::span<const GridNode> sources,
                                        std::span<const GridNode> targets,
                                        const AStarParams& params,
                                        const PenaltyField* extra,
                                        const T2bField* t2b);
  /// The live engine_.route() call site shared by the memoized and
  /// memo-less paths: consumes the net's pending speculative search when
  /// its key and footprint verify against commit-time state (replaying
  /// the recorded search-counter deltas), else searches for real. A
  /// non-null `fpOut` receives the search's read footprint.
  std::optional<AStarResult> searchOrSpec(NetId net,
                                          std::span<const GridNode> sources,
                                          std::span<const GridNode> targets,
                                          const AStarParams& params,
                                          const PenaltyField* extra,
                                          const T2bField* t2b,
                                          SearchFootprint* fpOut);
  /// Identity of an engine.route() call under current router state
  /// (route/route_memo.hpp); shared by memoization and wave speculation.
  SearchMemoKey makeSearchKey(std::span<const GridNode> sources,
                              std::span<const GridNode> targets,
                              const AStarParams& params,
                              const PenaltyField* extra,
                              const T2bField* t2b) const;
  /// Runs net-level static timing over the netlist (estimated delays,
  /// cycle-pruned proximity edges) and fills crit64_; resolves the clock
  /// period once so the post-route re-analysis measures against the same
  /// budget. No-op unless opts_.timingDriven.
  void computeCriticality();
  /// Post-route slack with committed path delays (stats_.worstSlack).
  void computeRoutedSlack();
  /// PathFinder negotiation pre-phase over `order` (DESIGN.md §5.14):
  /// nets share cells (grid usage counts), re-routing against present +
  /// history costs until overflow-free or opts_.maxNegotiateIters. Leaves
  /// the accumulated history in negBaseCells_ for the main loop's base
  /// penalty field. Strictly serial and deterministic.
  void negotiationPhase(std::span<const Net* const> order);
  /// Routes one net inside the negotiation phase (shared cells, no
  /// occupancy or constraint-graph commit); returns its cell set.
  std::vector<GridNode> negotiationSearch(const Net& net,
                                          PenaltyField& negField);
  /// Clears ripUpField_ and replays the negotiation history base into it;
  /// ripUpHistoryHash_ lands on the precomputed negBaseHash_, so memo and
  /// speculation keys stay stable across reruns and ECO replay.
  void resetRipUpFieldToBase();
  /// Builds the wave plan and the speculative engine pool for `order`
  /// (the canonical commit order). Only called when opts_.routeJobs > 1.
  void prepareWaves(std::span<const Net* const> order);
  /// Issues the speculative batch for the wave of the net at `pos` when
  /// the commit frontier reaches it unspeculated: every not-yet-planned
  /// member of that wave within a short look-ahead horizon searches
  /// concurrently on private engines against current (frozen) state.
  void speculateFrontier(std::span<const Net* const> order, std::size_t pos);
  /// True when every recorded read matches current grid / field state.
  bool footprintMatches(const SearchFootprint& fp, NetId net,
                        const PenaltyField* extra, const T2bField* t2b) const;
  /// Marks a track-space region as possibly differing from the run the
  /// memo recorded (inflated by the T2b mark reach). No-op unless
  /// opts_.trustChangedRegions.
  void noteChanged(const Rect& trBox);
  /// First divergence of `net` this run: its previous-run extent
  /// (opts_.prevNetBoxes) becomes stale state for later footprints.
  void noteDiverged(NetId net);
  /// True when fp's probed bbox misses every changed region, i.e. the
  /// per-cell footprint walk is provably redundant.
  bool changedRegionsMiss(const SearchFootprint& fp) const;
  /// All rip-up field mutations go through these so ripUpHistoryHash_
  /// tracks the exact event sequence (SearchMemoKey::penaltyHistory).
  void addRipUpPenalty(const GridNode& n, float delta);
  void clearRipUpField();
  /// DecomposeOptions for router-internal decomposeLayer calls: binds
  /// ctx_ and the shared mask cache.
  DecomposeOptions internalDecomposeOpts() const;
  /// Rips up a routed net and re-routes it away from `avoidTr` (track box
  /// on `layer`); restores the old route if no better one is found.
  bool rerouteAway(const Net& net, const Rect& avoidTr, int layer);
  /// Counts window-local cut conflicts attributable to `net` under its
  /// current colors; tries the flipped color when conflicts appear.
  int resolveCutConflicts(const Net& net);
  void applyT2bMarks(NetId net, float delta);
  void occupyPath(const Net& net);
  void releasePath(const Net& net);
  void penalizeHardHits(const std::vector<ScenarioHit>& hits);
  void tearDownNet(const Net& net);
  /// Re-installs a previously torn-down route verbatim.
  void restoreNet(const Net& net, const std::vector<GridNode>& oldPath);

  /// Per-router (hence per-run) counter handles, resolved once from the
  /// context's registry at construction. Never function-local statics:
  /// those would pin the first run's registry across contexts.
  struct RouterCounters {
    Counter* oddCycleRejects;
    Counter* banRejects;
    Counter* cutRejects;
    Counter* ripUps;
    Counter* flips;
    Counter* netsRouted;
    Counter* netsFailed;
    Counter* repairFlips;
    Counter* repairReroutes;
    Counter* repairSacrifices;
    Counter* verifySkips;
    Counter* negotiateIters;
    Histogram* negotiateOverflow;
    // The engine's own metric handles, re-resolved here so a verified
    // speculative search can replay its recorded deltas into ctx_
    // (astar_metric names; same underlying objects engine_ flushes to).
    Counter* astarRoutes;
    Counter* astarExpansions;
    Counter* astarHeapPushes;
    Histogram* astarExpansionsPerRoute;
  };

  struct SpecEntry;   // one speculative search + its counter deltas
  struct WaveState;   // plan, engine pool, pending table (router.cpp)

  RoutingGrid* grid_;
  const Netlist* netlist_;
  RouterOptions opts_;
  RunContext* ctx_;  ///< never null; declared before engine_ (init order)
  /// Resolved patterning backend; never null. Declared before model_ so
  /// the constraint graphs can be built with its spec.
  const PatterningBackend* backend_;
  RouterCounters counters_;
  OverlayModel model_;
  AStarEngine engine_;
  PenaltyField ripUpField_;
  T2bField t2bField_;
  std::vector<NetRouteState> states_;
  RoutingStats stats_;
  /// Regions whose grid state may differ from the memo-recorded run
  /// (track space, T2b halo already applied). Only grows within a run.
  std::vector<Rect> changedBoxes_;
  std::vector<char> divergedNoted_;  ///< per-net: prevNetBoxes noted
  /// Running hash of every ripUpField_ mutation since construction.
  std::uint64_t ripUpHistoryHash_ = 0;
  /// Per-net criticality in 1/64 steps; empty = timing off (all zero).
  std::vector<int> crit64_;
  /// Cycle-pruned proximity edges from the pre-route analysis, reused by
  /// the post-route slack pass (same graph, routed delays).
  std::vector<TimingEdge> timingEdges_;
  /// Clock period resolved by the pre-route analysis (auto-derived period
  /// must not drift when post-route delays change the critical path).
  std::int64_t timingPeriod_ = 0;
  /// Negotiation history carried into the main loop: sorted nonzero
  /// (node, cost) cells replayed into ripUpField_ per net, plus the hash
  /// and summaries that replay deterministically produces. A frozen copy
  /// (negBase_) backs speculative attempt-0 searches so their keys and
  /// footprints verify against the replayed ripUpField_ at commit time.
  std::vector<std::pair<GridNode, float>> negBaseCells_;
  std::uint64_t negBaseHash_ = 0;
  std::unique_ptr<PenaltyField> negBase_;
  /// Live only during the wave-parallel main loop of run(); null keeps
  /// every search on the plain serial path.
  std::unique_ptr<WaveState> waves_;
  std::int64_t waveSpecHits_ = 0;
  std::int64_t waveSpecMisses_ = 0;
};

}  // namespace sadp
