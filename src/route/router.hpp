// The overlay-aware detailed router: Algorithm 1 of the paper.
//
//   for each net:
//     repeat
//       OverlayAwareAStarSearch          (eq. (5) cost, T2b avoidance)
//       UpdateConstraintGraph            (OverlayModel::addNet)
//       if hard odd cycle or cut conflict:
//         RipUp + IncreaseCost, retry    (bounded by maxRipUp)
//     Pseudocoloring                     (greedy class coloring)
//     if SideOverlay(net) > f_threshold: ColorFlipping (net's layers)
//   final ColorFlipping on the full layout
//   violation repair: color flips, then targeted rip-up & re-route
//
// The cut-conflict check is a windowed run of the bitmap mask synthesizer
// around the new net (both color choices are tried); the full-chip
// decomposition after routing is the sign-off measurement.
#pragma once

#include <vector>

#include "color/flipping.hpp"
#include "netlist/netlist.hpp"
#include "ocg/overlay_model.hpp"
#include "route/astar.hpp"
#include "sadp/decompose.hpp"

namespace sadp {

class RunContext;

struct RouterOptions {
  AStarParams astar;
  int maxRipUp = 3;            ///< max rip-up & re-route iterations per net
  int flipThreshold = 10;      ///< f_threshold (units of w_line)
  bool enableColorFlip = true; ///< per-net color flipping
  bool finalGlobalFlip = true; ///< full-layout flip after routing
  bool enableT2bAvoidance = true;  ///< gamma term of eq. (5)
  bool enableCutCheck = true;  ///< windowed cut-conflict rip-up trigger
  bool enableRepair = true;    ///< post-pass flip/reroute violation repair
  bool enableMergeOddCycles = true;  ///< allow hard-same classes (cut merges)
  /// Baseline mode: accept nets whose hard constraints cannot be satisfied
  /// instead of ripping them up, and count the violations (the published
  /// baselines report conflicts; our router strictly forbids them).
  bool acceptHardViolations = false;
  /// Baseline mode: first-fit colors instead of cost-aware pseudo-coloring.
  bool naiveColoring = false;
  /// Net ordering for the sequential route: shortest half-perimeter first
  /// (short nets lock in fewer resources, a standard detailed-routing
  /// heuristic). Disabled = netlist order.
  bool shortNetsFirst = true;
  float ripUpPenalty = 6.0f;   ///< IncreaseCost() delta per offending cell
  Nm cutCheckWindowTracks = 5; ///< half-window of the local cut check
  int repairPasses = 3;        ///< flip/reroute repair iterations
  /// Last-resort repair: unroute a conflict-involved net when neither a
  /// color flip nor a re-route clears the violation. Clears about a third
  /// of the residual conflicts at ~4% routability cost; off by default
  /// because routability is the paper's headline metric.
  bool sacrificeForZeroConflicts = false;
};

struct NetRouteState {
  bool routed = false;
  int ripUps = 0;
  int vias = 0;
  std::int64_t wirelength = 0;
  std::vector<GridNode> path;
};

struct RoutingStats {
  int totalNets = 0;
  int routedNets = 0;
  std::int64_t wirelength = 0;  ///< planar grid steps
  int vias = 0;
  int ripUps = 0;
  int hardViolationsAccepted = 0;  ///< only nonzero with acceptHardViolations
  double routability() const {
    return totalNets == 0 ? 0.0 : 100.0 * routedNets / totalNets;
  }
};

class OverlayAwareRouter {
 public:
  /// All metrics, spans and parallel fan-out of this router report into /
  /// draw from `ctx` (the calling thread's bound context when null), so
  /// concurrent routers with distinct contexts are fully isolated.
  OverlayAwareRouter(RoutingGrid& grid, const Netlist& netlist,
                     RouterOptions options = {}, RunContext* ctx = nullptr);

  /// Routes every net; returns aggregate statistics.
  RoutingStats run();

  const OverlayModel& model() const { return model_; }
  OverlayModel& model() { return model_; }
  const RoutingGrid& grid() const { return *grid_; }
  const std::vector<NetRouteState>& netStates() const { return states_; }
  const RoutingStats& stats() const { return stats_; }

  /// Colored fragments of one layer for mask synthesis / reporting.
  std::vector<ColoredFragment> coloredFragments(int layer) const;

  /// Full-chip decomposition of one layer (sign-off measurement).
  LayerDecomposition decompose(int layer,
                               const DecomposeOptions& opts = {}) const;
  /// Aggregate physical report over all layers.
  OverlayReport physicalReport(const DecomposeOptions& opts = {}) const;

  /// Post-routing violation repair (extends the Type-B removal of §III-D):
  /// locates residual cut conflicts and hard overlays on the full-chip
  /// masks, first flipping involved nets' colors, then escalating to a
  /// targeted rip-up & re-route of an involved net. Returns the number of
  /// remaining violations (conflicts + hard overlays).
  int repairViolations(int maxPasses = 3);

 private:
  bool routeNet(const Net& net, bool freshPenaltyField = true);
  /// Rips up a routed net and re-routes it away from `avoidTr` (track box
  /// on `layer`); restores the old route if no better one is found.
  bool rerouteAway(const Net& net, const Rect& avoidTr, int layer);
  /// Counts window-local cut conflicts attributable to `net` under its
  /// current colors; tries the flipped color when conflicts appear.
  int resolveCutConflicts(const Net& net);
  void applyT2bMarks(NetId net, float delta);
  void occupyPath(const Net& net);
  void releasePath(const Net& net);
  void penalizeHardHits(const std::vector<ScenarioHit>& hits);
  void tearDownNet(const Net& net);
  /// Re-installs a previously torn-down route verbatim.
  void restoreNet(const Net& net, const std::vector<GridNode>& oldPath);

  /// Per-router (hence per-run) counter handles, resolved once from the
  /// context's registry at construction. Never function-local statics:
  /// those would pin the first run's registry across contexts.
  struct RouterCounters {
    Counter* oddCycleRejects;
    Counter* banRejects;
    Counter* cutRejects;
    Counter* ripUps;
    Counter* flips;
    Counter* netsRouted;
    Counter* netsFailed;
    Counter* repairFlips;
    Counter* repairReroutes;
    Counter* repairSacrifices;
  };

  RoutingGrid* grid_;
  const Netlist* netlist_;
  RouterOptions opts_;
  RunContext* ctx_;  ///< never null; declared before engine_ (init order)
  RouterCounters counters_;
  OverlayModel model_;
  AStarEngine engine_;
  PenaltyField ripUpField_;
  T2bField t2bField_;
  std::vector<NetRouteState> states_;
  RoutingStats stats_;
};

}  // namespace sadp
