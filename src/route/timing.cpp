#include "route/timing.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace sadp {

namespace {

/// Track bbox of every candidate of every pin of a net.
Rect netPinBounds(const Net& n) {
  Rect b;
  auto fold = [&](const Pin& p) {
    for (const GridNode& c : p.candidates) {
      b = b.unionWith(Rect{c.x, c.y, c.x + 1, c.y + 1});
    }
  };
  fold(n.source);
  fold(n.target);
  for (const Pin& t : n.taps) fold(t);
  return b;
}

/// Representative location of a pin: its first candidate (the canonical
/// one -- generators emit the preferred location first).
GridNode pinLoc(const Pin& p) { return p.candidates.front(); }

std::int64_t manhattanTracks(const GridNode& a, const GridNode& b) {
  return std::abs(std::int64_t(a.x) - b.x) + std::abs(std::int64_t(a.y) - b.y);
}

}  // namespace

std::int64_t estimateNetDelay(const Net& net, const TimingOptions& opts) {
  const Rect b = netPinBounds(net);
  const std::int64_t hpwl =
      b.empty() ? 0 : std::int64_t(b.width()) + b.height() - 2;
  return hpwl * opts.delayPerTrack +
         std::int64_t(net.pinCount() - 1) * opts.delayPerVia;
}

std::vector<std::int64_t> estimateNetDelays(const Netlist& nl,
                                            const TimingOptions& opts) {
  std::vector<std::int64_t> out;
  out.reserve(nl.size());
  for (const Net& n : nl.nets) out.push_back(estimateNetDelay(n, opts));
  return out;
}

std::int64_t pathDelay(std::int64_t wirelength, int vias,
                       const TimingOptions& opts) {
  return wirelength * opts.delayPerTrack +
         std::int64_t(vias) * opts.delayPerVia;
}

std::vector<TimingEdge> deriveTimingEdges(const Netlist& nl,
                                          const TimingOptions& opts) {
  std::vector<TimingEdge> edges;
  for (const Net& a : nl.nets) {
    std::vector<GridNode> sinks;
    if (!a.target.candidates.empty()) sinks.push_back(pinLoc(a.target));
    for (const Pin& t : a.taps) {
      if (!t.candidates.empty()) sinks.push_back(pinLoc(t));
    }
    for (const Net& b : nl.nets) {
      if (a.id == b.id || b.source.candidates.empty()) continue;
      const GridNode src = pinLoc(b.source);
      for (const GridNode& s : sinks) {
        if (manhattanTracks(s, src) <= opts.cellRadius) {
          edges.push_back({a.id, b.id});
          break;
        }
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const TimingEdge& x,
                                           const TimingEdge& y) {
    return x.from != y.from ? x.from < y.from : x.to < y.to;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<TimingEdge> pruneTimingCycles(std::size_t netCount,
                                          std::span<const TimingEdge> edges) {
  // Greedy maximal acyclic subgraph: keep an edge unless its target
  // already reaches its source through kept edges. Net-level graphs are
  // proximity-sparse, so the per-edge BFS stays cheap; determinism comes
  // from the (from, to)-sorted processing order.
  std::vector<TimingEdge> sorted(edges.begin(), edges.end());
  std::sort(sorted.begin(), sorted.end(), [](const TimingEdge& x,
                                             const TimingEdge& y) {
    return x.from != y.from ? x.from < y.from : x.to < y.to;
  });
  std::vector<std::vector<NetId>> adj(netCount);
  std::vector<TimingEdge> kept;
  std::vector<char> seen(netCount, 0);
  std::vector<NetId> stack;
  auto reaches = [&](NetId from, NetId goal) {
    std::fill(seen.begin(), seen.end(), 0);
    stack.assign(1, from);
    seen[std::size_t(from)] = 1;
    while (!stack.empty()) {
      const NetId v = stack.back();
      stack.pop_back();
      if (v == goal) return true;
      for (const NetId w : adj[std::size_t(v)]) {
        if (seen[std::size_t(w)] == 0) {
          seen[std::size_t(w)] = 1;
          stack.push_back(w);
        }
      }
    }
    return false;
  };
  for (const TimingEdge& e : sorted) {
    if (e.from < 0 || e.to < 0 || std::size_t(e.from) >= netCount ||
        std::size_t(e.to) >= netCount || e.from == e.to) {
      continue;
    }
    if (reaches(e.to, e.from)) continue;  // would close a cycle: drop
    adj[std::size_t(e.from)].push_back(e.to);
    kept.push_back(e);
  }
  return kept;
}

TimingResult analyzeTiming(std::size_t netCount,
                           std::span<const TimingEdge> edges,
                           std::span<const std::int64_t> delays,
                           const TimingOptions& opts) {
  TimingResult res;
  std::vector<std::vector<NetId>> out(netCount);
  std::vector<std::vector<NetId>> in(netCount);
  std::vector<int> indeg(netCount, 0);
  for (const TimingEdge& e : edges) {
    if (e.from < 0 || e.to < 0 || std::size_t(e.from) >= netCount ||
        std::size_t(e.to) >= netCount || e.from == e.to) {
      continue;
    }
    out[std::size_t(e.from)].push_back(e.to);
    in[std::size_t(e.to)].push_back(e.from);
    ++indeg[std::size_t(e.to)];
  }

  // Kahn with an ascending-id ready set: the topological order (and so
  // every tie in arrival/required propagation) is a pure function of the
  // graph, not of container iteration order.
  std::vector<NetId> ready;
  for (std::size_t i = 0; i < netCount; ++i) {
    if (indeg[i] == 0) ready.push_back(NetId(i));
  }
  std::vector<NetId>& order = res.analysis.topoOrder;
  order.reserve(netCount);
  while (!ready.empty()) {
    const auto it = std::min_element(ready.begin(), ready.end());
    const NetId v = *it;
    ready.erase(it);
    order.push_back(v);
    for (const NetId w : out[std::size_t(v)]) {
      if (--indeg[std::size_t(w)] == 0) ready.push_back(w);
    }
  }

  if (order.size() != netCount) {
    // A cycle remains among nets with indeg > 0 -- but so do nets merely
    // downstream of one. Trim stuck nets with no stuck successor until a
    // fixpoint: what survives has a stuck successor by construction, so
    // the walk below can never dead-end.
    std::vector<char> stuck(netCount, 0);
    for (std::size_t i = 0; i < netCount; ++i) stuck[i] = indeg[i] > 0;
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t i = 0; i < netCount; ++i) {
        if (stuck[i] == 0) continue;
        bool hasStuckSucc = false;
        for (const NetId w : out[i]) {
          if (stuck[std::size_t(w)] != 0) {
            hasStuckSucc = true;
            break;
          }
        }
        if (!hasStuckSucc) {
          stuck[i] = 0;
          changed = true;
        }
      }
    }
    // Walk from the smallest surviving net along smallest-id surviving
    // out-edges until a node repeats, then emit the loop rotated so its
    // smallest id leads.
    NetId start = kInvalidNet;
    for (std::size_t i = 0; i < netCount; ++i) {
      if (stuck[i] != 0) {
        start = NetId(i);
        break;
      }
    }
    std::vector<NetId> walk;
    std::vector<int> posOf(netCount, -1);
    NetId v = start;
    while (posOf[std::size_t(v)] < 0) {
      posOf[std::size_t(v)] = int(walk.size());
      walk.push_back(v);
      NetId next = kInvalidNet;
      for (const NetId w : out[std::size_t(v)]) {
        if (stuck[std::size_t(w)] != 0 && (next == kInvalidNet || w < next)) {
          next = w;
        }
      }
      v = next;
    }
    std::vector<NetId> cycle(walk.begin() + posOf[std::size_t(v)],
                             walk.end());
    const auto lo = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), lo, cycle.end());
    std::ostringstream msg;
    msg << "timing graph has a cycle:";
    for (const NetId n : cycle) msg << " " << n;
    res.error = TimingCycleError{std::move(cycle), msg.str()};
    return res;
  }

  TimingAnalysis& a = res.analysis;
  a.nets.assign(netCount, NetTiming{});
  for (std::size_t i = 0; i < netCount; ++i) {
    a.nets[i].delay = i < delays.size() ? delays[i] : 0;
  }
  for (const NetId v : order) {
    std::int64_t arr = 0;
    for (const NetId u : in[std::size_t(v)]) {
      arr = std::max(arr, a.nets[std::size_t(u)].arrival);
    }
    a.nets[std::size_t(v)].arrival = arr + a.nets[std::size_t(v)].delay;
    a.criticalPath =
        std::max(a.criticalPath, a.nets[std::size_t(v)].arrival);
  }
  a.period = opts.period > 0
                 ? opts.period
                 : a.criticalPath +
                       (a.criticalPath * opts.periodMarginPct) / 100;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NetId v = *it;
    std::int64_t req = a.period;
    for (const NetId w : out[std::size_t(v)]) {
      req = std::min(req, a.nets[std::size_t(w)].required -
                              a.nets[std::size_t(w)].delay);
    }
    a.nets[std::size_t(v)].required = req;
    a.nets[std::size_t(v)].slack = req - a.nets[std::size_t(v)].arrival;
  }

  std::int64_t minSlack = std::numeric_limits<std::int64_t>::max();
  std::int64_t maxSlack = std::numeric_limits<std::int64_t>::min();
  for (const NetTiming& t : a.nets) {
    minSlack = std::min(minSlack, t.slack);
    maxSlack = std::max(maxSlack, t.slack);
  }
  if (netCount == 0) minSlack = maxSlack = 0;
  a.worstSlack = minSlack;
  // crit64: full-range normalization over the observed slack spread, so
  // the most critical nets always land on 64 and the slackest on 0. A
  // degenerate spread (all equal) means nothing to discriminate: 0.
  const std::int64_t spread = maxSlack - minSlack;
  for (NetTiming& t : a.nets) {
    t.crit64 =
        spread == 0 ? 0 : int(((maxSlack - t.slack) * 64) / spread);
  }
  return res;
}

}  // namespace sadp
