// Verified A*-search memoization: the mechanism behind incremental ECO
// re-route (DESIGN.md §5.11).
//
// A search is a deterministic function of (sources, targets, params,
// which fields were passed, the fields' global bucket-mode state) plus the
// VALUES of every grid cell it reads: the occupancy class of each probed
// node and, when the fields are live, the T2b / penalty values there. A
// recorded search therefore carries its full read footprint; before a
// replayed run re-executes that search, the router compares every recorded
// read against current state. If all of them match, the search would
// expand the exact same frontier and return the exact same path — so the
// recorded result is reused without searching. Any mismatch (the edit's
// dirty region reached this net) falls back to a real search. This makes
// an ECO replay byte-identical to a cold route of the edited design BY
// CONSTRUCTION: memoization is the only skipped work, and it is only
// skipped when provably unobservable.
//
// Occupancy is recorded as a class relative to the routed net
// ({Free, Self, Other}) rather than a raw NetId, so netlist renumbering
// after a remove-net edit never invalidates (or worse, falsely validates)
// a footprint: A* only ever distinguishes "mine or free" from "blocked".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/geom.hpp"
#include "route/astar.hpp"

namespace sadp {

/// Occupancy of a probed cell relative to the searching net.
enum class CellOwnerClass : std::uint8_t { Free = 0, Self = 1, Other = 2 };

/// One recorded cell read: everything the search can observe at a node.
/// t2bH/t2bV/penalty are zero when the corresponding field was not passed
/// to the search (the usage flags live in SearchMemoKey).
struct SearchCellRead {
  std::uint32_t index = 0;  ///< RoutingGrid::index of the node
  CellOwnerClass owner = CellOwnerClass::Free;
  float t2bH = 0.0f;
  float t2bV = 0.0f;
  float penalty = 0.0f;
};

/// Deduplicated read set of one search. `overflow` marks a search whose
/// footprint exceeded the recording cap; such entries are never replayed.
struct SearchFootprint {
  std::vector<SearchCellRead> reads;
  /// Track-space bounding box of every probed node (x/y union across
  /// layers). When the router can prove no grid state inside this box has
  /// changed since recording (RouterOptions::trustChangedRegions), the
  /// per-cell walk is skipped: a search cannot observe an edit its probes
  /// never reached.
  Rect bbox;
  bool overflow = false;
};

/// Identity of one engine.route() call. The field summaries (maxSeen /
/// hasNegative) take part because the engine's open-list mode selection
/// reads them; bucket and heap are byte-equivalent, but the legacy-float
/// fallback is not, so mode selection must replay identically too.
struct SearchMemoKey {
  std::vector<GridNode> sources;
  std::vector<GridNode> targets;
  AStarParams params;
  bool usedPenalty = false;
  bool usedT2b = false;
  /// Hash of the rip-up field's full mutation history (every add and
  /// clear since router construction) at search time; 0 when the search
  /// does not read the field. The field is rebuilt from empty by a
  /// deterministic event sequence each run, so equal history means equal
  /// contents -- which lets the changed-region fast path cover
  /// penalty-reading searches without walking their recorded reads.
  std::uint64_t penaltyHistory = 0;
  float penaltyMaxSeen = 0.0f;
  bool penaltyHasNegative = false;
  float t2bHMaxSeen = 0.0f;
  float t2bVMaxSeen = 0.0f;
  bool t2bHasNegative = false;

  friend bool operator==(const SearchMemoKey&, const SearchMemoKey&) = default;
};

/// One recorded search: key, footprint, and the result it produced
/// (failures memoize too — an unroutable net stays unroutable for free).
struct SearchMemoEntry {
  SearchMemoKey key;
  SearchFootprint footprint;
  std::optional<AStarResult> result;
};

/// Host interface the router drives during a memoized run. The host keeps
/// per-net call sequences from the previous run; `next` hands back the
/// net's next recorded call in order (nullptr when exhausted or dropped),
/// and `commit` records what actually happened this run — on a verified
/// hit the router commits the recorded entry unchanged, so the store
/// always describes the latest run exactly.
class RouteMemo {
 public:
  virtual ~RouteMemo() = default;
  /// The next recorded engine.route() call of `net` from the previous run.
  /// The pointer stays valid until the next next()/commit() for this net.
  /// On a verified hit the router moves the entry out (a footprint can be
  /// megabytes; copying it per hit would dwarf the verification walk), so
  /// the host must not rely on the entry's contents after returning it.
  virtual SearchMemoEntry* next(NetId net) = 0;
  /// Records one engine.route() call of this run, in call order.
  virtual void commit(NetId net, SearchMemoEntry entry) = 0;
  /// Verified-hit / real-search accounting (observability only).
  virtual void countHit() = 0;
  virtual void countMiss() = 0;
};

}  // namespace sadp
