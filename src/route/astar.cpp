#include "route/astar.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory_resource>
#include <queue>

#include "route/route_memo.hpp"
#include "run/run_context.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

namespace {

/// Batches the per-search metrics into one registry flush per route()
/// call (on every return path), keeping atomics out of the search loop.
/// Writes through the owning engine's per-run handles.
struct SearchMetrics {
  const std::int64_t* heapPushes = nullptr;
  const std::int64_t* expansions = nullptr;
  Counter* routes = nullptr;
  Counter* exp = nullptr;
  Counter* pushes = nullptr;
  Histogram* perRoute = nullptr;

  ~SearchMetrics() {
    routes->add(1);
    exp->add(*expansions);
    pushes->add(*heapPushes);
    perRoute->add(*expansions);
  }
};

struct OpenEntry {
  double f;
  double g;
  std::uint32_t node;

  bool operator>(const OpenEntry& o) const { return f > o.f; }
};

constexpr std::int64_t kInfQ = std::numeric_limits<std::int64_t>::max();

/// Dial-style monotone bucket queue: a circular array of LIFO intrusive
/// lists indexed by f modulo a power-of-two bucket count. Valid only when
/// every pushed f is >= the last popped f (consistent heuristic plus
/// nonnegative quantized step costs) and the in-flight f span stays below
/// the bucket count -- both established by route() before choosing this
/// open list. Push and pop are O(1); pop scans forward from the cursor,
/// which only ever advances (total scan work is bounded by the f range).
/// LIFO within a bucket is deliberate: on the equal-f plateau of
/// co-optimal grid paths it keeps the search diving toward the goal
/// instead of sweeping the whole plateau breadth-first. All storage is
/// bump-allocated from the per-run scratch arena.
class BucketOpen {
 public:
  struct Popped {
    std::int64_t f;
    std::int64_t g;
    std::uint32_t node;
  };

  BucketOpen(Arena& a, std::int64_t startF, std::uint32_t bucketCount)
      : mask_(bucketCount - 1),
        cur_(startF),
        pool_(a),
        heads_(a.allocArray<std::uint32_t>(bucketCount)) {
    std::fill_n(heads_, bucketCount, kNone);
  }

  bool empty() const { return live_ == 0; }

  void push(std::int64_t f, std::int64_t g, std::uint32_t node) {
    const auto ei = std::uint32_t(pool_.size());
    const auto b = std::uint32_t(std::uint64_t(f) & mask_);
    pool_.push_back({g, node, heads_[b]});
    heads_[b] = ei;
    ++live_;
  }

  /// Precondition: !empty(). LIFO within a bucket, so the pop order is
  /// exactly "by (f, most recent push first)" -- the property the integer
  /// heap mirrors to stay byte-identical.
  Popped pop() {
    while (heads_[std::uint64_t(cur_) & mask_] == kNone) ++cur_;
    const auto b = std::uint32_t(std::uint64_t(cur_) & mask_);
    const std::uint32_t ei = heads_[b];
    heads_[b] = pool_[ei].next;
    --live_;
    return {cur_, pool_[ei].g, pool_[ei].node};
  }

 private:
  struct Entry {
    std::int64_t g;
    std::uint32_t node;
    std::uint32_t next;
  };
  static constexpr std::uint32_t kNone = std::uint32_t(-1);

  std::uint64_t mask_;
  std::int64_t cur_;
  std::int64_t live_ = 0;
  ArenaVector<Entry> pool_;
  std::uint32_t* heads_;
};

/// Binary min-heap over the same fixed-point costs, ordered by (f, push
/// sequence descending). The sequence tiebreak makes equal-f pops LIFO,
/// i.e. the exact pop order of BucketOpen -- this is the reference
/// implementation the fuzz suite compares buckets against, and the
/// fallback when the bucket preconditions fail (negative penalties,
/// wrongWay < 1, f span too wide). Heap storage lives in the scratch
/// arena via pmr.
class IntHeapOpen {
 public:
  struct Popped {
    std::int64_t f;
    std::int64_t g;
    std::uint32_t node;
  };

  explicit IntHeapOpen(Arena& a) : heap_(&a) {}

  bool empty() const { return heap_.empty(); }

  void push(std::int64_t f, std::int64_t g, std::uint32_t node) {
    heap_.push_back({f, g, node, seq_++});
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  Popped pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    const Entry e = heap_.back();
    heap_.pop_back();
    return {e.f, e.g, e.node};
  }

 private:
  struct Entry {
    std::int64_t f;
    std::int64_t g;
    std::uint32_t node;
    std::uint32_t seq;
  };
  struct After {  // min-heap on f, most recent push first on ties
    bool operator()(const Entry& x, const Entry& y) const {
      return x.f != y.f ? x.f > y.f : x.seq < y.seq;
    }
  };

  std::pmr::vector<Entry> heap_;
  std::uint32_t seq_ = 0;
};

}  // namespace

FixedCostScale deriveFixedCostScale(const AStarParams& p) {
  // Smallest power-of-two scale (up to 2^12) under which the three static
  // step weights are exactly integral. The exactness check is a strict
  // double comparison, so a representable parameter set loses zero
  // precision by construction; anything else (alpha = 1/3, negative
  // weights, huge magnitudes) reports !ok and routes through the legacy
  // double-cost engine.
  constexpr int kMaxShift = 12;
  constexpr double kMaxQ = double(std::int64_t(1) << 40);
  for (int shift = 0; shift <= kMaxShift; ++shift) {
    const double s = double(std::int64_t(1) << shift);
    FixedCostScale fs;
    fs.shift = shift;
    auto rep = [&](double v, std::int64_t& out) {
      const double scaled = v * s;
      if (!(scaled >= 0.0) || scaled > kMaxQ) return false;
      if (scaled != std::floor(scaled)) return false;
      out = std::int64_t(scaled);
      return true;
    };
    if (rep(p.alpha, fs.alphaQ) && rep(p.beta, fs.betaQ) &&
        rep(p.alpha * p.wrongWay, fs.wrongQ)) {
      fs.ok = true;
      return fs;
    }
  }
  return {};
}

/// Resolved fixed-point cost model shared by the bucket and heap modes.
/// gamma and the penalty fields are quantized per read with llround
/// (deterministic, but not required to be exact -- only the three static
/// weights must quantize losslessly for the mode to be selected).
struct AStarEngine::IntSearchSetup {
  const AStarParams* params;
  const PenaltyField* extra;
  const T2bField* t2b;
  std::int64_t alphaQ;
  std::int64_t betaQ;
  std::int64_t wrongQ;
  double scaleD;  ///< 1 << shift, as double
  bool useHeuristic;

  std::int64_t quant(double v) const { return std::llround(v * scaleD); }
};

void AStarEngine::recordProbe(const GridNode& n, NetId net,
                              const PenaltyField* extra, const T2bField* t2b) {
  SearchFootprint& fp = *record_;
  if (fp.overflow) return;
  if (recStamp_.size() != grid_->nodeCount()) {
    recStamp_.assign(grid_->nodeCount(), 0);
  }
  const auto idx = std::uint32_t(grid_->index(n));
  if (recStamp_[idx] == epoch_) return;  // already recorded this search
  recStamp_[idx] = epoch_;
  fp.bbox = fp.bbox.unionWith(Rect{n.x, n.y, n.x + 1, n.y + 1});
  // Footprint cap: a search that touches a large fraction of the grid is
  // cheaper to redo than to verify, and an unbounded footprint would make
  // the memo store scale with searched area rather than path length.
  constexpr std::size_t kMaxFootprintReads = 200'000;
  if (fp.reads.size() >= kMaxFootprintReads) {
    fp.overflow = true;
    return;
  }
  const NetId owner = grid_->owner(n);
  SearchCellRead r;
  r.index = idx;
  r.owner = owner == kInvalidNet ? CellOwnerClass::Free
            : owner == net       ? CellOwnerClass::Self
                                 : CellOwnerClass::Other;
  if (t2b != nullptr) {
    r.t2bH = t2b->horizontalEntry.at(n);
    r.t2bV = t2b->verticalEntry.at(n);
  }
  if (extra != nullptr) r.penalty = extra->at(n);
  fp.reads.push_back(r);
}

AStarEngine::AStarEngine(const RoutingGrid& grid, RunContext* ctx)
    : grid_(&grid),
      scratch_(&(ctx ? *ctx : RunContext::current()).scratchArena()),
      best_(grid.nodeCount(), 0.0f),
      bestQ_(grid.nodeCount(), 0),
      parent_(grid.nodeCount(), 0),
      stamp_(grid.nodeCount(), 0),
      targetStamp_(grid.nodeCount(), 0) {
  MetricsRegistry& m =
      ctx ? ctx->metrics() : RunContext::current().metrics();
  routesCounter_ = &m.counter(astar_metric::kRoutes);
  expansionsCounter_ = &m.counter(astar_metric::kExpansions);
  heapPushesCounter_ = &m.counter(astar_metric::kHeapPushes);
  expansionsPerRoute_ = &m.histogram(astar_metric::kExpansionsPerRoute);
}

template <bool kRecord, class Open>
std::optional<AStarResult> AStarEngine::searchFixed(
    Open& open, NetId net, std::span<const GridNode> targets,
    const IntSearchSetup& su, AStarResult& result) {
  const RoutingGrid& grid = *grid_;
  const AStarParams& params = *su.params;
  const std::uint32_t epoch = epoch_;

  auto decode = [&](std::uint32_t idx) {
    const std::size_t w = std::size_t(grid.width());
    const std::size_t h = std::size_t(grid.height());
    return GridNode{Track(idx % w), Track((idx / w) % h),
                    std::int16_t(idx / (w * h))};
  };
  auto gQOf = [&](std::uint32_t idx) {
    return stamp_[idx] == epoch ? bestQ_[idx] : kInfQ;
  };
  auto passable = [&](const GridNode& node) {
    const NetId owner = grid.owner(node);
    return owner == kInvalidNet || owner == net;
  };

  // Hoisted heuristic state, rebuilt once per expansion instead of once
  // per neighbor push: hBase[i] is h_i at the expanded node; the six
  // delta tables give h_i's exact change for each unit move (|d|+-1 folds
  // to +-weight depending on the sign of d), so a neighbor's h is a
  // T-term add/min scan with no multiplies or abs.
  const std::size_t T = su.useHeuristic ? targets.size() : 0;
  std::int64_t hBase[8];
  std::int64_t hDelta[6][8];  // indexed [move][target]

  std::uint32_t goal = std::uint32_t(-1);
  std::int64_t goalG = 0;
  while (!open.empty()) {
    const auto top = open.pop();
    if (top.g > gQOf(top.node)) continue;  // stale entry
    if (++result.expansions > params.maxExpansions) return std::nullopt;
    if (targetStamp_[top.node] == epoch) {
      goal = top.node;
      goalG = top.g;
      break;
    }
    const GridNode cur = decode(top.node);

    for (std::size_t i = 0; i < T; ++i) {
      const GridNode& t = targets[i];
      const std::int64_t dx = std::int64_t(cur.x) - std::int64_t(t.x);
      const std::int64_t dy = std::int64_t(cur.y) - std::int64_t(t.y);
      const std::int64_t dl =
          std::int64_t(cur.layer) - std::int64_t(t.layer);
      hBase[i] = su.alphaQ * (std::abs(dx) + std::abs(dy)) +
                 su.betaQ * std::abs(dl);
      hDelta[0][i] = dx >= 0 ? su.alphaQ : -su.alphaQ;  // x + 1
      hDelta[1][i] = dx <= 0 ? su.alphaQ : -su.alphaQ;  // x - 1
      hDelta[2][i] = dy >= 0 ? su.alphaQ : -su.alphaQ;  // y + 1
      hDelta[3][i] = dy <= 0 ? su.alphaQ : -su.alphaQ;  // y - 1
      hDelta[4][i] = dl >= 0 ? su.betaQ : -su.betaQ;    // layer + 1
      hDelta[5][i] = dl <= 0 ? su.betaQ : -su.betaQ;    // layer - 1
    }

    for (int m = 0; m < 6; ++m) {  // +-x, +-y, via up/down
      GridNode nxt = cur;
      bool viaMove = false;
      switch (m) {
        case 0: nxt.x += 1; break;
        case 1: nxt.x -= 1; break;
        case 2: nxt.y += 1; break;
        case 3: nxt.y -= 1; break;
        case 4: nxt.layer += 1; viaMove = true; break;
        case 5: nxt.layer -= 1; viaMove = true; break;
      }
      if (!grid.inBounds(nxt)) continue;
      if constexpr (kRecord) recordProbe(nxt, net, su.extra, su.t2b);
      if (!passable(nxt)) continue;
      std::int64_t stepQ;
      if (viaMove) {
        stepQ = su.betaQ;
      } else {
        const bool horizontalMove = (m < 2);
        const bool preferred =
            (grid.preferredDir(cur.layer) == Orient::Horizontal) ==
            horizontalMove;
        stepQ = preferred ? su.alphaQ : su.wrongQ;
        if (su.t2b != nullptr) {
          const PenaltyField& f = horizontalMove ? su.t2b->horizontalEntry
                                                 : su.t2b->verticalEntry;
          stepQ += su.quant(params.gamma * double(f.at(nxt)));
        }
      }
      if (su.extra != nullptr) stepQ += su.quant(double(su.extra->at(nxt)));
      const std::uint32_t nidx = std::uint32_t(grid.index(nxt));
      const std::int64_t g = top.g + stepQ;
      bool fresh = false;
      if (stamp_[nidx] != epoch) {
        stamp_[nidx] = epoch;
        bestQ_[nidx] = kInfQ;
        parent_[nidx] = std::uint32_t(-1);
        fresh = true;
      }
      if (fresh || g < bestQ_[nidx]) {
        bestQ_[nidx] = g;
        parent_[nidx] = top.node;
        std::int64_t h = 0;
        if (T != 0) {
          h = kInfQ;
          const std::int64_t* hd = hDelta[m];
          for (std::size_t i = 0; i < T; ++i) {
            h = std::min(h, hBase[i] + hd[i]);
          }
        }
        open.push(g + h, g, nidx);
        ++pushCount_;
      }
    }
  }
  if (goal == std::uint32_t(-1)) return std::nullopt;

  result.cost = double(goalG) / su.scaleD;
  std::uint32_t cur = goal;
  while (cur != std::uint32_t(-1)) {
    result.path.push_back(decode(cur));
    cur = parent_[cur];
  }
  std::reverse(result.path.begin(), result.path.end());
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    if (result.path[i].layer != result.path[i - 1].layer) ++result.vias;
  }
  return result;
}

std::optional<AStarResult> AStarEngine::route(NetId net,
                                              std::span<const GridNode> sources,
                                              std::span<const GridNode> targets,
                                              const AStarParams& params,
                                              const PenaltyField* extra,
                                              const T2bField* t2b) {
  if (sources.empty() || targets.empty()) return std::nullopt;
  SADP_SPAN("astar.route");
  const RoutingGrid& grid = *grid_;
  ++epoch_;
  const std::uint32_t epoch = epoch_;

  // Targets are stamped so membership tests stay O(1) even when routing
  // toward an entire existing tree (multi-pin Steiner extension).
  bool anyTarget = false;
  for (const GridNode& t : targets) {
    if (grid.inBounds(t)) {
      targetStamp_[grid.index(t)] = epoch;
      anyTarget = true;
    }
  }
  if (!anyTarget) return std::nullopt;

  AStarResult result;
  pushCount_ = 0;
  SearchMetrics metrics;
  metrics.heapPushes = &pushCount_;
  metrics.expansions = &result.expansions;
  metrics.routes = routesCounter_;
  metrics.exp = expansionsCounter_;
  metrics.pushes = heapPushesCounter_;
  metrics.perRoute = expansionsPerRoute_;

  // ---- open-list mode selection (DESIGN.md §5.9) ----
  const FixedCostScale fs = deriveFixedCostScale(params);
  const double scaleD = double(std::int64_t(1) << fs.shift);
  // Per-read quantized terms must stay far from int64 range; fields that
  // have ever held values this large get the legacy double path.
  constexpr double kMaxFieldQ = double(std::int64_t(1) << 40);
  double maxT2bQ = 0.0;
  double maxExtraQ = 0.0;
  if (t2b != nullptr) {
    maxT2bQ = std::abs(params.gamma) *
              std::max(double(t2b->horizontalEntry.maxSeen()),
                       double(t2b->verticalEntry.maxSeen())) *
              scaleD;
  }
  if (extra != nullptr) maxExtraQ = double(extra->maxSeen()) * scaleD;
  const bool canFixed = fs.ok && params.openList != OpenList::LegacyFloat &&
                        maxT2bQ <= kMaxFieldQ && maxExtraQ <= kMaxFieldQ;
  if (!canFixed) {
    return routeLegacy(net, sources, targets, params, extra, t2b, result);
  }

  IntSearchSetup su;
  su.params = &params;
  su.extra = extra;
  su.t2b = t2b;
  su.alphaQ = fs.alphaQ;
  su.betaQ = fs.betaQ;
  su.wrongQ = fs.wrongQ;
  su.scaleD = scaleD;
  // Admissible heuristic: cheapest conceivable remaining cost. With many
  // targets (tree targets) the linear scan would dominate, so fall back
  // to Dijkstra (h = 0), which is trivially admissible.
  su.useHeuristic = targets.size() <= 8;

  auto passable = [&](const GridNode& node) {
    const NetId owner = grid.owner(node);
    return owner == kInvalidNet || owner == net;
  };
  auto srcH = [&](const GridNode& a) -> std::int64_t {
    if (!su.useHeuristic) return 0;
    std::int64_t hBest = kInfQ;
    for (const GridNode& t : targets) {
      const std::int64_t d =
          su.alphaQ * (std::abs(std::int64_t(a.x) - std::int64_t(t.x)) +
                       std::abs(std::int64_t(a.y) - std::int64_t(t.y))) +
          su.betaQ * std::abs(std::int64_t(a.layer) - std::int64_t(t.layer));
      hBest = std::min(hBest, d);
    }
    return hBest;
  };

  // All open-list storage (buckets, entry pool, heap) lives in the
  // per-run scratch arena and is rewound when this scope closes; a warm
  // engine allocates nothing from the global allocator per route.
  ArenaScope scope(*scratch_);

  struct Src {
    std::uint32_t idx;
    std::int64_t f;
  };
  ArenaVector<Src> srcs(*scratch_);
  std::int64_t minF = kInfQ;
  std::int64_t maxF = 0;
  for (const GridNode& s : sources) {
    if (!grid.inBounds(s)) continue;
    if (record_ != nullptr) recordProbe(s, net, extra, t2b);
    if (!passable(s)) continue;
    const auto idx = std::uint32_t(grid.index(s));
    const std::int64_t f = srcH(s);
    srcs.push_back({idx, f});
    minF = std::min(minF, f);
    maxF = std::max(maxF, f);
  }
  if (srcs.empty()) return std::nullopt;

  auto seed = [&](auto& open) {
    for (std::size_t i = 0; i < srcs.size(); ++i) {
      const Src& s = srcs[i];
      if (stamp_[s.idx] != epoch) {
        stamp_[s.idx] = epoch;
        parent_[s.idx] = std::uint32_t(-1);
      }
      bestQ_[s.idx] = 0;
      open.push(s.f, 0, s.idx);
      ++pushCount_;
    }
  };

  // Bucket preconditions: every quantized step cost nonnegative (so f is
  // monotone under a consistent heuristic) and the in-flight f span
  // representable in a modest circular bucket array. wrongQ >= alphaQ
  // keeps the Manhattan heuristic consistent (h never drops faster than
  // the cheapest planar step).
  bool bucketOk =
      fs.wrongQ >= fs.alphaQ &&
      (t2b == nullptr || params.gamma >= 0.0) &&
      (extra == nullptr || !extra->hasNegative()) &&
      (t2b == nullptr || (!t2b->horizontalEntry.hasNegative() &&
                          !t2b->verticalEntry.hasNegative()));
  if (bucketOk && params.openList != OpenList::Heap) {
    // f span bound: one step plus the heuristic's per-step drift, and at
    // least the spread of the seed f values.
    constexpr std::uint64_t kMaxBuckets = std::uint64_t(1) << 18;
    const std::int64_t maxStepQ =
        std::max({fs.alphaQ, fs.wrongQ, fs.betaQ}) +
        std::int64_t(std::ceil(maxT2bQ)) + std::int64_t(std::ceil(maxExtraQ));
    const std::int64_t hDriftQ =
        su.useHeuristic ? std::max(fs.alphaQ, fs.betaQ) : 0;
    const std::uint64_t span = std::uint64_t(
        std::max(maxStepQ + hDriftQ, maxF - minF));
    const std::uint64_t buckets = std::bit_ceil(span + 1);
    if (buckets <= kMaxBuckets) {
      BucketOpen open(*scratch_, minF, std::uint32_t(buckets));
      seed(open);
      return record_ != nullptr
                 ? searchFixed<true>(open, net, targets, su, result)
                 : searchFixed<false>(open, net, targets, su, result);
    }
  }
  IntHeapOpen open(*scratch_);
  seed(open);
  return record_ != nullptr
             ? searchFixed<true>(open, net, targets, su, result)
             : searchFixed<false>(open, net, targets, su, result);
}

std::optional<AStarResult> AStarEngine::routeLegacy(
    NetId net, std::span<const GridNode> sources,
    std::span<const GridNode> targets, const AStarParams& params,
    const PenaltyField* extra, const T2bField* t2b, AStarResult& result) {
  const RoutingGrid& grid = *grid_;
  const std::uint32_t epoch = epoch_;

  auto visit = [&](std::uint32_t idx) -> bool {  // true if first visit
    if (stamp_[idx] == epoch) return false;
    stamp_[idx] = epoch;
    best_[idx] = std::numeric_limits<float>::infinity();
    parent_[idx] = std::uint32_t(-1);
    return true;
  };
  auto gOf = [&](std::uint32_t idx) {
    return stamp_[idx] == epoch ? best_[idx]
                                : std::numeric_limits<float>::infinity();
  };

  auto decode = [&](std::uint32_t idx) {
    const std::size_t w = std::size_t(grid.width());
    const std::size_t h = std::size_t(grid.height());
    return GridNode{Track(idx % w), Track((idx / w) % h),
                    std::int16_t(idx / (w * h))};
  };

  auto isTarget = [&](std::uint32_t idx) {
    return targetStamp_[idx] == epoch;
  };

  const bool useHeuristic = targets.size() <= 8;
  auto heuristic = [&](const GridNode& a) {
    if (!useHeuristic) return 0.0;
    double hBest = std::numeric_limits<double>::infinity();
    for (const GridNode& t : targets) {
      const double d =
          params.alpha * (std::abs(a.x - t.x) + std::abs(a.y - t.y)) +
          params.beta * std::abs(a.layer - t.layer);
      hBest = std::min(hBest, d);
    }
    return hBest;
  };

  auto passable = [&](const GridNode& node) {
    const NetId owner = grid.owner(node);
    return owner == kInvalidNet || owner == net;
  };

  std::priority_queue<OpenEntry, std::vector<OpenEntry>, std::greater<>> open;
  for (const GridNode& s : sources) {
    if (!grid.inBounds(s)) continue;
    if (record_ != nullptr) recordProbe(s, net, extra, t2b);
    if (!passable(s)) continue;
    const std::uint32_t idx = std::uint32_t(grid.index(s));
    visit(idx);
    best_[idx] = 0.0f;
    open.push({heuristic(s), 0.0, idx});
    ++pushCount_;
  }

  std::uint32_t goal = std::uint32_t(-1);
  while (!open.empty()) {
    const OpenEntry top = open.top();
    open.pop();
    if (top.g > gOf(top.node)) continue;  // stale entry
    if (++result.expansions > params.maxExpansions) return std::nullopt;
    if (isTarget(top.node)) {
      goal = top.node;
      result.cost = top.g;
      break;
    }
    const GridNode cur = decode(top.node);

    for (int m = 0; m < 6; ++m) {  // +-x, +-y, via up/down
      GridNode nxt = cur;
      double step = 0.0;
      bool viaMove = false;
      switch (m) {
        case 0: nxt.x += 1; break;
        case 1: nxt.x -= 1; break;
        case 2: nxt.y += 1; break;
        case 3: nxt.y -= 1; break;
        case 4: nxt.layer += 1; viaMove = true; break;
        case 5: nxt.layer -= 1; viaMove = true; break;
      }
      if (!grid.inBounds(nxt)) continue;
      if (record_ != nullptr) recordProbe(nxt, net, extra, t2b);
      if (!passable(nxt)) continue;
      if (viaMove) {
        step = params.beta;
      } else {
        const bool horizontalMove = (m < 2);
        const bool preferred =
            (grid.preferredDir(cur.layer) == Orient::Horizontal) ==
            horizontalMove;
        step = params.alpha * (preferred ? 1.0 : params.wrongWay);
        if (t2b != nullptr) {
          const PenaltyField& f =
              horizontalMove ? t2b->horizontalEntry : t2b->verticalEntry;
          step += params.gamma * f.at(nxt);
        }
      }
      if (extra != nullptr) step += extra->at(nxt);
      const std::uint32_t nidx = std::uint32_t(grid.index(nxt));
      const double g = top.g + step;
      const bool fresh = visit(nidx);
      if (fresh || g < best_[nidx]) {
        best_[nidx] = float(g);
        parent_[nidx] = top.node;
        open.push({g + heuristic(nxt), g, nidx});
        ++pushCount_;
      }
    }
  }
  if (goal == std::uint32_t(-1)) return std::nullopt;

  std::uint32_t cur = goal;
  while (cur != std::uint32_t(-1)) {
    result.path.push_back(decode(cur));
    cur = parent_[cur];
  }
  std::reverse(result.path.begin(), result.path.end());
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    if (result.path[i].layer != result.path[i - 1].layer) ++result.vias;
  }
  return result;
}

std::optional<AStarResult> aStarRoute(const RoutingGrid& grid, NetId net,
                                      std::span<const GridNode> sources,
                                      std::span<const GridNode> targets,
                                      const AStarParams& params,
                                      const PenaltyField* extra,
                                      const T2bField* t2b) {
  AStarEngine engine(grid);
  return engine.route(net, sources, targets, params, extra, t2b);
}

}  // namespace sadp
