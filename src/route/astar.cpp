#include "route/astar.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "run/run_context.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

namespace {

/// Batches the per-search metrics into one registry flush per route()
/// call (on every return path), keeping atomics out of the search loop.
/// Writes through the owning engine's per-run handles.
struct SearchMetrics {
  std::int64_t heapPushes = 0;
  const std::int64_t* expansions = nullptr;
  Counter* routes = nullptr;
  Counter* exp = nullptr;
  Counter* pushes = nullptr;
  Histogram* perRoute = nullptr;

  ~SearchMetrics() {
    routes->add(1);
    exp->add(*expansions);
    pushes->add(heapPushes);
    perRoute->add(*expansions);
  }
};

struct OpenEntry {
  double f;
  double g;
  std::uint32_t node;

  bool operator>(const OpenEntry& o) const { return f > o.f; }
};

}  // namespace

AStarEngine::AStarEngine(const RoutingGrid& grid, RunContext* ctx)
    : grid_(&grid),
      best_(grid.nodeCount(), 0.0f),
      parent_(grid.nodeCount(), 0),
      stamp_(grid.nodeCount(), 0),
      targetStamp_(grid.nodeCount(), 0) {
  MetricsRegistry& m =
      ctx ? ctx->metrics() : RunContext::current().metrics();
  routesCounter_ = &m.counter("astar.routes");
  expansionsCounter_ = &m.counter("astar.expansions");
  heapPushesCounter_ = &m.counter("astar.heap_pushes");
  expansionsPerRoute_ = &m.histogram("astar.expansions_per_route");
}

std::optional<AStarResult> AStarEngine::route(NetId net,
                                              std::span<const GridNode> sources,
                                              std::span<const GridNode> targets,
                                              const AStarParams& params,
                                              const PenaltyField* extra,
                                              const T2bField* t2b) {
  if (sources.empty() || targets.empty()) return std::nullopt;
  SADP_SPAN("astar.route");
  const RoutingGrid& grid = *grid_;
  ++epoch_;
  const std::uint32_t epoch = epoch_;

  auto visit = [&](std::uint32_t idx) -> bool {  // true if first visit
    if (stamp_[idx] == epoch) return false;
    stamp_[idx] = epoch;
    best_[idx] = std::numeric_limits<float>::infinity();
    parent_[idx] = std::uint32_t(-1);
    return true;
  };
  auto gOf = [&](std::uint32_t idx) {
    return stamp_[idx] == epoch ? best_[idx]
                                : std::numeric_limits<float>::infinity();
  };

  auto decode = [&](std::uint32_t idx) {
    const std::size_t w = std::size_t(grid.width());
    const std::size_t h = std::size_t(grid.height());
    return GridNode{Track(idx % w), Track((idx / w) % h),
                    std::int16_t(idx / (w * h))};
  };

  // Targets are stamped so membership tests stay O(1) even when routing
  // toward an entire existing tree (multi-pin Steiner extension).
  bool anyTarget = false;
  for (const GridNode& t : targets) {
    if (grid.inBounds(t)) {
      targetStamp_[grid.index(t)] = epoch;
      anyTarget = true;
    }
  }
  if (!anyTarget) return std::nullopt;
  auto isTarget = [&](std::uint32_t idx) {
    return targetStamp_[idx] == epoch;
  };

  // Admissible heuristic: cheapest conceivable remaining cost. With many
  // targets (tree targets) the linear scan would dominate, so fall back to
  // Dijkstra (h = 0), which is trivially admissible.
  const bool useHeuristic = targets.size() <= 8;
  auto heuristic = [&](const GridNode& a) {
    if (!useHeuristic) return 0.0;
    double hBest = std::numeric_limits<double>::infinity();
    for (const GridNode& t : targets) {
      const double d =
          params.alpha * (std::abs(a.x - t.x) + std::abs(a.y - t.y)) +
          params.beta * std::abs(a.layer - t.layer);
      hBest = std::min(hBest, d);
    }
    return hBest;
  };

  auto passable = [&](const GridNode& node) {
    const NetId owner = grid.owner(node);
    return owner == kInvalidNet || owner == net;
  };

  AStarResult result;
  SearchMetrics metrics;
  metrics.expansions = &result.expansions;
  metrics.routes = routesCounter_;
  metrics.exp = expansionsCounter_;
  metrics.pushes = heapPushesCounter_;
  metrics.perRoute = expansionsPerRoute_;

  std::priority_queue<OpenEntry, std::vector<OpenEntry>, std::greater<>> open;
  for (const GridNode& s : sources) {
    if (!grid.inBounds(s) || !passable(s)) continue;
    const std::uint32_t idx = std::uint32_t(grid.index(s));
    visit(idx);
    best_[idx] = 0.0f;
    open.push({heuristic(s), 0.0, idx});
    ++metrics.heapPushes;
  }


  std::uint32_t goal = std::uint32_t(-1);
  while (!open.empty()) {
    const OpenEntry top = open.top();
    open.pop();
    if (top.g > gOf(top.node)) continue;  // stale entry
    if (++result.expansions > params.maxExpansions) return std::nullopt;
    if (isTarget(top.node)) {
      goal = top.node;
      result.cost = top.g;
      break;
    }
    const GridNode cur = decode(top.node);

    for (int m = 0; m < 6; ++m) {  // +-x, +-y, via up/down
      GridNode nxt = cur;
      double step = 0.0;
      bool viaMove = false;
      switch (m) {
        case 0: nxt.x += 1; break;
        case 1: nxt.x -= 1; break;
        case 2: nxt.y += 1; break;
        case 3: nxt.y -= 1; break;
        case 4: nxt.layer += 1; viaMove = true; break;
        case 5: nxt.layer -= 1; viaMove = true; break;
      }
      if (!grid.inBounds(nxt) || !passable(nxt)) continue;
      if (viaMove) {
        step = params.beta;
      } else {
        const bool horizontalMove = (m < 2);
        const bool preferred =
            (grid.preferredDir(cur.layer) == Orient::Horizontal) ==
            horizontalMove;
        step = params.alpha * (preferred ? 1.0 : params.wrongWay);
        if (t2b != nullptr) {
          const PenaltyField& f =
              horizontalMove ? t2b->horizontalEntry : t2b->verticalEntry;
          step += params.gamma * f.at(nxt);
        }
      }
      if (extra != nullptr) step += extra->at(nxt);
      const std::uint32_t nidx = std::uint32_t(grid.index(nxt));
      const double g = top.g + step;
      const bool fresh = visit(nidx);
      if (fresh || g < best_[nidx]) {
        best_[nidx] = float(g);
        parent_[nidx] = top.node;
        open.push({g + heuristic(nxt), g, nidx});
        ++metrics.heapPushes;
      }
    }
  }
  if (goal == std::uint32_t(-1)) return std::nullopt;

  std::uint32_t cur = goal;
  while (cur != std::uint32_t(-1)) {
    result.path.push_back(decode(cur));
    cur = parent_[cur];
  }
  std::reverse(result.path.begin(), result.path.end());
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    if (result.path[i].layer != result.path[i - 1].layer) ++result.vias;
  }
  return result;
}

std::optional<AStarResult> aStarRoute(const RoutingGrid& grid, NetId net,
                                      std::span<const GridNode> sources,
                                      std::span<const GridNode> targets,
                                      const AStarParams& params,
                                      const PenaltyField* extra,
                                      const T2bField* t2b) {
  AStarEngine engine(grid);
  return engine.route(net, sources, targets, params, extra, t2b);
}

}  // namespace sadp
