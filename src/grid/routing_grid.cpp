#include "grid/routing_grid.hpp"

#include <ostream>
#include <stdexcept>

namespace sadp {

std::ostream& operator<<(std::ostream& os, const GridNode& n) {
  return os << "(" << n.x << "," << n.y << ",L" << n.layer << ")";
}

RoutingGrid::RoutingGrid(Track width, Track height, int layers,
                         DesignRules rules)
    : width_(width), height_(height), layers_(layers), rules_(rules) {
  if (width <= 0 || height <= 0 || layers <= 0) {
    throw std::invalid_argument("RoutingGrid: non-positive dimensions");
  }
  rules_.validate();
  occ_.assign(nodeCount(), kInvalidNet);
}

void RoutingGrid::occupy(const GridNode& n, NetId net) {
  NetId& slot = occ_[index(n)];
  if (slot != kInvalidNet && slot != net) {
    throw std::logic_error("RoutingGrid::occupy: node already taken");
  }
  slot = net;
}

void RoutingGrid::release(const GridNode& n, NetId net) {
  NetId& slot = occ_[index(n)];
  if (slot == net) slot = kInvalidNet;
}

void RoutingGrid::blockBox(int layer, Track xlo, Track ylo, Track xhi,
                           Track yhi) {
  for (Track y = std::max<Track>(0, ylo); y < std::min(height_, yhi); ++y) {
    for (Track x = std::max<Track>(0, xlo); x < std::min(width_, xhi); ++x) {
      block({x, y, std::int16_t(layer)});
    }
  }
}

Rect RoutingGrid::segmentMetalNm(const GridNode& a, const GridNode& b) const {
  if (a.layer != b.layer) {
    throw std::invalid_argument("segmentMetalNm: nodes on different layers");
  }
  const int dx = std::abs(a.x - b.x);
  const int dy = std::abs(a.y - b.y);
  if (dx + dy != 1) {
    throw std::invalid_argument("segmentMetalNm: nodes not adjacent");
  }
  return nodeMetalNm(a).unionWith(nodeMetalNm(b));
}

std::size_t RoutingGrid::occupiedCount() const {
  std::size_t n = 0;
  for (NetId id : occ_) {
    if (id >= 0) ++n;
  }
  return n;
}

void RoutingGrid::resetCongestion() {
  negUsage_.assign(nodeCount(), 0);
  negHistory_.assign(nodeCount(), 0.0f);
}

void RoutingGrid::clearCongestion() {
  negUsage_.clear();
  negUsage_.shrink_to_fit();
  negHistory_.clear();
  negHistory_.shrink_to_fit();
}

void RoutingGrid::addUsage(const GridNode& n, std::int32_t delta) {
  if (!inBounds(n)) return;
  std::int32_t& u = negUsage_[index(n)];
  u = std::max<std::int32_t>(0, u + delta);
}

std::int64_t RoutingGrid::overflowCount() const {
  std::int64_t n = 0;
  for (const std::int32_t u : negUsage_) n += u > 1;
  return n;
}

std::vector<std::size_t> RoutingGrid::overflowedCells() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < negUsage_.size(); ++i) {
    if (negUsage_[i] > 1) out.push_back(i);
  }
  return out;
}

std::int64_t RoutingGrid::occupiedInBox(const Rect& trBox) const {
  const Track xlo = std::max<Track>(Track(trBox.xlo), 0);
  const Track xhi = std::min<Track>(Track(trBox.xhi), width_);
  const Track ylo = std::max<Track>(Track(trBox.ylo), 0);
  const Track yhi = std::min<Track>(Track(trBox.yhi), height_);
  std::int64_t n = 0;
  for (int l = 0; l < layers_; ++l) {
    for (Track y = ylo; y < yhi; ++y) {
      const NetId* row = &occ_[(std::size_t(l) * height_ + y) * width_];
      for (Track x = xlo; x < xhi; ++x) n += row[x] != kInvalidNet;
    }
  }
  return n;
}

}  // namespace sadp
