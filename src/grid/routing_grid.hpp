// Multi-layer gridded routing plane (paper §II-C: "a grid-based routing
// plane" with three routing layers).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/geom.hpp"
#include "grid/design_rules.hpp"

namespace sadp {

/// Identifier of a net; kInvalidNet marks free space, kBlockage an obstacle.
using NetId = std::int32_t;
inline constexpr NetId kInvalidNet = -1;
inline constexpr NetId kBlockageNet = -2;

/// A node of the 3-D routing grid, addressed in track units.
struct GridNode {
  Track x = 0;
  Track y = 0;
  std::int16_t layer = 0;

  friend constexpr bool operator==(const GridNode&, const GridNode&) = default;
};

std::ostream& operator<<(std::ostream& os, const GridNode& n);

/// The gridded routing plane. Layer 0 is horizontal-preferred; preferred
/// directions alternate upward. Each node stores the occupying net (or a
/// blockage marker). The grid also owns the nm<->track transforms.
class RoutingGrid {
 public:
  RoutingGrid(Track width, Track height, int layers, DesignRules rules);

  Track width() const { return width_; }
  Track height() const { return height_; }
  int layers() const { return layers_; }
  const DesignRules& rules() const { return rules_; }

  bool inBounds(const GridNode& n) const {
    return n.x >= 0 && n.x < width_ && n.y >= 0 && n.y < height_ &&
           n.layer >= 0 && n.layer < layers_;
  }

  Orient preferredDir(int layer) const {
    return (layer % 2 == 0) ? Orient::Horizontal : Orient::Vertical;
  }

  /// Linear index of a node; nodes must be in bounds.
  std::size_t index(const GridNode& n) const {
    return (std::size_t(n.layer) * height_ + n.y) * width_ + n.x;
  }
  std::size_t nodeCount() const {
    return std::size_t(layers_) * height_ * width_;
  }

  NetId owner(const GridNode& n) const { return occ_[index(n)]; }
  /// Owner by linear index — footprint verification reads recorded
  /// indices without re-deriving coordinates (route/route_memo.hpp).
  NetId ownerAtIndex(std::size_t idx) const { return occ_[idx]; }
  bool isFree(const GridNode& n) const { return occ_[index(n)] == kInvalidNet; }
  bool isBlocked(const GridNode& n) const {
    return occ_[index(n)] == kBlockageNet;
  }

  /// Claims a node for a net. The node must be free or already owned by the
  /// same net (re-claiming is a no-op).
  void occupy(const GridNode& n, NetId net);
  /// Releases a node owned by `net` (no-op if owned by someone else).
  void release(const GridNode& n, NetId net);
  /// Marks a node as a permanent blockage.
  void block(const GridNode& n) { occ_[index(n)] = kBlockageNet; }
  /// Blocks every node in a track-space box on a layer (half-open box).
  void blockBox(int layer, Track xlo, Track ylo, Track xhi, Track yhi);

  /// Centre of a track node in nm.
  Pt nodeCenterNm(const GridNode& n) const {
    const Nm p = rules_.pitch();
    return {Nm(n.x * p + p / 2), Nm(n.y * p + p / 2)};
  }

  /// Metal rect (width wLine) covering a single grid node, in nm.
  Rect nodeMetalNm(const GridNode& n) const {
    const Pt c = nodeCenterNm(n);
    const Nm h = rules_.wLine / 2;
    return {c.x - h, c.y - h, c.x - h + rules_.wLine, c.y - h + rules_.wLine};
  }

  /// Metal rect (in nm) of the unit wire joining two adjacent same-layer
  /// nodes (they must differ by one track in exactly one axis).
  Rect segmentMetalNm(const GridNode& a, const GridNode& b) const;

  /// Die bounding box in nm.
  Rect dieNm() const {
    const Nm p = rules_.pitch();
    return {0, 0, Nm(width_ * p), Nm(height_ * p)};
  }

  /// Count of nodes owned by real nets (diagnostics).
  std::size_t occupiedCount() const;

  /// Non-free nodes (nets and blockages) inside a track-space box, summed
  /// over all layers; the box is clamped to the grid. Cheap congestion
  /// probe for scheduling heuristics -- the wave router weighs a net by
  /// bbox area x occupancy so `parallelForWeighted` starts the crowded
  /// searches first (route/router.cpp).
  std::int64_t occupiedInBox(const Rect& trBox) const;

  // --- PathFinder negotiated-congestion state (DESIGN.md §5.14) ---
  //
  // During the router's negotiation pre-phase nets share cells instead of
  // occupying them; the grid carries the per-cell sharing count (present
  // cost input) and the accumulated history cost that the iteration folds
  // into the A* penalty field. The arrays are empty until
  // resetCongestion() and cost nothing otherwise.

  /// (Re)allocates and zeroes the usage/history arrays.
  void resetCongestion();
  /// Drops the arrays entirely (post-negotiation: back to zero footprint).
  void clearCongestion();
  bool congestionActive() const { return !negUsage_.empty(); }
  /// Nets currently sharing a node.
  std::int32_t usageAt(const GridNode& n) const {
    return negUsage_[index(n)];
  }
  std::int32_t usageAtIndex(std::size_t idx) const { return negUsage_[idx]; }
  /// Adds to a node's sharing count (delta may be negative); out-of-bounds
  /// nodes are ignored. Counts never go below zero.
  void addUsage(const GridNode& n, std::int32_t delta);
  /// Accumulated history cost of a node.
  float historyAt(const GridNode& n) const { return negHistory_[index(n)]; }
  float historyAtIndex(std::size_t idx) const { return negHistory_[idx]; }
  void addHistory(const GridNode& n, float delta) {
    if (inBounds(n)) negHistory_[index(n)] += delta;
  }
  /// Cells shared by more than one net (the PathFinder overflow measure).
  std::int64_t overflowCount() const;
  /// Linear indices of the overflowed cells, ascending (deterministic
  /// iteration order for history bumps).
  std::vector<std::size_t> overflowedCells() const;

 private:
  Track width_;
  Track height_;
  int layers_;
  DesignRules rules_;
  std::vector<NetId> occ_;
  std::vector<std::int32_t> negUsage_;  ///< negotiation sharing counts
  std::vector<float> negHistory_;       ///< negotiation history costs
};

}  // namespace sadp
