// SADP cut-process design rules (paper §II-B, eqs. (1)-(3)).
#pragma once

#include <stdexcept>
#include <string>

#include "geom/geom.hpp"

namespace sadp {

/// The manufacturing rule set for one metal layer under the SADP cut
/// process. All values in nanometres. The paper's 10 nm-node instance is
/// the default (w_line = w_spacer = w_cut = w_core = 20, d_cut = d_core = 30).
struct DesignRules {
  Nm wLine = 20;     ///< minimum metal line width
  Nm wSpacer = 20;   ///< spacer width == minimum metal spacing
  Nm wCut = 20;      ///< minimum cut-pattern width
  Nm wCore = 20;     ///< minimum core-pattern width
  Nm dCut = 30;      ///< minimum cut-to-cut spacing (over a target pattern)
  Nm dCore = 30;     ///< minimum core-to-core spacing
  Nm dOverlap = 5;   ///< cut-over-spacer overlap length

  /// Routing track pitch: one line plus one spacer.
  constexpr Nm pitch() const { return wLine + wSpacer; }

  /// Independence distance of Theorem 1: sqrt(2) * (w_line + 2*w_spacer).
  /// Two patterns at or beyond this distance never constrain each other.
  /// Returned squared so everything stays in exact integer arithmetic.
  constexpr std::int64_t dIndepSq() const {
    const std::int64_t s = wLine + 2ll * wSpacer;
    return 2 * s * s;
  }

  /// Validates the constraints the paper assumes, eqs. (1)-(3):
  ///   (1) w_line == w_spacer
  ///   (2) w_cut == w_core < d_cut == d_core
  ///   (3) d_core < w_line + 2*w_spacer - 2*d_overlap
  /// Throws std::invalid_argument with a description on violation.
  void validate() const {
    auto fail = [](const std::string& msg) {
      throw std::invalid_argument("DesignRules: " + msg);
    };
    if (wLine <= 0 || wSpacer <= 0 || wCut <= 0 || wCore <= 0 || dCut <= 0 ||
        dCore <= 0 || dOverlap < 0) {
      fail("all rule values must be positive (dOverlap >= 0)");
    }
    if (wLine != wSpacer) fail("eq.(1) requires w_line == w_spacer");
    if (wCut != wCore) fail("eq.(2) requires w_cut == w_core");
    if (dCut != dCore) fail("eq.(2) requires d_cut == d_core");
    if (!(wCut < dCut)) fail("eq.(2) requires w_cut < d_cut");
    if (!(dCore < wLine + 2 * wSpacer - 2 * dOverlap)) {
      fail("eq.(3) requires d_core < w_line + 2*w_spacer - 2*d_overlap");
    }
  }

  friend constexpr bool operator==(const DesignRules&,
                                   const DesignRules&) = default;
};

}  // namespace sadp
