#include "eval/eval.hpp"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>

#include "run/run_context.hpp"
#include "trace/trace.hpp"

namespace sadp {

ExperimentRow runProposed(const BenchmarkSpec& spec, RunContext* ctx) {
  return runProposed(spec, RouterOptions{}, "ours", ctx);
}

ExperimentRow runProposed(const BenchmarkSpec& spec, const RouterOptions& opts,
                          const std::string& label, RunContext* ctx) {
  RunContext& c = ctx ? *ctx : RunContext::current();
  RunContext::Scope bind(c);
  SADP_SPAN("eval.proposed");
  BenchmarkInstance inst = makeBenchmark(spec);
  const auto t0 = std::chrono::steady_clock::now();
  OverlayAwareRouter router(inst.grid, inst.netlist, opts, &c);
  const RoutingStats stats = router.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const OverlayReport phys = router.physicalReport();

  ExperimentRow row;
  row.circuit = spec.name;
  row.router = label;
  row.nets = int(inst.netlist.size());
  row.routability = stats.routability();
  // Residual forbidden assignments (already counted as physical hard
  // overlays) are removed from the unit metric; they are kHardCost each.
  row.overlayUnits = router.model().totalOverlayUnits() % kHardCost;
  row.overlayNm = phys.sideOverlayNm;
  row.conflicts = phys.cutConflicts();
  row.hardOverlays = phys.hardOverlays;
  row.cpuSeconds = secs;
  row.worstSlack = stats.worstSlack;
  row.negotiateOverflow = stats.negotiateOverflow;
  return row;
}

ExperimentRow runBaselineRow(BaselineKind kind, const BenchmarkSpec& spec,
                             double timeoutSeconds, RunContext* ctx) {
  RunContext& c = ctx ? *ctx : RunContext::current();
  RunContext::Scope bind(c);
  SADP_SPAN("eval.baseline");
  BenchmarkInstance inst = makeBenchmark(spec);
  const BaselineResult res =
      runBaseline(kind, inst.grid, inst.netlist, timeoutSeconds, &c);

  ExperimentRow row;
  row.circuit = spec.name;
  row.router = toString(kind);
  row.nets = int(inst.netlist.size());
  row.routability = res.stats.routability();
  row.overlayUnits = res.overlayUnits % kHardCost;
  row.overlayNm = res.physical.sideOverlayNm;
  row.conflicts = res.conflicts;
  row.hardOverlays = res.physical.hardOverlays;
  row.cpuSeconds = res.seconds;
  row.na = res.timedOut;
  return row;
}

void printComparisonTable(std::ostream& os,
                          const std::vector<ExperimentRow>& rows,
                          const std::string& reference) {
  os << std::left << std::setw(9) << "circuit" << std::setw(13) << "router"
     << std::right << std::setw(7) << "#nets" << std::setw(9) << "rout%"
     << std::setw(12) << "ovl(units)" << std::setw(11) << "ovl(nm)"
     << std::setw(7) << "#C" << std::setw(7) << "hard" << std::setw(10)
     << "CPU(s)" << "\n";
  os << std::string(85, '-') << "\n";
  for (const ExperimentRow& r : rows) {
    os << std::left << std::setw(9) << r.circuit << std::setw(13) << r.router
       << std::right << std::setw(7) << r.nets;
    if (r.na) {
      os << std::setw(9) << "NA" << std::setw(12) << "NA" << std::setw(11)
         << "NA" << std::setw(7) << "NA" << std::setw(7) << "NA"
         << std::setw(10) << std::fixed << std::setprecision(1)
         << r.cpuSeconds << "\n";
      continue;
    }
    os << std::setw(9) << std::fixed << std::setprecision(2) << r.routability
       << std::setw(12) << r.overlayUnits << std::setw(11) << r.overlayNm
       << std::setw(7) << r.conflicts << std::setw(7) << r.hardOverlays
       << std::setw(10) << std::setprecision(2) << r.cpuSeconds << "\n";
  }

  // Normalized comparison ("Comp." row): geometric mean of each router's
  // metrics over the reference router, matched per circuit.
  std::map<std::string, const ExperimentRow*> ref;
  for (const ExperimentRow& r : rows) {
    if (r.router == reference && !r.na) ref[r.circuit] = &r;
  }
  std::map<std::string, std::array<double, 4>> logSums;  // rout, ovl, C, cpu
  std::map<std::string, int> counts;
  for (const ExperimentRow& r : rows) {
    if (r.na) continue;
    auto it = ref.find(r.circuit);
    if (it == ref.end()) continue;
    const ExperimentRow& b = *it->second;
    auto ratio = [](double x, double y) {
      if (y <= 0.0) return 1.0;
      return std::max(x, 1e-9) / y;
    };
    auto& s = logSums[r.router];
    s[0] += std::log(ratio(r.routability, b.routability));
    s[1] += std::log(ratio(double(r.overlayNm), double(b.overlayNm)));
    s[2] += std::log(ratio(double(r.conflicts) + 1.0,
                           double(b.conflicts) + 1.0));
    s[3] += std::log(ratio(r.cpuSeconds, b.cpuSeconds));
    ++counts[r.router];
  }
  os << std::string(85, '-') << "\n";
  for (const auto& [router, s] : logSums) {
    const int n = counts[router];
    if (n == 0) continue;
    os << std::left << std::setw(9) << "Comp." << std::setw(13) << router
       << std::right << std::setw(7) << "" << std::setw(9) << std::fixed
       << std::setprecision(3) << std::exp(s[0] / n) << std::setw(12)
       << std::exp(s[1] / n) << std::setw(11) << "" << std::setw(7)
       << std::setprecision(2) << std::exp(s[2] / n) << std::setw(7) << ""
       << std::setw(10) << std::exp(s[3] / n) << "\n";
  }
}

std::optional<double> runtimeExponent(
    const std::vector<ExperimentRow>& rows) {
  // Least squares on (log n, log t).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (const ExperimentRow& r : rows) {
    if (r.na || r.nets <= 0 || r.cpuSeconds <= 0.0) continue;
    const double x = std::log(double(r.nets));
    const double y = std::log(r.cpuSeconds);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return std::nullopt;
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return std::nullopt;
  return (n * sxy - sx * sy) / denom;
}

void writeCsv(std::ostream& os, const std::vector<ExperimentRow>& rows) {
  os << "circuit,router,nets,routability,overlay_units,overlay_nm,"
        "conflicts,hard_overlays,cpu_seconds,na,worst_slack,"
        "negotiate_overflow\n";
  for (const ExperimentRow& r : rows) {
    os << r.circuit << ',' << r.router << ',' << r.nets << ','
       << r.routability << ',' << r.overlayUnits << ',' << r.overlayNm << ','
       << r.conflicts << ',' << r.hardOverlays << ',' << r.cpuSeconds << ','
       << (r.na ? 1 : 0) << ',' << r.worstSlack << ','
       << r.negotiateOverflow << "\n";
  }
}

}  // namespace sadp
