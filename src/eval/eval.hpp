// Evaluation harness: runs the proposed router and the baselines on the
// benchmark suite and formats the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "netlist/benchmark.hpp"
#include "route/router.hpp"

namespace sadp {

class RunContext;

/// One row of Table III / Table IV: a benchmark measured under one router.
struct ExperimentRow {
  std::string circuit;
  std::string router;
  int nets = 0;
  double routability = 0.0;     ///< percent
  std::int64_t overlayUnits = 0;  ///< scenario-model side-overlay units
  std::int64_t overlayNm = 0;     ///< physical side-overlay length
  int conflicts = 0;
  int hardOverlays = 0;
  double cpuSeconds = 0.0;
  bool na = false;  ///< timed out (reported as NA, like the paper)
  std::int64_t worstSlack = 0;        ///< post-route worst slack (timing on)
  std::int64_t negotiateOverflow = 0; ///< final negotiation overflow count
};

/// Runs the proposed overlay-aware router on an instance. Metrics, spans
/// and parallel fan-out go through `ctx` (the calling thread's bound
/// context when null). Every row field except cpuSeconds is deterministic
/// for a given spec, independent of thread count or concurrent runs.
ExperimentRow runProposed(const BenchmarkSpec& spec,
                          RunContext* ctx = nullptr);

/// As above with explicit router options (e.g. timing-driven or negotiated
/// modes); the row's router label gets `label`.
ExperimentRow runProposed(const BenchmarkSpec& spec,
                          const RouterOptions& opts, const std::string& label,
                          RunContext* ctx = nullptr);

/// Runs one baseline on an instance (same context contract as above).
ExperimentRow runBaselineRow(BaselineKind kind, const BenchmarkSpec& spec,
                             double timeoutSeconds = 1e18,
                             RunContext* ctx = nullptr);

/// Renders rows as an aligned text table, grouped by circuit. A final
/// normalized-comparison line (geometric means relative to `reference`)
/// mirrors the paper's "Comp." row.
void printComparisonTable(std::ostream& os,
                          const std::vector<ExperimentRow>& rows,
                          const std::string& reference);

/// Least-squares slope of log(t) vs log(n): the empirical runtime exponent
/// of Fig. 20 (the paper reports ~1.42). Returns nullopt with < 2 points.
std::optional<double> runtimeExponent(const std::vector<ExperimentRow>& rows);

/// Writes rows as CSV (for external plotting).
void writeCsv(std::ostream& os, const std::vector<ExperimentRow>& rows);

}  // namespace sadp
