#include "service/session.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "ocg/scenario.hpp"
#include "sadp/decompose.hpp"
#include "trace/trace.hpp"

namespace sadp {

void SessionMemo::beginRun(const std::vector<std::string>& namesById) {
  const std::size_t n = namesById.size();
  prev_.assign(n, {});
  cursor_.assign(n, 0);
  nextLog_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = store_.find(namesById[i]);
    if (it != store_.end()) prev_[i] = std::move(it->second);
  }
  // Every live net is in namesById, so anything left in the store belongs
  // to removed nets and is dead.
  store_.clear();
  hits_ = 0;
  misses_ = 0;
}

void SessionMemo::endRun(const std::vector<std::string>& namesById) {
  for (std::size_t i = 0; i < namesById.size(); ++i) {
    store_[namesById[i]] = std::move(nextLog_[i]);
  }
  prev_.clear();
  cursor_.clear();
  nextLog_.clear();
}

SearchMemoEntry* SessionMemo::next(NetId net) {
  if (net < 0 || std::size_t(net) >= prev_.size()) return nullptr;
  std::vector<SearchMemoEntry>& log = prev_[std::size_t(net)];
  std::size_t& cur = cursor_[std::size_t(net)];
  if (cur >= log.size()) return nullptr;
  return &log[cur++];
}

void SessionMemo::commit(NetId net, SearchMemoEntry entry) {
  if (net < 0 || std::size_t(net) >= nextLog_.size()) return;
  nextLog_[std::size_t(net)].push_back(std::move(entry));
}

Session::Session(std::string name, BenchmarkSpec spec, MaskCache* cache,
                 RouterOptions router, DecomposeOptions decompose)
    : name_(std::move(name)),
      spec_(std::move(spec)),
      cache_(cache),
      routerOpts_(router),
      decomposeOpts_(decompose) {
  // Aggregate-level spans so every run reports its phase breakdown
  // (session.build / session.route / session.decompose) in the outcome.
  ctx_.setTraceLevel(TraceLevel::Aggregate);
  // The design's initial netlist comes from the deterministic generator;
  // edits mutate nets_ from here on.
  const BenchmarkInstance inst = makeBenchmark(spec_);
  nets_.reserve(inst.netlist.size());
  for (const Net& n : inst.netlist.nets) {
    NetSpec s;
    s.name = n.name;
    s.pins.push_back(n.source);
    s.pins.push_back(n.target);
    for (const Pin& t : n.taps) s.pins.push_back(t);
    nets_.push_back(std::move(s));
  }
}

void Session::setNets(std::vector<NetSpec> nets) {
  nets_ = std::move(nets);
  memo_.clearStored();
  lastBox_.clear();
}

Rect Session::pinBox(const Pin& p) {
  Rect b;
  for (const GridNode& n : p.candidates) {
    b = b.unionWith(Rect{n.x, n.y, n.x + 1, n.y + 1});
  }
  return b;
}

RouteOutcome Session::routeFull() {
  memo_.clearStored();
  return runOnce(/*netsDirty=*/0, Rect{});
}

std::optional<RouteOutcome> Session::applyEdit(const EditRequest& e,
                                               std::string* err) {
  auto setErr = [&](const char* m) {
    if (err != nullptr) *err = m;
    return std::nullopt;
  };
  const auto found =
      std::find_if(nets_.begin(), nets_.end(),
                   [&](const NetSpec& s) { return s.name == e.net; });

  Rect dirty;
  switch (e.kind) {
    case EditRequest::Kind::AddNet: {
      if (found != nets_.end()) return setErr("net name already exists");
      if (e.pins.size() < 2) return setErr("add_net wants >= 2 pins");
      for (const Pin& p : e.pins) {
        if (p.candidates.empty()) return setErr("pin has no candidates");
        dirty = dirty.unionWith(pinBox(p));
      }
      nets_.push_back(NetSpec{e.net, e.pins});
      break;
    }
    case EditRequest::Kind::RemoveNet: {
      if (found == nets_.end()) return setErr("unknown net");
      for (const Pin& p : found->pins) dirty = dirty.unionWith(pinBox(p));
      const auto box = lastBox_.find(e.net);
      if (box != lastBox_.end()) dirty = dirty.unionWith(box->second);
      nets_.erase(found);
      lastBox_.erase(e.net);
      break;
    }
    case EditRequest::Kind::MovePin: {
      if (found == nets_.end()) return setErr("unknown net");
      if (e.pinIndex < 0 || std::size_t(e.pinIndex) >= found->pins.size()) {
        return setErr("pin index out of range");
      }
      if (e.pins.size() != 1 || e.pins.front().candidates.empty()) {
        return setErr("move_pin wants exactly one replacement pin");
      }
      dirty = dirty.unionWith(pinBox(found->pins[std::size_t(e.pinIndex)]));
      dirty = dirty.unionWith(pinBox(e.pins.front()));
      // The whole old route is freed (and may be re-taken differently), so
      // any net that saw those cells must re-verify -- its footprint check
      // would fail anyway; pre-dropping just skips doomed verification.
      const auto box = lastBox_.find(e.net);
      if (box != lastBox_.end()) dirty = dirty.unionWith(box->second);
      found->pins[std::size_t(e.pinIndex)] = e.pins.front();
      break;
    }
  }

  // Dirty region (paper Thm 1): geometry farther than the independence
  // radius cannot change scenario relations with the edit; the cut-check
  // window is added because the windowed decompose reads that much more.
  const DesignRules rules{};  // the generator's rules (benchmark.cpp)
  const Track radius =
      independenceRadiusTracks(rules) + routerOpts_.cutCheckWindowTracks;
  const Rect infl = dirty.inflated(radius);
  int dropped = 0;
  if (memo_.hasStored(e.net)) {
    memo_.dropStored(e.net);
    ++dropped;
  }
  for (const auto& [name, box] : lastBox_) {
    if (name != e.net && box.overlaps(infl) && memo_.hasStored(name)) {
      memo_.dropStored(name);
      ++dropped;
    }
  }
  return runOnce(dropped, dirty, /*incremental=*/true);
}

RouteOutcome Session::runOnce(int netsDirty, const Rect& dirtyTr,
                              bool incremental) {
  const auto t0 = std::chrono::steady_clock::now();
  // Safe between runs: the previous router (and its OCG graph-arena
  // allocations) died at the end of the previous runOnce.
  ctx_.resetForRun();
  RunContext::Scope bind(ctx_);

  // Rebuild the routing problem exactly as a cold route would see it: the
  // generator's grid (blockages are part of the design) plus the edited
  // netlist with ids re-numbered as list positions.
  BenchmarkInstance inst = [&] {
    SADP_SPAN("session.build");
    return makeBenchmark(spec_);
  }();
  RoutingGrid grid = std::move(inst.grid);
  Netlist nl;
  std::vector<std::string> names;
  names.reserve(nets_.size());
  for (const NetSpec& s : nets_) {
    nl.addMultiPin(s.name, s.pins);
    names.push_back(s.name);
  }

  memo_.beginRun(names);
  RouterOptions ro = routerOpts_;
  ro.memo = &memo_;
  ro.maskCache = cache_;
  if (incremental) {
    // Changed-region fast path: the edit's dirty box is the only a-priori
    // changed state; stale extents of nets that diverge during the replay
    // are added by the router itself, looked up here from the previous
    // run's pin+path boxes under the renumbered ids.
    ro.trustChangedRegions = true;
    if (!dirtyTr.empty()) ro.changedSeed.push_back(dirtyTr);
    ro.prevNetBoxes.reserve(nets_.size());
    for (const NetSpec& s : nets_) {
      const auto it = lastBox_.find(s.name);
      ro.prevNetBoxes.push_back(it == lastBox_.end() ? Rect{} : it->second);
    }
  }
  DecomposeOptions dopts = decomposeOpts_;
  dopts.ctx = &ctx_;
  dopts.cache = cache_;

  const MaskCacheStats cs0 = cache_ ? cache_->stats() : MaskCacheStats{};

  RouteOutcome out;
  {
    OverlayAwareRouter router(grid, nl, ro, &ctx_);
    {
      SADP_SPAN("session.route");
      out.stats = router.run();
    }
    out.verifySkips = router.verifySkips();
    out.waveSpecHits = router.waveSpecHits();
    out.waveSpecMisses = router.waveSpecMisses();
    // Sign-off: per-layer decomposition in layer order (the parallel
    // physicalReport reduces in the same order; totals are identical).
    {
      SADP_SPAN("session.decompose");
      if (fpMemo_.size() > 64) fpMemo_.clear();
      for (int layer = 0; layer < grid.layers(); ++layer) {
        const auto d = router.decomposeShared(layer, dopts);
        out.report += d->report;
        std::uint64_t fp = 0;
        if (const auto it = fpMemo_.find(d.get()); it != fpMemo_.end()) {
          fp = it->second.second;
        } else {
          fp = maskFingerprint(*d);
          // Cold sessions (no cache) make a fresh plane every run; the
          // memo would only pin dead memory there.
          if (cache_ != nullptr) fpMemo_.emplace(d.get(), std::pair{d, fp});
        }
        out.layerMaskFp.push_back(fp);
      }
    }
    // Refresh the per-net boxes for the next edit's dirty test.
    lastBox_.clear();
    for (const Net& n : nl.nets) {
      Rect b = pinBox(n.source).unionWith(pinBox(n.target));
      for (const Pin& t : n.taps) b = b.unionWith(pinBox(t));
      for (const GridNode& g : router.netStates()[std::size_t(n.id)].path) {
        b = b.unionWith(Rect{g.x, g.y, g.x + 1, g.y + 1});
      }
      lastBox_[n.name] = b;
    }
  }  // router (and its engine / OCG state) dies before the next reset
  memo_.endRun(names);

  std::uint64_t fp = 0xcbf29ce484222325ull;
  for (const std::uint64_t layerFp : out.layerMaskFp) {
    for (int i = 0; i < 8; ++i) {
      fp ^= (layerFp >> (8 * i)) & 0xffu;
      fp *= 0x100000001b3ull;
    }
  }
  out.designFp = fp;

  std::ostringstream row;  // must match sadp_route_cli's --csv row
  row << out.stats.totalNets << ',' << out.stats.routability() << ','
      << out.report.sideOverlayNm << ',' << out.report.cutConflicts() << ','
      << out.report.hardOverlays << ',' << ctx_.threadCount();
  if (out.stats.timingValid) {
    row << ',' << out.stats.worstSlack << ',' << out.stats.negotiateIters
        << ',' << out.stats.negotiateOverflow;
  }
  out.csvRow = row.str();

  out.searches = memo_.misses();
  out.memoHits = memo_.hits();
  if (cache_ != nullptr) {
    const MaskCacheStats cs1 = cache_->stats();
    out.cacheHits = cs1.hits - cs0.hits;
    out.cacheMisses = cs1.misses - cs0.misses;
  }
  out.netsDirty = netsDirty;
  out.dirtyTr = dirtyTr;
  out.phases = spanAggregates();  // reads the bound session context
  out.exitCode =
      out.report.cutConflicts() == 0 && out.report.hardOverlays == 0 ? 0 : 3;
  out.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  last_ = out;
  routedOnce_ = true;
  return out;
}

}  // namespace sadp
