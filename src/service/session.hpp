// A resident routed design inside the routing service (DESIGN.md §5.11).
//
// ECO model: deterministic replay with verified memoization. An edit does
// not surgically patch router state -- it re-runs the whole canonical
// routing pipeline (net ordering, rip-up loop, pseudo-coloring, color
// flips, cut checks, repair) over the edited netlist, exactly as a cold
// route would. The speed comes from two caches along the way:
//
//   - RouteMemo (route/route_memo.hpp): every A* search of the previous
//     run was recorded with its full read footprint; a replayed search
//     whose key and footprint verify against current state returns the
//     recorded result without searching. The edit's dirty region --
//     geometry within the Theorem 1 independence distance of the change,
//     inflated by the cut-check window -- pre-drops the recorded logs of
//     intersecting nets (they will re-search anyway), so in effect only
//     nets touching the dirty region are ripped up and re-routed.
//   - MaskCache (sadp/mask_cache.hpp): every decomposeLayer call (cut
//     checks, repair probes, sign-off) is keyed by content fingerprint;
//     windows and layers whose fragments did not change are cache hits.
//
// Because replay re-executes ALL control flow and only skips searches
// proven unobservable, an ECO outcome is byte-identical to a cold route
// of the edited design -- stats, overlay report, CSV row, and per-layer
// mask fingerprints. The fuzz suite (tests/test_service_fuzz.cpp) holds
// this bar over seeded random edit sequences.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/benchmark.hpp"
#include "route/route_memo.hpp"
#include "route/router.hpp"
#include "run/run_context.hpp"
#include "sadp/mask_cache.hpp"
#include "trace/trace.hpp"

namespace sadp {

/// One net of the session's editable design: an ordered pin list (first =
/// source, second = target, rest taps), keyed by a stable name. Net ids
/// are rebuilt as list indices on every run, so the name is the identity
/// that survives removals.
struct NetSpec {
  std::string name;
  std::vector<Pin> pins;  ///< size >= 2
};

struct EditRequest {
  enum class Kind { AddNet, RemoveNet, MovePin };
  Kind kind = Kind::MovePin;
  std::string net;            ///< target net name
  int pinIndex = -1;          ///< MovePin: which pin to replace
  std::vector<Pin> pins;      ///< AddNet: the full pin list;
                              ///< MovePin: exactly one replacement pin
};

/// Everything one run (cold or ECO replay) reports back.
struct RouteOutcome {
  RoutingStats stats;
  OverlayReport report;
  std::vector<std::uint64_t> layerMaskFp;  ///< maskFingerprint per layer
  std::uint64_t designFp = 0;              ///< fold of layerMaskFp
  std::string csvRow;   ///< sadp_route_cli --csv row (no trailing newline)
  std::int64_t searches = 0;  ///< real A* searches executed
  std::int64_t memoHits = 0;  ///< searches replayed from verified memos
  /// Hits accepted via the changed-region fast path (no per-cell walk).
  std::int64_t verifySkips = 0;
  /// Speculative wave searches committed / discarded (0/0 unless the
  /// session's RouterOptions::routeJobs > 1). Observability only: the
  /// routed output is byte-identical to serial either way.
  std::int64_t waveSpecHits = 0;
  std::int64_t waveSpecMisses = 0;
  std::int64_t cacheHits = 0;    ///< MaskCache hits during this run
  std::int64_t cacheMisses = 0;  ///< MaskCache misses during this run
  int netsDirty = 0;  ///< memo logs dropped by the edit's dirty region
  Rect dirtyTr;       ///< track-space dirty box of the edit (empty = cold)
  std::vector<SpanAggregate> phases;  ///< this run's session.* span totals
  double wallMs = 0.0;
  int exitCode = 0;   ///< 0 clean; 3 = conflicts / hard overlays remain
};

/// Per-net search logs of the previous run, keyed by net name across runs
/// and re-indexed by NetId for the duration of one run (ids are list
/// positions and shift on removals; names do not).
class SessionMemo final : public RouteMemo {
 public:
  /// Pulls each net's stored log into the id-indexed replay table.
  void beginRun(const std::vector<std::string>& namesById);
  /// Moves this run's committed logs back into the name-keyed store.
  void endRun(const std::vector<std::string>& namesById);
  void dropStored(const std::string& name) { store_.erase(name); }
  bool hasStored(const std::string& name) const {
    return store_.count(name) != 0;
  }
  void clearStored() { store_.clear(); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }

  SearchMemoEntry* next(NetId net) override;
  void commit(NetId net, SearchMemoEntry entry) override;
  void countHit() override { ++hits_; }
  void countMiss() override { ++misses_; }

 private:
  std::unordered_map<std::string, std::vector<SearchMemoEntry>> store_;
  std::vector<std::vector<SearchMemoEntry>> prev_;   // by current NetId
  std::vector<std::size_t> cursor_;                  // by current NetId
  std::vector<std::vector<SearchMemoEntry>> nextLog_;  // by current NetId
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

class Session {
 public:
  /// `cache` may be null (no mask caching) and is shared server-wide.
  Session(std::string name, BenchmarkSpec spec, MaskCache* cache,
          RouterOptions router = {}, DecomposeOptions decompose = {});

  const std::string& name() const { return name_; }
  const BenchmarkSpec& spec() const { return spec_; }
  int netCount() const { return int(nets_.size()); }
  std::vector<NetSpec> netSpecs() const { return nets_; }
  /// Replaces the design's netlist (the next run routes it cold-style:
  /// the memo store is cleared).
  void setNets(std::vector<NetSpec> nets);
  void setThreads(int n) { ctx_.setThreadCount(n); }

  /// Full route with an empty memo store; records logs for later edits.
  RouteOutcome routeFull();
  /// Applies one edit and replays incrementally. On a malformed edit
  /// (unknown net, duplicate name, bad pin index) returns nullopt with a
  /// reason in *err and leaves the design unchanged.
  std::optional<RouteOutcome> applyEdit(const EditRequest& e,
                                        std::string* err);
  /// Last completed run's outcome (valid after routeFull).
  const RouteOutcome& lastOutcome() const { return last_; }
  bool routedOnce() const { return routedOnce_; }

  /// The server serializes all work on one session through this.
  std::mutex& mutex() { return mu_; }
  RunContext& ctx() { return ctx_; }

 private:
  /// `incremental` arms the router's changed-region fast path: dirtyTr
  /// plus the previous run's per-net extents bound everything the edit
  /// could have touched, so clean replayed searches skip verification.
  RouteOutcome runOnce(int netsDirty, const Rect& dirtyTr,
                       bool incremental = false);
  /// Track bbox of a pin's candidates.
  static Rect pinBox(const Pin& p);

  std::string name_;
  BenchmarkSpec spec_;
  MaskCache* cache_;
  RouterOptions routerOpts_;
  DecomposeOptions decomposeOpts_;
  RunContext ctx_;
  SessionMemo memo_;
  std::vector<NetSpec> nets_;
  /// Per-net track bbox of the last run's route + pins (dirty-region
  /// intersection test).
  std::unordered_map<std::string, Rect> lastBox_;
  /// maskFingerprint memo keyed by plane identity: warm sign-off gets the
  /// same resident MaskCache object back edit after edit, so re-hashing
  /// its megabytes of planes is pure waste. The value pins the owner, so
  /// an address can never be reused while its entry exists (pure function
  /// of an immutable object => the memoized value is exact, not
  /// probabilistic). Bounded; cleared wholesale when it outgrows the
  /// working set.
  std::unordered_map<const LayerDecomposition*,
                     std::pair<std::shared_ptr<const LayerDecomposition>,
                               std::uint64_t>>
      fpMemo_;
  RouteOutcome last_;
  bool routedOnce_ = false;
  std::mutex mu_;
};

}  // namespace sadp
