#include "service/server.hpp"

#include "patterning/backend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sadp {

namespace {

using Clock = std::chrono::steady_clock;

/// Self-pipe write end for the async-signal-safe stop request.
std::atomic<int> g_stopFd{-1};

void onStopSignal(int) {
  const int fd = g_stopFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t r = ::write(fd, &b, 1);
  }
}

constexpr std::size_t kMaxRequestLine = 4u << 20;  // 4 MiB

JsonValue baseResp(const JsonValue* req, bool ok) {
  JsonValue r{JsonValue::Object{}};
  r.set("ok", ok);
  if (req != nullptr) {
    if (const JsonValue* op = req->find("op"); op && op->isString()) {
      r.set("op", *op);
    }
    if (const JsonValue* id = req->find("id")) r.set("id", *id);
  }
  return r;
}

JsonValue errResp(const JsonValue* req, const char* code,
                  const std::string& message) {
  JsonValue r = baseResp(req, false);
  JsonValue e{JsonValue::Object{}};
  e.set("code", code);
  e.set("message", message);
  r.set("error", std::move(e));
  return r;
}

/// [x,y,layer] with all three in the spec's grid.
bool parseNode(const JsonValue& v, const BenchmarkSpec& spec, GridNode* out,
               std::string* err) {
  if (!v.isArray() || v.asArray().size() != 3 || !v.asArray()[0].isInt() ||
      !v.asArray()[1].isInt() || !v.asArray()[2].isInt()) {
    *err = "pin candidate must be [x,y,layer] integers";
    return false;
  }
  const std::int64_t x = v.asArray()[0].asInt();
  const std::int64_t y = v.asArray()[1].asInt();
  const std::int64_t l = v.asArray()[2].asInt();
  if (x < 0 || x >= spec.width || y < 0 || y >= spec.height || l < 0 ||
      l >= spec.layers) {
    *err = "pin candidate out of grid bounds";
    return false;
  }
  out->x = Track(x);
  out->y = Track(y);
  out->layer = std::int16_t(l);
  return true;
}

/// A pin is [x,y,layer] (single candidate) or [[x,y,layer], ...].
bool parsePin(const JsonValue& v, const BenchmarkSpec& spec, Pin* out,
              std::string* err) {
  if (!v.isArray() || v.asArray().empty()) {
    *err = "pin must be a non-empty array";
    return false;
  }
  out->candidates.clear();
  if (v.asArray()[0].isInt()) {
    GridNode n;
    if (!parseNode(v, spec, &n, err)) return false;
    out->candidates.push_back(n);
    return true;
  }
  for (const JsonValue& c : v.asArray()) {
    GridNode n;
    if (!parseNode(c, spec, &n, err)) return false;
    out->candidates.push_back(n);
  }
  return true;
}

void addOutcome(JsonValue& r, const RouteOutcome& o) {
  r.set("exit_code", o.exitCode);
  r.set("total_nets", o.stats.totalNets);
  r.set("routed_nets", o.stats.routedNets);
  r.set("routability", o.stats.routability());
  r.set("side_overlay_nm", o.report.sideOverlayNm);
  r.set("cut_conflicts", o.report.cutConflicts());
  r.set("hard_overlays", o.report.hardOverlays);
  r.set("csv", o.csvRow);
  r.set("design_fp", o.designFp);
  JsonValue::Array fps;
  for (const std::uint64_t f : o.layerMaskFp) fps.emplace_back(f);
  r.set("layer_fp", std::move(fps));
  r.set("searches", o.searches);
  r.set("memo_hits", o.memoHits);
  r.set("verify_skips", o.verifySkips);
  r.set("wave_spec_hits", o.waveSpecHits);
  r.set("wave_spec_misses", o.waveSpecMisses);
  r.set("cache_hits", o.cacheHits);
  r.set("cache_misses", o.cacheMisses);
  r.set("nets_dirty", o.netsDirty);
  if (o.stats.timingValid) {
    r.set("worst_slack", o.stats.worstSlack);
    r.set("negotiate_iters", o.stats.negotiateIters);
    r.set("negotiate_overflow", o.stats.negotiateOverflow);
  }
  JsonValue phases{JsonValue::Object{}};
  for (const SpanAggregate& s : o.phases) {
    phases.set(s.name, double(s.wallNs) / 1e6);
  }
  r.set("phase_ms", std::move(phases));
  r.set("wall_ms", o.wallMs);
}

std::optional<std::int64_t> intField(const JsonValue& req,
                                     std::string_view key) {
  const JsonValue* v = req.find(key);
  if (v == nullptr || !v->isInt()) return std::nullopt;
  return v->asInt();
}

}  // namespace

struct RouteServer::Conn {
  int fd = -1;
  std::mutex wmu;
  std::atomic<bool> closed{false};
  std::thread reader;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  void writeLine(const std::string& s) {
    std::lock_guard<std::mutex> lk(wmu);
    if (closed.load(std::memory_order_relaxed)) return;
    std::string line = s;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        closed.store(true, std::memory_order_relaxed);
        return;
      }
      off += std::size_t(n);
    }
  }
};

struct RouteServer::Task {
  std::shared_ptr<Conn> conn;
  JsonValue req;
  Clock::time_point deadline;
};

RouteServer::RouteServer(ServerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheBytes) {
  // Per-request spans aggregate into this context's sink; Aggregate level
  // keeps them visible through `stats` and --metrics without event buffers.
  ctx_.setTraceLevel(TraceLevel::Aggregate);
}

RouteServer::~RouteServer() {
  for (const int fd : {unixFd_, tcpFd_, selfPipe_[0], selfPipe_[1]}) {
    if (fd >= 0) ::close(fd);
  }
}

void RouteServer::requestStop() { onStopSignal(0); }

bool RouteServer::openListeners() {
  if (!opts_.socketPath.empty()) {
    sockaddr_un addr{};
    if (opts_.socketPath.size() >= sizeof addr.sun_path) {
      std::fprintf(stderr, "sadp_route_serve: socket path too long\n");
      return false;
    }
    unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unixFd_ < 0) return false;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);
    ::unlink(opts_.socketPath.c_str());
    if (::bind(unixFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(unixFd_, 64) != 0) {
      std::fprintf(stderr, "sadp_route_serve: unix bind %s: %s\n",
                   opts_.socketPath.c_str(), std::strerror(errno));
      return false;
    }
    std::printf("listening unix %s\n", opts_.socketPath.c_str());
    std::fflush(stdout);
  }
  if (opts_.port >= 0) {
    tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcpFd_ < 0) return false;
    const int one = 1;
    ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(std::uint16_t(opts_.port));
    if (::bind(tcpFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(tcpFd_, 64) != 0) {
      std::fprintf(stderr, "sadp_route_serve: tcp bind %d: %s\n", opts_.port,
                   std::strerror(errno));
      return false;
    }
    socklen_t len = sizeof addr;
    ::getsockname(tcpFd_, reinterpret_cast<sockaddr*>(&addr), &len);
    boundPort_ = int(ntohs(addr.sin_port));
    std::printf("listening tcp %d\n", boundPort_);
    std::fflush(stdout);
  }
  if (unixFd_ < 0 && tcpFd_ < 0) {
    std::fprintf(stderr, "sadp_route_serve: no listener configured\n");
    return false;
  }
  return true;
}

int RouteServer::serve() {
  if (::pipe(selfPipe_) != 0) return 1;
  g_stopFd.store(selfPipe_[1], std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = onStopSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  if (!openListeners()) return 1;

  workers_.reserve(std::size_t(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }

  for (;;) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {selfPipe_[0], POLLIN, 0};
    if (unixFd_ >= 0) fds[n++] = {unixFd_, POLLIN, 0};
    if (tcpFd_ >= 0) fds[n++] = {tcpFd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // stop requested
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      auto conn = std::make_shared<Conn>();
      conn->fd = cfd;
      {
        std::lock_guard<std::mutex> lk(connsMu_);
        conns_.push_back(conn);
      }
      ctx_.metrics().counter("service.connections").add(1);
      conn->reader = std::thread([this, conn] { readerLoop(conn); });
    }
  }

  // Graceful drain: no new requests (submit() rejects once stopping_ is
  // set), workers finish everything already queued, then readers unblock.
  {
    std::lock_guard<std::mutex> lk(queueMu_);
    stopping_.store(true, std::memory_order_relaxed);
  }
  queueCv_.notify_all();
  if (unixFd_ >= 0) {
    ::close(unixFd_);
    unixFd_ = -1;
  }
  if (tcpFd_ >= 0) {
    ::close(tcpFd_);
    tcpFd_ = -1;
  }
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lk(connsMu_);
    for (const auto& c : conns_) {
      c->closed.store(true, std::memory_order_relaxed);
      ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  for (const auto& c : conns_) {
    if (c->reader.joinable()) c->reader.join();
  }
  g_stopFd.store(-1, std::memory_order_relaxed);
  if (!opts_.socketPath.empty()) ::unlink(opts_.socketPath.c_str());

  if (!opts_.metricsPath.empty()) {
    std::ofstream os(opts_.metricsPath);
    RunContext::Scope bind(ctx_);
    writeMetricsJson(os, ctx_.metrics(), spanAggregates());
  }
  return 0;
}

void RouteServer::readerLoop(std::shared_ptr<Conn> conn) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, std::size_t(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      std::string perr;
      std::optional<JsonValue> req = parseJson(line, &perr);
      if (!req) {
        ctx_.metrics().counter("service.errors").add(1);
        conn->writeLine(writeJson(errResp(nullptr, "parse_error", perr)));
        continue;
      }
      if (!req->isObject()) {
        ctx_.metrics().counter("service.errors").add(1);
        conn->writeLine(writeJson(
            errResp(&*req, "bad_request", "request must be a JSON object")));
        continue;
      }
      const JsonValue* op = req->find("op");
      if (op == nullptr || !op->isString()) {
        ctx_.metrics().counter("service.errors").add(1);
        conn->writeLine(writeJson(
            errResp(&*req, "bad_request", "missing string field 'op'")));
        continue;
      }
      submit(conn, std::move(*req));
    }
    if (buf.size() > kMaxRequestLine) {
      conn->writeLine(
          writeJson(errResp(nullptr, "parse_error", "request line too long")));
      break;
    }
  }
  conn->closed.store(true, std::memory_order_relaxed);
}

void RouteServer::submit(std::shared_ptr<Conn> conn, JsonValue req) {
  std::int64_t timeoutMs = opts_.requestTimeoutMs;
  if (const JsonValue* t = req.find("timeout_ms")) {
    if (!t->isInt() || t->asInt() < 0) {
      ctx_.metrics().counter("service.errors").add(1);
      conn->writeLine(writeJson(
          errResp(&req, "bad_request", "timeout_ms must be an integer >= 0")));
      return;
    }
    timeoutMs = t->asInt();
  }
  Task t;
  t.conn = std::move(conn);
  t.deadline = Clock::now() + std::chrono::milliseconds(timeoutMs);
  t.req = std::move(req);
  {
    std::lock_guard<std::mutex> lk(queueMu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ctx_.metrics().counter("service.errors").add(1);
      t.conn->writeLine(writeJson(
          errResp(&t.req, "shutting_down", "server is draining")));
      return;
    }
    if (int(queue_.size()) >= opts_.queueDepth) {
      // Backpressure: never block the reader; the client sees the bound.
      ctx_.metrics().counter("service.queue_rejects").add(1);
      ctx_.metrics().counter("service.errors").add(1);
      t.conn->writeLine(writeJson(
          errResp(&t.req, "queue_full", "task queue is at capacity")));
      return;
    }
    queue_.push_back(std::move(t));
    const int depth = int(queue_.size());
    int peak = queuePeak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !queuePeak_.compare_exchange_weak(peak, depth,
                                             std::memory_order_relaxed)) {
    }
    ctx_.metrics().counter("service.requests").add(1);
  }
  queueCv_.notify_one();
}

void RouteServer::workerLoop() {
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> lk(queueMu_);
      queueCv_.wait(lk, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_relaxed);
      });
      if (queue_.empty()) return;  // stopping_ and fully drained
      t = std::move(queue_.front());
      queue_.pop_front();
    }
    handle(t);
  }
}

void RouteServer::handle(Task& t) {
  RunContext::Scope bind(ctx_);
  SADP_SPAN("service.request");
  const JsonValue& req = t.req;
  const std::string& op = req.find("op")->asString();

  // A task that waited past its deadline answers a timeout error instead
  // of routing (timeout_ms:0 deterministically exercises this path).
  if (Clock::now() >= t.deadline && op != "shutdown") {
    ctx_.metrics().counter("service.timeouts").add(1);
    ctx_.metrics().counter("service.errors").add(1);
    t.conn->writeLine(writeJson(
        errResp(&req, "timeout", "request exceeded its queue deadline")));
    return;
  }

  std::string errCode;
  JsonValue resp;
  if (op == "load") {
    resp = handleLoad(req, &errCode);
  } else if (op == "route") {
    resp = handleRoute(req, &errCode);
  } else if (op == "edit") {
    resp = handleEdit(req, &errCode);
  } else if (op == "query") {
    resp = handleQuery(req, &errCode);
  } else if (op == "stats") {
    resp = handleStats(req, &errCode);
  } else if (op == "shutdown") {
    resp = baseResp(&req, true);
    t.conn->writeLine(writeJson(resp));
    requestStop();
    return;
  } else {
    errCode = "unknown_op";
    resp = errResp(&req, "unknown_op", "unsupported op: " + op);
  }
  if (!errCode.empty()) ctx_.metrics().counter("service.errors").add(1);
  t.conn->writeLine(writeJson(resp));
}

std::shared_ptr<Session> RouteServer::findSession(const JsonValue& req,
                                                  std::string* errCode,
                                                  std::string* errMsg) {
  const JsonValue* s = req.find("session");
  if (s == nullptr || !s->isString() || s->asString().empty()) {
    *errCode = "bad_request";
    *errMsg = "missing string field 'session'";
    return nullptr;
  }
  std::lock_guard<std::mutex> lk(sessionsMu_);
  const auto it = sessions_.find(s->asString());
  if (it == sessions_.end()) {
    *errCode = "unknown_session";
    *errMsg = "no such session: " + s->asString();
    return nullptr;
  }
  return it->second;
}

void RouteServer::bumpCacheCounters() {
  const MaskCacheStats now = cache_.stats();
  std::lock_guard<std::mutex> lk(cacheSeenMu_);
  ctx_.metrics().counter("service.cache_hit").add(now.hits -
                                                  cacheSeen_.hits);
  ctx_.metrics().counter("service.cache_miss").add(now.misses -
                                                   cacheSeen_.misses);
  ctx_.metrics().counter("service.cache_evict").add(now.evictions -
                                                    cacheSeen_.evictions);
  cacheSeen_ = now;
}

JsonValue RouteServer::handleLoad(const JsonValue& req,
                                  std::string* errCode) {
  SADP_SPAN("service.load");
  const JsonValue* s = req.find("session");
  if (s == nullptr || !s->isString() || s->asString().empty()) {
    *errCode = "bad_request";
    return errResp(&req, "bad_request", "missing string field 'session'");
  }
  const std::string& name = s->asString();

  BenchmarkSpec spec;
  if (const JsonValue* b = req.find("benchmark"); b && b->isString()) {
    try {
      spec = paperBenchmark(b->asString());
    } catch (const std::invalid_argument& e) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request", e.what());
    }
    if (const JsonValue* f = req.find("scale"); f && f->isNumber()) {
      const double scale = f->asDouble();
      if (!(scale > 0.0) || scale > 1.0) {
        *errCode = "bad_request";
        return errResp(&req, "bad_request", "scale must be in (0, 1]");
      }
      spec = spec.scaled(scale);
    }
  } else {
    const auto nets = intField(req, "nets");
    const auto width = intField(req, "width");
    const auto height = intField(req, "height");
    if (!nets || !width || !height || *nets < 1 || *width < 8 ||
        *height < 8) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request",
                     "load wants 'benchmark' or nets/width/height >= 1/8/8");
    }
    spec.name = name;
    spec.netCount = int(*nets);
    spec.width = Track(*width);
    spec.height = Track(*height);
    if (const auto v = intField(req, "layers"); v && *v >= 1 && *v <= 16) {
      spec.layers = int(*v);
    }
    if (const auto v = intField(req, "seed")) spec.seed = std::uint64_t(*v);
    if (const auto v = intField(req, "pin_candidates"); v && *v >= 1) {
      spec.pinCandidates = int(*v);
    }
  }

  // {"cache":false} opts the session out of the shared MaskCache -- the
  // behaviour of a standalone cold route, used as the honest baseline by
  // the bench client's warm-vs-cold gate.
  MaskCache* cache = &cache_;
  if (const JsonValue* c = req.find("cache");
      c != nullptr && c->isBool() && !c->asBool()) {
    cache = nullptr;
  }
  // {"route_jobs":N} opts the session into wave-parallel routing (both
  // the initial full route and every ECO replay take the same wave path);
  // results are byte-identical to the serial default by construction.
  RouterOptions routerOpts;
  if (const auto v = intField(req, "route_jobs"); v) {
    if (*v < 1) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request", "route_jobs must be >= 1");
    }
    routerOpts.routeJobs = int(*v);
  }
  // {"backend":"tpl3"} selects the session's patterning backend; absent
  // means sadp2 (byte-identical to the pre-backend service).
  if (const JsonValue* b = req.find("backend"); b != nullptr) {
    const PatterningBackend* backend =
        b->isString() ? findPatterningBackend(b->asString()) : nullptr;
    if (backend == nullptr) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request",
                     std::string("unknown backend (expected one of: ") +
                         patterningBackendNames() + ")");
    }
    routerOpts.backend = backend;
  }
  // {"timing":true} / {"negotiate":true} opt the session into the
  // timing-driven / negotiated-congestion modes (negotiate implies timing,
  // mirroring the CLI). Numeric knobs reject anything but their exact
  // JSON type and range -- a typo'd load must not silently route with
  // default knobs.
  if (const JsonValue* v = req.find("timing"); v != nullptr) {
    if (!v->isBool()) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request", "timing must be a boolean");
    }
    routerOpts.timingDriven = v->asBool();
  }
  if (const JsonValue* v = req.find("negotiate"); v != nullptr) {
    if (!v->isBool()) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request", "negotiate must be a boolean");
    }
    if (v->asBool()) {
      routerOpts.negotiate = true;
      routerOpts.timingDriven = true;
    }
  }
  if (const JsonValue* v = req.find("negotiate_iters"); v != nullptr) {
    if (!v->isInt() || v->asInt() < 1) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request",
                     "negotiate_iters must be an integer >= 1");
    }
    routerOpts.maxNegotiateIters = int(v->asInt());
  }
  if (const JsonValue* v = req.find("history_cost"); v != nullptr) {
    if (!v->isNumber() || !(v->asDouble() >= 0.0)) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request",
                     "history_cost must be a number >= 0");
    }
    routerOpts.historyIncrement = float(v->asDouble());
  }
  auto session = std::make_shared<Session>(name, spec, cache, routerOpts);
  if (const auto v = intField(req, "threads"); v && *v > 0) {
    session->setThreads(int(*v));
  }
  {
    std::lock_guard<std::mutex> lk(sessionsMu_);
    if (sessions_.count(name) != 0) {
      *errCode = "bad_request";
      return errResp(&req, "bad_request", "session already exists: " + name);
    }
    if (int(sessions_.size()) >= opts_.sessionCap) {
      *errCode = "session_cap";
      return errResp(&req, "session_cap",
                     "session cap reached (" +
                         std::to_string(opts_.sessionCap) + ")");
    }
    sessions_.emplace(name, session);
  }
  ctx_.metrics().counter("service.loads").add(1);
  JsonValue r = baseResp(&req, true);
  r.set("session", name);
  r.set("benchmark", session->spec().name);
  r.set("nets", session->netCount());
  r.set("width", std::int64_t(session->spec().width));
  r.set("height", std::int64_t(session->spec().height));
  r.set("layers", session->spec().layers);
  return r;
}

JsonValue RouteServer::handleRoute(const JsonValue& req,
                                   std::string* errCode) {
  SADP_SPAN("service.route");
  std::string msg;
  const std::shared_ptr<Session> session = findSession(req, errCode, &msg);
  if (!session) return errResp(&req, errCode->c_str(), msg);
  RouteOutcome out;
  {
    std::lock_guard<std::mutex> lk(session->mutex());
    out = session->routeFull();
  }
  bumpCacheCounters();
  ctx_.metrics().counter("service.routes").add(1);
  JsonValue r = baseResp(&req, true);
  r.set("session", session->name());
  addOutcome(r, out);
  return r;
}

JsonValue RouteServer::handleEdit(const JsonValue& req,
                                  std::string* errCode) {
  SADP_SPAN("service.edit");
  std::string msg;
  const std::shared_ptr<Session> session = findSession(req, errCode, &msg);
  if (!session) return errResp(&req, errCode->c_str(), msg);

  auto bad = [&](const std::string& m) {
    *errCode = "bad_request";
    return errResp(&req, "bad_request", m);
  };
  const JsonValue* kind = req.find("kind");
  const JsonValue* net = req.find("net");
  if (kind == nullptr || !kind->isString()) {
    return bad("missing string field 'kind'");
  }
  if (net == nullptr || !net->isString() || net->asString().empty()) {
    return bad("missing string field 'net'");
  }
  EditRequest e;
  e.net = net->asString();
  const BenchmarkSpec& spec = session->spec();
  std::string perr;
  if (kind->asString() == "add_net") {
    e.kind = EditRequest::Kind::AddNet;
    const JsonValue* pins = req.find("pins");
    if (pins == nullptr || !pins->isArray() || pins->asArray().size() < 2) {
      return bad("add_net wants 'pins': array of >= 2 pins");
    }
    for (const JsonValue& p : pins->asArray()) {
      Pin pin;
      if (!parsePin(p, spec, &pin, &perr)) return bad(perr);
      e.pins.push_back(std::move(pin));
    }
  } else if (kind->asString() == "remove_net") {
    e.kind = EditRequest::Kind::RemoveNet;
  } else if (kind->asString() == "move_pin") {
    e.kind = EditRequest::Kind::MovePin;
    const auto idx = intField(req, "pin_index");
    const JsonValue* pin = req.find("pin");
    if (!idx || *idx < 0) return bad("move_pin wants 'pin_index' >= 0");
    if (pin == nullptr) return bad("move_pin wants 'pin': [x,y,layer]");
    e.pinIndex = int(*idx);
    Pin p;
    if (!parsePin(*pin, spec, &p, &perr)) return bad(perr);
    e.pins.push_back(std::move(p));
  } else {
    return bad("unknown edit kind: " + kind->asString());
  }

  std::optional<RouteOutcome> out;
  std::string editErr;
  {
    std::lock_guard<std::mutex> lk(session->mutex());
    if (!session->routedOnce()) {
      return bad("route the session before editing");
    }
    out = session->applyEdit(e, &editErr);
  }
  if (!out) return bad(editErr);
  bumpCacheCounters();
  ctx_.metrics().counter("service.edits").add(1);
  JsonValue r = baseResp(&req, true);
  r.set("session", session->name());
  addOutcome(r, *out);
  return r;
}

JsonValue RouteServer::handleQuery(const JsonValue& req,
                                   std::string* errCode) {
  SADP_SPAN("service.query");
  std::string msg;
  const std::shared_ptr<Session> session = findSession(req, errCode, &msg);
  if (!session) return errResp(&req, errCode->c_str(), msg);
  JsonValue r = baseResp(&req, true);
  std::lock_guard<std::mutex> lk(session->mutex());
  r.set("session", session->name());
  r.set("benchmark", session->spec().name);
  r.set("nets", session->netCount());
  r.set("routed", session->routedOnce());
  if (session->routedOnce()) addOutcome(r, session->lastOutcome());
  // Opt-in pin dump so ECO clients can script local edits without
  // replicating the benchmark generator: {"pins":true} adds each net's
  // first candidate per pin as {"name":..., "pins":[[x,y,layer],...]}.
  const JsonValue* wantPins = req.find("pins");
  if (wantPins != nullptr && wantPins->isBool() && wantPins->asBool()) {
    JsonValue::Array nets;
    for (const NetSpec& n : session->netSpecs()) {
      JsonValue entry{JsonValue::Object{}};
      entry.set("name", n.name);
      JsonValue::Array pins;
      for (const Pin& p : n.pins) {
        const GridNode& g = p.candidates.front();
        JsonValue::Array node;
        node.emplace_back(std::int64_t(g.x));
        node.emplace_back(std::int64_t(g.y));
        node.emplace_back(std::int64_t(g.layer));
        pins.emplace_back(std::move(node));
      }
      entry.set("pins", std::move(pins));
      nets.emplace_back(std::move(entry));
    }
    r.set("net_pins", std::move(nets));
  }
  return r;
}

JsonValue RouteServer::handleStats(const JsonValue& req, std::string*) {
  SADP_SPAN("service.stats");
  bumpCacheCounters();
  JsonValue r = baseResp(&req, true);
  {
    std::lock_guard<std::mutex> lk(sessionsMu_);
    r.set("sessions", std::int64_t(sessions_.size()));
  }
  r.set("session_cap", opts_.sessionCap);
  {
    std::lock_guard<std::mutex> lk(queueMu_);
    r.set("queue_depth", std::int64_t(queue_.size()));
  }
  r.set("queue_capacity", opts_.queueDepth);
  r.set("queue_peak", queuePeak_.load(std::memory_order_relaxed));
  r.set("workers", opts_.workers);
  const MaskCacheStats cs = cache_.stats();
  JsonValue cache{JsonValue::Object{}};
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("evictions", cs.evictions);
  cache.set("entries", cs.entries);
  cache.set("bytes", cs.bytes);
  r.set("cache", std::move(cache));
  JsonValue counters{JsonValue::Object{}};
  for (const auto& [name, value] : ctx_.metrics().counterSnapshot()) {
    counters.set(name, value);
  }
  r.set("counters", std::move(counters));
  JsonValue spans{JsonValue::Object{}};
  for (const SpanAggregate& a : spanAggregates()) {
    JsonValue one{JsonValue::Object{}};
    one.set("count", a.count);
    one.set("wall_ns", a.wallNs);
    spans.set(a.name, std::move(one));
  }
  r.set("spans", std::move(spans));
  return r;
}

}  // namespace sadp
