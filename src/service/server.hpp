// Routing-as-a-service daemon (DESIGN.md §5.11): a persistent process
// holding routed designs resident in Session objects, speaking a
// line-delimited JSON protocol over a Unix and/or loopback TCP socket.
//
// Threading model: the serve() thread accepts connections; one reader
// thread per connection parses NDJSON requests and pushes them onto a
// bounded task queue (a full queue rejects the request immediately with a
// structured `queue_full` error -- backpressure never blocks the reader);
// a fixed worker pool pops tasks and executes them. Each task carries a
// queue-wait deadline (server default, per-request `timeout_ms`
// override); a task popped past its deadline answers a `timeout` error
// instead of routing. All work on one session is serialized through the
// session's mutex; distinct sessions route concurrently.
//
// Shutdown: SIGINT/SIGTERM (self-pipe) or the `shutdown` op stop the
// accept loop, drain every queued task, then join readers and exit --
// in-flight work is never dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "run/run_context.hpp"
#include "sadp/mask_cache.hpp"
#include "service/json.hpp"
#include "service/session.hpp"

namespace sadp {

struct ServerOptions {
  std::string socketPath;  ///< empty = no Unix listener
  int port = -1;           ///< -1 = no TCP; 0 = ephemeral (printed)
  int queueDepth = 64;     ///< bounded task queue capacity
  int sessionCap = 8;      ///< max resident sessions
  int workers = 2;         ///< worker threads
  int requestTimeoutMs = 30000;  ///< default queue-wait deadline
  std::size_t cacheBytes = MaskCache::kDefaultMaxBytes;
  std::string metricsPath;  ///< non-empty: write metrics JSON at exit
};

class RouteServer {
 public:
  explicit RouteServer(ServerOptions opts);
  ~RouteServer();
  RouteServer(const RouteServer&) = delete;
  RouteServer& operator=(const RouteServer&) = delete;

  /// Runs the accept/drain loop until shutdown; returns the process exit
  /// code (0 clean, 1 on listener setup failure).
  int serve();
  /// Async-signal-safe stop request (also what the signal handler calls).
  void requestStop();

  RunContext& ctx() { return ctx_; }

 private:
  struct Conn;
  struct Task;

  bool openListeners();
  void readerLoop(std::shared_ptr<Conn> conn);
  void workerLoop();
  /// Enqueues, or replies queue_full / shutting_down immediately.
  void submit(std::shared_ptr<Conn> conn, JsonValue req);
  void handle(Task& t);

  JsonValue handleLoad(const JsonValue& req, std::string* errCode);
  JsonValue handleRoute(const JsonValue& req, std::string* errCode);
  JsonValue handleEdit(const JsonValue& req, std::string* errCode);
  JsonValue handleQuery(const JsonValue& req, std::string* errCode);
  JsonValue handleStats(const JsonValue& req, std::string* errCode);

  std::shared_ptr<Session> findSession(const JsonValue& req,
                                       std::string* errCode,
                                       std::string* errMsg);
  void bumpCacheCounters();

  ServerOptions opts_;
  RunContext ctx_;  ///< service.* counters + request spans
  MaskCache cache_;

  int unixFd_ = -1;
  int tcpFd_ = -1;
  int boundPort_ = -1;
  int selfPipe_[2] = {-1, -1};

  std::mutex queueMu_;
  std::condition_variable queueCv_;
  std::deque<Task> queue_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> queuePeak_{0};

  std::mutex sessionsMu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;

  std::mutex connsMu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  std::vector<std::thread> workers_;
  MaskCacheStats cacheSeen_;  ///< last MaskCache totals folded into the
  std::mutex cacheSeenMu_;    ///< service.cache_* counters
};

}  // namespace sadp
