// Minimal JSON value + parser/serializer for the service's line-delimited
// protocol (DESIGN.md §5.11). Scope is deliberately small: the protocol is
// machine-generated NDJSON, so the parser favors strictness and structured
// errors over leniency. Objects preserve insertion order (responses print
// fields in a stable, documented order); integers that fit int64 parse
// exactly (no double round-trip for fingerprints or coordinates).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace sadp {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(int i) : v_(std::int64_t(i)) {}
  JsonValue(std::int64_t i) : v_(i) {}
  JsonValue(std::uint64_t i) : v_(std::int64_t(i)) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool isBool() const { return std::holds_alternative<bool>(v_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(v_); }
  bool isDouble() const { return std::holds_alternative<double>(v_); }
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return std::holds_alternative<std::string>(v_); }
  bool isArray() const { return std::holds_alternative<Array>(v_); }
  bool isObject() const { return std::holds_alternative<Object>(v_); }

  bool asBool() const { return std::get<bool>(v_); }
  std::int64_t asInt() const {
    return isDouble() ? std::int64_t(std::get<double>(v_))
                      : std::get<std::int64_t>(v_);
  }
  double asDouble() const {
    return isInt() ? double(std::get<std::int64_t>(v_))
                   : std::get<double>(v_);
  }
  const std::string& asString() const { return std::get<std::string>(v_); }
  const Array& asArray() const { return std::get<Array>(v_); }
  const Object& asObject() const { return std::get<Object>(v_); }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (!isObject()) return nullptr;
    for (const auto& [k, v] : asObject()) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Builder: appends a member (caller guarantees this is an object).
  void set(std::string key, JsonValue value) {
    std::get<Object>(v_).emplace_back(std::move(key), std::move(value));
  }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               Array, Object>
      v_;
};

/// Parses one complete JSON document; the whole input must participate
/// (trailing non-whitespace is an error). On failure returns nullopt and,
/// when `err` is non-null, a one-line reason with byte offset.
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string* err = nullptr);

/// Compact single-line serialization (no spaces, keys in stored order).
std::string writeJson(const JsonValue& v);

}  // namespace sadp
