#include "service/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace sadp {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : s_(text), err_(err) {}

  std::optional<JsonValue> run() {
    skipWs();
    JsonValue v;
    if (!parseValue(v, 0)) return std::nullopt;
    skipWs();
    if (pos_ != s_.size()) {
      fail("trailing garbage");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const char* why) {
    if (err_ != nullptr && err_->empty()) {
      *err_ = std::string(why) + " at byte " + std::to_string(pos_);
    }
  }
  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (s_[pos_]) {
      case '{': return parseObject(out, depth);
      case '[': return parseArray(out, depth);
      case '"': {
        std::string str;
        if (!parseString(str)) return false;
        out = JsonValue(std::move(str));
        return true;
      }
      case 't':
        if (literal("true")) {
          out = JsonValue(true);
          return true;
        }
        break;
      case 'f':
        if (literal("false")) {
          out = JsonValue(false);
          return true;
        }
        break;
      case 'n':
        if (literal("null")) {
          out = JsonValue(nullptr);
          return true;
        }
        break;
      default:
        return parseNumber(out);
    }
    fail("invalid value");
    return false;
  }

  bool parseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skipWs();
    if (eat('}')) {
      out = JsonValue(std::move(obj));
      return true;
    }
    for (;;) {
      skipWs();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !parseString(key)) {
        fail("expected object key");
        return false;
      }
      skipWs();
      if (!eat(':')) {
        fail("expected ':'");
        return false;
      }
      skipWs();
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      obj.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (eat(',')) continue;
      if (eat('}')) break;
      fail("expected ',' or '}'");
      return false;
    }
    out = JsonValue(std::move(obj));
    return true;
  }

  bool parseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    JsonValue::Array arr;
    skipWs();
    if (eat(']')) {
      out = JsonValue(std::move(arr));
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      arr.push_back(std::move(v));
      skipWs();
      if (eat(',')) continue;
      if (eat(']')) break;
      fail("expected ',' or ']'");
      return false;
    }
    out = JsonValue(std::move(arr));
    return true;
  }

  bool parseString(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned cp = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = s_[pos_ + std::size_t(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= unsigned(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= unsigned(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= unsigned(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
                return false;
              }
            }
            pos_ += 4;
            // UTF-8 encode (surrogates pass through as-is; the protocol
            // never emits them).
            if (cp < 0x80) {
              out += char(cp);
            } else if (cp < 0x800) {
              out += char(0xc0 | (cp >> 6));
              out += char(0x80 | (cp & 0x3f));
            } else {
              out += char(0xe0 | (cp >> 12));
              out += char(0x80 | ((cp >> 6) & 0x3f));
              out += char(0x80 | (cp & 0x3f));
            }
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
        return false;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      fail("invalid number");
      return false;
    }
    const std::size_t firstDigit = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (s_[firstDigit] == '0' && pos_ - firstDigit > 1) {
      fail("leading zero");
      return false;
    }
    bool isFloat = false;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      isFloat = true;
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("invalid number");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      isFloat = true;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        fail("invalid number");
        return false;
      }
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view tok = s_.substr(start, pos_ - start);
    if (!isFloat) {
      std::int64_t iv = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        out = JsonValue(iv);
        return true;
      }
      // Integer overflow: fall through to double.
    }
    double dv = 0.0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("invalid number");
      return false;
    }
    out = JsonValue(dv);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string* err_;
};

void writeEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", unsigned(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void writeValue(std::string& out, const JsonValue& v) {
  if (v.isNull()) {
    out += "null";
  } else if (v.isBool()) {
    out += v.asBool() ? "true" : "false";
  } else if (v.isInt()) {
    out += std::to_string(v.asInt());
  } else if (v.isDouble()) {
    const double d = v.asDouble();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    } else {
      out += "null";  // JSON has no inf/nan
    }
  } else if (v.isString()) {
    writeEscaped(out, v.asString());
  } else if (v.isArray()) {
    out += '[';
    bool first = true;
    for (const JsonValue& e : v.asArray()) {
      if (!first) out += ',';
      first = false;
      writeValue(out, e);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [k, e] : v.asObject()) {
      if (!first) out += ',';
      first = false;
      writeEscaped(out, k);
      out += ':';
      writeValue(out, e);
    }
    out += '}';
  }
}

}  // namespace

std::optional<JsonValue> parseJson(std::string_view text, std::string* err) {
  if (err != nullptr) err->clear();
  Parser p(text, err);
  auto v = p.run();
  if (!v && err != nullptr && err->empty()) *err = "parse error";
  return v;
}

std::string writeJson(const JsonValue& v) {
  std::string out;
  writeValue(out, v);
  return out;
}

}  // namespace sadp
