#include "sadp/mask_cache.hpp"

namespace sadp {

namespace {

/// Two-lane splitmix64 sponge. Not cryptographic; 128 bits keeps the
/// accidental-collision probability negligible at any plausible cache
/// population, and the honesty test pins what a collision would mean.
struct Digest128 {
  std::uint64_t a = 0x243f6a8885a308d3ull;  // pi
  std::uint64_t b = 0x13198a2e03707344ull;

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }
  void absorb(std::uint64_t v) {
    a = mix(a ^ v);
    b = mix(b + (v ^ 0x9e3779b97f4a7c15ull));
  }
  void absorb(std::int64_t v) { absorb(std::uint64_t(v)); }
  void absorb(std::int32_t v) { absorb(std::uint64_t(std::uint32_t(v))); }
  void absorb(bool v) { absorb(std::uint64_t(v)); }
};

}  // namespace

MaskCacheKey maskCacheKey(std::span<const ColoredFragment> frags,
                          const DesignRules& rules,
                          const DecomposeOptions& opts) {
  Digest128 d;
  d.absorb(std::uint64_t(2));  // key schema version (2: + synth identity)
  // Backend identity. Without this, a cache shared across backends would
  // alias entries: identical fragments/rules/options decompose to entirely
  // different planes under different synthesizers. Null and an explicit
  // SADP backend absorb the same id on purpose — they produce identical
  // planes, so sharing their entries is correct (and the sadp2
  // byte-identity gate depends on the hit/miss sequence not changing).
  d.absorb(opts.synth ? opts.synth->synthId() : kSadpCutSynthId);
  d.absorb(std::uint64_t(frags.size()));
  for (const ColoredFragment& cf : frags) {
    d.absorb(cf.frag.xlo);
    d.absorb(cf.frag.ylo);
    d.absorb(cf.frag.xhi);
    d.absorb(cf.frag.yhi);
    d.absorb(std::int32_t(cf.frag.net));
    d.absorb(std::uint64_t(cf.color));
  }
  d.absorb(rules.wLine);
  d.absorb(rules.wSpacer);
  d.absorb(rules.wCut);
  d.absorb(rules.wCore);
  d.absorb(rules.dCut);
  d.absorb(rules.dCore);
  d.absorb(rules.dOverlap);
  // Output-affecting options only. tileWords / schedule / costHints / ctx
  // are byte-identity-neutral (see header) and deliberately excluded.
  d.absorb(opts.insertAssists);
  d.absorb(opts.mergeCores);
  d.absorb(opts.trimAssists);
  d.absorb(opts.margin);
  return {d.a, d.b};
}

std::size_t MaskCache::approxBytes(const LayerDecomposition& d) {
  std::size_t n = sizeof(LayerDecomposition);
  for (const Bitmap* b :
       {&d.target, &d.coreMask, &d.spacer, &d.cut, &d.assists, &d.bridges}) {
    n += b->words().size() * sizeof(std::uint64_t);
  }
  for (const Bitmap& m : d.masks) {
    n += m.words().size() * sizeof(std::uint64_t);
  }
  n += d.conflictBoxesNm.size() * sizeof(Rect);
  n += d.hardOverlayBoxesNm.size() * sizeof(Rect);
  return n;
}

std::shared_ptr<const LayerDecomposition> MaskCache::lookup(
    const MaskCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  return it->second->value;
}

std::shared_ptr<const LayerDecomposition> MaskCache::insert(
    const MaskCacheKey& key, LayerDecomposition value) {
  auto shared =
      std::make_shared<const LayerDecomposition>(std::move(value));
  const std::size_t bytes = approxBytes(*shared);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent miss on the same key: both workers computed the (byte
    // identical) plane; keep the resident one, just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  lru_.push_front(Entry{key, std::move(shared), bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += bytes;
  evictOverBudgetLocked();
  return lru_.front().value;
}

void MaskCache::evictOverBudgetLocked() {
  while (bytes_ > maxBytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

MaskCacheStats MaskCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  MaskCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = std::int64_t(lru_.size());
  s.bytes = std::int64_t(bytes_);
  return s;
}

void MaskCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace sadp
