#include "sadp/svg.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace sadp {

namespace {

constexpr int kPxNm = 10;

void rect(std::ostream& os, double x, double y, double w, double h,
          const char* fill, double opacity = 1.0) {
  os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
     << "\" height=\"" << h << "\" fill=\"" << fill << "\" fill-opacity=\""
     << opacity << "\"/>\n";
}

/// Emits every set pixel of a bitmap as row-run rectangles.
void emitBitmapRuns(std::ostream& os, const Bitmap& b, double s,
                    const char* fill, double opacity) {
  for (int y = 0; y < b.height(); ++y) {
    int x = 0;
    while (x < b.width()) {
      if (!b.get(x, y)) {
        ++x;
        continue;
      }
      int x2 = x;
      while (x2 < b.width() && b.get(x2, y)) ++x2;
      rect(os, x * s, (b.height() - 1 - y) * s, (x2 - x) * s, s, fill,
           opacity);
      x = x2;
    }
  }
}

}  // namespace

void writeLayerSvg(std::ostream& os, const LayerDecomposition& layer,
                   std::span<const ColoredFragment> frags,
                   const DesignRules& rules, const SvgOptions& opts) {
  const double s = opts.scale;
  const int W = layer.target.width();
  const int H = layer.target.height();
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << W * s
     << "\" height=\"" << H * s << "\" viewBox=\"0 0 " << W * s << " "
     << H * s << "\">\n";
  rect(os, 0, 0, W * s, H * s, "#ffffff");

  if (opts.drawCut) emitBitmapRuns(os, layer.cut, s, "#f2d0d0", 0.5);
  if (opts.drawSpacer) emitBitmapRuns(os, layer.spacer, s, "#c8c8c8", 0.8);
  if (opts.drawCoreMask) {
    // Assist material = core mask minus target metal.
    Bitmap assist = layer.coreMask;
    assist.andNot(layer.target);
    emitBitmapRuns(os, assist, s, "#e0b050", 0.7);
  }

  // Target metal colored by mask assignment.
  for (const ColoredFragment& cf : frags) {
    const Rect m = fragmentMetalNm(cf.frag, rules);
    const double x = double(m.xlo - layer.windowNm.xlo) / kPxNm * s;
    const double yTopPx = double(layer.windowNm.yhi - m.yhi) / kPxNm * s;
    const char* fill = cf.color == Color::Second ? "#3d9943" : "#2b5fad";
    rect(os, x, yTopPx, double(m.width()) / kPxNm * s,
         double(m.height()) / kPxNm * s, fill, 0.95);
  }

  if (opts.drawOverlays) {
    // Overlay highlight: target boundary pixels whose outside is cut.
    const Bitmap& t = layer.target;
    const Bitmap& c = layer.cut;
    for (int y = 0; y < H; ++y) {
      for (int x = 0; x < W; ++x) {
        if (!t.get(x, y)) continue;
        const bool exposed = c.get(x + 1, y) || c.get(x - 1, y) ||
                             c.get(x, y + 1) || c.get(x, y - 1);
        if (exposed) {
          rect(os, x * s, (H - 1 - y) * s, s, s, "#d03030", 0.9);
        }
      }
    }
  }
  os << "</svg>\n";
}

void writeLayerSvgFile(const std::string& path,
                       const LayerDecomposition& layer,
                       std::span<const ColoredFragment> frags,
                       const DesignRules& rules, const SvgOptions& opts) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open SVG output: " + path);
  writeLayerSvg(f, layer, frags, rules, opts);
}

}  // namespace sadp
