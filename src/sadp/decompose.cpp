#include "sadp/decompose.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

OverlayReport& OverlayReport::operator+=(const OverlayReport& o) {
  sideOverlayNm += o.sideOverlayNm;
  sideOverlaySections += o.sideOverlaySections;
  hardOverlays += o.hardOverlays;
  tipOverlays += o.tipOverlays;
  cutWidthConflicts += o.cutWidthConflicts;
  cutSpaceConflicts += o.cutSpaceConflicts;
  spacerOverTargetPx += o.spacerOverTargetPx;
  return *this;
}

Rect fragmentMetalNm(const Fragment& f, const DesignRules& rules) {
  const Nm p = rules.pitch();
  const Nm s = (p - rules.wLine) / 2;
  return Rect{Nm(f.xlo * p + s), Nm(f.ylo * p + s), Nm(f.xhi * p - s),
              Nm(f.yhi * p - s)};
}

namespace {

constexpr int kPxNm = 10;  ///< raster resolution

struct Raster {
  Rect windowNm;
  int w = 0, h = 0;
  int toX(Nm nm) const { return int((nm - windowNm.xlo) / kPxNm); }
  int toY(Nm nm) const { return int((nm - windowNm.ylo) / kPxNm); }
  void fill(Bitmap& b, const Rect& r) const {
    b.fillRect(toX(r.xlo), toY(r.ylo), toX(r.xhi), toY(r.yhi));
  }
  bool anyTarget(const Bitmap& b, const Rect& r) const {
    return b.anyInRect(toX(r.xlo), toY(r.ylo), toX(r.xhi), toY(r.yhi));
  }
};

/// One shape destined for the core mask: real (core-colored) metal or a
/// sacrificial assistant-core strip.
struct CoreShape {
  Rect nm;
  bool assist = false;
};

}  // namespace

std::vector<Rect> rasterToNmRects(const Bitmap& b, const Rect& windowNm) {
  std::vector<Rect> pxRects;
  // Collect row runs, then merge vertically identical stacks. Open runs
  // are keyed by their (x0,x1) span -- spans are unique within a row -- so
  // each row matches in O(runs) instead of O(runs^2).
  struct Run {
    int x0, x1, y0, y1;
  };
  auto spanKey = [](int x0, int x1) {
    return (std::uint64_t(std::uint32_t(x0)) << 32) | std::uint32_t(x1);
  };
  std::vector<Run> open;
  std::unordered_map<std::uint64_t, std::size_t> openIdx;
  std::vector<std::pair<int, int>> runs;
  for (int y = 0; y <= b.height(); ++y) {
    runs.clear();
    if (y < b.height()) rowRuns(b, y, runs);
    std::vector<Run> next;
    next.reserve(runs.size());
    for (auto& [x0, x1] : runs) {
      const auto it = openIdx.find(spanKey(x0, x1));
      if (it != openIdx.end()) {
        Run& r = open[it->second];
        r.y1 = y + 1;
        next.push_back(r);
        r.y1 = -1;  // consumed
      } else {
        next.push_back({x0, x1, y, y + 1});
      }
    }
    for (const Run& r : open) {
      if (r.y1 >= 0) {
        pxRects.push_back(Rect{r.x0, r.y0, r.x1, r.y1});
      }
    }
    open = std::move(next);
    openIdx.clear();
    for (std::size_t i = 0; i < open.size(); ++i) {
      openIdx.emplace(spanKey(open[i].x0, open[i].x1), i);
    }
  }
  std::vector<Rect> out;
  out.reserve(pxRects.size());
  for (const Rect& p : pxRects) {
    out.push_back(Rect{Nm(windowNm.xlo + p.xlo * kPxNm),
                       Nm(windowNm.ylo + p.ylo * kPxNm),
                       Nm(windowNm.xlo + p.xhi * kPxNm),
                       Nm(windowNm.ylo + p.yhi * kPxNm)});
  }
  return out;
}

namespace {

/// Axis-gap box between two rects (their "merge bridge" region).
Rect bridgeBox(const Rect& a, const Rect& b) {
  const Nm bx0 = (a.xhi <= b.xlo)   ? a.xhi
                 : (b.xhi <= a.xlo) ? b.xhi
                                    : std::max(a.xlo, b.xlo);
  const Nm bx1 = (a.xhi <= b.xlo)   ? b.xlo
                 : (b.xhi <= a.xlo) ? a.xlo
                                    : std::min(a.xhi, b.xhi);
  const Nm by0 = (a.yhi <= b.ylo)   ? a.yhi
                 : (b.yhi <= a.ylo) ? b.yhi
                                    : std::max(a.ylo, b.ylo);
  const Nm by1 = (a.yhi <= b.ylo)   ? b.ylo
                 : (b.yhi <= a.ylo) ? a.ylo
                                    : std::min(a.yhi, b.yhi);
  return Rect{bx0, by0, bx1, by1};
}

}  // namespace

LayerDecomposition decomposeLayer(std::span<const ColoredFragment> frags,
                                  const DesignRules& rules,
                                  const DecomposeOptions& opts) {
  SADP_SPAN_ARG("decompose", std::int64_t(frags.size()));
  static Counter& calls = metricsCounter("decompose.calls");
  calls.add(1);
  LayerDecomposition out;
  // Window: bounding box of all metal plus margin, aligned to pixels.
  Rect bbox;
  for (const ColoredFragment& cf : frags) {
    bbox = bbox.unionWith(fragmentMetalNm(cf.frag, rules));
  }
  if (bbox.empty()) bbox = Rect{0, 0, kPxNm, kPxNm};
  const Nm margin = std::max<Nm>(opts.margin, rules.pitch());
  bbox = bbox.inflated(margin);
  bbox.xlo -= bbox.xlo % kPxNm;
  bbox.ylo -= bbox.ylo % kPxNm;

  Raster rr;
  rr.windowNm = bbox;
  rr.w = int((bbox.xhi - bbox.xlo + kPxNm - 1) / kPxNm);
  rr.h = int((bbox.yhi - bbox.ylo + kPxNm - 1) / kPxNm);
  out.windowNm = bbox;

  const int spacerPx = rules.wSpacer / kPxNm;
  const int wCutPx = rules.wCut / kPxNm;
  const int dCutPx = rules.dCut / kPxNm;

  // ---- Step 1: target metal and real core shapes ---------------------------
  Bitmap target(rr.w, rr.h), coreRaw(rr.w, rr.h);
  std::vector<CoreShape> shapes;
  {
    SADP_SPAN("decompose.paint");
    for (const ColoredFragment& cf : frags) {
      const Rect m = fragmentMetalNm(cf.frag, rules);
      rr.fill(target, m);
      if (cf.color != Color::Second) {
        rr.fill(coreRaw, m);
        shapes.push_back({m, /*assist=*/false});
      }
    }
  }

  // ---- Step 2: assistant core strips ---------------------------------------
  // Every second pattern gets a w_core-wide strip at w_spacer distance along
  // each side. Stub (square) fragments are fully ringed with four strips so
  // their boundaries are spacer-defined too.
  Bitmap assists(rr.w, rr.h);
  if (opts.insertAssists) {
    SADP_SPAN("decompose.assists");
    for (const ColoredFragment& cf : frags) {
      if (cf.color != Color::Second) continue;
      const Fragment& f = cf.frag;
      const Rect m = fragmentMetalNm(f, rules);
      const Nm off = rules.wSpacer;
      const Nm ow = rules.wCore;
      const bool stub = f.width() == f.height();
      std::vector<Rect> strips;
      // Stubs are ringed on all four sides; the ring's corner strips merge
      // (total-loss rule below), which nibbles the stub corners slightly --
      // the corner-rounding reality of a conformal spacer.
      if (stub || f.orient() == Orient::Horizontal) {
        strips.push_back({m.xlo, m.yhi + off, m.xhi, m.yhi + off + ow});
        strips.push_back({m.xlo, m.ylo - off - ow, m.xhi, m.ylo - off});
      }
      if (stub || f.orient() == Orient::Vertical) {
        strips.push_back({m.xhi + off, m.ylo, m.xhi + off + ow, m.yhi});
        strips.push_back({m.xlo - off - ow, m.ylo, m.xlo - off, m.yhi});
      }
      for (const Rect& s : strips) rr.fill(assists, s);
    }
    // Core material must keep >= w_spacer clearance from every metal shape
    // (its own wire sits at exactly w_spacer, so only foreign metal clips);
    // otherwise the assist's spacer would eat the neighboring pattern.
    assists.andNot(target.dilated(spacerPx));
    for (const Rect& s : rasterToNmRects(assists, rr.windowNm)) {
      shapes.push_back({s, /*assist=*/true});
    }
  }

  // ---- Step 3: merge technique / assist trimming ---------------------------
  // Core-mask shapes closer than d_core cannot print separately. Two real
  // metal shapes (or metal + assist) are merged by filling the gap between
  // them (Fig. 2); the separating cut then re-opens the bridge, which is
  // what produces the scenario overlays. When a merge involving a
  // sacrificial assist would push spacer material onto third-party metal,
  // the assist is trimmed back instead (locally sacrificing protection --
  // the resulting exposure is measured as overlay).
  Bitmap bridges(rr.w, rr.h);
  Bitmap trims(rr.w, rr.h);
  if (opts.mergeCores) {
    SADP_SPAN("decompose.merge");
    const std::int64_t dCoreSq = std::int64_t(rules.dCore) * rules.dCore;
    SpatialHash shapeIndex(/*pitch=*/256);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      shapeIndex.insert(shapes[i].nm, std::uint32_t(i));
    }
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const Rect window = shapes[i].nm.inflated(rules.dCore);
      std::vector<std::uint32_t> near;
      shapeIndex.query(window, [&](const Rect&, std::uint32_t j) {
        if (j > i) near.push_back(j);
      });
      for (std::uint32_t j : near) {
        const CoreShape& a = shapes[i];
        const CoreShape& b = shapes[j];
        const std::int64_t d2 = distSq(a.nm, b.nm);
        if (d2 == 0 || d2 >= dCoreSq) continue;
        const Rect box = bridgeBox(a.nm, b.nm);
        // Merging is harmful only when the merged blob's spacer would land
        // on THIRD-party metal; the pair's own shapes are exempt (the cut
        // re-opening the bridge against them is the normal merge overlay).
        const Rect probe = box.inflated(rules.wSpacer);
        bool harmless = true;
        for (Nm py = probe.ylo; py < probe.yhi && harmless; py += kPxNm) {
          for (Nm px = probe.xlo; px < probe.xhi && harmless; px += kPxNm) {
            const Pt c{px + kPxNm / 2, py + kPxNm / 2};
            if (a.nm.contains(c) || b.nm.contains(c)) continue;
            if (target.get(rr.toX(px), rr.toY(py))) harmless = false;
          }
        }
        // Trim reach is rounded up to 2*w_spacer so the remaining assist
        // end keeps the layout on the w_spacer lattice (a d_core trim would
        // leave sub-w_cut cut slivers between the spacers).
        const Nm reach = std::max<Nm>(rules.dCore, 2 * rules.wSpacer);
        const Rect trimA =
            a.assist ? b.nm.inflated(reach).intersect(a.nm) : Rect{};
        const Rect trimB =
            b.assist ? a.nm.inflated(reach).intersect(b.nm) : Rect{};
        // A trim that would erase an assist completely (typical for the
        // tiny strips of a stub ring) loses more protection than the merge
        // damages: prefer the merge and accept the corner nibble.
        const bool totalLoss =
            (a.assist && trimA == a.nm) || (b.assist && trimB == b.nm);
        if ((!a.assist && !b.assist) || harmless || totalLoss ||
            !opts.trimAssists) {
          rr.fill(bridges, box);
        } else {
          if (a.assist) rr.fill(trims, trimA);
          if (b.assist) rr.fill(trims, trimB);
        }
      }
    }
    bridges.andNot(target);  // a bridge never overrides foreign metal
  }

  assists.andNot(trims);
  Bitmap coreMask = coreRaw | assists | bridges;

  // ---- Step 4: spacer ring --------------------------------------------------
  Bitmap spacer(rr.w, rr.h), eaten(rr.w, rr.h), cut(rr.w, rr.h);
  {
    SADP_SPAN("decompose.spacer");
    Bitmap spacerRaw = coreMask.dilated(spacerPx);
    spacerRaw.andNot(coreMask);
    eaten = spacerRaw;  // spacer intruding into metal: CD damage
    eaten &= target;
    out.report.spacerOverTargetPx = std::int64_t(eaten.count());
    spacer = std::move(spacerRaw);
    spacer.andNot(target);

    // ---- Step 5: cut mask (spacer-is-dielectric complement) -----------------
    cut.fillRect(0, 0, rr.w, rr.h);
    cut.andNot(spacer);
    cut.andNot(target);
  }

  // ---- Step 6: overlay metering ---------------------------------------------
  // A boundary pixel is unprotected when the outside pixel is cut-defined
  // or when the spacer intruded into the metal there (eaten edge).
  auto unprotectedAt = [&](int ix, int iy, int ox, int oy) {
    return cut.get(ox, oy) || eaten.get(ix, iy);
  };

  {
    SADP_SPAN("decompose.meter");
    for (const ColoredFragment& cf : frags) {
      const Fragment& f = cf.frag;
      const Rect m = fragmentMetalNm(f, rules);
      const int xlo = rr.toX(m.xlo), xhi = rr.toX(m.xhi);
      const int ylo = rr.toY(m.ylo), yhi = rr.toY(m.yhi);
      const bool stub = f.width() == f.height();
      const bool horiz = f.orient() == Orient::Horizontal;

      // Walks one boundary line; `sidewall` = true for the two long sides.
      auto walk = [&](bool sidewall, int outFixed, int inFixed, int lo, int hi,
                      bool vertEdge) {
        int run = 0;
        int runEnd = lo;
        bool tipHit = false;
        auto flush = [&]() {
          if (run == 0) return;
          if (sidewall) {
            ++out.report.sideOverlaySections;
            out.report.sideOverlayNm += std::int64_t(run) * kPxNm;
            if (run * kPxNm > rules.wLine) {
              ++out.report.hardOverlays;
              const int t0 = runEnd - run, t1 = runEnd;
              const Rect boxPx = vertEdge
                                     ? Rect{inFixed, t0, inFixed + 1, t1}
                                     : Rect{t0, inFixed, t1, inFixed + 1};
              out.hardOverlayBoxesNm.push_back(
                  Rect{Nm(rr.windowNm.xlo + boxPx.xlo * kPxNm),
                       Nm(rr.windowNm.ylo + boxPx.ylo * kPxNm),
                       Nm(rr.windowNm.xlo + boxPx.xhi * kPxNm),
                       Nm(rr.windowNm.ylo + boxPx.yhi * kPxNm)});
            }
          } else {
            tipHit = true;
          }
          run = 0;
        };
        for (int t = lo; t < hi; ++t) {
          const int ox = vertEdge ? outFixed : t;
          const int oy = vertEdge ? t : outFixed;
          const int ix = vertEdge ? inFixed : t;
          const int iy = vertEdge ? t : inFixed;
          if (target.get(ox, oy)) {  // interior edge (same-net abutment)
            flush();
            continue;
          }
          if (unprotectedAt(ix, iy, ox, oy)) {
            ++run;
            runEnd = t + 1;
          } else {
            flush();
          }
        }
        flush();
        if (!sidewall && tipHit) ++out.report.tipOverlays;
      };

      const bool topBottomAreSides = horiz && !stub;
      const bool leftRightAreSides = !horiz && !stub;
      walk(topBottomAreSides, yhi, yhi - 1, xlo, xhi, false);   // top
      walk(topBottomAreSides, ylo - 1, ylo, xlo, xhi, false);   // bottom
      walk(leftRightAreSides, xhi, xhi - 1, ylo, yhi, true);    // right
      walk(leftRightAreSides, xlo - 1, xlo, ylo, yhi, true);    // left
    }
  }

  // ---- Step 7: cut-mask MRC over target (Fig. 5 / §III-D) -------------------
  SADP_SPAN("decompose.mrc");
  // Width: cut pixels through which no w_cut x w_cut square fits, flagged
  // when they define a target edge (Chebyshev distance 1 from target).
  {
    // A pixel is narrow when no w_cut x w_cut square of cut material covers
    // it (anchored opening); it is flagged when it defines a target edge,
    // i.e. lies within Chebyshev distance 1 of target metal -- a word-wise
    // AND against the dilated target.
    Bitmap narrow = cut;
    narrow.andNot(cut.openedAnchored(wCutPx));
    Bitmap flagged = std::move(narrow);
    flagged &= target.dilated(1);
    const auto boxes = componentBoxes(flagged);
    out.report.cutWidthConflicts = int(boxes.size());
    for (const Rect& b : boxes) {
      out.conflictBoxesNm.push_back(
          Rect{Nm(rr.windowNm.xlo + b.xlo * kPxNm),
               Nm(rr.windowNm.ylo + b.ylo * kPxNm),
               Nm(rr.windowNm.xlo + b.xhi * kPxNm),
               Nm(rr.windowNm.ylo + b.yhi * kPxNm)});
    }
  }
  // Spacing: axis-aligned cut-gap-cut patterns with gap < d_cut where the
  // gap crosses target metal (two cut patterns defining opposite sides of
  // a feature, Fig. 15(b)).
  {
    const Bitmap flagged = narrowGapFlags(cut, target, dCutPx);
    const auto boxes = componentBoxes(flagged);
    out.report.cutSpaceConflicts = int(boxes.size());
    for (const Rect& b : boxes) {
      out.conflictBoxesNm.push_back(
          Rect{Nm(rr.windowNm.xlo + b.xlo * kPxNm),
               Nm(rr.windowNm.ylo + b.ylo * kPxNm),
               Nm(rr.windowNm.xlo + b.xhi * kPxNm),
               Nm(rr.windowNm.ylo + b.yhi * kPxNm)});
    }
  }

  out.target = std::move(target);
  out.coreMask = std::move(coreMask);
  out.spacer = std::move(spacer);
  out.cut = std::move(cut);
  out.assists = std::move(assists);
  out.bridges = std::move(bridges);
  return out;
}

Bitmap narrowGapFlags(const Bitmap& cut, const Bitmap& target, int minGapPx) {
  auto rowPass = [minGapPx](const Bitmap& cuts, const Bitmap& metal) {
    Bitmap gaps(cuts.width(), cuts.height());
    std::vector<std::pair<int, int>> runs;
    for (int y = 0; y < cuts.height(); ++y) {
      rowRuns(cuts, y, runs);
      for (std::size_t t = 1; t < runs.size(); ++t) {
        const int g0 = runs[t - 1].second, g1 = runs[t].first;
        if (g1 - g0 < minGapPx) gaps.fillRect(g0, y, g1, y + 1);
      }
    }
    gaps &= metal;
    return gaps;
  };
  Bitmap flagged = rowPass(cut, target);
  flagged |= rowPass(cut.transposed(), target.transposed()).transposed();
  return flagged;
}

}  // namespace sadp
