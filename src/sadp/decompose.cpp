#include "sadp/decompose.hpp"

#include "sadp/mask_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "run/run_context.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/parallel_for.hpp"

namespace sadp {

OverlayReport& OverlayReport::operator+=(const OverlayReport& o) {
  sideOverlayNm += o.sideOverlayNm;
  sideOverlaySections += o.sideOverlaySections;
  hardOverlays += o.hardOverlays;
  tipOverlays += o.tipOverlays;
  cutWidthConflicts += o.cutWidthConflicts;
  cutSpaceConflicts += o.cutSpaceConflicts;
  spacerOverTargetPx += o.spacerOverTargetPx;
  return *this;
}

Rect fragmentMetalNm(const Fragment& f, const DesignRules& rules) {
  const Nm p = rules.pitch();
  const Nm s = (p - rules.wLine) / 2;
  return Rect{Nm(f.xlo * p + s), Nm(f.ylo * p + s), Nm(f.xhi * p - s),
              Nm(f.yhi * p - s)};
}

namespace {

constexpr int kPxNm = 10;  ///< raster resolution

struct Raster {
  Rect windowNm;
  int w = 0, h = 0;
  int toX(Nm nm) const { return int((nm - windowNm.xlo) / kPxNm); }
  int toY(Nm nm) const { return int((nm - windowNm.ylo) / kPxNm); }
  void fill(Bitmap& b, const Rect& r) const {
    b.fillRect(toX(r.xlo), toY(r.ylo), toX(r.xhi), toY(r.yhi));
  }
  bool anyTarget(const Bitmap& b, const Rect& r) const {
    return b.anyInRect(toX(r.xlo), toY(r.ylo), toX(r.xhi), toY(r.yhi));
  }
};

/// One shape destined for the core mask: real (core-colored) metal or a
/// sacrificial assistant-core strip.
struct CoreShape {
  Rect nm;
  bool assist = false;
};

// ---- Tiled intra-layer morphology (DESIGN.md §5.6) --------------------------
//
// The morphology passes (spacer grow, cut synthesis, cut MRC) are local
// operations with a bounded influence radius, so the raster splits into
// word-aligned column bands that are solved independently with a halo of
// context and stitched back by whole-word copies — byte-identical to the
// whole-window run, which is what lets the band loop ride the nested
// parallelFor fan-out without touching the determinism contract.

/// Auto-tiling policy (opts.tileWords == 0). Both constants are fixed so
/// the band count — and with it every tile counter and parallelFor job
/// total — depends only on the layout, never on the thread count.
constexpr int kAutoTileWords = 8;     ///< 512-px bands
constexpr int kAutoTileMinWords = 16; ///< don't tile below 1024 px width

/// Band width in words for this window, or 0 for the whole-window path.
int resolveTileWords(const DecomposeOptions& opts, int windowWords) {
  if (opts.tileWords > 0) return opts.tileWords;
  if (opts.tileWords == 0 && windowWords >= kAutoTileMinWords) {
    return kAutoTileWords;
  }
  return 0;
}

using TileStageFn =
    std::function<void(const std::vector<Bitmap>&, std::vector<Bitmap>&)>;

/// Built-in band cost model used when neither DecomposeOptions::costHints
/// nor the run context supplies one: a cropped raster word of morphology
/// costs one unit, a set pixel adds ~0.05 (the run-extraction passes --
/// narrowGapFlags, the anchored opening's content-dependent tail -- scale
/// with population, the word-wise passes with area). Rough calibration
/// from bench_kernels; refined per machine by fitCostHints.
constexpr CostHints kDefaultCostHints{1.0, 0.05};

/// Runs one morphology stage over word-aligned column bands: every band
/// sees each input cropped to the band plus `haloWords` of context, `fn`
/// fills band-local outputs, and only the band's core words are stitched
/// into the pre-sized full-window `out` planes. Bands write disjoint word
/// columns, so they are safe as concurrent parallelFor items; with the
/// halo at least the stage's influence radius the stitched planes are
/// byte-identical to running `fn` on the whole window.
///
/// Band-to-worker assignment follows `schedule`: Static is the shared
/// cursor of parallelFor, Dynamic weighs each band by
/// hints.nsPerWord * cropped word area + hints.nsPerSetPx * population
/// (from a popcount prefix scan of the input planes) and runs the bands
/// through the work-stealing parallelForWeighted. Everything metered here
/// -- the tile counters, the per-band span and its population arg -- is a
/// property of the layout and tile width, computed identically in both
/// modes, so the metrics stream never depends on the schedule.
void runTiledStage(RunContext& ctx, BandSchedule schedule,
                   const CostHints& hints,
                   std::initializer_list<const Bitmap*> in,
                   std::initializer_list<Bitmap*> out, int tileWords,
                   int haloWords, const TileStageFn& fn) {
  const Bitmap& first = **in.begin();
  const int wpr = Bitmap::wordsPerRow(first.width());
  const int rows = first.height();
  const int bands = (wpr + tileWords - 1) / tileWords;
  // Looked up per stage, never cached in a static: the registry is
  // per-context.
  MetricsRegistry& m = ctx.metrics();
  m.counter("decompose.tiles").add(bands);
  Counter& tileWordsDone = m.counter("decompose.tile_words");
  Counter& tileAreaWords = m.counter("decompose.tile_area_words");
  Counter& tilePop = m.counter("decompose.tile_pop");
  // Summed word-column populations of all input planes: band b's cost
  // signal is pop[hi] - pop[lo] over its cropped columns.
  std::vector<std::int64_t> pop(std::size_t(wpr) + 1, 0);
  for (const Bitmap* p : in) {
    const std::vector<std::int64_t> pre = p->wordColumnPopcountPrefix();
    for (std::size_t k = 0; k < pop.size(); ++k) pop[k] += pre[k];
  }
  const auto cropLo = [&](int b) {
    return std::max(0, b * tileWords - haloWords);
  };
  const auto cropHi = [&](int b) {
    return std::min(wpr, std::min(wpr, b * tileWords + tileWords) + haloWords);
  };
  auto body = [&](int b) {
    const int w0 = b * tileWords;
    const int w1 = std::min(wpr, w0 + tileWords);
    const int lo = cropLo(b);
    const int hi = cropHi(b);
    const std::int64_t bandPop = pop[std::size_t(hi)] - pop[std::size_t(lo)];
    SADP_SPAN_ARG("decompose.tile", bandPop);
    tileWordsDone.add(hi - lo);
    tileAreaWords.add(std::int64_t(hi - lo) * rows);
    tilePop.add(bandPop);
    std::vector<Bitmap> sub;
    sub.reserve(in.size());
    for (const Bitmap* p : in) {
      sub.push_back(p->extractWordColumns(lo, hi - lo));
    }
    std::vector<Bitmap> res(out.size());
    fn(sub, res);
    std::size_t i = 0;
    for (Bitmap* p : out) {
      p->blitWordColumns(res[i++], w0 - lo, w0, w1 - w0);
    }
  };
  if (schedule == BandSchedule::Dynamic) {
    std::vector<std::int64_t> weights(std::size_t(bands), 0);
    for (int b = 0; b < bands; ++b) {
      const int lo = cropLo(b), hi = cropHi(b);
      const double cost =
          hints.nsPerWord * double(std::int64_t(hi - lo) * rows) +
          hints.nsPerSetPx *
              double(pop[std::size_t(hi)] - pop[std::size_t(lo)]);
      weights[std::size_t(b)] =
          std::max<std::int64_t>(1, std::llround(cost));
    }
    parallelForWeighted(ctx, bands, weights, body);
  } else {
    parallelFor(ctx, bands, body);
  }
}

}  // namespace

std::vector<Rect> rasterToNmRects(const Bitmap& b, const Rect& windowNm) {
  std::vector<Rect> pxRects;
  // Collect row runs, then merge vertically identical stacks. Open runs
  // are keyed by their (x0,x1) span -- spans are unique within a row -- so
  // each row matches in O(runs) instead of O(runs^2).
  struct Run {
    int x0, x1, y0, y1;
  };
  auto spanKey = [](int x0, int x1) {
    return (std::uint64_t(std::uint32_t(x0)) << 32) | std::uint32_t(x1);
  };
  std::vector<Run> open;
  std::unordered_map<std::uint64_t, std::size_t> openIdx;
  std::vector<std::pair<int, int>> runs;
  for (int y = 0; y <= b.height(); ++y) {
    runs.clear();
    if (y < b.height()) rowRuns(b, y, runs);
    std::vector<Run> next;
    next.reserve(runs.size());
    for (auto& [x0, x1] : runs) {
      const auto it = openIdx.find(spanKey(x0, x1));
      if (it != openIdx.end()) {
        Run& r = open[it->second];
        r.y1 = y + 1;
        next.push_back(r);
        r.y1 = -1;  // consumed
      } else {
        next.push_back({x0, x1, y, y + 1});
      }
    }
    for (const Run& r : open) {
      if (r.y1 >= 0) {
        pxRects.push_back(Rect{r.x0, r.y0, r.x1, r.y1});
      }
    }
    open = std::move(next);
    openIdx.clear();
    for (std::size_t i = 0; i < open.size(); ++i) {
      openIdx.emplace(spanKey(open[i].x0, open[i].x1), i);
    }
  }
  std::vector<Rect> out;
  out.reserve(pxRects.size());
  for (const Rect& p : pxRects) {
    out.push_back(Rect{Nm(windowNm.xlo + p.xlo * kPxNm),
                       Nm(windowNm.ylo + p.ylo * kPxNm),
                       Nm(windowNm.xlo + p.xhi * kPxNm),
                       Nm(windowNm.ylo + p.yhi * kPxNm)});
  }
  return out;
}

namespace {

/// Axis-gap box between two rects (their "merge bridge" region).
Rect bridgeBox(const Rect& a, const Rect& b) {
  const Nm bx0 = (a.xhi <= b.xlo)   ? a.xhi
                 : (b.xhi <= a.xlo) ? b.xhi
                                    : std::max(a.xlo, b.xlo);
  const Nm bx1 = (a.xhi <= b.xlo)   ? b.xlo
                 : (b.xhi <= a.xlo) ? a.xlo
                                    : std::min(a.xhi, b.xhi);
  const Nm by0 = (a.yhi <= b.ylo)   ? a.yhi
                 : (b.yhi <= a.ylo) ? b.yhi
                                    : std::max(a.ylo, b.ylo);
  const Nm by1 = (a.yhi <= b.ylo)   ? b.ylo
                 : (b.yhi <= a.ylo) ? a.ylo
                                    : std::min(a.yhi, b.yhi);
  return Rect{bx0, by0, bx1, by1};
}

}  // namespace

static LayerDecomposition decomposeLayerUncached(
    std::span<const ColoredFragment> frags, const DesignRules& rules,
    const DecomposeOptions& opts) {
  RunContext& ctx = opts.ctx ? *opts.ctx : RunContext::current();
  RunContext::Scope bindCtx(ctx);
  SADP_SPAN_ARG("decompose", std::int64_t(frags.size()));
  MetricsRegistry& m = ctx.metrics();
  m.counter("decompose.calls").add(1);
  Counter& tiledCalls = m.counter("decompose.tiled_calls");
  Histogram& windowWords = m.histogram("decompose.window_words");
  LayerDecomposition out;
  // Window: bounding box of all metal plus margin, aligned to pixels.
  Rect bbox;
  for (const ColoredFragment& cf : frags) {
    bbox = bbox.unionWith(fragmentMetalNm(cf.frag, rules));
  }
  if (bbox.empty()) bbox = Rect{0, 0, kPxNm, kPxNm};
  const Nm margin = std::max<Nm>(opts.margin, rules.pitch());
  bbox = bbox.inflated(margin);
  bbox.xlo -= bbox.xlo % kPxNm;
  bbox.ylo -= bbox.ylo % kPxNm;

  Raster rr;
  rr.windowNm = bbox;
  rr.w = int((bbox.xhi - bbox.xlo + kPxNm - 1) / kPxNm);
  rr.h = int((bbox.yhi - bbox.ylo + kPxNm - 1) / kPxNm);
  out.windowNm = bbox;

  const int spacerPx = rules.wSpacer / kPxNm;
  const int wCutPx = rules.wCut / kPxNm;
  const int dCutPx = rules.dCut / kPxNm;

  // Tiling setup. The halo must cover the largest influence radius of any
  // tiled pass: the spacer dilation (w_spacer), the anchored w_cut opening,
  // and the d_cut gap scan — their sum is a safe worst case even if passes
  // ever cascade — rounded up to whole words to keep the crop/stitch pair
  // word-aligned. The per-layer word count (a deterministic work measure)
  // feeds the imbalance histogram that motivated tiling in the first place.
  const int wpr = Bitmap::wordsPerRow(rr.w);
  const int tileWords = resolveTileWords(opts, wpr);
  const int haloPx = (rules.wSpacer + rules.wCut + rules.dCut) / kPxNm;
  const int haloWords = (haloPx + 63) / 64;
  windowWords.add(std::int64_t(wpr) * rr.h);
  if (tileWords > 0) tiledCalls.add(1);

  // Band scheduling: explicit option hints beat the context's installed
  // hints beat the built-in defaults. Hints and schedule mode reorder
  // work assignment only -- never planes, reports, or counters.
  const BandSchedule schedule = opts.schedule;
  CostHints hints = opts.costHints ? *opts.costHints : ctx.costHints();
  if (hints.empty()) hints = kDefaultCostHints;

  // ---- Step 1: target metal and real core shapes ---------------------------
  Bitmap target(rr.w, rr.h), coreRaw(rr.w, rr.h);
  std::vector<CoreShape> shapes;
  {
    SADP_SPAN("decompose.paint");
    for (const ColoredFragment& cf : frags) {
      const Rect m = fragmentMetalNm(cf.frag, rules);
      rr.fill(target, m);
      if (cf.color != Color::Second) {
        rr.fill(coreRaw, m);
        shapes.push_back({m, /*assist=*/false});
      }
    }
  }

  // ---- Step 2: assistant core strips ---------------------------------------
  // Every second pattern gets a w_core-wide strip at w_spacer distance along
  // each side. Stub (square) fragments are fully ringed with four strips so
  // their boundaries are spacer-defined too.
  Bitmap assists(rr.w, rr.h);
  if (opts.insertAssists) {
    SADP_SPAN("decompose.assists");
    for (const ColoredFragment& cf : frags) {
      if (cf.color != Color::Second) continue;
      const Fragment& f = cf.frag;
      const Rect m = fragmentMetalNm(f, rules);
      const Nm off = rules.wSpacer;
      const Nm ow = rules.wCore;
      const bool stub = f.width() == f.height();
      std::vector<Rect> strips;
      // Stubs are ringed on all four sides; the ring's corner strips merge
      // (total-loss rule below), which nibbles the stub corners slightly --
      // the corner-rounding reality of a conformal spacer.
      if (stub || f.orient() == Orient::Horizontal) {
        strips.push_back({m.xlo, m.yhi + off, m.xhi, m.yhi + off + ow});
        strips.push_back({m.xlo, m.ylo - off - ow, m.xhi, m.ylo - off});
      }
      if (stub || f.orient() == Orient::Vertical) {
        strips.push_back({m.xhi + off, m.ylo, m.xhi + off + ow, m.yhi});
        strips.push_back({m.xlo - off - ow, m.ylo, m.xlo - off, m.yhi});
      }
      for (const Rect& s : strips) rr.fill(assists, s);
    }
    // Core material must keep >= w_spacer clearance from every metal shape
    // (its own wire sits at exactly w_spacer, so only foreign metal clips);
    // otherwise the assist's spacer would eat the neighboring pattern.
    if (tileWords > 0) {
      Bitmap dil(rr.w, rr.h);
      runTiledStage(ctx, schedule, hints, {&target}, {&dil}, tileWords,
                    haloWords,
                    [&](const std::vector<Bitmap>& in,
                        std::vector<Bitmap>& res) {
                      res[0] = in[0].dilated(spacerPx);
                    });
      assert(fingerprint(dil) == fingerprint(target.dilated(spacerPx)));
      assists.andNot(dil);
    } else {
      assists.andNot(target.dilated(spacerPx));
    }
    for (const Rect& s : rasterToNmRects(assists, rr.windowNm)) {
      shapes.push_back({s, /*assist=*/true});
    }
  }

  // ---- Step 3: merge technique / assist trimming ---------------------------
  // Core-mask shapes closer than d_core cannot print separately. Two real
  // metal shapes (or metal + assist) are merged by filling the gap between
  // them (Fig. 2); the separating cut then re-opens the bridge, which is
  // what produces the scenario overlays. When a merge involving a
  // sacrificial assist would push spacer material onto third-party metal,
  // the assist is trimmed back instead (locally sacrificing protection --
  // the resulting exposure is measured as overlay).
  Bitmap bridges(rr.w, rr.h);
  Bitmap trims(rr.w, rr.h);
  if (opts.mergeCores) {
    SADP_SPAN("decompose.merge");
    const std::int64_t dCoreSq = std::int64_t(rules.dCore) * rules.dCore;
    SpatialHash shapeIndex(/*pitch=*/256);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      shapeIndex.insert(shapes[i].nm, std::uint32_t(i));
    }
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const Rect window = shapes[i].nm.inflated(rules.dCore);
      std::vector<std::uint32_t> near;
      shapeIndex.query(window, [&](const Rect&, std::uint32_t j) {
        if (j > i) near.push_back(j);
      });
      for (std::uint32_t j : near) {
        const CoreShape& a = shapes[i];
        const CoreShape& b = shapes[j];
        const std::int64_t d2 = distSq(a.nm, b.nm);
        if (d2 == 0 || d2 >= dCoreSq) continue;
        const Rect box = bridgeBox(a.nm, b.nm);
        // Merging is harmful only when the merged blob's spacer would land
        // on THIRD-party metal; the pair's own shapes are exempt (the cut
        // re-opening the bridge against them is the normal merge overlay).
        const Rect probe = box.inflated(rules.wSpacer);
        bool harmless = true;
        for (Nm py = probe.ylo; py < probe.yhi && harmless; py += kPxNm) {
          for (Nm px = probe.xlo; px < probe.xhi && harmless; px += kPxNm) {
            const Pt c{px + kPxNm / 2, py + kPxNm / 2};
            if (a.nm.contains(c) || b.nm.contains(c)) continue;
            if (target.get(rr.toX(px), rr.toY(py))) harmless = false;
          }
        }
        // Trim reach is rounded up to 2*w_spacer so the remaining assist
        // end keeps the layout on the w_spacer lattice (a d_core trim would
        // leave sub-w_cut cut slivers between the spacers).
        const Nm reach = std::max<Nm>(rules.dCore, 2 * rules.wSpacer);
        const Rect trimA =
            a.assist ? b.nm.inflated(reach).intersect(a.nm) : Rect{};
        const Rect trimB =
            b.assist ? a.nm.inflated(reach).intersect(b.nm) : Rect{};
        // A trim that would erase an assist completely (typical for the
        // tiny strips of a stub ring) loses more protection than the merge
        // damages: prefer the merge and accept the corner nibble.
        const bool totalLoss =
            (a.assist && trimA == a.nm) || (b.assist && trimB == b.nm);
        if ((!a.assist && !b.assist) || harmless || totalLoss ||
            !opts.trimAssists) {
          rr.fill(bridges, box);
        } else {
          if (a.assist) rr.fill(trims, trimA);
          if (b.assist) rr.fill(trims, trimB);
        }
      }
    }
    bridges.andNot(target);  // a bridge never overrides foreign metal
  }

  assists.andNot(trims);
  Bitmap coreMask = coreRaw | assists | bridges;

  // ---- Step 4: spacer ring --------------------------------------------------
  // ---- Step 5: cut mask (spacer-is-dielectric complement) -------------------
  // One stage for both: every op besides the dilation is word-pointwise, so
  // the band-local run stitches byte-identically to the whole window.
  auto spacerStage = [&](const Bitmap& core, const Bitmap& tgt, Bitmap& sp,
                         Bitmap& eat, Bitmap& ct) {
    Bitmap spacerRaw = core.dilated(spacerPx);
    spacerRaw.andNot(core);
    eat = spacerRaw;  // spacer intruding into metal: CD damage
    eat &= tgt;
    sp = std::move(spacerRaw);
    sp.andNot(tgt);
    ct = Bitmap(tgt.width(), tgt.height());
    ct.fillRect(0, 0, tgt.width(), tgt.height());
    ct.andNot(sp);
    ct.andNot(tgt);
  };
  Bitmap spacer(rr.w, rr.h), eaten(rr.w, rr.h), cut(rr.w, rr.h);
  {
    SADP_SPAN("decompose.spacer");
    if (tileWords > 0) {
      runTiledStage(ctx, schedule, hints, {&coreMask, &target},
                    {&spacer, &eaten, &cut}, tileWords, haloWords,
                    [&](const std::vector<Bitmap>& in,
                        std::vector<Bitmap>& res) {
                      spacerStage(in[0], in[1], res[0], res[1], res[2]);
                    });
#ifndef NDEBUG
      Bitmap refSp(rr.w, rr.h), refEat(rr.w, rr.h), refCut(rr.w, rr.h);
      spacerStage(coreMask, target, refSp, refEat, refCut);
      assert(fingerprint(spacer) == fingerprint(refSp));
      assert(fingerprint(eaten) == fingerprint(refEat));
      assert(fingerprint(cut) == fingerprint(refCut));
#endif
    } else {
      spacerStage(coreMask, target, spacer, eaten, cut);
    }
    out.report.spacerOverTargetPx = std::int64_t(eaten.count());
  }

  // ---- Step 6: overlay metering ---------------------------------------------
  // A boundary pixel is unprotected when the outside pixel is cut-defined
  // or when the spacer intruded into the metal there (eaten edge).
  auto unprotectedAt = [&](int ix, int iy, int ox, int oy) {
    return cut.get(ox, oy) || eaten.get(ix, iy);
  };

  {
    SADP_SPAN("decompose.meter");
    for (const ColoredFragment& cf : frags) {
      const Fragment& f = cf.frag;
      const Rect m = fragmentMetalNm(f, rules);
      const int xlo = rr.toX(m.xlo), xhi = rr.toX(m.xhi);
      const int ylo = rr.toY(m.ylo), yhi = rr.toY(m.yhi);
      const bool stub = f.width() == f.height();
      const bool horiz = f.orient() == Orient::Horizontal;

      // Walks one boundary line; `sidewall` = true for the two long sides.
      auto walk = [&](bool sidewall, int outFixed, int inFixed, int lo, int hi,
                      bool vertEdge) {
        int run = 0;
        int runEnd = lo;
        bool tipHit = false;
        auto flush = [&]() {
          if (run == 0) return;
          if (sidewall) {
            ++out.report.sideOverlaySections;
            out.report.sideOverlayNm += std::int64_t(run) * kPxNm;
            if (run * kPxNm > rules.wLine) {
              ++out.report.hardOverlays;
              const int t0 = runEnd - run, t1 = runEnd;
              const Rect boxPx = vertEdge
                                     ? Rect{inFixed, t0, inFixed + 1, t1}
                                     : Rect{t0, inFixed, t1, inFixed + 1};
              out.hardOverlayBoxesNm.push_back(
                  Rect{Nm(rr.windowNm.xlo + boxPx.xlo * kPxNm),
                       Nm(rr.windowNm.ylo + boxPx.ylo * kPxNm),
                       Nm(rr.windowNm.xlo + boxPx.xhi * kPxNm),
                       Nm(rr.windowNm.ylo + boxPx.yhi * kPxNm)});
            }
          } else {
            tipHit = true;
          }
          run = 0;
        };
        for (int t = lo; t < hi; ++t) {
          const int ox = vertEdge ? outFixed : t;
          const int oy = vertEdge ? t : outFixed;
          const int ix = vertEdge ? inFixed : t;
          const int iy = vertEdge ? t : inFixed;
          if (target.get(ox, oy)) {  // interior edge (same-net abutment)
            flush();
            continue;
          }
          if (unprotectedAt(ix, iy, ox, oy)) {
            ++run;
            runEnd = t + 1;
          } else {
            flush();
          }
        }
        flush();
        if (!sidewall && tipHit) ++out.report.tipOverlays;
      };

      const bool topBottomAreSides = horiz && !stub;
      const bool leftRightAreSides = !horiz && !stub;
      walk(topBottomAreSides, yhi, yhi - 1, xlo, xhi, false);   // top
      walk(topBottomAreSides, ylo - 1, ylo, xlo, xhi, false);   // bottom
      walk(leftRightAreSides, xhi, xhi - 1, ylo, yhi, true);    // right
      walk(leftRightAreSides, xlo - 1, xlo, ylo, yhi, true);    // left
    }
  }

  // ---- Step 7: cut-mask MRC over target (Fig. 5 / §III-D) -------------------
  SADP_SPAN("decompose.mrc");
  // Width: a pixel is narrow when no w_cut x w_cut square of cut material
  // covers it (anchored opening); it is flagged when it defines a target
  // edge, i.e. lies within Chebyshev distance 1 of target metal -- a
  // word-wise AND against the dilated target.
  // Spacing: axis-aligned cut-gap-cut patterns with gap < d_cut where the
  // gap crosses target metal (two cut patterns defining opposite sides of
  // a feature, Fig. 15(b)). Both scans are local (radius <= max(w_cut,
  // d_cut) px), so they tile like the spacer stage; only the component
  // sweep runs on the stitched whole-window flag planes.
  auto mrcStage = [&](const Bitmap& ct, const Bitmap& tgt, Bitmap& flagW,
                      Bitmap& flagS) {
    flagW = ct;
    flagW.andNot(ct.openedAnchored(wCutPx));
    flagW &= tgt.dilated(1);
    flagS = narrowGapFlags(ct, tgt, dCutPx);
  };
  Bitmap flaggedWidth(rr.w, rr.h), flaggedSpace(rr.w, rr.h);
  if (tileWords > 0) {
    runTiledStage(ctx, schedule, hints, {&cut, &target},
                  {&flaggedWidth, &flaggedSpace}, tileWords, haloWords,
                  [&](const std::vector<Bitmap>& in,
                      std::vector<Bitmap>& res) {
                    mrcStage(in[0], in[1], res[0], res[1]);
                  });
#ifndef NDEBUG
    Bitmap refW(rr.w, rr.h), refS(rr.w, rr.h);
    mrcStage(cut, target, refW, refS);
    assert(fingerprint(flaggedWidth) == fingerprint(refW));
    assert(fingerprint(flaggedSpace) == fingerprint(refS));
#endif
  } else {
    mrcStage(cut, target, flaggedWidth, flaggedSpace);
  }
  {
    const auto boxes = componentBoxes(flaggedWidth);
    out.report.cutWidthConflicts = int(boxes.size());
    for (const Rect& b : boxes) {
      out.conflictBoxesNm.push_back(
          Rect{Nm(rr.windowNm.xlo + b.xlo * kPxNm),
               Nm(rr.windowNm.ylo + b.ylo * kPxNm),
               Nm(rr.windowNm.xlo + b.xhi * kPxNm),
               Nm(rr.windowNm.ylo + b.yhi * kPxNm)});
    }
  }
  {
    const auto boxes = componentBoxes(flaggedSpace);
    out.report.cutSpaceConflicts = int(boxes.size());
    for (const Rect& b : boxes) {
      out.conflictBoxesNm.push_back(
          Rect{Nm(rr.windowNm.xlo + b.xlo * kPxNm),
               Nm(rr.windowNm.ylo + b.ylo * kPxNm),
               Nm(rr.windowNm.xlo + b.xhi * kPxNm),
               Nm(rr.windowNm.ylo + b.yhi * kPxNm)});
    }
  }

  out.target = std::move(target);
  out.coreMask = std::move(coreMask);
  out.spacer = std::move(spacer);
  out.cut = std::move(cut);
  out.assists = std::move(assists);
  out.bridges = std::move(bridges);
  return out;
}

namespace {

/// Uncached entry point with backend dispatch: a non-SADP synthesizer owns
/// the whole layer synthesis; null (or the SADP backend itself) takes the
/// built-in cut-process pipeline above, byte for byte.
LayerDecomposition synthesizeUncached(std::span<const ColoredFragment> frags,
                                      const DesignRules& rules,
                                      const DecomposeOptions& opts) {
  if (opts.synth != nullptr && opts.synth->synthId() != kSadpCutSynthId) {
    return opts.synth->synthesize(frags, rules, opts);
  }
  return decomposeLayerUncached(frags, rules, opts);
}

}  // namespace

std::shared_ptr<const LayerDecomposition> decomposeLayerShared(
    std::span<const ColoredFragment> frags, const DesignRules& rules,
    const DecomposeOptions& opts) {
  if (opts.cache == nullptr) {
    return std::make_shared<const LayerDecomposition>(
        synthesizeUncached(frags, rules, opts));
  }
  RunContext& ctx = opts.ctx ? *opts.ctx : RunContext::current();
  const MaskCacheKey key = maskCacheKey(frags, rules, opts);
  if (std::shared_ptr<const LayerDecomposition> hit = opts.cache->lookup(key)) {
    ctx.metrics().counter("mask_cache.hits").add(1);
    return hit;
  }
  ctx.metrics().counter("mask_cache.misses").add(1);
  return opts.cache->insert(key, synthesizeUncached(frags, rules, opts));
}

LayerDecomposition decomposeLayer(std::span<const ColoredFragment> frags,
                                  const DesignRules& rules,
                                  const DecomposeOptions& opts) {
  if (opts.cache == nullptr) {
    return synthesizeUncached(frags, rules, opts);  // move, no copy
  }
  return *decomposeLayerShared(frags, rules, opts);
}

std::uint64_t maskFingerprint(const LayerDecomposition& d) {
  // FNV-1a fold over the per-plane fingerprints plus the window box; any
  // single-bit mask difference flips it (up to hash collisions).
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  for (const Bitmap* b :
       {&d.target, &d.coreMask, &d.spacer, &d.cut, &d.assists, &d.bridges}) {
    fold(fingerprint(*b));
  }
  // k-patterning exposure planes. Folded only when present (with a count
  // prefix so plane boundaries matter), which keeps every SADP fingerprint
  // — including the committed goldens — byte-identical.
  if (!d.masks.empty()) {
    fold(std::uint64_t(d.masks.size()));
    for (const Bitmap& m : d.masks) fold(fingerprint(m));
  }
  fold(std::uint64_t(std::uint32_t(d.windowNm.xlo)));
  fold(std::uint64_t(std::uint32_t(d.windowNm.ylo)));
  fold(std::uint64_t(std::uint32_t(d.windowNm.xhi)));
  fold(std::uint64_t(std::uint32_t(d.windowNm.yhi)));
  return h;
}

Bitmap narrowGapFlags(const Bitmap& cut, const Bitmap& target, int minGapPx) {
  auto rowPass = [minGapPx](const Bitmap& cuts, const Bitmap& metal) {
    Bitmap gaps(cuts.width(), cuts.height());
    std::vector<std::pair<int, int>> runs;
    for (int y = 0; y < cuts.height(); ++y) {
      rowRuns(cuts, y, runs);
      for (std::size_t t = 1; t < runs.size(); ++t) {
        const int g0 = runs[t - 1].second, g1 = runs[t].first;
        if (g1 - g0 < minGapPx) gaps.fillRect(g0, y, g1, y + 1);
      }
    }
    gaps &= metal;
    return gaps;
  };
  Bitmap flagged = rowPass(cut, target);
  flagged |= rowPass(cut.transposed(), target.transposed()).transposed();
  return flagged;
}

CostHints fitCostHints(const RunContext& ctx) {
  // (population, duration) sample per band from the Full-level trace;
  // the span arg is the band's summed input population (runTiledStage).
  std::vector<std::pair<double, double>> pts;
  for (const TraceEvent& e : ctx.trace().collectEvents()) {
    if (e.name == "decompose.tile" && e.hasArg) {
      pts.emplace_back(double(e.arg), double(e.durNs));
    }
  }
  const std::int64_t bands = ctx.metrics().counter("decompose.tiles").value();
  const std::int64_t areaWords =
      ctx.metrics().counter("decompose.tile_area_words").value();
  if (pts.size() < 2 || bands <= 0 || areaWords <= 0) return {};
  // Least squares durNs = intercept + slope * pop. Zero population
  // variance (uniform layouts) degenerates to slope 0: the fit then only
  // measures the per-area term, which is still a valid hint.
  double meanPop = 0, meanDur = 0;
  for (const auto& [p, d] : pts) {
    meanPop += p;
    meanDur += d;
  }
  meanPop /= double(pts.size());
  meanDur /= double(pts.size());
  double cov = 0, var = 0;
  for (const auto& [p, d] : pts) {
    cov += (p - meanPop) * (d - meanDur);
    var += (p - meanPop) * (p - meanPop);
  }
  const double nsPerSetPx = var > 0 ? std::max(0.0, cov / var) : 0.0;
  const double interceptNs = meanDur - nsPerSetPx * meanPop;
  const double meanBandAreaWords = double(areaWords) / double(bands);
  const double nsPerWord = std::max(0.0, interceptNs / meanBandAreaWords);
  return {nsPerWord, nsPerSetPx};
}

}  // namespace sadp
