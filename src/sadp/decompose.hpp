// SADP cut-process mask synthesis and physical verification (ground truth).
//
// Given the colored wire fragments of one routing layer, this module
// constructs the actual masks of the cut process (paper Fig. 1(b)):
//
//   core mask  = core-colored metal + assistant core patterns, with shapes
//                closer than d_core merged (the merge technique, Fig. 2)
//   spacer     = w_spacer ring grown around every core-mask shape
//   cut mask   = everything that is neither spacer nor target metal
//                (spacer-is-dielectric: final metal = NOT spacer AND NOT cut)
//
// and then *measures* the result like a sign-off deck would:
//   - side overlays: side-boundary sections of target metal defined by the
//     cut mask instead of a spacer (hard if longer than w_line),
//   - tip overlays: cut-defined line ends (non-critical),
//   - cut conflicts: cut-mask MRC violations (min width w_cut, min space
//     d_cut) that occur over a target pattern (violations over spacers are
//     benign, Fig. 5).
//
// This is the arbiter for the scenario cost table: the constraint graph
// predicts overlays; this module measures them on real mask geometry.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "grid/design_rules.hpp"
#include "ocg/scenario.hpp"
#include "run/run_context.hpp"
#include "sadp/bitmap.hpp"

namespace sadp {

class MaskCache;  // sadp/mask_cache.hpp

/// How the tiled morphology bands are assigned to workers. Either mode
/// produces byte-identical planes, reports, and metric counter totals --
/// scheduling moves assignment order only (the determinism contract,
/// fuzz-checked by tests/test_schedule_fuzz.cpp).
enum class BandSchedule {
  Static,   ///< shared-cursor parallelFor (the PR-3 behaviour)
  Dynamic,  ///< cost-weighted work stealing (parallelForWeighted)
};

/// One colored wire fragment to decompose.
struct ColoredFragment {
  Fragment frag;
  Color color = Color::Core;
};

/// Physical measurement of one decomposed layer.
struct OverlayReport {
  std::int64_t sideOverlayNm = 0;   ///< total side-overlay length
  int sideOverlaySections = 0;      ///< contiguous unprotected side sections
  int hardOverlays = 0;             ///< sections longer than w_line
  int tipOverlays = 0;              ///< unprotected line ends
  int cutWidthConflicts = 0;        ///< sub-w_cut cut features over target
  int cutSpaceConflicts = 0;        ///< sub-d_cut cut gaps over target
  std::int64_t spacerOverTargetPx = 0;  ///< spacer eating metal (must be 0)

  int cutConflicts() const { return cutWidthConflicts + cutSpaceConflicts; }
  /// Side-overlay length in units of w_line (the paper's unit).
  std::int64_t sideOverlayUnits(const DesignRules& r) const {
    return sideOverlayNm / r.wLine;
  }

  OverlayReport& operator+=(const OverlayReport& o);
  friend bool operator==(const OverlayReport&, const OverlayReport&) = default;
};

/// Masks plus measurement for one layer.
struct LayerDecomposition {
  Bitmap target;   ///< final metal
  Bitmap coreMask; ///< core + assistant cores after merging
  Bitmap spacer;   ///< grown spacer ring
  Bitmap cut;      ///< cut mask
  Bitmap assists;  ///< assistant-core material (after clipping/trimming)
  Bitmap bridges;  ///< merge-technique bridge fills
  /// k-patterning exposure planes (one metal plane per color), filled only
  /// by k>2 synthesizers (PatterningSynthesizer); empty for the SADP cut
  /// process, whose planes are the named bitmaps above. maskFingerprint
  /// folds these only when present so SADP fingerprints are unchanged.
  std::vector<Bitmap> masks;
  /// nm bounding boxes of each cut-conflict region (width and space).
  std::vector<Rect> conflictBoxesNm;
  /// nm bounding boxes of each hard (longer than w_line) side overlay.
  std::vector<Rect> hardOverlayBoxesNm;
  OverlayReport report;
  Rect windowNm;   ///< nm box the rasters cover
  int pxPerNm10 = 1;  ///< raster resolution: 1 px = 10 nm
};

/// Identity of the built-in SADP cut-process synthesis (the decomposeLayer
/// pipeline in this file). A DecomposeOptions::synth that reports this id
/// -- or a null synth -- takes the built-in path; mask-cache keys absorb
/// the id either way, so null and an explicit SADP backend share entries.
inline constexpr std::uint64_t kSadpCutSynthId = 0x5adc'0c75'0002'0001ull;

struct DecomposeOptions;

/// Mask-synthesis strategy of a patterning backend (DESIGN.md §5.13).
/// Defined here (not in src/patterning) so the decomposition layer can
/// dispatch without depending on the backend library: PatterningBackend
/// derives from this, sadp_patterning links sadp_sadp, and the dependency
/// arrow stays one-directional.
class PatterningSynthesizer {
 public:
  virtual ~PatterningSynthesizer() = default;
  /// Stable identity folded into MaskCache keys. Must change whenever
  /// synthesize() output could change for identical inputs.
  virtual std::uint64_t synthId() const = 0;
  /// Number of exposure planes synthesize() emits in LayerDecomposition::
  /// masks (0 for the SADP cut process, which uses the named planes).
  virtual int maskCount() const = 0;
  /// Builds the layer's mask planes and measurement. Must NOT consult
  /// opts.synth (the caller already dispatched) and must be deterministic.
  virtual LayerDecomposition synthesize(std::span<const ColoredFragment> frags,
                                        const DesignRules& rules,
                                        const DecomposeOptions& opts) const = 0;
};

struct DecomposeOptions {
  bool insertAssists = true;  ///< grow assistant cores for second patterns
  bool mergeCores = true;     ///< apply the merge technique
  /// Overlay-aware assist trimming: when a merge involving a sacrificial
  /// assist would damage third-party metal, trim the assist instead.
  /// Disabled to reconstruct routers that merge assists without overlay
  /// control ([16], Fig. 22).
  bool trimAssists = true;
  Nm margin = 120;            ///< nm of empty field kept around the window
  /// Column-band width of the tiled morphology passes, in 64-px raster
  /// words. > 0: fixed band width; 0 (default): automatic — 8-word bands
  /// once the window is at least 16 words wide, whole-window below that;
  /// < 0: tiling disabled (the whole-window reference path). Every value
  /// produces byte-identical masks and reports; the knob only changes how
  /// the work is split into nested parallelFor items (DESIGN.md §5.6).
  int tileWords = 0;
  /// Band-to-worker assignment policy of the tiled passes. Dynamic (the
  /// default) weighs each band by a linear cost model over its word area
  /// and population (see costHints) and schedules the weighted bands
  /// work-stealing; Static keeps the shared-cursor assignment. Output is
  /// byte-identical either way (CLI `--schedule static|dynamic`).
  BandSchedule schedule = BandSchedule::Dynamic;
  /// Cost model of the dynamic scheduler; null = the run context's hints
  /// (RunContext::costHints(), typically installed from a previous traced
  /// run via fitCostHints), themselves falling back to built-in defaults
  /// when empty. Hints reorder work assignment only, never results.
  const CostHints* costHints = nullptr;
  /// Run context the decomposition reports metrics/spans into and draws
  /// parallel workers from; null = the calling thread's bound context.
  RunContext* ctx = nullptr;
  /// Optional shared result cache (sadp/mask_cache.hpp). A hit returns a
  /// byte-identical plane without recomputation; a miss computes and
  /// inserts. Hit/miss land on the ctx counters mask_cache.hits/.misses.
  MaskCache* cache = nullptr;
  /// Mask-synthesis strategy. Null or an object whose synthId() ==
  /// kSadpCutSynthId takes the built-in SADP cut-process pipeline below;
  /// anything else is dispatched to synth->synthesize() (under the same
  /// cache, whose key absorbs the synth identity).
  const PatterningSynthesizer* synth = nullptr;
};

/// Synthesizes and measures one layer. Fragments are in track coordinates
/// under `rules` (pitch = w_line + w_spacer); colors Unassigned default to
/// Core. The raster window is the fragments' bounding box plus margin.
LayerDecomposition decomposeLayer(std::span<const ColoredFragment> frags,
                                  const DesignRules& rules,
                                  const DecomposeOptions& opts = {});

/// Copy-free variant for read-only consumers: a cache hit hands back the
/// resident plane instead of deep-copying megabytes of bitmaps (the warm
/// ECO path does hundreds of windowed lookups per edit).
std::shared_ptr<const LayerDecomposition> decomposeLayerShared(
    std::span<const ColoredFragment> frags, const DesignRules& rules,
    const DecomposeOptions& opts = {});

/// Order-sensitive 64-bit digest over all six mask planes and the window
/// box — the byte-identity witness the ECO correctness bar compares
/// (service sessions report it per layer; the fuzz suite equates ECO
/// replays with cold routes through it).
std::uint64_t maskFingerprint(const LayerDecomposition& d);

/// Metal rectangle (nm) of a fragment under the given rules.
Rect fragmentMetalNm(const Fragment& f, const DesignRules& rules);

/// Maximal-rectangle decomposition of a raster region (row slabs merged
/// vertically), returned in nm using the window the raster covers.
std::vector<Rect> rasterToNmRects(const Bitmap& b, const Rect& windowNm);

/// Cut-spacing MRC kernel (Fig. 15(b)): pixels of an axis-aligned gap
/// between two consecutive `cut` runs narrower than `minGapPx`, restricted
/// to where the gap crosses `target` metal. Both axes run word-parallel:
/// rows via run extraction over the packed words, columns by transposing
/// the rasters, rerunning the row pass, and transposing back.
Bitmap narrowGapFlags(const Bitmap& cut, const Bitmap& target, int minGapPx);

/// Fits the dynamic band scheduler's cost model from a completed run
/// traced at TraceLevel::Full. Every decompose.tile span carries its
/// band's input population as the span arg, so a least-squares fit of
/// span duration against population yields nsPerSetPx (the slope,
/// clamped at 0), and the per-band intercept divided by the mean band
/// word area (decompose.tile_area_words / decompose.tiles counters)
/// yields nsPerWord. Returns an empty CostHints -- "keep the defaults"
/// -- when the run has fewer than two band spans or no tiled work.
/// Install the result for the next run via RunContext::setCostHints or
/// DecomposeOptions::costHints.
CostHints fitCostHints(const RunContext& ctx);

}  // namespace sadp
