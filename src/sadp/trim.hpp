// SADP trim-process decomposition (paper Fig. 1(c)) -- the process the
// baselines [10] and [11] target.
//
// In the trim process the final metal is the region NOT covered by spacer
// but COVERED by the trim mask: core patterns print from the core mask
// (ringed by spacers), second patterns are openings of the trim mask.
// Unlike the cut process there is no merge technique: two patterns closer
// than the coloring distance simply cannot be printed (odd cycles are
// undecomposable), and every second-pattern boundary not abutting a spacer
// is defined by the trim mask -- an overlay.
//
// Differences from the cut-process synthesizer that matter for metrics:
//   - no assistant cores, no merging/bridging;
//   - "trim conflicts" (the #C column of Table III for [11]) are minimum
//     spacing violations between trim openings of different patterns
//     (classically at parallel line ends) and unmergeable sub-d_core core
//     pairs.
#pragma once

#include <span>

#include "sadp/decompose.hpp"

namespace sadp {

struct TrimReport {
  std::int64_t sideOverlayNm = 0;  ///< trim-defined side boundary length
  int sideOverlaySections = 0;
  int hardOverlays = 0;            ///< sections longer than w_line
  int tipOverlays = 0;
  int trimSpaceConflicts = 0;      ///< trim openings closer than d_cut
  int coreSpaceConflicts = 0;      ///< unmergeable sub-d_core core pairs

  int conflicts() const { return trimSpaceConflicts + coreSpaceConflicts; }
};

struct TrimDecomposition {
  Bitmap target;
  Bitmap coreMask;
  Bitmap spacer;
  Bitmap trimMask;  ///< openings that print the second patterns
  TrimReport report;
  Rect windowNm;
};

/// Synthesizes and measures one layer under the trim process. Fragment
/// colors map Core -> core mask, Second -> trim opening.
TrimDecomposition decomposeTrimLayer(std::span<const ColoredFragment> frags,
                                     const DesignRules& rules,
                                     Nm margin = 120);

}  // namespace sadp
