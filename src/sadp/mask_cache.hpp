// Fingerprint-keyed LRU cache over whole decomposeLayer results
// (DESIGN.md §5.11).
//
// The decomposition is a pure function of (fragment sequence, design
// rules, the output-affecting options). Tiling width, band schedule, cost
// hints and the bound RunContext are byte-identity-neutral by the repo's
// fuzz-enforced determinism contract, so they are deliberately EXCLUDED
// from the key: a request tiled differently still hits. Keys are 128-bit
// content digests; collisions are assumed negligible and the honesty test
// (tests/test_mask_cache.cpp) pins the contract that a key hit returns a
// byte-identical plane.
//
// The cache is shared across sessions and threads (one mutex; entries are
// immutable shared_ptrs so readers keep hits alive across evictions) and
// evicts least-recently-used entries beyond a byte budget.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "sadp/decompose.hpp"

namespace sadp {

/// 128-bit content digest identifying one decomposition input.
struct MaskCacheKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const MaskCacheKey&, const MaskCacheKey&) = default;
};

struct MaskCacheKeyHash {
  std::size_t operator()(const MaskCacheKey& k) const {
    return std::size_t(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
  }
};

/// Digest of everything decomposeLayer's OUTPUT depends on: the exact
/// fragment sequence (coords, net, color), every DesignRules field, and
/// the output-affecting DecomposeOptions (insertAssists, mergeCores,
/// trimAssists, margin).
MaskCacheKey maskCacheKey(std::span<const ColoredFragment> frags,
                          const DesignRules& rules,
                          const DecomposeOptions& opts);

struct MaskCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t entries = 0;
  std::int64_t bytes = 0;
};

class MaskCache {
 public:
  static constexpr std::size_t kDefaultMaxBytes = 256ull << 20;  // 256 MiB

  explicit MaskCache(std::size_t maxBytes = kDefaultMaxBytes)
      : maxBytes_(maxBytes) {}

  MaskCache(const MaskCache&) = delete;
  MaskCache& operator=(const MaskCache&) = delete;

  /// Returns the cached plane (bumping it most-recently-used) or null.
  std::shared_ptr<const LayerDecomposition> lookup(const MaskCacheKey& key);

  /// Inserts (or refreshes) an entry, then evicts LRU entries until the
  /// byte budget holds. An entry larger than the whole budget is still
  /// admitted alone (callers own a shared_ptr; memory stays bounded).
  /// Returns the resident entry: the inserted value, or -- on a concurrent
  /// double-compute -- the byte-identical one that got there first.
  std::shared_ptr<const LayerDecomposition> insert(const MaskCacheKey& key,
                                                   LayerDecomposition value);

  MaskCacheStats stats() const;
  void clear();

 private:
  struct Entry {
    MaskCacheKey key;
    std::shared_ptr<const LayerDecomposition> value;
    std::size_t bytes = 0;
  };

  static std::size_t approxBytes(const LayerDecomposition& d);
  void evictOverBudgetLocked();

  const std::size_t maxBytes_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<MaskCacheKey, std::list<Entry>::iterator,
                     MaskCacheKeyHash>
      index_;
  std::size_t bytes_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace sadp
