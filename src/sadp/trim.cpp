#include "sadp/trim.hpp"

#include <algorithm>

namespace sadp {

namespace {
constexpr int kPxNm = 10;
}  // namespace

TrimDecomposition decomposeTrimLayer(std::span<const ColoredFragment> frags,
                                     const DesignRules& rules, Nm margin) {
  TrimDecomposition out;
  Rect bbox;
  for (const ColoredFragment& cf : frags) {
    bbox = bbox.unionWith(fragmentMetalNm(cf.frag, rules));
  }
  if (bbox.empty()) bbox = Rect{0, 0, kPxNm, kPxNm};
  bbox = bbox.inflated(std::max<Nm>(margin, rules.pitch()));
  bbox.xlo -= bbox.xlo % kPxNm;
  bbox.ylo -= bbox.ylo % kPxNm;
  out.windowNm = bbox;
  const int w = int((bbox.xhi - bbox.xlo + kPxNm - 1) / kPxNm);
  const int h = int((bbox.yhi - bbox.ylo + kPxNm - 1) / kPxNm);
  auto toX = [&](Nm nm) { return int((nm - bbox.xlo) / kPxNm); };
  auto toY = [&](Nm nm) { return int((nm - bbox.ylo) / kPxNm); };

  Bitmap target(w, h), core(w, h), trim(w, h);
  struct Shape {
    Rect nm;
    NetId net;
    bool isCore;
  };
  std::vector<Shape> shapes;
  for (const ColoredFragment& cf : frags) {
    const Rect m = fragmentMetalNm(cf.frag, rules);
    target.fillRect(toX(m.xlo), toY(m.ylo), toX(m.xhi), toY(m.yhi));
    const bool isCore = cf.color != Color::Second;
    (isCore ? core : trim)
        .fillRect(toX(m.xlo), toY(m.ylo), toX(m.xhi), toY(m.yhi));
    shapes.push_back({m, cf.frag.net, isCore});
  }

  // Spacer: conformal ring around core shapes; never over metal.
  Bitmap spacer = core.dilated(rules.wSpacer / kPxNm);
  spacer.andNot(core);
  spacer.andNot(target);

  // ---- Overlay metering: trim-opening boundaries not abutting spacer ----
  for (const ColoredFragment& cf : frags) {
    if (cf.color != Color::Second) continue;
    const Fragment& f = cf.frag;
    const Rect m = fragmentMetalNm(f, rules);
    const int xlo = toX(m.xlo), xhi = toX(m.xhi);
    const int ylo = toY(m.ylo), yhi = toY(m.yhi);
    const bool stub = f.width() == f.height();
    const bool horiz = f.orient() == Orient::Horizontal;

    auto walk = [&](bool sidewall, int outFixed, int lo, int hi,
                    bool vertEdge) {
      int run = 0;
      bool tipHit = false;
      auto flush = [&]() {
        if (run == 0) return;
        if (sidewall) {
          ++out.report.sideOverlaySections;
          out.report.sideOverlayNm += std::int64_t(run) * kPxNm;
          if (run * kPxNm > rules.wLine) ++out.report.hardOverlays;
        } else {
          tipHit = true;
        }
        run = 0;
      };
      for (int t = lo; t < hi; ++t) {
        const int ox = vertEdge ? outFixed : t;
        const int oy = vertEdge ? t : outFixed;
        if (target.get(ox, oy)) {
          flush();
          continue;
        }
        if (!spacer.get(ox, oy)) {
          ++run;  // trim-defined boundary
        } else {
          flush();
        }
      }
      flush();
      if (!sidewall && tipHit) ++out.report.tipOverlays;
    };
    walk(horiz && !stub, yhi, xlo, xhi, false);
    walk(horiz && !stub, ylo - 1, xlo, xhi, false);
    walk(!horiz && !stub, xhi, ylo, yhi, true);
    walk(!horiz && !stub, xlo - 1, ylo, yhi, true);
  }

  // ---- Mask MRC: pairwise spacing over different nets --------------------
  const std::int64_t dCutSq = std::int64_t(rules.dCut) * rules.dCut;
  const std::int64_t dCoreSq = std::int64_t(rules.dCore) * rules.dCore;
  SpatialHash index(256);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    index.insert(shapes[i].nm, std::uint32_t(i));
  }
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const Rect window = shapes[i].nm.inflated(rules.dCore);
    index.query(window, [&](const Rect&, std::uint32_t j) {
      if (j <= i) return;
      const Shape& a = shapes[i];
      const Shape& b = shapes[j];
      if (a.net == b.net) return;
      if (a.isCore != b.isCore) return;  // opposite masks never conflict
      const std::int64_t d2 = distSq(a.nm, b.nm);
      if (d2 == 0) return;
      if (a.isCore) {
        // Core mask: no merge technique in the trim process.
        if (d2 < dCoreSq) ++out.report.coreSpaceConflicts;
      } else {
        if (d2 < dCutSq) ++out.report.trimSpaceConflicts;
      }
    });
  }

  out.target = std::move(target);
  out.coreMask = std::move(core);
  out.spacer = std::move(spacer);
  out.trimMask = std::move(trim);
  return out;
}

}  // namespace sadp
