// AVX2 implementations of the Bitmap morphology kernels (DESIGN.md §5.9).
//
// This translation unit is compiled with -mavx2 when the toolchain allows
// it (see src/sadp/CMakeLists.txt); nothing here executes unless runtime
// dispatch -- CPUID plus SADP_FORCE_SCALAR / setBitmapSimdLevel() -- has
// confirmed AVX2 support, so file-level codegen flags are safe. Every
// kernel is bit-for-bit identical to its scalar reference in bitmap.cpp,
// enforced by the property suite in tests/test_bitmap_simd.cpp.
#include "sadp/bitmap_kernels.hpp"

#if defined(SADP_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <algorithm>
#include <cstring>
#include <vector>

namespace sadp::detail {

namespace {

/// The words [j, j+4) of the row shifted right by d pixels: word j of the
/// result holds in[x + d] for x in [64j, 64j + 64). `row` points into a
/// zero-padded buffer, so the straddling loads need no bounds checks; the
/// arithmetic `>> 6` floor-divide makes one formula cover both shift
/// directions.
inline __m256i shiftedWords(const std::uint64_t* row, int j, int d) {
  const int wo = d >> 6;
  const int bo = d & 63;
  const std::uint64_t* p = row + j + wo;
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  if (bo != 0) {
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 1));
    v = _mm256_or_si256(_mm256_srl_epi64(v, _mm_cvtsi32_si128(bo)),
                        _mm256_sll_epi64(hi, _mm_cvtsi32_si128(64 - bo)));
  }
  return v;
}

/// Scalar single-word tail of shiftedWords.
inline std::uint64_t shiftedWord(const std::uint64_t* row, int j, int d) {
  const int wo = d >> 6;
  const int bo = d & 63;
  const std::uint64_t* p = row + j + wo;
  std::uint64_t v = p[0];
  if (bo != 0) v = (v >> bo) | (p[1] << (64 - bo));
  return v;
}

void avx2FilterRows(const std::uint64_t* in, std::uint64_t* out, int h,
                    int wpr, std::uint64_t tail, int lo, int hi, bool isAnd) {
  // Zero padding wide enough for every straddling load of shiftedWords:
  // word offsets span [lo >> 6, (hi >> 6) + 1] plus the +1 high word.
  const int maxAbs = std::max(std::abs(lo), std::abs(hi));
  const int pad = (maxAbs >> 6) + 2;
  std::vector<std::uint64_t> buf(std::size_t(wpr) + 2 * std::size_t(pad), 0);
  std::uint64_t* row = buf.data() + pad;
  for (int y = 0; y < h; ++y) {
    std::memcpy(row, in + std::size_t(y) * wpr,
                std::size_t(wpr) * sizeof(std::uint64_t));
    std::uint64_t* dst = out + std::size_t(y) * wpr;
    int j = 0;
    for (; j + 4 <= wpr; j += 4) {
      __m256i acc = shiftedWords(row, j, lo);
      if (isAnd) {
        for (int d = lo + 1; d <= hi; ++d) {
          acc = _mm256_and_si256(acc, shiftedWords(row, j, d));
        }
      } else {
        for (int d = lo + 1; d <= hi; ++d) {
          acc = _mm256_or_si256(acc, shiftedWords(row, j, d));
        }
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j), acc);
    }
    for (; j < wpr; ++j) {
      std::uint64_t acc = shiftedWord(row, j, lo);
      for (int d = lo + 1; d <= hi; ++d) {
        if (isAnd) {
          acc &= shiftedWord(row, j, d);
        } else {
          acc |= shiftedWord(row, j, d);
        }
      }
      dst[j] = acc;
    }
    if (wpr > 0) dst[wpr - 1] &= tail;
  }
}

void avx2FilterCols(const std::uint64_t* in, std::uint64_t* out, int h,
                    int wpr, int lo, int hi, bool isAnd) {
  for (int y = 0; y < h; ++y) {
    std::uint64_t* dst = out + std::size_t(y) * wpr;
    if (isAnd && (y + lo < 0 || y + hi >= h)) {
      std::fill(dst, dst + wpr, 0);  // AND window reads past the raster
      continue;
    }
    const int k0 = std::max(0, y + lo), k1 = std::min(h - 1, y + hi);
    if (k0 > k1) {
      std::fill(dst, dst + wpr, 0);
      continue;
    }
    int j = 0;
    for (; j + 4 <= wpr; j += 4) {
      __m256i acc = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(in + std::size_t(k0) * wpr + j));
      if (isAnd) {
        for (int k = k0 + 1; k <= k1; ++k) {
          acc = _mm256_and_si256(
              acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                       in + std::size_t(k) * wpr + j)));
        }
      } else {
        for (int k = k0 + 1; k <= k1; ++k) {
          acc = _mm256_or_si256(
              acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                       in + std::size_t(k) * wpr + j)));
        }
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + j), acc);
    }
    for (; j < wpr; ++j) {
      std::uint64_t acc = in[std::size_t(k0) * wpr + j];
      for (int k = k0 + 1; k <= k1; ++k) {
        if (isAnd) {
          acc &= in[std::size_t(k) * wpr + j];
        } else {
          acc |= in[std::size_t(k) * wpr + j];
        }
      }
      dst[j] = acc;
    }
  }
}

/// One swap stage of the 64 x 64 bit transpose for block distance J >= 4:
/// the paired rows k and k+J live in different vectors, so four rows go
/// through the scalar butterfly (t = ((a[k] >> J) ^ a[k+J]) & m;
/// a[k+J] ^= t; a[k] ^= t << J) at once.
template <int J>
inline void stageWide(std::uint64_t* a, __m256i mv) {
  static_assert(J >= 4);
  for (int base = 0; base < 64; base += 2 * J) {
    for (int k = base; k < base + J; k += 4) {
      __m256i av =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
      __m256i bv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k + J));
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(av, J), bv), mv);
      bv = _mm256_xor_si256(bv, t);
      av = _mm256_xor_si256(av, _mm256_slli_epi64(t, J));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k), av);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k + J), bv);
    }
  }
}

void avx2Transpose64(std::uint64_t a[64]) {
  // Same butterfly network as scalarTranspose64, four rows per vector.
  // Stages J >= 4 pair rows across vectors (stageWide); stages J = 2 and
  // J = 1 pair rows inside one vector, handled with lane permutes: build
  // t in the low lane of each pair, then XOR t << J into the low lanes
  // and t into the high lanes via a 32-bit blend.
  __m256i m = _mm256_set1_epi64x(0x00000000FFFFFFFFll);
  stageWide<32>(a, m);
  m = _mm256_set1_epi64x(0x0000FFFF0000FFFFll);
  stageWide<16>(a, m);
  m = _mm256_set1_epi64x(0x00FF00FF00FF00FFll);
  stageWide<8>(a, m);
  m = _mm256_set1_epi64x(0x0F0F0F0F0F0F0F0Fll);
  stageWide<4>(a, m);

  // J = 2: lanes (0,1) pair with (2,3) inside each vector of 4 rows.
  m = _mm256_set1_epi64x(0x3333333333333333ll);
  for (int k = 0; k < 64; k += 4) {
    __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    // pv = [a2, a3, a0, a1]: partner rows into every lane.
    const __m256i pv = _mm256_permute4x64_epi64(av, 0x4E);
    // Valid in lanes 0,1: t = ((a[k] >> 2) ^ a[k+2]) & m.
    const __m256i t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(av, 2), pv), m);
    // tl = [t0, t1, t0, t1]; low lanes get t << 2, high lanes get t.
    const __m256i tl = _mm256_permute4x64_epi64(t, 0x44);
    av = _mm256_xor_si256(
        av, _mm256_blend_epi32(_mm256_slli_epi64(tl, 2), tl, 0xF0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k), av);
  }

  // J = 1: lane 0 pairs with 1, lane 2 with 3.
  m = _mm256_set1_epi64x(0x5555555555555555ll);
  for (int k = 0; k < 64; k += 4) {
    __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    // pv = [a1, a0, a3, a2].
    const __m256i pv = _mm256_permute4x64_epi64(av, 0xB1);
    // Valid in lanes 0 and 2.
    const __m256i t = _mm256_and_si256(
        _mm256_xor_si256(_mm256_srli_epi64(av, 1), pv), m);
    // tl = [t0, t0, t2, t2]; even lanes get t << 1, odd lanes get t.
    const __m256i tl = _mm256_permute4x64_epi64(t, 0xA0);
    av = _mm256_xor_si256(
        av, _mm256_blend_epi32(_mm256_slli_epi64(tl, 1), tl, 0xCC));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + k), av);
  }
}

}  // namespace

const BitmapKernels kAvx2Kernels{&avx2FilterRows, &avx2FilterCols,
                                 &avx2Transpose64};

}  // namespace sadp::detail

#else  // toolchain or architecture cannot produce AVX2 code

namespace sadp::detail {

// Alias the scalar reference so dispatch tables stay well-formed; runtime
// selection never picks this table unless CPUID reported AVX2, which
// cannot happen on these builds anyway.
const BitmapKernels kAvx2Kernels{&scalarFilterRows, &scalarFilterCols,
                                 &scalarTranspose64};

}  // namespace sadp::detail

#endif
