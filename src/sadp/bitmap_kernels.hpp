// Internal kernel table for Bitmap's word-parallel morphology primitives
// (DESIGN.md §5.9). The three hot kernels -- the separable row/column
// OR/AND filters behind dilate/erode/open and the 64 x 64 in-register bit
// transpose -- exist in a scalar form (always available, the semantic
// reference) and an AVX2 form compiled in bitmap_simd.cpp. Dispatch is
// resolved at runtime from CPUID, the SADP_FORCE_SCALAR environment
// variable, and the setBitmapSimdLevel() override; both forms are
// byte-identical by contract, property-tested in tests/test_bitmap_simd.cpp.
#pragma once

#include <cstdint>

namespace sadp::detail {

struct BitmapKernels {
  /// 1-D OR/AND filter along rows: out[x] = op over d in [lo, hi] of
  /// in[x + d] per row, pixels beyond the row reading as unset; the last
  /// word of each output row is masked with `tail`.
  void (*filterRows)(const std::uint64_t* in, std::uint64_t* out, int h,
                     int wpr, std::uint64_t tail, int lo, int hi, bool isAnd);
  /// 1-D OR/AND filter along columns, word-wise across rows; rows beyond
  /// the raster read as unset.
  void (*filterCols)(const std::uint64_t* in, std::uint64_t* out, int h,
                     int wpr, int lo, int hi, bool isAnd);
  /// In-place transpose of a 64 x 64 bit block stored LSB-first.
  void (*transpose64)(std::uint64_t a[64]);
};

void scalarFilterRows(const std::uint64_t* in, std::uint64_t* out, int h,
                      int wpr, std::uint64_t tail, int lo, int hi, bool isAnd);
void scalarFilterCols(const std::uint64_t* in, std::uint64_t* out, int h,
                      int wpr, int lo, int hi, bool isAnd);
void scalarTranspose64(std::uint64_t a[64]);

extern const BitmapKernels kScalarKernels;
/// AVX2 implementations (bitmap_simd.cpp); aliases the scalar kernels when
/// the toolchain or target architecture cannot produce AVX2 code.
extern const BitmapKernels kAvx2Kernels;

/// The table Bitmap methods currently dispatch through (atomic; resolved
/// lazily on first use).
const BitmapKernels& activeKernels();

}  // namespace sadp::detail
