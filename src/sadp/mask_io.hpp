// Mask export: extracts the synthesized mask layers as rectangle lists and
// writes them in a simple text format a downstream tool (or test) can read
// back. Rect extraction reuses the raster slab decomposition, so the
// rectangles exactly cover the pixel geometry.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sadp/decompose.hpp"

namespace sadp {

/// Named mask levels of one decomposed layer.
enum class MaskLevel : std::uint8_t { Target, CoreMask, Spacer, CutMask };

const char* toString(MaskLevel level);

/// Rectangles (nm) exactly covering one mask level of a decomposition.
std::vector<Rect> extractMaskRects(const LayerDecomposition& d,
                                   MaskLevel level);

/// Writes all four mask levels as "level xlo ylo xhi yhi" lines with a
/// small header ("sadp-masks v1 <layer> <rect-count>"). k-patterning
/// exposure planes (LayerDecomposition::masks), when present, follow as
/// "mask<i>" lines; SADP decompositions have none, so their files are
/// byte-identical to the pre-backend format.
void writeMasks(std::ostream& os, const LayerDecomposition& d, int layer);

/// Parsed form of the writeMasks output.
struct MaskFile {
  int layer = 0;
  std::vector<std::pair<MaskLevel, Rect>> rects;
  /// k-patterning exposure rects by (plane index, rect); empty for SADP.
  std::vector<std::pair<int, Rect>> exposures;

  std::vector<Rect> level(MaskLevel l) const;
  /// Rects of one exposure plane.
  std::vector<Rect> exposure(int plane) const;
};

/// Parses the writeMasks format; throws std::runtime_error on bad input.
MaskFile readMasks(std::istream& is);

}  // namespace sadp
