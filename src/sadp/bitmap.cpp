#include "sadp/bitmap.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "sadp/bitmap_kernels.hpp"

namespace sadp {

std::size_t Bitmap::count() const {
  std::size_t n = 0;
  for (const std::uint64_t w : words_) n += std::size_t(std::popcount(w));
  return n;
}

std::vector<std::int64_t> Bitmap::wordColumnPopcountPrefix() const {
  std::vector<std::int64_t> pre(std::size_t(wpr_) + 1, 0);
  for (int y = 0; y < h_; ++y) {
    const std::uint64_t* row = words_.data() + std::size_t(y) * wpr_;
    for (int j = 0; j < wpr_; ++j) {
      pre[std::size_t(j) + 1] += std::popcount(row[j]);
    }
  }
  for (int j = 0; j < wpr_; ++j) {
    pre[std::size_t(j) + 1] += pre[std::size_t(j)];
  }
  return pre;
}

void Bitmap::fillRect(int xlo, int ylo, int xhi, int yhi, bool v) {
  xlo = std::max(xlo, 0);
  ylo = std::max(ylo, 0);
  xhi = std::min(xhi, w_);
  yhi = std::min(yhi, h_);
  if (xlo >= xhi || ylo >= yhi) return;
  const int j0 = xlo >> 6, j1 = (xhi - 1) >> 6;
  const std::uint64_t first = ~std::uint64_t(0) << (xlo & 63);
  const std::uint64_t last = (xhi & 63)
                                 ? (std::uint64_t(1) << (xhi & 63)) - 1
                                 : ~std::uint64_t(0);
  for (int y = ylo; y < yhi; ++y) {
    std::uint64_t* row = words_.data() + std::size_t(y) * wpr_;
    if (j0 == j1) {
      const std::uint64_t m = first & last;
      if (v) {
        row[j0] |= m;
      } else {
        row[j0] &= ~m;
      }
      continue;
    }
    if (v) {
      row[j0] |= first;
      for (int j = j0 + 1; j < j1; ++j) row[j] = ~std::uint64_t(0);
      row[j1] |= last;
    } else {
      row[j0] &= ~first;
      for (int j = j0 + 1; j < j1; ++j) row[j] = 0;
      row[j1] &= ~last;
    }
  }
}

bool Bitmap::anyInRect(int xlo, int ylo, int xhi, int yhi) const {
  xlo = std::max(xlo, 0);
  ylo = std::max(ylo, 0);
  xhi = std::min(xhi, w_);
  yhi = std::min(yhi, h_);
  if (xlo >= xhi || ylo >= yhi) return false;
  const int j0 = xlo >> 6, j1 = (xhi - 1) >> 6;
  const std::uint64_t first = ~std::uint64_t(0) << (xlo & 63);
  const std::uint64_t last = (xhi & 63)
                                 ? (std::uint64_t(1) << (xhi & 63)) - 1
                                 : ~std::uint64_t(0);
  for (int y = ylo; y < yhi; ++y) {
    const std::uint64_t* row = words_.data() + std::size_t(y) * wpr_;
    if (j0 == j1) {
      if (row[j0] & first & last) return true;
      continue;
    }
    if (row[j0] & first) return true;
    for (int j = j0 + 1; j < j1; ++j) {
      if (row[j]) return true;
    }
    if (row[j1] & last) return true;
  }
  return false;
}

namespace {

void checkSameDims(const Bitmap& a, const Bitmap& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("Bitmap op: dimension mismatch");
  }
}

}  // namespace

Bitmap& Bitmap::operator|=(const Bitmap& o) {
  checkSameDims(*this, o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

Bitmap& Bitmap::operator&=(const Bitmap& o) {
  checkSameDims(*this, o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

Bitmap& Bitmap::andNot(const Bitmap& o) {
  checkSameDims(*this, o);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

Bitmap& Bitmap::invert() {
  const std::uint64_t tail = tailMask();
  for (int y = 0; y < h_; ++y) {
    std::uint64_t* row = words_.data() + std::size_t(y) * wpr_;
    for (int j = 0; j < wpr_; ++j) row[j] = ~row[j];
    if (wpr_ > 0) row[wpr_ - 1] &= tail;
  }
  return *this;
}

namespace detail {

namespace {

/// out[x] = in[x + d] within one packed row, zero-filling beyond the row.
void shiftRowInto(const std::uint64_t* in, std::uint64_t* out, int wpr,
                  int d) {
  if (d == 0) {
    std::copy(in, in + wpr, out);
    return;
  }
  if (d > 0) {
    const int wo = d >> 6, bo = d & 63;
    for (int j = 0; j < wpr; ++j) {
      const int s = j + wo;
      std::uint64_t v = (s < wpr) ? (in[s] >> bo) : 0;
      if (bo && s + 1 < wpr) v |= in[s + 1] << (64 - bo);
      out[j] = v;
    }
  } else {
    const int wo = (-d) >> 6, bo = (-d) & 63;
    for (int j = wpr - 1; j >= 0; --j) {
      const int s = j - wo;
      std::uint64_t v = (s >= 0) ? (in[s] << bo) : 0;
      if (bo && s >= 1) v |= in[s - 1] >> (64 - bo);
      out[j] = v;
    }
  }
}

}  // namespace

/// 1-D OR/AND filter along rows: out[x] = op over d in [lo,hi] of in[x+d],
/// with pixels beyond the row reading as unset.
void scalarFilterRows(const std::uint64_t* in, std::uint64_t* out, int h,
                      int wpr, std::uint64_t tail, int lo, int hi,
                      bool isAnd) {
  std::vector<std::uint64_t> tmp(std::size_t(wpr), 0);
  for (int y = 0; y < h; ++y) {
    const std::uint64_t* src = in + std::size_t(y) * wpr;
    std::uint64_t* dst = out + std::size_t(y) * wpr;
    shiftRowInto(src, dst, wpr, lo);
    for (int d = lo + 1; d <= hi; ++d) {
      shiftRowInto(src, tmp.data(), wpr, d);
      if (isAnd) {
        for (int j = 0; j < wpr; ++j) dst[j] &= tmp[j];
      } else {
        for (int j = 0; j < wpr; ++j) dst[j] |= tmp[j];
      }
    }
    if (wpr > 0) dst[wpr - 1] &= tail;
  }
}

/// 1-D OR/AND filter along columns, word-wise across each row.
void scalarFilterCols(const std::uint64_t* in, std::uint64_t* out, int h,
                      int wpr, int lo, int hi, bool isAnd) {
  for (int y = 0; y < h; ++y) {
    std::uint64_t* dst = out + std::size_t(y) * wpr;
    if (isAnd && (y + lo < 0 || y + hi >= h)) {
      // An out-of-raster row reads as unset: the AND window is empty.
      std::fill(dst, dst + wpr, 0);
      continue;
    }
    const int k0 = std::max(0, y + lo), k1 = std::min(h - 1, y + hi);
    if (k0 > k1) {
      std::fill(dst, dst + wpr, 0);
      continue;
    }
    std::copy(in + std::size_t(k0) * wpr, in + std::size_t(k0) * wpr + wpr,
              dst);
    for (int k = k0 + 1; k <= k1; ++k) {
      const std::uint64_t* src = in + std::size_t(k) * wpr;
      if (isAnd) {
        for (int j = 0; j < wpr; ++j) dst[j] &= src[j];
      } else {
        for (int j = 0; j < wpr; ++j) dst[j] |= src[j];
      }
    }
  }
}

const BitmapKernels kScalarKernels{&scalarFilterRows, &scalarFilterCols,
                                   &scalarTranspose64};

namespace {

bool probeAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// Resolution for SimdLevel::Auto: the SADP_FORCE_SCALAR escape hatch
/// wins, then CPUID.
const BitmapKernels* resolveAuto() {
  if (const char* env = std::getenv("SADP_FORCE_SCALAR");
      env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    return &kScalarKernels;
  }
  return probeAvx2() ? &kAvx2Kernels : &kScalarKernels;
}

std::atomic<const BitmapKernels*> g_kernels{nullptr};

}  // namespace

const BitmapKernels& activeKernels() {
  const BitmapKernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = resolveAuto();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

}  // namespace detail

bool cpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void setBitmapSimdLevel(SimdLevel lvl) {
  const detail::BitmapKernels* k = nullptr;
  switch (lvl) {
    case SimdLevel::Scalar: k = &detail::kScalarKernels; break;
    case SimdLevel::Avx2:
      k = cpuSupportsAvx2() ? &detail::kAvx2Kernels : &detail::kScalarKernels;
      break;
    case SimdLevel::Auto: k = nullptr; break;
  }
  if (k == nullptr) {
    // Defer to activeKernels()'s lazy Auto resolution (env + CPUID).
    detail::g_kernels.store(nullptr, std::memory_order_release);
    detail::activeKernels();
  } else {
    detail::g_kernels.store(k, std::memory_order_release);
  }
}

SimdLevel activeBitmapSimdLevel() {
  return &detail::activeKernels() == &detail::kAvx2Kernels ? SimdLevel::Avx2
                                                           : SimdLevel::Scalar;
}

Bitmap Bitmap::dilated(int r) const {
  assert(r >= 0);
  if (r == 0) return *this;
  const detail::BitmapKernels& k = detail::activeKernels();
  Bitmap mid(w_, h_), out(w_, h_);
  k.filterRows(words_.data(), mid.words_.data(), h_, wpr_, tailMask(), -r, r,
               /*isAnd=*/false);
  k.filterCols(mid.words_.data(), out.words_.data(), h_, wpr_, -r, r,
               /*isAnd=*/false);
  return out;
}

Bitmap Bitmap::eroded(int r) const {
  assert(r >= 0);
  if (r == 0) return *this;
  // Erosion = complement of dilation of the complement; pixels outside the
  // raster read as set, so a full bitmap stays full.
  Bitmap inv = *this;
  inv.invert();
  Bitmap d = inv.dilated(r);
  d.invert();
  return d;
}

Bitmap Bitmap::openedAnchored(int k) const {
  assert(k >= 1);
  if (k == 1) return *this;
  const detail::BitmapKernels& kn = detail::activeKernels();
  Bitmap mid(w_, h_), ero(w_, h_), dil(w_, h_), out(w_, h_);
  // Erosion over the anchored window [0, k), then dilation with the
  // reflected window (-k, 0]; both separable, borders read as unset.
  kn.filterRows(words_.data(), mid.words_.data(), h_, wpr_, tailMask(), 0,
                k - 1, true);
  kn.filterCols(mid.words_.data(), ero.words_.data(), h_, wpr_, 0, k - 1,
                true);
  kn.filterRows(ero.words_.data(), dil.words_.data(), h_, wpr_, tailMask(),
                1 - k, 0, false);
  kn.filterCols(dil.words_.data(), out.words_.data(), h_, wpr_, 1 - k, 0,
                false);
  return out;
}

namespace detail {

/// In-place transpose of a 64 x 64 bit block stored LSB-first (bit x of
/// a[y] is pixel (x, y)). Recursive block swaps: at scale j the low-column
/// half of the lower row block trades places with the high-column half of
/// the upper one; the mask update `m ^= m << j` regenerates the low-half
/// selector at each scale.
void scalarTranspose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k + j] ^= t;
      a[k] ^= t << j;
    }
  }
}

}  // namespace detail

Bitmap Bitmap::transposed() const {
  const detail::BitmapKernels& kn = detail::activeKernels();
  Bitmap out(h_, w_);
  const int outWpr = out.wpr_;
  std::uint64_t tile[64];
  const int rowBlocks = (h_ + 63) >> 6;
  for (int by = 0; by < rowBlocks; ++by) {
    const int y0 = by << 6;
    const int rows = std::min(64, h_ - y0);
    for (int bx = 0; bx < wpr_; ++bx) {
      for (int i = 0; i < rows; ++i) {
        tile[i] = words_[std::size_t(y0 + i) * wpr_ + bx];
      }
      std::fill(tile + rows, tile + 64, 0);  // rows past h_ read as unset
      kn.transpose64(tile);
      const int x0 = bx << 6;
      const int cols = std::min(64, w_ - x0);
      for (int i = 0; i < cols; ++i) {
        out.words_[std::size_t(x0 + i) * outWpr + by] = tile[i];
      }
    }
  }
  return out;
}

Bitmap Bitmap::extractWordColumns(int word0, int nWords) const {
  if (word0 < 0 || nWords <= 0 || word0 >= wpr_) {
    throw std::out_of_range("Bitmap::extractWordColumns: bad band");
  }
  nWords = std::min(nWords, wpr_ - word0);
  // The band's last word is the raster's padded tail word exactly when the
  // band reaches it, so the band width is clipped by the raster width.
  const int width = std::min(w_ - (word0 << 6), nWords << 6);
  Bitmap out(width, h_);
  for (int y = 0; y < h_; ++y) {
    const std::uint64_t* src = words_.data() + std::size_t(y) * wpr_ + word0;
    std::copy(src, src + nWords,
              out.words_.data() + std::size_t(y) * out.wpr_);
  }
  return out;
}

void Bitmap::blitWordColumns(const Bitmap& src, int srcWord0, int dstWord0,
                             int nWords) {
  if (src.h_ != h_) {
    throw std::invalid_argument("Bitmap::blitWordColumns: height mismatch");
  }
  if (srcWord0 < 0 || dstWord0 < 0 || nWords <= 0 ||
      srcWord0 + nWords > src.wpr_ || dstWord0 + nWords > wpr_) {
    throw std::out_of_range("Bitmap::blitWordColumns: bad band");
  }
  // Within the copied band, src's padded tail word (zero past src.width())
  // already reads as unset; masking the write into OUR padded tail word is
  // what preserves the destination's zero-tail invariant when the band
  // covers it.
  const std::uint64_t tail = tailMask();
  for (int y = 0; y < h_; ++y) {
    const std::uint64_t* in =
        src.words_.data() + std::size_t(y) * src.wpr_ + srcWord0;
    std::uint64_t* out = words_.data() + std::size_t(y) * wpr_ + dstWord0;
    for (int j = 0; j < nWords; ++j) {
      out[j] = (dstWord0 + j == wpr_ - 1) ? (in[j] & tail) : in[j];
    }
  }
}

bool anyNear(const Bitmap& b, int x, int y, int r) {
  return b.anyInRect(x - r, y - r, x + r + 1, y + r + 1);
}

std::uint64_t fingerprint(const Bitmap& b) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(std::uint64_t(std::uint32_t(b.width())) << 32 |
      std::uint32_t(b.height()));
  for (const std::uint64_t w : b.words()) mix(w);
  return h;
}

namespace {

/// Appends the [x0,x1) runs of set bits in one packed row.
void extractRuns(const std::uint64_t* row, int wpr, int width,
                 std::vector<std::pair<int, int>>& runs) {
  runs.clear();
  bool inRun = false;
  int start = 0;
  for (int j = 0; j < wpr; ++j) {
    const std::uint64_t cur = row[j];
    if (!inRun && cur == 0) continue;
    if (inRun && cur == ~std::uint64_t(0)) continue;
    const int base = j << 6;
    int bit = 0;
    while (bit < 64) {
      if (!inRun) {
        const std::uint64_t rest = cur >> bit;
        if (!rest) break;
        bit += std::countr_zero(rest);
        start = base + bit;
        inRun = true;
      } else {
        const std::uint64_t rest = (~cur) >> bit;
        if (!rest) break;
        bit += std::countr_zero(rest);
        runs.emplace_back(start, base + bit);
        inRun = false;
      }
    }
  }
  if (inRun) runs.emplace_back(start, width);
}

/// Row-run scan with union-find shared by componentCount /
/// componentBoxes. Runs are created in row-major order and linked to the
/// overlapping runs of the previous row (4-connectivity); the smaller root
/// always wins a union, so a component's root is its first run, i.e. its
/// first row-major pixel.
struct RunScan {
  struct RunRec {
    int x0, x1, y;
  };
  std::vector<RunRec> runs;
  std::vector<int> parent;

  int find(int i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  }
};

RunScan scanRuns(const Bitmap& b) {
  RunScan s;
  const int wpr = Bitmap::wordsPerRow(b.width());
  std::vector<std::pair<int, int>> prev, cur;
  std::vector<int> prevIds, curIds;
  for (int y = 0; y < b.height(); ++y) {
    extractRuns(b.words().data() + std::size_t(y) * wpr, wpr, b.width(), cur);
    curIds.clear();
    std::size_t p = 0;
    for (const auto& [x0, x1] : cur) {
      const int id = int(s.parent.size());
      s.parent.push_back(id);
      s.runs.push_back({x0, x1, y});
      // Two-pointer overlap match against the previous row's sorted runs.
      while (p < prev.size() && prev[p].second <= x0) ++p;
      for (std::size_t q = p; q < prev.size() && prev[q].first < x1; ++q) {
        const int ra = s.find(id), rb = s.find(prevIds[q]);
        if (ra != rb) s.parent[std::max(ra, rb)] = std::min(ra, rb);
      }
      curIds.push_back(id);
    }
    prev = cur;
    prevIds = curIds;
  }
  return s;
}

}  // namespace

void rowRuns(const Bitmap& b, int y, std::vector<std::pair<int, int>>& runs) {
  const int wpr = Bitmap::wordsPerRow(b.width());
  extractRuns(b.words().data() + std::size_t(y) * wpr, wpr, b.width(), runs);
}

std::vector<Rect> componentBoxes(const Bitmap& b) {
  RunScan s = scanRuns(b);
  std::vector<Rect> boxes;
  std::vector<int> boxOf(s.parent.size(), -1);
  for (int i = 0; i < int(s.parent.size()); ++i) {
    const int root = s.find(i);
    const auto& r = s.runs[std::size_t(i)];
    const Rect runBox{r.x0, r.y, r.x1, r.y + 1};
    if (boxOf[root] < 0) {
      boxOf[root] = int(boxes.size());
      boxes.push_back(runBox);
    } else {
      boxes[boxOf[root]] = boxes[boxOf[root]].unionWith(runBox);
    }
  }
  return boxes;
}

int componentCount(const Bitmap& b) {
  RunScan s = scanRuns(b);
  int components = 0;
  for (int i = 0; i < int(s.parent.size()); ++i) {
    if (s.find(i) == i) ++components;
  }
  return components;
}

}  // namespace sadp
