#include "sadp/bitmap.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace sadp {

std::size_t Bitmap::count() const {
  return std::size_t(
      std::count_if(px_.begin(), px_.end(), [](std::uint8_t v) { return v; }));
}

void Bitmap::fillRect(int xlo, int ylo, int xhi, int yhi, bool v) {
  xlo = std::max(xlo, 0);
  ylo = std::max(ylo, 0);
  xhi = std::min(xhi, w_);
  yhi = std::min(yhi, h_);
  for (int y = ylo; y < yhi; ++y) {
    std::fill(px_.begin() + std::size_t(y) * w_ + xlo,
              px_.begin() + std::size_t(y) * w_ + xhi, std::uint8_t(v ? 1 : 0));
  }
}

bool Bitmap::anyInRect(int xlo, int ylo, int xhi, int yhi) const {
  xlo = std::max(xlo, 0);
  ylo = std::max(ylo, 0);
  xhi = std::min(xhi, w_);
  yhi = std::min(yhi, h_);
  for (int y = ylo; y < yhi; ++y) {
    const auto row = px_.begin() + std::size_t(y) * w_;
    if (std::any_of(row + xlo, row + xhi,
                    [](std::uint8_t v) { return v != 0; })) {
      return true;
    }
  }
  return false;
}

namespace {

void checkSameDims(const Bitmap& a, const Bitmap& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("Bitmap op: dimension mismatch");
  }
}

}  // namespace

Bitmap& Bitmap::operator|=(const Bitmap& o) {
  checkSameDims(*this, o);
  for (std::size_t i = 0; i < px_.size(); ++i) px_[i] |= o.px_[i];
  return *this;
}

Bitmap& Bitmap::operator&=(const Bitmap& o) {
  checkSameDims(*this, o);
  for (std::size_t i = 0; i < px_.size(); ++i) px_[i] &= o.px_[i];
  return *this;
}

Bitmap& Bitmap::andNot(const Bitmap& o) {
  checkSameDims(*this, o);
  for (std::size_t i = 0; i < px_.size(); ++i) {
    px_[i] = std::uint8_t(px_[i] & ~o.px_[i] & 1);
  }
  return *this;
}

Bitmap& Bitmap::invert() {
  for (auto& v : px_) v = std::uint8_t(v ? 0 : 1);
  return *this;
}

namespace {

/// Separable 1-D max filter of radius r along rows (horizontal pass).
void maxRows(const std::vector<std::uint8_t>& in, std::vector<std::uint8_t>& out,
             int w, int h, int r) {
  for (int y = 0; y < h; ++y) {
    const std::size_t base = std::size_t(y) * w;
    for (int x = 0; x < w; ++x) {
      std::uint8_t m = 0;
      const int lo = std::max(0, x - r);
      const int hi = std::min(w - 1, x + r);
      for (int k = lo; k <= hi && !m; ++k) m = in[base + k];
      out[base + x] = m;
    }
  }
}

void maxCols(const std::vector<std::uint8_t>& in, std::vector<std::uint8_t>& out,
             int w, int h, int r) {
  for (int y = 0; y < h; ++y) {
    const int lo = std::max(0, y - r);
    const int hi = std::min(h - 1, y + r);
    for (int x = 0; x < w; ++x) {
      std::uint8_t m = 0;
      for (int k = lo; k <= hi && !m; ++k) m = in[std::size_t(k) * w + x];
      out[std::size_t(y) * w + x] = m;
    }
  }
}

}  // namespace

Bitmap Bitmap::dilated(int r) const {
  assert(r >= 0);
  if (r == 0) return *this;
  Bitmap tmp(w_, h_), out(w_, h_);
  std::vector<std::uint8_t> mid(px_.size());
  maxRows(px_, mid, w_, h_, r);
  std::vector<std::uint8_t> fin(px_.size());
  maxCols(mid, fin, w_, h_, r);
  out.px_ = std::move(fin);
  return out;
}

Bitmap Bitmap::eroded(int r) const {
  assert(r >= 0);
  if (r == 0) return *this;
  // Erosion = complement of dilation of the complement. Border pixels are
  // treated as unset, so eroding shrinks from the raster edge too.
  Bitmap inv = *this;
  inv.invert();
  Bitmap d = inv.dilated(r);
  d.invert();
  return d;
}

bool anyNear(const Bitmap& b, int x, int y, int r) {
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      if (b.get(x + dx, y + dy)) return true;
    }
  }
  return false;
}

std::vector<Rect> componentBoxes(const Bitmap& b) {
  const int w = b.width(), h = b.height();
  std::vector<char> seen(std::size_t(w) * h, 0);
  std::vector<Rect> boxes;
  std::vector<std::pair<int, int>> stack;
  for (int y0 = 0; y0 < h; ++y0) {
    for (int x0 = 0; x0 < w; ++x0) {
      if (!b.get(x0, y0) || seen[std::size_t(y0) * w + x0]) continue;
      Rect box{x0, y0, x0 + 1, y0 + 1};
      stack.push_back({x0, y0});
      seen[std::size_t(y0) * w + x0] = 1;
      while (!stack.empty()) {
        auto [x, y] = stack.back();
        stack.pop_back();
        box = box.unionWith(Rect{x, y, x + 1, y + 1});
        const int nx[4] = {x + 1, x - 1, x, x};
        const int ny[4] = {y, y, y + 1, y - 1};
        for (int i = 0; i < 4; ++i) {
          if (nx[i] < 0 || ny[i] < 0 || nx[i] >= w || ny[i] >= h) continue;
          auto& s = seen[std::size_t(ny[i]) * w + nx[i]];
          if (b.get(nx[i], ny[i]) && !s) {
            s = 1;
            stack.push_back({nx[i], ny[i]});
          }
        }
      }
      boxes.push_back(box);
    }
  }
  return boxes;
}

int componentCount(const Bitmap& b) {
  const int w = b.width(), h = b.height();
  std::vector<std::int32_t> label(std::size_t(w) * h, -1);
  int components = 0;
  std::vector<std::pair<int, int>> stack;
  for (int y0 = 0; y0 < h; ++y0) {
    for (int x0 = 0; x0 < w; ++x0) {
      if (!b.get(x0, y0) || label[std::size_t(y0) * w + x0] >= 0) continue;
      ++components;
      stack.push_back({x0, y0});
      label[std::size_t(y0) * w + x0] = components;
      while (!stack.empty()) {
        auto [x, y] = stack.back();
        stack.pop_back();
        const int nx[4] = {x + 1, x - 1, x, x};
        const int ny[4] = {y, y, y + 1, y - 1};
        for (int i = 0; i < 4; ++i) {
          if (nx[i] < 0 || ny[i] < 0 || nx[i] >= w || ny[i] >= h) continue;
          auto& l = label[std::size_t(ny[i]) * w + nx[i]];
          if (b.get(nx[i], ny[i]) && l < 0) {
            l = components;
            stack.push_back({nx[i], ny[i]});
          }
        }
      }
    }
  }
  return components;
}

}  // namespace sadp
