#include "sadp/mask_io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace sadp {

const char* toString(MaskLevel level) {
  switch (level) {
    case MaskLevel::Target:
      return "target";
    case MaskLevel::CoreMask:
      return "core";
    case MaskLevel::Spacer:
      return "spacer";
    case MaskLevel::CutMask:
      return "cut";
  }
  return "?";
}

namespace {

MaskLevel parseLevel(const std::string& s) {
  if (s == "target") return MaskLevel::Target;
  if (s == "core") return MaskLevel::CoreMask;
  if (s == "spacer") return MaskLevel::Spacer;
  if (s == "cut") return MaskLevel::CutMask;
  throw std::runtime_error("readMasks: unknown mask level '" + s + "'");
}

const Bitmap& levelBitmap(const LayerDecomposition& d, MaskLevel level) {
  switch (level) {
    case MaskLevel::Target:
      return d.target;
    case MaskLevel::CoreMask:
      return d.coreMask;
    case MaskLevel::Spacer:
      return d.spacer;
    case MaskLevel::CutMask:
      return d.cut;
  }
  return d.target;
}

}  // namespace

std::vector<Rect> extractMaskRects(const LayerDecomposition& d,
                                   MaskLevel level) {
  return rasterToNmRects(levelBitmap(d, level), d.windowNm);
}

void writeMasks(std::ostream& os, const LayerDecomposition& d, int layer) {
  std::vector<std::pair<MaskLevel, Rect>> all;
  for (MaskLevel level : {MaskLevel::Target, MaskLevel::CoreMask,
                          MaskLevel::Spacer, MaskLevel::CutMask}) {
    for (const Rect& r : extractMaskRects(d, level)) {
      all.emplace_back(level, r);
    }
  }
  std::vector<std::pair<int, Rect>> exposures;
  for (std::size_t i = 0; i < d.masks.size(); ++i) {
    for (const Rect& r : rasterToNmRects(d.masks[i], d.windowNm)) {
      exposures.emplace_back(int(i), r);
    }
  }
  os << "sadp-masks v1 " << layer << ' ' << all.size() + exposures.size()
     << "\n";
  for (const auto& [level, r] : all) {
    os << toString(level) << ' ' << r.xlo << ' ' << r.ylo << ' ' << r.xhi
       << ' ' << r.yhi << "\n";
  }
  for (const auto& [plane, r] : exposures) {
    os << "mask" << plane << ' ' << r.xlo << ' ' << r.ylo << ' ' << r.xhi
       << ' ' << r.yhi << "\n";
  }
}

std::vector<Rect> MaskFile::level(MaskLevel l) const {
  std::vector<Rect> out;
  for (const auto& [level, r] : rects) {
    if (level == l) out.push_back(r);
  }
  return out;
}

std::vector<Rect> MaskFile::exposure(int plane) const {
  std::vector<Rect> out;
  for (const auto& [p, r] : exposures) {
    if (p == plane) out.push_back(r);
  }
  return out;
}

MaskFile readMasks(std::istream& is) {
  std::string magic, version;
  MaskFile f;
  std::size_t count = 0;
  if (!(is >> magic >> version >> f.layer >> count) ||
      magic != "sadp-masks" || version != "v1") {
    throw std::runtime_error("readMasks: bad header");
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::string level;
    Rect r;
    if (!(is >> level >> r.xlo >> r.ylo >> r.xhi >> r.yhi)) {
      throw std::runtime_error("readMasks: truncated record");
    }
    if (level.rfind("mask", 0) == 0) {
      f.exposures.emplace_back(std::stoi(level.substr(4)), r);
    } else {
      f.rects.emplace_back(parseLevel(level), r);
    }
  }
  return f;
}

}  // namespace sadp
