// Dense binary raster at 10 nm resolution used by the cut-process mask
// synthesizer. 10 nm is the gcd of every design-rule value of the paper's
// 10 nm-node instance, so all mask geometry is pixel-exact.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geom.hpp"

namespace sadp {

/// A W x H boolean raster. Morphological operations use square (Chebyshev)
/// structuring elements, which coincide with Euclidean checks for every
/// pixel offset achievable on the 20 nm layout lattice (DESIGN.md §5.6).
class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(int width, int height) : w_(width), h_(height), px_(size_t(width) * height, 0) {}

  int width() const { return w_; }
  int height() const { return h_; }
  std::size_t count() const;  ///< number of set pixels

  bool get(int x, int y) const {
    if (x < 0 || y < 0 || x >= w_ || y >= h_) return false;
    return px_[std::size_t(y) * w_ + x] != 0;
  }
  void set(int x, int y, bool v = true) {
    if (x < 0 || y < 0 || x >= w_ || y >= h_) return;
    px_[std::size_t(y) * w_ + x] = v ? 1 : 0;
  }

  /// Sets every pixel in the half-open box [xlo,xhi) x [ylo,yhi), clipped.
  void fillRect(int xlo, int ylo, int xhi, int yhi, bool v = true);

  /// True if any pixel in the half-open box is set.
  bool anyInRect(int xlo, int ylo, int xhi, int yhi) const;

  // In-place boolean ops; operands must have identical dimensions.
  Bitmap& operator|=(const Bitmap& o);
  Bitmap& operator&=(const Bitmap& o);
  Bitmap& andNot(const Bitmap& o);
  Bitmap& invert();

  friend Bitmap operator|(Bitmap a, const Bitmap& b) { return a |= b; }
  friend Bitmap operator&(Bitmap a, const Bitmap& b) { return a &= b; }

  bool operator==(const Bitmap& o) const = default;

  /// Chebyshev dilation by radius r (square SE of edge 2r+1).
  Bitmap dilated(int r) const;
  /// Chebyshev erosion by radius r.
  Bitmap eroded(int r) const;
  /// Morphological closing: fills gaps of Chebyshev width <= 2r.
  Bitmap closed(int r) const { return dilated(r).eroded(r); }
  /// Morphological opening: removes features of Chebyshev width <= 2r.
  Bitmap opened(int r) const { return eroded(r).dilated(r); }

  const std::vector<std::uint8_t>& raw() const { return px_; }

 private:
  int w_ = 0;
  int h_ = 0;
  std::vector<std::uint8_t> px_;
};

/// True if any pixel of `b` within Chebyshev distance `r` of (x, y) is set.
bool anyNear(const Bitmap& b, int x, int y, int r);

/// Number of 4-connected components of set pixels.
int componentCount(const Bitmap& b);

/// Bounding boxes (half-open pixel coords) of the 4-connected components.
std::vector<Rect> componentBoxes(const Bitmap& b);

}  // namespace sadp
