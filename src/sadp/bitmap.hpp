// Dense binary raster at 10 nm resolution used by the cut-process mask
// synthesizer. 10 nm is the gcd of every design-rule value of the paper's
// 10 nm-node instance, so all mask geometry is pixel-exact.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geom.hpp"

namespace sadp {

/// A W x H boolean raster, bit-packed 64 pixels per word (LSB-first within
/// a word, padded row stride). Morphological operations use square
/// (Chebyshev) structuring elements, which coincide with Euclidean checks
/// for every pixel offset achievable on the 20 nm layout lattice
/// (DESIGN.md §5.6). All kernels walk whole words; the unused tail bits of
/// each row's last word are kept zero as a class invariant, so popcounts
/// and word-wise equality need no per-row masking.
class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(int width, int height)
      : w_(width),
        h_(height),
        wpr_(wordsPerRow(width)),
        words_(std::size_t(wpr_) * std::size_t(height), 0) {}

  int width() const { return w_; }
  int height() const { return h_; }
  std::size_t count() const;  ///< number of set pixels

  bool get(int x, int y) const {
    if (unsigned(x) >= unsigned(w_) || unsigned(y) >= unsigned(h_)) {
      return false;
    }
    return (words_[std::size_t(y) * wpr_ + (unsigned(x) >> 6)] >>
            (unsigned(x) & 63)) &
           1u;
  }
  void set(int x, int y, bool v = true) {
    if (unsigned(x) >= unsigned(w_) || unsigned(y) >= unsigned(h_)) return;
    std::uint64_t& word = words_[std::size_t(y) * wpr_ + (unsigned(x) >> 6)];
    const std::uint64_t bit = std::uint64_t(1) << (unsigned(x) & 63);
    if (v) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  }

  /// Sets every pixel in the half-open box [xlo,xhi) x [ylo,yhi), clipped.
  void fillRect(int xlo, int ylo, int xhi, int yhi, bool v = true);

  /// True if any pixel in the half-open box is set.
  bool anyInRect(int xlo, int ylo, int xhi, int yhi) const;

  // In-place boolean ops; operands must have identical dimensions.
  Bitmap& operator|=(const Bitmap& o);
  Bitmap& operator&=(const Bitmap& o);
  Bitmap& andNot(const Bitmap& o);
  Bitmap& invert();

  friend Bitmap operator|(Bitmap a, const Bitmap& b) { return a |= b; }
  friend Bitmap operator&(Bitmap a, const Bitmap& b) { return a &= b; }

  bool operator==(const Bitmap& o) const = default;

  /// Chebyshev dilation by radius r (square SE of edge 2r+1).
  Bitmap dilated(int r) const;
  /// Chebyshev erosion by radius r (border pixels behave as set).
  Bitmap eroded(int r) const;
  /// Morphological closing: fills gaps of Chebyshev width <= 2r.
  Bitmap closed(int r) const { return dilated(r).eroded(r); }
  /// Morphological opening: removes features of Chebyshev width <= 2r.
  Bitmap opened(int r) const { return eroded(r).dilated(r); }

  /// The H x W transpose: pixel (x, y) maps to (y, x). Runs 64 x 64 bit
  /// blocks through a word-parallel in-register transpose, so column
  /// structure becomes row structure at word speed; the zero-tail invariant
  /// of the input doubles as the zero padding of the output.
  Bitmap transposed() const;

  /// Opening with a k x k structuring element anchored at its top-left
  /// corner (erosion over [x,x+k) x [y,y+k), then dilation with the
  /// reflected element). An opening is invariant under SE translation, so
  /// for odd k this equals opened((k-1)/2); the anchored form also handles
  /// even k, which has no centered counterpart on the pixel lattice
  /// (DESIGN.md §5.6). Border pixels behave as unset.
  Bitmap openedAnchored(int k) const;

  /// The column band [64*word0, 64*(word0+nWords)) as a standalone bitmap
  /// (full height), clipped to width(): pure word copies, no bit shifts.
  /// When the band reaches this raster's padded last word, the result
  /// inherits the same partial width, so its zero-tail invariant carries
  /// over unchanged. Throws std::out_of_range on an empty or out-of-range
  /// band. Together with blitWordColumns this is the word-aligned
  /// crop/stitch pair of the tiled decomposition (DESIGN.md §5.6).
  Bitmap extractWordColumns(int word0, int nWords) const;

  /// Overwrites `nWords` whole word-columns of this raster, starting at
  /// word column `dstWord0`, with the word-columns of `src` starting at
  /// `srcWord0`. Heights must match and both ranges must be in bounds.
  /// Source bits beyond src.width() read as unset, and writes into this
  /// raster's padded last word are masked, so the zero-tail invariant is
  /// preserved on both sides.
  void blitWordColumns(const Bitmap& src, int srcWord0, int dstWord0,
                       int nWords);

  /// Population-count prefix scan over word columns: result[i] = number
  /// of set pixels in word columns [0, i), i.e. pixels with x < 64*i
  /// (length wordsPerRow(width()) + 1, result.front() == 0,
  /// result.back() == count()). The zero-tail invariant makes the last
  /// column exact with no masking. A band's population is
  /// result[hi] - result[lo] -- the dynamic band scheduler's cost signal
  /// (DESIGN.md §5.6).
  std::vector<std::int64_t> wordColumnPopcountPrefix() const;

  /// Packed rows, wordsPerRow(width()) words per row, LSB = lowest x.
  const std::vector<std::uint64_t>& words() const { return words_; }
  static int wordsPerRow(int width) { return (width + 63) >> 6; }

 private:
  /// Mask of the valid bits in the last word of a row.
  std::uint64_t tailMask() const {
    const int rem = w_ & 63;
    return rem ? (std::uint64_t(1) << rem) - 1 : ~std::uint64_t(0);
  }

  int w_ = 0;
  int h_ = 0;
  int wpr_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Dispatch level of the word-parallel morphology kernels (the separable
/// dilate/erode filters and the 64 x 64 bit transpose). Scalar and Avx2
/// are byte-identical by contract (tests/test_bitmap_simd.cpp); Avx2 is
/// selected only when the CPU reports support.
enum class SimdLevel : std::uint8_t { Auto, Scalar, Avx2 };

/// Runtime override of the kernel dispatch (process-wide, atomic).
/// `Auto` re-resolves from the environment and CPUID: scalar when
/// SADP_FORCE_SCALAR is set to a nonempty value other than "0", else AVX2
/// when the CPU supports it. Requesting Avx2 without CPU support resolves
/// to Scalar.
void setBitmapSimdLevel(SimdLevel lvl);
/// The level kernels actually dispatch to right now (never Auto).
SimdLevel activeBitmapSimdLevel();
/// CPUID probe for AVX2 (false on non-x86 builds).
bool cpuSupportsAvx2();

/// True if any pixel of `b` within Chebyshev distance `r` of (x, y) is set.
bool anyNear(const Bitmap& b, int x, int y, int r);

/// Order-sensitive 64-bit FNV-1a over dimensions and packed words. Two
/// bitmaps compare equal iff their fingerprints match (up to hash
/// collisions); used by the golden regression fixtures and the debug-build
/// tiled-vs-whole-window stitching asserts.
std::uint64_t fingerprint(const Bitmap& b);

/// Replaces `runs` with the [x0,x1) spans of set pixels in row y.
void rowRuns(const Bitmap& b, int y, std::vector<std::pair<int, int>>& runs);

/// Number of 4-connected components of set pixels.
int componentCount(const Bitmap& b);

/// Bounding boxes (half-open pixel coords) of the 4-connected components,
/// ordered by each component's first pixel in row-major order.
std::vector<Rect> componentBoxes(const Bitmap& b);

}  // namespace sadp
