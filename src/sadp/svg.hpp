// Deterministic SVG rendering of routed layouts and synthesized masks
// (used to regenerate the qualitative Figs. 21/22 artifacts).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "sadp/decompose.hpp"

namespace sadp {

struct SvgOptions {
  double scale = 0.4;        ///< SVG units per nm... pixels per 10nm px
  bool drawCoreMask = true;
  bool drawSpacer = true;
  bool drawCut = false;      ///< cut is the field complement; off by default
  bool drawOverlays = true;  ///< highlight unprotected side boundaries
};

/// Renders one decomposed layer: target metal colored by assignment
/// (core = blue, second = green), spacers grey, assist regions hatched,
/// overlay sections red.
void writeLayerSvg(std::ostream& os, const LayerDecomposition& layer,
                   std::span<const ColoredFragment> frags,
                   const DesignRules& rules, const SvgOptions& opts = {});

/// Convenience: writes straight to a file path.
void writeLayerSvgFile(const std::string& path, const LayerDecomposition& layer,
                       std::span<const ColoredFragment> frags,
                       const DesignRules& rules, const SvgOptions& opts = {});

}  // namespace sadp
