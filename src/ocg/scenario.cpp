#include "ocg/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace sadp {

const char* toString(Color c) {
  switch (c) {
    case Color::Core:
      return "C";
    case Color::Second:
      return "S";
    case Color::Third:
      return "T";
    default:
      return "?";
  }
}

const char* toString(ScenarioType t) {
  switch (t) {
    case ScenarioType::Independent:
      return "indep";
    case ScenarioType::T1a:
      return "1-a";
    case ScenarioType::T1b:
      return "1-b";
    case ScenarioType::T2a:
      return "2-a";
    case ScenarioType::T2b:
      return "2-b";
    case ScenarioType::T2c:
      return "2-c";
    case ScenarioType::T2d:
      return "2-d";
    case ScenarioType::T3a:
      return "3-a";
    case ScenarioType::T3b:
      return "3-b";
    case ScenarioType::T3c:
      return "3-c";
    case ScenarioType::T3d:
      return "3-d";
    case ScenarioType::T3e:
      return "3-e";
  }
  return "?";
}

int ScenarioRule::minOverlay() const {
  int m = kHardCost;
  for (int c : overlay) m = std::min(m, c);
  return m;
}

int ScenarioRule::maxOverlay() const {
  int m = 0;
  for (int c : overlay) {
    if (c < kHardCost) m = std::max(m, c);
  }
  return m;
}

const ScenarioRule& scenarioRule(ScenarioType t) {
  // Assignment order: CC, CS, SC, SS (first letter = pattern A).
  // Costs in units of w_line; kHardCost marks hard overlays (forbidden).
  // Sources: Figs. 24-34 and the prose of §III-A / §III-D; entries the
  // figure artwork would pin down exactly are reconstructed (DESIGN.md §3).
  static const ScenarioRule rules[] = {
      {ScenarioType::Independent, {0, 0, 0, 0}, {}},
      // 1-a: side-to-side @1. CC/SS merge the cores (or starve the assist
      // cores) along the full facing span -> hard overlay (Fig. 24).
      {ScenarioType::T1a,
       {kHardCost, 0, 0, kHardCost},
       {false, false, false, false}},
      // 1-b: tip-to-side @1. Different colors -> hard overlay, and CS also
      // produces a Type-A cut conflict (Figs. 25, 15(a)).
      {ScenarioType::T1b,
       {0, kHardCost, kHardCost, 0},
       {false, true, true, false}},
      // 2-a: side-to-side @2. Mixed colors force the assist core of the
      // second pattern to merge with the core -> overlays + cut risk
      // (Fig. 26).
      {ScenarioType::T2a, {0, 2, 2, 0}, {false, true, true, false}},
      // 2-b: tip-to-side @2. At least one unit of side overlay regardless
      // of assignment; CS risks a cut conflict (Fig. 27). This is the only
      // scenario with unavoidable side overlay, hence the gamma*T2b term in
      // the routing cost, eq. (5).
      {ScenarioType::T2b, {1, 2, 2, 1}, {false, true, false, false}},
      // 2-c / 2-d: tip-to-tip; only non-critical tip overlays (Figs. 28-29).
      {ScenarioType::T2c, {0, 0, 0, 0}, {}},
      {ScenarioType::T2d, {0, 0, 0, 0}, {}},
      // 3-a: parallel diagonal; same colors induce one unit (Fig. 7(e)/(f)).
      {ScenarioType::T3a, {1, 0, 0, 1}, {}},
      // 3-b: orthogonal diagonal; both-second is the only overlay-free
      // assignment (Fig. 11(e)).
      {ScenarioType::T3b, {1, 1, 1, 0}, {}},
      // 3-c: only CS is penalized (Fig. 11(f)).
      {ScenarioType::T3c, {0, 1, 0, 0}, {}},
      // 3-d: mirror of 3-c (reconstructed; see DESIGN.md §3).
      {ScenarioType::T3d, {0, 0, 1, 0}, {}},
      // 3-e: no side overlay regardless (stated in §III-A).
      {ScenarioType::T3e, {0, 0, 0, 0}, {}},
  };
  return rules[static_cast<int>(t)];
}

std::ostream& operator<<(std::ostream& os, const Fragment& f) {
  return os << "frag[net " << f.net << " (" << f.xlo << "," << f.ylo << ")-("
            << f.xhi << "," << f.yhi << ")]";
}

bool Classification::hard() const {
  for (int c : overlay) {
    if (c >= kHardCost) return true;
  }
  return false;
}

bool Classification::material() const {
  if (independent()) return false;
  for (int i = 0; i < 4; ++i) {
    if (overlay[i] != 0 || cutRisk[i]) return true;
  }
  return false;
}

namespace {

/// Overlap of two half-open index ranges, in tracks (>= 0).
Track overlapTracks(Track alo, Track ahi, Track blo, Track bhi) {
  return std::max<Track>(0, std::min(ahi, bhi) - std::max(alo, blo));
}

Classification fromRule(ScenarioType t, bool swapped) {
  const ScenarioRule& r = scenarioRule(t);
  Classification c;
  c.type = t;
  c.overlay = r.overlay;
  c.cutRisk = r.cutRisk;
  if (swapped) {  // exchange the CS and SC entries
    std::swap(c.overlay[1], c.overlay[2]);
    std::swap(c.cutRisk[1], c.cutRisk[2]);
  }
  return c;
}

/// Scales the finite overlay entries by the facing span (total side-overlay
/// length grows with the exposed side length); hard entries stay hard.
Classification scaledBySpan(Classification c, Track span) {
  if (span <= 1) return c;
  for (int& v : c.overlay) {
    if (v > 0 && v < kHardCost) v *= span;
  }
  return c;
}

bool isStub(const Fragment& f) { return f.width() == f.height(); }

}  // namespace

Classification classify(const Fragment& a, const Fragment& b) {
  Classification indep;
  if (a.net == b.net) return indep;  // Theorem 3: same polygon
  const Track gx = trackGap(a.xlo, a.xhi, b.xlo, b.xhi);
  const Track gy = trackGap(a.ylo, a.yhi, b.ylo, b.yhi);
  if (independentGaps(gx, gy)) return indep;

  const bool stubA = isStub(a);
  const bool stubB = isStub(b);

  // Orientation model: 1x1 stub fragments adopt the partner's orientation
  // (parallel pairing); two stubs along an axis behave tip-to-tip, and
  // diagonal stub pairs follow the parallel diagonal rules (DESIGN.md §3).
  Orient oa = a.orient();
  Orient ob = b.orient();
  if (stubA && !stubB) oa = ob;
  if (stubB && !stubA) ob = oa;

  if (stubA && stubB) {
    if (gx == 0 || gy == 0) {
      // Stacked stubs: facing boundaries are full tips.
      const Track d = std::max(gx, gy);
      return fromRule(d == 1 ? ScenarioType::T2c : ScenarioType::T2d, false);
    }
    oa = ob = Orient::Horizontal;  // diagonal stub pair: parallel rules
  }

  if (oa != ob) {
    // Orthogonal pair: tuple symmetric under (x,y) <-> (y,x).
    const Track lo = std::min(gx, gy);
    const Track hi = std::max(gx, gy);
    if (lo == 0) {
      // Tip-to-side: the fragment whose long axis runs along the gap axis
      // is the tip pattern (canonical role B); the other offers its side.
      const Orient gapAxis = (gy > 0) ? Orient::Vertical : Orient::Horizontal;
      const bool aIsTip = (oa == gapAxis);
      const ScenarioType t = (hi == 1) ? ScenarioType::T1b : ScenarioType::T2b;
      return fromRule(t, /*swapped=*/aIsTip);
    }
    return fromRule(hi == 1 ? ScenarioType::T3b : ScenarioType::T3e, false);
  }

  // Parallel pair: normalize to (along, across) w.r.t. the wire axis.
  const bool horizontal = (oa == Orient::Horizontal);
  const Track along = horizontal ? gx : gy;
  const Track across = horizontal ? gy : gx;
  if (across == 0) {
    return fromRule(along == 1 ? ScenarioType::T2c : ScenarioType::T2d, false);
  }
  if (along == 0) {
    const Track span = horizontal ? overlapTracks(a.xlo, a.xhi, b.xlo, b.xhi)
                                  : overlapTracks(a.ylo, a.yhi, b.ylo, b.yhi);
    if (across == 1) {
      Classification c = fromRule(ScenarioType::T1a, false);
      if (span <= 1) {
        // Facing span of one track (stub beside a wire, or two wires
        // overlapping one cell at a corner). CC merges and the separating
        // cut exposes only w_line per pattern (nonhard); SS stays hard:
        // there is no room for either pattern's assist core in the corner,
        // so the exposure chains past w_line (physical model, DESIGN.md §3).
        c.overlay[assignmentIndex(Color::Core, Color::Core)] = 2;
      }
      return c;
    }
    // Type 2-a: the mixed assignment merges the second pattern's assist
    // core with the core pattern along the whole facing span; the
    // separating cut defines a CONTIGUOUS side section of span length.
    // Beyond one track that exceeds w_line, i.e., it is a hard overlay by
    // the Section II-C definition, so the same-color rule escalates to a
    // hard constraint (physical-model-driven refinement; DESIGN.md §3).
    Classification c = scaledBySpan(fromRule(ScenarioType::T2a, false), span);
    if (span >= 2) {
      c.overlay[assignmentIndex(Color::Core, Color::Second)] = kHardCost;
      c.overlay[assignmentIndex(Color::Second, Color::Core)] = kHardCost;
    }
    return c;
  }
  // Diagonal parallel pair.
  if (along == 1 && across == 1) return fromRule(ScenarioType::T3a, false);
  // 3-c (along 1, across 2) and 3-d (along 2, across 1): canonical role A
  // is the fragment with the smaller along-axis coordinate.
  const Track aAlongLo = horizontal ? a.xlo : a.ylo;
  const Track bAlongLo = horizontal ? b.xlo : b.ylo;
  const bool swapped = aAlongLo > bAlongLo;
  if (along == 1 && across == 2) return fromRule(ScenarioType::T3c, swapped);
  return fromRule(ScenarioType::T3d, swapped);  // along == 2 && across == 1
}

Track independenceRadiusTracks(const DesignRules& rules) {
  const double dIndep = std::sqrt(double(rules.dIndepSq()));
  return Track(std::ceil(dIndep / double(rules.pitch())));
}

}  // namespace sadp
