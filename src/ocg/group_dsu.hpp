// Union-find over Z_Mod relations (the k-group generalization of the
// parity DSU; DESIGN.md §5.13).
//
// Each element carries the Z_Mod sum of edge deltas to its representative;
// unite(u, v, rel) enforces color(v) == color(u) + rel (mod Mod). A
// contradiction (a cycle whose deltas do not sum to zero) makes unite
// return false -- for Mod == 2 that is exactly the constant-time LELE
// odd-cycle detection the paper builds on, and `ParityDsu` below is that
// instantiation: one delta bit, XOR folds, the packed uint32 layout and
// union-by-rank tie rule unchanged from the hand-written class it replaces
// (roots and parities are bit-identical; the golden suites pin this).
//
// For Mod >= 3 "different color" is NOT a group relation (a != b has no
// single delta), so k-patterning backends use rel 0 (equality classes)
// here and track must-differ edges on the side (ocg/graph.cpp).
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

namespace sadp {

template <unsigned Mod>
class GroupDsu {
  static_assert(Mod >= 2 && Mod <= 4, "delta packing supports k in [2, 4]");

 public:
  static constexpr unsigned kMod = Mod;
  /// Bits of each packed link spent on the delta-to-parent.
  static constexpr unsigned kDeltaBits = std::bit_width(Mod - 1);
  static constexpr std::uint32_t kDeltaMask = (1u << kDeltaBits) - 1u;

  /// Ensures element `v` exists.
  void ensure(std::size_t v) {
    if (v >= link_.size()) grow(v);
  }

  /// Representative of v plus the delta of v relative to it.
  std::pair<std::size_t, std::uint8_t> find(std::size_t v) {
    ensure(v);
    return findRaw(v);
  }

  /// Merges the classes of u and v enforcing color(v) == color(u) + rel
  /// (mod Mod). Returns false (leaving the classes merged-consistent only
  /// if they already were) when the relation contradicts existing ones.
  bool unite(std::size_t u, std::size_t v, std::uint8_t rel) {
    ensure(u > v ? u : v);  // one bounds check instead of one per find
    // The two root chases are findRaw's loop written out inline: unite is
    // the hot path of hard-edge insertion and this build ships without
    // optimization, where a call plus a pair return per find is measurable.
    std::uint32_t* const links = link_.data();
    std::uint32_t ru = std::uint32_t(u), du = 0;
    for (;;) {
      const std::uint32_t l = links[ru];
      const std::uint32_t p = l >> kDeltaBits;
      if (p == ru) break;
      const std::uint32_t lp = links[p];
      links[ru] = ((lp >> kDeltaBits) << kDeltaBits) | foldOf(l, lp);
      if constexpr (Mod == 2) {
        du ^= l & 1u;
      } else {
        du += l & kDeltaMask;
        if (du >= Mod) du -= Mod;
      }
      ru = p;
    }
    std::uint32_t rv = std::uint32_t(v), dv = 0;
    for (;;) {
      const std::uint32_t l = links[rv];
      const std::uint32_t p = l >> kDeltaBits;
      if (p == rv) break;
      const std::uint32_t lp = links[p];
      links[rv] = ((lp >> kDeltaBits) << kDeltaBits) | foldOf(l, lp);
      if constexpr (Mod == 2) {
        dv ^= l & 1u;
      } else {
        dv += l & kDeltaMask;
        if (dv >= Mod) dv -= Mod;
      }
      rv = p;
    }
    if (ru == rv) return deltaDiff(dv, du) == rel;
    std::uint8_t* const ranks = rank_.data();
    if (ranks[ru] < ranks[rv]) {
      // Attach ru under rv. color(ru) == color(rv) + (dv - rel - du): the
      // rank swap inverts the enforced relation, which for Mod == 2 is the
      // plain XOR the parity code used (negation is the identity in Z_2).
      links[ru] = (rv << kDeltaBits) |
                  deltaDiff(dv, deltaSum(rel, du));
    } else {
      // Attach rv under ru: color(rv) == color(ru) + (du + rel - dv).
      links[rv] = (ru << kDeltaBits) |
                  deltaDiff(deltaSum(du, rel), dv);
      if (ranks[ru] == ranks[rv]) ++ranks[ru];
    }
    return true;
  }

  /// True if u and v are already constrained to a relative delta != rel.
  bool contradicts(std::size_t u, std::size_t v, std::uint8_t rel) {
    auto [ru, du] = find(u);
    auto [rv, dv] = find(v);
    return ru == rv && deltaDiff(dv, du) != rel;
  }

  void clear() {
    link_.clear();
    rank_.clear();
  }
  std::size_t size() const { return link_.size(); }

 private:
  void grow(std::size_t v) {
    const std::size_t old = link_.size();
    link_.resize(v + 1);
    rank_.resize(v + 1, 0);
    for (std::size_t i = old; i <= v; ++i) {
      link_[i] = std::uint32_t(i) << kDeltaBits;  // self-parent, delta 0
    }
  }

  /// Delta folded when path-halving rewrites x's link past its parent.
  static constexpr std::uint32_t foldOf(std::uint32_t l, std::uint32_t lp) {
    if constexpr (Mod == 2) {
      return (l ^ lp) & 1u;
    } else {
      std::uint32_t s = (l & kDeltaMask) + (lp & kDeltaMask);
      if (s >= Mod) s -= Mod;
      return s;
    }
  }
  static constexpr std::uint8_t deltaSum(std::uint32_t a, std::uint32_t b) {
    if constexpr (Mod == 2) {
      return std::uint8_t((a ^ b) & 1u);
    } else {
      std::uint32_t s = a + b;
      if (s >= Mod) s -= Mod;
      return std::uint8_t(s);
    }
  }
  /// a - b in Z_Mod.
  static constexpr std::uint8_t deltaDiff(std::uint32_t a, std::uint32_t b) {
    if constexpr (Mod == 2) {
      return std::uint8_t((a ^ b) & 1u);
    } else {
      return std::uint8_t(a >= b ? a - b : a + Mod - b);
    }
  }

  /// find() without the existence check -- callers must have ensure()d v.
  std::pair<std::size_t, std::uint8_t> findRaw(std::size_t v) {
    // Single-pass path halving over a raw pointer, folding the delta of
    // the skipped hop into the rewritten link. Deltas accumulated along
    // the walk are unaffected by the rewrites (they only touch nodes
    // already passed), so the returned (root, delta) pair matches the
    // full-compression reference exactly.
    std::uint32_t* const links = link_.data();
    std::uint32_t x = std::uint32_t(v);
    std::uint32_t d = 0;
    for (;;) {
      const std::uint32_t l = links[x];
      const std::uint32_t p = l >> kDeltaBits;
      if (p == x) break;
      const std::uint32_t lp = links[p];
      links[x] = ((lp >> kDeltaBits) << kDeltaBits) | foldOf(l, lp);
      if constexpr (Mod == 2) {
        d ^= l & 1u;
      } else {
        d += l & kDeltaMask;
        if (d >= Mod) d -= Mod;
      }
      x = p;
    }
    return {x, std::uint8_t(d)};
  }

  /// Packed parent pointers: link_[v] = parent(v) << kDeltaBits | delta.
  /// One 32-bit word per element keeps find's pointer chase in a single
  /// cache stream; for Mod == 2 this is the exact parent<<1|parity layout
  /// of the original ParityDsu (the k=2 fast path the bench gate pins).
  std::vector<std::uint32_t> link_;
  std::vector<std::uint8_t> rank_;
};

/// Union-find with parity: the Z_2 instantiation the SADP 2-color stack
/// uses. unite(u, v, rel) enforces color(u) ^ color(v) == rel; a
/// contradiction is an odd cycle over hard edges.
using ParityDsu = GroupDsu<2>;

}  // namespace sadp
