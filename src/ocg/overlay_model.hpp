// OverlayModel: the bridge between routed paths and the per-layer overlay
// constraint graphs. It fragments each routed net into maximal rectangles
// (Theorem 3), finds dependent neighbor fragments within d_indep via a
// spatial hash, classifies every pair, and maintains one
// OverlayConstraintGraph per routing layer (Fig. 17).
#pragma once

#include <memory_resource>
#include <span>
#include <vector>

#include "ocg/graph.hpp"
#include "ocg/scenario.hpp"

namespace sadp {

/// A scenario instance observed between two concrete fragments.
struct ScenarioHit {
  Fragment a;
  Fragment b;
  int layer = 0;
  Classification cls;
};

/// Outcome of registering one routed net with the model.
struct AddNetResult {
  bool hardViolation = false;  ///< a hard odd cycle appeared on some layer
  /// Fragments of OTHER nets involved in hard scenarios with the new net;
  /// the router raises the cost of the surrounding grid cells before
  /// re-routing (Algorithm 1 line 8).
  std::vector<ScenarioHit> hardHits;
  /// Count of new type 2-b scenarios (unavoidable side overlay).
  int type2bCount = 0;
};

class OverlayModel {
 public:
  /// `mergeTechnique=false` reconstructs routers without the cut-process
  /// merge (e.g. [16]): hard SAME-color scenarios, which are satisfied by
  /// merging patterns and separating them with a cut, are then reported as
  /// hard violations instead. `mem`, when non-null, backs the per-layer
  /// constraint graphs' edge/adjacency storage (the router passes its
  /// RunContext's graph arena); null means the ordinary heap. `spec`
  /// selects the patterning interpretation (k colors) of scenario edges;
  /// null means the classic 2-color SADP-cut tables (DESIGN.md §5.13).
  OverlayModel(int layers, Track width, Track height,
               bool mergeTechnique = true,
               std::pmr::memory_resource* mem = nullptr,
               const PatterningSpec* spec = nullptr);

  /// Number of assignable colors under the active patterning spec.
  int colorCount() const { return spec_ ? spec_->colorCount : 2; }
  const PatterningSpec* patterningSpec() const { return spec_; }

  int layers() const { return int(graphs_.size()); }

  /// Extracts the per-layer fragments of a path (track-space maximal
  /// rectangles). Exposed for tests and for the mask synthesizer.
  static std::vector<Fragment> fragmentsOf(NetId net,
                                           std::span<const GridNode> path,
                                           int layer);

  /// Registers a routed net. The path is the set of grid nodes the net
  /// occupies (any order). Returns the scenario/violation summary.
  AddNetResult addNet(NetId net, std::span<const GridNode> path);

  /// Removes a net everywhere (rip-up).
  void removeNet(NetId net);

  /// Pseudo-colors the net on every layer it appears on (Alg. 1 line 11).
  void pseudoColor(NetId net);
  /// First-fit colors the net on every layer (baseline reconstructions).
  void firstFitColor(NetId net);

  /// Per-layer constraint graphs.
  OverlayConstraintGraph& graph(int layer) { return graphs_[layer]; }
  const OverlayConstraintGraph& graph(int layer) const {
    return graphs_[layer];
  }

  /// Current fragments of a net on a layer.
  std::vector<Fragment> netFragments(NetId net, int layer) const;

  /// All live fragments intersecting a track-space window on a layer.
  std::vector<Fragment> fragmentsInWindow(int layer,
                                          const Rect& trackWindow) const;

  /// All scenario hits currently alive on a layer (for diagnostics/tests).
  const std::vector<ScenarioHit>& hits(int layer) const {
    return hits_[layer];
  }

  /// Sum of side-overlay units over all layers under current colors.
  std::int64_t totalOverlayUnits() const;
  /// Side-overlay units tied to one net across layers.
  std::int64_t overlayUnitsOfNet(NetId net) const;
  /// Class-wide side-overlay units of the net across layers (see
  /// OverlayConstraintGraph::classOverlayUnits).
  std::int64_t classOverlayUnitsOfNet(NetId net) const;
  bool hasHardViolation() const;

  /// Net color on a layer (segments of one net may differ across layers).
  Color colorOf(NetId net, int layer) const {
    return graphs_[layer].colorOf(net);
  }

 private:
  struct LayerState {
    SpatialHash index;  // fragments in track space
    std::vector<Fragment> fragments;
    std::vector<std::vector<std::uint32_t>> byNet;  // net -> fragment ids
    explicit LayerState(Nm bucket) : index(bucket) {}
  };

  Rect fragTrackRect(const Fragment& f) const {
    return Rect{f.xlo, f.ylo, f.xhi, f.yhi};
  }

  std::vector<OverlayConstraintGraph> graphs_;
  std::vector<LayerState> states_;
  std::vector<std::vector<ScenarioHit>> hits_;
  bool mergeTechnique_ = true;
  const PatterningSpec* spec_ = nullptr;
};

}  // namespace sadp
