#include "ocg/overlay_model.hpp"

#include <algorithm>

namespace sadp {

namespace {

/// Neighborhood window (in tracks) within which another fragment can still
/// be dependent: gaps up to 2 tracks in each axis (Theorem 1/2).
constexpr Track kNeighborTracks = 3;

}  // namespace

OverlayModel::OverlayModel(int layers, Track /*width*/, Track /*height*/,
                           bool mergeTechnique,
                           std::pmr::memory_resource* mem,
                           const PatterningSpec* spec)
    : mergeTechnique_(mergeTechnique), spec_(spec) {
  if (!mem) mem = std::pmr::get_default_resource();
  graphs_.reserve(layers);
  for (int i = 0; i < layers; ++i) graphs_.emplace_back(mem, spec);
  hits_.resize(layers);
  states_.reserve(layers);
  for (int i = 0; i < layers; ++i) {
    states_.emplace_back(/*bucket=*/16);  // 16-track spatial buckets
  }
}

std::vector<Fragment> OverlayModel::fragmentsOf(NetId net,
                                                std::span<const GridNode> path,
                                                int layer) {
  std::vector<Rect> cells;
  for (const GridNode& n : path) {
    if (n.layer != layer) continue;
    cells.push_back(Rect{n.x, n.y, n.x + 1, n.y + 1});
  }
  std::vector<Fragment> out;
  for (const Rect& r : canonicalize(cells)) {
    out.push_back(Fragment{r.xlo, r.ylo, r.xhi, r.yhi, net});
  }
  return out;
}

AddNetResult OverlayModel::addNet(NetId net, std::span<const GridNode> path) {
  AddNetResult result;
  for (int layer = 0; layer < layers(); ++layer) {
    std::vector<Fragment> frags = fragmentsOf(net, path, layer);
    if (frags.empty()) continue;
    LayerState& st = states_[layer];
    OverlayConstraintGraph& g = graphs_[layer];
    g.vertexFor(net);  // a routed net is a vertex even without scenarios
    if (st.byNet.size() <= std::size_t(net)) st.byNet.resize(net + 1);

    for (const Fragment& f : frags) {
      // Classify against existing neighbor fragments.
      const Rect window = fragTrackRect(f).inflated(kNeighborTracks);
      st.index.query(window, [&](const Rect& r, std::uint32_t id) {
        const Fragment& other = st.fragments[id];
        if (other.net == net) return;
        (void)r;
        const Classification cls = classify(f, other);
        const bool kTwo = !spec_ || spec_->colorCount == 2;
        const bool material = (kTwo || !spec_->material)
                                  ? cls.material()
                                  : spec_->material(cls);
        if (!material) return;
        const bool ok = g.addScenario(net, other.net, cls);
        if (cls.type == ScenarioType::T2b) ++result.type2bCount;
        if (!kTwo) {
          // k >= 3: addScenario already judged the spec's hard relations
          // (an unsatisfiable must-differ edge makes it return false); the
          // merge technique is a 2-mask cut-process concept and does not
          // apply.
          if (!ok) {
            result.hardViolation = true;
            result.hardHits.push_back(ScenarioHit{f, other, layer, cls});
          }
          return;
        }
        if (cls.hard()) {
          // Without the merge technique, hard same-color scenarios (which
          // the cut process satisfies by merging + cutting) are violations.
          const bool needsMerge =
              cls.overlay[assignmentIndex(Color::Core, Color::Second)] >=
                  kHardCost &&
              cls.overlay[assignmentIndex(Color::Second, Color::Core)] >=
                  kHardCost;
          // Record hard hits so the router can penalize the region on
          // re-route; an odd cycle (ok == false) flags the violation.
          if (!ok || (!mergeTechnique_ && needsMerge)) {
            result.hardViolation = true;
            result.hardHits.push_back(ScenarioHit{f, other, layer, cls});
          }
        }
      });
      // Store the fragment.
      const std::uint32_t id = std::uint32_t(st.fragments.size());
      st.fragments.push_back(f);
      st.byNet[net].push_back(id);
      st.index.insert(fragTrackRect(f), id);
      hits_[layer].clear();  // hit cache invalid; rebuilt lazily if needed
    }
    // Physical prior: a layer segment consisting only of stubs (via
    // landings) is safest printed by the core mask -- a Second stub relies
    // entirely on neighbors for spacer protection.
    const bool stubOnly =
        std::all_of(frags.begin(), frags.end(), [](const Fragment& f) {
          return f.width() == f.height();
        });
    if (stubOnly) g.setPrior(net, 0, 3);
  }
  return result;
}

void OverlayModel::removeNet(NetId net) {
  for (int layer = 0; layer < layers(); ++layer) {
    LayerState& st = states_[layer];
    if (st.byNet.size() <= std::size_t(net)) continue;
    for (std::uint32_t id : st.byNet[net]) {
      st.index.erase(fragTrackRect(st.fragments[id]), id);
      st.fragments[id].net = kInvalidNet;  // tombstone
    }
    st.byNet[net].clear();
    graphs_[layer].removeNet(net);
  }
}

void OverlayModel::pseudoColor(NetId net) {
  for (int layer = 0; layer < layers(); ++layer) {
    if (graphs_[layer].findVertex(net) >= 0) {
      graphs_[layer].pseudoColor(net);
    }
  }
}

void OverlayModel::firstFitColor(NetId net) {
  for (int layer = 0; layer < layers(); ++layer) {
    if (graphs_[layer].findVertex(net) >= 0) {
      graphs_[layer].firstFitColor(net);
    }
  }
}

std::vector<Fragment> OverlayModel::netFragments(NetId net, int layer) const {
  const LayerState& st = states_[layer];
  std::vector<Fragment> out;
  if (st.byNet.size() <= std::size_t(net)) return out;
  for (std::uint32_t id : st.byNet[net]) out.push_back(st.fragments[id]);
  return out;
}

std::vector<Fragment> OverlayModel::fragmentsInWindow(
    int layer, const Rect& trackWindow) const {
  std::vector<Fragment> out;
  states_[layer].index.query(trackWindow,
                             [&](const Rect&, std::uint32_t id) {
                               const Fragment& f = states_[layer].fragments[id];
                               if (f.net != kInvalidNet) out.push_back(f);
                             });
  return out;
}

std::int64_t OverlayModel::totalOverlayUnits() const {
  std::int64_t total = 0;
  for (const OverlayConstraintGraph& g : graphs_) {
    total += g.totalOverlayUnits();
  }
  return total;
}

std::int64_t OverlayModel::overlayUnitsOfNet(NetId net) const {
  std::int64_t total = 0;
  for (const OverlayConstraintGraph& g : graphs_) {
    total += g.overlayUnitsOfNet(net);
  }
  return total;
}

std::int64_t OverlayModel::classOverlayUnitsOfNet(NetId net) const {
  std::int64_t total = 0;
  for (const OverlayConstraintGraph& g : graphs_) {
    total += g.classOverlayUnits(net);
  }
  return total;
}

bool OverlayModel::hasHardViolation() const {
  return std::any_of(graphs_.begin(), graphs_.end(),
                     [](const OverlayConstraintGraph& g) {
                       return g.hasHardViolation();
                     });
}

}  // namespace sadp
