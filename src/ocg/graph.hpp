// Overlay constraint graph (paper §III-B, Fig. 11).
//
// One graph per routing layer (Fig. 17). Vertices are routed nets; each
// edge carries the per-color-assignment side-overlay cost vector of one
// detected potential overlay scenario. Hard constraints (types 1-a / 1-b)
// are additionally tracked in a union-find with parity — the extension of
// the constant-time LELE odd-cycle detection of [18] — which doubles as the
// paper's dummy-vertex device and super-vertex (even-cycle) reduction: all
// vertices of a hard-connected class have mutually fixed relative colors
// and are colored as a unit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory_resource>
#include <unordered_map>
#include <vector>

#include "ocg/group_dsu.hpp"
#include "ocg/patterning_spec.hpp"
#include "ocg/scenario.hpp"

namespace sadp {

/// One scenario edge of the constraint graph. `u`/`v` are vertex handles
/// (dense indices, not NetIds). The cost array is indexed by
/// assignmentIndex(color(u), color(v)).
struct OcgEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  Classification cls;
  bool alive = true;

  bool hard() const { return cls.hard(); }
};

/// Per-layer overlay constraint graph.
class OverlayConstraintGraph {
 public:
  /// Finite penalty (units of w_line) charged to color assignments flagged
  /// as Type-A cut-conflict risks; strong enough to dominate any realistic
  /// overlay trade-off without making the class unsatisfiable (the bitmap
  /// cut-conflict checker provides the hard backstop; see DESIGN.md §5.6).
  static constexpr int kCutRiskPenalty = 50;

  /// Edge and adjacency storage draws from `mem` (DESIGN.md §5.9): the
  /// router passes its RunContext's graph arena so the per-net scenario
  /// churn never touches the global allocator; standalone graphs default
  /// to the ordinary heap. `spec` selects the patterning interpretation of
  /// scenario edges (DESIGN.md §5.13); null means the classic 2-color
  /// SADP-cut tables and leaves every code path byte-identical to the
  /// pre-backend graph.
  explicit OverlayConstraintGraph(
      std::pmr::memory_resource* mem = std::pmr::get_default_resource(),
      const PatterningSpec* spec = nullptr)
      : edges_(mem),
        adj_(mem),
        spec_(spec),
        k_(spec ? spec->colorCount : 2) {}

  /// Number of assignable colors under the active patterning spec.
  int colorCount() const { return k_; }
  const PatterningSpec* patterningSpec() const { return spec_; }

  /// Returns (creating if needed) the vertex handle for a net.
  std::uint32_t vertexFor(NetId net);
  /// Vertex handle if the net is present, else -1.
  std::int64_t findVertex(NetId net) const;
  NetId netOf(std::uint32_t vertex) const { return nets_[vertex]; }
  std::size_t vertexCount() const { return nets_.size(); }

  /// Adds a scenario edge between two nets. Trivial classifications are
  /// ignored. Returns false iff the edge is hard and closes an odd cycle of
  /// hard constraints (a hard-overlay violation): the edge is still
  /// recorded so removeNet() can undo it, but the graph is flagged.
  bool addScenario(NetId a, NetId b, const Classification& cls);

  /// Removes every edge incident to a net (rip-up) and rebuilds the hard
  /// parity structure from the surviving edges.
  void removeNet(NetId net);

  /// True if some hard odd cycle is currently present.
  bool hasHardViolation() const { return hardViolations_ > 0; }

  // -- Coloring ------------------------------------------------------------

  Color colorOf(NetId net) const;
  /// Assigns the color of `net`; the whole hard-connected class moves with
  /// it so hard constraints stay satisfied by construction.
  void setColor(NetId net, Color c);
  bool isColored(NetId net) const { return colorOf(net) != Color::Unassigned; }

  /// Pseudo-coloring (Algorithm 1 line 11): picks the class color for
  /// `net` minimizing the summed cost of all edges incident to the class,
  /// counting only edges whose other endpoint is already colored.
  /// Returns the chosen color.
  Color pseudoColor(NetId net);

  /// First-fit coloring used by the baseline reconstructions: assigns Core
  /// unless that is hard-forbidden against already-colored neighbors, else
  /// Second. No overlay optimization (the published baselines fix colors
  /// when the net is routed without weighing overlay costs).
  Color firstFitColor(NetId net);

  /// Per-vertex color prior added to every coloring decision (pseudo-
  /// coloring and the flipping DP). Used to encode physical knowledge the
  /// pairwise scenario table cannot see, e.g. "an isolated via stub is
  /// safest as a core pattern".
  void setPrior(NetId net, std::int64_t corePrior, std::int64_t secondPrior);
  /// Prior of a vertex under a color (0 if none set).
  std::int64_t priorOf(std::uint32_t vertex, Color c) const;

  /// Cost of one edge under the current coloring; uncolored endpoints
  /// contribute their best case. Includes the cut-risk penalty.
  std::int64_t edgeCost(const OcgEdge& e) const;
  /// Pure side-overlay units of one edge under the current coloring
  /// (no cut-risk penalty; kHardCost entries reported as kHardCost).
  int edgeOverlayUnits(const OcgEdge& e) const;

  /// Total side-overlay units over all alive edges under current colors.
  std::int64_t totalOverlayUnits() const;
  /// Side-overlay units contributed by edges incident to one net.
  std::int64_t overlayUnitsOfNet(NetId net) const;
  /// Side-overlay units over all edges incident to any member of the net's
  /// hard class (a class flip moves all of them together, so violation
  /// checks must look class-wide).
  std::int64_t classOverlayUnits(NetId net) const;
  /// Number of alive edges whose current assignment is flagged cutRisk.
  int cutRiskCount() const;

  // -- Introspection for the color-flipping engine --------------------------

  const std::pmr::vector<OcgEdge>& edges() const { return edges_; }
  /// Calls fn(edgeIndex) for every alive edge incident to a vertex.
  void forEachEdgeOf(std::uint32_t vertex,
                     const std::function<void(std::size_t)>& fn) const;
  /// Hard-class representative and parity of a vertex (const lookup).
  std::pair<std::uint32_t, std::uint8_t> hardClassOf(std::uint32_t v) const;
  const std::vector<NetId>& vertexNets() const { return nets_; }

  /// Applies colors computed externally (color flipping): colors[i] is the
  /// color for vertex i; Unassigned entries are left untouched.
  void applyColors(const std::vector<Color>& colors);

 private:
  std::int64_t costOfAssignment(const OcgEdge& e, Color cu, Color cv) const;
  void rebuildHardStructure();
  Color classColorOf(std::uint32_t vertex) const;
  /// k >= 3 only: recounts must-differ hard edges whose endpoints share an
  /// equality class (each one is a hard-overlay violation).
  void recountDiffViolations();
  /// Hard relation of an edge under the active spec: -1 none, 0 same,
  /// 1 differ. For k == 2 this is hardParity(); for k >= 3 it defers to
  /// spec_->hardRelation.
  int hardRelationOf(const Classification& cls) const;

  std::vector<NetId> nets_;                       // vertex -> net
  std::unordered_map<NetId, std::uint32_t> idx_;  // net -> vertex
  std::pmr::vector<OcgEdge> edges_;
  /// vertex -> edge indices; inner vectors inherit the outer resource
  /// through polymorphic_allocator's scoped-allocator propagation.
  std::pmr::vector<std::pmr::vector<std::uint32_t>> adj_;
  /// Hard structure over Z_k deltas. For k == 2 both relations live here
  /// (rel 1 = must-differ); for k >= 3 only must-same edges do (delta 0 --
  /// "differ" is not a group relation) and must-differ edges are tracked in
  /// diffEdges_, so every class member always has delta 0 to its root.
  mutable GroupDsu<2> hard_;
  /// k >= 3 only: indices of alive hard must-differ edges.
  std::vector<std::uint32_t> diffEdges_;
  /// Color per hard-class representative; vertex color = this ^ parity.
  std::unordered_map<std::uint32_t, Color> classColor_;
  /// Members of each hard class, keyed by representative (kept in sync by
  /// addScenario/rebuild so pseudoColor is O(class degree), not O(V)).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> classMembers_;
  /// Optional per-vertex color priors {core, second}; Third has no prior.
  std::unordered_map<std::uint32_t, std::array<std::int64_t, 2>> priors_;
  const PatterningSpec* spec_ = nullptr;
  int k_ = 2;
  int hardViolations_ = 0;
};

}  // namespace sadp
