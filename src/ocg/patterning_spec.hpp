// Backend-supplied interpretation of scenario classifications (DESIGN.md
// §5.13).
//
// classify() names geometry, not masks: a tuple like "side-to-side @1
// track" (T1a) exists regardless of how many exposures print the layer.
// What that tuple *costs* under a color assignment is a property of the
// patterning process. For the 2-mask SADP-cut process the Classification
// carries the paper's packed Table-II arrays and no spec is needed; a
// k-patterning backend supplies this table-of-functions to reinterpret the
// same scenario types over k colors.
#pragma once

#include <cstdint>

#include "ocg/scenario.hpp"

namespace sadp {

/// How a patterning backend scores scenario classifications over k colors.
/// A null spec (or colorCount == 2) means the classic SADP interpretation:
/// the Classification's own overlay/cutRisk arrays, indexed by
/// assignmentIndex. All function pointers must be pure (the OCG calls them
/// from cost loops and caches nothing).
struct PatterningSpec {
  /// Number of assignable colors (mask planes), k >= 2.
  int colorCount = 2;
  /// Stable identity folded into mask-cache digests; must change whenever
  /// the cost tables below change meaning.
  std::uint64_t id = 0;
  const char* name = "sadp2";

  // k >= 3 hooks. Unused (and may be null) when colorCount == 2.

  /// Side-overlay units of a dependent pair under dense color indices
  /// (colorIndex) ia, ib; kHardCost marks a forbidden assignment.
  std::int64_t (*pairOverlay)(const Classification&, int ia, int ib) = nullptr;
  /// Whether the assignment additionally risks a Type-A cut conflict.
  bool (*pairCutRisk)(const Classification&, int ia, int ib) = nullptr;
  /// Whether the classification constrains coloring at all under this
  /// backend (the k-color analogue of Classification::material()).
  bool (*material)(const Classification&) = nullptr;
  /// Hard relation: -1 none, 0 must-be-same, 1 must-differ. Must agree
  /// with pairOverlay's kHardCost entries. Note that for k >= 3
  /// "must-differ" is not a Z_k group relation, so the OCG tracks such
  /// edges outside the group DSU (equality classes only).
  int (*hardRelation)(const Classification&) = nullptr;
};

}  // namespace sadp
