#include "ocg/graph.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

namespace sadp {

namespace {

/// Whether a hard classification is parity-expressible, and if so which
/// relative parity it enforces: {CC, SS} forbidden => colors must differ
/// (rel 1, type 1-a); {CS, SC} forbidden => same color (rel 0, type 1-b).
/// Single-assignment bans (Fig. 11(f) style) are NOT parity constraints and
/// are enforced through coloring costs instead.
std::optional<std::uint8_t> hardParity(const Classification& cls) {
  bool f[4];
  for (int i = 0; i < 4; ++i) f[i] = cls.overlay[i] >= kHardCost;
  if (f[0] && f[3] && !f[1] && !f[2]) return std::uint8_t(1);
  if (f[1] && f[2] && !f[0] && !f[3]) return std::uint8_t(0);
  return std::nullopt;
}

}  // namespace

std::uint32_t OverlayConstraintGraph::vertexFor(NetId net) {
  auto it = idx_.find(net);
  if (it != idx_.end()) return it->second;
  const std::uint32_t v = std::uint32_t(nets_.size());
  nets_.push_back(net);
  adj_.emplace_back();
  idx_.emplace(net, v);
  hard_.ensure(v);
  classMembers_[v] = {v};
  return v;
}

std::int64_t OverlayConstraintGraph::findVertex(NetId net) const {
  auto it = idx_.find(net);
  return it == idx_.end() ? -1 : std::int64_t(it->second);
}

int OverlayConstraintGraph::hardRelationOf(const Classification& cls) const {
  if (k_ == 2) {
    if (!cls.hard()) return -1;
    const std::optional<std::uint8_t> rel = hardParity(cls);
    return rel ? int(*rel) : -1;
  }
  return (spec_ && spec_->hardRelation) ? spec_->hardRelation(cls) : -1;
}

void OverlayConstraintGraph::recountDiffViolations() {
  // k >= 3 invariant: hardViolations_ == number of alive must-differ edges
  // whose endpoints landed in the same equality class. Unlike the k == 2
  // monotone counter this is recomputable, which removeNet's rebuild and
  // class merges rely on.
  int n = 0;
  for (std::uint32_t ei : diffEdges_) {
    const OcgEdge& e = edges_[ei];
    if (!e.alive) continue;
    auto [ru, du] = hard_.find(e.u);
    auto [rv, dv] = hard_.find(e.v);
    (void)du;
    (void)dv;
    if (ru == rv) ++n;
  }
  hardViolations_ = n;
}

bool OverlayConstraintGraph::addScenario(NetId a, NetId b,
                                         const Classification& cls) {
  const bool material = (k_ == 2 || !spec_ || !spec_->material)
                            ? cls.material()
                            : spec_->material(cls);
  if (!material) return true;
  const std::uint32_t u = vertexFor(a);
  const std::uint32_t v = vertexFor(b);
  OcgEdge e;
  e.u = u;
  e.v = v;
  e.cls = cls;
  const std::size_t ei = edges_.size();
  edges_.push_back(e);
  adj_[u].push_back(std::uint32_t(ei));
  adj_[v].push_back(std::uint32_t(ei));
  if (k_ > 2) {
    const int rel = hardRelationOf(cls);
    if (rel < 0) return true;
    if (rel == 1) {
      // Must-differ is not a group relation for k >= 3; track the edge on
      // the side. It is violated iff its endpoints are (or later become)
      // equality-constrained.
      diffEdges_.push_back(std::uint32_t(ei));
      auto [ru, du] = hard_.find(u);
      auto [rv, dv] = hard_.find(v);
      (void)du;
      (void)dv;
      if (ru == rv) {
        ++hardViolations_;
        return false;
      }
      return true;
    }
    // rel == 0: merge equality classes (delta 0 never contradicts).
    auto [ru, du] = hard_.find(u);
    auto [rv, dv] = hard_.find(v);
    (void)du;
    (void)dv;
    if (ru == rv) return true;
    const int before = hardViolations_;
    hard_.unite(u, v, 0);
    auto [newRoot, nd] = hard_.find(u);
    (void)nd;
    const std::uint32_t winner = std::uint32_t(newRoot);
    const std::uint32_t loser =
        (winner == ru) ? std::uint32_t(rv) : std::uint32_t(ru);
    auto& win = classMembers_[winner];
    auto& lose = classMembers_[loser];
    win.insert(win.end(), lose.begin(), lose.end());
    classMembers_.erase(loser);
    recountDiffViolations();  // the merge may close must-differ edges
    return hardViolations_ <= before;
  }
  if (!cls.hard()) return true;
  const std::optional<std::uint8_t> relOpt = hardParity(cls);
  if (!relOpt) return true;  // single-assignment ban: cost-enforced only
  const std::uint8_t rel = *relOpt;
  auto [ru, pu] = hard_.find(u);
  auto [rv, pv] = hard_.find(v);
  // Colors of merged classes are reconciled lazily: classColorOf() reads
  // through the root, and pseudoColor()/flipping rewrite class colors.
  if (!hard_.unite(u, v, rel)) {
    ++hardViolations_;
    return false;
  }
  if (ru != rv) {
    auto [newRoot, np] = hard_.find(u);
    const std::uint32_t winner = std::uint32_t(newRoot);
    const std::uint32_t loser = (winner == ru) ? std::uint32_t(rv)
                                               : std::uint32_t(ru);
    auto& win = classMembers_[winner];
    auto& lose = classMembers_[loser];
    win.insert(win.end(), lose.begin(), lose.end());
    classMembers_.erase(loser);
    (void)np;
  }
  return true;
}

void OverlayConstraintGraph::removeNet(NetId net) {
  auto it = idx_.find(net);
  if (it == idx_.end()) return;
  const std::uint32_t v = it->second;
  bool removedHard = false;
  for (std::uint32_t ei : adj_[v]) {
    OcgEdge& e = edges_[ei];
    if (!e.alive) continue;
    e.alive = false;
    removedHard |= (k_ == 2) ? e.hard() : hardRelationOf(e.cls) >= 0;
    const std::uint32_t other = (e.u == v) ? e.v : e.u;
    auto& oadj = adj_[other];
    oadj.erase(std::remove(oadj.begin(), oadj.end(), ei), oadj.end());
  }
  adj_[v].clear();
  if (removedHard) {
    // The rebuild re-roots every class and transfers colors through the
    // snapshot, so the removed vertex's (possibly root) entry is handled.
    rebuildHardStructure();
  } else {
    // Without hard edges the vertex is a singleton class; dropping its
    // color entry cannot affect anyone else.
    classColor_.erase(v);
  }
}

void OverlayConstraintGraph::rebuildHardStructure() {
  // Preserve vertex colors across the rebuild: the class representative
  // may change, so snapshot per-vertex colors first.
  std::vector<Color> snapshot(nets_.size(), Color::Unassigned);
  for (std::uint32_t v = 0; v < nets_.size(); ++v) {
    snapshot[v] = classColorOf(v);
  }
  hard_.clear();
  hard_.ensure(nets_.size() == 0 ? 0 : nets_.size() - 1);
  classColor_.clear();
  hardViolations_ = 0;
  if (k_ == 2) {
    for (const OcgEdge& e : edges_) {
      if (!e.alive || !e.hard()) continue;
      const std::optional<std::uint8_t> rel = hardParity(e.cls);
      if (!rel) continue;
      if (!hard_.unite(e.u, e.v, *rel)) ++hardViolations_;
    }
  } else {
    diffEdges_.clear();
    for (std::uint32_t ei = 0; ei < edges_.size(); ++ei) {
      const OcgEdge& e = edges_[ei];
      if (!e.alive) continue;
      const int rel = hardRelationOf(e.cls);
      if (rel == 0) {
        hard_.unite(e.u, e.v, 0);
      } else if (rel == 1) {
        diffEdges_.push_back(ei);
      }
    }
  }
  classMembers_.clear();
  for (std::uint32_t v = 0; v < nets_.size(); ++v) {
    auto [root, par] = hard_.find(v);
    classMembers_[std::uint32_t(root)].push_back(v);
    (void)par;
  }
  for (std::uint32_t v = 0; v < nets_.size(); ++v) {
    if (snapshot[v] == Color::Unassigned) continue;
    auto [root, par] = hard_.find(v);
    const Color rootColor =
        par ? flippedColor(snapshot[v]) : snapshot[v];
    classColor_[std::uint32_t(root)] = rootColor;  // last write wins
  }
  if (k_ > 2) recountDiffViolations();
}

Color OverlayConstraintGraph::classColorOf(std::uint32_t vertex) const {
  auto [root, par] = hard_.find(vertex);
  auto it = classColor_.find(std::uint32_t(root));
  if (it == classColor_.end() || it->second == Color::Unassigned) {
    return Color::Unassigned;
  }
  return par ? flippedColor(it->second) : it->second;
}

Color OverlayConstraintGraph::colorOf(NetId net) const {
  auto it = idx_.find(net);
  if (it == idx_.end()) return Color::Unassigned;
  return classColorOf(it->second);
}

void OverlayConstraintGraph::setColor(NetId net, Color c) {
  const std::uint32_t v = vertexFor(net);
  auto [root, par] = hard_.find(v);
  classColor_[std::uint32_t(root)] = par ? flippedColor(c) : c;
}

std::int64_t OverlayConstraintGraph::costOfAssignment(const OcgEdge& e,
                                                      Color cu,
                                                      Color cv) const {
  // Unassigned endpoints take their best case so partially colored layouts
  // are charged optimistically.
  if (k_ > 2 && spec_ && spec_->pairOverlay) {
    const int iu = colorIndex(cu);
    const int iv = colorIndex(cv);
    std::int64_t best = -1;
    for (int a = 0; a < k_; ++a) {
      if (iu >= 0 && a != iu) continue;
      for (int b = 0; b < k_; ++b) {
        if (iv >= 0 && b != iv) continue;
        std::int64_t c = spec_->pairOverlay(e.cls, a, b);
        if (spec_->pairCutRisk && spec_->pairCutRisk(e.cls, a, b)) {
          c += kCutRiskPenalty;
        }
        if (best < 0 || c < best) best = c;
      }
    }
    return best < 0 ? 0 : best;
  }
  std::int64_t best = -1;
  for (Color a : {Color::Core, Color::Second}) {
    if (cu != Color::Unassigned && a != cu) continue;
    for (Color b : {Color::Core, Color::Second}) {
      if (cv != Color::Unassigned && b != cv) continue;
      const int i = assignmentIndex(a, b);
      std::int64_t c = e.cls.overlay[i];
      if (e.cls.cutRisk[i]) c += kCutRiskPenalty;
      if (best < 0 || c < best) best = c;
    }
  }
  return best < 0 ? 0 : best;
}

std::int64_t OverlayConstraintGraph::edgeCost(const OcgEdge& e) const {
  return costOfAssignment(e, classColorOf(e.u), classColorOf(e.v));
}

int OverlayConstraintGraph::edgeOverlayUnits(const OcgEdge& e) const {
  const Color cu = classColorOf(e.u);
  const Color cv = classColorOf(e.v);
  if (cu == Color::Unassigned || cv == Color::Unassigned) {
    return int(std::min<std::int64_t>(costOfAssignment(e, cu, cv), kHardCost));
  }
  if (k_ > 2 && spec_ && spec_->pairOverlay) {
    return int(std::min<std::int64_t>(
        spec_->pairOverlay(e.cls, colorIndex(cu), colorIndex(cv)), kHardCost));
  }
  return e.cls.overlay[assignmentIndex(cu, cv)];
}

Color OverlayConstraintGraph::pseudoColor(NetId net) {
  const std::uint32_t v = vertexFor(net);
  auto [root, par] = hard_.find(v);
  // Evaluate every root color for the WHOLE hard class of v: cross-class
  // edges use the neighbor's current color; intra-class edges (fixed
  // relative parity) still depend on the root color for asymmetric rules.
  std::int64_t cost[3] = {0, 0, 0};
  auto membersIt = classMembers_.find(std::uint32_t(root));
  const std::vector<std::uint32_t> fallback{v};
  const std::vector<std::uint32_t>& members =
      membersIt != classMembers_.end() ? membersIt->second : fallback;
  for (std::uint32_t w : members) {
    auto [rw, pw] = hard_.find(w);
    for (std::uint32_t ei : adj_[w]) {
      const OcgEdge& e = edges_[ei];
      if (!e.alive) continue;
      const std::uint32_t other = (e.u == w) ? e.v : e.u;
      auto [ro, po] = hard_.find(other);
      if (ro == root && other < w) continue;  // count intra edges once
      for (int rc = 0; rc < k_; ++rc) {
        const Color rootColor = colorFromIndex(rc);
        const Color wColor = pw ? flippedColor(rootColor) : rootColor;
        const Color otherColor =
            (ro == root) ? (po ? flippedColor(rootColor) : rootColor)
                         : classColorOf(other);
        const Color cu = (e.u == w) ? wColor : otherColor;
        const Color cv = (e.u == w) ? otherColor : wColor;
        cost[rc] += costOfAssignment(e, cu, cv);
      }
    }
  }
  // Per-vertex priors (added for every member under its implied color).
  for (std::uint32_t w : members) {
    auto [rw, pw] = hard_.find(w);
    (void)rw;
    for (int rc = 0; rc < k_; ++rc) {
      const Color rootColor = colorFromIndex(rc);
      const Color wColor = pw ? flippedColor(rootColor) : rootColor;
      cost[rc] += priorOf(w, wColor);
    }
  }
  // First index wins ties: for k == 2 this is the historical
  // "cost[0] <= cost[1] ? Core : Second" rule bit for bit.
  int bestIdx = 0;
  for (int rc = 1; rc < k_; ++rc) {
    if (cost[rc] < cost[bestIdx]) bestIdx = rc;
  }
  const Color rootColor = colorFromIndex(bestIdx);
  classColor_[std::uint32_t(root)] = rootColor;
  return par ? flippedColor(rootColor) : rootColor;
}

Color OverlayConstraintGraph::firstFitColor(NetId net) {
  const std::uint32_t v = vertexFor(net);
  // A hard classmate routed earlier already determines this net's color;
  // first-fit never revisits fixed decisions.
  const Color fixed = classColorOf(v);
  if (fixed != Color::Unassigned) return fixed;
  for (int ci = 0; ci < k_; ++ci) {
    const Color c = colorFromIndex(ci);
    setColor(net, c);
    bool legal = true;
    forEachEdgeOf(v, [&](std::size_t ei) {
      const OcgEdge& e = edges_[ei];
      const Color cu = classColorOf(e.u);
      const Color cv = classColorOf(e.v);
      if (cu == Color::Unassigned || cv == Color::Unassigned) return;
      if (k_ > 2 && spec_ && spec_->pairOverlay) {
        if (spec_->pairOverlay(e.cls, colorIndex(cu), colorIndex(cv)) >=
            kHardCost) {
          legal = false;
        }
        return;
      }
      if (e.cls.overlay[assignmentIndex(cu, cv)] >= kHardCost) legal = false;
    });
    if (legal) return c;
  }
  setColor(net, Color::Core);  // nothing legal: first-fit falls back
  return Color::Core;
}

void OverlayConstraintGraph::setPrior(NetId net, std::int64_t corePrior,
                                      std::int64_t secondPrior) {
  const std::uint32_t v = vertexFor(net);
  if (corePrior == 0 && secondPrior == 0) {
    priors_.erase(v);
  } else {
    priors_[v] = {corePrior, secondPrior};
  }
}

std::int64_t OverlayConstraintGraph::priorOf(std::uint32_t vertex,
                                             Color c) const {
  auto it = priors_.find(vertex);
  if (it == priors_.end()) return 0;
  const int i = colorIndex(c);
  if (i < 0 || i > 1) return 0;  // only Core/Second carry priors
  return it->second[i];
}

std::int64_t OverlayConstraintGraph::totalOverlayUnits() const {
  std::int64_t total = 0;
  for (const OcgEdge& e : edges_) {
    if (e.alive) total += edgeOverlayUnits(e);
  }
  return total;
}

std::int64_t OverlayConstraintGraph::overlayUnitsOfNet(NetId net) const {
  auto it = idx_.find(net);
  if (it == idx_.end()) return 0;
  std::int64_t total = 0;
  for (std::uint32_t ei : adj_[it->second]) {
    const OcgEdge& e = edges_[ei];
    if (e.alive) total += edgeOverlayUnits(e);
  }
  return total;
}

std::int64_t OverlayConstraintGraph::classOverlayUnits(NetId net) const {
  auto it = idx_.find(net);
  if (it == idx_.end()) return 0;
  auto [root, par] = hard_.find(it->second);
  (void)par;
  auto membersIt = classMembers_.find(std::uint32_t(root));
  if (membersIt == classMembers_.end()) return overlayUnitsOfNet(net);
  std::vector<std::uint32_t> eids;
  for (std::uint32_t w : membersIt->second) {
    eids.insert(eids.end(), adj_[w].begin(), adj_[w].end());
  }
  std::sort(eids.begin(), eids.end());
  eids.erase(std::unique(eids.begin(), eids.end()), eids.end());
  std::int64_t total = 0;
  for (std::uint32_t ei : eids) {
    const OcgEdge& e = edges_[ei];
    if (e.alive) total += edgeOverlayUnits(e);
  }
  return total;
}

int OverlayConstraintGraph::cutRiskCount() const {
  int n = 0;
  for (const OcgEdge& e : edges_) {
    if (!e.alive) continue;
    const Color cu = classColorOf(e.u);
    const Color cv = classColorOf(e.v);
    if (cu == Color::Unassigned || cv == Color::Unassigned) continue;
    if (k_ > 2 && spec_ && spec_->pairCutRisk) {
      if (spec_->pairCutRisk(e.cls, colorIndex(cu), colorIndex(cv))) ++n;
      continue;
    }
    if (e.cls.cutRisk[assignmentIndex(cu, cv)]) ++n;
  }
  return n;
}

void OverlayConstraintGraph::forEachEdgeOf(
    std::uint32_t vertex, const std::function<void(std::size_t)>& fn) const {
  for (std::uint32_t ei : adj_[vertex]) {
    if (edges_[ei].alive) fn(ei);
  }
}

std::pair<std::uint32_t, std::uint8_t> OverlayConstraintGraph::hardClassOf(
    std::uint32_t v) const {
  auto [root, par] = hard_.find(v);
  return {std::uint32_t(root), par};
}

void OverlayConstraintGraph::applyColors(const std::vector<Color>& colors) {
  assert(colors.size() <= nets_.size());
  for (std::uint32_t v = 0; v < colors.size(); ++v) {
    if (colors[v] == Color::Unassigned) continue;
    auto [root, par] = hard_.find(v);
    classColor_[std::uint32_t(root)] =
        par ? flippedColor(colors[v]) : colors[v];
  }
}

}  // namespace sadp
