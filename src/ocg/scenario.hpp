// Potential-overlay-scenario taxonomy (paper §III-A, Theorems 1-3, Fig. 9,
// Table II, Appendix Figs. 23-34).
//
// A pair of dependent wire fragments is classified by the tuple
// (Xmin, Ymin, Dir) measured in routing tracks. Every scenario type carries
// a per-color-assignment side-overlay cost (in units of w_line) plus flags
// for assignments that are strictly forbidden (hard overlays) or that risk
// a Type-A cut conflict (paper §III-D, Fig. 15(a)).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

#include "geom/geom.hpp"
#include "grid/routing_grid.hpp"

namespace sadp {

/// Mask assignment of a net segment: printed by the core mask, or formed as
/// a second pattern by spacers. `Third` exists only for k>=3 patterning
/// backends (a third exposure mask); the SADP stack never produces it.
/// Unassigned keeps value 2 so the packed 2-color tables are untouched.
enum class Color : std::uint8_t {
  Core = 0,
  Second = 1,
  Unassigned = 2,
  Third = 3,
};

const char* toString(Color c);
constexpr Color flippedColor(Color c) {
  return c == Color::Core ? Color::Second
         : c == Color::Second ? Color::Core
                              : Color::Unassigned;
}

/// Dense index of an assignable color: Core 0, Second 1, Third 2.
/// (Distinct from the enum value: Third sorts after Unassigned so the
/// 2-color code keeps its historical values.) Unassigned maps to -1.
constexpr int colorIndex(Color c) {
  switch (c) {
    case Color::Core: return 0;
    case Color::Second: return 1;
    case Color::Third: return 2;
    default: return -1;
  }
}
constexpr Color colorFromIndex(int i) {
  return i == 0   ? Color::Core
         : i == 1 ? Color::Second
         : i == 2 ? Color::Third
                  : Color::Unassigned;
}

/// The eleven dependent geometry classes of Theorem 2 plus `Independent`
/// (distance >= d_indep or same polygon). Names follow Fig. 9.
enum class ScenarioType : std::uint8_t {
  Independent,
  T1a,  ///< (0,1,par)  side-to-side @1 track  -- hard: different colors
  T1b,  ///< (0,1,perp) tip-to-side @1         -- hard: same color
  T2a,  ///< (0,2,par)  side-to-side @2        -- nonhard: same color
  T2b,  ///< (0,2,perp) tip-to-side @2         -- >=1 unit overlay always
  T2c,  ///< (1,0,par)  tip-to-tip @1          -- tip overlays only
  T2d,  ///< (2,0,par)  tip-to-tip @2          -- no side overlay
  T3a,  ///< (1,1,par)  diagonal               -- nonhard: different colors
  T3b,  ///< (1,1,perp) diagonal orthogonal    -- nonhard: both second
  T3c,  ///< (1,2,par)                         -- nonhard: forbid CS
  T3d,  ///< (2,1,par)                         -- nonhard: forbid SC
  T3e,  ///< (1,2,perp)                        -- no side overlay
};

const char* toString(ScenarioType t);

/// Index into per-assignment arrays for the color pair (a, b):
/// 0 = CC, 1 = CS, 2 = SC, 3 = SS (first letter = pattern A).
constexpr int assignmentIndex(Color a, Color b) {
  return (a == Color::Second ? 2 : 0) + (b == Color::Second ? 1 : 0);
}

/// Sentinel cost for a hard-forbidden color assignment.
inline constexpr int kHardCost = 1'000'000;

/// Static description of one scenario type (row of Table II).
struct ScenarioRule {
  ScenarioType type = ScenarioType::Independent;
  /// Side overlay induced per assignment, in units of w_line; kHardCost for
  /// assignments that induce hard overlays (strictly forbidden).
  std::array<int, 4> overlay{0, 0, 0, 0};
  /// Assignments that additionally induce a Type-A cut conflict; the router
  /// forbids these outright (paper §III-D).
  std::array<bool, 4> cutRisk{false, false, false, false};

  bool isHard() const {
    for (int c : overlay) {
      if (c >= kHardCost) return true;
    }
    return false;
  }
  /// Minimum achievable side overlay ("min SO" column of Table II).
  int minOverlay() const;
  /// Worst finite side overlay ("max SO" column of Table II).
  int maxOverlay() const;
  /// True if no assignment induces side overlay (types 2-c, 2-d, 3-e);
  /// such scenarios produce no constraint-graph edge.
  bool trivial() const { return maxOverlay() == 0; }
};

/// The full rule table, one entry per ScenarioType (Table II).
const ScenarioRule& scenarioRule(ScenarioType t);

/// A wire fragment: a maximal rectangle of a routed net on one layer, in
/// half-open *track* coordinates.
struct Fragment {
  Track xlo = 0, ylo = 0, xhi = 0, yhi = 0;  // half-open track box
  NetId net = kInvalidNet;

  Track width() const { return xhi - xlo; }
  Track height() const { return yhi - ylo; }
  Orient orient() const {
    return height() > width() ? Orient::Vertical : Orient::Horizontal;
  }
  friend constexpr bool operator==(const Fragment&, const Fragment&) = default;
};

std::ostream& operator<<(std::ostream& os, const Fragment& f);

/// Track-space separation of two half-open index ranges: 0 if the ranges
/// share a track, else the number of track pitches between nearest tracks
/// (adjacent tracks -> 1).
constexpr Track trackGap(Track alo, Track ahi, Track blo, Track bhi) {
  if (ahi <= blo) return blo - ahi + 1;
  if (bhi <= alo) return alo - bhi + 1;
  return 0;
}

/// Result of classifying an ordered fragment pair (A, B): the scenario type
/// plus the overlay/cut-risk arrays already permuted so that index
/// assignmentIndex(colorA, colorB) applies to THIS (A, B) order.
struct Classification {
  ScenarioType type = ScenarioType::Independent;
  std::array<int, 4> overlay{0, 0, 0, 0};
  std::array<bool, 4> cutRisk{false, false, false, false};

  bool independent() const { return type == ScenarioType::Independent; }
  bool hard() const;
  /// True if the scenario constrains coloring at all.
  bool material() const;
};

/// Classifies a fragment pair per Theorems 1-2. Fragments of the same net
/// are always Independent (Theorem 3). The geometry tuple is normalized to
/// the fragments' orientation (for parallel pairs: gap along the wire axis
/// vs across it) and to the symmetric (x,y)==(y,x) rule for orthogonal
/// pairs. `multiplicity` scaling of overlay length by the facing span is
/// intentionally NOT applied here; the constraint graph handles weights.
Classification classify(const Fragment& a, const Fragment& b);

/// Independence predicate of Theorem 1 in track space. The edge-to-edge
/// distance of wires with track gaps (gx, gy) is
/// sqrt((gx*p - w)^2 + (gy*p - w)^2) with p = 40, w = 20 nm; comparing with
/// d_indep = 84.85 nm leaves exactly the tuples of Theorem 2 dependent:
/// axis tuples (0,1), (0,2) and diagonal tuples (1,1), (1,2), (2,1).
constexpr bool independentGaps(Track gx, Track gy) {
  if (gx == 0 && gy == 0) return true;  // same polygon / overlapping ranges
  if (gx == 0 || gy == 0) return std::max(gx, gy) >= 3;
  const Track mn = gx < gy ? gx : gy;
  const Track mx = gx < gy ? gy : gx;
  return mn >= 2 || mx >= 3;
}

/// Independence radius of Theorem 1 in whole tracks: the smallest track
/// count k such that any fragment farther than k tracks (in both axes) is
/// Independent of a given fragment. d_indep = sqrt(2) * (w_line +
/// 2*w_spacer) ~= 84.85 nm under default rules; dividing by the pitch and
/// rounding up gives k = 3. The ECO path uses this to bound an edit's
/// dirty region: nets entirely outside the edited geometry inflated by k
/// tracks cannot change scenario relations with it (service/session.cpp).
Track independenceRadiusTracks(const DesignRules& rules);

}  // namespace sadp
