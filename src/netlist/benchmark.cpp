#include "netlist/benchmark.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace sadp {

BenchmarkSpec BenchmarkSpec::scaled(double f) const {
  if (f <= 0.0 || f > 1.0) {
    throw std::invalid_argument("BenchmarkSpec::scaled: f must be in (0,1]");
  }
  BenchmarkSpec s = *this;
  s.netCount = std::max(1, int(std::lround(netCount * f)));
  const double edge = std::sqrt(f);
  s.width = std::max<Track>(16, Track(std::lround(width * edge)));
  s.height = std::max<Track>(16, Track(std::lround(height * edge)));
  return s;
}

std::vector<BenchmarkSpec> paperBenchmarks() {
  // Die sizes from Tables III/IV (µm) divided by the 40 nm pitch.
  // 6.8µm -> 170 tracks, 9.6 -> 240, 16 -> 400, 24 -> 600, 36 -> 900.
  std::vector<BenchmarkSpec> v;
  struct Row {
    const char* name;
    int nets;
    Track edge;
  };
  const Row rows[] = {{"Test1", 1500, 170},  {"Test2", 2700, 240},
                      {"Test3", 5500, 400},  {"Test4", 12000, 600},
                      {"Test5", 28000, 900}, {"Test6", 1500, 170},
                      {"Test7", 2700, 240},  {"Test8", 5500, 400},
                      {"Test9", 12000, 600}, {"Test10", 28000, 900}};
  std::uint64_t seed = 20140601;  // DAC-14 vintage; arbitrary but fixed
  for (int i = 0; i < 10; ++i) {
    BenchmarkSpec s;
    s.name = rows[i].name;
    s.netCount = rows[i].nets;
    s.width = s.height = rows[i].edge;
    s.layers = 3;
    s.pinCandidates = (i >= 5) ? 3 : 1;
    s.seed = seed + std::uint64_t(i) * 7919;
    v.push_back(std::move(s));
  }
  return v;
}

BenchmarkSpec paperBenchmark(const std::string& name) {
  for (BenchmarkSpec& s : paperBenchmarks()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown paper benchmark: " + name);
}

namespace {

struct NodeHash {
  std::size_t operator()(const GridNode& n) const {
    return (std::size_t(n.x) * 1000003u) ^ (std::size_t(n.y) * 97u) ^
           std::size_t(n.layer);
  }
};

}  // namespace

BenchmarkInstance makeBenchmark(const BenchmarkSpec& spec) {
  if (spec.netCount <= 0 || spec.width <= 0 || spec.height <= 0) {
    throw std::invalid_argument("makeBenchmark: bad spec");
  }
  DesignRules rules;  // paper's 10 nm-node instance
  RoutingGrid grid(spec.width, spec.height, spec.layers, rules);
  std::mt19937_64 rng(spec.seed);

  // Rectangular blockages on layer 0 (cell obstructions).
  const std::int64_t targetBlocked =
      std::int64_t(spec.blockageFraction * double(spec.width) * spec.height);
  std::int64_t blocked = 0;
  std::uniform_int_distribution<Track> bx(0, spec.width - 1);
  std::uniform_int_distribution<Track> by(0, spec.height - 1);
  std::uniform_int_distribution<Track> bsize(2, 8);
  while (blocked < targetBlocked) {
    const Track x = bx(rng), y = by(rng);
    const Track w = bsize(rng), h = bsize(rng);
    grid.blockBox(0, x, y, x + w, y + h);
    blocked += std::int64_t(w) * h;
  }

  // Pin placement: distinct free layer-0 nodes; local nets.
  Netlist nl;
  std::unordered_set<GridNode, NodeHash> used;
  std::uniform_int_distribution<Track> px(0, spec.width - 1);
  std::uniform_int_distribution<Track> py(0, spec.height - 1);
  // Net span distribution: mostly short nets, occasional long ones.
  // Calibrated so total demand is ~15% of routing capacity, typical of
  // standard-cell detailed routing (the paper's industrial benchmarks
  // reach 96-98% routability, which is impossible at stress densities).
  std::geometric_distribution<int> spanDist(0.3);
  std::uniform_int_distribution<int> signDist(0, 1);

  auto freeNode = [&](const GridNode& n) {
    return grid.inBounds(n) && !grid.isBlocked(n) && !used.count(n);
  };

  auto takeCandidates = [&](const GridNode& base, int k) -> Pin {
    Pin p;
    p.candidates.push_back(base);
    used.insert(base);
    // Extra candidates: nearby free nodes on the same layer.
    for (int step = 1; int(p.candidates.size()) < k && step <= 6; ++step) {
      const GridNode opts[4] = {{base.x + step, base.y, 0},
                                {base.x - step, base.y, 0},
                                {base.x, base.y + step, 0},
                                {base.x, base.y - step, 0}};
      for (const GridNode& o : opts) {
        if (int(p.candidates.size()) >= k) break;
        if (freeNode(o)) {
          p.candidates.push_back(o);
          used.insert(o);
        }
      }
    }
    return p;
  };

  for (int i = 0; i < spec.netCount; ++i) {
    GridNode a, b;
    bool placed = false;
    for (int attempt = 0; attempt < 400 && !placed; ++attempt) {
      a = {px(rng), py(rng), 0};
      if (!freeNode(a)) continue;
      const Track dx = Track((spanDist(rng) + 2) * (signDist(rng) ? 1 : -1));
      const Track dy = Track((spanDist(rng) + 2) * (signDist(rng) ? 1 : -1));
      b = {std::clamp<Track>(a.x + dx, 0, spec.width - 1),
           std::clamp<Track>(a.y + dy, 0, spec.height - 1), 0};
      if (b == a || !freeNode(b)) continue;
      placed = true;
    }
    if (!placed) continue;  // extremely dense corner; skip
    Pin src = takeCandidates(a, spec.pinCandidates);
    Pin tgt = takeCandidates(b, spec.pinCandidates);
    nl.add("n" + std::to_string(i), std::move(src), std::move(tgt));
  }

  return BenchmarkInstance{spec, std::move(grid), std::move(nl)};
}

}  // namespace sadp
