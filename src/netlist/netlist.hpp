// Netlist model: two-pin nets over the routing grid, with optional multiple
// pin candidate locations (paper §IV: benchmark set 2 fixes pin locations,
// set 1 gives every pin multiple candidates, as in Du et al. [10]).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "grid/routing_grid.hpp"

namespace sadp {

/// A pin with one or more candidate grid locations; the router commits to
/// exactly one candidate when the net is routed.
struct Pin {
  std::vector<GridNode> candidates;

  bool fixed() const { return candidates.size() == 1; }
};

/// A net: two mandatory pins (source/target) plus optional extra taps for
/// multi-pin nets (routed as a sequential Steiner tree). `id` indexes into
/// Netlist::nets.
struct Net {
  NetId id = kInvalidNet;
  std::string name;
  Pin source;
  Pin target;
  std::vector<Pin> taps;  ///< additional pins beyond the first two

  std::size_t pinCount() const { return 2 + taps.size(); }
};

/// The routing problem's net collection.
struct Netlist {
  std::vector<Net> nets;

  Net& add(std::string name, Pin source, Pin target);
  /// Multi-pin form: pins.size() >= 2; the first two become source/target,
  /// the rest taps.
  Net& addMultiPin(std::string name, std::vector<Pin> pins);
  std::size_t size() const { return nets.size(); }
};

/// Serializes a netlist to a plain-text stream ("sadp-netlist v2": one net
/// per line: name, pin count, then each pin as a ';'-separated candidate
/// list of x,y,layer).
void writeNetlist(std::ostream& os, const Netlist& nl);

/// Parses the v2 format (and the legacy two-pin v1). Throws
/// std::runtime_error on malformed input.
Netlist readNetlist(std::istream& is);

}  // namespace sadp
