// Synthetic benchmark generator mirroring the paper's Test1..Test10
// circuits (Tables III/IV): same net counts, die sizes (at 40 nm pitch),
// three routing layers; Test6..Test10 add multiple pin candidate locations.
//
// The paper's benchmarks are proprietary scaled-down industrial designs;
// this generator is the documented substitution (DESIGN.md §7): it matches
// the published net-count / die-area statistics and is fully seeded so every
// experiment is reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace sadp {

/// Parameters of one synthetic circuit.
struct BenchmarkSpec {
  std::string name;
  int netCount = 0;
  Track width = 0;       ///< tracks
  Track height = 0;      ///< tracks
  int layers = 3;
  int pinCandidates = 1; ///< 1 = fixed pins; >1 = multi-candidate benchmarks
  double blockageFraction = 0.02;  ///< fraction of layer-0 area blocked
  std::uint64_t seed = 1;

  /// Scales net count and die edge by sqrt(f)/f to shrink runtime while
  /// keeping net density identical. f in (0, 1].
  BenchmarkSpec scaled(double f) const;
};

/// The ten published circuits. Index 0..4 = Test1..Test5 (fixed pins,
/// Table III); 5..9 = Test6..Test10 (multi-candidate pins, Table IV).
std::vector<BenchmarkSpec> paperBenchmarks();

/// Looks up a paper benchmark by name ("Test1".."Test10").
BenchmarkSpec paperBenchmark(const std::string& name);

/// A generated routing problem: the grid (with blockages painted) plus the
/// netlist. The grid does NOT yet have pins occupied; the router owns that.
struct BenchmarkInstance {
  BenchmarkSpec spec;
  RoutingGrid grid;
  Netlist netlist;
};

/// Deterministically generates an instance from a spec. Pins are placed on
/// distinct nodes of layer 0, biased to local nets (mean Manhattan length
/// a few tens of tracks) like standard-cell detailed routing.
BenchmarkInstance makeBenchmark(const BenchmarkSpec& spec);

}  // namespace sadp
