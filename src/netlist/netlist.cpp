#include "netlist/netlist.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sadp {

Net& Netlist::add(std::string name, Pin source, Pin target) {
  if (source.candidates.empty() || target.candidates.empty()) {
    throw std::invalid_argument("Netlist::add: pin with no candidates");
  }
  Net n;
  n.id = NetId(nets.size());
  n.name = std::move(name);
  n.source = std::move(source);
  n.target = std::move(target);
  nets.push_back(std::move(n));
  return nets.back();
}

Net& Netlist::addMultiPin(std::string name, std::vector<Pin> pins) {
  if (pins.size() < 2) {
    throw std::invalid_argument("Netlist::addMultiPin: needs >= 2 pins");
  }
  for (const Pin& p : pins) {
    if (p.candidates.empty()) {
      throw std::invalid_argument("Netlist::addMultiPin: empty pin");
    }
  }
  Net& n = add(std::move(name), std::move(pins[0]), std::move(pins[1]));
  n.taps.assign(std::make_move_iterator(pins.begin() + 2),
                std::make_move_iterator(pins.end()));
  return n;
}

namespace {

void writePin(std::ostream& os, const Pin& p) {
  for (std::size_t i = 0; i < p.candidates.size(); ++i) {
    const GridNode& c = p.candidates[i];
    if (i) os << ';';
    os << c.x << ',' << c.y << ',' << c.layer;
  }
}

Pin parsePin(const std::string& field) {
  Pin p;
  std::istringstream ss(field);
  std::string cand;
  while (std::getline(ss, cand, ';')) {
    GridNode n;
    char c1 = 0, c2 = 0;
    std::istringstream cs(cand);
    int layer = 0;
    if (!(cs >> n.x >> c1 >> n.y >> c2 >> layer) || c1 != ',' || c2 != ',') {
      throw std::runtime_error("readNetlist: malformed pin candidate '" +
                               cand + "'");
    }
    n.layer = std::int16_t(layer);
    p.candidates.push_back(n);
  }
  if (p.candidates.empty()) {
    throw std::runtime_error("readNetlist: empty pin field");
  }
  return p;
}

}  // namespace

void writeNetlist(std::ostream& os, const Netlist& nl) {
  os << "sadp-netlist v2 " << nl.nets.size() << "\n";
  for (const Net& n : nl.nets) {
    os << n.name << ' ' << n.pinCount() << ' ';
    writePin(os, n.source);
    os << ' ';
    writePin(os, n.target);
    for (const Pin& p : n.taps) {
      os << ' ';
      writePin(os, p);
    }
    os << "\n";
  }
}

Netlist readNetlist(std::istream& is) {
  std::string magic, version;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "sadp-netlist" ||
      (version != "v1" && version != "v2")) {
    throw std::runtime_error("readNetlist: bad header");
  }
  Netlist nl;
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    std::size_t pins = 2;
    if (!(is >> name)) {
      throw std::runtime_error("readNetlist: truncated net record");
    }
    if (version == "v2" && !(is >> pins)) {
      throw std::runtime_error("readNetlist: missing pin count");
    }
    if (pins < 2) throw std::runtime_error("readNetlist: net with < 2 pins");
    std::vector<Pin> parsed;
    for (std::size_t p = 0; p < pins; ++p) {
      std::string field;
      if (!(is >> field)) {
        throw std::runtime_error("readNetlist: truncated net record");
      }
      parsed.push_back(parsePin(field));
    }
    nl.addMultiPin(std::move(name), std::move(parsed));
  }
  return nl;
}

}  // namespace sadp
