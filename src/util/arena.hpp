// Bump-pointer arena allocator (DESIGN.md §5.9 "search-core internals").
//
// The routing inner loop (A* open-list buckets, the flipping DP tables,
// OCG edge storage) used to hammer the global allocator once per net; under
// the concurrent --batch driver those allocations contend on the malloc
// arena locks. An Arena turns them into pointer bumps against run-local
// blocks that are recycled wholesale.
//
// Two usage patterns, both per-RunContext:
//
//   - scratch:   open an ArenaScope, allocate freely, and let the scope
//                rewind the arena to its entry mark on destruction. Scopes
//                nest LIFO (asserted); one route()/colorFlip() call each
//                opens one. After the first call warms the block list, a
//                search allocates zero bytes from the global allocator.
//   - persistent: allocate through the std::pmr::memory_resource interface
//                (Arena is one) and never deallocate; memory is reclaimed
//                when the owning RunContext dies. Backs the OCG edge and
//                adjacency vectors, whose lifetime is the run itself.
//
// Thread contract: an Arena is NOT thread-safe. The RunContext-owned
// arenas are touched only by the run's driving thread (the router, A*,
// coloring); parallelFor workers never allocate from them. Distinct
// concurrent runs use distinct contexts and therefore distinct arenas --
// the same isolation contract the metrics registries follow.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <new>

namespace sadp {

class Arena : public std::pmr::memory_resource {
 public:
  /// First block size; later blocks double up to kMaxBlockBytes.
  static constexpr std::size_t kInitialBlockBytes = std::size_t(64) << 10;
  static constexpr std::size_t kMaxBlockBytes = std::size_t(8) << 20;

  Arena() = default;
  ~Arena() override;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two). Never
  /// returns null; oversized requests get a dedicated block.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Typed array allocation (uninitialized storage).
  template <typename T>
  T* allocArray(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds everything: all blocks become reusable, nothing is freed
  /// back to the system (the block list is the warm cache). Only valid
  /// when no ArenaScope is open and no persistent allocation is live.
  void reset();

  /// Bytes handed out since construction / the last reset().
  std::size_t bytesAllocated() const { return bytesAllocated_; }
  /// Bytes of system memory held in blocks.
  std::size_t bytesReserved() const { return bytesReserved_; }

 private:
  struct Block {
    Block* prev = nullptr;
    std::size_t capacity = 0;  ///< usable bytes after the header
    std::size_t used = 0;
    // payload follows the header
    char* data() { return reinterpret_cast<char*>(this + 1); }
  };

  /// Position snapshot for ArenaScope rewind.
  struct Mark {
    Block* block;
    std::size_t used;
  };

  void* do_allocate(std::size_t bytes, std::size_t align) override {
    return allocate(bytes, align);
  }
  void do_deallocate(void*, std::size_t, std::size_t) override {}
  bool do_is_equal(const std::pmr::memory_resource& o) const noexcept override {
    return this == &o;
  }

  Block* newBlock(std::size_t minBytes);
  void* allocSlow(std::size_t bytes, std::size_t align);

  Block* head_ = nullptr;   ///< current block (top of the chain)
  Block* spare_ = nullptr;  ///< recycled blocks ahead of head_ (after rewind)
  std::size_t bytesAllocated_ = 0;
  std::size_t bytesReserved_ = 0;
  int openScopes_ = 0;

  friend class ArenaScope;
};

/// RAII rewind: captures the arena position at construction and rewinds to
/// it on destruction, invalidating everything allocated inside the scope.
/// Scopes must nest LIFO (debug-asserted via the open-scope counter).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a)
      : arena_(&a),
        mark_{a.head_, a.head_ ? a.head_->used : 0},
        depth_(++a.openScopes_) {}

  ~ArenaScope() {
    assert(arena_->openScopes_ == depth_ && "ArenaScope must nest LIFO");
    --arena_->openScopes_;
    rewind();
  }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  void rewind();

  Arena* arena_;
  Arena::Mark mark_;
  int depth_;
};

/// Minimal growable array over an Arena: push_back, index, size. Growth
/// abandons the old storage inside the arena (reclaimed at scope rewind),
/// so total waste is bounded by 2x the peak size -- the price of O(1)
/// amortized growth with zero allocator traffic.
template <typename T>
class ArenaVector {
 public:
  explicit ArenaVector(Arena& a, std::size_t reserveN = 0) : arena_(&a) {
    if (reserveN) grow(reserveN);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ ? cap_ * 2 : 64);
    data_[size_++] = v;
  }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  void clear() { size_ = 0; }

 private:
  void grow(std::size_t n) {
    T* next = arena_->allocArray<T>(n);
    for (std::size_t i = 0; i < size_; ++i) next[i] = data_[i];
    data_ = next;
    cap_ = n;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace sadp
