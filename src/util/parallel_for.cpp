#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "run/run_context.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

int parallelThreadCount() {
  return RunContext::defaultContext().threadCount();
}

void setParallelThreads(int n) {
  RunContext::defaultContext().setThreadCount(n);
}

void parallelFor(RunContext& ctx, int n,
                 const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // Counted identically on the serial and threaded paths: counter totals
  // must not depend on the worker count (determinism contract). Looked up
  // per call, never cached in a static: the registry is per-context.
  MetricsRegistry& m = ctx.metrics();
  m.counter("parallel.calls").add(1);
  m.counter("parallel.jobs").add(n);
  const int extra =
      ctx.reserveExtraWorkers(std::min(ctx.threadCount(), n) - 1);
  if (extra == 0) {
    RunContext::Scope bind(ctx);
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::mutex errMutex;
  std::exception_ptr firstError;
  auto worker = [&](int slot) {
    RunContext::Scope bind(ctx);
    SADP_SPAN_ARG("parallel.worker", slot);
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(extra));
  for (int t = 1; t <= extra; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : threads) t.join();
  ctx.releaseExtraWorkers(extra);
  if (firstError) std::rethrow_exception(firstError);
}

void parallelFor(int n, const std::function<void(int)>& fn) {
  parallelFor(RunContext::current(), n, fn);
}

namespace {

/// One worker's run queue: an item list frozen before the workers start
/// (thread creation publishes it) plus the atomic chunk cursor both the
/// owner and thieves claim positions from. Claiming is a relaxed
/// fetch_add -- the only data reached through the claimed index is
/// immutable, and fn's own outputs synchronize via the final join, same
/// as the unweighted loop. Padded so cursors of neighboring queues don't
/// false-share.
struct alignas(64) WorkQueue {
  std::vector<int> items;
  std::atomic<int> head{0};
};

}  // namespace

void parallelForWeighted(RunContext& ctx, int n,
                         std::span<const std::int64_t> weights,
                         const std::function<void(int)>& fn) {
  if (n <= 0) return;
  assert(weights.size() >= std::size_t(n));
  // Same counters as the unweighted loop and nothing more: metrics must
  // not depend on the schedule mode (the fuzz suite compares counter
  // totals across serial/static/dynamic runs).
  MetricsRegistry& m = ctx.metrics();
  m.counter("parallel.calls").add(1);
  m.counter("parallel.jobs").add(n);
  const int extra =
      ctx.reserveExtraWorkers(std::min(ctx.threadCount(), n) - 1);
  if (extra == 0) {
    RunContext::Scope bind(ctx);
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  const int nq = extra + 1;
  // LPT seeding: heaviest item first, each into the currently lightest
  // queue (lowest id on ties) -- deterministic in (weights, nq).
  std::vector<int> order(static_cast<std::size_t>(n), 0);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::int64_t wa = weights[std::size_t(a)];
    const std::int64_t wb = weights[std::size_t(b)];
    return wa != wb ? wa > wb : a < b;
  });
  std::unique_ptr<WorkQueue[]> queues(new WorkQueue[std::size_t(nq)]);
  std::vector<std::int64_t> load(std::size_t(nq), 0);
  for (const int i : order) {
    const int q = int(std::min_element(load.begin(), load.end()) -
                      load.begin());
    queues[std::size_t(q)].items.push_back(i);
    load[std::size_t(q)] += std::max<std::int64_t>(1, weights[std::size_t(i)]);
  }

  std::mutex errMutex;
  std::exception_ptr firstError;
  auto runItem = [&](int i) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(errMutex);
      if (!firstError) firstError = std::current_exception();
    }
  };
  auto worker = [&](int slot) {
    RunContext::Scope bind(ctx);
    SADP_SPAN_ARG("parallel.worker", slot);
    // Own queue first, then sweep the victims once: items are never
    // re-enqueued, so a queue observed drained stays drained, and the
    // sweep guarantees the last live worker finishes everything.
    for (int v = 0; v < nq; ++v) {
      WorkQueue& q = queues[std::size_t((slot + v) % nq)];
      const int size = int(q.items.size());
      for (;;) {
        const int h = q.head.fetch_add(1, std::memory_order_relaxed);
        if (h >= size) break;
        const int i = q.items[std::size_t(h)];
        if (v == 0) {
          runItem(i);
        } else {
          SADP_SPAN_ARG("parallel.steal", i);
          runItem(i);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(extra));
  for (int t = 1; t <= extra; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : threads) t.join();
  ctx.releaseExtraWorkers(extra);
  if (firstError) std::rethrow_exception(firstError);
}

void parallelForWeighted(int n, std::span<const std::int64_t> weights,
                         const std::function<void(int)>& fn) {
  parallelForWeighted(RunContext::current(), n, weights, fn);
}

}  // namespace sadp
