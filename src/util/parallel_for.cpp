#include "util/parallel_for.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "run/run_context.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

int parallelThreadCount() {
  return RunContext::defaultContext().threadCount();
}

void setParallelThreads(int n) {
  RunContext::defaultContext().setThreadCount(n);
}

void parallelFor(RunContext& ctx, int n,
                 const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // Counted identically on the serial and threaded paths: counter totals
  // must not depend on the worker count (determinism contract). Looked up
  // per call, never cached in a static: the registry is per-context.
  MetricsRegistry& m = ctx.metrics();
  m.counter("parallel.calls").add(1);
  m.counter("parallel.jobs").add(n);
  const int extra =
      ctx.reserveExtraWorkers(std::min(ctx.threadCount(), n) - 1);
  if (extra == 0) {
    RunContext::Scope bind(ctx);
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::mutex errMutex;
  std::exception_ptr firstError;
  auto worker = [&](int slot) {
    RunContext::Scope bind(ctx);
    SADP_SPAN_ARG("parallel.worker", slot);
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(extra));
  for (int t = 1; t <= extra; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : threads) t.join();
  ctx.releaseExtraWorkers(extra);
  if (firstError) std::rethrow_exception(firstError);
}

void parallelFor(int n, const std::function<void(int)>& fn) {
  parallelFor(RunContext::current(), n, fn);
}

}  // namespace sadp
