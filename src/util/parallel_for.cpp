#include "util/parallel_for.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

namespace {

std::atomic<int> g_override{0};

int envThreadCount() {
  if (const char* s = std::getenv("SADP_THREADS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? int(hw) : 1;
}

/// Extra (non-caller) worker threads currently alive across every nested
/// parallelFor. The process-wide budget is parallelThreadCount() - 1, so
/// the total live worker count stays bounded at any nesting depth; budget
/// freed by a finished outer worker becomes available to inner loops.
std::atomic<int> g_extraInFlight{0};

int reserveExtraWorkers(int want) {
  if (want <= 0) return 0;
  int cur = g_extraInFlight.load(std::memory_order_relaxed);
  for (;;) {
    const int avail = (parallelThreadCount() - 1) - cur;
    if (avail <= 0) return 0;
    const int take = std::min(want, avail);
    if (g_extraInFlight.compare_exchange_weak(cur, cur + take,
                                              std::memory_order_relaxed)) {
      return take;
    }
  }
}

void releaseExtraWorkers(int n) {
  if (n > 0) g_extraInFlight.fetch_sub(n, std::memory_order_relaxed);
}

}  // namespace

int parallelThreadCount() {
  const int o = g_override.load(std::memory_order_relaxed);
  return o > 0 ? o : envThreadCount();
}

void setParallelThreads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void parallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // Counted identically on the serial and threaded paths: counter totals
  // must not depend on the worker count (determinism contract).
  static Counter& calls = metricsCounter("parallel.calls");
  static Counter& jobs = metricsCounter("parallel.jobs");
  calls.add(1);
  jobs.add(n);
  const int extra =
      reserveExtraWorkers(std::min(parallelThreadCount(), n) - 1);
  if (extra == 0) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::mutex errMutex;
  std::exception_ptr firstError;
  auto worker = [&](int slot) {
    SADP_SPAN_ARG("parallel.worker", slot);
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(extra));
  for (int t = 1; t <= extra; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : threads) t.join();
  releaseExtraWorkers(extra);
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace sadp
