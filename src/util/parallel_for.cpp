#include "util/parallel_for.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace sadp {

namespace {

std::atomic<int> g_override{0};

int envThreadCount() {
  if (const char* s = std::getenv("SADP_THREADS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? int(hw) : 1;
}

}  // namespace

int parallelThreadCount() {
  const int o = g_override.load(std::memory_order_relaxed);
  return o > 0 ? o : envThreadCount();
}

void setParallelThreads(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void parallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // Counted identically on the serial and threaded paths: counter totals
  // must not depend on the worker count (determinism contract).
  static Counter& calls = metricsCounter("parallel.calls");
  static Counter& jobs = metricsCounter("parallel.jobs");
  calls.add(1);
  jobs.add(n);
  const int workers = std::min(parallelThreadCount(), n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::mutex errMutex;
  std::exception_ptr firstError;
  auto worker = [&](int slot) {
    SADP_SPAN_ARG("parallel.worker", slot);
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(workers) - 1);
  for (int t = 1; t < workers; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : threads) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace sadp
