#include "util/arena.hpp"

#include <algorithm>
#include <cstdlib>

namespace sadp {

Arena::~Arena() {
  auto freeChain = [](Block* b) {
    while (b != nullptr) {
      Block* prev = b->prev;
      ::operator delete(static_cast<void*>(b));
      b = prev;
    }
  };
  freeChain(head_);
  freeChain(spare_);
}

Arena::Block* Arena::newBlock(std::size_t minBytes) {
  std::size_t cap = head_ ? std::min(head_->capacity * 2, kMaxBlockBytes)
                          : kInitialBlockBytes;
  cap = std::max(cap, minBytes);
  void* raw = ::operator new(sizeof(Block) + cap);
  Block* b = new (raw) Block;
  b->capacity = cap;
  bytesReserved_ += cap;
  return b;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  Block* b = head_;
  if (b != nullptr) {
    const std::size_t aligned = (b->used + align - 1) & ~(align - 1);
    if (aligned + bytes <= b->capacity) {
      b->used = aligned + bytes;
      bytesAllocated_ += bytes;
      return b->data() + aligned;
    }
  }
  return allocSlow(bytes, align);
}

void* Arena::allocSlow(std::size_t bytes, std::size_t align) {
  // Reuse a rewound spare block when it fits; otherwise grow. Blocks are
  // header-aligned to max_align_t, so offset 0 satisfies any `align` up to
  // that; oversized alignment is folded into the size request.
  const std::size_t need = bytes + (align > alignof(std::max_align_t)
                                        ? align
                                        : 0);
  Block* b = nullptr;
  if (spare_ != nullptr && spare_->capacity >= need) {
    b = spare_;
    spare_ = spare_->prev;
  } else {
    b = newBlock(need);
  }
  b->prev = head_;
  b->used = 0;
  head_ = b;
  std::size_t off = 0;
  if (align > alignof(std::max_align_t)) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b->data());
    off = ((base + align - 1) & ~(std::uintptr_t(align) - 1)) - base;
  }
  b->used = off + bytes;
  bytesAllocated_ += bytes;
  return b->data() + off;
}

void Arena::reset() {
  assert(openScopes_ == 0 && "reset() with an open ArenaScope");
  while (head_ != nullptr) {
    Block* prev = head_->prev;
    head_->used = 0;
    head_->prev = spare_;
    spare_ = head_;
    head_ = prev;
  }
  bytesAllocated_ = 0;
}

void ArenaScope::rewind() {
  Arena& a = *arena_;
  // Pop blocks opened inside the scope back onto the spare list, then
  // restore the entry offset in the block that was current at entry.
  while (a.head_ != mark_.block) {
    Arena::Block* prev = a.head_->prev;
    a.head_->used = 0;
    a.head_->prev = a.spare_;
    a.spare_ = a.head_;
    a.head_ = prev;
  }
  if (a.head_ != nullptr) a.head_->used = mark_.used;
}

}  // namespace sadp
