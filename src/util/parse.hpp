// Strict scalar parsing shared by every CLI-facing surface (sadp_route_cli
// option parsing, the service daemon's option and protocol parsing).
//
// atoi-style parsing silently truncates ("--jobs 2x" -> 2, "--port 1e9"
// -> 1), which is exactly how a typo'd flag corrupts a run; these helpers
// accept a token only when the ENTIRE token is a base-10 integer that fits
// the requested range, and report failure instead of guessing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sadp {

/// Parses `s` as a base-10 integer. The whole string must participate
/// (no trailing junk, no leading junk beyond an optional sign/whitespace
/// rejected too: the token must start with a digit or '-'). Returns
/// nullopt on empty input, trailing garbage, or overflow of int64.
std::optional<std::int64_t> parseStrictInt64(const std::string& s);

/// parseStrictInt64 narrowed to int; nullopt when out of int range.
std::optional<int> parseStrictInt(const std::string& s);

/// Range-checked form: value must lie in [lo, hi].
std::optional<int> parseStrictIntIn(const std::string& s, int lo, int hi);

/// Parses `s` as a plain decimal number: an optional '-', digits, and at
/// most one '.' with digits on both sides ("1", "-0.5", "2.25"). Rejects
/// exponents, hex floats, inf/nan, signs other than a single leading '-',
/// and any trailing junk -- the same strictness contract as the integer
/// parsers, for CLI/service weight options like history-cost increments.
std::optional<double> parseStrictDouble(const std::string& s);

/// Range-checked form: value must lie in [lo, hi] and be finite.
std::optional<double> parseStrictDoubleIn(const std::string& s, double lo,
                                          double hi);

}  // namespace sadp
