// Minimal data-parallel loop utility for the embarrassingly-parallel
// per-layer stages (full-chip decomposition, physical reports).
//
// Determinism contract: parallelFor only changes WHO computes an index,
// never the result -- callers write iteration i's output into slot i and
// reduce sequentially afterwards, so any thread count (including 1)
// produces byte-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace sadp {

class RunContext;

/// Worker count of the default run context (the value context-less
/// parallelFor calls from unbound threads use): the setParallelThreads()
/// override if set, else the SADP_THREADS environment variable, else
/// std::thread::hardware_concurrency().
int parallelThreadCount();

/// Programmatic override of the default context's worker count; n <= 0
/// restores the environment/hardware default.
void setParallelThreads(int n);

/// Invokes fn(0) .. fn(n-1), distributing indices over up to
/// ctx.threadCount() threads. fn must be safe to call concurrently for
/// distinct indices. Exceptions thrown by fn are rethrown (first one wins)
/// after all workers finish. Worker threads run with ctx bound
/// (RunContext::Scope), so spans and counters inside fn land in ctx's
/// registries.
///
/// Nested-work submission: parallelFor may be called from inside another
/// parallelFor body (e.g. the per-tile fan-out nested under the per-layer
/// decomposition). Extra workers are drawn from ctx's budget of
/// ctx.threadCount() - 1, itself bounded by the process-wide pool of
/// parallelThreadCount() - 1 threads shared by every context -- so total
/// live workers stay bounded at any nesting depth AND across concurrent
/// contexts, and an inner loop fans out exactly when outer-level imbalance
/// leaves budget idle. A loop that gets no budget runs inline on the
/// calling thread -- the same result by the determinism contract above.
void parallelFor(RunContext& ctx, int n, const std::function<void(int)>& fn);

/// Context-less shim: runs under the calling thread's bound context
/// (RunContext::current(); the default context when unbound).
void parallelFor(int n, const std::function<void(int)>& fn);

/// Cost-weighted work-stealing variant of parallelFor: the same contract
/// (fn(0)..fn(n-1) each invoked exactly once, same worker budget, same
/// parallel.calls/parallel.jobs counters, byte-identical results by the
/// determinism contract above), but assignment is scheduled by weight
/// instead of a single shared cursor.
///
/// weights[i] estimates the relative cost of iteration i (values <= 0 are
/// treated as 1; weights.size() must be >= n). Items are pre-partitioned
/// into one run queue per granted worker by descending weight (greedy
/// longest-processing-time, deterministic in the weights and worker
/// count). Each queue is an immutable item list behind an atomic chunk
/// cursor: the owner drains its own queue front to back, and a worker
/// whose queue runs dry steals by advancing the cursor of the next
/// non-empty victim queue -- so a mispredicted weight costs balance, never
/// correctness, and no locks are taken on the work path. Steals surface
/// as parallel.steal trace spans (scheduling-dependent, like
/// parallel.worker; never as metrics counters, which must stay
/// schedule-invariant).
void parallelForWeighted(RunContext& ctx, int n,
                         std::span<const std::int64_t> weights,
                         const std::function<void(int)>& fn);

/// Context-less shim of the weighted variant.
void parallelForWeighted(int n, std::span<const std::int64_t> weights,
                         const std::function<void(int)>& fn);

}  // namespace sadp
