// Minimal data-parallel loop utility for the embarrassingly-parallel
// per-layer stages (full-chip decomposition, physical reports).
//
// Determinism contract: parallelFor only changes WHO computes an index,
// never the result -- callers write iteration i's output into slot i and
// reduce sequentially afterwards, so any thread count (including 1)
// produces byte-identical results.
#pragma once

#include <functional>

namespace sadp {

/// Worker count used by parallelFor: the setParallelThreads() override if
/// set, else the SADP_THREADS environment variable, else
/// std::thread::hardware_concurrency().
int parallelThreadCount();

/// Programmatic override of the worker count; n <= 0 restores the
/// environment/hardware default.
void setParallelThreads(int n);

/// Invokes fn(0) .. fn(n-1), distributing indices over up to
/// parallelThreadCount() threads. fn must be safe to call concurrently for
/// distinct indices. Exceptions thrown by fn are rethrown (first one wins)
/// after all workers finish.
///
/// Nested-work submission: parallelFor may be called from inside another
/// parallelFor body (e.g. the per-tile fan-out nested under the per-layer
/// decomposition). All loops draw extra workers from one process-wide
/// budget of parallelThreadCount() - 1 threads, so total live workers stay
/// bounded regardless of nesting depth, and an inner loop fans out exactly
/// when outer-level imbalance leaves budget idle. A loop that gets no
/// budget runs inline on the calling thread — the same result by the
/// determinism contract above.
void parallelFor(int n, const std::function<void(int)>& fn);

}  // namespace sadp
