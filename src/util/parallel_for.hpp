// Minimal data-parallel loop utility for the embarrassingly-parallel
// per-layer stages (full-chip decomposition, physical reports).
//
// Determinism contract: parallelFor only changes WHO computes an index,
// never the result -- callers write iteration i's output into slot i and
// reduce sequentially afterwards, so any thread count (including 1)
// produces byte-identical results.
#pragma once

#include <functional>

namespace sadp {

/// Worker count used by parallelFor: the setParallelThreads() override if
/// set, else the SADP_THREADS environment variable, else
/// std::thread::hardware_concurrency().
int parallelThreadCount();

/// Programmatic override of the worker count; n <= 0 restores the
/// environment/hardware default.
void setParallelThreads(int n);

/// Invokes fn(0) .. fn(n-1), distributing indices over up to
/// parallelThreadCount() threads. fn must be safe to call concurrently for
/// distinct indices. Exceptions thrown by fn are rethrown (first one wins)
/// after all workers finish.
void parallelFor(int n, const std::function<void(int)>& fn);

}  // namespace sadp
