#include "util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>

namespace sadp {

std::optional<std::int64_t> parseStrictInt64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  // Reject forms std::stoll would quietly accept: leading whitespace,
  // '+' signs, hex prefixes. A token is a digit string with at most one
  // leading '-'.
  std::size_t i = 0;
  if (s[0] == '-') i = 1;
  if (i == s.size()) return std::nullopt;
  for (std::size_t j = i; j < s.size(); ++j) {
    if (!std::isdigit(static_cast<unsigned char>(s[j]))) return std::nullopt;
  }
  errno = 0;
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(s, &pos);
  } catch (...) {
    return std::nullopt;
  }
  if (pos != s.size()) return std::nullopt;
  return std::int64_t(v);
}

std::optional<int> parseStrictInt(const std::string& s) {
  const auto v = parseStrictInt64(s);
  if (!v || *v < INT_MIN || *v > INT_MAX) return std::nullopt;
  return int(*v);
}

std::optional<int> parseStrictIntIn(const std::string& s, int lo, int hi) {
  const auto v = parseStrictInt(s);
  if (!v || *v < lo || *v > hi) return std::nullopt;
  return v;
}

std::optional<double> parseStrictDouble(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t i = 0;
  if (s[0] == '-') i = 1;
  if (i == s.size()) return std::nullopt;
  bool sawDot = false;
  bool digitsBefore = false;
  bool digitsAfter = false;
  for (std::size_t j = i; j < s.size(); ++j) {
    const char c = s[j];
    if (c == '.') {
      if (sawDot) return std::nullopt;
      sawDot = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      (sawDot ? digitsAfter : digitsBefore) = true;
    } else {
      return std::nullopt;  // exponents, hex, whitespace: all rejected
    }
  }
  if (!digitsBefore || (sawDot && !digitsAfter)) return std::nullopt;
  errno = 0;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (...) {
    return std::nullopt;
  }
  if (pos != s.size() || !std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<double> parseStrictDoubleIn(const std::string& s, double lo,
                                          double hi) {
  const auto v = parseStrictDouble(s);
  if (!v || *v < lo || *v > hi) return std::nullopt;
  return v;
}

}  // namespace sadp
