#include "baselines/baselines.hpp"

#include <chrono>
#include <vector>

#include "run/run_context.hpp"
#include "sadp/trim.hpp"
#include "util/parallel_for.hpp"

namespace sadp {

const char* toString(BaselineKind k) {
  switch (k) {
    case BaselineKind::GaoPanTrim11:
      return "GaoPan[11]";
    case BaselineKind::KodamaCut16:
      return "Kodama[16]";
    case BaselineKind::DuGraphModel10:
      return "Du[10]";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Measures a finished layout with the sign-off pipeline of the process
/// the baseline targets: the trim-process decomposer for [10]/[11], the
/// cut-process synthesizer (without overlay-aware assist trimming) for
/// [16].
BaselineResult measure(OverlayAwareRouter& router, const RoutingStats& stats,
                       bool trimProcess, RunContext& ctx) {
  BaselineResult r;
  r.stats = stats;
  r.overlayUnits = router.model().totalOverlayUnits();
  if (trimProcess) {
    const int layers = router.grid().layers();
    std::vector<TrimReport> perLayer(std::size_t(layers), TrimReport{});
    parallelFor(ctx, layers, [&](int layer) {
      perLayer[std::size_t(layer)] =
          decomposeTrimLayer(router.coloredFragments(layer),
                             router.grid().rules())
              .report;
    });
    for (const TrimReport& t : perLayer) {
      r.physical.sideOverlayNm += t.sideOverlayNm;
      r.physical.sideOverlaySections += t.sideOverlaySections;
      r.physical.hardOverlays += t.hardOverlays;
      r.physical.tipOverlays += t.tipOverlays;
      r.physical.cutSpaceConflicts += t.conflicts();
    }
  } else {
    DecomposeOptions opts;
    opts.trimAssists = false;  // [16] merges assists without overlay control
    r.physical = router.physicalReport(opts);
  }
  r.conflicts = r.physical.cutConflicts() + stats.hardViolationsAccepted;
  return r;
}

BaselineResult runGreedyColorRouter(RoutingGrid& grid, const Netlist& netlist,
                                    bool trimProcess, RunContext& ctx) {
  // Shared reconstruction core for [11] and [16]: colors are fixed when a
  // net is routed (pseudo-coloring only, no flipping), no type 2-b
  // avoidance, no cut-conflict rip-up, no repair; nets whose hard
  // constraints cannot be met are kept and counted as conflicts, as the
  // published routers report conflicts rather than fail the net.
  RouterOptions o;
  o.enableColorFlip = false;
  o.finalGlobalFlip = false;
  o.enableT2bAvoidance = false;
  o.enableCutCheck = false;
  o.enableRepair = false;
  o.astar.gamma = 0.0;
  o.naiveColoring = true;
  if (trimProcess) {
    // [11] keeps routing through decomposition trouble and reports the
    // resulting trim conflicts.
    o.acceptHardViolations = true;
  } else {
    // [16] has no merge technique: odd cycles and merge-requiring
    // scenarios trigger its rip-up and frequently fail the net, which is
    // why the published router loses ~20% routability.
    o.acceptHardViolations = false;
    o.enableMergeOddCycles = false;
  }
  const auto t0 = Clock::now();
  OverlayAwareRouter router(grid, netlist, o, &ctx);
  const RoutingStats stats = router.run();
  BaselineResult r = measure(router, stats, trimProcess, ctx);
  r.seconds = elapsed(t0);
  return r;
}

/// Reconstruction of Du et al. [10]: for every net, every source x target
/// candidate pair is routed separately and evaluated on the constraint
/// model; after each committed net the whole layout is re-validated by
/// re-classifying every fragment pair from scratch (their graph model is
/// rebuilt per net). The re-validation is intentionally quadratic -- that
/// is what makes the published router orders of magnitude slower.
BaselineResult runDuGraphModel(RoutingGrid& grid, const Netlist& netlist,
                               double timeoutSeconds, RunContext& ctx) {
  const auto t0 = Clock::now();
  BaselineResult result;
  OverlayModel model(grid.layers(), grid.width(), grid.height());
  AStarEngine engine(grid, &ctx);
  AStarParams params;  // alpha = beta = 1, no overlay guidance

  // Reserve pins.
  for (const Net& n : netlist.nets) {
    for (const Pin* pin : {&n.source, &n.target}) {
      for (const GridNode& c : pin->candidates) {
        if (grid.inBounds(c) && grid.isFree(c)) grid.occupy(c, n.id);
      }
    }
  }

  RoutingStats stats;
  stats.totalNets = int(netlist.size());
  std::vector<std::vector<GridNode>> paths(netlist.size());

  for (const Net& net : netlist.nets) {
    if (elapsed(t0) > timeoutSeconds) {
      result.timedOut = true;
      break;
    }
    // Enumerate candidate pairs; keep the route with the least model cost.
    double bestCost = 0.0;
    std::vector<GridNode> bestPath;
    int bestVias = 0;
    for (const GridNode& s : net.source.candidates) {
      for (const GridNode& t : net.target.candidates) {
        auto res = engine.route(net.id, {&s, 1}, {&t, 1}, params);
        if (!res) continue;
        // Tentative insertion to score the route on the constraint graph.
        for (const GridNode& n : res->path) grid.occupy(n, net.id);
        model.addNet(net.id, res->path);
        model.pseudoColor(net.id);
        const double cost = double(res->cost) +
                            2.0 * double(model.overlayUnitsOfNet(net.id));
        model.removeNet(net.id);
        for (const GridNode& n : res->path) grid.release(n, net.id);
        if (bestPath.empty() || cost < bestCost) {
          bestCost = cost;
          bestPath = std::move(res->path);
          bestVias = res->vias;
        }
      }
    }
    if (bestPath.empty()) continue;
    // Re-reserve unchosen candidates happens implicitly: occupy the path.
    for (const Pin* pin : {&net.source, &net.target}) {
      for (const GridNode& c : pin->candidates) grid.release(c, net.id);
    }
    for (const GridNode& n : bestPath) grid.occupy(n, net.id);
    const AddNetResult added = model.addNet(net.id, bestPath);
    model.pseudoColor(net.id);
    if (added.hardViolation ||
        model.classOverlayUnitsOfNet(net.id) >= kHardCost) {
      // The graph model flags the net as undecomposable; [10] fails it
      // outright (no merge technique, no re-route loop) -- the source of
      // its ~5% routability deficit in Table IV.
      model.removeNet(net.id);
      for (const GridNode& n : bestPath) grid.release(n, net.id);
      for (const Pin* pin : {&net.source, &net.target}) {
        for (const GridNode& c : pin->candidates) {
          if (grid.inBounds(c) && grid.isFree(c)) grid.occupy(c, net.id);
        }
      }
      continue;
    }
    paths[net.id] = bestPath;
    ++stats.routedNets;
    stats.vias += bestVias;
    stats.wirelength += std::int64_t(bestPath.size()) - 1 - bestVias;

    // Full-layout re-validation: classify every fragment pair again.
    for (int layer = 0; layer < grid.layers(); ++layer) {
      const auto frags = model.fragmentsInWindow(
          layer, Rect{0, 0, grid.width(), grid.height()});
      volatile std::int64_t sink = 0;  // defeat dead-code elimination
      for (std::size_t i = 0; i < frags.size(); ++i) {
        for (std::size_t j = i + 1; j < frags.size(); ++j) {
          sink += int(classify(frags[i], frags[j]).type);
        }
      }
      (void)sink;
    }
  }

  result.stats = stats;
  result.overlayUnits = model.totalOverlayUnits();
  // Trim-process sign-off (Du et al. target SID/trim without assists).
  const DesignRules& rules = grid.rules();
  std::vector<TrimReport> perLayer(std::size_t(grid.layers()));
  parallelFor(ctx, grid.layers(), [&](int layer) {
    std::vector<ColoredFragment> cfs;
    for (const Fragment& f : model.fragmentsInWindow(
             layer, Rect{0, 0, grid.width(), grid.height()})) {
      Color c = model.colorOf(f.net, layer);
      if (c == Color::Unassigned) c = Color::Core;
      cfs.push_back({f, c});
    }
    perLayer[std::size_t(layer)] = decomposeTrimLayer(cfs, rules).report;
  });
  for (const TrimReport& t : perLayer) {
    result.physical.sideOverlayNm += t.sideOverlayNm;
    result.physical.sideOverlaySections += t.sideOverlaySections;
    result.physical.hardOverlays += t.hardOverlays;
    result.physical.tipOverlays += t.tipOverlays;
    result.physical.cutSpaceConflicts += t.conflicts();
  }
  result.conflicts =
      result.physical.cutConflicts() + stats.hardViolationsAccepted;
  result.seconds = elapsed(t0);
  return result;
}

}  // namespace

BaselineResult runBaseline(BaselineKind kind, RoutingGrid& grid,
                           const Netlist& netlist, double timeoutSeconds,
                           RunContext* ctx) {
  RunContext& c = ctx ? *ctx : RunContext::current();
  RunContext::Scope bind(c);
  switch (kind) {
    case BaselineKind::GaoPanTrim11:
      return runGreedyColorRouter(grid, netlist, /*trimProcess=*/true, c);
    case BaselineKind::KodamaCut16:
      return runGreedyColorRouter(grid, netlist, /*trimProcess=*/false, c);
    case BaselineKind::DuGraphModel10:
      return runDuGraphModel(grid, netlist, timeoutSeconds, c);
  }
  return {};
}

}  // namespace sadp
