// Reconstructions of the three published comparison points (paper §IV).
//
// The original binaries were never released; the paper itself re-implemented
// [10] and [16] for its experiments, and we do the same from the published
// algorithm descriptions (DESIGN.md §5.10 records the reconstruction):
//
//  [11] Gao & Pan, "Flexible self-aligned double patterning aware detailed
//       routing with prescribed layout planning" (trim process): routing and
//       decomposition run simultaneously; colors are fixed greedily when a
//       net is routed; NO assistant core patterns are considered, so every
//       second-pattern side without a neighboring spacer is exposed.
//
//  [16] Kodama et al., "Self-aligned double and quadruple patterning aware
//       grid routing methods" (cut process): cut-process router that fixes
//       colors at route time, does not use the merge technique for odd
//       cycles, and merges assistant cores with core patterns without
//       overlay control.
//
//  [10] Du et al., "Spacer-is-dielectric-compliant detailed routing" (trim
//       process, multiple pin candidate locations): graph-model router that
//       enumerates every source x target candidate pair, evaluates each
//       complete route on the decomposition graph, and re-validates the
//       full layout after every net -- quality-seeking but super-linearly
//       slow (the paper measured > 1e5 seconds on Test9/10 and reports NA).
#pragma once

#include <string>

#include "route/router.hpp"

namespace sadp {

enum class BaselineKind {
  GaoPanTrim11,
  KodamaCut16,
  DuGraphModel10,
};

const char* toString(BaselineKind k);

/// Result of one baseline run, measured with the same sign-off pipeline as
/// the proposed router so comparisons are apples-to-apples.
struct BaselineResult {
  RoutingStats stats;
  std::int64_t overlayUnits = 0;  ///< scenario-model side-overlay units
  OverlayReport physical;         ///< bitmap ground truth
  int conflicts = 0;              ///< cut conflicts ([16]) / trim conflicts
  double seconds = 0.0;
  bool timedOut = false;          ///< exceeded the time budget (report NA)
};

/// Runs a baseline on the given problem. `timeoutSeconds` bounds the run
/// (chiefly for [10], whose runtime grows quadratically). Metrics, spans
/// and parallel fan-out go through `ctx` (the calling thread's bound
/// context when null).
BaselineResult runBaseline(BaselineKind kind, RoutingGrid& grid,
                           const Netlist& netlist,
                           double timeoutSeconds = 1e18,
                           RunContext* ctx = nullptr);

}  // namespace sadp
