// Regenerates Figs. 21/22: a curated odd-cycle layout decomposed (a) with
// the merge-and-cut technique and optimal coloring (our router's flow) and
// (b) with the aggressive core/assist merging and fixed colors of [16].
// Emits SVG artwork plus the measured overlay statistics for both panes.
#include <cstdio>
#include <vector>

#include "patterning/flipping.hpp"
#include "ocg/overlay_model.hpp"
#include "sadp/svg.hpp"

using namespace sadp;

namespace {

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}

/// The Fig. 21 motif: three wires forming an odd coloring cycle (each
/// consecutive pair side-to-side @1 with a single-track facing span) plus
/// surrounding context wires.
std::vector<Fragment> oddCycleLayout() {
  return {
      hw(1, 0, 5, 2),    // A
      hw(2, 4, 9, 3),    // B: adjacent to A over one track (mergeable)
      hw(3, 0, 5, 4),    // C: adjacent to B, two tracks from A
      hw(4, 0, 9, 0),    // context below
      hw(5, 0, 9, 6),    // context above
  };
}

OverlayReport decomposeAndWrite(const char* path,
                                const std::vector<ColoredFragment>& frags) {
  const DesignRules rules;
  const LayerDecomposition d = decomposeLayer(frags, rules);
  SvgOptions svg;
  svg.drawCut = true;
  writeLayerSvgFile(path, d, frags, rules, svg);
  return d.report;
}

}  // namespace

int main() {
  // Pane (a): our flow -- register the layout in the constraint graph and
  // let the color-flipping DP find the optimal assignment (the odd cycle
  // decomposes by merging the same-colored pair and cutting it apart).
  OverlayModel model(1, 16, 16);
  std::vector<Fragment> frags = oddCycleLayout();
  for (const Fragment& f : frags) {
    std::vector<GridNode> cells;
    for (Track y = f.ylo; y < f.yhi; ++y) {
      for (Track x = f.xlo; x < f.xhi; ++x) cells.push_back({x, y, 0});
    }
    model.addNet(f.net, cells);
    model.pseudoColor(f.net);
  }
  colorFlip(model.graph(0));

  std::vector<ColoredFragment> ours;
  for (const Fragment& f : frags) {
    Color c = model.colorOf(f.net, 0);
    if (c == Color::Unassigned) c = Color::Core;
    ours.push_back({f, c});
  }
  const OverlayReport a = decomposeAndWrite("fig21_ours.svg", ours);

  // Pane (b): [16]-style -- greedy first-fit colors in routing order with
  // no flipping (nets early in the order grab Core).
  std::vector<ColoredFragment> kodama;
  for (const Fragment& f : frags) {
    kodama.push_back({f, (f.net % 2 == 1) ? Color::Core : Color::Second});
  }
  const OverlayReport b = decomposeAndWrite("fig22_kodama.svg", kodama);

  std::printf("Fig.21 (ours, merge+cut, optimal colors):\n");
  std::printf("  colors:");
  for (const ColoredFragment& cf : ours) {
    std::printf(" net%d=%s", cf.frag.net, toString(cf.color));
  }
  std::printf("\n  side overlay = %lld nm in %d sections, hard = %d, "
              "conflicts = %d  -> fig21_ours.svg\n",
              (long long)a.sideOverlayNm, a.sideOverlaySections,
              a.hardOverlays, a.cutConflicts());
  std::printf("Fig.22 ([16]-style, fixed greedy colors):\n");
  std::printf("  side overlay = %lld nm in %d sections, hard = %d, "
              "conflicts = %d  -> fig22_kodama.svg\n",
              (long long)b.sideOverlayNm, b.sideOverlaySections,
              b.hardOverlays, b.cutConflicts());
  std::printf("\nexpected shape: ours has no hard overlay and every side "
              "section at most w_line; the fixed coloring leaks more.\n");
  return (a.hardOverlays == 0 && a.cutConflicts() == 0) ? 0 : 1;
}
