// Regenerates Table II: the potential-overlay-scenario rule table --
// for every scenario type, the color rule, the minimum side overlay when
// the rule is followed ("min SO") and the worst side overlay when it is
// not ("max SO") -- and cross-checks each entry against the bitmap mask
// synthesizer on a canonical witness layout (Appendix Figs. 24-34).
#include <cstdio>
#include <vector>

#include "sadp/decompose.hpp"

using namespace sadp;

namespace {

struct Witness {
  ScenarioType type;
  Fragment a, b;
};

Fragment hw(NetId net, Track x0, Track x1, Track y) {
  return Fragment{x0, y, x1, y + 1, net};
}
Fragment vw(NetId net, Track x, Track y0, Track y1) {
  return Fragment{x, y0, x + 1, y1, net};
}

// One canonical dependent pair per scenario type (4-track wires).
std::vector<Witness> witnesses() {
  return {
      {ScenarioType::T1a, hw(1, 0, 4, 0), hw(2, 0, 4, 1)},
      {ScenarioType::T1b, hw(1, 0, 4, 5), vw(2, 2, 0, 5)},
      {ScenarioType::T2a, hw(1, 0, 4, 0), hw(2, 0, 4, 2)},
      {ScenarioType::T2b, hw(1, 0, 4, 5), vw(2, 2, 0, 4)},
      {ScenarioType::T2c, hw(1, 0, 4, 0), hw(2, 4, 8, 0)},
      {ScenarioType::T2d, hw(1, 0, 4, 0), hw(2, 5, 9, 0)},
      {ScenarioType::T3a, hw(1, 0, 4, 0), hw(2, 4, 8, 1)},
      {ScenarioType::T3b, hw(1, 0, 4, 0), vw(2, 4, 1, 5)},
      {ScenarioType::T3c, hw(1, 0, 4, 0), hw(2, 4, 8, 2)},
      {ScenarioType::T3d, hw(1, 0, 4, 0), hw(2, 5, 9, 1)},
      {ScenarioType::T3e, hw(1, 0, 4, 0), vw(2, 4, 2, 6)},
  };
}

const char* ruleName(const Classification& c) {
  const bool fCC = c.overlay[0] >= kHardCost, fCS = c.overlay[1] >= kHardCost;
  const bool fSC = c.overlay[2] >= kHardCost, fSS = c.overlay[3] >= kHardCost;
  if (fCC && fSS) return "different (hard)";
  if (fCS && fSC) return "same (hard)";
  if (fSS && !fCC && !fCS && !fSC) return "forbid SS";
  if (fCS && !fCC && !fSC && !fSS) return "forbid CS";
  if (fSC && !fCC && !fCS && !fSS) return "forbid SC";
  // Nonhard preferences: pick the assignments with minimum cost.
  int mn = c.overlay[0];
  for (int v : c.overlay) mn = std::min(mn, v);
  if (c.overlay[0] == mn && c.overlay[3] == mn && c.overlay[1] != mn) {
    return "same";
  }
  if (c.overlay[1] == mn && c.overlay[2] == mn && c.overlay[0] != mn) {
    return "different";
  }
  if (c.overlay[3] == mn && c.overlay[0] != mn) return "both second";
  return "any";
}

}  // namespace

int main() {
  const DesignRules rules;
  std::printf("Table II -- potential overlay scenarios (units of w_line)\n");
  std::printf("%-6s %-18s %6s %6s   %s\n", "type", "color rule", "minSO",
              "maxSO", "per-assignment cost CC/CS/SC/SS");
  std::printf("%s\n", std::string(78, '-').c_str());

  for (const Witness& w : witnesses()) {
    const Classification c = classify(w.a, w.b);
    if (c.type != w.type) {
      std::printf("WITNESS MISMATCH for %s (got %s)\n", toString(w.type),
                  toString(c.type));
      return 1;
    }
    int mn = kHardCost, mx = 0;
    for (int v : c.overlay) {
      mn = std::min(mn, v);
      if (v < kHardCost) mx = std::max(mx, v);
    }
    char costs[64];
    std::snprintf(costs, sizeof costs, "%s/%s/%s/%s",
                  c.overlay[0] >= kHardCost ? "inf" : std::to_string(c.overlay[0]).c_str(),
                  c.overlay[1] >= kHardCost ? "inf" : std::to_string(c.overlay[1]).c_str(),
                  c.overlay[2] >= kHardCost ? "inf" : std::to_string(c.overlay[2]).c_str(),
                  c.overlay[3] >= kHardCost ? "inf" : std::to_string(c.overlay[3]).c_str());
    std::printf("%-6s %-18s %6d %6d   %s\n", toString(c.type), ruleName(c),
                mn, mx, costs);
  }

  // Physical cross-check: under the optimal color rule no scenario may
  // produce a hard overlay or a cut conflict on the witness layout.
  std::printf("\nbitmap cross-check (optimal assignment per scenario):\n");
  bool ok = true;
  for (const Witness& w : witnesses()) {
    const Classification c = classify(w.a, w.b);
    int best = 0;
    for (int i = 1; i < 4; ++i) {
      if (c.overlay[i] < c.overlay[best]) best = i;
    }
    const Color ca = (best & 2) ? Color::Second : Color::Core;
    const Color cb = (best & 1) ? Color::Second : Color::Core;
    std::vector<ColoredFragment> frags{{w.a, ca}, {w.b, cb}};
    const OverlayReport r = decomposeLayer(frags, rules).report;
    const bool clean = r.hardOverlays == 0 && r.cutConflicts() == 0;
    ok &= clean;
    std::printf("  %-5s %s%s: hard=%d conflicts=%d side=%lldnm  %s\n",
                toString(c.type), toString(ca), toString(cb), r.hardOverlays,
                r.cutConflicts(), (long long)r.sideOverlayNm,
                clean ? "OK" : "VIOLATION");
  }
  return ok ? 0 : 1;
}
