// Regenerates Table III: fixed-pin benchmarks Test1..Test5, the proposed
// router vs the Gao-Pan trim router [11] and the Kodama cut router [16].
// Expected shape (paper): ours has the highest routability, >90% less
// overlay, and zero conflicts; both baselines leak conflicts.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"

using namespace sadp;

int main() {
  std::vector<ExperimentRow> rows;
  const auto specs = paperBenchmarks();
  for (int i = 0; i < 5; ++i) {  // Test1..Test5 (fixed pins)
    const BenchmarkSpec spec = bench::scaled(specs[i], i);
    std::fprintf(stderr, "[table3] %s (%d nets)...\n", spec.name.c_str(),
                 spec.netCount);
    rows.push_back(runProposed(spec));
    rows.push_back(runBaselineRow(BaselineKind::GaoPanTrim11, spec));
    rows.push_back(runBaselineRow(BaselineKind::KodamaCut16, spec));
  }
  std::printf(
      "Table III -- fixed pin locations: ours vs GaoPan[11] vs Kodama[16]\n");
  printComparisonTable(std::cout, rows, "ours");
  return 0;
}
