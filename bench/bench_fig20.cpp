// Regenerates Fig. 20: running time of the proposed router as a function
// of the number of nets, with the least-squares empirical complexity
// exponent (the paper fits ~n^1.42).
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"

using namespace sadp;

int main() {
  // Sweep a geometric ladder of instance sizes derived from Test5's
  // density; SADP_FULL extends the ladder to paper-scale net counts.
  std::vector<double> scales{0.005, 0.01, 0.02, 0.04, 0.08};
  if (const char* full = std::getenv("SADP_FULL"); full && full[0] == '1') {
    scales = {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 1.0};
  }
  const BenchmarkSpec base = paperBenchmark("Test5");
  std::vector<ExperimentRow> rows;
  for (double f : scales) {
    const BenchmarkSpec spec = base.scaled(f);
    std::fprintf(stderr, "[fig20] %d nets...\n", spec.netCount);
    ExperimentRow row = runProposed(spec);
    row.circuit = "Test5@" + std::to_string(spec.netCount);
    rows.push_back(row);
    std::printf("nets=%6d  time=%8.3fs  routability=%6.2f%%\n", row.nets,
                row.cpuSeconds, row.routability);
  }
  if (auto exp = runtimeExponent(rows)) {
    std::printf("\nFig.20 least-squares runtime exponent: n^%.2f "
                "(paper: ~n^1.42)\n",
                *exp);
  }
  return 0;
}
