// Shared helpers for the table/figure regeneration binaries.
//
// Default runs use scaled-down instances so the whole bench suite finishes
// in minutes; set SADP_FULL=1 for paper-scale circuits, or SADP_SCALE=<f>
// for an explicit scale factor (net count scales by f, die edge by sqrt(f),
// keeping density fixed).
#pragma once

#include <cstdlib>
#include <string>

#include "eval/eval.hpp"

namespace sadp::bench {

/// Per-circuit default scale factors (Test1..Test10 order of
/// paperBenchmarks()); chosen so each circuit routes in seconds.
inline double defaultScale(int index) {
  static constexpr double kScale[10] = {0.15, 0.12, 0.06, 0.03, 0.015,
                                        0.15, 0.12, 0.06, 0.03, 0.015};
  return kScale[index % 10];
}

/// Applies SADP_FULL / SADP_SCALE to a spec.
inline BenchmarkSpec scaled(const BenchmarkSpec& spec, int index) {
  if (const char* full = std::getenv("SADP_FULL"); full && full[0] == '1') {
    return spec;
  }
  double f = defaultScale(index);
  if (const char* s = std::getenv("SADP_SCALE")) {
    f = std::atof(s);
  }
  return f >= 1.0 ? spec : spec.scaled(f);
}

}  // namespace sadp::bench
