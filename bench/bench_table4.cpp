// Regenerates Table IV: multiple-pin-candidate benchmarks Test6..Test10,
// the proposed router vs the graph-model router of Du et al. [10].
// Expected shape (paper): ours is orders of magnitude faster with ~5%
// higher routability; [10] times out (NA) on the two largest circuits.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"

using namespace sadp;

int main() {
  // Timeout budget for [10]; the paper aborted it beyond 1e5 seconds.
  double timeout = 120.0;
  if (const char* t = std::getenv("SADP_BASELINE_TIMEOUT")) {
    timeout = std::atof(t);
  }
  std::vector<ExperimentRow> rows;
  const auto specs = paperBenchmarks();
  for (int i = 5; i < 10; ++i) {  // Test6..Test10 (multi-candidate pins)
    const BenchmarkSpec spec = bench::scaled(specs[i], i);
    std::fprintf(stderr, "[table4] %s (%d nets)...\n", spec.name.c_str(),
                 spec.netCount);
    rows.push_back(runProposed(spec));
    rows.push_back(
        runBaselineRow(BaselineKind::DuGraphModel10, spec, timeout));
  }
  std::printf(
      "Table IV -- multiple pin candidate locations: ours vs Du[10]\n");
  printComparisonTable(std::cout, rows, "ours");
  return 0;
}
