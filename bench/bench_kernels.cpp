// Micro-benchmarks (google-benchmark) of the core kernels: scenario
// classification, parity union-find, A*-search, color-flipping DP, and
// mask synthesis. These back the complexity claims of §III-E.
#include <benchmark/benchmark.h>

#include <random>

#include "color/flipping.hpp"
#include "ocg/overlay_model.hpp"
#include "route/astar.hpp"
#include "sadp/decompose.hpp"

namespace sadp {
namespace {

void BM_ClassifyPair(benchmark::State& state) {
  std::mt19937 rng(1);
  std::uniform_int_distribution<Track> d(0, 12);
  std::vector<std::pair<Fragment, Fragment>> pairs;
  for (int i = 0; i < 512; ++i) {
    Fragment a{d(rng), d(rng), Track(d(rng) + 13), Track(d(rng) + 13), 1};
    Fragment b{d(rng), d(rng), Track(d(rng) + 13), Track(d(rng) + 13), 2};
    pairs.emplace_back(a, b);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 511];
    benchmark::DoNotOptimize(classify(a, b));
  }
}
BENCHMARK(BM_ClassifyPair);

void BM_ParityDsuUnite(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  std::mt19937 rng(2);
  std::uniform_int_distribution<std::size_t> d(0, n - 1);
  for (auto _ : state) {
    state.PauseTiming();
    ParityDsu dsu;
    dsu.ensure(n - 1);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(dsu.unite(d(rng), d(rng), std::uint8_t(i & 1)));
    }
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(n));
}
BENCHMARK(BM_ParityDsuUnite)->Arg(1024)->Arg(16384);

void BM_AStarRoute(benchmark::State& state) {
  const Track size = Track(state.range(0));
  RoutingGrid grid(size, size, 3, DesignRules{});
  AStarEngine engine(grid);
  std::mt19937 rng(3);
  std::uniform_int_distribution<Track> d(0, size - 1);
  for (auto _ : state) {
    const GridNode s{d(rng), d(rng), 0};
    const GridNode t{d(rng), d(rng), 0};
    benchmark::DoNotOptimize(engine.route(1, {&s, 1}, {&t, 1}, AStarParams{}));
  }
}
BENCHMARK(BM_AStarRoute)->Arg(64)->Arg(256);

void BM_ColorFlipChain(benchmark::State& state) {
  const int n = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    OverlayConstraintGraph g;
    for (int v = 1; v < n; ++v) {
      Classification c;
      c.type = ScenarioType::T3a;
      c.overlay = {1, 0, 0, 1};
      g.addScenario(v - 1, v, c);
    }
    for (int v = 0; v < n; ++v) g.setColor(v, Color::Core);
    state.ResumeTiming();
    benchmark::DoNotOptimize(colorFlip(g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ColorFlipChain)->Arg(256)->Arg(4096);

void BM_DecomposeLayer(benchmark::State& state) {
  const Track rowsN = Track(state.range(0));
  std::vector<ColoredFragment> frags;
  for (Track y = 0; y < rowsN; ++y) {
    frags.push_back({Fragment{0, Track(y * 2), 32, Track(y * 2 + 1),
                              NetId(y)},
                     (y % 2) ? Color::Second : Color::Core});
  }
  const DesignRules rules;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decomposeLayer(frags, rules));
  }
  state.SetItemsProcessed(state.iterations() * rowsN);
}
BENCHMARK(BM_DecomposeLayer)->Arg(16)->Arg(64);

}  // namespace
}  // namespace sadp

BENCHMARK_MAIN();
